// Repository-level benchmark harness: one benchmark per paper artifact
// (table / figure / theorem / ablation), as indexed in DESIGN.md §4.
//
// Each benchmark executes the corresponding experiment at Quick scale, so
// `go test -bench=. -benchmem` regenerates every result end to end and
// reports its cost. The full-scale numbers behind EXPERIMENTS.md come
// from `go run ./cmd/covbench -run all`.
package repro_test

import (
	"io"
	"testing"

	"repro/internal/tables"
)

func benchExperiment(b *testing.B, id string) {
	cfg := tables.Config{Quick: true, Trials: 1, Seed: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbls, err := tables.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Rendering is part of the regeneration cost.
		for _, t := range tbls {
			if err := t.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable1KCover regenerates the k-cover rows of Table 1.
func BenchmarkTable1KCover(b *testing.B) { benchExperiment(b, "table1-kcover") }

// BenchmarkTable1Outliers regenerates the outlier rows of Table 1.
func BenchmarkTable1Outliers(b *testing.B) { benchExperiment(b, "table1-outliers") }

// BenchmarkTable1SetCover regenerates the set-cover rows of Table 1.
func BenchmarkTable1SetCover(b *testing.B) { benchExperiment(b, "table1-setcover") }

// BenchmarkFig1Sketch regenerates Figure 1 (Hp / H'p illustration).
func BenchmarkFig1Sketch(b *testing.B) { benchExperiment(b, "fig1-sketch") }

// BenchmarkThm31KCover regenerates the Theorem 3.1 ratio/space experiment.
func BenchmarkThm31KCover(b *testing.B) { benchExperiment(b, "thm31-kcover") }

// BenchmarkThm33Outliers regenerates the Theorem 3.3 lambda sweep.
func BenchmarkThm33Outliers(b *testing.B) { benchExperiment(b, "thm33-outliers") }

// BenchmarkThm34SetCover regenerates the Theorem 3.4 pass/space tradeoff.
func BenchmarkThm34SetCover(b *testing.B) { benchExperiment(b, "thm34-setcover") }

// BenchmarkLem22Accuracy regenerates the Lemma 2.2 concentration sweep.
func BenchmarkLem22Accuracy(b *testing.B) { benchExperiment(b, "lem22-accuracy") }

// BenchmarkThm12LowerBound regenerates the Theorem 1.2 space lower bound.
func BenchmarkThm12LowerBound(b *testing.B) { benchExperiment(b, "thm12-lb") }

// BenchmarkThm13Oracle regenerates the Theorem 1.3 oracle separation.
func BenchmarkThm13Oracle(b *testing.B) { benchExperiment(b, "thm13-oracle") }

// BenchmarkAppDL0 regenerates the Appendix D l0-sketch comparison.
func BenchmarkAppDL0(b *testing.B) { benchExperiment(b, "appD-l0") }

// BenchmarkAblateDegreeCap regenerates the degree-cap ablation.
func BenchmarkAblateDegreeCap(b *testing.B) { benchExperiment(b, "ablate-degcap") }

// BenchmarkAblateGuessGrid regenerates the guess-grid ablation.
func BenchmarkAblateGuessGrid(b *testing.B) { benchExperiment(b, "ablate-guess") }

// BenchmarkDistMerge regenerates the distributed shard-sketch-merge round.
func BenchmarkDistMerge(b *testing.B) { benchExperiment(b, "dist-merge") }

// BenchmarkExtWeighted regenerates the weighted-coverage extension table.
func BenchmarkExtWeighted(b *testing.B) { benchExperiment(b, "ext-weighted") }

// BenchmarkIngestThroughput regenerates the hot-path ingest comparison
// (single-edge AddEdge vs batched AddEdges) behind BENCH_ingest.json.
func BenchmarkIngestThroughput(b *testing.B) { benchExperiment(b, "ingest-throughput") }
