// Datasummary: coverage-based data summarization — choose k documents
// whose union of vocabulary terms is largest. Demonstrates the paper's
// headline property: the sketch space depends only on the number of
// documents n, not on the vocabulary size m, so the same budget serves
// ever-larger vocabularies.
//
//	go run ./examples/datasummary
package main

import (
	"fmt"
	"log"

	"repro/streamcover"
)

func main() {
	const (
		nDocs = 500
		k     = 15
	)
	fmt.Println("data summarization: pick", k, "documents covering the largest vocabulary")
	fmt.Println()
	fmt.Printf("%-12s %-12s %-14s %-14s %-10s\n",
		"vocab m", "input edges", "sketch edges", "sketch/input", "ratio")

	budget := 60 * nDocs // fixed O(n) space across all vocabulary sizes
	for _, m := range []int{20000, 80000, 320000} {
		// Heavy-tailed documents over a Zipf vocabulary.
		inst := streamcover.GenerateZipf(nDocs, m, m/10, 0.8, 0.7, uint64(m))

		res, err := streamcover.MaxCoverage(inst.EdgeStream(5), nDocs, k,
			streamcover.Options{
				Eps:        0.4,
				Seed:       7,
				NumElems:   m,
				EdgeBudget: budget,
			})
		if err != nil {
			log.Fatal(err)
		}
		covered := inst.Coverage(res.Sets)
		_, gCov := inst.GreedyMaxCoverage(k)

		fmt.Printf("%-12d %-12d %-14d %-14.4f %-10.3f\n",
			m, inst.NumEdges(), res.Sketch.EdgesStored,
			float64(res.Sketch.EdgesStored)/float64(inst.NumEdges()),
			float64(covered)/float64(gCov))
	}
	fmt.Println()
	fmt.Println("the sketch size stays flat while the input grows 16x —")
	fmt.Println("space is O~(n), independent of vocabulary size (Theorem 3.1)")
}
