// Blogwatch: the application motivating streaming maximum coverage in
// Saha–Getoor (and cited by the paper): out of thousands of blogs, pick k
// whose posts jointly cover the most topics. Posts arrive as a stream of
// (blog, topic) pairs — exactly the edge-arrival model, since one blog's
// topics never arrive together.
//
//	go run ./examples/blogwatch
package main

import (
	"fmt"
	"log"

	"repro/streamcover"
)

func main() {
	const (
		nBlogs  = 2000
		nTopics = 50000
		k       = 20
	)
	inst := streamcover.GenerateBlogTopics(nBlogs, nTopics, 2500, 1)
	fmt.Printf("blog-watch: %d blogs, %d topics, %d posts (edges)\n",
		inst.NumSets(), inst.NumElems(), inst.NumEdges())

	// Single pass over the post stream with an O(n)-sized sketch: the
	// space is proportional to the number of blogs, NOT the number of
	// topics or posts.
	res, err := streamcover.MaxCoverage(inst.EdgeStream(3), inst.NumSets(), k,
		streamcover.Options{
			Eps:        0.4,
			Seed:       99,
			NumElems:   inst.NumElems(),
			EdgeBudget: 80 * nBlogs, // practical O(n) budget
		})
	if err != nil {
		log.Fatal(err)
	}
	covered := inst.Coverage(res.Sets)

	// Compare with the unbounded-memory greedy.
	_, gCov := inst.GreedyMaxCoverage(k)

	fmt.Printf("\nstreaming pick of %d blogs covers %d topics (%.1f%% of reachable)\n",
		k, covered, 100*float64(covered)/float64(inst.CoveredElems()))
	fmt.Printf("offline greedy covers %d topics -> streaming ratio %.3f\n",
		gCov, float64(covered)/float64(gCov))
	fmt.Printf("\nspace: sketch stored %d edges (%.2fx n) vs %d edges in the full input (%.1fx n)\n",
		res.Sketch.EdgesStored, float64(res.Sketch.EdgesStored)/nBlogs,
		inst.NumEdges(), float64(inst.NumEdges())/nBlogs)
	fmt.Println("\ntop picked blogs:", res.Sets[:min(5, len(res.Sets))], "...")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
