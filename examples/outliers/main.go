// Outliers: sensor placement as set cover with outliers — choose the
// fewest sensors covering at least 95% of observed events, tolerating the
// long tail. Events arrive as a stream of (sensor, event) detections; one
// pass suffices (Algorithm 5 / Theorem 3.3).
//
//	go run ./examples/outliers
package main

import (
	"fmt"
	"log"
	"math"

	"repro/streamcover"
)

func main() {
	const (
		nSensors = 400
		nEvents  = 40000
		kStar    = 12 // a planted deployment of 12 sensors covers everything
	)
	inst := streamcover.GeneratePlantedSetCover(nSensors, nEvents, kStar, 150, 5)
	fmt.Printf("sensor placement: %d candidate sensors, %d events\n", nSensors, nEvents)
	fmt.Printf("a hidden deployment of %d sensors covers every event\n\n", kStar)

	fmt.Printf("%-10s %-10s %-12s %-12s %-14s\n",
		"lambda", "sensors", "bound", "coverage", "sketch edges")
	for _, lambda := range []float64{0.05, 0.10, 0.20} {
		res, err := streamcover.SetCoverWithOutliers(inst.EdgeStream(9), nSensors, lambda,
			streamcover.Options{
				Eps:        0.5,
				Seed:       11,
				NumElems:   nEvents,
				EdgeBudget: 10 * nSensors,
			})
		if err != nil {
			log.Fatal(err)
		}
		covered := inst.Coverage(res.Sets)
		bound := (1 + 0.5) * math.Log(1/lambda) * kStar
		fmt.Printf("%-10.2f %-10d %-12.1f %-12.4f %-14d\n",
			lambda, len(res.Sets), bound,
			float64(covered)/float64(nEvents), res.Sketch.EdgesStored)
	}
	fmt.Println()
	fmt.Println("fewer required events (larger lambda) -> fewer sensors, as")
	fmt.Println("promised by the (1+eps)ln(1/lambda)k* bound — in ONE pass.")

	// The O~(n) space claim: hold the sensor count fixed and scale the
	// event volume; the sketches stay the same size.
	fmt.Println()
	fmt.Printf("%-12s %-14s %-14s\n", "events m", "input edges", "sketch edges")
	for _, m := range []int{nEvents, 4 * nEvents, 16 * nEvents} {
		big := streamcover.GeneratePlantedSetCover(nSensors, m, kStar, 150, 5)
		res, err := streamcover.SetCoverWithOutliers(big.EdgeStream(9), nSensors, 0.1,
			streamcover.Options{Eps: 0.5, Seed: 11, NumElems: m, EdgeBudget: 10 * nSensors})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %-14d %-14d\n", m, big.NumEdges(), res.Sketch.EdgesStored)
	}
	fmt.Println()
	fmt.Println("events grow 16x, the sketches do not — space is O~(n),")
	fmt.Println("independent of the number of events (Theorem 3.3)")
}
