// Multipass: full set cover over a replayable stream, trading passes for
// space (Algorithm 6 / Theorem 3.4): with r iterations (2r-1 passes) the
// algorithm holds O~(n·m^{3/(2+r)} + m) edges, so a few extra passes
// shrink memory by orders of magnitude while the solution size stays
// within (1+eps)·ln(m) of optimal.
//
//	go run ./examples/multipass
package main

import (
	"fmt"
	"log"

	"repro/streamcover"
)

func main() {
	const (
		nSets  = 300
		nElems = 30000
	)
	// A heavy-tailed instance: popular elements are covered by many sets,
	// but a long tail of rare elements forces a large cover — the regime
	// where the pass/space tradeoff is visible.
	inst := streamcover.GenerateZipf(nSets, nElems, nElems/3, 1.1, 0.9, 21)
	_, greedyCov := inst.GreedySetCover()
	greedySets, _ := inst.GreedySetCover()
	fmt.Printf("full set cover: n=%d sets, m=%d elements, %d edges\n",
		nSets, nElems, inst.NumEdges())
	fmt.Printf("offline greedy reference: %d sets (covering %d)\n\n", len(greedySets), greedyCov)

	fmt.Printf("%-4s %-8s %-8s %-14s %-12s %-16s\n",
		"r", "passes", "sets", "sets/greedy", "covered", "residual edges")
	for _, r := range []int{1, 2, 3, 4} {
		res, err := streamcover.SetCover(inst.EdgeStream(13), nSets, nElems, r,
			streamcover.Options{
				Eps:        0.5,
				Seed:       17,
				EdgeBudget: 20 * nSets,
			})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-8d %-8d %-14.3f %-12d %-16d\n",
			r, res.Passes, len(res.Sets),
			float64(len(res.Sets))/float64(len(greedySets)), res.Covered, res.ResidualEdges)
	}
	fmt.Println()
	fmt.Println("more passes -> a smaller residual graph must be buffered")
	fmt.Println("(the n·m^{3/(2+r)} term of Theorem 3.4), while every run")
	fmt.Println("covers all elements within the ln(m) bound")
}
