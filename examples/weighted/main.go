// Weighted: maximum coverage where elements carry weights — e.g. ad
// placements covering audience segments whose values differ by orders of
// magnitude. The pipeline buckets elements into geometric weight classes
// with one H≤n sketch each (an extension beyond the paper; see DESIGN.md)
// and runs a weighted greedy on the scaled union.
//
//	go run ./examples/weighted
package main

import (
	"fmt"
	"log"

	"repro/streamcover"
)

func main() {
	const (
		nCampaigns = 500
		nSegments  = 60000
		k          = 10
	)
	inst := streamcover.GenerateZipf(nCampaigns, nSegments, nSegments/10, 0.9, 0.8, 7)

	// Segment values: a heavy head (few premium segments) over a long
	// cheap tail — weights span three orders of magnitude.
	weights := make([]float64, nSegments)
	for i := range weights {
		switch {
		case i%1000 == 0:
			weights[i] = 500
		case i%50 == 0:
			weights[i] = 20
		default:
			weights[i] = 1
		}
	}
	weightOf := func(e uint32) float64 { return weights[e] }

	fmt.Printf("weighted coverage: %d campaigns, %d segments, %d edges\n\n",
		inst.NumSets(), inst.NumElems(), inst.NumEdges())

	res, err := streamcover.MaxWeightedCoverage(inst.EdgeStream(3), nCampaigns, k, weightOf,
		streamcover.Options{
			Eps:        0.4,
			Seed:       21,
			NumElems:   nSegments,
			EdgeBudget: 40 * nCampaigns, // per weight class
		})
	if err != nil {
		log.Fatal(err)
	}
	truth, err := inst.WeightedCoverage(res.Sets, weights)
	if err != nil {
		log.Fatal(err)
	}
	_, greedyVal, err := inst.GreedyMaxWeightedCoverage(k, weights)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("picked %d campaigns: %v\n", len(res.Sets), res.Sets)
	fmt.Printf("estimated covered value: %.0f\n", res.EstimatedCoverage)
	fmt.Printf("true covered value:      %.0f\n", truth)
	fmt.Printf("offline greedy value:    %.0f  -> streaming ratio %.3f\n",
		greedyVal, truth/greedyVal)
	fmt.Printf("space: %d edges across %d weight-class sketches (input %d edges)\n",
		res.EdgesStored, res.WeightClasses, inst.NumEdges())

	// Contrast with ignoring weights: unweighted k-cover maximizes the
	// segment COUNT and leaves premium value on the table.
	unw, err := streamcover.MaxCoverage(inst.EdgeStream(3), nCampaigns, k,
		streamcover.Options{Eps: 0.4, Seed: 21, NumElems: nSegments, EdgeBudget: 40 * nCampaigns})
	if err != nil {
		log.Fatal(err)
	}
	unwVal, err := inst.WeightedCoverage(unw.Sets, weights)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nignoring weights would capture %.0f of value (%.1f%% less)\n",
		unwVal, 100*(1-unwVal/truth))
}
