// Quickstart: build a small coverage instance, stream it edge by edge,
// and solve k-cover in a single pass with the H≤n sketch.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/streamcover"
)

func main() {
	// Five "services" (sets) covering fifteen "regions" (elements).
	inst, err := streamcover.NewInstanceFromSets(15, [][]uint32{
		{0, 1, 2, 3, 4},      // service 0: the west
		{5, 6, 7, 8, 9},      // service 1: the center
		{10, 11, 12, 13, 14}, // service 2: the east
		{0, 5, 10},           // service 3: a thin north corridor
		{4, 9, 14, 13, 3},    // service 4: a southern arc
	})
	if err != nil {
		log.Fatal(err)
	}

	// The instance arrives as a stream of (set, element) edges in
	// arbitrary order — the edge-arrival model.
	const k = 2
	res, err := streamcover.MaxCoverage(inst.EdgeStream(7), inst.NumSets(), k,
		streamcover.Options{Eps: 0.3, Seed: 42, NumElems: inst.NumElems()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pick %d services to cover the most regions\n", k)
	fmt.Printf("chosen services:  %v\n", res.Sets)
	fmt.Printf("estimated cover:  %.0f regions (from the sketch alone)\n", res.EstimatedCoverage)
	fmt.Printf("true coverage:    %d of %d regions\n", inst.Coverage(res.Sets), inst.NumElems())
	fmt.Printf("sketch space:     %d edges (input has %d)\n",
		res.Sketch.EdgesStored, inst.NumEdges())

	// Reference: the offline greedy with the whole input in memory.
	gSets, gCov := inst.GreedyMaxCoverage(k)
	fmt.Printf("offline greedy:   %v covering %d (for comparison)\n", gSets, gCov)
}
