// Distributed: the paper's sketch is composable (§1.3.2 / the companion
// distributed paper): workers sketch disjoint shards of the edge set in
// parallel, ship O~(n)-sized sketches, and the coordinator's merged
// sketch is exactly the single-machine sketch — so one round suffices
// and the approximation guarantee is unchanged.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"repro/streamcover"
)

func main() {
	const (
		nSets  = 1500
		nElems = 200000
		k      = 25
	)
	inst := streamcover.GenerateZipf(nSets, nElems, nElems/8, 0.9, 0.8, 3)
	fmt.Printf("instance: %d sets, %d elements, %d edges\n\n",
		inst.NumSets(), inst.NumElems(), inst.NumEdges())

	opts := streamcover.Options{
		Eps:        0.4,
		Seed:       99,
		NumElems:   nElems,
		EdgeBudget: 60 * nSets,
	}

	// Single machine, one pass.
	single, err := streamcover.MaxCoverage(inst.EdgeStream(1), nSets, k, opts)
	if err != nil {
		log.Fatal(err)
	}
	singleCov := inst.Coverage(single.Sets)

	fmt.Printf("%-10s %-12s %-16s %-14s\n", "workers", "coverage", "edges shipped", "same solution")
	fmt.Printf("%-10d %-12d %-16d %-14s\n", 1, singleCov, single.Sketch.EdgesStored, "-")

	for _, workers := range []int{2, 4, 8, 16} {
		res, err := streamcover.MaxCoverageSharded(inst.Shards(workers, 7), nSets, k, opts)
		if err != nil {
			log.Fatal(err)
		}
		cov := inst.Coverage(res.Sets)
		same := "yes"
		if len(res.Sets) != len(single.Sets) {
			same = "no"
		} else {
			for i := range res.Sets {
				if res.Sets[i] != single.Sets[i] {
					same = "no"
				}
			}
		}
		fmt.Printf("%-10d %-12d %-16d %-14s\n", workers, cov, res.EdgesShipped, same)
	}
	fmt.Println()
	fmt.Println("the merged sketch equals the single-machine sketch, so every")
	fmt.Println("worker count returns the identical solution; communication is")
	fmt.Println("bounded by each worker's O~(n) sketch, not its shard size")
}
