// Repository-level integration tests: end-to-end flows across the public
// API — generate → serialize → stream from bytes → solve → verify against
// ground truth — plus failure-injection scenarios.
package repro_test

import (
	"bytes"
	"math"
	"testing"

	"repro/streamcover"
)

// TestPipelineGenerateSerializeSolve exercises the full user journey for
// all three problems on one instance.
func TestPipelineGenerateSerializeSolve(t *testing.T) {
	inst := streamcover.GeneratePlantedSetCover(80, 5000, 8, 20, 42)

	// Round-trip through the binary format, as a covgen/covstream user would.
	var buf bytes.Buffer
	if err := inst.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := streamcover.ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumEdges() != inst.NumEdges() {
		t.Fatal("serialization changed the instance")
	}

	opt := streamcover.Options{Eps: 0.5, Seed: 9, NumElems: loaded.NumElems(), EdgeBudget: 50 * 80}

	// k-cover at the planted size finds (nearly) the planted coverage.
	kres, err := streamcover.MaxCoverage(loaded.EdgeStream(1), loaded.NumSets(), 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Coverage(kres.Sets); float64(got) < 0.6*float64(loaded.NumElems()) {
		t.Fatalf("k-cover covered %d of %d", got, loaded.NumElems())
	}

	// Outlier cover meets its coverage target.
	ores, err := streamcover.SetCoverWithOutliers(loaded.EdgeStream(2), loaded.NumSets(), 0.1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Coverage(ores.Sets); float64(got) < 0.85*float64(loaded.NumElems()) {
		t.Fatalf("outlier cover covered %d of %d", got, loaded.NumElems())
	}

	// Full multi-pass cover covers everything.
	sres, err := streamcover.SetCover(loaded.EdgeStream(3), loaded.NumSets(), loaded.NumElems(), 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Coverage(sres.Sets); got != loaded.NumElems() {
		t.Fatalf("set cover covered %d of %d", got, loaded.NumElems())
	}
}

// TestTruncatedStreamStillValid injects failure: a stream cut off mid-way
// must still produce a valid (possibly weaker) solution, never a panic or
// an out-of-range set id.
func TestTruncatedStreamStillValid(t *testing.T) {
	inst := streamcover.GenerateZipf(40, 2000, 500, 0.9, 0.7, 7)
	all := inst.EdgeStream(5)
	var edges []streamcover.Edge
	for {
		e, ok := all.Next()
		if !ok {
			break
		}
		edges = append(edges, e)
	}
	for _, frac := range []float64{0, 0.01, 0.25, 0.75} {
		cut := int(frac * float64(len(edges)))
		st := &streamcover.SliceStream{Edges: edges[:cut]}
		res, err := streamcover.MaxCoverage(st, inst.NumSets(), 5,
			streamcover.Options{Eps: 0.4, Seed: 3, NumElems: inst.NumElems(), EdgeBudget: 2000})
		if err != nil {
			t.Fatalf("frac=%v: %v", frac, err)
		}
		for _, s := range res.Sets {
			if s < 0 || s >= inst.NumSets() {
				t.Fatalf("frac=%v: invalid set id %d", frac, s)
			}
		}
		if len(res.Sets) > 5 {
			t.Fatalf("frac=%v: too many sets", frac)
		}
	}
}

// TestMonotoneCoverageInK verifies the end-to-end pipeline's coverage is
// non-decreasing in k (on a fixed sketch seed), a consumer-visible sanity
// property of the whole stack.
func TestMonotoneCoverageInK(t *testing.T) {
	inst := streamcover.GenerateZipf(60, 3000, 800, 0.9, 0.7, 11)
	prev := 0
	for _, k := range []int{1, 2, 4, 8, 16} {
		res, err := streamcover.MaxCoverage(inst.EdgeStream(1), inst.NumSets(), k,
			streamcover.Options{Eps: 0.4, Seed: 5, NumElems: inst.NumElems(), EdgeBudget: 3000})
		if err != nil {
			t.Fatal(err)
		}
		got := inst.Coverage(res.Sets)
		if got < prev {
			t.Fatalf("coverage decreased at k=%d: %d -> %d", k, prev, got)
		}
		prev = got
	}
}

// TestSetCoverFromTextFilePasses runs the multi-pass algorithm directly
// over a serialized text stream (disk-style multi-pass).
func TestSetCoverFromTextFilePasses(t *testing.T) {
	inst := streamcover.GeneratePlantedSetCover(40, 1200, 5, 10, 13)
	var buf bytes.Buffer
	if err := inst.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	ts := streamcover.NewTextEdgeStream(bytes.NewReader(buf.Bytes()))
	n, m, ok := ts.Header()
	if !ok || !ts.CanReset() {
		t.Fatal("text stream not usable for multi-pass")
	}
	res, err := streamcover.SetCover(ts, n, m, 2,
		streamcover.Options{Eps: 0.5, Seed: 7, EdgeBudget: 40 * n})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Err(); err != nil {
		t.Fatal(err)
	}
	if got := inst.Coverage(res.Sets); got != inst.NumElems() {
		t.Fatalf("file-backed set cover covered %d of %d", got, inst.NumElems())
	}
	if res.Passes != 3 {
		t.Fatalf("passes = %d, want 3", res.Passes)
	}
}

// TestGuaranteeSweepAcrossEps checks the theorem's ε knob end to end:
// smaller ε buys larger sketches, never worse coverage on average.
func TestGuaranteeSweepAcrossEps(t *testing.T) {
	inst := streamcover.GeneratePlantedKCover(60, 4000, 6, 0.9, 20, 17)
	type point struct {
		edges int
		cov   int
	}
	var pts []point
	for _, eps := range []float64{0.9, 0.5, 0.2} {
		res, err := streamcover.MaxCoverage(inst.EdgeStream(1), inst.NumSets(), 6,
			streamcover.Options{Eps: eps, Seed: 3, NumElems: inst.NumElems()})
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{edges: res.Sketch.EdgesStored, cov: inst.Coverage(res.Sets)})
	}
	if !(pts[0].edges <= pts[1].edges && pts[1].edges <= pts[2].edges) {
		t.Fatalf("sketch size not monotone in 1/eps: %+v", pts)
	}
	bound := (1 - 1/math.E - 0.9) * float64(inst.Planted.Coverage)
	for i, p := range pts {
		if float64(p.cov) < bound {
			t.Fatalf("point %d below the weakest bound: %+v", i, p)
		}
	}
}
