package streamcover

import (
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/sieve"
	"repro/internal/stream"
)

func TestSieveServiceMatchesOfflineSieve(t *testing.T) {
	const n, m, k = 50, 2500, 5
	inst := GenerateZipf(n, m, 500, 0.9, 0.7, 11)

	// Drain the stream once so the service and the offline reference see
	// the identical edge order (the sieve buffer is order-dependent).
	var edges []Edge
	st := inst.EdgeStream(3)
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		edges = append(edges, e)
	}
	conv := make([]bipartite.Edge, len(edges))
	for i, e := range edges {
		conv[i] = bipartite.Edge{Set: e.Set, Elem: e.Elem}
	}
	ref, err := sieve.KCover(stream.NewSlice(conv), n, k)
	if err != nil {
		t.Fatal(err)
	}

	svc, err := NewSieveService(n, ServiceOptions{
		Options: Options{Seed: 11, NumElems: m},
		K:       k, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	res, err := svc.KCover(k, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != len(ref.Sets) {
		t.Fatalf("service sets %v != offline %v", res.Sets, ref.Sets)
	}
	for i := range res.Sets {
		if res.Sets[i] != ref.Sets[i] {
			t.Fatalf("service sets %v != offline %v", res.Sets, ref.Sets)
		}
	}
	if int(res.EstimatedCoverage) != ref.Covered {
		t.Fatalf("service coverage %v != offline %d", res.EstimatedCoverage, ref.Covered)
	}

	// The sieve service refuses the sketch-only algorithms.
	if _, err := svc.CoverWithOutliers(0.2, false); err == nil ||
		!strings.Contains(err.Error(), "sieve") {
		t.Fatalf("outliers on a sieve service: %v", err)
	}
	if _, err := svc.GreedyCover(false); err == nil ||
		!strings.Contains(err.Error(), "sieve") {
		t.Fatalf("greedy on a sieve service: %v", err)
	}
}

func TestSieveServiceRejectsBadOptions(t *testing.T) {
	if _, err := NewSieveService(0, ServiceOptions{K: 3}); err == nil {
		t.Fatal("numSets 0 accepted")
	}
	// Engine string routes through the generic constructor too.
	if _, err := NewService(10, ServiceOptions{
		Options: Options{NumElems: 100}, K: 3, Engine: "turbo",
	}); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("unknown engine: %v", err)
	}
}
