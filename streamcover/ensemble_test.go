package streamcover

import (
	"math"
	"testing"
)

func TestMaxCoverageEnsembleEndToEnd(t *testing.T) {
	inst := GeneratePlantedKCover(50, 3000, 5, 0.9, 15, 5)
	res, err := MaxCoverageEnsemble(inst.EdgeStream(2), inst.NumSets(), 5, 5,
		Options{Eps: 0.4, Seed: 7, NumElems: inst.NumElems(), EdgeBudget: 40 * inst.NumSets()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas != 5 || len(res.Sets) > 5 {
		t.Fatalf("malformed result %+v", res)
	}
	got := inst.Coverage(res.Sets)
	if float64(got) < (1-1/math.E-0.45)*float64(inst.Planted.Coverage) {
		t.Fatalf("ensemble covered %d, planted %d", got, inst.Planted.Coverage)
	}
	if res.EstimatedCoverage < 0.7*float64(got) || res.EstimatedCoverage > 1.3*float64(got) {
		t.Fatalf("estimate %v vs truth %d", res.EstimatedCoverage, got)
	}
	// Space is R sketches.
	single, err := MaxCoverage(inst.EdgeStream(2), inst.NumSets(), 5,
		Options{Eps: 0.4, Seed: 7, NumElems: inst.NumElems(), EdgeBudget: 40 * inst.NumSets()})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesStored < 4*single.Sketch.EdgesStored {
		t.Fatalf("ensemble space %d suspiciously small vs single %d",
			res.EdgesStored, single.Sketch.EdgesStored)
	}
}

func TestMaxCoverageEnsembleAtLeastAsGoodAsWorstReplica(t *testing.T) {
	// The ensemble picks by median estimate; over several seeds it must
	// never return something wildly below the single-sketch run.
	inst := GenerateZipf(40, 2000, 500, 0.9, 0.7, 9)
	for seed := uint64(0); seed < 3; seed++ {
		opt := Options{Eps: 0.4, Seed: seed, NumElems: inst.NumElems(), EdgeBudget: 1500}
		ens, err := MaxCoverageEnsemble(inst.EdgeStream(seed), inst.NumSets(), 4, 3, opt)
		if err != nil {
			t.Fatal(err)
		}
		single, err := MaxCoverage(inst.EdgeStream(seed), inst.NumSets(), 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		e := inst.Coverage(ens.Sets)
		s := inst.Coverage(single.Sets)
		if float64(e) < 0.9*float64(s) {
			t.Fatalf("seed=%d: ensemble %d far below single %d", seed, e, s)
		}
	}
}

func TestMaxCoverageEnsembleValidation(t *testing.T) {
	if _, err := MaxCoverageEnsemble(&SliceStream{}, 0, 1, 3, Options{}); err == nil {
		t.Fatal("numSets=0 accepted")
	}
	// replicas < 1 clamps rather than failing.
	inst := GenerateUniform(5, 30, 0.2, 1)
	res, err := MaxCoverageEnsemble(inst.EdgeStream(1), 5, 2, 0,
		Options{Eps: 0.5, NumElems: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas != 1 {
		t.Fatalf("replicas = %d, want clamp to 1", res.Replicas)
	}
}
