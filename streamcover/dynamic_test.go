package streamcover

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/server"
)

func dynTestEdges(n int) []Edge {
	inst := GenerateZipf(30, 600, 80, 0.9, 0.7, 21)
	var edges []Edge
	st := inst.EdgeStream(4)
	for len(edges) < n {
		e, ok := st.Next()
		if !ok {
			break
		}
		edges = append(edges, e)
	}
	return edges
}

// TestDynamicServiceInsertOnlyMatchesSketch: on a stream both engines
// hold exactly (budget ≥ edges, sampler at level 0), a dynamic service
// fed only inserts answers the same kcover queries the default sketch
// service does.
func TestDynamicServiceInsertOnlyMatchesSketch(t *testing.T) {
	const n, k = 30, 4
	edges := dynTestEdges(800)
	opt := ServiceOptions{
		Options: Options{Seed: 21, NumElems: 600, EdgeBudget: 2000},
		K:       k, Shards: 2,
	}

	sk, err := NewService(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sk.Close()
	dy, err := NewDynamicService(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer dy.Close()

	if err := sk.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	ops := make([]Op, len(edges))
	for i, e := range edges {
		ops[i] = Op{Edge: e}
	}
	if err := dy.ApplyOps(ops); err != nil {
		t.Fatal(err)
	}

	want, err := sk.KCover(k, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Sets) == 0 {
		t.Fatal("sketch answer is empty; the workload tests nothing")
	}
	got, err := dy.KCover(k, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sets) != len(want.Sets) {
		t.Fatalf("dynamic sets %v != sketch %v", got.Sets, want.Sets)
	}
	for i := range got.Sets {
		if got.Sets[i] != want.Sets[i] {
			t.Fatalf("dynamic sets %v != sketch %v", got.Sets, want.Sets)
		}
	}
	if got.EstimatedCoverage != want.EstimatedCoverage {
		t.Fatalf("dynamic coverage %v != sketch %v", got.EstimatedCoverage, want.EstimatedCoverage)
	}
}

// TestDynamicServiceDeleteAll: the library-surface leg of the
// insert-all-delete-all acceptance — after retracting every inserted
// edge, kcover answers the empty solution, and the op count is the
// gross (insert + delete) stream length.
func TestDynamicServiceDeleteAll(t *testing.T) {
	const n, k = 30, 4
	edges := dynTestEdges(800)
	svc, err := NewDynamicService(n, ServiceOptions{
		Options: Options{Seed: 21, NumElems: 600},
		K:       k, Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Inserts through the plain Ingest path; deletes through both
	// Delete and a mixed ApplyOps batch.
	if err := svc.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	half := len(edges) / 2
	if err := svc.Delete(edges[:half]); err != nil {
		t.Fatal(err)
	}
	ops := make([]Op, 0, len(edges)-half)
	for _, e := range edges[half:] {
		ops = append(ops, Op{Delete: true, Edge: e})
	}
	if err := svc.ApplyOps(ops); err != nil {
		t.Fatal(err)
	}

	res, err := svc.KCover(k, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 0 || res.EstimatedCoverage != 0 {
		t.Fatalf("delete-all answered %v (coverage %v), want the empty solution",
			res.Sets, res.EstimatedCoverage)
	}
	st, err := svc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.IngestedEdges != int64(2*len(edges)) {
		t.Fatalf("ingested %d ops, want %d", st.IngestedEdges, 2*len(edges))
	}

	// A snapshot of the cancelled state restores to a service that
	// still answers the empty solution.
	var blob bytes.Buffer
	if err := svc.WriteSnapshot(&blob); err != nil {
		t.Fatal(err)
	}
	rec, err := RestoreService(&blob, n, ServiceOptions{
		Options: Options{Seed: 21, NumElems: 600},
		K:       k, Shards: 3, Engine: "dynamic",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	rres, err := rec.KCover(k, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rres.Sets) != 0 || rres.EstimatedCoverage != 0 {
		t.Fatalf("restored cancelled state answered %v", rres.Sets)
	}
}

// TestDeleteRejectedOnLegacyServices: retractions against the
// append-only engines fail with the typed error, while insert-only
// ApplyOps batches take the ordinary ingest path everywhere.
func TestDeleteRejectedOnLegacyServices(t *testing.T) {
	const n = 20
	mk := map[string]func() (*Service, error){
		"sketch": func() (*Service, error) {
			return NewService(n, ServiceOptions{Options: Options{Seed: 3, NumElems: 100}, K: 3})
		},
		"sieve": func() (*Service, error) {
			return NewSieveService(n, ServiceOptions{Options: Options{Seed: 3, NumElems: 100}, K: 3, Shards: 1})
		},
	}
	for name, ctor := range mk {
		svc, err := ctor()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := svc.ApplyOps([]Op{{Edge: Edge{Set: 1, Elem: 2}}, {Edge: Edge{Set: 2, Elem: 3}}}); err != nil {
			t.Fatalf("%s: insert-only ApplyOps: %v", name, err)
		}
		if err := svc.Delete([]Edge{{Set: 1, Elem: 2}}); !errors.Is(err, server.ErrDeletesUnsupported) {
			t.Fatalf("%s: Delete err = %v, want ErrDeletesUnsupported", name, err)
		}
		if err := svc.ApplyOps([]Op{{Delete: true, Edge: Edge{Set: 1, Elem: 2}}}); !errors.Is(err, server.ErrDeletesUnsupported) {
			t.Fatalf("%s: delete ApplyOps err = %v, want ErrDeletesUnsupported", name, err)
		}
		st, err := svc.Stats()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.IngestedEdges != 2 {
			t.Fatalf("%s: ingested %d after rejected deletes, want 2", name, st.IngestedEdges)
		}
		svc.Close()
	}
}
