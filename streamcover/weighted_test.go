package streamcover

import (
	"math"
	"testing"
)

func TestMaxWeightedCoverageEndToEnd(t *testing.T) {
	inst := GeneratePlantedKCover(50, 3000, 5, 0.9, 15, 3)
	weights := make([]float64, inst.NumElems())
	for i := range weights {
		weights[i] = 1 + float64(i%5)
	}
	weightOf := func(e uint32) float64 { return weights[e] }

	res, err := MaxWeightedCoverage(inst.EdgeStream(2), inst.NumSets(), 5, weightOf,
		Options{Eps: 0.4, Seed: 7, NumElems: inst.NumElems(), EdgeBudget: 60 * inst.NumSets()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) > 5 || res.WeightClasses < 1 || res.EdgesStored == 0 {
		t.Fatalf("malformed result %+v", res)
	}
	truth, err := inst.WeightedCoverage(res.Sets, weights)
	if err != nil {
		t.Fatal(err)
	}
	_, greedyVal, err := inst.GreedyMaxWeightedCoverage(5, weights)
	if err != nil {
		t.Fatal(err)
	}
	if truth < (1-1/math.E-0.45)*greedyVal {
		t.Fatalf("streamed %v, offline greedy %v", truth, greedyVal)
	}
	if res.EstimatedCoverage < 0.7*truth || res.EstimatedCoverage > 1.3*truth {
		t.Fatalf("estimate %v vs truth %v", res.EstimatedCoverage, truth)
	}
}

func TestWeightedCoverageValidation(t *testing.T) {
	inst := GenerateUniform(5, 20, 0.2, 1)
	if _, err := inst.WeightedCoverage([]int{0}, make([]float64, 3)); err == nil {
		t.Fatal("wrong-length weights accepted")
	}
	if _, _, err := inst.GreedyMaxWeightedCoverage(2, []float64{-1}); err == nil {
		t.Fatal("negative weights accepted")
	}
}

func TestMaxWeightedCoverageUniformEqualsUnweighted(t *testing.T) {
	inst := GenerateUniform(30, 1000, 0.04, 9)
	opt := Options{Eps: 0.4, Seed: 11, NumElems: inst.NumElems(), EdgeBudget: 5000}
	w, err := MaxWeightedCoverage(inst.EdgeStream(1), inst.NumSets(), 4,
		func(uint32) float64 { return 3 }, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform weights: the covered weight is 3x the covered count.
	truth := 3 * float64(inst.Coverage(w.Sets))
	got, err := inst.WeightedCoverage(w.Sets, uniformWeightsOf(inst.NumElems(), 3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-truth) > 1e-9 {
		t.Fatalf("weighted coverage %v != 3x unweighted %v", got, truth)
	}
}

func uniformWeightsOf(m int, w float64) []float64 {
	ws := make([]float64, m)
	for i := range ws {
		ws[i] = w
	}
	return ws
}
