package streamcover

import (
	"bytes"
	"sync"
	"testing"
)

func TestServiceMatchesMaxCoverage(t *testing.T) {
	const n, m, k = 80, 4000, 6
	inst := GenerateZipf(n, m, 1000, 0.9, 0.7, 5)
	opt := Options{Eps: 0.4, Seed: 77, NumElems: m, EdgeBudget: 60 * n}

	offline, err := MaxCoverage(inst.EdgeStream(1), n, k, opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 4, 7} {
		svc, err := NewService(n, ServiceOptions{Options: opt, K: k, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		got, err := svc.IngestStream(inst.EdgeStream(9), 300)
		if err != nil {
			t.Fatal(err)
		}
		if got != int64(inst.NumEdges()) {
			t.Fatalf("shards=%d: ingested %d of %d edges", shards, got, inst.NumEdges())
		}
		res, err := svc.KCover(k, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.EstimatedCoverage != offline.EstimatedCoverage {
			t.Fatalf("shards=%d: service estimate %v != offline %v",
				shards, res.EstimatedCoverage, offline.EstimatedCoverage)
		}
		for i := range res.Sets {
			if res.Sets[i] != offline.Sets[i] {
				t.Fatalf("shards=%d: service sets %v != offline %v", shards, res.Sets, offline.Sets)
			}
		}
		svc.Close()
	}
}

func TestServiceConcurrentIngestAndQuery(t *testing.T) {
	const n, m, k = 40, 3000, 4
	inst := GeneratePlantedKCover(n, m, k, 0.9, 30, 7)
	svc, err := NewService(n, ServiceOptions{
		Options: Options{Eps: 0.4, Seed: 3, NumElems: m, EdgeBudget: 50 * n},
		K:       k, Shards: 4, BatchQueue: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	st := inst.EdgeStream(2)
	var edges []Edge
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		edges = append(edges, e)
	}
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		lo, hi := p*len(edges)/3, (p+1)*len(edges)/3
		wg.Add(1)
		go func(part []Edge) {
			defer wg.Done()
			for i := 0; i < len(part); i += 97 {
				j := i + 97
				if j > len(part) {
					j = len(part)
				}
				if err := svc.Ingest(part[i:j]); err != nil {
					t.Error(err)
					return
				}
			}
		}(edges[lo:hi])
	}
	// Queries must succeed while producers are still pushing.
	for q := 0; q < 4; q++ {
		if _, err := svc.KCover(k, true); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	res, err := svc.KCover(k, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotEdges != int64(len(edges)) {
		t.Fatalf("final snapshot at %d of %d edges", res.SnapshotEdges, len(edges))
	}
	stats, err := svc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.IngestedEdges != int64(len(edges)) || stats.Shards != 4 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestServiceSnapshotRestore(t *testing.T) {
	const n, m, k = 30, 2000, 3
	inst := GenerateUniform(n, m, 0.04, 11)
	opt := ServiceOptions{
		Options: Options{Eps: 0.4, Seed: 13, NumElems: m, EdgeBudget: 40 * n},
		K:       k, Shards: 3,
	}

	full, err := NewService(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if _, err := full.IngestStream(inst.EdgeStream(1), 200); err != nil {
		t.Fatal(err)
	}
	want, err := full.KCover(k, true)
	if err != nil {
		t.Fatal(err)
	}

	first, err := NewService(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := inst.EdgeStream(1)
	half := inst.NumEdges() / 2
	batch := make([]Edge, 0, half)
	for i := 0; i < half; i++ {
		e, _ := st.Next()
		batch = append(batch, e)
	}
	if err := first.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := first.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	first.Close()

	second, err := RestoreService(&buf, n, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	rest := make([]Edge, 0, inst.NumEdges()-half)
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		rest = append(rest, e)
	}
	if err := second.Ingest(rest); err != nil {
		t.Fatal(err)
	}
	got, err := second.KCover(k, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.EstimatedCoverage != want.EstimatedCoverage {
		t.Fatalf("restored estimate %v != uninterrupted %v",
			got.EstimatedCoverage, want.EstimatedCoverage)
	}
}

func TestServiceValidation(t *testing.T) {
	if _, err := NewService(0, ServiceOptions{K: 2}); err == nil {
		t.Fatal("numSets=0 accepted")
	}
	if _, err := NewService(5, ServiceOptions{}); err == nil {
		t.Fatal("K=0 accepted")
	}
	svc, err := NewService(5, ServiceOptions{K: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Ingest([]Edge{{Set: 9, Elem: 0}}); err == nil {
		t.Fatal("out-of-range set accepted")
	}
	svc.Close()
	if err := svc.Ingest([]Edge{{Set: 1, Elem: 0}}); err == nil {
		t.Fatal("ingest after close accepted")
	}
}

// TestServiceQueryCacheStats pins the query-cache passthrough: repeated
// identical queries against one snapshot register as cache hits in the
// service stats, and answers stay identical.
func TestServiceQueryCacheStats(t *testing.T) {
	const n, m, k = 40, 2000, 4
	inst := GenerateZipf(n, m, 500, 0.9, 0.7, 9)
	svc, err := NewService(n, ServiceOptions{
		Options: Options{Eps: 0.4, Seed: 11, NumElems: m, EdgeBudget: 50 * n},
		K:       k, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.IngestStream(inst.EdgeStream(3), 256); err != nil {
		t.Fatal(err)
	}
	first, err := svc.KCover(k, true)
	if err != nil {
		t.Fatal(err)
	}
	second, err := svc.KCover(k, false)
	if err != nil {
		t.Fatal(err)
	}
	if first.EstimatedCoverage != second.EstimatedCoverage || len(first.Sets) != len(second.Sets) {
		t.Fatalf("cached answer differs: %+v vs %+v", first, second)
	}
	st, err := svc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 2 || st.QueryCacheHits != 1 {
		t.Fatalf("stats queries=%d hits=%d, want 2 and 1", st.Queries, st.QueryCacheHits)
	}
}
