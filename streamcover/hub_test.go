package streamcover

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

func drainEdges(t *testing.T, inst *Instance, seed uint64) []Edge {
	t.Helper()
	var out []Edge
	st := inst.EdgeStream(seed)
	for {
		e, ok := st.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func ingestInBatches(t *testing.T, s *Service, edges []Edge, batch int) {
	t.Helper()
	for i := 0; i < len(edges); i += batch {
		j := i + batch
		if j > len(edges) {
			j = len(edges)
		}
		if err := s.Ingest(edges[i:j]); err != nil {
			t.Error(err)
			return
		}
	}
}

// TestHubNamespacesMatchStandaloneServices is the acceptance pin of the
// namespace layer: two namespaces ingesting different datasets
// concurrently in one Hub answer bit-identically to two standalone
// Services fed the same edges with the same options.
func TestHubNamespacesMatchStandaloneServices(t *testing.T) {
	instA := GenerateZipf(60, 5000, 900, 0.9, 0.7, 17)
	instB := GenerateUniform(40, 3000, 0.02, 23)
	optA := ServiceOptions{Options: Options{Eps: 0.4, Seed: 7, NumElems: 5000, EdgeBudget: 3000}, K: 6, Shards: 3}
	optB := ServiceOptions{Options: Options{Eps: 0.5, Seed: 11, NumElems: 3000, EdgeBudget: 2000}, K: 4, Shards: 2}
	edgesA := drainEdges(t, instA, 5)
	edgesB := drainEdges(t, instB, 6)

	// Standalone reference Services.
	want := make([]*ServiceQueryResult, 2)
	for i, tc := range []struct {
		n     int
		opt   ServiceOptions
		edges []Edge
		k     int
	}{
		{instA.NumSets(), optA, edgesA, 6},
		{instB.NumSets(), optB, edgesB, 4},
	} {
		svc, err := NewService(tc.n, tc.opt)
		if err != nil {
			t.Fatal(err)
		}
		ingestInBatches(t, svc, tc.edges, 512)
		res, err := svc.KCover(tc.k, true)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
		svc.Close()
	}

	// The same two datasets as namespaces of one Hub, ingested
	// concurrently from separate goroutines.
	hub := NewHub()
	defer hub.Close()
	nsA, err := hub.OpenNamespace("tenant-a", instA.NumSets(), optA)
	if err != nil {
		t.Fatal(err)
	}
	nsB, err := hub.OpenNamespace("tenant-b", instB.NumSets(), optB)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ingestInBatches(t, nsA, edgesA, 512) }()
	go func() { defer wg.Done(); ingestInBatches(t, nsB, edgesB, 512) }()
	wg.Wait()

	gotA, err := nsA.KCover(6, true)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := nsB.KCover(4, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, pair := range []struct{ got, want *ServiceQueryResult }{{gotA, want[0]}, {gotB, want[1]}} {
		if !reflect.DeepEqual(pair.got.Sets, pair.want.Sets) ||
			pair.got.EstimatedCoverage != pair.want.EstimatedCoverage ||
			pair.got.SketchCoverage != pair.want.SketchCoverage {
			t.Fatalf("namespace %d: hub answer %+v != standalone %+v", i, pair.got, pair.want)
		}
	}

	if got := hub.Namespaces(); !reflect.DeepEqual(got, []string{"tenant-a", "tenant-b"}) {
		t.Fatalf("Namespaces() = %v", got)
	}
	if _, ok := hub.Namespace("tenant-a"); !ok {
		t.Fatal("Namespace(tenant-a) not found")
	}
	if _, ok := hub.Namespace("nope"); ok {
		t.Fatal("Namespace(nope) found")
	}
}

// TestHubSnapshotRoundTrip pins the v2 container through the public
// API: snapshot a two-namespace hub, restore it, and require identical
// answers and stats from the restored namespaces.
func TestHubSnapshotRoundTrip(t *testing.T) {
	inst := GenerateZipf(60, 5000, 900, 0.9, 0.7, 17)
	opt := ServiceOptions{Options: Options{Eps: 0.4, Seed: 7, NumElems: 5000, EdgeBudget: 3000}, K: 6, Shards: 2}
	edges := drainEdges(t, inst, 5)

	hub := NewHub()
	a, err := hub.OpenNamespace(DefaultNamespace, inst.NumSets(), opt)
	if err != nil {
		t.Fatal(err)
	}
	optB := opt
	optB.Seed = 13
	b, err := hub.OpenNamespace("replica", inst.NumSets(), optB)
	if err != nil {
		t.Fatal(err)
	}
	ingestInBatches(t, a, edges, 512)
	ingestInBatches(t, b, edges[:len(edges)/2], 512)
	wantA, err := a.KCover(6, true)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := b.KCover(6, true)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := hub.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	hub.Close()

	restored, err := RestoreHub(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.Namespaces(); !reflect.DeepEqual(got, []string{DefaultNamespace, "replica"}) {
		t.Fatalf("restored Namespaces() = %v", got)
	}
	ra, _ := restored.Namespace(DefaultNamespace)
	rb, _ := restored.Namespace("replica")
	gotA, err := ra.KCover(6, true)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := rb.KCover(6, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA.Sets, wantA.Sets) || gotA.EstimatedCoverage != wantA.EstimatedCoverage {
		t.Fatalf("restored default: %+v want %+v", gotA, wantA)
	}
	if !reflect.DeepEqual(gotB.Sets, wantB.Sets) || gotB.EstimatedCoverage != wantB.EstimatedCoverage {
		t.Fatalf("restored replica: %+v want %+v", gotB, wantB)
	}
	st, err := ra.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.IngestedEdges != int64(len(edges)) {
		t.Fatalf("restored default ingested %d want %d", st.IngestedEdges, len(edges))
	}
}

// TestV1SnapshotRestoresIntoDefaultNamespace pins upgrade compatibility
// with pre-namespace deployments: a snapshot written by a standalone
// Service (the PR 3-era v1 sketch format) loads into a Hub namespace —
// canonically "default" — and answers exactly like the writing service.
func TestV1SnapshotRestoresIntoDefaultNamespace(t *testing.T) {
	inst := GenerateZipf(60, 5000, 900, 0.9, 0.7, 17)
	opt := ServiceOptions{Options: Options{Eps: 0.4, Seed: 7, NumElems: 5000, EdgeBudget: 3000}, K: 6, Shards: 3}
	edges := drainEdges(t, inst, 5)

	svc, err := NewService(inst.NumSets(), opt)
	if err != nil {
		t.Fatal(err)
	}
	ingestInBatches(t, svc, edges, 512)
	want, err := svc.KCover(6, true)
	if err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := svc.WriteSnapshot(&v1); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	hub := NewHub()
	defer hub.Close()
	restored, err := hub.RestoreNamespace(DefaultNamespace, bytes.NewReader(v1.Bytes()), inst.NumSets(), opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.KCover(6, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Sets, want.Sets) ||
		got.EstimatedCoverage != want.EstimatedCoverage ||
		got.SketchCoverage != want.SketchCoverage {
		t.Fatalf("v1 restore into default namespace: %+v want %+v", got, want)
	}
	st, err := restored.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.IngestedEdges != int64(len(edges)) {
		t.Fatalf("restored ingested %d want %d", st.IngestedEdges, len(edges))
	}

	// RestoreHub must reject the v1 format loudly (it is a different
	// file shape, not a one-namespace container).
	if _, err := RestoreHub(bytes.NewReader(v1.Bytes())); err == nil {
		t.Fatal("RestoreHub accepted a v1 single-service snapshot")
	}

	// And the restored hub round-trips to v2 from here on.
	var v2 bytes.Buffer
	if err := hub.WriteSnapshot(&v2); err != nil {
		t.Fatal(err)
	}
	again, err := RestoreHub(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	ra, ok := again.Namespace(DefaultNamespace)
	if !ok {
		t.Fatal("default namespace missing after v1→v2 upgrade round-trip")
	}
	got2, err := ra.KCover(6, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2.Sets, want.Sets) || got2.EstimatedCoverage != want.EstimatedCoverage {
		t.Fatalf("v1→v2 upgrade round-trip: %+v want %+v", got2, want)
	}
}

// TestHubValidation covers the error paths of the namespace lifecycle.
func TestHubValidation(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	opt := ServiceOptions{Options: Options{Eps: 0.5, Seed: 1}, K: 2}
	if _, err := hub.OpenNamespace("ok", 0, opt); err == nil {
		t.Fatal("OpenNamespace accepted numSets=0")
	}
	if _, err := hub.OpenNamespace("ok", 10, ServiceOptions{}); err == nil {
		t.Fatal("OpenNamespace accepted K=0")
	}
	if _, err := hub.OpenNamespace("bad name", 10, opt); err == nil {
		t.Fatal("OpenNamespace accepted an invalid name")
	}
	if _, err := hub.OpenNamespace("ok", 10, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.OpenNamespace("ok", 10, opt); err == nil {
		t.Fatal("OpenNamespace accepted a duplicate name")
	}
	if err := hub.DeleteNamespace("nope"); err == nil {
		t.Fatal("DeleteNamespace(nope) succeeded")
	}
	if err := hub.DeleteNamespace("ok"); err != nil {
		t.Fatal(err)
	}
	if got := hub.Namespaces(); len(got) != 0 {
		t.Fatalf("Namespaces() = %v after delete", got)
	}
}
