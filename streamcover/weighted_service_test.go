package streamcover

import (
	"bytes"
	"testing"
)

// weightedWorkloads is the full generator matrix the weighted service
// equivalence sweep runs over — every generator the package exposes.
func weightedWorkloads() map[string]*Instance {
	return map[string]*Instance{
		"uniform":          GenerateUniform(40, 2500, 0.05, 11),
		"zipf":             GenerateZipf(50, 3000, 700, 0.9, 0.7, 7),
		"planted_kcover":   GeneratePlantedKCover(40, 2500, 4, 0.9, 25, 5),
		"planted_setcover": GeneratePlantedSetCover(30, 2000, 5, 20, 9),
		"blog_topics":      GenerateBlogTopics(40, 1500, 120, 3),
		"large_sets":       GenerateLargeSets(12, 4000, 0.3, 13),
		"clustered":        GenerateClustered(30, 2000, 5, 17),
	}
}

// testWeights builds a table spreading elements over several geometric
// weight classes, including a zero-weight residue class.
func testWeights(m int) Weights {
	table := make([]float64, m)
	for e := range table {
		table[e] = float64((uint32(e) * 2654435761) % 9)
	}
	return Weights{Table: table}
}

func sameSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWeightedServiceMatchesMaxWeightedCoverage is the tentpole
// acceptance test: for every workload generator, shard count ∈ {1,4,8}
// and batch split, the weighted service's KCover answer (sets and
// estimated coverage) is bit-identical to the one-shot
// MaxWeightedCoverage with the same Options, seed and weights over the
// same edges — and stays bit-identical after a snapshot write/restore
// cycle.
func TestWeightedServiceMatchesMaxWeightedCoverage(t *testing.T) {
	const k = 4
	for name, inst := range weightedWorkloads() {
		n, m := inst.NumSets(), inst.NumElems()
		w := testWeights(m)
		opt := Options{Eps: 0.4, Seed: 77, NumElems: m, EdgeBudget: 60 * n}

		offline, err := MaxWeightedCoverage(inst.EdgeStream(1), n, k, w.WeightOf, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		// Same edge order for every service run; only sharding and batch
		// split vary (the sketch is order-invariant, but keeping the order
		// fixed makes the comparison about the service plumbing alone).
		var edges []Edge
		st := inst.EdgeStream(1)
		for {
			e, ok := st.Next()
			if !ok {
				break
			}
			edges = append(edges, e)
		}

		for i, shards := range []int{1, 4, 8} {
			batch := []int{len(edges), 97, 1024}[i] // one call, tiny splits, mid-size splits
			svcOpt := ServiceOptions{Options: opt, K: k, Shards: shards, Weights: &w}
			svc, err := NewService(n, svcOpt)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			for lo := 0; lo < len(edges); lo += batch {
				hi := lo + batch
				if hi > len(edges) {
					hi = len(edges)
				}
				if err := svc.Ingest(edges[lo:hi]); err != nil {
					t.Fatalf("%s shards=%d: %v", name, shards, err)
				}
			}
			if !svc.Weighted() {
				t.Fatalf("%s shards=%d: service not marked weighted", name, shards)
			}
			res, err := svc.KCover(k, true)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			if res.EstimatedCoverage != offline.EstimatedCoverage || !sameSets(res.Sets, offline.Sets) {
				t.Fatalf("%s shards=%d batch=%d: service (%v, %v) != one-shot (%v, %v)",
					name, shards, batch, res.Sets, res.EstimatedCoverage, offline.Sets, offline.EstimatedCoverage)
			}

			// Snapshot cycle: persist, restore into a fresh service, re-query.
			var buf bytes.Buffer
			if err := svc.WriteSnapshot(&buf); err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			svc.Close()
			restored, err := RestoreService(&buf, n, svcOpt)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			res, err = restored.KCover(k, true)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			if res.EstimatedCoverage != offline.EstimatedCoverage || !sameSets(res.Sets, offline.Sets) {
				t.Fatalf("%s shards=%d: restored service (%v, %v) != one-shot (%v, %v)",
					name, shards, res.Sets, res.EstimatedCoverage, offline.Sets, offline.EstimatedCoverage)
			}
			if res.SnapshotEdges != int64(len(edges)) {
				t.Fatalf("%s shards=%d: restored snapshot accounts %d of %d edges",
					name, shards, res.SnapshotEdges, len(edges))
			}
			stats, err := restored.Stats()
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			if !stats.Weighted || stats.WeightClasses != offline.WeightClasses {
				t.Fatalf("%s shards=%d: stats weighted=%v classes=%d, want true/%d",
					name, shards, stats.Weighted, stats.WeightClasses, offline.WeightClasses)
			}
			restored.Close()
		}
	}
}

// TestWeightedServiceRejectsUnweightedQueries pins the workload
// boundary: outliers and full-greedy are undefined under weights.
func TestWeightedServiceRejectsUnweightedQueries(t *testing.T) {
	svc, err := NewWeightedService(10, testWeights(100), ServiceOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.CoverWithOutliers(0.1, false); err == nil {
		t.Fatal("outliers accepted on a weighted service")
	}
	if _, err := svc.GreedyCover(false); err == nil {
		t.Fatal("greedy accepted on a weighted service")
	}
}

// TestWeightedServiceValidation covers the construction error paths.
func TestWeightedServiceValidation(t *testing.T) {
	bad := testWeights(50)
	bad.Table[7] = -2
	if _, err := NewWeightedService(10, bad, ServiceOptions{K: 2}); err == nil {
		t.Fatal("negative weight accepted")
	}
	// Restoring a weighted snapshot without the weighted options (or vice
	// versa) must fail loudly, not restore garbage.
	svc, err := NewWeightedService(10, testWeights(50), ServiceOptions{K: 2, Options: Options{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Ingest([]Edge{{Set: 1, Elem: 2}, {Set: 3, Elem: 4}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := svc.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := RestoreService(bytes.NewReader(buf.Bytes()), 10, ServiceOptions{K: 2, Options: Options{Seed: 5}}); err == nil {
		t.Fatal("weighted snapshot restored into an unweighted service")
	}
}

// TestHubWeightedNamespace pins the multi-tenant weighted story: a hub
// hosts a weighted namespace next to an unweighted one, both answer
// like their standalone counterparts, and a hub snapshot restores the
// weighted namespace wholesale (weight table included).
func TestHubWeightedNamespace(t *testing.T) {
	const n, m, k = 40, 2000, 4
	inst := GenerateZipf(n, m, 500, 0.9, 0.7, 19)
	w := testWeights(m)
	opt := Options{Eps: 0.4, Seed: 23, NumElems: m, EdgeBudget: 50 * n}
	wOpt := ServiceOptions{Options: opt, K: k, Shards: 3, Weights: &w}
	uOpt := ServiceOptions{Options: opt, K: k, Shards: 3}

	hub := NewHub()
	defer hub.Close()
	heavy, err := hub.OpenNamespace("heavy", n, wOpt)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := hub.OpenNamespace("plain", n, uOpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := heavy.IngestStream(inst.EdgeStream(2), 300); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.IngestStream(inst.EdgeStream(2), 300); err != nil {
		t.Fatal(err)
	}

	offlineW, err := MaxWeightedCoverage(inst.EdgeStream(9), n, k, w.WeightOf, opt)
	if err != nil {
		t.Fatal(err)
	}
	resW, err := heavy.KCover(k, true)
	if err != nil {
		t.Fatal(err)
	}
	if resW.EstimatedCoverage != offlineW.EstimatedCoverage || !sameSets(resW.Sets, offlineW.Sets) {
		t.Fatalf("weighted namespace (%v, %v) != one-shot (%v, %v)",
			resW.Sets, resW.EstimatedCoverage, offlineW.Sets, offlineW.EstimatedCoverage)
	}
	offlineU, err := MaxCoverage(inst.EdgeStream(9), n, k, opt)
	if err != nil {
		t.Fatal(err)
	}
	resU, err := plain.KCover(k, true)
	if err != nil {
		t.Fatal(err)
	}
	if resU.EstimatedCoverage != offlineU.EstimatedCoverage || !sameSets(resU.Sets, offlineU.Sets) {
		t.Fatalf("unweighted namespace diverged from its one-shot run")
	}

	var buf bytes.Buffer
	if err := hub.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := RestoreHub(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	heavyBack, ok := back.Namespace("heavy")
	if !ok {
		t.Fatal("weighted namespace missing after hub restore")
	}
	if !heavyBack.Weighted() {
		t.Fatal("restored namespace lost its weighted configuration")
	}
	got, err := heavyBack.KCover(k, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.EstimatedCoverage != resW.EstimatedCoverage || !sameSets(got.Sets, resW.Sets) {
		t.Fatalf("restored hub namespace (%v, %v) != original (%v, %v)",
			got.Sets, got.EstimatedCoverage, resW.Sets, resW.EstimatedCoverage)
	}
}
