package streamcover

import (
	"bytes"
	"strings"
	"testing"
)

func TestShardsPartitionEdges(t *testing.T) {
	inst := GenerateUniform(20, 500, 0.08, 3)
	shards := inst.Shards(4, 9)
	if len(shards) != 4 {
		t.Fatalf("got %d shards", len(shards))
	}
	total := 0
	seen := map[uint64]bool{}
	for _, sh := range shards {
		for {
			e, ok := sh.Next()
			if !ok {
				break
			}
			key := uint64(e.Set)<<32 | uint64(e.Elem)
			if seen[key] {
				t.Fatal("edge duplicated across shards")
			}
			seen[key] = true
			total++
		}
	}
	if total != inst.NumEdges() {
		t.Fatalf("shards deliver %d of %d edges", total, inst.NumEdges())
	}
}

func TestMaxCoverageShardedMatchesSingle(t *testing.T) {
	inst := GenerateZipf(80, 4000, 1000, 0.9, 0.7, 5)
	opt := Options{Eps: 0.4, Seed: 77, NumElems: inst.NumElems(), EdgeBudget: 60 * 80}

	single, err := MaxCoverage(inst.EdgeStream(1), inst.NumSets(), 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 7} {
		res, err := MaxCoverageSharded(inst.Shards(workers, 11), inst.NumSets(), 6, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Sets) != len(single.Sets) {
			t.Fatalf("w=%d: %v vs single %v", workers, res.Sets, single.Sets)
		}
		for i := range res.Sets {
			if res.Sets[i] != single.Sets[i] {
				t.Fatalf("w=%d: %v vs single %v", workers, res.Sets, single.Sets)
			}
		}
		if res.EstimatedCoverage != single.EstimatedCoverage {
			t.Fatalf("w=%d: estimate %v vs single %v", workers, res.EstimatedCoverage, single.EstimatedCoverage)
		}
		if len(res.WorkerEdges) != workers || res.EdgesShipped <= 0 {
			t.Fatalf("w=%d: stats malformed %+v", workers, res)
		}
	}
}

func TestMaxCoverageShardedValidation(t *testing.T) {
	if _, err := MaxCoverageSharded(nil, 5, 2, Options{}); err == nil {
		t.Fatal("no shards accepted")
	}
	inst := GenerateUniform(5, 50, 0.2, 1)
	if _, err := MaxCoverageSharded(inst.Shards(2, 1), 0, 2, Options{}); err == nil {
		t.Fatal("numSets=0 accepted")
	}
}

func TestTextEdgeStreamHeaderAndEdges(t *testing.T) {
	in := "c 4 10\n0 1\n1 2\n3 9\n"
	ts := NewTextEdgeStream(strings.NewReader(in))
	n, m, ok := ts.Header()
	if !ok || n != 4 || m != 10 {
		t.Fatalf("Header = %d,%d,%v", n, m, ok)
	}
	count := 0
	for {
		_, ok := ts.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 3 || ts.Err() != nil {
		t.Fatalf("streamed %d edges, err=%v", count, ts.Err())
	}
}

func TestTextEdgeStreamNoHeader(t *testing.T) {
	ts := NewTextEdgeStream(strings.NewReader("0 1\n"))
	if _, _, ok := ts.Header(); ok {
		t.Fatal("phantom header")
	}
	// The peeked edge must not be lost.
	e, ok := ts.Next()
	if !ok || e.Set != 0 || e.Elem != 1 {
		t.Fatalf("lost the first edge: %v %v", e, ok)
	}
}

func TestTextEdgeStreamReset(t *testing.T) {
	r := bytes.NewReader([]byte("c 2 3\n0 0\n1 2\n"))
	ts := NewTextEdgeStream(r)
	if !ts.CanReset() {
		t.Fatal("seekable reader not resettable")
	}
	c1 := 0
	for {
		if _, ok := ts.Next(); !ok {
			break
		}
		c1++
	}
	ts.Reset()
	c2 := 0
	for {
		if _, ok := ts.Next(); !ok {
			break
		}
		c2++
	}
	if c1 != 2 || c2 != 2 {
		t.Fatalf("passes delivered %d and %d", c1, c2)
	}
}

func TestTextEdgeStreamDrivesMaxCoverage(t *testing.T) {
	// End to end: serialize an instance, stream the text bytes directly
	// into the algorithm, and check the result against the in-memory run.
	inst := GeneratePlantedKCover(40, 2000, 4, 0.9, 10, 7)
	var buf bytes.Buffer
	if err := inst.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	ts := NewTextEdgeStream(bytes.NewReader(buf.Bytes()))
	n, m, ok := ts.Header()
	if !ok {
		t.Fatal("WriteText output lacks header")
	}
	opt := Options{Eps: 0.4, Seed: 3, NumElems: m, EdgeBudget: 60 * n}
	direct, err := MaxCoverage(ts, n, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Err(); err != nil {
		t.Fatal(err)
	}
	inMem, err := MaxCoverage(inst.EdgeStream(9), n, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Same sketch policy + same seed => same solution regardless of the
	// radically different edge orders (file order vs shuffled).
	if len(direct.Sets) != len(inMem.Sets) {
		t.Fatalf("direct %v vs in-memory %v", direct.Sets, inMem.Sets)
	}
	for i := range direct.Sets {
		if direct.Sets[i] != inMem.Sets[i] {
			t.Fatalf("direct %v vs in-memory %v", direct.Sets, inMem.Sets)
		}
	}
}
