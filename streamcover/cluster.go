package streamcover

import (
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// ClusterOptions configures a hub's membership in a multi-node
// coverage cluster (see internal/cluster). Each node ingests its own
// partition of the edge stream into its hub; an anti-entropy loop
// pulls every peer's serialized sketches and cluster queries answer
// from the merged view — bit-identical, when the sketch budgets don't
// bind, to a single hub fed the whole stream (the sketch's
// mergeability result, the same property that makes shards exact).
type ClusterOptions struct {
	// NodeID names this node in cluster headers and stats.
	NodeID string
	// Peers lists the base URLs of the other cluster nodes; this node
	// must not list itself.
	Peers []string
	// PullInterval is the anti-entropy period (default 2s); negative
	// disables the background loop — drive exchange with PullNow.
	PullInterval time.Duration
	// MaxBackoff caps the exponential retry backoff applied to an
	// unreachable peer (default 30s).
	MaxBackoff time.Duration
	// Client issues the pull requests (default: 10s timeout).
	Client *http.Client
	// OnPullError observes failed or rejected pulls (may be nil).
	OnPullError func(peer, namespace string, err error)
}

// ClusterNode is a hub joined to a cluster: the hub keeps working
// exactly as before (ingest, namespaces, snapshots — all local), and
// the node adds the exchange plane on top. Mount Handler to serve the
// cluster HTTP surface; Close leaves the cluster without closing the
// hub.
type ClusterNode struct {
	hub  *Hub
	node *cluster.Node
}

// JoinCluster attaches the hub to a cluster of peers. The hub's
// namespaces are pulled from every peer by name: a namespace
// participates when the peer serves one with the same name, mode,
// weight table and sketch parameters (mismatches are rejected and
// counted, never merged). Close the returned node before the hub.
func (h *Hub) JoinCluster(opt ClusterOptions) (*ClusterNode, error) {
	node, err := cluster.NewNode(h.multi, cluster.Options{
		NodeID:       opt.NodeID,
		Peers:        opt.Peers,
		PullInterval: opt.PullInterval,
		MaxBackoff:   opt.MaxBackoff,
		Client:       opt.Client,
		OnPullError:  opt.OnPullError,
	})
	if err != nil {
		return nil, err
	}
	return &ClusterNode{hub: h, node: node}, nil
}

// Handler serves the cluster HTTP surface: everything the hub's
// multi-tenant API offers, plus /v1/cluster/{sketch,stats,pull}, with
// the query routes answering from the cluster-wide merged view.
func (c *ClusterNode) Handler(opt server.HTTPOptions) http.Handler {
	return cluster.NewHandler(c.node, opt)
}

// PullNow synchronously pulls every peer for every local namespace
// (ignoring failure backoff) and reports the joined errors. Pair with
// KCover for a query that reads the whole cluster's writes.
func (c *ClusterNode) PullNow() error { return c.node.PullNow() }

// KCover answers a max-k-cover query for the namespace from the
// cluster-wide merged view: this hub's snapshot folded with every
// peer's last-known state. fresh re-merges the local shards first (the
// network side is PullNow's job — queries never block on peers). On a
// weighted namespace the result is the weighted plane's, exactly as
// with Service.KCover.
func (c *ClusterNode) KCover(namespace string, k int, fresh bool) (*ServiceQueryResult, error) {
	res, err := c.node.Query(namespace, server.Query{Algo: server.AlgoKCover, K: k, Refresh: fresh})
	if err != nil {
		return nil, err
	}
	return fromEngineResult(res), nil
}

// Stats reports the node's anti-entropy accounting: per-peer pull,
// short-circuit, failure and rejection counters.
func (c *ClusterNode) Stats() cluster.NodeStats { return c.node.Stats() }

// Close stops the anti-entropy loop and leaves the cluster. The hub
// itself stays open. Idempotent.
func (c *ClusterNode) Close() error { return c.node.Close() }
