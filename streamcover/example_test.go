package streamcover_test

import (
	"fmt"
	"log"

	"repro/streamcover"
)

// A tiny deterministic instance shared by the examples: five sets
// covering fifteen elements.
func exampleEdges() []streamcover.Edge {
	sets := [][]uint32{
		{0, 1, 2, 3, 4},      // set 0: the west
		{5, 6, 7, 8, 9},      // set 1: the center
		{10, 11, 12, 13, 14}, // set 2: the east
		{0, 5, 10},           // set 3: a thin corridor
		{4, 9, 14, 13, 3},    // set 4: a southern arc
	}
	var edges []streamcover.Edge
	for s, elems := range sets {
		for _, e := range elems {
			edges = append(edges, streamcover.Edge{Set: uint32(s), Elem: e})
		}
	}
	return edges
}

// ExampleMaxCoverage solves k-cover in one pass over an edge stream.
func ExampleMaxCoverage() {
	st := &streamcover.SliceStream{Edges: exampleEdges()}
	res, err := streamcover.MaxCoverage(st, 5, 2, streamcover.Options{Eps: 0.3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sets=%v coverage=%.0f\n", res.Sets, res.EstimatedCoverage)
	// Output:
	// sets=[0 1] coverage=10
}

// ExampleNewService starts a live coverage service: ingest from any
// number of goroutines, query at any time.
func ExampleNewService() {
	svc, err := streamcover.NewService(5, streamcover.ServiceOptions{
		Options: streamcover.Options{Eps: 0.3, Seed: 7},
		K:       2, // the solution size the sketch is provisioned for
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	if err := svc.Ingest(exampleEdges()); err != nil {
		log.Fatal(err)
	}
	res, err := svc.KCover(2, true) // fresh=true: merge before answering
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sets=%v coverage=%.0f\n", res.Sets, res.EstimatedCoverage)
	// Output:
	// sets=[0 1] coverage=10
}

// ExampleService_KCover shows query freshness: a stale query answers
// from the current snapshot, a fresh one merges first.
func ExampleService_KCover() {
	svc, err := streamcover.NewService(5, streamcover.ServiceOptions{
		Options: streamcover.Options{Eps: 0.3, Seed: 7},
		K:       2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	edges := exampleEdges()
	if err := svc.Ingest(edges[:10]); err != nil { // sets 0 and 1 only
		log.Fatal(err)
	}
	first, _ := svc.KCover(2, true)

	if err := svc.Ingest(edges[10:]); err != nil { // the rest arrives
		log.Fatal(err)
	}
	stale, _ := svc.KCover(2, false) // still the old snapshot
	fresh, _ := svc.KCover(2, true)  // merges, sees everything

	fmt.Printf("first: coverage=%.0f over %d edges\n", first.EstimatedCoverage, first.SnapshotEdges)
	fmt.Printf("stale: coverage=%.0f over %d edges\n", stale.EstimatedCoverage, stale.SnapshotEdges)
	fmt.Printf("fresh: coverage=%.0f over %d edges\n", fresh.EstimatedCoverage, fresh.SnapshotEdges)
	// Output:
	// first: coverage=10 over 10 edges
	// stale: coverage=10 over 10 edges
	// fresh: coverage=10 over 23 edges
}

// ExampleHub hosts several isolated datasets (namespaces) in one
// process; each namespace is a full Service with its own sketches.
func ExampleHub() {
	hub := streamcover.NewHub()
	defer hub.Close()

	regions, err := hub.OpenNamespace("regions", 5, streamcover.ServiceOptions{
		Options: streamcover.Options{Eps: 0.3, Seed: 7},
		K:       2,
	})
	if err != nil {
		log.Fatal(err)
	}
	topics, err := hub.OpenNamespace("topics", 3, streamcover.ServiceOptions{
		Options: streamcover.Options{Eps: 0.3, Seed: 9},
		K:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two tenants ingest independently; neither sees the other's edges.
	if err := regions.Ingest(exampleEdges()); err != nil {
		log.Fatal(err)
	}
	if err := topics.Ingest([]streamcover.Edge{
		{Set: 0, Elem: 0}, {Set: 1, Elem: 0}, {Set: 1, Elem: 1}, {Set: 2, Elem: 2},
	}); err != nil {
		log.Fatal(err)
	}

	r, err := regions.KCover(2, true)
	if err != nil {
		log.Fatal(err)
	}
	tp, err := topics.KCover(1, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("namespaces=%v\n", hub.Namespaces())
	fmt.Printf("regions: sets=%v coverage=%.0f\n", r.Sets, r.EstimatedCoverage)
	fmt.Printf("topics: sets=%v coverage=%.0f\n", tp.Sets, tp.EstimatedCoverage)
	// Output:
	// namespaces=[regions topics]
	// regions: sets=[0 1] coverage=10
	// topics: sets=[1] coverage=2
}
