package streamcover

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// dialWireRetry dials like a reconnecting producer: after an abort the
// named stream stays busy until the server notices the dead connection,
// so CodeStreamBusy is retried briefly.
func dialWireRetry(t *testing.T, addr string, h WireHello) *IngestConn {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := DialIngest(addr, h)
		var werr *wire.WireError
		if errors.As(err, &werr) && werr.Code == wire.CodeStreamBusy && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatalf("DialIngest: %v", err)
		}
		return c
	}
}

// ingestOverWire streams edges to a hub's wire listener with a
// mid-stream connection abort: the first connection dies unflushed
// partway in, and the reconnect resumes from the server-acknowledged
// watermark, resending (deduplicated) overlap. Exactly-once ingest of
// the full stream is the invariant under test.
func ingestOverWire(t *testing.T, addr string, h WireHello, edges []Edge, batch int) {
	t.Helper()
	c := dialWireRetry(t, addr, h)
	if c.ResumeOffset() != 0 {
		t.Fatalf("fresh stream resumed at %d", c.ResumeOffset())
	}
	half := (len(edges) / batch / 2) * batch
	for off := 0; off < half; off += batch {
		end := off + batch
		if end > half {
			end = half
		}
		if err := c.Send(edges[off:end]); err != nil {
			t.Fatalf("wire send: %v", err)
		}
	}
	c.Abort() // unflushed: an unknown suffix of the sent batches is acked

	c = dialWireRetry(t, addr, h)
	resume := c.ResumeOffset()
	if resume < 0 || resume > int64(half) {
		t.Fatalf("resume offset %d outside [0,%d]", resume, half)
	}
	// Resume exactly at the acknowledged watermark — the client stamps
	// stream offsets itself, so the producer's contract is to continue
	// from ResumeOffset (server-side overlap trimming for hand-rolled
	// offsets is covered by the internal/wire protocol tests).
	for off := int(resume); off < len(edges); off += batch {
		end := off + batch
		if end > len(edges) {
			end = len(edges)
		}
		if err := c.Send(edges[off:end]); err != nil {
			t.Fatalf("wire resend: %v", err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("wire close: %v", err)
	}
}

// ingestOverHTTP posts edges to a multi-tenant JSON handler in batches.
func ingestOverHTTP(t *testing.T, base string, edges []Edge, batch int) {
	t.Helper()
	for off := 0; off < len(edges); off += batch {
		end := off + batch
		if end > len(edges) {
			end = len(edges)
		}
		pairs := make([][2]uint32, 0, end-off)
		for _, e := range edges[off:end] {
			pairs = append(pairs, [2]uint32{e.Set, e.Elem})
		}
		body, _ := json.Marshal(map[string]interface{}{"edges": pairs})
		resp, err := http.Post(base+"/v1/edges", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/edges: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/edges: %s", resp.Status)
		}
	}
}

// TestWireEquivalenceAcrossModes pins the wire ingest plane to the
// HTTP-JSON plane and the one-shot offline algorithms: for every
// workload generator and every engine mode, ingesting the same edge
// stream through a wire connection (with a mid-stream reconnect and
// overlapping resend) and through JSON posts (with a different batch
// size) must produce bit-identical query answers — and, for the
// merge-invariant sketch and weighted modes, the identical answer to
// the one-shot MaxCoverage / MaxWeightedCoverage run.
func TestWireEquivalenceAcrossModes(t *testing.T) {
	const k = 4
	generators := []struct {
		name string
		inst *Instance
	}{
		{"uniform", GenerateUniform(40, 300, 0.05, 1)},
		{"zipf", GenerateZipf(40, 300, 60, 1.1, 1.1, 2)},
		{"planted-kcover", GeneratePlantedKCover(40, 300, k, 0.8, 10, 3)},
		{"planted-setcover", GeneratePlantedSetCover(40, 300, 5, 2, 4)},
		{"blog-topics", GenerateBlogTopics(40, 200, 20, 5)},
		{"large-sets", GenerateLargeSets(12, 2000, 0.3, 6)},
		{"clustered", GenerateClustered(40, 300, 5, 7)},
	}
	modes := []string{"sketch", "weighted", "sieve"}

	for _, g := range generators {
		n, m := g.inst.NumSets(), g.inst.NumElems()
		// Materialize one edge order shared by every ingest path.
		var edges []Edge
		st := g.inst.EdgeStream(17)
		for {
			e, ok := st.Next()
			if !ok {
				break
			}
			edges = append(edges, e)
		}
		base := Options{Eps: 0.4, Seed: 99, NumElems: m, EdgeBudget: 50 * n}
		weights := Weights{Table: nil, Default: 0}
		weights.Table = make([]float64, m)
		for i := range weights.Table {
			weights.Table[i] = float64(1 + i%5)
		}

		for _, mode := range modes {
			t.Run(g.name+"/"+mode, func(t *testing.T) {
				opt := ServiceOptions{Options: base, K: k, Shards: 3, BatchQueue: 4}
				switch mode {
				case "weighted":
					opt.Weights = &weights
				case "sieve":
					opt.Engine = "sieve"
					opt.Shards = 1 // the sieve engine is order-dependent; one shard keeps the stream order exact
				}

				newNS := func(hub *Hub) *Service {
					svc, err := hub.OpenNamespace(DefaultNamespace, n, opt)
					if err != nil {
						t.Fatalf("OpenNamespace: %v", err)
					}
					return svc
				}
				wireHub, httpHub := NewHub(), NewHub()
				defer wireHub.Close()
				defer httpHub.Close()
				wireSvc, httpSvc := newNS(wireHub), newNS(httpHub)

				// Wire path, strict handshake: engine mode and (for the
				// weighted mode) the weight signature are validated.
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatalf("Listen: %v", err)
				}
				wsrv := wireHub.ServeWire(ln, wire.Options{AckEvery: 3})
				defer wsrv.Close()
				hello := WireHello{Stream: "eq", Engine: mode}
				if mode == "weighted" {
					hello.CheckWeights = true
					hello.WeightSig = wireSvc.Engine().WeightSig()
				}
				ingestOverWire(t, ln.Addr().String(), hello, edges, 97)

				// HTTP-JSON path, different batching.
				hs := httptest.NewServer(server.NewMultiHandler(httpHub.Multi(), server.HTTPOptions{}))
				defer hs.Close()
				ingestOverHTTP(t, hs.URL, edges, 173)

				if got := wireSvc.Engine().IngestedEdges(); got != int64(len(edges)) {
					t.Fatalf("wire ingested %d of %d edges (exactly-once violated)", got, len(edges))
				}
				wireRes, err := wireSvc.KCover(k, true)
				if err != nil {
					t.Fatalf("wire KCover: %v", err)
				}
				httpRes, err := httpSvc.KCover(k, true)
				if err != nil {
					t.Fatalf("http KCover: %v", err)
				}
				if !reflect.DeepEqual(wireRes, httpRes) {
					t.Fatalf("wire result diverged from HTTP result:\nwire: %+v\nhttp: %+v", wireRes, httpRes)
				}

				// The merge-invariant modes also pin to the one-shot runs.
				replay := &SliceStream{Edges: edges}
				switch mode {
				case "sketch":
					off, err := MaxCoverage(replay, n, k, base)
					if err != nil {
						t.Fatalf("MaxCoverage: %v", err)
					}
					if !reflect.DeepEqual(wireRes.Sets, off.Sets) || wireRes.EstimatedCoverage != off.EstimatedCoverage {
						t.Fatalf("wire (%v, %v) != offline MaxCoverage (%v, %v)",
							wireRes.Sets, wireRes.EstimatedCoverage, off.Sets, off.EstimatedCoverage)
					}
				case "weighted":
					off, err := MaxWeightedCoverage(replay, n, k, weights.WeightOf, base)
					if err != nil {
						t.Fatalf("MaxWeightedCoverage: %v", err)
					}
					if !reflect.DeepEqual(wireRes.Sets, off.Sets) || wireRes.EstimatedCoverage != off.EstimatedCoverage {
						t.Fatalf("wire (%v, %v) != offline MaxWeightedCoverage (%v, %v)",
							wireRes.Sets, wireRes.EstimatedCoverage, off.Sets, off.EstimatedCoverage)
					}
				}
			})
		}
	}
}

// TestWireHandshakeStrictness verifies the public wrapper surfaces
// handshake rejects as typed *wire.WireError values.
func TestWireHandshakeStrictness(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	if _, err := hub.OpenNamespace(DefaultNamespace, 16, ServiceOptions{
		Options: Options{Eps: 0.5, Seed: 1}, K: 2, Shards: 1,
	}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := hub.ServeWire(ln, wire.Options{})
	defer srv.Close()
	addr := ln.Addr().String()

	cases := []struct {
		hello WireHello
		code  uint16
	}{
		{WireHello{Namespace: "nope"}, wire.CodeUnknownNamespace},
		{WireHello{Engine: "weighted"}, wire.CodeEngineMismatch},
		{WireHello{CheckWeights: true, WeightSig: 1}, wire.CodeWeightsMismatch},
	}
	for _, tc := range cases {
		_, err := DialIngest(addr, tc.hello)
		var werr *wire.WireError
		if !errors.As(err, &werr) || werr.Code != tc.code {
			t.Fatalf("hello %+v: err=%v, want WireError code %d", tc.hello, err, tc.code)
		}
	}

	// The happy path reports the engine mode it connected to.
	c, err := DialIngest(addr, WireHello{})
	if err != nil {
		t.Fatalf("DialIngest: %v", err)
	}
	if c.Engine() != "sketch" {
		t.Fatalf("handshake engine %q, want sketch", c.Engine())
	}
	if err := c.Send([]Edge{{Set: 1, Elem: 2}}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	svc, _ := hub.Namespace(DefaultNamespace)
	if got := svc.Engine().IngestedEdges(); got != 1 {
		t.Fatalf("ingested %d, want 1", got)
	}
}
