package streamcover

import (
	"time"

	"repro/internal/server"
)

// Durability configures the write-ahead log of a Service or Hub
// (DESIGN.md §12). With durability enabled, every accepted Ingest batch
// is appended to a CRC-framed log on disk before it reaches the ingest
// workers, and construction replays any log tail a restored snapshot
// does not cover — so a crash loses at most what the fsync policy had
// not yet forced to stable storage, and recovery rebuilds the exact
// pre-crash state.
type Durability struct {
	// Dir is the log directory. For a Service it holds the log directly;
	// for a Hub it is the root, with one subdirectory per namespace.
	// Required.
	Dir string
	// Fsync is the fsync policy: "always" (a batch is on stable storage
	// before Ingest returns), "interval" (the default; fsync on a timer —
	// a power loss can drop up to FsyncInterval of acknowledged batches)
	// or "off" (kernel-buffered only: survives a process crash, not a
	// power loss).
	Fsync string
	// FsyncInterval is the "interval" policy's period (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates log segments at this size (default 64 MiB).
	SegmentBytes int64
}

func (d *Durability) walConfig() *server.WALConfig {
	if d == nil {
		return nil
	}
	return &server.WALConfig{
		Dir:           d.Dir,
		Fsync:         d.Fsync,
		FsyncInterval: d.FsyncInterval,
		SegmentBytes:  d.SegmentBytes,
	}
}

// Checkpoint persists the service state to path with full crash-safety:
// a batch-aligned snapshot is written atomically (temp file + fsync +
// rename + directory fsync), and on a durable service the write-ahead
// log is then truncated to the frames the snapshot does not cover.
// RestoreService (with matching options and Durability) reloads it.
func (s *Service) Checkpoint(path string) error {
	_, err := server.CheckpointEngine(s.engine, path)
	return err
}

// SetDurability arms the hub's durability plane: every namespace
// created, restored or recovered afterwards runs with a write-ahead log
// in d.Dir's subdirectory named after it, and DeleteNamespace removes
// that subdirectory with the namespace. Call before opening namespaces;
// a nil d disarms.
func (h *Hub) SetDurability(d *Durability) {
	h.multi.SetDurability(d.walConfig())
}

// RecoverNamespaces rebuilds namespaces that left a write-ahead log
// behind but are not in the hub — created after the last snapshot, or
// never snapshotted — from their persisted configuration and log
// replay. Call it after RestoreHub (or on a fresh hub) once durability
// is armed; it returns the recovered names. Together the two cover
// every namespace: RestoreHub restores the snapshotted ones (their log
// tails replay when the hub is durable), and RecoverNamespaces the
// rest.
func (h *Hub) RecoverNamespaces() ([]string, error) {
	return h.multi.RecoverNamespaces()
}

// Checkpoint persists every namespace into one multi-namespace snapshot
// at path with full crash-safety (atomic durable write, then per-
// namespace log truncation). RestoreHub reloads it.
func (h *Hub) Checkpoint(path string) error {
	return server.CheckpointMulti(h.multi, path)
}

// StartAutosnapshot checkpoints the hub to path every interval,
// bounding both the data at risk under the "interval"/"off" fsync
// policies and the log replay length at the next startup. onErr, when
// non-nil, receives every failed checkpoint. The returned stop function
// halts the loop and waits for an in-flight checkpoint.
func (h *Hub) StartAutosnapshot(path string, interval time.Duration, onErr func(error)) (stop func()) {
	return h.multi.StartAutosnapshot(path, interval, onErr)
}
