package streamcover

import (
	"bytes"
	"math"
	"testing"
)

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(2, 2, []Edge{{Set: 5, Elem: 0}}); err == nil {
		t.Fatal("out-of-range set accepted")
	}
	inst, err := NewInstance(2, 3, []Edge{{0, 0}, {0, 1}, {1, 2}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumSets() != 2 || inst.NumElems() != 3 || inst.NumEdges() != 3 {
		t.Fatal("dims wrong (dedupe?)")
	}
	if inst.Coverage([]int{0}) != 2 || inst.Coverage([]int{0, 1}) != 3 {
		t.Fatal("coverage wrong")
	}
}

func TestNewInstanceFromSets(t *testing.T) {
	inst, err := NewInstanceFromSets(4, [][]uint32{{0, 1}, {2, 3}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumSets() != 3 || inst.Coverage([]int{0, 1}) != 4 {
		t.Fatal("FromSets wrong")
	}
	if got := inst.SetElems(1); len(got) != 2 || got[0] != 2 {
		t.Fatalf("SetElems = %v", got)
	}
}

func TestEdgeStreamDeliversAllEdges(t *testing.T) {
	inst := GenerateUniform(10, 100, 0.1, 1)
	st := inst.EdgeStream(7)
	count := 0
	seen := map[uint64]bool{}
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		count++
		seen[uint64(e.Set)<<32|uint64(e.Elem)] = true
	}
	if count != inst.NumEdges() || len(seen) != inst.NumEdges() {
		t.Fatalf("stream delivered %d (%d distinct) of %d edges", count, len(seen), inst.NumEdges())
	}
	st.Reset()
	if _, ok := st.Next(); !ok {
		t.Fatal("Reset did not replay")
	}
}

func TestMaxCoverageEndToEnd(t *testing.T) {
	inst := GeneratePlantedKCover(60, 3000, 5, 0.9, 20, 11)
	if inst.Planted == nil {
		t.Fatal("generator did not record planted info")
	}
	res, err := MaxCoverage(inst.EdgeStream(3), inst.NumSets(), 5,
		Options{Eps: 0.4, Seed: 5, NumElems: inst.NumElems(), EdgeBudget: 60 * inst.NumSets()})
	if err != nil {
		t.Fatal(err)
	}
	got := inst.Coverage(res.Sets)
	bound := (1 - 1/math.E - 0.45) * float64(inst.Planted.Coverage)
	if float64(got) < bound {
		t.Fatalf("covered %d, planted %d", got, inst.Planted.Coverage)
	}
	if res.Sketch.EdgesStored == 0 || res.Sketch.EdgesSeen != int64(inst.NumEdges()) {
		t.Fatalf("sketch stats wrong: %+v", res.Sketch)
	}
	// Estimate close to the truth.
	if res.EstimatedCoverage < 0.7*float64(got) || res.EstimatedCoverage > 1.3*float64(got) {
		t.Fatalf("estimate %v vs truth %d", res.EstimatedCoverage, got)
	}
}

func TestMaxCoverageDeterministicAcrossOrders(t *testing.T) {
	inst := GenerateUniform(25, 800, 0.04, 13)
	var ref []int
	for order := uint64(0); order < 3; order++ {
		res, err := MaxCoverage(inst.EdgeStream(order), inst.NumSets(), 4,
			Options{Eps: 0.4, Seed: 999, NumElems: inst.NumElems(), EdgeBudget: 700})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Sets
			continue
		}
		for i := range ref {
			if res.Sets[i] != ref[i] {
				t.Fatal("solution depends on stream order")
			}
		}
	}
}

func TestSetCoverWithOutliersEndToEnd(t *testing.T) {
	inst := GeneratePlantedSetCover(50, 2000, 5, 15, 17)
	lambda := 0.1
	res, err := SetCoverWithOutliers(inst.EdgeStream(5), inst.NumSets(), lambda,
		Options{Eps: 0.5, Seed: 7, NumElems: inst.NumElems(), EdgeBudget: 50 * inst.NumSets()})
	if err != nil {
		t.Fatal(err)
	}
	covered := inst.Coverage(res.Sets)
	if float64(covered) < (1-lambda-0.05)*float64(inst.NumElems()) {
		t.Fatalf("covered %d of %d", covered, inst.NumElems())
	}
	bound := (1+0.5)*math.Log(1/lambda)*float64(inst.Planted.CoverSize) + 1
	if float64(len(res.Sets)) > bound {
		t.Fatalf("%d sets > bound %.1f", len(res.Sets), bound)
	}
	if res.GuessK <= 0 || res.Sketch.EdgesStored == 0 {
		t.Fatalf("result metadata missing: %+v", res)
	}
}

func TestSetCoverWithOutliersRejectsBadLambda(t *testing.T) {
	inst := GenerateUniform(5, 20, 0.3, 1)
	if _, err := SetCoverWithOutliers(inst.EdgeStream(1), 5, 0.9, Options{}); err == nil {
		t.Fatal("lambda=0.9 accepted")
	}
}

func TestSetCoverEndToEnd(t *testing.T) {
	inst := GeneratePlantedSetCover(40, 1500, 5, 10, 19)
	for _, r := range []int{1, 2, 3} {
		res, err := SetCover(inst.EdgeStream(2), inst.NumSets(), inst.NumElems(), r,
			Options{Eps: 0.5, Seed: 3, EdgeBudget: 40 * inst.NumSets()})
		if err != nil {
			t.Fatal(err)
		}
		if got := inst.Coverage(res.Sets); got != inst.NumElems() {
			t.Fatalf("r=%d: covered %d of %d", r, got, inst.NumElems())
		}
		if res.Passes != 2*(r-1)+1 {
			t.Fatalf("r=%d: passes = %d", r, res.Passes)
		}
		bound := (1+0.5)*math.Log(float64(inst.NumElems()))*float64(inst.Planted.CoverSize) + 1
		if float64(len(res.Sets)) > bound {
			t.Fatalf("r=%d: %d sets > bound %.1f", r, len(res.Sets), bound)
		}
	}
}

func TestGreedyReferences(t *testing.T) {
	inst := GenerateClustered(12, 120, 4, 23)
	sets, covered := inst.GreedyMaxCoverage(4)
	if covered != 120 || len(sets) != 4 {
		t.Fatalf("greedy max coverage: %d sets, %d covered", len(sets), covered)
	}
	cover, coveredAll := inst.GreedySetCover()
	if coveredAll != inst.CoveredElems() {
		t.Fatal("greedy set cover incomplete")
	}
	if len(cover) < 4 {
		t.Fatalf("cover of %d sets below planted size", len(cover))
	}
}

func TestBuildSketchAndEstimate(t *testing.T) {
	inst := GenerateLargeSets(10, 5000, 0.4, 29)
	sk, err := BuildSketch(inst.EdgeStream(4), SketchParams{
		NumSets:    10,
		K:          3,
		Eps:        0.4,
		Seed:       7,
		NumElems:   inst.NumElems(),
		EdgeBudget: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sk.SamplingProbability() >= 1 {
		t.Fatal("expected sampling on this instance")
	}
	sets := []int{0, 1, 2}
	truth := float64(inst.Coverage(sets))
	est := sk.EstimateCoverage(sets)
	if est < 0.8*truth || est > 1.2*truth {
		t.Fatalf("estimate %v vs truth %v", est, truth)
	}
	// The extracted instance supports custom algorithms.
	sub := sk.Instance()
	if sub.NumSets() != 10 {
		t.Fatal("sketch instance changed set count")
	}
	// EdgesStored is the peak, which bounds the final kept-edge count.
	if sub.NumEdges() > sk.Stats().EdgesStored {
		t.Fatalf("sketch instance edges %d > peak %d", sub.NumEdges(), sk.Stats().EdgesStored)
	}
	if sub.NumEdges() == 0 {
		t.Fatal("sketch instance empty")
	}
}

func TestBuildSketchValidation(t *testing.T) {
	if _, err := BuildSketch(&SliceStream{}, SketchParams{}); err == nil {
		t.Fatal("zero params accepted")
	}
}

func TestInstanceIORoundTrip(t *testing.T) {
	inst := GenerateZipf(15, 300, 80, 0.9, 0.7, 31)
	for _, mode := range []string{"text", "binary"} {
		var buf bytes.Buffer
		var err error
		if mode == "text" {
			err = inst.WriteText(&buf)
		} else {
			err = inst.WriteBinary(&buf)
		}
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadInstance(&buf)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if got.NumSets() != inst.NumSets() || got.NumEdges() != inst.NumEdges() {
			t.Fatalf("%s round trip changed instance", mode)
		}
	}
}

func TestReadInstanceEmpty(t *testing.T) {
	if _, err := ReadInstance(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestGeneratorsExposePlanted(t *testing.T) {
	if GeneratePlantedKCover(10, 100, 3, 0.8, 4, 1).Planted == nil {
		t.Fatal("planted k-cover missing info")
	}
	if g := GeneratePlantedSetCover(10, 100, 3, 4, 1); g.Planted == nil || g.Planted.CoverSize != 3 {
		t.Fatal("planted set cover missing info")
	}
	if GenerateUniform(10, 100, 0.1, 1).Planted != nil {
		t.Fatal("uniform should not claim planted info")
	}
	if GenerateBlogTopics(10, 100, 30, 1).NumSets() != 10 {
		t.Fatal("blog topics dims wrong")
	}
}

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Edges: []Edge{{0, 1}, {1, 2}}}
	e, ok := s.Next()
	if !ok || e.Set != 0 {
		t.Fatal("first edge wrong")
	}
	if _, ok := s.Next(); !ok {
		t.Fatal("second edge missing")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream overran")
	}
	s.Reset()
	if _, ok := s.Next(); !ok {
		t.Fatal("reset failed")
	}
}
