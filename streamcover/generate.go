package streamcover

import "repro/internal/workload"

// This file exposes the synthetic instance generators. Each returns an
// *Instance whose Planted field carries ground truth when the generator
// plants a solution, letting applications measure true approximation
// ratios. All generators are deterministic given the seed and never
// produce isolated elements.

func fromWorkload(w workload.Instance) *Instance {
	inst := &Instance{g: w.G}
	if w.PlantedSets != nil {
		inst.Planted = &PlantedInfo{
			Sets:      append([]int(nil), w.PlantedSets...),
			Coverage:  w.PlantedCoverage,
			CoverSize: w.OptCoverSize,
		}
	}
	return inst
}

// GenerateUniform returns n sets over m elements, each set containing
// each element independently with probability density.
func GenerateUniform(n, m int, density float64, seed uint64) *Instance {
	return fromWorkload(workload.Uniform(n, m, density, seed))
}

// GenerateZipf returns a heavy-tailed instance: set sizes decay as a
// power law with exponent sizeAlpha from maxSize, and element popularity
// follows a Zipf law with exponent elemAlpha.
func GenerateZipf(n, m, maxSize int, sizeAlpha, elemAlpha float64, seed uint64) *Instance {
	return fromWorkload(workload.Zipf(n, m, maxSize, sizeAlpha, elemAlpha, seed))
}

// GeneratePlantedKCover returns an instance whose optimal k-cover is
// (generically) a planted partition of a signal fraction of the ground
// set; Planted reports it.
func GeneratePlantedKCover(n, m, k int, signal float64, decoySize int, seed uint64) *Instance {
	return fromWorkload(workload.PlantedKCover(n, m, k, signal, decoySize, seed))
}

// GeneratePlantedSetCover returns an instance with a planted set cover of
// exactly coverSize sets partitioning the ground set; Planted reports it.
func GeneratePlantedSetCover(n, m, coverSize, overlap int, seed uint64) *Instance {
	return fromWorkload(workload.PlantedSetCover(n, m, coverSize, overlap, seed))
}

// GenerateBlogTopics mimics the multi-topic blog-watch application: sets
// are blogs, elements are the topics they post about, with power-law
// blog activity and topic popularity.
func GenerateBlogTopics(nBlogs, nTopics, maxTopicsPerBlog int, seed uint64) *Instance {
	return fromWorkload(workload.BlogTopics(nBlogs, nTopics, maxTopicsPerBlog, seed))
}

// GenerateLargeSets returns the regime the paper highlights: few sets,
// each covering a frac fraction of a large ground set (m ≫ n), where
// set-arrival algorithms must buffer Θ(m) while the sketch stays O~(n).
func GenerateLargeSets(n, m int, frac float64, seed uint64) *Instance {
	return fromWorkload(workload.LargeSets(n, m, frac, seed))
}

// GenerateClustered returns nClusters groups of near-duplicate sets with
// one full representative per cluster (the planted cover).
func GenerateClustered(n, m, nClusters int, seed uint64) *Instance {
	return fromWorkload(workload.Clustered(n, m, nClusters, seed))
}
