package streamcover

import (
	"io"

	"repro/internal/stream"
)

// TextEdgeStream streams edges lazily from a text edge list (the covgen
// format: optional "c n m" header, then "set elem" lines) without
// materializing the instance — true edge-arrival processing of files of
// any size in O~(n) memory.
type TextEdgeStream struct {
	ts      *stream.TextStream
	pending Edge
	hasPend bool
	primed  bool
}

// NewTextEdgeStream wraps r. If r is an io.ReadSeeker, Reset is
// available (CanReset reports it), enabling the multi-pass SetCover
// directly on a file.
func NewTextEdgeStream(r io.Reader) *TextEdgeStream {
	return &TextEdgeStream{ts: stream.NewTextStream(r)}
}

// prime reads ahead one edge so the header (which precedes all edges in
// the format) is parsed and available.
func (t *TextEdgeStream) prime() {
	if t.primed {
		return
	}
	t.primed = true
	e, ok := t.ts.Next()
	if ok {
		t.pending = Edge{Set: e.Set, Elem: e.Elem}
		t.hasPend = true
	}
}

// Header returns the dimensions declared by the file's "c n m" line;
// ok is false when the file has none.
func (t *TextEdgeStream) Header() (numSets, numElems int, ok bool) {
	t.prime()
	return t.ts.NumSets, t.ts.NumElems, t.ts.NumSets > 0 || t.ts.NumElems > 0
}

// Next implements Stream.
func (t *TextEdgeStream) Next() (Edge, bool) {
	t.prime()
	if t.hasPend {
		t.hasPend = false
		return t.pending, true
	}
	e, ok := t.ts.Next()
	return Edge{Set: e.Set, Elem: e.Elem}, ok
}

// Err returns the first parse or I/O error, if any.
func (t *TextEdgeStream) Err() error { return t.ts.Err() }

// CanReset reports whether the underlying reader supports replay.
func (t *TextEdgeStream) CanReset() bool { return t.ts.CanReset() }

// Reset rewinds to the beginning; it panics if CanReset is false.
func (t *TextEdgeStream) Reset() {
	t.ts.Reset()
	t.primed = false
	t.hasPend = false
}
