package streamcover

import "testing"

// BenchmarkMaxCoverage measures the public single-pass k-cover end to end
// on a 2000-blog blog-watch instance.
func BenchmarkMaxCoverage(b *testing.B) {
	inst := GenerateBlogTopics(2000, 50000, 2500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := MaxCoverage(inst.EdgeStream(uint64(i)), inst.NumSets(), 20,
			Options{Eps: 0.4, Seed: 9, NumElems: inst.NumElems(), EdgeBudget: 80 * 2000})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Sets) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkEdgeStream measures stream materialization alone, to separate
// harness cost from algorithm cost in BenchmarkMaxCoverage.
func BenchmarkEdgeStream(b *testing.B) {
	inst := GenerateBlogTopics(2000, 50000, 2500, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := inst.EdgeStream(uint64(i))
		if _, ok := st.Next(); !ok {
			b.Fatal("empty stream")
		}
	}
}
