package streamcover

import (
	"repro/internal/algorithms"
	"repro/internal/core"
)

// Options tunes the streaming algorithms.
type Options struct {
	// Eps is the accuracy parameter ε ∈ (0, 1] of the approximation
	// guarantees (default 0.5). Smaller ε tightens the guarantee and
	// grows the sketch as 1/ε³.
	Eps float64
	// Seed makes runs deterministic. Two runs with the same seed, stream
	// content and parameters return identical results regardless of edge
	// order (up to degree-cap tie-breaking; see the package tests).
	Seed uint64
	// NumElems is m when known; it only tunes a log log m factor of the
	// default sketch budget.
	NumElems int
	// EdgeBudget caps the sketch at an explicit number of edges. Zero
	// selects the paper's O~(n) formula, whose constants are conservative
	// — for practical runs a budget of 50–100 edges per set is plenty
	// (see EXPERIMENTS.md).
	EdgeBudget int
	// SpaceFactor scales the paper's formula budget instead of replacing
	// it (ignored when EdgeBudget is set).
	SpaceFactor float64
}

func (o Options) internal() algorithms.Options {
	return algorithms.Options{
		Eps:         o.Eps,
		Seed:        o.Seed,
		NumElems:    o.NumElems,
		EdgeBudget:  o.EdgeBudget,
		SpaceFactor: o.SpaceFactor,
	}
}

// SketchStats reports the space used by a run's sketch(es).
type SketchStats struct {
	// EdgesStored is the peak number of edges held.
	EdgesStored int
	// ElementsStored is the number of sampled elements held at the end.
	ElementsStored int
	// Bytes approximates the resident size of the sketch payload.
	Bytes int64
	// EdgesSeen is the number of stream edges consumed.
	EdgesSeen int64
}

func statsFrom(s core.Stats) SketchStats {
	return SketchStats{
		EdgesStored:    s.PeakEdges,
		ElementsStored: s.ElementsKept,
		Bytes:          s.Bytes,
		EdgesSeen:      s.EdgesSeen,
	}
}

// MaxCoverageResult reports a MaxCoverage run.
type MaxCoverageResult struct {
	// Sets is the chosen solution, at most k set ids.
	Sets []int
	// EstimatedCoverage estimates C(Sets) from the sketch (Lemma 2.2);
	// it is within ±ε·Opt_k of the truth w.h.p.
	EstimatedCoverage float64
	// Sketch reports space usage.
	Sketch SketchStats
}

// MaxCoverage solves k-cover over a single pass of the edge stream
// (Algorithm 3 / Theorem 3.1): the returned family of at most k sets is a
// (1 − 1/e − ε)-approximation of the best possible coverage, with
// probability 1 − 1/n, using O~(n) space. numSets is n, the number of
// sets edges may refer to.
func MaxCoverage(st Stream, numSets, k int, opt Options) (*MaxCoverageResult, error) {
	res, err := algorithms.KCover(publicToInternal{inner: st}, numSets, k, opt.internal())
	if err != nil {
		return nil, err
	}
	return &MaxCoverageResult{
		Sets:              res.Sets,
		EstimatedCoverage: res.EstimatedCoverage,
		Sketch:            statsFrom(res.Sketch),
	}, nil
}

// OutlierCoverResult reports a SetCoverWithOutliers run.
type OutlierCoverResult struct {
	// Sets covers at least a 1−λ fraction of the elements w.h.p.
	Sets []int
	// GuessK is the accepted geometric guess of the optimal cover size.
	GuessK int
	// Sketch aggregates space across the parallel guess sketches.
	Sketch SketchStats
	// Exhausted reports that no guess passed the acceptance check (the
	// best-effort solution is still returned); with paper-sized budgets
	// this has probability at most 1/n.
	Exhausted bool
}

// SetCoverWithOutliers finds, in one pass, a family covering at least a
// 1−λ fraction of the elements whose size is at most (1+ε)·ln(1/λ) times
// the optimal full set cover (Algorithm 5 / Theorem 3.3). λ must lie in
// (0, 1/e].
func SetCoverWithOutliers(st Stream, numSets int, lambda float64, opt Options) (*OutlierCoverResult, error) {
	res, err := algorithms.SetCoverOutliers(publicToInternal{inner: st}, numSets, lambda, opt.internal())
	if err != nil {
		return nil, err
	}
	return &OutlierCoverResult{
		Sets:   res.Sets,
		GuessK: res.GuessK,
		Sketch: SketchStats{
			EdgesStored: res.TotalEdges,
			Bytes:       res.TotalBytes,
		},
		Exhausted: res.Exhausted,
	}, nil
}

// SetCoverResult reports a SetCover run.
type SetCoverResult struct {
	// Sets covers every non-isolated element.
	Sets []int
	// Covered is the number of elements Sets covers.
	Covered int
	// Passes is the number of stream passes consumed (2r − 1).
	Passes int
	// PeakEdges is the peak number of edges held at any time.
	PeakEdges int
	// ResidualEdges is the size of the residual graph G_r buffered by the
	// final pass — the n·m^{3/(2+r)} term of the space bound.
	ResidualEdges int
}

// SetCover finds a full set cover in 2r−1 passes whose size is at most
// (1+ε)·ln(m) times optimal w.h.p., holding O~(n·m^{3/(2+r)} + m) edges
// (Algorithm 6 / Theorem 3.4). Larger r trades passes for space.
func SetCover(st ResettableStream, numSets, numElems, r int, opt Options) (*SetCoverResult, error) {
	wrapped := publicToInternalResettable{
		publicToInternal: publicToInternal{inner: st},
		reset:            st.Reset,
	}
	res, err := algorithms.SetCoverMultiPass(wrapped, numSets, numElems, r, opt.internal())
	if err != nil {
		return nil, err
	}
	return &SetCoverResult{
		Sets:          res.Sets,
		Covered:       res.Covered,
		Passes:        res.Passes,
		PeakEdges:     res.PeakEdges,
		ResidualEdges: res.ResidualEdges,
	}, nil
}

// Sketch is the paper's H≤n coverage sketch, exposed directly for users
// who want to build once and reuse: feed a stream, then estimate the
// coverage of arbitrary families or extract a compact instance to run
// custom algorithms on (any α-approximation on the sketch is an α−O(ε)
// approximation on the input, Theorem 2.7).
type Sketch struct {
	inner *core.Sketch
}

// SketchParams sizes a standalone sketch; K is the largest family size
// whose coverage will be queried with guarantee.
type SketchParams struct {
	// NumSets is n, the number of sets edges may refer to.
	NumSets int
	// K is the largest family size queried with guarantee.
	K int
	// Eps is the accuracy parameter (as in Options.Eps).
	Eps float64
	// Seed drives hashing, making the sketch deterministic.
	Seed uint64
	// NumElems is m when known (tunes the default budget only).
	NumElems int
	// EdgeBudget caps the sketch at an explicit number of edges
	// (0 = the paper's formula; see Options.EdgeBudget).
	EdgeBudget int
	// SpaceFactor scales the formula budget (see Options.SpaceFactor).
	SpaceFactor float64
}

// BuildSketch consumes the whole stream into a fresh H≤n sketch.
func BuildSketch(st Stream, p SketchParams) (*Sketch, error) {
	inner, err := core.NewSketch(core.Params{
		NumSets:     p.NumSets,
		NumElems:    p.NumElems,
		K:           p.K,
		Eps:         p.Eps,
		Seed:        p.Seed,
		EdgeBudget:  p.EdgeBudget,
		SpaceFactor: p.SpaceFactor,
	})
	if err != nil {
		return nil, err
	}
	inner.AddStream(publicToInternal{inner: st})
	return &Sketch{inner: inner}, nil
}

// EstimateCoverage estimates C(sets) on the original input from the
// sketch alone (within ±ε·Opt_K w.h.p. for |sets| ≤ K, Lemma 2.2).
func (s *Sketch) EstimateCoverage(sets []int) float64 {
	return s.inner.EstimateCoverage(sets)
}

// Instance extracts the sketch as a compact coverage instance (set ids
// preserved; elements renumbered) for running custom algorithms.
func (s *Sketch) Instance() *Instance {
	g, _ := s.inner.Graph()
	return &Instance{g: g}
}

// SamplingProbability returns p*, the effective element-sampling rate.
func (s *Sketch) SamplingProbability() float64 { return s.inner.PStar() }

// Stats reports the sketch's space usage.
func (s *Sketch) Stats() SketchStats { return statsFrom(s.inner.Stats()) }
