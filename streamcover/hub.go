package streamcover

import (
	"fmt"
	"io"

	"repro/internal/server"
)

// Hub hosts many independent coverage Services in one process, keyed by
// namespace name. Each namespace is a full Service — its own shard
// workers, sketch parameters, snapshots and query cache — so datasets
// are isolated by construction: a namespace's answers are bit-identical
// to a standalone Service fed the same edges with the same options (the
// package tests pin this), and its memory follows the paper's
// per-instance Õ(n/ε³) sketch bound independently of its neighbors.
//
// Use OpenNamespace to create namespaces and keep the returned Service
// handles; WriteSnapshot persists every namespace into one file that
// RestoreHub rebuilds wholesale. The zero Hub is not usable; construct
// with NewHub and Close when done. cmd/covserved exposes a hub-shaped
// directory over HTTP (the /v1/ns routes).
type Hub struct {
	multi *server.Multi
}

// DefaultNamespace is the namespace name a Hub treats as the default —
// the one single-dataset (pre-namespace) snapshot files restore into.
const DefaultNamespace = server.DefaultNamespace

// NewHub returns an empty hub. Namespaces are created explicitly with
// OpenNamespace (none exists up front, not even the default).
func NewHub() *Hub {
	return &Hub{multi: server.NewMulti(server.DefaultNamespace)}
}

// RestoreHub rebuilds a hub from a multi-namespace snapshot written by
// Hub.WriteSnapshot: every namespace is recreated with its persisted
// options and sketch. Retrieve handles with Namespace. Single-service
// snapshots (Service.WriteSnapshot) are a different format; load them
// with RestoreNamespace or RestoreService instead.
func RestoreHub(r io.Reader) (*Hub, error) {
	h := NewHub()
	if _, err := h.multi.RestoreAll(r); err != nil {
		h.Close()
		return nil, fmt.Errorf("streamcover: restoring hub: %w", err)
	}
	return h, nil
}

// serviceConfig translates public ServiceOptions to an engine Config.
func serviceConfig(numSets int, opt ServiceOptions) (server.Config, error) {
	if numSets <= 0 {
		return server.Config{}, fmt.Errorf("streamcover: service needs positive numSets")
	}
	if opt.K <= 0 {
		return server.Config{}, fmt.Errorf("streamcover: ServiceOptions.K must be positive")
	}
	cfg := server.Config{
		NumSets:     numSets,
		K:           opt.K,
		Eps:         opt.Eps,
		Seed:        opt.Seed,
		NumElems:    opt.NumElems,
		EdgeBudget:  opt.EdgeBudget,
		SpaceFactor: opt.SpaceFactor,
		Shards:      opt.Shards,
		QueueDepth:  opt.BatchQueue,
		MergeEvery:  opt.MergeEvery,
		QueryCache:  opt.QueryCache,
		Engine:      server.ModeName(opt.Engine),
		WAL:         opt.Durability.walConfig(),
	}
	if opt.Weights != nil {
		// The engine clones the table, so the caller may keep mutating its
		// copy without aliasing the namespace's weights.
		cfg.Weights = &server.WeightConfig{Table: opt.Weights.Table, Default: opt.Weights.Default}
	}
	return cfg, nil
}

// OpenNamespace creates namespace name for instances with numSets sets
// and returns its Service handle — the same handle type NewService
// returns, so everything a Service does (Ingest, KCover, Stats,
// WriteSnapshot, …) works per namespace. A namespace opened with
// opt.Weights set is a weighted-coverage dataset; its weight table
// travels with the hub snapshot, so RestoreHub rebuilds it wholesale.
// Opening an existing name fails; look the handle up with Namespace
// instead.
func (h *Hub) OpenNamespace(name string, numSets int, opt ServiceOptions) (*Service, error) {
	cfg, err := serviceConfig(numSets, opt)
	if err != nil {
		return nil, err
	}
	eng, err := h.multi.Create(name, cfg)
	if err != nil {
		return nil, err
	}
	return &Service{engine: eng, numSets: numSets}, nil
}

// RestoreNamespace creates namespace name seeded from a single-service
// snapshot written by Service.WriteSnapshot (or covserved's v1 snapshot
// files), with numSets and opt matching the writing service. It is the
// bridge from single-dataset deployments: restoring an old snapshot
// into DefaultNamespace yields the exact pre-namespace behavior.
func (h *Hub) RestoreNamespace(name string, r io.Reader, numSets int, opt ServiceOptions) (*Service, error) {
	cfg, err := serviceConfig(numSets, opt)
	if err != nil {
		return nil, err
	}
	cfg, err = server.ReadRestore(cfg, r)
	if err != nil {
		return nil, fmt.Errorf("streamcover: restoring namespace %q: %w", name, err)
	}
	eng, err := h.multi.Create(name, cfg)
	if err != nil {
		return nil, err
	}
	return &Service{engine: eng, numSets: numSets}, nil
}

// Namespace returns the Service handle for an existing namespace.
func (h *Hub) Namespace(name string) (*Service, bool) {
	eng, ok := h.multi.Get(name)
	if !ok {
		return nil, false
	}
	return &Service{engine: eng, numSets: eng.Config().NumSets}, true
}

// Namespaces lists the hub's namespace names, sorted (List returns
// entries in name order).
func (h *Hub) Namespaces() []string {
	infos := h.multi.List()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}

// DeleteNamespace stops the namespace's workers and removes it. Its
// Service handles fail afterwards; other namespaces are unaffected.
func (h *Hub) DeleteNamespace(name string) error {
	return h.multi.Delete(name)
}

// WriteSnapshot merges every namespace and writes the hub as one
// multi-namespace snapshot (format v2), restorable with RestoreHub.
func (h *Hub) WriteSnapshot(w io.Writer) error {
	return h.multi.WriteSnapshot(w)
}

// Multi exposes the underlying namespace directory, e.g. to mount the
// multi-tenant HTTP API with server.NewMultiHandler.
func (h *Hub) Multi() *server.Multi { return h.multi }

// Close stops every namespace. Idempotent.
func (h *Hub) Close() error { return h.multi.Close() }
