package streamcover

import (
	"repro/internal/weighted"
)

// Weights is a serializable element-weight assignment for weighted
// coverage services: weight(e) = Table[e] for e < len(Table), Default
// otherwise. Weights are instance configuration — fixed when a service
// or namespace is created — so every shard, snapshot and restart of a
// weighted service resolves the same weight for the same element. All
// weights must be finite and non-negative; zero-weight elements never
// contribute coverage and are skipped by the sketches.
type Weights struct {
	// Table[e] is the weight of element e for e < len(Table).
	Table []float64
	// Default is the weight of every element at or beyond len(Table);
	// the zero value ignores such elements.
	Default float64
}

// WeightOf returns the weight of element e — the oracle form of the
// table, as MaxWeightedCoverage consumes it.
func (w *Weights) WeightOf(e uint32) float64 {
	if int(e) < len(w.Table) {
		return w.Table[e]
	}
	return w.Default
}

// WeightedResult reports a MaxWeightedCoverage run.
type WeightedResult struct {
	// Sets is the chosen solution, at most k set ids.
	Sets []int
	// EstimatedCoverage estimates the total weight the solution covers.
	EstimatedCoverage float64
	// WeightClasses is the number of geometric weight classes sketched;
	// space is WeightClasses × one sketch.
	WeightClasses int
	// EdgesStored is the total edges across the class sketches.
	EdgesStored int
}

// MaxWeightedCoverage solves weighted k-cover over a single pass of the
// edge stream: pick at most k sets maximizing the total weight of the
// covered elements. weightOf supplies each element's non-negative weight
// (instance metadata, like the ids themselves); zero-weight elements are
// ignored.
//
// Extension beyond the paper (see DESIGN.md): elements are bucketed into
// geometric weight classes, one H≤n sketch per class, so each class is a
// uniform subsample with the Lemma 2.2 guarantee; a weighted lazy greedy
// (1−1/e for weighted coverage) runs on the scaled union. Space is
// O~(n · log(w_max/w_min)).
func MaxWeightedCoverage(st Stream, numSets, k int, weightOf func(elem uint32) float64, opt Options) (*WeightedResult, error) {
	res, err := weighted.KCover(publicToInternal{inner: st}, numSets, k, weightOf,
		weighted.Options{
			Eps:         opt.Eps,
			Seed:        opt.Seed,
			NumElems:    opt.NumElems,
			EdgeBudget:  opt.EdgeBudget,
			SpaceFactor: opt.SpaceFactor,
		})
	if err != nil {
		return nil, err
	}
	return &WeightedResult{
		Sets:              res.Sets,
		EstimatedCoverage: res.EstimatedCoverage,
		WeightClasses:     res.Classes,
		EdgesStored:       res.EdgesStored,
	}, nil
}

// WeightedCoverage evaluates the exact weighted coverage of sets on the
// instance under the given weights (len(weights) must equal NumElems).
func (i *Instance) WeightedCoverage(sets []int, weights []float64) (float64, error) {
	in := weighted.Instance{G: i.g, W: weights}
	if err := in.Validate(); err != nil {
		return 0, err
	}
	return in.Coverage(sets), nil
}

// GreedyMaxWeightedCoverage runs the offline weighted greedy (1−1/e) on
// the full instance — the unbounded-memory reference for weighted runs.
func (i *Instance) GreedyMaxWeightedCoverage(k int, weights []float64) (sets []int, covered float64, err error) {
	in := weighted.Instance{G: i.g, W: weights}
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	res := weighted.MaxCover(in, k)
	return res.Sets, res.Covered, nil
}
