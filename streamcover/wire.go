package streamcover

import (
	"net"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/wire"
)

// This file threads the binary wire ingest plane (internal/wire,
// DESIGN.md §13) through the public API: DialIngest opens a
// persistent-connection producer that streams edge batches to a
// covserved wire listener an order of magnitude faster than HTTP JSON
// posts (BENCH_wire.json), and Hub.WireServer exposes a hub's
// namespaces on such a listener in-process.

// WireHello configures a wire ingest connection: which namespace (and
// resumable stream) to feed, and the engine configuration the producer
// expects the namespace to run — mismatches are rejected at the
// handshake, exactly like the cluster plane rejects mismatched peers.
type WireHello struct {
	// Namespace is the target namespace name; empty selects "default".
	Namespace string
	// Stream, when non-empty, names a resumable stream: its acknowledged
	// watermark survives reconnects, and a new connection resumes sending
	// at ResumeOffset with server-side deduplication of any overlap.
	Stream string
	// Engine, when non-empty, must match the namespace's engine mode
	// ("sketch", "weighted", "sieve", "dynamic") or the handshake is
	// rejected.
	Engine string
	// CheckWeights makes the handshake compare WeightSig against the
	// namespace's weight signature.
	CheckWeights bool
	// WeightSig is the expected weight-table signature (with CheckWeights).
	WeightSig uint64
	// Ops announces that the session may send op batches (SendOps, with
	// deletes). The handshake is rejected unless the namespace runs a
	// delete-capable engine, so a producer learns at connect time — not
	// first-delete time — that it picked the wrong namespace.
	Ops bool
}

// IngestConn is a client-side wire ingest connection. Sends are
// pipelined (no per-batch round trip); Flush blocks until the server
// acknowledges everything sent, at which point every edge is in the
// engine — and in the WAL on a durable namespace. Safe for one sender
// goroutine; concurrent Send calls are serialized.
type IngestConn struct {
	c *wire.Conn

	mu   sync.Mutex
	conv []bipartite.Edge
}

// DialIngest connects to a covserved wire listener (-wire-addr) and
// performs the handshake. A configuration mismatch or unknown namespace
// surfaces as *wire.WireError.
func DialIngest(addr string, h WireHello) (*IngestConn, error) {
	ns := h.Namespace
	if ns == "" {
		ns = "default"
	}
	c, err := wire.Dial(addr, wire.Hello{
		Namespace:    ns,
		Stream:       h.Stream,
		Engine:       h.Engine,
		CheckWeights: h.CheckWeights,
		WeightSig:    h.WeightSig,
		Ops:          h.Ops,
	})
	if err != nil {
		return nil, err
	}
	return &IngestConn{c: c}, nil
}

// ResumeOffset returns the stream offset the connection resumed at: the
// server's acknowledged watermark from the handshake (0 for a fresh or
// anonymous stream). A reconnecting producer restarts its stream from
// this edge index.
func (c *IngestConn) ResumeOffset() int64 { return c.c.Handshake().Watermark }

// Engine returns the namespace's actual engine mode name, as reported
// by the handshake.
func (c *IngestConn) Engine() string { return c.c.Handshake().Engine }

// Watermark returns the server's latest acknowledged edge watermark.
func (c *IngestConn) Watermark() int64 { return c.c.Watermark() }

// Send streams one edge batch (pipelined; the slice is reusable on
// return).
func (c *IngestConn) Send(edges []Edge) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	conv := c.conv[:0]
	if cap(conv) < len(edges) {
		conv = make([]bipartite.Edge, 0, len(edges))
	}
	for _, e := range edges {
		conv = append(conv, bipartite.Edge{Set: e.Set, Elem: e.Elem})
	}
	c.conv = conv
	return c.c.Send(conv)
}

// SendOps streams one operation batch (inserts and deletes, pipelined;
// the slice is reusable on return). The connection must have been
// dialed with WireHello.Ops set, and the stream offset advances by the
// op count, so Flush and reconnect-resume cover deletes exactly like
// inserts.
func (c *IngestConn) SendOps(ops []Op) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	conv := make([]bipartite.Op, len(ops))
	for i, op := range ops {
		kind := bipartite.OpInsert
		if op.Delete {
			kind = bipartite.OpDelete
		}
		conv[i] = bipartite.Op{Kind: kind, Edge: bipartite.Edge{Set: op.Edge.Set, Elem: op.Edge.Elem}}
	}
	return c.c.SendOps(conv)
}

// SendStream drains st over the connection in batches of batchSize
// (default 1024) and returns the number of edges sent.
func (c *IngestConn) SendStream(st Stream, batchSize int) (int64, error) {
	if batchSize < 1 {
		batchSize = 1024
	}
	buf := make([]Edge, 0, batchSize)
	var total int64
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		buf = append(buf, e)
		if len(buf) == batchSize {
			if err := c.Send(buf); err != nil {
				return total, err
			}
			total += int64(len(buf))
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if err := c.Send(buf); err != nil {
			return total, err
		}
		total += int64(len(buf))
	}
	return total, nil
}

// Flush blocks until the server has acknowledged every edge sent so
// far.
func (c *IngestConn) Flush() error { return c.c.Flush() }

// Close flushes and closes the connection.
func (c *IngestConn) Close() error { return c.c.Close() }

// Abort drops the connection without flushing; a reconnect on the same
// named stream resumes exactly from the acknowledged watermark.
func (c *IngestConn) Abort() error { return c.c.Abort() }

// WireServer returns a wire ingest server over the hub's namespaces.
// Call Serve with a listener (it blocks accepting connections) and
// Close to stop:
//
//	srv := hub.WireServer(wire.Options{})
//	go srv.Serve(ln)
//	defer srv.Close()
func (h *Hub) WireServer(opt wire.Options) *wire.Server {
	return wire.NewServer(h.multi, opt)
}

// ServeWire is the one-call form: it starts a wire ingest server on ln
// and returns it (already serving in the background).
func (h *Hub) ServeWire(ln net.Listener, opt wire.Options) *wire.Server {
	srv := wire.NewServer(h.multi, opt)
	go srv.Serve(ln)
	return srv
}
