package streamcover

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/distributed"
	"repro/internal/stream"
)

// Shards partitions the instance's edges into `workers` disjoint streams
// by a seeded hash — the random partition a distributed file system
// provides. Feed them to MaxCoverageSharded.
func (i *Instance) Shards(workers int, seed uint64) []Stream {
	internal := distributed.ShardGraph(i.g, workers, seed)
	out := make([]Stream, len(internal))
	for j, sh := range internal {
		out[j] = &internalAnyStreamAdapter{inner: sh}
	}
	return out
}

// internalAnyStreamAdapter bridges any internal stream to the public one.
type internalAnyStreamAdapter struct {
	inner stream.Stream
}

func (a *internalAnyStreamAdapter) Next() (Edge, bool) {
	e, ok := a.inner.Next()
	return Edge{Set: e.Set, Elem: e.Elem}, ok
}

// ShardedResult reports a distributed MaxCoverage round.
type ShardedResult struct {
	// Sets is the solution; identical to the single-machine solution for
	// the same Options, because the merged sketch equals the
	// single-machine sketch.
	Sets []int
	// EstimatedCoverage is the merged sketch's coverage estimate.
	EstimatedCoverage float64
	// EdgesShipped is the total communication: the sum of worker sketch
	// sizes sent to the coordinator.
	EdgesShipped int
	// WorkerEdges lists each worker's shipped sketch size.
	WorkerEdges []int
}

// MaxCoverageSharded solves k-cover in one distributed round: each shard
// is sketched independently (in parallel), the sketches are merged, and
// greedy runs on the merged sketch. The guarantee matches MaxCoverage
// (Theorem 3.1) because the H≤n sketch is composable: the merge of shard
// sketches is exactly the sketch of the whole input.
func MaxCoverageSharded(shards []Stream, numSets, k int, opt Options) (*ShardedResult, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("streamcover: no shards")
	}
	if numSets <= 0 || k <= 0 {
		return nil, fmt.Errorf("streamcover: MaxCoverageSharded needs positive numSets and k")
	}
	internalShards := make([]stream.Stream, len(shards))
	for i, sh := range shards {
		internalShards[i] = publicToInternal{inner: sh}
	}
	params := algorithms.KCoverParams(numSets, k, opt.internal())
	res, err := distributed.KCover(internalShards, params, k)
	if err != nil {
		return nil, err
	}
	out := &ShardedResult{
		Sets:              res.Sets,
		EstimatedCoverage: res.EstimatedCoverage,
		WorkerEdges:       res.Stats.WorkerEdgesKept,
	}
	for _, w := range res.Stats.WorkerEdgesKept {
		out.EdgesShipped += w
	}
	return out, nil
}
