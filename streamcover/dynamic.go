package streamcover

// The public surface of the dynamic (insert/delete) engine mode: a
// turnstile-stream coverage service backed by the leveled L0 edge
// sampler (internal/l0, DESIGN.md §14). Inserts behave exactly like the
// other engines'; Delete retracts previously inserted edges, and
// queries answer on the exact incidence list the sampler recovers from
// the net (insert − delete) edge multiset.

import (
	"repro/internal/bipartite"
	"repro/internal/server"
)

// Op is one element of a dynamic stream: an edge plus whether it is
// being retracted. The zero Op inserts.
type Op struct {
	// Delete retracts one previously inserted copy of Edge. A stream is
	// valid when no edge is ever deleted more times than it was inserted.
	Delete bool
	Edge   Edge
}

// NewDynamicService starts a dynamic coverage service: the only engine
// mode that accepts deletes. Its sampler is a linear function of the
// net op multiset, so answers are independent of op order, sharding and
// batching — and insert-only usage answers the same queries the sketch
// engine does on small streams (both recover the stream exactly while
// it fits their budget). It is NewService with opt.Engine = "dynamic".
func NewDynamicService(numSets int, opt ServiceOptions) (*Service, error) {
	opt.Engine = string(server.ModeDynamic)
	return NewService(numSets, opt)
}

// ApplyOps absorbs one batch of inserts and deletes. Insert-only
// batches take exactly the Ingest path on any engine; a batch carrying
// deletes requires a dynamic service and fails with a typed error
// (server.ErrDeletesUnsupported) on the append-only engines. Safe for
// concurrent use; all-or-nothing like Ingest.
func (s *Service) ApplyOps(ops []Op) error {
	conv := make([]bipartite.Op, len(ops))
	for i, op := range ops {
		kind := bipartite.OpInsert
		if op.Delete {
			kind = bipartite.OpDelete
		}
		conv[i] = bipartite.Op{Kind: kind, Edge: bipartite.Edge{Set: op.Edge.Set, Elem: op.Edge.Elem}}
	}
	_, err := s.engine.IngestOps(conv)
	return err
}

// Delete retracts a batch of previously inserted edges — ApplyOps with
// every op a delete. Dynamic services only.
func (s *Service) Delete(edges []Edge) error {
	conv := make([]bipartite.Edge, len(edges))
	for i, e := range edges {
		conv[i] = bipartite.Edge{Set: e.Set, Elem: e.Elem}
	}
	_, err := s.engine.IngestOps(bipartite.Deletes(conv))
	return err
}
