package streamcover

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/greedy"
)

// EnsembleResult reports a MaxCoverageEnsemble run.
type EnsembleResult struct {
	// Sets is the best solution across replicas (highest median-estimated
	// coverage).
	Sets []int
	// EstimatedCoverage is the median coverage estimate of Sets across
	// replicas — more robust than any single sketch's estimate.
	EstimatedCoverage float64
	// Replicas is the number of independent sketches maintained.
	Replicas int
	// EdgesStored is the total edges across replicas (space = R sketches).
	EdgesStored int
}

// MaxCoverageEnsemble runs Algorithm 3 with R independent sketches over
// the same single pass (§1.3.2: the algorithms build O~(1) independent
// sketch instances). It returns the best replica's solution judged by the
// median estimate, boosting the success probability from 1 − 1/n to
// 1 − exp(−Ω(R)) at R times the space. For most uses MaxCoverage (R = 1)
// suffices; use this when a single run's failure probability matters.
func MaxCoverageEnsemble(st Stream, numSets, k, replicas int, opt Options) (*EnsembleResult, error) {
	if numSets <= 0 || k <= 0 {
		return nil, fmt.Errorf("streamcover: MaxCoverageEnsemble needs positive numSets and k")
	}
	params := algorithms.KCoverParams(numSets, k, opt.internal())
	ens, err := core.NewEnsemble(params, replicas)
	if err != nil {
		return nil, err
	}
	ens.AddStream(publicToInternal{inner: st})
	sets, est := ens.BestSolution(func(g *bipartite.Graph) []int {
		return greedy.MaxCover(g, k).Sets
	})
	return &EnsembleResult{
		Sets:              sets,
		EstimatedCoverage: est,
		Replicas:          ens.Replicas(),
		EdgesStored:       ens.Edges(),
	}, nil
}
