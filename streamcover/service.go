package streamcover

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/bipartite"
	"repro/internal/server"
)

// ServiceOptions configures a long-running coverage service (see
// internal/server for the engine architecture). The embedded Options
// carry the usual accuracy/seed/budget knobs; a Service additionally
// needs K, the solution size the sketch is provisioned for.
type ServiceOptions struct {
	// Options are the accuracy/seed/space knobs shared with the one-shot
	// algorithms. A Service and a MaxCoverage run with identical Options
	// (and k = K) return identical answers over the same edges.
	Options
	// K is the solution size the service sketch supports with guarantee
	// (required, ≥ 1). Queries may ask for any k; Theorem 3.1's guarantee
	// holds for k ≤ K.
	K int
	// Shards is the number of concurrent ingest workers (default 4).
	Shards int
	// BatchQueue is the per-shard mailbox depth, in batches (default 64).
	// When full, Ingest blocks — backpressure instead of unbounded memory.
	BatchQueue int
	// MergeEvery, when positive, merges shard sketches into a fresh
	// queryable snapshot on this period.
	MergeEvery time.Duration
	// QueryCache bounds the memoized query results kept per snapshot
	// (repeated queries against an unchanged snapshot return without
	// re-running greedy). 0 selects the default (64); negative disables.
	QueryCache int
	// Weights, when non-nil, makes this a weighted-coverage service:
	// each shard keeps one H≤n sketch per geometric weight class
	// (instead of a single sketch), and KCover maximizes the total
	// weight of the covered elements. A weighted service answers
	// bit-identically to the one-shot MaxWeightedCoverage run with the
	// same Options and weight oracle over the same edges. Outlier and
	// full-greedy queries are not defined on weighted instances and
	// return an error. NewWeightedService is the explicit constructor.
	Weights *Weights
	// Engine selects the engine mode by name: "sketch" (the default;
	// also implied empty), "weighted" (implied by Weights) or "sieve",
	// the constant-memory sieve-streaming engine that keeps at most K
	// candidate sets per shard instead of an edge sample. The sieve
	// engine answers KCover only (outlier and full-greedy queries return
	// an error), is single-pass order-dependent rather than
	// merge-invariant, and its answers are exact over the buffered
	// candidates. NewSieveService is the explicit constructor. "dynamic"
	// selects the insert/delete L0-sampler engine — the only mode whose
	// ApplyOps/Delete accept retractions; NewDynamicService is its
	// explicit constructor.
	Engine string
	// Durability, when non-nil, gives the service a write-ahead log:
	// accepted batches are logged before the ingest workers see them, and
	// construction replays any log tail a restored snapshot does not
	// cover. See Durability for the fsync policies, Service.Checkpoint
	// for snapshot + log truncation. Nil (the default) keeps the service
	// purely in-memory.
	Durability *Durability
}

// Service is a live, concurrently-ingestible coverage-query service: the
// H≤n sketch lifted from a batch library into a long-running sharded
// engine. Feed it edges from any number of goroutines, query it at any
// time; answers are computed on a merged snapshot of all shard sketches
// and carry the same guarantees as the one-shot algorithms, because the
// merged sketch equals the sketch a single pass would have built.
//
// The zero Service is not usable; construct with NewService and Close
// when done. cmd/covserved exposes a Service over HTTP.
type Service struct {
	engine  *server.Engine
	numSets int
	// convPool recycles the public-to-internal edge conversion buffers of
	// Ingest: the engine copies edges into its own pooled per-shard
	// buffers before returning, so a conversion buffer is reusable the
	// moment the engine call returns.
	convPool sync.Pool
}

// NewService starts a coverage service for instances with numSets sets
// (weighted when opt.Weights is set).
func NewService(numSets int, opt ServiceOptions) (*Service, error) {
	cfg, err := serviceConfig(numSets, opt) // shared with the Hub namespaces
	if err != nil {
		return nil, err
	}
	eng, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Service{engine: eng, numSets: numSets}, nil
}

// NewWeightedService starts a weighted coverage service: KCover picks k
// sets maximizing the total weight of the covered elements, answering
// bit-identically to MaxWeightedCoverage with the same Options and
// weights over the same edges. It is NewService with opt.Weights set.
func NewWeightedService(numSets int, weights Weights, opt ServiceOptions) (*Service, error) {
	opt.Weights = &weights
	return NewService(numSets, opt)
}

// NewSieveService starts a sieve-streaming coverage service: each shard
// keeps a swap buffer of at most opt.K candidate sets (constant memory,
// no edge sampling), admitting a set on arrival while there is room and
// afterwards swapping out a zero-unique-contribution candidate whenever
// an uncovered element arrives. KCover answers exactly over the
// buffered candidates; outlier and full-greedy queries are not defined.
// It is NewService with opt.Engine = "sieve".
func NewSieveService(numSets int, opt ServiceOptions) (*Service, error) {
	opt.Engine = string(server.ModeSieve)
	return NewService(numSets, opt)
}

// RestoreService starts a service from a snapshot previously written by
// WriteSnapshot. numSets and opt must match the writing service —
// including opt.Weights: a weighted service persists a class bank, an
// unweighted one a single sketch, and the options select the decoder.
func RestoreService(r io.Reader, numSets int, opt ServiceOptions) (*Service, error) {
	cfg, err := serviceConfig(numSets, opt)
	if err != nil {
		return nil, err
	}
	cfg, err = server.ReadRestore(cfg, r)
	if err != nil {
		return nil, fmt.Errorf("streamcover: restoring service: %w", err)
	}
	eng, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Service{engine: eng, numSets: numSets}, nil
}

// Engine exposes the underlying engine, e.g. to mount its HTTP handler.
func (s *Service) Engine() *server.Engine { return s.engine }

// Weighted reports whether the service runs the weighted query plane
// (constructed with ServiceOptions.Weights / NewWeightedService).
func (s *Service) Weighted() bool { return s.engine.Weighted() }

// Ingest absorbs a batch of edges. Safe for concurrent use; blocks only
// for backpressure when shard queues are full. The caller's slice may be
// reused as soon as Ingest returns.
func (s *Service) Ingest(edges []Edge) error {
	var conv []bipartite.Edge
	if v := s.convPool.Get(); v != nil {
		conv = (*v.(*[]bipartite.Edge))[:0]
	} else {
		conv = make([]bipartite.Edge, 0, len(edges))
	}
	for _, e := range edges {
		conv = append(conv, bipartite.Edge{Set: e.Set, Elem: e.Elem})
	}
	_, err := s.engine.Ingest(conv)
	s.convPool.Put(&conv)
	return err
}

// IngestStream drains st into the service in batches of batchSize
// (default 1024) and returns the number of edges ingested.
func (s *Service) IngestStream(st Stream, batchSize int) (int64, error) {
	if batchSize < 1 {
		batchSize = 1024
	}
	var total int64
	buf := make([]bipartite.Edge, 0, batchSize)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if _, err := s.engine.Ingest(buf); err != nil {
			return err
		}
		total += int64(len(buf))
		buf = buf[:0]
		return nil
	}
	for {
		e, ok := st.Next()
		if !ok {
			return total, flush()
		}
		buf = append(buf, bipartite.Edge{Set: e.Set, Elem: e.Elem})
		if len(buf) == batchSize {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
}

// Refresh forces a coordinator merge so subsequent queries reflect every
// previously ingested edge.
func (s *Service) Refresh() error {
	_, err := s.engine.Refresh()
	return err
}

// ServiceQueryResult reports a service query.
type ServiceQueryResult struct {
	// Sets is the chosen solution.
	Sets []int
	// EstimatedCoverage estimates C(Sets) on everything ingested up to the
	// snapshot the query ran on (Lemma 2.2).
	EstimatedCoverage float64
	// SketchCoverage is the raw covered-count inside the snapshot sketch.
	SketchCoverage int
	// SnapshotEdges is the ingested-edge count of that snapshot — how
	// fresh the answer is.
	SnapshotEdges int64
}

func fromEngineResult(r *server.QueryResult) *ServiceQueryResult {
	return &ServiceQueryResult{
		Sets:              r.Sets,
		EstimatedCoverage: r.EstimatedCoverage,
		SketchCoverage:    r.SketchCoverage,
		SnapshotEdges:     r.SnapshotEdges,
	}
}

// KCover answers a max-k-cover query against the current snapshot (stale
// by design; call Refresh first — or pass fresh=true — for a fully
// up-to-date answer). With k = Options.K and a fresh snapshot, the
// answer equals the one-shot MaxCoverage over the same edges; on a
// weighted service it runs the weighted greedy and equals the one-shot
// MaxWeightedCoverage (EstimatedCoverage is then the covered weight).
func (s *Service) KCover(k int, fresh bool) (*ServiceQueryResult, error) {
	r, err := s.engine.Query(server.Query{Algo: server.AlgoKCover, K: k, Refresh: fresh})
	if err != nil {
		return nil, err
	}
	return fromEngineResult(r), nil
}

// CoverWithOutliers greedily covers a 1−lambda fraction of the sampled
// elements on the current snapshot.
func (s *Service) CoverWithOutliers(lambda float64, fresh bool) (*ServiceQueryResult, error) {
	r, err := s.engine.Query(server.Query{Algo: server.AlgoOutliers, Lambda: lambda, Refresh: fresh})
	if err != nil {
		return nil, err
	}
	return fromEngineResult(r), nil
}

// GreedyCover runs the full greedy set cover over the snapshot sketch.
func (s *Service) GreedyCover(fresh bool) (*ServiceQueryResult, error) {
	r, err := s.engine.Query(server.Query{Algo: server.AlgoGreedy, Refresh: fresh})
	if err != nil {
		return nil, err
	}
	return fromEngineResult(r), nil
}

// ServiceStats reports service accounting.
type ServiceStats struct {
	// Shards is the ingest worker count.
	Shards int
	// IngestedEdges is the total number of edges accepted.
	IngestedEdges int64
	// SnapshotEdges is the ingested-edge count of the current snapshot
	// (0 when no merge has happened yet).
	SnapshotEdges int64
	// SketchEdges is the number of edges the current merged sketch holds.
	SketchEdges int
	// SketchElements is the number of sampled elements the current merged
	// sketch holds.
	SketchElements int
	// PStar is the snapshot's sampling probability.
	PStar float64
	// Queries counts queries served (cache hits included).
	Queries int64
	// QueryCacheHits counts queries answered from the memoized result
	// cache without re-running greedy.
	QueryCacheHits int64
	// Weighted reports whether the service runs the weighted query
	// plane; WeightClasses counts the non-empty weight classes in the
	// current snapshot (weighted services only).
	Weighted      bool
	WeightClasses int
}

// Stats returns a consistent accounting of the service.
func (s *Service) Stats() (*ServiceStats, error) {
	st, err := s.engine.Stats()
	if err != nil {
		return nil, err
	}
	return &ServiceStats{
		Shards:         st.Shards,
		IngestedEdges:  st.IngestedEdges,
		SnapshotEdges:  st.SnapshotEdges,
		SketchEdges:    st.SnapshotKept,
		SketchElements: st.SnapshotElements,
		PStar:          st.SnapshotPStar,
		Queries:        st.Queries,
		QueryCacheHits: st.QueryCacheHits,
		Weighted:       st.Weighted,
		WeightClasses:  st.WeightClasses,
	}, nil
}

// WriteSnapshot merges and serializes the service state; restore it with
// RestoreService.
func (s *Service) WriteSnapshot(w io.Writer) error {
	_, err := s.engine.WriteSnapshot(w)
	return err
}

// Close stops the ingest workers. Idempotent; further calls on the
// service fail with an error.
func (s *Service) Close() error { return s.engine.Close() }
