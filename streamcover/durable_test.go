package streamcover

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func durableEdges(n, m, count int) []Edge {
	out := make([]Edge, count)
	state := uint64(0xabcdef12345)
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		out[i] = Edge{Set: uint32(state>>33) % uint32(n), Elem: uint32(state>>13) % uint32(m)}
	}
	return out
}

// TestDurableServiceSurvivesRestart pins the public Service surface of
// the durability plane: a durable service restarted over the same log
// directory (without any explicit snapshot) serializes to exactly the
// bytes of the original.
func TestDurableServiceSurvivesRestart(t *testing.T) {
	const n, m = 30, 400
	opt := ServiceOptions{
		Options:    Options{Eps: 0.4, Seed: 7, NumElems: m, EdgeBudget: 40 * n},
		K:          5,
		Shards:     3,
		Durability: &Durability{Dir: t.TempDir(), Fsync: "off"},
	}
	svc, err := NewService(n, opt)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	edges := durableEdges(n, m, 500)
	for i := 0; i < len(edges); i += 50 {
		if err := svc.Ingest(edges[i : i+50]); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	var want bytes.Buffer
	if err := svc.WriteSnapshot(&want); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	svc.Close()

	svc2, err := NewService(n, opt)
	if err != nil {
		t.Fatalf("NewService(restart): %v", err)
	}
	defer svc2.Close()
	var got bytes.Buffer
	if err := svc2.WriteSnapshot(&got); err != nil {
		t.Fatalf("WriteSnapshot(restart): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("restarted durable service state differs")
	}
}

// TestDurableServiceCheckpointAndTail pins Checkpoint + tail replay: a
// mid-stream Checkpoint truncates the log, and a restart restoring that
// snapshot over the remaining log tail reproduces the full state.
func TestDurableServiceCheckpointAndTail(t *testing.T) {
	const n, m = 30, 400
	dir := t.TempDir()
	snap := filepath.Join(t.TempDir(), "svc.snap")
	opt := ServiceOptions{
		Options:    Options{Eps: 0.4, Seed: 7, NumElems: m, EdgeBudget: 40 * n},
		K:          5,
		Shards:     3,
		Durability: &Durability{Dir: dir, Fsync: "off"},
	}
	svc, err := NewService(n, opt)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	edges := durableEdges(n, m, 400)
	if err := svc.Ingest(edges[:200]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if err := svc.Checkpoint(snap); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := svc.Ingest(edges[200:]); err != nil {
		t.Fatalf("Ingest(tail): %v", err)
	}
	var want bytes.Buffer
	if err := svc.WriteSnapshot(&want); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	svc.Close()

	f, err := os.Open(snap)
	if err != nil {
		t.Fatalf("opening checkpoint: %v", err)
	}
	svc2, err := RestoreService(f, n, opt)
	f.Close()
	if err != nil {
		t.Fatalf("RestoreService: %v", err)
	}
	defer svc2.Close()
	var got bytes.Buffer
	if err := svc2.WriteSnapshot(&got); err != nil {
		t.Fatalf("WriteSnapshot(restored): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("checkpoint+tail restore differs from pre-restart state")
	}
}

// TestDurableHubRecovery pins the Hub surface: autosnapshot-style
// Checkpoint plus RecoverNamespaces rebuild both a snapshotted
// namespace (with log tail) and a namespace that was never snapshotted.
func TestDurableHubRecovery(t *testing.T) {
	const n, m = 30, 400
	walRoot := t.TempDir()
	snap := filepath.Join(t.TempDir(), "hub.snap")
	d := &Durability{Dir: walRoot, Fsync: "off"}
	opt := ServiceOptions{
		Options: Options{Eps: 0.4, Seed: 7, NumElems: m, EdgeBudget: 40 * n},
		K:       5,
		Shards:  2,
	}

	h := NewHub()
	h.SetDurability(d)
	a, err := h.OpenNamespace("alpha", n, opt)
	if err != nil {
		t.Fatalf("OpenNamespace(alpha): %v", err)
	}
	edges := durableEdges(n, m, 300)
	if err := a.Ingest(edges[:150]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if err := h.Checkpoint(snap); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := a.Ingest(edges[150:]); err != nil {
		t.Fatalf("Ingest(tail): %v", err)
	}
	b, err := h.OpenNamespace("beta", n, opt)
	if err != nil {
		t.Fatalf("OpenNamespace(beta): %v", err)
	}
	if err := b.Ingest(edges[:100]); err != nil {
		t.Fatalf("Ingest(beta): %v", err)
	}
	var wantA, wantB bytes.Buffer
	if err := a.WriteSnapshot(&wantA); err != nil {
		t.Fatalf("WriteSnapshot(alpha): %v", err)
	}
	if err := b.WriteSnapshot(&wantB); err != nil {
		t.Fatalf("WriteSnapshot(beta): %v", err)
	}
	h.Close()

	f, err := os.Open(snap)
	if err != nil {
		t.Fatalf("opening hub snapshot: %v", err)
	}
	defer f.Close()
	h2 := NewHub()
	h2.SetDurability(d)
	defer h2.Close()
	if _, err := h2.Multi().RestoreAll(f); err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	recovered, err := h2.RecoverNamespaces()
	if err != nil {
		t.Fatalf("RecoverNamespaces: %v", err)
	}
	if len(recovered) != 1 || recovered[0] != "beta" {
		t.Fatalf("RecoverNamespaces = %v, want [beta]", recovered)
	}
	a2, ok := h2.Namespace("alpha")
	if !ok {
		t.Fatalf("alpha missing after recovery")
	}
	b2, ok := h2.Namespace("beta")
	if !ok {
		t.Fatalf("beta missing after recovery")
	}
	var gotA, gotB bytes.Buffer
	if err := a2.WriteSnapshot(&gotA); err != nil {
		t.Fatalf("WriteSnapshot(alpha2): %v", err)
	}
	if err := b2.WriteSnapshot(&gotB); err != nil {
		t.Fatalf("WriteSnapshot(beta2): %v", err)
	}
	if !bytes.Equal(gotA.Bytes(), wantA.Bytes()) {
		t.Fatalf("alpha state differs after recovery")
	}
	if !bytes.Equal(gotB.Bytes(), wantB.Bytes()) {
		t.Fatalf("beta state differs after recovery")
	}
}
