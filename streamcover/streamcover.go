// Package streamcover is the public API of this repository: streaming
// algorithms for coverage problems (maximum k-cover, set cover, set cover
// with outliers) in the edge-arrival model, implementing
//
//	Bateni, Esfandiari, Mirrokni.
//	"Almost Optimal Streaming Algorithms for Coverage Problems." SPAA 2017.
//
// An instance is a family of n sets over m elements; it arrives as a
// stream of (set, element) membership edges in arbitrary order. The
// algorithms maintain the paper's H≤n sketch — O~(n) edges, independent
// of m and of the set sizes — and run classical offline algorithms on the
// sketch, losing only O(ε) in the approximation factor:
//
//   - MaxCoverage: single pass, (1 − 1/e − ε)-approximate k-cover.
//   - SetCoverWithOutliers: single pass, (1+ε)·ln(1/λ)-approximate cover
//     of a (1−λ) fraction of the elements.
//   - SetCover: 2r−1 passes, (1+ε)·ln(m)-approximate full set cover.
//
// All functions are deterministic given Options.Seed. See DESIGN.md for
// the mapping from the paper's theorems to this API and EXPERIMENTS.md
// for measured guarantees.
package streamcover

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/bipartite"
	"repro/internal/greedy"
	"repro/internal/stream"
)

// newPeekReader wraps r so the instance reader can sniff the format.
func newPeekReader(r io.Reader) *bufio.Reader { return bufio.NewReader(r) }

// Edge is one (set, element) membership pair — the streaming unit of the
// edge-arrival model.
type Edge struct {
	// Set is the set id, in [0, n).
	Set uint32
	// Elem is the element id, in [0, m).
	Elem uint32
}

// Stream delivers edges one at a time; Next reports ok=false after the
// last edge. Implementations may generate edges lazily (e.g. from disk).
type Stream interface {
	// Next returns the next edge, or ok=false when the stream is drained.
	Next() (e Edge, ok bool)
}

// ResettableStream is a Stream that can be replayed from the start, as
// required by the multi-pass SetCover. Each pass must deliver the same
// edge multiset (order may vary).
type ResettableStream interface {
	Stream
	// Reset rewinds the stream so the next Next call replays it from the
	// start.
	Reset()
}

// SliceStream adapts an in-memory edge slice to ResettableStream.
type SliceStream struct {
	// Edges is the backing slice, delivered in order.
	Edges []Edge
	pos   int
}

// Next implements Stream.
func (s *SliceStream) Next() (Edge, bool) {
	if s.pos >= len(s.Edges) {
		return Edge{}, false
	}
	e := s.Edges[s.pos]
	s.pos++
	return e, true
}

// Reset implements ResettableStream.
func (s *SliceStream) Reset() { s.pos = 0 }

// Instance is an in-memory coverage instance: n sets over m elements.
// Build one with NewInstance (explicit edges), ReadInstance (files) or
// the Generate* functions; stream one with EdgeStream.
type Instance struct {
	g *bipartite.Graph
	// Planted carries ground-truth metadata when the instance came from a
	// generator that plants a solution; nil otherwise.
	Planted *PlantedInfo
}

// PlantedInfo is generator ground truth: a distinguished solution that
// lower-bounds the optimum.
type PlantedInfo struct {
	// Sets is the planted solution.
	Sets []int
	// Coverage is C(Sets).
	Coverage int
	// CoverSize, when non-zero, upper-bounds the optimal set-cover size.
	CoverSize int
}

// NewInstance builds an instance from explicit edges. Ids must lie in
// [0, numSets) and [0, numElems); duplicate edges are coalesced.
func NewInstance(numSets, numElems int, edges []Edge) (*Instance, error) {
	conv := make([]bipartite.Edge, len(edges))
	for i, e := range edges {
		conv[i] = bipartite.Edge{Set: e.Set, Elem: e.Elem}
	}
	g, err := bipartite.FromEdges(numSets, numElems, conv)
	if err != nil {
		return nil, err
	}
	return &Instance{g: g}, nil
}

// NewInstanceFromSets builds an instance from explicit per-set element
// lists.
func NewInstanceFromSets(numElems int, sets [][]uint32) (*Instance, error) {
	g, err := bipartite.FromSets(numElems, sets)
	if err != nil {
		return nil, err
	}
	return &Instance{g: g}, nil
}

// NumSets returns n.
func (i *Instance) NumSets() int { return i.g.NumSets() }

// NumElems returns m.
func (i *Instance) NumElems() int { return i.g.NumElems() }

// NumEdges returns the number of distinct memberships.
func (i *Instance) NumEdges() int { return i.g.NumEdges() }

// SetElems returns the sorted element ids of set s (do not modify).
func (i *Instance) SetElems(s int) []uint32 { return i.g.Set(s) }

// Coverage evaluates the coverage function C(sets) = |∪ sets| exactly.
func (i *Instance) Coverage(sets []int) int { return i.g.Coverage(sets) }

// CoveredElems returns the number of elements that belong to at least one
// set (set cover is defined over these).
func (i *Instance) CoveredElems() int { return i.g.CoveredElems() }

// EdgeStream returns a resettable edge-arrival stream of the instance in
// a pseudo-random order determined by seed.
func (i *Instance) EdgeStream(seed uint64) ResettableStream {
	return &internalStreamAdapter{inner: stream.Shuffled(i.g, seed)}
}

// GreedyMaxCoverage runs the offline 1−1/e greedy on the full instance —
// the unbounded-memory reference point.
func (i *Instance) GreedyMaxCoverage(k int) (sets []int, covered int) {
	res := greedy.MaxCover(i.g, k)
	return res.Sets, res.Covered
}

// GreedySetCover runs the offline ln(m)-approximate greedy set cover on
// the full instance.
func (i *Instance) GreedySetCover() (sets []int, covered int) {
	res := greedy.SetCover(i.g)
	return res.Sets, res.Covered
}

// WriteText serializes the instance as a text edge list ("c n m" header,
// then "set elem" lines).
func (i *Instance) WriteText(w io.Writer) error { return bipartite.WriteText(w, i.g) }

// WriteBinary serializes the instance in the compact binary format.
func (i *Instance) WriteBinary(w io.Writer) error { return bipartite.WriteBinary(w, i.g) }

// ReadInstance parses an instance written by WriteText or WriteBinary,
// sniffing the format from the first bytes.
func ReadInstance(r io.Reader) (*Instance, error) {
	br := newPeekReader(r)
	head, err := br.Peek(5)
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("streamcover: empty input: %w", err)
	}
	var g *bipartite.Graph
	if string(head) == "BCOV1" {
		g, err = bipartite.ReadBinary(br)
	} else {
		g, err = bipartite.ReadText(br)
	}
	if err != nil {
		return nil, err
	}
	return &Instance{g: g}, nil
}

// graph exposes the internal graph to sibling files of this package.
func (i *Instance) graph() *bipartite.Graph { return i.g }

// internalStreamAdapter bridges an internal resettable stream to the
// public interface.
type internalStreamAdapter struct {
	inner *stream.Slice
}

func (a *internalStreamAdapter) Next() (Edge, bool) {
	e, ok := a.inner.Next()
	return Edge{Set: e.Set, Elem: e.Elem}, ok
}

func (a *internalStreamAdapter) Reset() { a.inner.Reset() }

// publicToInternal bridges a public Stream to the internal interface.
type publicToInternal struct {
	inner Stream
}

func (a publicToInternal) Next() (bipartite.Edge, bool) {
	e, ok := a.inner.Next()
	return bipartite.Edge{Set: e.Set, Elem: e.Elem}, ok
}

// publicToInternalResettable additionally forwards Reset.
type publicToInternalResettable struct {
	publicToInternal
	reset func()
}

func (a publicToInternalResettable) Reset() { a.reset() }
