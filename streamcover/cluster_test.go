package streamcover

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/server"
)

// TestClusterNodeMatchesMaxCoverage pins the public cluster surface: two
// hubs joined as peers, each ingesting half of the stream, answer
// KCover bit-identically to the offline one-pass MaxCoverage /
// MaxWeightedCoverage over the whole stream — from either node.
func TestClusterNodeMatchesMaxCoverage(t *testing.T) {
	const n, m, k = 60, 3000, 5
	inst := GenerateZipf(n, m, 400, 0.9, 0.7, 5)
	opt := Options{Eps: 0.4, Seed: 77, NumElems: m, EdgeBudget: 60 * n}
	weights := Weights{Table: make([]float64, m)}
	for e := range weights.Table {
		weights.Table[e] = 1 + float64(e%9)
	}

	offline, err := MaxCoverage(inst.EdgeStream(1), n, k, opt)
	if err != nil {
		t.Fatal(err)
	}
	woffline, err := MaxWeightedCoverage(inst.EdgeStream(1), n, k, weights.WeightOf, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Two hubs behind swappable-address servers; peer URLs are known
	// before the handlers exist.
	srvs := [2]*httptest.Server{httptest.NewUnstartedServer(nil), httptest.NewUnstartedServer(nil)}
	urls := [2]string{
		"http://" + srvs[0].Listener.Addr().String(),
		"http://" + srvs[1].Listener.Addr().String(),
	}
	var hubs [2]*Hub
	var nodes [2]*ClusterNode
	for i := range hubs {
		hubs[i] = NewHub()
		defer hubs[i].Close()
		if _, err := hubs[i].OpenNamespace(DefaultNamespace, n, ServiceOptions{Options: opt, K: k, Shards: 2}); err != nil {
			t.Fatal(err)
		}
		wopt := ServiceOptions{Options: opt, K: k, Shards: 2, Weights: &weights}
		if _, err := hubs[i].OpenNamespace("wcov", n, wopt); err != nil {
			t.Fatal(err)
		}
		node, err := hubs[i].JoinCluster(ClusterOptions{
			NodeID:       urls[i],
			Peers:        []string{urls[1-i]},
			PullInterval: -1, // the test drives exchange with PullNow
		})
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
		srvs[i].Config.Handler = node.Handler(server.HTTPOptions{})
		srvs[i].Start()
		defer srvs[i].Close()
	}

	// Partition the stream: even edges to hub 0, odd to hub 1.
	st := inst.EdgeStream(9)
	var parts [2][]Edge
	for i := 0; ; i++ {
		e, ok := st.Next()
		if !ok {
			break
		}
		parts[i%2] = append(parts[i%2], e)
	}
	for i, hub := range hubs {
		for _, ns := range []string{DefaultNamespace, "wcov"} {
			svc, ok := hub.Namespace(ns)
			if !ok {
				t.Fatalf("hub %d: namespace %q missing", i, ns)
			}
			if err := svc.Ingest(parts[i]); err != nil {
				t.Fatal(err)
			}
		}
	}

	for i, node := range nodes {
		if err := node.PullNow(); err != nil {
			t.Fatalf("node %d PullNow: %v", i, err)
		}
		res, err := node.KCover(DefaultNamespace, k, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.EstimatedCoverage != offline.EstimatedCoverage {
			t.Fatalf("node %d estimate %v != offline %v", i, res.EstimatedCoverage, offline.EstimatedCoverage)
		}
		for j := range res.Sets {
			if res.Sets[j] != offline.Sets[j] {
				t.Fatalf("node %d sets %v != offline %v", i, res.Sets, offline.Sets)
			}
		}
		wres, err := node.KCover("wcov", k, true)
		if err != nil {
			t.Fatal(err)
		}
		if wres.EstimatedCoverage != woffline.EstimatedCoverage {
			t.Fatalf("node %d weighted estimate %v != offline %v", i, wres.EstimatedCoverage, woffline.EstimatedCoverage)
		}
		st := node.Stats()
		if len(st.Peers) != 1 || st.Peers[0].Pulls < 1 {
			t.Fatalf("node %d peer accounting: %+v", i, st.Peers)
		}
	}

	// A plain GET against either node's HTTP surface serves the same
	// cluster-wide answer.
	resp, err := http.Get(srvs[1].URL + "/v1/query?algo=kcover&k=5&refresh=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP cluster query: %d", resp.StatusCode)
	}
}
