package sieve

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/stream"
	"repro/internal/workload"
)

func edge(s, e uint32) bipartite.Edge { return bipartite.Edge{Set: s, Elem: e} }

func mustBuffer(t *testing.T, numSets, k int) *Buffer {
	t.Helper()
	b, err := NewBuffer(numSets, k)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBufferValidation(t *testing.T) {
	if _, err := NewBuffer(0, 3); err == nil {
		t.Fatal("numSets 0 accepted")
	}
	if _, err := NewBuffer(5, 0); err == nil {
		t.Fatal("k 0 accepted")
	}
}

func TestSwapRule(t *testing.T) {
	b := mustBuffer(t, 10, 2)
	// Fill the buffer: sets 0 and 1 admitted on arrival.
	b.AddEdges([]bipartite.Edge{edge(0, 100), edge(0, 101), edge(1, 101)})
	if b.Candidates() != 2 {
		t.Fatalf("candidates = %d, want 2", b.Candidates())
	}
	// Set 2 arrives with a covered element: no strict improvement, drop.
	b.Add(edge(2, 101))
	if _, ok := b.cands[2]; ok {
		t.Fatal("covered-element edge admitted into a full buffer")
	}
	// Set 1 contributes nothing unique (101 is shared with set 0), so an
	// uncovered element evicts it.
	b.Add(edge(2, 200))
	if _, ok := b.cands[1]; ok {
		t.Fatal("zero-contribution candidate survived an improving swap")
	}
	if _, ok := b.cands[2]; !ok {
		t.Fatal("improving candidate not admitted")
	}
	if b.Elements() != 3 { // 100, 101, 200
		t.Fatalf("elements = %d, want 3", b.Elements())
	}
	// Now both candidates contribute uniquely: a fresh set cannot evict.
	b.Add(edge(3, 300))
	if _, ok := b.cands[3]; ok {
		t.Fatal("swap admitted although every candidate was load-bearing")
	}
	st := b.Stats()
	if st.DropHash != 2 {
		t.Fatalf("dropped = %d, want 2", st.DropHash)
	}
	if st.EdgesSeen != 6 {
		t.Fatalf("edgesSeen = %d, want 6", st.EdgesSeen)
	}
}

func TestVictimTieBreakIsSmallestID(t *testing.T) {
	b := mustBuffer(t, 10, 3)
	// Three candidates all sharing element 7: every uniq count is 0.
	b.AddEdges([]bipartite.Edge{edge(4, 7), edge(2, 7), edge(9, 7)})
	b.Add(edge(5, 8)) // uncovered element: must evict set 2 (smallest id)
	if _, ok := b.cands[2]; ok {
		t.Fatal("smallest-id zero-contribution candidate not evicted")
	}
	for _, s := range []uint32{4, 9, 5} {
		if _, ok := b.cands[s]; !ok {
			t.Fatalf("candidate %d missing", s)
		}
	}
}

func TestDuplicateEdgesCounted(t *testing.T) {
	b := mustBuffer(t, 4, 2)
	b.AddEdges([]bipartite.Edge{edge(0, 1), edge(0, 1), edge(0, 1)})
	st := b.Stats()
	if st.DupEdges != 2 || st.EdgesKept != 1 || st.EdgesSeen != 3 {
		t.Fatalf("dup=%d kept=%d seen=%d, want 2/1/3", st.DupEdges, st.EdgesKept, st.EdgesSeen)
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := mustBuffer(t, 10, 3)
	b.AddEdges([]bipartite.Edge{edge(0, 1), edge(1, 2), edge(0, 3)})
	cp := b.Clone()
	b.AddEdges([]bipartite.Edge{edge(2, 9), edge(1, 4)})
	if cp.Edges() != 3 || cp.Candidates() != 2 {
		t.Fatalf("clone mutated: %d edges, %d candidates", cp.Edges(), cp.Candidates())
	}
	var buf1, buf2 bytes.Buffer
	if _, err := cp.WriteTo(&buf1); err != nil {
		t.Fatal(err)
	}
	cp2 := cp.Clone()
	if _, err := cp2.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("clone serializes differently from its source")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	inst := workload.Zipf(40, 500, 80, 0.9, 0.7, 7)
	b := mustBuffer(t, 40, 5)
	b.AddStream(stream.Shuffled(inst.G, 11))
	var buf bytes.Buffer
	n, err := b.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadBuffer(bytes.NewReader(buf.Bytes()), 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if _, err := back.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("round trip changed the serialized bytes")
	}
	sets1, cov1 := b.Solve(5)
	sets2, cov2 := back.Solve(5)
	if !reflect.DeepEqual(sets1, sets2) || cov1 != cov2 {
		t.Fatalf("round trip changed the solution: %v/%d vs %v/%d", sets1, cov1, sets2, cov2)
	}
}

func TestReadBufferRejectsMismatch(t *testing.T) {
	b := mustBuffer(t, 10, 3)
	b.AddEdges([]bipartite.Edge{edge(0, 1)})
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBuffer(bytes.NewReader(buf.Bytes()), 11, 3); err == nil {
		t.Fatal("numSets mismatch accepted")
	}
	if _, err := ReadBuffer(bytes.NewReader(buf.Bytes()), 10, 4); err == nil {
		t.Fatal("k mismatch accepted")
	}
	if _, err := ReadBuffer(bytes.NewReader([]byte("WRONG")), 10, 3); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadBuffer(bytes.NewReader(buf.Bytes()[:8]), 10, 3); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

func TestMergeFoldIsCanonical(t *testing.T) {
	inst := workload.Zipf(30, 400, 60, 0.9, 0.7, 3)
	b := mustBuffer(t, 30, 4)
	b.AddStream(stream.Shuffled(inst.G, 5))

	// Folding a single buffer into an empty one reproduces its content
	// exactly (all ≤ k candidates fit), whatever map iteration did.
	for trial := 0; trial < 3; trial++ {
		fresh := mustBuffer(t, 30, 4)
		if err := fresh.Merge(b); err != nil {
			t.Fatal(err)
		}
		fresh.SetEdgesSeen(b.EdgesSeen())
		var want, got bytes.Buffer
		if _, err := b.WriteTo(&want); err != nil {
			t.Fatal(err)
		}
		if _, err := fresh.WriteTo(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatal("single-state fold changed the buffer content")
		}
	}
}

func TestMergeShapeMismatch(t *testing.T) {
	a := mustBuffer(t, 10, 3)
	b := mustBuffer(t, 10, 4)
	if err := a.Merge(b); err == nil {
		t.Fatal("k mismatch merged")
	}
	c := mustBuffer(t, 11, 3)
	if err := a.Merge(c); err == nil {
		t.Fatal("numSets mismatch merged")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestMergeLeavesEdgesSeenUntouched(t *testing.T) {
	a := mustBuffer(t, 10, 3)
	a.AddEdges([]bipartite.Edge{edge(0, 1), edge(1, 2)})
	b := mustBuffer(t, 10, 3)
	b.AddEdges([]bipartite.Edge{edge(2, 3)})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.EdgesSeen() != 2 {
		t.Fatalf("merge changed edgesSeen to %d", a.EdgesSeen())
	}
	if a.Candidates() != 3 {
		t.Fatalf("merge lost candidates: %d", a.Candidates())
	}
}

func TestKCoverReferenceDeterminism(t *testing.T) {
	inst := workload.Zipf(50, 800, 100, 0.9, 0.7, 13)
	out1, err := KCover(stream.Shuffled(inst.G, 21), 50, 6)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := KCover(stream.Shuffled(inst.G, 21), 50, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Fatalf("same stream order, different outcomes: %+v vs %+v", out1, out2)
	}
	if out1.Covered <= 0 || len(out1.Sets) == 0 {
		t.Fatalf("degenerate outcome: %+v", out1)
	}
	if out1.Candidates > 6 {
		t.Fatalf("buffer exceeded capacity: %d candidates", out1.Candidates)
	}
}

func TestSolveCoversBufferedElements(t *testing.T) {
	b := mustBuffer(t, 10, 2)
	b.AddEdges([]bipartite.Edge{edge(0, 1), edge(0, 2), edge(1, 3)})
	sets, covered := b.Solve(2)
	if covered != 3 {
		t.Fatalf("covered = %d, want 3", covered)
	}
	if len(sets) != 2 {
		t.Fatalf("sets = %v, want both candidates", sets)
	}
}
