// Package sieve implements a single-pass swap-buffer engine for max
// k-cover in the style of Badanidiyuru et al., "Streaming Submodular
// Maximization" (KDD 2014): hold at most k candidate sets, and admit a
// newcomer only by evicting a buffered candidate whose removal loses
// less coverage than the newcomer adds. Unlike the paper's H≤n sketch
// (an order-invariant function of the absorbed edge set), the sieve is
// order-dependent — it trades the sketch's mergeability-exactness for a
// hard k-candidate memory footprint: the buffer stores only the element
// lists of the ≤ k sets it currently holds, nothing per non-candidate
// set, so a namespace costs O(k · max-set-size) regardless of n.
//
// The KDD'14 algorithm streams whole sets; the coverage service streams
// (set, element) edges, so Buffer adapts the swap rule to edge arrival:
// an edge for a buffered candidate simply grows that candidate, an edge
// for an unknown set opens a new candidate while there is room, and
// once the buffer is full an unknown set's edge is admitted only when
// it strictly improves coverage — its element is uncovered AND some
// buffered candidate contributes no unique element (so the swap gains
// one element and loses none). Ties break deterministically (smallest
// zero-contribution set id is evicted), so a Buffer's final state is a
// deterministic function of the edge order.
//
// The server integrates a Buffer as its third engine mode ("sieve",
// internal/server/mode.go) with the same lifecycle verbs as the sketch
// and the weighted class bank: AddEdges, Clone, Merge, WriteTo /
// ReadBuffer (magic "SIEV1"), Stats, and Graph materialization into the
// bipartite graph queries run on. KCover is the one-shot offline
// reference the service tests pin their answers against.
package sieve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/stream"
)

// Magic prefixes the serialized buffer format (WriteTo / ReadBuffer).
const Magic = "SIEV1"

// maxBufferElems bounds the total element count ReadBuffer accepts, so
// a corrupt or hostile blob fails with a decode error instead of a
// multi-gigabyte allocation.
const maxBufferElems = 1 << 27

// Buffer is the swap buffer: at most k candidate sets with their
// covered elements, plus the inverted owner index that makes the swap
// rule O(1) amortized per edge. Not safe for concurrent use.
type Buffer struct {
	numSets int
	k       int

	edgesSeen int64
	peakElems int
	dupEdges  int64
	dropSwap  int64 // edges rejected by the swap rule

	// cands[s] is candidate s's element set; owners[e] is the set of
	// candidates containing element e (len(owners[e]) ≥ 1 while any
	// candidate holds e); uniq[s] counts elements only s holds — the
	// candidate's unique contribution, the quantity the swap rule reads.
	cands  map[uint32]map[uint32]struct{}
	owners map[uint32]map[uint32]struct{}
	uniq   map[uint32]int
}

// NewBuffer returns an empty buffer for sets in [0, numSets) holding at
// most k candidates.
func NewBuffer(numSets, k int) (*Buffer, error) {
	if numSets <= 0 || k <= 0 {
		return nil, fmt.Errorf("sieve: NewBuffer needs positive numSets and k, got %d and %d", numSets, k)
	}
	return &Buffer{
		numSets: numSets,
		k:       k,
		cands:   make(map[uint32]map[uint32]struct{}),
		owners:  make(map[uint32]map[uint32]struct{}),
		uniq:    make(map[uint32]int),
	}, nil
}

// NumSets reports the set-universe size the buffer was built for.
func (b *Buffer) NumSets() int { return b.numSets }

// K reports the buffer's candidate capacity.
func (b *Buffer) K() int { return b.k }

// Candidates reports the number of sets currently buffered (≤ K).
func (b *Buffer) Candidates() int { return len(b.cands) }

// Elements reports the number of distinct elements the candidates cover.
func (b *Buffer) Elements() int { return len(b.owners) }

// Edges reports the resident (candidate, element) pairs — the buffer's
// size in items.
func (b *Buffer) Edges() int {
	total := 0
	for _, elems := range b.cands {
		total += len(elems)
	}
	return total
}

// EdgesSeen reports the number of edges consumed from the stream.
func (b *Buffer) EdgesSeen() int64 { return b.edgesSeen }

// SetEdgesSeen overrides the consumed-edge counter, mirroring
// core.Sketch.SetEdgesSeen: a merged buffer only replays kept edges, so
// the serving coordinator pins the true ingested total through this.
func (b *Buffer) SetEdgesSeen(n int64) { b.edgesSeen = n }

// addElem attaches element e to candidate s (which must be buffered),
// maintaining the owner index and unique-contribution counters. Reports
// whether the element was new to s.
func (b *Buffer) addElem(s, e uint32) bool {
	elems := b.cands[s]
	if _, ok := elems[e]; ok {
		return false
	}
	elems[e] = struct{}{}
	own := b.owners[e]
	if own == nil {
		own = make(map[uint32]struct{}, 1)
		b.owners[e] = own
	}
	own[s] = struct{}{}
	switch len(own) {
	case 1:
		b.uniq[s]++
	case 2:
		// e just lost sole ownership: the previous unique owner's
		// contribution shrinks.
		for o := range own {
			if o != s {
				b.uniq[o]--
			}
		}
	}
	return true
}

// evict removes candidate w entirely, returning sole ownership of
// shared elements to their remaining owner.
func (b *Buffer) evict(w uint32) {
	for e := range b.cands[w] {
		own := b.owners[e]
		delete(own, w)
		switch len(own) {
		case 0:
			delete(b.owners, e)
		case 1:
			for o := range own {
				b.uniq[o]++
			}
		}
	}
	delete(b.cands, w)
	delete(b.uniq, w)
}

// victim returns the smallest-id candidate contributing no unique
// element, or (0, false) when every candidate is load-bearing. Reducing
// by minimum keeps the choice deterministic despite map iteration.
func (b *Buffer) victim() (uint32, bool) {
	var best uint32
	found := false
	for s, u := range b.uniq {
		if u == 0 && (!found || s < best) {
			best, found = s, true
		}
	}
	return best, found
}

// Add consumes one stream edge through the swap rule.
func (b *Buffer) Add(e bipartite.Edge) {
	b.edgesSeen++
	if elems, ok := b.cands[e.Set]; ok {
		if _, dup := elems[e.Elem]; dup {
			b.dupEdges++
			return
		}
		b.addElem(e.Set, e.Elem)
		b.bumpPeak()
		return
	}
	if len(b.cands) < b.k {
		b.admit(e.Set)
		b.addElem(e.Set, e.Elem)
		b.bumpPeak()
		return
	}
	// Full buffer: the edge contributes at most one element, so a swap
	// strictly improves coverage only when that element is uncovered and
	// some candidate's removal loses nothing.
	if _, covered := b.owners[e.Elem]; covered {
		b.dropSwap++
		return
	}
	w, ok := b.victim()
	if !ok {
		b.dropSwap++
		return
	}
	b.evict(w)
	b.admit(e.Set)
	b.addElem(e.Set, e.Elem)
	b.bumpPeak()
}

// admit opens an empty candidate for s, registering its (zero) unique
// contribution so victim() always sees every candidate.
func (b *Buffer) admit(s uint32) {
	b.cands[s] = make(map[uint32]struct{}, 4)
	b.uniq[s] = 0
}

func (b *Buffer) bumpPeak() {
	if n := len(b.owners); n > b.peakElems {
		b.peakElems = n
	}
}

// AddEdges consumes a batch of edges in order.
func (b *Buffer) AddEdges(edges []bipartite.Edge) {
	for _, e := range edges {
		b.Add(e)
	}
}

// AddStream drains st into the buffer and returns the number of edges
// consumed.
func (b *Buffer) AddStream(st stream.Stream) int {
	n := 0
	for {
		e, ok := st.Next()
		if !ok {
			return n
		}
		b.Add(e)
		n++
	}
}

// Clone returns a deep copy of the buffer.
func (b *Buffer) Clone() *Buffer {
	cp := &Buffer{
		numSets:   b.numSets,
		k:         b.k,
		edgesSeen: b.edgesSeen,
		peakElems: b.peakElems,
		dupEdges:  b.dupEdges,
		dropSwap:  b.dropSwap,
		cands:     make(map[uint32]map[uint32]struct{}, len(b.cands)),
		owners:    make(map[uint32]map[uint32]struct{}, len(b.owners)),
		uniq:      make(map[uint32]int, len(b.uniq)),
	}
	for s, elems := range b.cands {
		ce := make(map[uint32]struct{}, len(elems))
		for e := range elems {
			ce[e] = struct{}{}
		}
		cp.cands[s] = ce
	}
	for e, own := range b.owners {
		co := make(map[uint32]struct{}, len(own))
		for s := range own {
			co[s] = struct{}{}
		}
		cp.owners[e] = co
	}
	for s, u := range b.uniq {
		cp.uniq[s] = u
	}
	return cp
}

// sortedCandidates returns the buffered set ids in ascending order —
// the canonical fold/serialization order.
func (b *Buffer) sortedCandidates() []uint32 {
	sets := make([]uint32, 0, len(b.cands))
	for s := range b.cands {
		sets = append(sets, s)
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i] < sets[j] })
	return sets
}

func sortedElems(elems map[uint32]struct{}) []uint32 {
	out := make([]uint32, 0, len(elems))
	for e := range elems {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Merge folds other's candidates into b by replaying other's kept edges
// through the swap rule in canonical order (candidates ascending,
// elements ascending within each). Unlike the sketch's merge this is
// not order-invariant over the original streams — the sieve gives up
// exact mergeability for its constant buffer — but it is deterministic:
// two nodes folding the same states in the same order agree. b's
// consumed-edge counter is left untouched (replayed kept edges were
// already counted by whoever absorbed them), mirroring core.Sketch.Merge.
// other is read-only.
func (b *Buffer) Merge(other *Buffer) error {
	if other == nil {
		return nil
	}
	if b.numSets != other.numSets || b.k != other.k {
		return fmt.Errorf("sieve: cannot merge buffers with different shapes (numSets %d vs %d, k %d vs %d)",
			b.numSets, other.numSets, b.k, other.k)
	}
	seen := b.edgesSeen
	for _, s := range other.sortedCandidates() {
		for _, e := range sortedElems(other.cands[s]) {
			b.Add(bipartite.Edge{Set: s, Elem: e})
		}
	}
	b.edgesSeen = seen
	return nil
}

// Stats reports the buffer's accounting in the engine's uniform
// core.Stats shape. PStar is 1 (the sieve keeps true element ids, no
// subsampling), Budget echoes the candidate capacity k, and DropHash
// counts edges the swap rule rejected (the sieve's analogue of the
// sketch's hash-filter drop).
func (b *Buffer) Stats() core.Stats {
	edges := b.Edges()
	var bytes int64
	// Rough resident footprint: one map entry each in cands and owners
	// per (candidate, element) pair, plus per-candidate headers.
	bytes = int64(edges)*32 + int64(len(b.cands))*64
	return core.Stats{
		EdgesSeen:    b.edgesSeen,
		EdgesKept:    edges,
		PeakEdges:    b.peakElems,
		ElementsKept: len(b.owners),
		Budget:       b.k,
		DupEdges:     b.dupEdges,
		DropHash:     b.dropSwap,
		PStar:        1,
		Bytes:        bytes,
	}
}

// Graph materializes the buffer as a bipartite graph over its covered
// elements, renumbered to [0, Elements()); ids maps a graph element id
// back to the original element. Candidates and elements are emitted in
// canonical ascending order, so two buffers with equal content
// materialize to equal graphs.
func (b *Buffer) Graph() (*bipartite.Graph, []uint32) {
	elems := make([]uint32, 0, len(b.owners))
	for e := range b.owners {
		elems = append(elems, e)
	}
	sort.Slice(elems, func(i, j int) bool { return elems[i] < elems[j] })
	newID := make(map[uint32]uint32, len(elems))
	for i, e := range elems {
		newID[e] = uint32(i)
	}
	edges := make([]bipartite.Edge, 0, b.Edges())
	for _, s := range b.sortedCandidates() {
		for _, e := range sortedElems(b.cands[s]) {
			edges = append(edges, bipartite.Edge{Set: s, Elem: newID[e]})
		}
	}
	g, err := bipartite.FromEdges(b.numSets, len(elems), edges)
	if err != nil {
		panic("sieve: buffer graph construction failed: " + err.Error())
	}
	return g, elems
}

// Solve runs the greedy max-k-cover over the buffered candidates and
// returns the chosen sets (original ids) and their covered-element
// count inside the buffer. Coverage here is exact, not an estimate:
// the buffer holds true element ids.
func (b *Buffer) Solve(k int) ([]int, int) {
	g, _ := b.Graph()
	res := greedy.MaxCover(g, k)
	return res.Sets, res.Covered
}

// WriteTo serializes the buffer:
//
//	"SIEV1"                         magic (5 bytes)
//	uint32 numSets, uint32 k
//	int64  edgesSeen
//	uint32 candidate count
//	count × candidate, ids ascending:
//	  uint32 set, uint32 elem count, elems ascending (uint32 each)
//
// All integers little-endian, matching the sketch format. Canonical
// order makes equal buffers serialize to equal bytes, so the cluster
// ETag argument (unchanged edge count ⇒ unchanged blob) carries over.
func (b *Buffer) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	if _, err := io.WriteString(cw, Magic); err != nil {
		return cw.n, err
	}
	write := func(v interface{}) error {
		return binary.Write(cw, binary.LittleEndian, v)
	}
	for _, v := range []interface{}{uint32(b.numSets), uint32(b.k), b.edgesSeen, uint32(len(b.cands))} {
		if err := write(v); err != nil {
			return cw.n, err
		}
	}
	for _, s := range b.sortedCandidates() {
		elems := sortedElems(b.cands[s])
		if err := write(s); err != nil {
			return cw.n, err
		}
		if err := write(uint32(len(elems))); err != nil {
			return cw.n, err
		}
		if err := write(elems); err != nil {
			return cw.n, err
		}
	}
	return cw.n, bw.Flush()
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadBuffer decodes a buffer written by WriteTo. numSets and k must
// repeat the writing buffer's shape — a mismatch is a config error
// (cluster peers and restores refuse to fold incompatible buffers).
func ReadBuffer(r io.Reader, numSets, k int) (*Buffer, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sieve: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("sieve: bad magic %q (want %q)", magic, Magic)
	}
	var (
		gotSets, gotK, count uint32
		seen                 int64
	)
	for _, v := range []interface{}{&gotSets, &gotK, &seen, &count} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("sieve: reading header: %w", err)
		}
	}
	if int(gotSets) != numSets || int(gotK) != k {
		return nil, fmt.Errorf("sieve: buffer parameter mismatch (blob numSets=%d k=%d, want numSets=%d k=%d)",
			gotSets, gotK, numSets, k)
	}
	if int(count) > k {
		return nil, fmt.Errorf("sieve: blob claims %d candidates, capacity is %d", count, k)
	}
	b, err := NewBuffer(numSets, k)
	if err != nil {
		return nil, err
	}
	b.edgesSeen = seen
	total := 0
	for i := uint32(0); i < count; i++ {
		var set, ne uint32
		if err := binary.Read(br, binary.LittleEndian, &set); err != nil {
			return nil, fmt.Errorf("sieve: reading candidate %d: %w", i, err)
		}
		if int(set) >= numSets {
			return nil, fmt.Errorf("sieve: candidate set id %d out of range [0,%d)", set, numSets)
		}
		if _, dup := b.cands[set]; dup {
			return nil, fmt.Errorf("sieve: duplicate candidate set %d", set)
		}
		if err := binary.Read(br, binary.LittleEndian, &ne); err != nil {
			return nil, fmt.Errorf("sieve: reading candidate %d size: %w", set, err)
		}
		total += int(ne)
		if total > maxBufferElems {
			return nil, fmt.Errorf("sieve: blob claims over %d elements", maxBufferElems)
		}
		b.admit(set)
		for j := uint32(0); j < ne; j++ {
			var e uint32
			if err := binary.Read(br, binary.LittleEndian, &e); err != nil {
				return nil, fmt.Errorf("sieve: reading candidate %d elements: %w", set, err)
			}
			if !b.addElem(set, e) {
				return nil, fmt.Errorf("sieve: duplicate element %d in candidate %d", e, set)
			}
		}
	}
	b.bumpPeak()
	return b, nil
}

// Outcome reports a one-shot sieve run.
type Outcome struct {
	// Sets is the greedy solution over the final buffer (original ids).
	Sets []int
	// Covered is the exact number of buffered elements Sets covers.
	Covered int
	// EdgesSeen / EdgesKept / Candidates describe the run's stream and
	// space accounting.
	EdgesSeen  int64
	EdgesKept  int
	Candidates int
}

// KCover is the one-shot offline reference: drain the stream through a
// fresh buffer, then solve greedily over the surviving candidates. The
// service's sieve mode, fed the same edges in the same order through a
// single shard, answers identically (the engine tests pin this).
func KCover(st stream.Stream, numSets, k int) (*Outcome, error) {
	b, err := NewBuffer(numSets, k)
	if err != nil {
		return nil, err
	}
	b.AddStream(st)
	sets, covered := b.Solve(k)
	return &Outcome{
		Sets:       sets,
		Covered:    covered,
		EdgesSeen:  b.edgesSeen,
		EdgesKept:  b.Edges(),
		Candidates: len(b.cands),
	}, nil
}
