package hashing

import "testing"

var sink uint64

// BenchmarkSplitMix64 measures the core mixer.
func BenchmarkSplitMix64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = SplitMix64(uint64(i))
	}
}

// BenchmarkHasher measures the per-element hash on the sketch hot path.
func BenchmarkHasher(b *testing.B) {
	h := NewHasher(1)
	for i := 0; i < b.N; i++ {
		sink = h.Hash(uint32(i))
	}
}

// BenchmarkTabulation measures the alternative 3-independent family.
func BenchmarkTabulation(b *testing.B) {
	t := NewTabulationHasher(1)
	for i := 0; i < b.N; i++ {
		sink = t.Hash(uint32(i))
	}
}

// BenchmarkRNGUint64 measures raw generator throughput.
func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
}

// BenchmarkZipfDraw measures a draw from a 100k-support Zipf sampler.
func BenchmarkZipfDraw(b *testing.B) {
	z := NewZipf(NewRNG(1), 100000, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = uint64(z.Draw())
	}
}
