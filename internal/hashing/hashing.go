// Package hashing provides the deterministic hash functions and random
// number generation used throughout the library.
//
// The sketches of the paper hash every element of the ground set to a
// uniform value in [0, 1] and keep the elements with the smallest hash
// values. We represent those values as uint64 priorities (smaller priority
// = smaller hash value) to avoid floating-point ties and to make ordering
// exact; conversions to [0, 1) floats are provided for the places where
// the mathematical definition needs a probability.
//
// Everything in this package is deterministic given a seed, which keeps
// every experiment in the repository reproducible.
package hashing

import "math"

// SplitMix64 is the finalizer of the splitmix64 generator (Steele et al.).
// It is a high-quality 64-bit mixer: a bijection on uint64 whose output
// passes standard avalanche tests. We use it both as a hash function for
// small keys and as the state-update function of RNG.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix2 mixes two words into one. It is used to derive per-structure seeds
// from a master seed and a stream index.
func Mix2(a, b uint64) uint64 {
	return SplitMix64(SplitMix64(a) ^ (b + 0x9e3779b97f4a7c15))
}

// Hasher hashes 32-bit keys (set or element identifiers) to uint64
// priorities under a fixed seed. The zero Hasher is valid and corresponds
// to seed 0.
type Hasher struct {
	seed uint64
}

// NewHasher returns a Hasher with the given seed.
func NewHasher(seed uint64) Hasher { return Hasher{seed: seed} }

// Hash returns the 64-bit priority of key. Distinct seeds give
// (empirically) independent hash functions.
func (h Hasher) Hash(key uint32) uint64 {
	return SplitMix64(h.seed ^ (uint64(key)+1)*0x9e3779b97f4a7c15)
}

// Unit returns the hash of key mapped to [0, 1).
func (h Hasher) Unit(key uint32) float64 {
	return ToUnit(h.Hash(key))
}

// ToUnit maps a uint64 priority to [0, 1) preserving order.
func ToUnit(p uint64) float64 {
	return float64(p>>11) * (1.0 / (1 << 53))
}

// FromUnit maps a probability in [0, 1] to the largest priority that is
// admitted by that probability, i.e. Hash(x) <= FromUnit(p) holds with
// probability (approximately) p.
func FromUnit(p float64) uint64 {
	if p >= 1 {
		return math.MaxUint64
	}
	if p <= 0 {
		return 0
	}
	return uint64(p * float64(math.MaxUint64))
}

// TabulationHasher is a 4-way tabulation hash over 32-bit keys. Tabulation
// hashing is 3-independent and has strong concentration properties for
// sampling-based sketches; we keep it alongside the SplitMix64 Hasher so
// tests can verify that the sketch guarantees are not an artifact of one
// hash family.
type TabulationHasher struct {
	table [4][256]uint64
}

// NewTabulationHasher builds the four 256-entry tables from the seed.
func NewTabulationHasher(seed uint64) *TabulationHasher {
	t := &TabulationHasher{}
	s := seed
	for i := 0; i < 4; i++ {
		for j := 0; j < 256; j++ {
			s = SplitMix64(s + 0x9e3779b97f4a7c15)
			t.table[i][j] = s
		}
	}
	return t
}

// Hash returns the tabulation hash of key.
func (t *TabulationHasher) Hash(key uint32) uint64 {
	return t.table[0][byte(key)] ^
		t.table[1][byte(key>>8)] ^
		t.table[2][byte(key>>16)] ^
		t.table[3][byte(key>>24)]
}

// Unit returns the tabulation hash of key mapped to [0, 1).
func (t *TabulationHasher) Unit(key uint32) float64 { return ToUnit(t.Hash(key)) }
