package hashing

import (
	"math"
	"sort"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGSeedSeparation(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	equal := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs", equal)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	r := NewRNG(5)
	const n = 10
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	expected := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Fatalf("value %d count %d deviates from %.0f", v, c, expected)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d items", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermIsShuffled(t *testing.T) {
	// Over many draws, position 0 should see many distinct values.
	r := NewRNG(11)
	distinct := make(map[int]bool)
	for i := 0; i < 100; i++ {
		distinct[r.Perm(50)[0]] = true
	}
	if len(distinct) < 20 {
		t.Fatalf("Perm looks unshuffled: only %d distinct first elements", len(distinct))
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRNG(13)
	for trial := 0; trial < 50; trial++ {
		s := r.Sample(30, 10)
		if len(s) != 10 {
			t.Fatalf("Sample returned %d items", len(s))
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= 30 || seen[v] {
				t.Fatalf("invalid sample: %v", s)
			}
			seen[v] = true
		}
	}
}

func TestSampleFullRange(t *testing.T) {
	r := NewRNG(17)
	s := r.Sample(8, 8)
	sort.Ints(s)
	for i, v := range s {
		if v != i {
			t.Fatalf("Sample(8,8) should be a permutation of [0,8): %v", s)
		}
	}
}

func TestSampleUniform(t *testing.T) {
	// Each of the n items should appear in a k-sample with rate k/n.
	r := NewRNG(19)
	const n, k, trials = 20, 5, 20000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(n, k) {
			counts[v]++
		}
	}
	expected := float64(trials) * k / n
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("item %d sampled %d times, expected %.0f", v, c, expected)
		}
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3,4) did not panic")
		}
	}()
	NewRNG(1).Sample(3, 4)
}

func TestShuffleSwapsPreserveMultiset(t *testing.T) {
	r := NewRNG(23)
	xs := []string{"a", "b", "c", "d", "e"}
	orig := map[string]int{}
	for _, x := range xs {
		orig[x]++
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := map[string]int{}
	for _, x := range xs {
		got[x]++
	}
	for k, v := range orig {
		if got[k] != v {
			t.Fatalf("shuffle changed multiset: %v", xs)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(31)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children correlated on first output")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(37)
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	r := NewRNG(41)
	z := NewZipf(r, 100, 1.2)
	if z.N() != 100 {
		t.Fatalf("Zipf N = %d", z.N())
	}
	counts := make([]int, 100)
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := z.Draw()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf draw out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 should dominate rank 50 heavily under alpha=1.2.
	if counts[0] < 5*counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	r := NewRNG(43)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	expected := float64(draws) / 10
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("alpha=0 not uniform: value %d count %d", v, c)
		}
	}
}

func TestZipfPanicsOnEmptySupport(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) did not panic")
		}
	}()
	NewZipf(NewRNG(1), 0, 1)
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
