package hashing

import "math"

// RNG is a small, fast, deterministic pseudo-random generator built on
// splitmix64. It is not safe for concurrent use; create one per goroutine
// (Split derives independent child generators).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	// Run the state through the mixer once so that small consecutive
	// seeds do not produce correlated first outputs.
	return &RNG{state: SplitMix64(seed ^ 0x5851f42d4c957f2d)}
}

// Split derives an independent child generator; the parent advances.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("hashing: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles p in place (Fisher–Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n items with the provided swap callback.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns a uniform sample of size k drawn without replacement from
// [0, n). It panics if k > n or k < 0. The result is in random order.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("hashing: Sample size out of range")
	}
	// Floyd's algorithm: O(k) expected time, O(k) space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	r.ShuffleInts(out)
	return out
}

// NormFloat64 returns a standard normal variate (Box–Muller, using only
// one of the pair for simplicity).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Zipf draws values in [0, n) with probability proportional to
// 1/(i+1)^alpha. It uses a precomputed cumulative table, so construct one
// Zipf per distribution and reuse it.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over [0, n) with exponent alpha >= 0.
// alpha = 0 is the uniform distribution.
func NewZipf(rng *RNG, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("hashing: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -alpha)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns the next sample.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
