package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	if SplitMix64(42) != SplitMix64(42) {
		t.Fatal("SplitMix64 not deterministic")
	}
	if SplitMix64(42) == SplitMix64(43) {
		t.Fatal("SplitMix64(42) == SplitMix64(43): suspicious collision")
	}
}

func TestSplitMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := uint64(0x0123456789abcdef)
	h0 := SplitMix64(base)
	totalFlips := 0
	for bit := 0; bit < 64; bit++ {
		h1 := SplitMix64(base ^ (1 << uint(bit)))
		diff := h0 ^ h1
		flips := 0
		for diff != 0 {
			flips++
			diff &= diff - 1
		}
		totalFlips += flips
	}
	avg := float64(totalFlips) / 64
	if avg < 24 || avg > 40 {
		t.Fatalf("poor avalanche: average %0.1f flipped bits (want ~32)", avg)
	}
}

func TestSplitMix64Injective(t *testing.T) {
	// The finalizer is a bijection; sample many inputs and require no
	// collisions.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := SplitMix64(i * 0x9e3779b97f4a7c15)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: inputs %d and %d", prev, i)
		}
		seen[h] = i
	}
}

func TestHasherDeterminismAndSeedSeparation(t *testing.T) {
	h1 := NewHasher(1)
	h2 := NewHasher(2)
	if h1.Hash(7) != NewHasher(1).Hash(7) {
		t.Fatal("Hasher not deterministic under same seed")
	}
	same := 0
	for k := uint32(0); k < 1000; k++ {
		if h1.Hash(k) == h2.Hash(k) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds agreed on %d of 1000 keys", same)
	}
}

func TestHasherUniformity(t *testing.T) {
	h := NewHasher(99)
	const buckets = 16
	counts := make([]int, buckets)
	const keys = 1 << 14
	for k := uint32(0); k < keys; k++ {
		counts[int(h.Unit(k)*buckets)]++
	}
	expected := float64(keys) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Fatalf("bucket %d count %d deviates from expected %.0f", b, c, expected)
		}
	}
}

func TestToUnitRange(t *testing.T) {
	cases := []uint64{0, 1, math.MaxUint64, math.MaxUint64 / 2, 1 << 33}
	for _, p := range cases {
		u := ToUnit(p)
		if u < 0 || u >= 1 {
			t.Fatalf("ToUnit(%d) = %v out of [0,1)", p, u)
		}
	}
}

func TestToUnitMonotone(t *testing.T) {
	err := quick.Check(func(a, b uint64) bool {
		if a > b {
			a, b = b, a
		}
		return ToUnit(a) <= ToUnit(b)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFromUnitThresholdSemantics(t *testing.T) {
	// P(hash <= FromUnit(p)) should be approximately p.
	h := NewHasher(5)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		bar := FromUnit(p)
		hits := 0
		const keys = 1 << 14
		for k := uint32(0); k < keys; k++ {
			if h.Hash(k) <= bar {
				hits++
			}
		}
		got := float64(hits) / keys
		if math.Abs(got-p) > 0.02 {
			t.Fatalf("FromUnit(%v): empirical rate %v", p, got)
		}
	}
	if FromUnit(1) != math.MaxUint64 {
		t.Fatal("FromUnit(1) should admit everything")
	}
	if FromUnit(0) != 0 {
		t.Fatal("FromUnit(0) should admit (almost) nothing")
	}
	if FromUnit(2) != math.MaxUint64 || FromUnit(-1) != 0 {
		t.Fatal("FromUnit should clamp out-of-range input")
	}
}

func TestMix2Independence(t *testing.T) {
	seen := make(map[uint64]bool)
	for a := uint64(0); a < 100; a++ {
		for b := uint64(0); b < 100; b++ {
			h := Mix2(a, b)
			if seen[h] {
				t.Fatalf("Mix2 collision at (%d,%d)", a, b)
			}
			seen[h] = true
		}
	}
}

func TestTabulationHasherBasics(t *testing.T) {
	th := NewTabulationHasher(3)
	if th.Hash(12345) != NewTabulationHasher(3).Hash(12345) {
		t.Fatal("tabulation hashing not deterministic")
	}
	if th.Hash(1) == th.Hash(2) && th.Hash(2) == th.Hash(3) {
		t.Fatal("tabulation hashing constant")
	}
	u := th.Unit(77)
	if u < 0 || u >= 1 {
		t.Fatalf("Unit out of range: %v", u)
	}
}

func TestTabulationHasherUniformity(t *testing.T) {
	th := NewTabulationHasher(11)
	const buckets = 8
	counts := make([]int, buckets)
	const keys = 1 << 13
	for k := uint32(0); k < keys; k++ {
		counts[int(th.Unit(k)*buckets)]++
	}
	expected := float64(keys) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("bucket %d count %d deviates from %f", b, c, expected)
		}
	}
}
