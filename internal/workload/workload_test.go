package workload

import (
	"testing"
)

func assertNoIsolated(t *testing.T, inst Instance) {
	t.Helper()
	for e := 0; e < inst.G.NumElems(); e++ {
		if inst.G.ElemDegree(e) == 0 {
			t.Fatalf("%s: element %d isolated", inst.Name, e)
		}
	}
}

func TestUniformShape(t *testing.T) {
	inst := Uniform(10, 200, 0.1, 1)
	if inst.G.NumSets() != 10 || inst.G.NumElems() != 200 {
		t.Fatal("dims wrong")
	}
	assertNoIsolated(t, inst)
	// Expected ~10*200*0.1 = 200 edges; allow wide slack plus isolates fix.
	if e := inst.G.NumEdges(); e < 120 || e > 320 {
		t.Fatalf("edge count %d far from expectation 200", e)
	}
}

func TestUniformDeterministicBySeed(t *testing.T) {
	a := Uniform(8, 100, 0.2, 7)
	b := Uniform(8, 100, 0.2, 7)
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("same seed, different instance")
	}
	c := Uniform(8, 100, 0.2, 8)
	if a.G.NumEdges() == c.G.NumEdges() && a.G.Coverage([]int{0}) == c.G.Coverage([]int{0}) {
		t.Log("different seeds produced equal stats (possible but unlikely)")
	}
}

func TestUniformFixedSize(t *testing.T) {
	inst := UniformFixedSize(12, 150, 20, 3)
	// Isolated-element patching may add a few extra edges to some sets,
	// so sizes are >= the requested size but close to it in total.
	total := 0
	for s := 0; s < 12; s++ {
		l := inst.G.SetLen(s)
		if l < 20 {
			t.Fatalf("set %d has %d elements, want >= 20", s, l)
		}
		total += l
	}
	if total > 12*20+150 {
		t.Fatalf("total edges %d far above the requested 240", total)
	}
	assertNoIsolated(t, inst)
}

func TestUniformFixedSizeClampsToM(t *testing.T) {
	inst := UniformFixedSize(3, 10, 50, 3)
	for s := 0; s < 3; s++ {
		if inst.G.SetLen(s) != 10 {
			t.Fatalf("set %d should be the whole ground set", s)
		}
	}
}

func TestZipfSizesDecay(t *testing.T) {
	inst := Zipf(50, 2000, 500, 1.0, 0.8, 11)
	assertNoIsolated(t, inst)
	if inst.G.SetLen(0) <= inst.G.SetLen(40) {
		t.Fatalf("zipf sizes not decaying: |S0|=%d |S40|=%d", inst.G.SetLen(0), inst.G.SetLen(40))
	}
	if inst.G.SetLen(49) < 1 {
		t.Fatal("smallest set empty")
	}
}

func TestPlantedKCover(t *testing.T) {
	inst := PlantedKCover(30, 1000, 5, 0.8, 10, 13)
	assertNoIsolated(t, inst)
	if len(inst.PlantedSets) != 5 {
		t.Fatalf("planted %d sets", len(inst.PlantedSets))
	}
	cov := inst.G.Coverage(inst.PlantedSets)
	if cov != inst.PlantedCoverage {
		t.Fatalf("PlantedCoverage %d != recomputed %d", inst.PlantedCoverage, cov)
	}
	if cov < 800 {
		t.Fatalf("planted coverage %d below signal*m = 800", cov)
	}
	// Decoys must be dominated: any 5 decoys cover at most 5*(10+slack).
	decoys := []int{10, 11, 12, 13, 14}
	if d := inst.G.Coverage(decoys); d >= cov {
		t.Fatalf("decoys cover %d >= planted %d", d, cov)
	}
}

func TestPlantedKCoverPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n accepted")
		}
	}()
	PlantedKCover(3, 100, 5, 0.8, 2, 1)
}

func TestPlantedSetCoverPartition(t *testing.T) {
	inst := PlantedSetCover(20, 500, 4, 5, 17)
	if inst.OptCoverSize != 4 {
		t.Fatalf("OptCoverSize = %d", inst.OptCoverSize)
	}
	if got := inst.G.Coverage(inst.PlantedSets); got != 500 {
		t.Fatalf("planted cover covers %d of 500", got)
	}
	// Planted sets partition: pairwise disjoint.
	total := 0
	for _, s := range inst.PlantedSets {
		total += inst.G.SetLen(s)
	}
	if total != 500 {
		t.Fatalf("planted sets overlap: sizes sum to %d", total)
	}
}

func TestLargeSetsRegime(t *testing.T) {
	inst := LargeSets(8, 1000, 0.4, 19)
	assertNoIsolated(t, inst)
	for s := 0; s < 8; s++ {
		if l := inst.G.SetLen(s); l < 380 || l > 420 {
			t.Fatalf("set %d size %d, want ~400", s, l)
		}
	}
}

func TestClustered(t *testing.T) {
	inst := Clustered(12, 120, 4, 23)
	assertNoIsolated(t, inst)
	if inst.OptCoverSize != 4 {
		t.Fatalf("OptCoverSize = %d", inst.OptCoverSize)
	}
	if got := inst.G.Coverage(inst.PlantedSets); got != 120 {
		t.Fatalf("representatives cover %d of 120", got)
	}
	// Non-representatives are strictly smaller than their representative.
	if inst.G.SetLen(4) >= inst.G.SetLen(0) {
		t.Fatalf("noisy member not smaller: %d vs %d", inst.G.SetLen(4), inst.G.SetLen(0))
	}
}

func TestBlogTopics(t *testing.T) {
	inst := BlogTopics(40, 800, 200, 29)
	assertNoIsolated(t, inst)
	if inst.G.NumSets() != 40 || inst.G.NumElems() != 800 {
		t.Fatal("dims wrong")
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	gens := []func(seed uint64) Instance{
		func(s uint64) Instance { return Uniform(10, 100, 0.1, s) },
		func(s uint64) Instance { return Zipf(10, 100, 40, 0.9, 0.5, s) },
		func(s uint64) Instance { return PlantedKCover(10, 100, 3, 0.8, 4, s) },
		func(s uint64) Instance { return PlantedSetCover(10, 100, 3, 4, s) },
		func(s uint64) Instance { return LargeSets(5, 100, 0.3, s) },
		func(s uint64) Instance { return Clustered(8, 96, 4, s) },
	}
	for gi, gen := range gens {
		a, b := gen(99), gen(99)
		if a.G.NumEdges() != b.G.NumEdges() {
			t.Fatalf("generator %d not deterministic", gi)
		}
		ea, eb := a.G.Edges(nil), b.G.Edges(nil)
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("generator %d not deterministic at edge %d", gi, i)
			}
		}
	}
}
