// Package workload generates synthetic coverage instances. The paper's own
// empirical evaluation lives in its companion paper on real data sets we do
// not have; these generators substitute for them (see DESIGN.md §3):
// planted instances provide known optima so approximation ratios can be
// measured exactly, Zipf instances reproduce heavy-tailed set sizes, and
// the "large sets" generator reproduces the regime the paper highlights
// (set sizes ≫ n) where set-arrival algorithms pay O~(m) space.
package workload

import (
	"fmt"
	"math"

	"repro/internal/bipartite"
	"repro/internal/hashing"
)

// Instance is a generated coverage instance together with ground truth
// about its optimum where the construction provides one.
type Instance struct {
	G    *bipartite.Graph
	Name string

	// PlantedSets is a distinguished solution used to lower-bound the
	// optimum (nil when the generator plants nothing).
	PlantedSets []int
	// PlantedCoverage is the coverage of PlantedSets; for k-cover
	// instances Opt_k >= PlantedCoverage.
	PlantedCoverage int
	// OptCoverSize, when non-zero, is a known upper bound on the optimal
	// set-cover size (PlantedSets covers every non-isolated element).
	OptCoverSize int
}

// Uniform generates n sets over m elements where each set independently
// contains each element with probability density. Expected set size is
// density*m.
func Uniform(n, m int, density float64, seed uint64) Instance {
	rng := hashing.NewRNG(seed)
	edges := make([]bipartite.Edge, 0, int(float64(n*m)*density)+n)
	for s := 0; s < n; s++ {
		for e := 0; e < m; e++ {
			if rng.Float64() < density {
				edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(e)})
			}
		}
	}
	ensureNoIsolated(&edges, n, m, rng)
	return Instance{
		G:    bipartite.MustFromEdges(n, m, edges),
		Name: fmt.Sprintf("uniform(n=%d,m=%d,d=%g)", n, m, density),
	}
}

// UniformFixedSize generates n sets of exactly size elements each, drawn
// uniformly without replacement from the ground set.
func UniformFixedSize(n, m, size int, seed uint64) Instance {
	if size > m {
		size = m
	}
	rng := hashing.NewRNG(seed)
	edges := make([]bipartite.Edge, 0, n*size)
	for s := 0; s < n; s++ {
		for _, e := range rng.Sample(m, size) {
			edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(e)})
		}
	}
	ensureNoIsolated(&edges, n, m, rng)
	return Instance{
		G:    bipartite.MustFromEdges(n, m, edges),
		Name: fmt.Sprintf("uniformFixed(n=%d,m=%d,size=%d)", n, m, size),
	}
}

// Zipf generates n sets whose sizes follow a power law with exponent
// sizeAlpha (set 0 largest, roughly maxSize/(rank+1)^sizeAlpha) and whose
// elements are drawn from a Zipf popularity distribution with exponent
// elemAlpha, reproducing the heavy-tailed structure of web-scale coverage
// instances.
func Zipf(n, m, maxSize int, sizeAlpha, elemAlpha float64, seed uint64) Instance {
	rng := hashing.NewRNG(seed)
	elemDist := hashing.NewZipf(rng, m, elemAlpha)
	edges := make([]bipartite.Edge, 0, 4*n)
	for s := 0; s < n; s++ {
		size := int(float64(maxSize) * pow(float64(s+1), -sizeAlpha))
		if size < 1 {
			size = 1
		}
		if size > m {
			size = m
		}
		seen := make(map[int]struct{}, size)
		for len(seen) < size {
			e := elemDist.Draw()
			if _, dup := seen[e]; dup {
				// Popular elements repeat often; fall back to a uniform
				// draw after a duplicate to guarantee termination.
				e = rng.Intn(m)
				if _, dup2 := seen[e]; dup2 {
					continue
				}
			}
			seen[e] = struct{}{}
			edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(e)})
		}
	}
	ensureNoIsolated(&edges, n, m, rng)
	return Instance{
		G:    bipartite.MustFromEdges(n, m, edges),
		Name: fmt.Sprintf("zipf(n=%d,m=%d,max=%d,a=%g/%g)", n, m, maxSize, sizeAlpha, elemAlpha),
	}
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }

// PlantedKCover builds an instance where k planted sets partition a
// 'signal' fraction of the ground set (so together they cover
// signal*m elements), and the remaining n-k decoy sets are small uniform
// sets of size decoySize. Opt_k is exactly the planted coverage when
// decoys are too small to beat the partition.
func PlantedKCover(n, m, k int, signal float64, decoySize int, seed uint64) Instance {
	if k <= 0 || k > n {
		panic("workload: PlantedKCover needs 0 < k <= n")
	}
	rng := hashing.NewRNG(seed)
	covered := int(signal * float64(m))
	if covered < k {
		covered = k
	}
	if covered > m {
		covered = m
	}
	// Shuffle elements; first `covered` are split evenly among planted sets.
	perm := rng.Perm(m)
	edges := make([]bipartite.Edge, 0, covered+(n-k)*decoySize)
	planted := make([]int, k)
	for i := 0; i < k; i++ {
		planted[i] = i
	}
	for i := 0; i < covered; i++ {
		s := i % k
		edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(perm[i])})
	}
	// Decoys draw uniformly from the whole ground set.
	for s := k; s < n; s++ {
		for _, e := range rng.Sample(m, min(decoySize, m)) {
			edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(e)})
		}
	}
	ensureNoIsolated(&edges, n, m, rng)
	g := bipartite.MustFromEdges(n, m, edges)
	return Instance{
		G:               g,
		Name:            fmt.Sprintf("plantedKCover(n=%d,m=%d,k=%d,sig=%g)", n, m, k, signal),
		PlantedSets:     planted,
		PlantedCoverage: g.Coverage(planted),
	}
}

// PlantedSetCover builds an instance with a planted cover of exactly
// coverSize sets partitioning the ground set, plus n-coverSize decoy sets
// that each take a uniform sample of overlap elements. The optimal set
// cover size is at most coverSize (and generically equal to it, since the
// planted sets partition E and decoys are small).
func PlantedSetCover(n, m, coverSize, overlap int, seed uint64) Instance {
	if coverSize <= 0 || coverSize > n {
		panic("workload: PlantedSetCover needs 0 < coverSize <= n")
	}
	rng := hashing.NewRNG(seed)
	perm := rng.Perm(m)
	edges := make([]bipartite.Edge, 0, m+(n-coverSize)*overlap)
	planted := make([]int, coverSize)
	for i := range planted {
		planted[i] = i
	}
	for i, e := range perm {
		s := i % coverSize
		edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(e)})
	}
	for s := coverSize; s < n; s++ {
		for _, e := range rng.Sample(m, min(overlap, m)) {
			edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(e)})
		}
	}
	g := bipartite.MustFromEdges(n, m, edges)
	return Instance{
		G:               g,
		Name:            fmt.Sprintf("plantedSetCover(n=%d,m=%d,k*=%d)", n, m, coverSize),
		PlantedSets:     planted,
		PlantedCoverage: m,
		OptCoverSize:    coverSize,
	}
}

// BlogTopics mimics the multi-topic blog-watch application motivating
// Saha–Getoor: nBlogs blogs each post about a Zipf-popular selection of
// topics; topicsPerBlog follows a power law across blogs. Elements are
// topics, sets are blogs.
func BlogTopics(nBlogs, nTopics, maxTopicsPerBlog int, seed uint64) Instance {
	return Zipf(nBlogs, nTopics, maxTopicsPerBlog, 0.8, 0.7, seed)
}

// LargeSets generates the regime the paper emphasizes (footnote 2 and the
// conclusion): few sets, each very large (size ~ frac*m with m >> n).
// Set-arrival algorithms must buffer whole sets here, paying Θ(m); the
// H<=n sketch stays at O~(n).
func LargeSets(n, m int, frac float64, seed uint64) Instance {
	rng := hashing.NewRNG(seed)
	size := int(frac * float64(m))
	if size < 1 {
		size = 1
	}
	edges := make([]bipartite.Edge, 0, n*size)
	for s := 0; s < n; s++ {
		for _, e := range rng.Sample(m, size) {
			edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(e)})
		}
	}
	ensureNoIsolated(&edges, n, m, rng)
	return Instance{
		G:    bipartite.MustFromEdges(n, m, edges),
		Name: fmt.Sprintf("largeSets(n=%d,m=%d,frac=%g)", n, m, frac),
	}
}

// Clustered builds nClusters groups of sets, where sets in a group cover
// (noisy copies of) the same element block — the structure under which
// greedy-style algorithms must diversify across clusters. One set per
// cluster is a full block; the rest are random halves.
func Clustered(n, m, nClusters int, seed uint64) Instance {
	if nClusters <= 0 || nClusters > n {
		panic("workload: Clustered needs 0 < nClusters <= n")
	}
	rng := hashing.NewRNG(seed)
	blockLen := m / nClusters
	if blockLen == 0 {
		blockLen = 1
	}
	edges := make([]bipartite.Edge, 0, n*blockLen)
	planted := make([]int, 0, nClusters)
	for s := 0; s < n; s++ {
		c := s % nClusters
		lo := c * blockLen
		hi := lo + blockLen
		if c == nClusters-1 {
			hi = m
		}
		if s < nClusters {
			// representative: full block
			planted = append(planted, s)
			for e := lo; e < hi; e++ {
				edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(e)})
			}
			continue
		}
		// noisy member: random half of the block
		width := hi - lo
		for _, off := range rng.Sample(width, width/2) {
			edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(lo + off)})
		}
	}
	ensureNoIsolated(&edges, n, m, rng)
	g := bipartite.MustFromEdges(n, m, edges)
	return Instance{
		G:               g,
		Name:            fmt.Sprintf("clustered(n=%d,m=%d,c=%d)", n, m, nClusters),
		PlantedSets:     planted,
		PlantedCoverage: g.Coverage(planted),
		OptCoverSize:    nClusters,
	}
}

// ensureNoIsolated adds one random edge to every isolated element so that
// generated instances satisfy the paper's no-isolated-elements assumption.
func ensureNoIsolated(edges *[]bipartite.Edge, n, m int, rng *hashing.RNG) {
	seen := make([]bool, m)
	for _, e := range *edges {
		seen[e.Elem] = true
	}
	for e := 0; e < m; e++ {
		if !seen[e] {
			*edges = append(*edges, bipartite.Edge{Set: uint32(rng.Intn(n)), Elem: uint32(e)})
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
