package core

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/stream"
	"repro/internal/workload"
)

// BenchmarkSketchAddEdge measures the streaming update cost of Algorithm 2
// — the paper claims O~(1) update time; this reports it in ns/edge.
func BenchmarkSketchAddEdge(b *testing.B) {
	inst := workload.Zipf(1000, 100000, 20000, 0.9, 0.8, 1)
	edges := inst.G.Edges(nil)
	params := Params{NumSets: 1000, NumElems: 100000, K: 20, Eps: 0.3,
		Seed: 7, EdgeBudget: 40 * 1000}
	b.ReportAllocs()
	b.ResetTimer()
	s := MustNewSketch(params)
	for i := 0; i < b.N; i++ {
		s.AddEdge(edges[i%len(edges)])
	}
}

// BenchmarkSketchBuildStream measures building a full sketch over a
// 100k-edge stream.
func BenchmarkSketchBuildStream(b *testing.B) {
	inst := workload.Zipf(500, 50000, 10000, 0.9, 0.8, 2)
	params := Params{NumSets: 500, NumElems: 50000, K: 10, Eps: 0.3,
		Seed: 7, EdgeBudget: 40 * 500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := MustNewSketch(params)
		s.AddStream(stream.Shuffled(inst.G, uint64(i)))
	}
}

// BenchmarkSketchGraph measures extracting the compact sketch instance.
func BenchmarkSketchGraph(b *testing.B) {
	inst := workload.Zipf(500, 50000, 10000, 0.9, 0.8, 3)
	params := Params{NumSets: 500, NumElems: 50000, K: 10, Eps: 0.3,
		Seed: 7, EdgeBudget: 40 * 500}
	s := MustNewSketch(params)
	s.AddStream(stream.Shuffled(inst.G, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _ := s.Graph()
		if g.NumSets() != 500 {
			b.Fatal("bad graph")
		}
	}
}

// BenchmarkBuildHp measures the offline Hp construction.
func BenchmarkBuildHp(b *testing.B) {
	inst := workload.Uniform(200, 20000, 0.01, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildHp(inst.G, 0.25, uint64(i))
	}
}

// BenchmarkCoverageEstimate measures the EstimateCoverage query path.
func BenchmarkCoverageEstimate(b *testing.B) {
	inst := workload.LargeSets(50, 20000, 0.3, 5)
	params := Params{NumSets: 50, NumElems: 20000, K: 10, Eps: 0.3,
		Seed: 7, EdgeBudget: 3000, DegreeCap: 50}
	s := MustNewSketch(params)
	s.AddStream(stream.Shuffled(inst.G, 1))
	sets := []int{0, 5, 10, 15, 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.EstimateCoverage(sets) <= 0 {
			b.Fatal("empty estimate")
		}
	}
}

var sinkEdge bipartite.Edge

// BenchmarkEdgeShuffle isolates the stream-generation cost that the
// sketch benchmarks pay.
func BenchmarkEdgeShuffle(b *testing.B) {
	inst := workload.Zipf(500, 50000, 10000, 0.9, 0.8, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := stream.Shuffled(inst.G, uint64(i))
		e, _ := st.Next()
		sinkEdge = e
	}
}
