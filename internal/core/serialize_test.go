package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/stream"
	"repro/internal/workload"
)

// sketchEqual compares the observable state of two sketches: parameters,
// sampling probability, and the exact kept (set, elem) edge set.
func sketchEqual(t *testing.T, a, b *Sketch) {
	t.Helper()
	if a.Params() != b.Params() {
		t.Fatalf("params differ: %+v vs %+v", a.Params(), b.Params())
	}
	if a.PStar() != b.PStar() {
		t.Fatalf("pstar differs: %v vs %v", a.PStar(), b.PStar())
	}
	if a.Edges() != b.Edges() || a.Elements() != b.Elements() {
		t.Fatalf("size differs: %d/%d edges, %d/%d elements",
			a.Edges(), b.Edges(), a.Elements(), b.Elements())
	}
	edges := map[uint64]bool{}
	a.ForEachEdge(func(e bipartite.Edge) { edges[uint64(e.Set)<<32|uint64(e.Elem)] = true })
	b.ForEachEdge(func(e bipartite.Edge) {
		if !edges[uint64(e.Set)<<32|uint64(e.Elem)] {
			t.Fatalf("edge (%d,%d) only in restored sketch", e.Set, e.Elem)
		}
		delete(edges, uint64(e.Set)<<32|uint64(e.Elem))
	})
	if len(edges) != 0 {
		t.Fatalf("%d edges only in original sketch", len(edges))
	}
}

func buildTestSketch(t *testing.T, budget int, seed uint64) *Sketch {
	t.Helper()
	inst := workload.Zipf(40, 3000, 600, 0.9, 0.7, seed)
	sk := MustNewSketch(Params{
		NumSets: 40, NumElems: 3000, K: 5, Eps: 0.3,
		EdgeBudget: budget, Seed: seed,
	})
	sk.AddStream(stream.Shuffled(inst.G, seed+1))
	return sk
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	sk := buildTestSketch(t, 400, 7)
	cl := sk.Clone()
	sketchEqual(t, sk, cl)
	// Mutating the clone must not affect the original.
	before := sk.Edges()
	inst := workload.Uniform(40, 3000, 0.05, 99)
	cl.AddStream(stream.Shuffled(inst.G, 3))
	if sk.Edges() != before {
		t.Fatalf("clone mutation leaked into original: %d -> %d edges", before, sk.Edges())
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	for _, budget := range []int{0 /* paper formula: nothing evicted */, 400, 2000} {
		sk := buildTestSketch(t, budget, 11)
		var buf bytes.Buffer
		if _, err := sk.WriteTo(&buf); err != nil {
			t.Fatalf("budget %d: WriteTo: %v", budget, err)
		}
		got, err := ReadSketch(&buf)
		if err != nil {
			t.Fatalf("budget %d: ReadSketch: %v", budget, err)
		}
		sketchEqual(t, sk, got)
		if got.Stats().EdgesSeen != sk.Stats().EdgesSeen {
			t.Fatalf("budget %d: EdgesSeen %d vs %d",
				budget, got.Stats().EdgesSeen, sk.Stats().EdgesSeen)
		}
	}
}

func TestRestoredSketchKeepsStreaming(t *testing.T) {
	// A restored sketch must behave exactly like the original under more
	// stream: same evictions, same final state.
	inst := workload.Zipf(30, 2000, 500, 0.9, 0.7, 5)
	params := Params{NumSets: 30, NumElems: 2000, K: 4, Eps: 0.3, EdgeBudget: 300, Seed: 13}
	edges := stream.Drain(stream.Shuffled(inst.G, 2))
	half := len(edges) / 2

	orig := MustNewSketch(params)
	orig.AddStream(stream.NewSlice(edges[:half]))

	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSketch(&buf)
	if err != nil {
		t.Fatal(err)
	}

	orig.AddStream(stream.NewSlice(edges[half:]))
	restored.AddStream(stream.NewSlice(edges[half:]))
	sketchEqual(t, orig, restored)
}

func TestReadSketchRejectsGarbage(t *testing.T) {
	if _, err := ReadSketch(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadSketch(strings.NewReader("NOTASKETCH")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Valid magic, truncated body.
	if _, err := ReadSketch(strings.NewReader(SketchMagic)); err == nil {
		t.Fatal("truncated sketch accepted")
	}
}
