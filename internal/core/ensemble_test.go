package core

import (
	"math"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/greedy"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/workload"
)

func TestEnsembleReplicaSeedsDiffer(t *testing.T) {
	params := smallParams(20, 3, 100, 5)
	e, err := NewEnsemble(params, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Replicas() != 5 {
		t.Fatalf("Replicas = %d", e.Replicas())
	}
	inst := workload.Uniform(20, 400, 0.1, 1)
	e.AddStream(stream.Shuffled(inst.G, 1))
	// Replicas hash independently, so their kept-element sets differ.
	same := 0
	a, b := e.Sketch(0), e.Sketch(1)
	for el := 0; el < 400; el++ {
		if a.Contains(uint32(el)) && b.Contains(uint32(el)) {
			same++
		}
	}
	if same == a.Elements() && a.Elements() == b.Elements() {
		t.Fatal("two replicas sampled identical element sets; seeds not independent")
	}
}

func TestEnsembleClampsReplicas(t *testing.T) {
	e, err := NewEnsemble(smallParams(5, 1, 20, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Replicas() != 1 {
		t.Fatalf("Replicas = %d, want clamp to 1", e.Replicas())
	}
}

func TestEnsembleRejectsBadParams(t *testing.T) {
	if _, err := NewEnsemble(Params{}, 3); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestEnsembleMedianEstimateAccuracy(t *testing.T) {
	// Under heavy sampling, the median across replicas should be at
	// least as accurate (in MAD) as a typical single replica.
	inst := workload.LargeSets(10, 4000, 0.4, 7)
	params := smallParams(10, 3, 800, 77)
	params.DegreeCap = 12
	e, err := NewEnsemble(params, 7)
	if err != nil {
		t.Fatal(err)
	}
	e.AddStream(stream.Shuffled(inst.G, 2))

	sets := []int{0, 1, 2}
	truth := float64(inst.G.Coverage(sets))
	medianEst := e.EstimateCoverage(sets)
	if math.Abs(medianEst-truth)/truth > 0.15 {
		t.Fatalf("median estimate %v too far from %v", medianEst, truth)
	}
	// Median error <= max single-replica error (median is inside hull).
	var errs []float64
	for i := 0; i < e.Replicas(); i++ {
		errs = append(errs, math.Abs(e.Sketch(i).EstimateCoverage(sets)-truth))
	}
	if math.Abs(medianEst-truth) > stats.Max(errs)+1e-9 {
		t.Fatal("median estimate worse than every replica (impossible)")
	}
}

func TestEnsembleEdgesAccounting(t *testing.T) {
	inst := workload.Uniform(10, 200, 0.1, 9)
	e, err := NewEnsemble(smallParams(10, 2, 5000, 3), 4)
	if err != nil {
		t.Fatal(err)
	}
	n := e.AddStream(stream.Shuffled(inst.G, 1))
	if n != inst.G.NumEdges() {
		t.Fatalf("AddStream consumed %d of %d", n, inst.G.NumEdges())
	}
	// Every replica stores the full (under-budget) graph.
	if e.Edges() != 4*inst.G.NumEdges() {
		t.Fatalf("ensemble edges %d, want %d", e.Edges(), 4*inst.G.NumEdges())
	}
}

func TestEnsembleBestSolution(t *testing.T) {
	inst := workload.PlantedKCover(30, 2000, 4, 0.9, 10, 11)
	params := smallParams(30, 4, 1200, 21)
	e, err := NewEnsemble(params, 3)
	if err != nil {
		t.Fatal(err)
	}
	e.AddStream(stream.Shuffled(inst.G, 3))
	sets, est := e.BestSolution(func(g *bipartite.Graph) []int {
		return greedy.MaxCover(g, 4).Sets
	})
	if len(sets) == 0 || est <= 0 {
		t.Fatal("empty best solution")
	}
	got := inst.G.Coverage(sets)
	if float64(got) < 0.5*float64(inst.PlantedCoverage) {
		t.Fatalf("best solution covers %d, planted %d", got, inst.PlantedCoverage)
	}
	if est < 0.7*float64(got) || est > 1.3*float64(got) {
		t.Fatalf("estimate %v vs truth %d", est, got)
	}
}

func TestEnsembleDeterministic(t *testing.T) {
	inst := workload.Uniform(12, 300, 0.08, 13)
	params := smallParams(12, 2, 150, 31)
	run := func() float64 {
		e, err := NewEnsemble(params, 5)
		if err != nil {
			t.Fatal(err)
		}
		e.AddStream(stream.Shuffled(inst.G, 4))
		return e.EstimateCoverage([]int{0, 1})
	}
	if run() != run() {
		t.Fatal("ensemble runs not deterministic")
	}
}
