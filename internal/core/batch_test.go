package core

import (
	"fmt"
	"testing"

	"repro/internal/stream"
	"repro/internal/workload"
)

// Batch-vs-incremental equivalence: AddEdges must produce a sketch
// identical to edge-by-edge AddEdge over the same edge sequence — same
// kept elements, same eviction bar, same per-element set lists — for
// every workload generator, for seeds across the board, for degree caps
// that do and don't bind, and for any batch size. This pins the deferred
// -shrink argument (DESIGN.md §6): any insert/shrink interleaving that
// ends with a shrink reaches the same Definition 2.1 fixed point.

// ingestWorkloads instantiates every generator in internal/workload at
// test scale.
func ingestWorkloads(seed uint64) []workload.Instance {
	return []workload.Instance{
		workload.Uniform(20, 400, 0.08, seed),
		workload.UniformFixedSize(15, 300, 12, seed+1),
		workload.Zipf(25, 500, 180, 0.9, 0.7, seed+2),
		workload.PlantedKCover(20, 300, 4, 0.8, 10, seed+3),
		workload.PlantedSetCover(18, 240, 5, 8, seed+4),
		workload.BlogTopics(20, 300, 60, seed+5),
		workload.LargeSets(12, 400, 0.4, seed+6),
		workload.Clustered(16, 320, 4, seed+7),
	}
}

// assertSketchesIdentical compares the full observable state of two
// sketches built over the same stream, including the internal eviction
// bar and the stream accounting.
func assertSketchesIdentical(t *testing.T, label string, inc, bat *Sketch, numElems int) {
	t.Helper()
	if inc.Elements() != bat.Elements() || inc.Edges() != bat.Edges() {
		t.Fatalf("%s: incremental (%d el, %d ed) != batched (%d el, %d ed)",
			label, inc.Elements(), inc.Edges(), bat.Elements(), bat.Edges())
	}
	if inc.evicted != bat.evicted || inc.barHash != bat.barHash || inc.barElem != bat.barElem {
		t.Fatalf("%s: bar (%v,%d,%d) != (%v,%d,%d)", label,
			inc.evicted, inc.barHash, inc.barElem, bat.evicted, bat.barHash, bat.barElem)
	}
	if inc.PStar() != bat.PStar() {
		t.Fatalf("%s: PStar %v != %v", label, inc.PStar(), bat.PStar())
	}
	if inc.edgesSeen != bat.edgesSeen {
		t.Fatalf("%s: edgesSeen %d != %d", label, inc.edgesSeen, bat.edgesSeen)
	}
	for e := 0; e < numElems; e++ {
		a, b := inc.SetsOf(uint32(e)), bat.SetsOf(uint32(e))
		if (a == nil) != (b == nil) || len(a) != len(b) {
			t.Fatalf("%s: element %d kept %v incrementally, %v batched", label, e, a, b)
		}
		for i := range a { // SetsOf returns sorted lists: exact comparison
			if a[i] != b[i] {
				t.Fatalf("%s: element %d set lists differ: %v vs %v", label, e, a, b)
			}
		}
	}
}

func TestBatchEqualsIncremental(t *testing.T) {
	for _, seed := range []uint64{1, 905} {
		for _, inst := range ingestWorkloads(seed) {
			edges := stream.Drain(stream.Shuffled(inst.G, seed*0x9e37+11))
			// Degree caps: the formula default, a cap that binds hard, and
			// one that never binds.
			for _, degCap := range []int{0, 3, inst.G.MaxElemDegree() + 1} {
				// Budgets: one forcing eviction, one keeping everything.
				for _, budget := range []int{len(edges)/4 + 1, len(edges) + 16} {
					params := Params{
						NumSets: inst.G.NumSets(), NumElems: inst.G.NumElems(),
						K: 3, Eps: 0.4, Seed: seed + 99,
						EdgeBudget: budget, DegreeCap: degCap,
					}
					inc := MustNewSketch(params)
					for _, e := range edges {
						inc.AddEdge(e)
					}
					for _, batch := range []int{1, 7, 64, 1024, len(edges)} {
						label := fmt.Sprintf("%s cap=%d budget=%d batch=%d",
							inst.Name, degCap, budget, batch)
						bat := MustNewSketch(params)
						for lo := 0; lo < len(edges); lo += batch {
							hi := lo + batch
							if hi > len(edges) {
								hi = len(edges)
							}
							bat.AddEdges(edges[lo:hi])
						}
						assertSketchesIdentical(t, label, inc, bat, inst.G.NumElems())
					}
				}
			}
		}
	}
}

// TestAddStreamEqualsAddEdge pins the internal batching of AddStream to
// the edge-by-edge semantics.
func TestAddStreamEqualsAddEdge(t *testing.T) {
	inst := workload.Zipf(30, 2000, 700, 0.9, 0.7, 3)
	edges := stream.Drain(stream.Shuffled(inst.G, 8))
	params := Params{NumSets: 30, NumElems: 2000, K: 4, Eps: 0.4, Seed: 5, EdgeBudget: len(edges) / 3}

	inc := MustNewSketch(params)
	for _, e := range edges {
		inc.AddEdge(e)
	}
	st := MustNewSketch(params)
	if n := st.AddStream(stream.NewSlice(edges)); n != len(edges) {
		t.Fatalf("AddStream consumed %d of %d edges", n, len(edges))
	}
	assertSketchesIdentical(t, "addstream", inc, st, inst.G.NumElems())
}

// TestAddEdgesEmptyAndConverged covers the trivial batched cases: empty
// batches are no-ops, and replaying a converged sketch's stream through
// AddEdges changes nothing (the bar drops everything cheaply).
func TestAddEdgesEmptyAndConverged(t *testing.T) {
	inst := workload.LargeSets(15, 600, 0.4, 2)
	edges := stream.Drain(stream.Shuffled(inst.G, 4))
	params := Params{NumSets: 15, NumElems: 600, K: 3, Eps: 0.4, Seed: 7, EdgeBudget: len(edges) / 5}
	s := MustNewSketch(params)
	s.AddEdges(nil)
	s.AddEdges(edges)
	if s.PStar() >= 1 {
		t.Fatal("expected eviction on this instance")
	}
	el, ed, p := s.Elements(), s.Edges(), s.PStar()
	s.AddEdges(edges)
	if s.Elements() != el || s.Edges() != ed || s.PStar() != p {
		t.Fatal("replaying the stream through AddEdges changed a converged sketch")
	}
	if s.Stats().EdgesSeen != int64(2*len(edges)) {
		t.Fatalf("EdgesSeen = %d, want %d", s.Stats().EdgesSeen, 2*len(edges))
	}
}
