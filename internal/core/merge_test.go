package core

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/hashing"
	"repro/internal/stream"
	"repro/internal/workload"
)

// splitEdges partitions g's edges into w shards deterministically.
func splitEdges(g *bipartite.Graph, w int, seed uint64) [][]bipartite.Edge {
	h := hashing.NewHasher(seed)
	out := make([][]bipartite.Edge, w)
	for s := 0; s < g.NumSets(); s++ {
		for _, e := range g.Set(s) {
			edge := bipartite.Edge{Set: uint32(s), Elem: e}
			i := int(h.Hash(edge.Set*31+edge.Elem) % uint64(w))
			out[i] = append(out[i], edge)
		}
	}
	return out
}

func sketchesEqual(t *testing.T, a, b *Sketch, g *bipartite.Graph, exactEdges bool) {
	t.Helper()
	if a.Elements() != b.Elements() || a.Edges() != b.Edges() {
		t.Fatalf("sketches differ: (%d el, %d ed) vs (%d el, %d ed)",
			a.Elements(), a.Edges(), b.Elements(), b.Edges())
	}
	if a.PStar() != b.PStar() {
		t.Fatalf("PStar %v vs %v", a.PStar(), b.PStar())
	}
	for e := 0; e < g.NumElems(); e++ {
		sa, sb := a.SetsOf(uint32(e)), b.SetsOf(uint32(e))
		if (sa == nil) != (sb == nil) || len(sa) != len(sb) {
			t.Fatalf("element %d: kept %d vs %d edges", e, len(sa), len(sb))
		}
		if exactEdges {
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("element %d: edge sets differ", e)
				}
			}
		}
	}
}

func TestMergeEqualsGlobalSketch(t *testing.T) {
	inst := workload.Zipf(30, 600, 200, 0.9, 0.7, 1)
	g := inst.G
	params := smallParams(30, 4, 200, 42)
	params.DegreeCap = g.MaxElemDegree() + 1 // caps never bind -> exact equality

	global := MustNewSketch(params)
	feed(global, g, 5)

	for _, w := range []int{2, 3, 5, 8} {
		shards := splitEdges(g, w, uint64(w))
		locals := make([]*Sketch, w)
		for i, sh := range shards {
			locals[i] = MustNewSketch(params)
			for _, e := range sh {
				locals[i].AddEdge(e)
			}
		}
		merged, err := MergeAll(params, locals...)
		if err != nil {
			t.Fatal(err)
		}
		sketchesEqual(t, merged, global, g, true)
	}
}

func TestMergeWithCapBindingKeepsCounts(t *testing.T) {
	// With binding caps, merged and global sketches agree on elements,
	// degrees and p*, though the specific kept edges may differ.
	inst := workload.LargeSets(20, 800, 0.5, 2)
	g := inst.G
	params := smallParams(20, 3, 300, 7)
	params.DegreeCap = 4

	global := MustNewSketch(params)
	feed(global, g, 3)

	shards := splitEdges(g, 4, 9)
	locals := make([]*Sketch, len(shards))
	for i, sh := range shards {
		locals[i] = MustNewSketch(params)
		for _, e := range sh {
			locals[i].AddEdge(e)
		}
	}
	merged, err := MergeAll(params, locals...)
	if err != nil {
		t.Fatal(err)
	}
	sketchesEqual(t, merged, global, g, false)
}

func TestMergeOrderIrrelevant(t *testing.T) {
	inst := workload.Uniform(15, 300, 0.08, 3)
	g := inst.G
	params := smallParams(15, 3, 120, 11)
	params.DegreeCap = g.MaxElemDegree() + 1

	shards := splitEdges(g, 3, 4)
	build := func(order []int) *Sketch {
		out := MustNewSketch(params)
		for _, i := range order {
			local := MustNewSketch(params)
			for _, e := range shards[i] {
				local.AddEdge(e)
			}
			if err := out.Merge(local); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	sketchesEqual(t, a, b, g, true)
}

func TestMergeRejectsIncompatible(t *testing.T) {
	a := MustNewSketch(smallParams(10, 2, 50, 1))
	cases := []Params{
		smallParams(11, 2, 50, 1), // different n
		smallParams(10, 3, 50, 1), // different k
		smallParams(10, 2, 60, 1), // different budget
		smallParams(10, 2, 50, 2), // different seed
		func() Params { // different hash family
			p := smallParams(10, 2, 50, 1)
			p.Hash = HashTabulation
			return p
		}(),
	}
	for i, p := range cases {
		b := MustNewSketch(p)
		if err := a.Merge(b); err == nil {
			t.Fatalf("case %d: incompatible merge accepted", i)
		}
	}
	// Merging nil is a no-op.
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge errored: %v", err)
	}
}

func TestMergeIdempotent(t *testing.T) {
	inst := workload.Uniform(10, 200, 0.1, 4)
	params := smallParams(10, 2, 5000, 3)
	a := MustNewSketch(params)
	feed(a, inst.G, 1)
	before := a.Edges()
	// Merging a sketch into an equal one must not change it (dedupe).
	b := MustNewSketch(params)
	feed(b, inst.G, 2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Edges() != before {
		t.Fatalf("self-merge changed edges: %d -> %d", before, a.Edges())
	}
}

func TestMergePropagatesEvictionBar(t *testing.T) {
	// Regression: merging a single evicting sketch into a fresh one must
	// reproduce its sampling probability, not reset it to 1 — the
	// coordinator only sees kept edges, so the bar has to travel with
	// the sketch.
	inst := workload.Zipf(25, 800, 300, 0.9, 0.7, 9)
	params := smallParams(25, 4, 250, 17)
	single := MustNewSketch(params)
	feed(single, inst.G, 2)
	if single.PStar() >= 1 {
		t.Fatal("test needs an evicting sketch; lower the budget")
	}
	merged, err := MergeAll(params, single)
	if err != nil {
		t.Fatal(err)
	}
	if merged.PStar() != single.PStar() {
		t.Fatalf("merged PStar %v != single %v", merged.PStar(), single.PStar())
	}
	sketchesEqual(t, merged, single, inst.G, false)
	// Coverage estimates must agree exactly.
	sets := []int{0, 1, 2, 3}
	if merged.EstimateCoverage(sets) != single.EstimateCoverage(sets) {
		t.Fatalf("estimate %v != %v", merged.EstimateCoverage(sets), single.EstimateCoverage(sets))
	}
}

func TestMergeBarDropsIncompleteElements(t *testing.T) {
	// An element kept by one worker but above another worker's bar has a
	// possibly-incomplete edge list; the merge must not keep it.
	inst := workload.Zipf(20, 600, 200, 0.9, 0.7, 10)
	g := inst.G
	params := smallParams(20, 3, 150, 23)
	params.DegreeCap = g.MaxElemDegree() + 1

	global := MustNewSketch(params)
	feed(global, g, 1)

	shards := splitEdges(g, 3, 31)
	locals := make([]*Sketch, len(shards))
	for i, sh := range shards {
		locals[i] = MustNewSketch(params)
		for _, e := range sh {
			locals[i].AddEdge(e)
		}
	}
	merged, err := MergeAll(params, locals...)
	if err != nil {
		t.Fatal(err)
	}
	sketchesEqual(t, merged, global, g, true)
}

func TestMergeDoesNotPolluteStreamAccounting(t *testing.T) {
	// Regression: Merge used to fold other's kept edges through AddEdge,
	// inflating the merged sketch's EdgesSeen/DupEdges as if the kept
	// edges had been stream traffic. The merge path must update the
	// structure without touching stream accounting.
	inst := workload.Zipf(20, 500, 150, 0.9, 0.7, 12)
	g := inst.G
	params := smallParams(20, 3, 120, 19)

	shards := splitEdges(g, 2, 5)
	locals := make([]*Sketch, len(shards))
	for i, sh := range shards {
		locals[i] = MustNewSketch(params)
		for _, e := range sh {
			locals[i].AddEdge(e)
		}
	}
	merged, err := MergeAll(params, locals...)
	if err != nil {
		t.Fatal(err)
	}
	st := merged.Stats()
	if st.EdgesSeen != 0 {
		t.Fatalf("merged sketch EdgesSeen = %d, want 0 (re-folded kept edges are not stream traffic)", st.EdgesSeen)
	}
	if st.DupEdges != 0 || st.DropHash != 0 || st.DropDegree != 0 {
		t.Fatalf("merged sketch drop counters polluted: %+v", st)
	}

	// Merging into a live sketch must leave its own stream accounting
	// untouched.
	live := MustNewSketch(params)
	for _, e := range shards[0] {
		live.AddEdge(e)
	}
	before := live.Stats()
	if err := live.Merge(locals[1]); err != nil {
		t.Fatal(err)
	}
	after := live.Stats()
	if after.EdgesSeen != before.EdgesSeen || after.DupEdges != before.DupEdges {
		t.Fatalf("merge changed stream accounting: %+v -> %+v", before, after)
	}
}

func TestForEachEdgeEnumeratesExactly(t *testing.T) {
	inst := workload.Uniform(8, 100, 0.15, 5)
	params := smallParams(8, 2, 10000, 9)
	s := MustNewSketch(params)
	feed(s, inst.G, 1)
	count := 0
	s.ForEachEdge(func(e bipartite.Edge) {
		if !inst.G.Contains(int(e.Set), e.Elem) {
			t.Fatalf("ForEachEdge invented edge %v", e)
		}
		count++
	})
	if count != s.Edges() {
		t.Fatalf("enumerated %d of %d edges", count, s.Edges())
	}
}

func TestTabulationSketchOrderInvariance(t *testing.T) {
	// The core invariance must hold under the alternative hash family.
	inst := workload.Zipf(20, 300, 100, 0.9, 0.7, 6)
	params := smallParams(20, 3, 120, 13)
	params.Hash = HashTabulation
	var ref *Sketch
	for order := uint64(0); order < 3; order++ {
		s := MustNewSketch(params)
		s.AddStream(stream.Shuffled(inst.G, order))
		if ref == nil {
			ref = s
			continue
		}
		if s.Elements() != ref.Elements() || s.Edges() != ref.Edges() || s.PStar() != ref.PStar() {
			t.Fatal("tabulation sketch depends on stream order")
		}
	}
}

// sequentialMergeAll is the pre-tree left fold MergeAll used to pin the
// parallel reduction against.
func sequentialMergeAll(t *testing.T, params Params, sketches []*Sketch) *Sketch {
	t.Helper()
	out := MustNewSketch(params)
	for _, sk := range sketches {
		if err := out.Merge(sk); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestMergeAllTreeEqualsSequential(t *testing.T) {
	inst := workload.Zipf(30, 600, 200, 0.9, 0.7, 5)
	g := inst.G
	params := smallParams(30, 4, 200, 17)
	params.DegreeCap = g.MaxElemDegree() + 1 // caps never bind -> exact equality

	// Odd and even shard counts exercise the leftover carry of the tree.
	for _, w := range []int{3, 4, 5, 8, 9} {
		shards := splitEdges(g, w, uint64(w)+100)
		locals := make([]*Sketch, w)
		before := make([]Stats, w)
		for i, sh := range shards {
			locals[i] = MustNewSketch(params)
			locals[i].AddEdges(sh)
			before[i] = locals[i].Stats()
		}
		want := sequentialMergeAll(t, params, locals)
		got, err := MergeAll(params, locals...)
		if err != nil {
			t.Fatal(err)
		}
		sketchesEqual(t, got, want, g, true)
		// Inputs must come back untouched: the tree only mutates
		// intermediates it allocated itself.
		for i, sk := range locals {
			if sk.Stats() != before[i] {
				t.Fatalf("w=%d: input sketch %d modified by MergeAll: %+v -> %+v",
					w, i, before[i], sk.Stats())
			}
		}
	}
}

func TestMergeAllTreeWithBindingCaps(t *testing.T) {
	// With binding degree caps the kept D-subsets may legally differ
	// between fold orders; elements, degrees and p* may not.
	inst := workload.LargeSets(20, 800, 0.5, 4)
	g := inst.G
	params := smallParams(20, 3, 300, 7)
	params.DegreeCap = 4

	shards := splitEdges(g, 5, 21)
	locals := make([]*Sketch, len(shards))
	for i, sh := range shards {
		locals[i] = MustNewSketch(params)
		locals[i].AddEdges(sh)
	}
	want := sequentialMergeAll(t, params, locals)
	got, err := MergeAll(params, locals...)
	if err != nil {
		t.Fatal(err)
	}
	sketchesEqual(t, got, want, g, false)
}

func TestMergeAllSkipsNilInputs(t *testing.T) {
	inst := workload.Uniform(10, 200, 0.1, 9)
	params := smallParams(10, 2, 100, 3)
	params.DegreeCap = inst.G.MaxElemDegree() + 1
	a := MustNewSketch(params)
	feed(a, inst.G, 2)
	got, err := MergeAll(params, nil, a, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sketchesEqual(t, got, a, inst.G, true)
}

// TestMergeAllOverlappingInputs exercises the presift fallback: inputs
// that share (set, elem) pairs inflate the presift degree sums, which
// MergeAll must detect and survive with an answer identical to the
// sequential fold.
func TestMergeAllOverlappingInputs(t *testing.T) {
	inst := workload.Zipf(25, 500, 150, 0.9, 0.7, 11)
	g := inst.G
	params := smallParams(25, 3, 150, 13)
	params.DegreeCap = g.MaxElemDegree() + 1

	// Each input sees a random ~60% of the edges; overlaps abound.
	edges := g.Edges(nil)
	locals := make([]*Sketch, 5)
	for i := range locals {
		locals[i] = MustNewSketch(params)
		h := hashing.NewHasher(uint64(i) * 77)
		for _, e := range edges {
			if h.Hash(e.Set*131+e.Elem)%10 < 6 {
				locals[i].AddEdge(e)
			}
		}
	}
	want := sequentialMergeAll(t, params, locals)
	got, err := MergeAll(params, locals...)
	if err != nil {
		t.Fatal(err)
	}
	sketchesEqual(t, got, want, g, true)
}
