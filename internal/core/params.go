// Package core implements the paper's central contribution: the coverage
// sketches Hp, H′p and H≤n of Section 2, together with the one-pass
// edge-arrival construction of Algorithm 2.
//
// Recap of the construction. A hash function h maps every element to a
// uniform value in [0, 1] (represented here as a uint64 priority).
//
//   - Hp keeps exactly the elements with h(v) ≤ p, with all their edges.
//   - H′p additionally caps the degree of every kept element at
//     D = n·ln(1/ε)/(ε·k), discarding surplus edges arbitrarily.
//   - H≤n = H′p* where p* is the smallest p at which H′p reaches the edge
//     budget B = 24·n·δ·ln(1/ε)·ln(n)/((1−ε)·ε³) (Definition 2.1) — i.e.
//     the elements with the smallest hash values whose capped degrees sum
//     to the budget. The sketch therefore always holds O~(n) edges,
//     independent of m and of the set sizes.
//
// Theorem 2.7: any α-approximate k-cover solution computed on H≤n is an
// (α − 12ε)-approximate solution on the original input w.h.p., so the
// streaming algorithms simply run the classical offline algorithms on the
// sketch.
package core

import (
	"fmt"
	"math"
)

// Params configures a sketch. NumSets (n), K and Eps are required. The
// zero values of the remaining fields select the paper's formulas.
type Params struct {
	// NumSets is n, the number of sets in the instance. Required.
	NumSets int
	// NumElems is m, used only inside the δ factor of the edge budget
	// (δ = δ″·log log m terms). If zero, a default of 2²⁰ is assumed; the
	// dependence is doubly logarithmic so the choice is insensitive.
	NumElems int
	// K is the solution size the sketch must support (k of k-cover, or
	// k′·ln(1/λ′) for the set-cover submodule). Required, ≥ 1.
	K int
	// Eps is the accuracy parameter ε ∈ (0, 1].
	Eps float64
	// DeltaPP is the confidence parameter δ″ ≥ 1 of Definition 2.1.
	// Zero selects 2 + ln n as in Algorithm 3.
	DeltaPP float64

	// EdgeBudget, when positive, overrides the theoretical budget B.
	// Experiments use this to sweep space; the default follows the paper.
	EdgeBudget int
	// DegreeCap, when positive, overrides D = n·ln(1/ε)/(ε·k).
	DegreeCap int
	// SpaceFactor, when positive, multiplies the theoretical edge budget.
	SpaceFactor float64

	// Seed drives the element hash function. Algorithms derive distinct
	// sub-seeds from it, so a single seed makes a whole run reproducible.
	Seed uint64

	// Hash selects the hash family mapping elements to [0,1] priorities.
	// The zero value is HashSplitMix64. The guarantees only need a
	// uniform family; the tabulation option exists to verify that
	// results are not an artifact of one mixer (and offers
	// 3-independence).
	Hash HashFamily
}

// HashFamily selects the element hash function of the sketch.
type HashFamily int

const (
	// HashSplitMix64 is the default single-multiply mixer.
	HashSplitMix64 HashFamily = iota
	// HashTabulation is 4-way tabulation hashing (3-independent).
	HashTabulation
)

// String implements fmt.Stringer.
func (h HashFamily) String() string {
	switch h {
	case HashSplitMix64:
		return "splitmix64"
	case HashTabulation:
		return "tabulation"
	default:
		return fmt.Sprintf("HashFamily(%d)", int(h))
	}
}

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if p.NumSets <= 0 {
		return fmt.Errorf("core: NumSets must be positive, got %d", p.NumSets)
	}
	if p.K <= 0 {
		return fmt.Errorf("core: K must be positive, got %d", p.K)
	}
	if !(p.Eps > 0 && p.Eps <= 1) {
		return fmt.Errorf("core: Eps must be in (0,1], got %v", p.Eps)
	}
	if p.DeltaPP < 0 {
		return fmt.Errorf("core: DeltaPP must be >= 0, got %v", p.DeltaPP)
	}
	if p.EdgeBudget < 0 || p.DegreeCap < 0 || p.SpaceFactor < 0 {
		return fmt.Errorf("core: overrides must be non-negative")
	}
	if p.Hash != HashSplitMix64 && p.Hash != HashTabulation {
		return fmt.Errorf("core: unknown hash family %d", int(p.Hash))
	}
	return nil
}

// sketchCompatible reports whether two parameter sets produce sketches
// that may be merged: they must agree on everything that determines the
// kept-edge policy (dimensions, accuracy, budget, cap, seed, family).
func (p Params) sketchCompatible(q Params) bool {
	return p.NumSets == q.NumSets &&
		p.K == q.K &&
		p.Eps == q.Eps &&
		p.Seed == q.Seed &&
		p.Hash == q.Hash &&
		p.EffectiveDegreeCap() == q.EffectiveDegreeCap() &&
		p.EffectiveEdgeBudget() == q.EffectiveEdgeBudget()
}

// deltaPP returns δ″, defaulting to 2 + ln n (Algorithm 3's choice).
func (p Params) deltaPP() float64 {
	if p.DeltaPP > 0 {
		return p.DeltaPP
	}
	return 2 + math.Log(float64(maxInt(p.NumSets, 2)))
}

// Delta returns δ = δ″ · ln(µ) where µ = log_{1/(1−ε)} m is the number of
// probability grid points in the proof of Theorem 2.7 (Definition 2.1's
// "δ″ log log_{1−ε} m"). It is at least δ″.
func (p Params) Delta() float64 {
	m := p.NumElems
	if m < 4 {
		m = 1 << 20
	}
	mu := math.Log(float64(m)) / math.Log(1/(1-minFloat(p.Eps, 0.999)))
	if mu < 2 {
		mu = 2
	}
	d := p.deltaPP() * math.Log(mu)
	if d < p.deltaPP() {
		d = p.deltaPP()
	}
	return d
}

// EffectiveDegreeCap returns D, the per-element degree cap
// n·ln(1/ε)/(ε·k), honoring the override. Always ≥ 1.
func (p Params) EffectiveDegreeCap() int {
	if p.DegreeCap > 0 {
		return p.DegreeCap
	}
	d := float64(p.NumSets) * math.Log(1/p.Eps) / (p.Eps * float64(p.K))
	cap := int(math.Ceil(d))
	if cap < 1 {
		cap = 1
	}
	if cap > p.NumSets {
		// An element belongs to at most n sets; a larger cap is inert but
		// wastes per-slot capacity accounting.
		cap = p.NumSets
	}
	return cap
}

// EffectiveEdgeBudget returns B, the sketch edge budget
// 24·n·δ·ln(1/ε)·ln(n)/((1−ε)·ε³) of Definition 2.1, honoring
// SpaceFactor/EdgeBudget overrides. Always ≥ 1.
func (p Params) EffectiveEdgeBudget() int {
	if p.EdgeBudget > 0 {
		return p.EdgeBudget
	}
	n := float64(p.NumSets)
	b := 24 * n * p.Delta() * math.Log(1/p.Eps) * math.Log(maxFloat(n, 2)) /
		((1 - minFloat(p.Eps, 0.999)) * p.Eps * p.Eps * p.Eps)
	if p.SpaceFactor > 0 {
		b *= p.SpaceFactor
	}
	if b < 1 {
		return 1
	}
	if b > 1e15 {
		return int(1e15)
	}
	return int(math.Ceil(b))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
