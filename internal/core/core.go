package core
