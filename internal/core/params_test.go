package core

import (
	"math"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	good := Params{NumSets: 10, K: 2, Eps: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{NumSets: 0, K: 2, Eps: 0.5},
		{NumSets: 10, K: 0, Eps: 0.5},
		{NumSets: 10, K: 2, Eps: 0},
		{NumSets: 10, K: 2, Eps: 1.5},
		{NumSets: 10, K: 2, Eps: 0.5, DeltaPP: -1},
		{NumSets: 10, K: 2, Eps: 0.5, EdgeBudget: -1},
		{NumSets: 10, K: 2, Eps: 0.5, SpaceFactor: -0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad params %d accepted", i)
		}
	}
}

func TestDegreeCapFormula(t *testing.T) {
	// D = n ln(1/eps) / (eps k), capped at n.
	p := Params{NumSets: 100, K: 10, Eps: 0.5}
	want := int(math.Ceil(100 * math.Log(2) / (0.5 * 10)))
	if got := p.EffectiveDegreeCap(); got != want {
		t.Fatalf("DegreeCap = %d, want %d", got, want)
	}
	// Override wins.
	p.DegreeCap = 7
	if p.EffectiveDegreeCap() != 7 {
		t.Fatal("DegreeCap override ignored")
	}
	// Cap at n.
	q := Params{NumSets: 5, K: 1, Eps: 0.01}
	if q.EffectiveDegreeCap() > 5 {
		t.Fatalf("DegreeCap %d exceeds n=5", q.EffectiveDegreeCap())
	}
}

func TestEdgeBudgetFormulaMonotonicity(t *testing.T) {
	base := Params{NumSets: 100, NumElems: 10000, K: 10, Eps: 0.5}
	b1 := base.EffectiveEdgeBudget()
	if b1 <= 0 {
		t.Fatal("budget must be positive")
	}
	// Smaller eps -> larger budget (1/eps^3 dependence).
	tight := base
	tight.Eps = 0.25
	if tight.EffectiveEdgeBudget() <= b1 {
		t.Fatal("budget should grow as eps shrinks")
	}
	// Larger n -> larger budget.
	bigger := base
	bigger.NumSets = 200
	if bigger.EffectiveEdgeBudget() <= b1 {
		t.Fatal("budget should grow with n")
	}
	// SpaceFactor scales.
	scaled := base
	scaled.SpaceFactor = 2
	if got := scaled.EffectiveEdgeBudget(); got < int(1.9*float64(b1)) || got > int(2.1*float64(b1))+1 {
		t.Fatalf("SpaceFactor=2 gave %d vs base %d", got, b1)
	}
	// Explicit override wins over everything.
	over := base
	over.EdgeBudget = 123
	over.SpaceFactor = 9
	if over.EffectiveEdgeBudget() != 123 {
		t.Fatal("EdgeBudget override ignored")
	}
}

func TestDeltaDefaults(t *testing.T) {
	p := Params{NumSets: 100, K: 5, Eps: 0.5}
	// Default deltaPP = 2 + ln n.
	want := 2 + math.Log(100)
	if got := p.deltaPP(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("deltaPP = %v, want %v", got, want)
	}
	p.DeltaPP = 3
	if p.deltaPP() != 3 {
		t.Fatal("DeltaPP override ignored")
	}
	// Delta >= deltaPP always.
	if p.Delta() < p.deltaPP() {
		t.Fatalf("Delta %v below deltaPP %v", p.Delta(), p.deltaPP())
	}
	// Delta grows (slowly) with m.
	small := Params{NumSets: 100, NumElems: 1 << 10, K: 5, Eps: 0.5}
	big := Params{NumSets: 100, NumElems: 1 << 30, K: 5, Eps: 0.5}
	if big.Delta() < small.Delta() {
		t.Fatal("Delta should be non-decreasing in m")
	}
}

func TestBudgetIsOTildeNShape(t *testing.T) {
	// Doubling n should grow the budget by at most ~2.5x (n log n shape),
	// far below the n^2 growth a set-size-dependent sketch would show.
	p1 := Params{NumSets: 1000, NumElems: 1 << 20, K: 10, Eps: 0.5}
	p2 := Params{NumSets: 2000, NumElems: 1 << 20, K: 10, Eps: 0.5}
	r := float64(p2.EffectiveEdgeBudget()) / float64(p1.EffectiveEdgeBudget())
	if r > 2.5 {
		t.Fatalf("budget grew %.2fx when n doubled; superlinear in n", r)
	}
	if r < 2.0 {
		t.Fatalf("budget grew %.2fx when n doubled; sublinear in n", r)
	}
}
