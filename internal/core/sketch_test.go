package core

import (
	"sort"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/hashing"
	"repro/internal/stream"
	"repro/internal/workload"
)

// smallParams returns practical sketch parameters for tests.
func smallParams(n, k int, budget int, seed uint64) Params {
	return Params{NumSets: n, NumElems: 1 << 12, K: k, Eps: 0.4, Seed: seed, EdgeBudget: budget}
}

func feed(s *Sketch, g *bipartite.Graph, order uint64) {
	st := stream.Shuffled(g, order)
	for {
		e, ok := st.Next()
		if !ok {
			return
		}
		s.AddEdge(e)
	}
}

func TestSketchKeepsEverythingUnderBudget(t *testing.T) {
	inst := workload.Uniform(20, 100, 0.1, 1)
	g := inst.G
	s := MustNewSketch(smallParams(20, 3, g.NumEdges()+100, 7))
	feed(s, g, 1)
	if s.Edges() != g.NumEdges() {
		t.Fatalf("under budget: kept %d of %d edges", s.Edges(), g.NumEdges())
	}
	if s.PStar() != 1 {
		t.Fatalf("PStar = %v, want 1 when nothing evicted", s.PStar())
	}
	// Coverage on the sketch is exact coverage.
	for _, sets := range [][]int{{0}, {1, 2}, {0, 5, 9}} {
		if got := s.CoverageOf(sets); got != g.Coverage(sets) {
			t.Fatalf("coverage of %v: sketch %d, graph %d", sets, got, g.Coverage(sets))
		}
	}
}

func TestSketchRespectsBudget(t *testing.T) {
	inst := workload.Uniform(30, 500, 0.2, 2)
	g := inst.G
	budget := 200
	s := MustNewSketch(smallParams(30, 3, budget, 11))
	feed(s, g, 3)
	// Definition 2.1: p* is the smallest p with >= budget edges, so the
	// kept edges land in [budget, budget + degree cap of last element].
	if s.Edges() < budget {
		t.Fatalf("kept %d < budget %d despite large input", s.Edges(), budget)
	}
	if s.Edges() > budget+s.DegreeCap() {
		t.Fatalf("kept %d > budget %d + cap %d", s.Edges(), budget, s.DegreeCap())
	}
	if s.PStar() >= 1 {
		t.Fatal("eviction happened but PStar = 1")
	}
}

func TestSketchDegreeCapEnforced(t *testing.T) {
	// Every element belongs to all 50 sets; cap at 5.
	var edges []bipartite.Edge
	for st := 0; st < 50; st++ {
		for e := 0; e < 20; e++ {
			edges = append(edges, bipartite.Edge{Set: uint32(st), Elem: uint32(e)})
		}
	}
	g := bipartite.MustFromEdges(50, 20, edges)
	p := smallParams(50, 3, 10000, 5)
	p.DegreeCap = 5
	s := MustNewSketch(p)
	feed(s, g, 1)
	for e := uint32(0); e < 20; e++ {
		if got := len(s.SetsOf(e)); got > 5 {
			t.Fatalf("element %d kept %d edges > cap 5", e, got)
		}
	}
	if s.Stats().DropDegree == 0 {
		t.Fatal("expected degree-cap drops")
	}
}

func TestSketchDeduplicatesEdges(t *testing.T) {
	s := MustNewSketch(smallParams(5, 2, 100, 3))
	e := bipartite.Edge{Set: 1, Elem: 4}
	for i := 0; i < 10; i++ {
		s.AddEdge(e)
	}
	if s.Edges() != 1 {
		t.Fatalf("kept %d edges for one distinct membership", s.Edges())
	}
	if s.Stats().DupEdges != 9 {
		t.Fatalf("DupEdges = %d, want 9", s.Stats().DupEdges)
	}
}

func TestSketchOrderInvariance(t *testing.T) {
	// The kept element set, edge count and PStar must be identical for
	// any arrival order (Definition 2.1 depends only on hash values).
	inst := workload.Zipf(25, 400, 150, 0.9, 0.7, 4)
	g := inst.G
	var ref *Sketch
	for order := uint64(0); order < 5; order++ {
		s := MustNewSketch(smallParams(25, 4, 150, 99))
		feed(s, g, order)
		if ref == nil {
			ref = s
			continue
		}
		if s.Elements() != ref.Elements() || s.Edges() != ref.Edges() {
			t.Fatalf("order %d: elements/edges (%d,%d) != ref (%d,%d)",
				order, s.Elements(), s.Edges(), ref.Elements(), ref.Edges())
		}
		if s.PStar() != ref.PStar() {
			t.Fatalf("order %d: PStar %v != %v", order, s.PStar(), ref.PStar())
		}
		// Same kept elements.
		for e := 0; e < g.NumElems(); e++ {
			if s.Contains(uint32(e)) != ref.Contains(uint32(e)) {
				t.Fatalf("order %d: element %d membership differs", order, e)
			}
		}
	}
}

func TestStreamingMatchesOffline(t *testing.T) {
	// With no element over the degree cap, Algorithm 2 must produce
	// exactly Algorithm 1's sketch: same elements, same edges, same p*.
	inst := workload.Uniform(20, 300, 0.05, 5) // max elem degree ~ a few
	g := inst.G
	params := smallParams(20, 4, 120, 77)
	params.DegreeCap = g.MaxElemDegree() + 1 // cap never binds

	off, err := BuildOffline(g, params)
	if err != nil {
		t.Fatal(err)
	}
	st := MustNewSketch(params)
	feed(st, g, 42)

	if off.Elements() != st.Elements() || off.Edges() != st.Edges() {
		t.Fatalf("offline (%d el, %d ed) != streaming (%d el, %d ed)",
			off.Elements(), off.Edges(), st.Elements(), st.Edges())
	}
	if off.PStar() != st.PStar() {
		t.Fatalf("PStar offline %v != streaming %v", off.PStar(), st.PStar())
	}
	for e := 0; e < g.NumElems(); e++ {
		a := append([]uint32(nil), off.SetsOf(uint32(e))...)
		b := append([]uint32(nil), st.SetsOf(uint32(e))...)
		if len(a) != len(b) {
			t.Fatalf("element %d: offline %v != streaming %v", e, a, b)
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("element %d edge sets differ", e)
			}
		}
	}
}

func TestSketchIsSubgraph(t *testing.T) {
	inst := workload.Uniform(15, 200, 0.1, 6)
	g := inst.G
	s := MustNewSketch(smallParams(15, 3, 80, 13))
	feed(s, g, 9)
	for e := 0; e < g.NumElems(); e++ {
		for _, set := range s.SetsOf(uint32(e)) {
			if !g.Contains(int(set), uint32(e)) {
				t.Fatalf("sketch invented edge (%d,%d)", set, e)
			}
		}
	}
}

func TestSketchKeepsLowestHashElements(t *testing.T) {
	inst := workload.Uniform(10, 300, 0.08, 8)
	g := inst.G
	params := smallParams(10, 3, 60, 55)
	s := MustNewSketch(params)
	feed(s, g, 2)
	if s.PStar() >= 1 {
		t.Skip("no eviction at this budget; enlarge input")
	}
	h := hashing.NewHasher(params.Seed)
	bar := uint64(0)
	for e := 0; e < g.NumElems(); e++ {
		if s.Contains(uint32(e)) {
			if hv := h.Hash(uint32(e)); hv > bar {
				bar = hv
			}
		}
	}
	// No excluded element with edges may hash strictly below every kept
	// element (the kept set is a hash prefix).
	for e := 0; e < g.NumElems(); e++ {
		if g.ElemDegree(e) == 0 || s.Contains(uint32(e)) {
			continue
		}
		if h.Hash(uint32(e)) < bar {
			// Allowed only if it ties the bar element; exact prefix uses
			// (hash, id) ordering, so strict inequality is a bug.
			t.Fatalf("excluded element %d hashes below a kept element", e)
		}
	}
}

func TestSketchGraphExtraction(t *testing.T) {
	inst := workload.Uniform(12, 150, 0.1, 9)
	g := inst.G
	s := MustNewSketch(smallParams(12, 3, 70, 21))
	feed(s, g, 5)
	sg, ids := s.Graph()
	if sg.NumSets() != g.NumSets() {
		t.Fatal("sketch graph changed set count")
	}
	if sg.NumElems() != s.Elements() || len(ids) != s.Elements() {
		t.Fatalf("sketch graph has %d elements, sketch %d", sg.NumElems(), s.Elements())
	}
	// Edges must match SetsOf under the id mapping.
	total := 0
	for newID, orig := range ids {
		sets := s.SetsOf(orig)
		if sg.ElemDegree(newID) != len(sets) {
			t.Fatalf("element %d degree %d != %d", orig, sg.ElemDegree(newID), len(sets))
		}
		total += len(sets)
	}
	if total != s.Edges() {
		t.Fatalf("sketch graph edges %d != %d", total, s.Edges())
	}
}

func TestSketchStatsAccounting(t *testing.T) {
	inst := workload.Uniform(10, 100, 0.1, 10)
	g := inst.G
	s := MustNewSketch(smallParams(10, 2, 40, 31))
	feed(s, g, 7)
	st := s.Stats()
	if st.EdgesSeen != int64(g.NumEdges()) {
		t.Fatalf("EdgesSeen = %d, want %d", st.EdgesSeen, g.NumEdges())
	}
	if st.EdgesKept != s.Edges() || st.ElementsKept != s.Elements() {
		t.Fatal("stats disagree with accessors")
	}
	if st.PeakEdges < st.EdgesKept {
		t.Fatal("peak below current")
	}
	if st.Bytes <= 0 {
		t.Fatal("Bytes not accounted")
	}
	if st.PStar != s.PStar() {
		t.Fatal("stats PStar mismatch")
	}
}

func TestCoverageEstimateUnderBudgetIsExact(t *testing.T) {
	inst := workload.Uniform(8, 60, 0.2, 11)
	g := inst.G
	s := MustNewSketch(smallParams(8, 2, 10000, 41))
	feed(s, g, 1)
	for _, sets := range [][]int{{0}, {2, 4}, {0, 1, 2, 3}} {
		if est := s.EstimateCoverage(sets); est != float64(g.Coverage(sets)) {
			t.Fatalf("estimate %v != exact %d", est, g.Coverage(sets))
		}
	}
}

func TestCoverageEstimateAccuracyUnderSampling(t *testing.T) {
	// With eviction active, the estimate should land within a modest
	// relative error of the truth for large covers.
	inst := workload.LargeSets(10, 5000, 0.4, 12)
	g := inst.G
	params := smallParams(10, 3, 1500, 61)
	params.DegreeCap = 10 // elements have degree ~4 on average; allow all
	s := MustNewSketch(params)
	feed(s, g, 3)
	if s.PStar() >= 1 {
		t.Fatal("expected sampling on this instance")
	}
	sets := []int{0, 1, 2}
	truth := float64(g.Coverage(sets))
	est := s.EstimateCoverage(sets)
	if est < 0.85*truth || est > 1.15*truth {
		t.Fatalf("estimate %v too far from truth %v (p*=%v)", est, truth, s.PStar())
	}
}

func TestEvictionBarMonotone(t *testing.T) {
	// Once an element is evicted, later edges for it must be dropped.
	var edges []bipartite.Edge
	for e := 0; e < 200; e++ {
		edges = append(edges, bipartite.Edge{Set: uint32(e % 10), Elem: uint32(e)})
		edges = append(edges, bipartite.Edge{Set: uint32((e + 1) % 10), Elem: uint32(e)})
	}
	g := bipartite.MustFromEdges(10, 200, edges)
	s := MustNewSketch(smallParams(10, 2, 50, 71))
	feed(s, g, 1)
	if s.Stats().DropHash == 0 {
		t.Fatal("expected hash-bar drops on an over-budget stream")
	}
	// Feeding the whole stream again must not change the sketch.
	edgesBefore, elemsBefore := s.Edges(), s.Elements()
	feed(s, g, 2)
	if s.Edges() != edgesBefore || s.Elements() != elemsBefore {
		t.Fatal("replaying the stream changed a converged sketch")
	}
}

func TestAddStreamCountsEdges(t *testing.T) {
	inst := workload.Uniform(6, 40, 0.2, 13)
	s := MustNewSketch(smallParams(6, 2, 1000, 81))
	n := s.AddStream(stream.Shuffled(inst.G, 4))
	if n != inst.G.NumEdges() {
		t.Fatalf("AddStream consumed %d, want %d", n, inst.G.NumEdges())
	}
}

func TestNewSketchRejectsBadParams(t *testing.T) {
	if _, err := NewSketch(Params{}); err == nil {
		t.Fatal("zero params accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewSketch did not panic")
		}
	}()
	MustNewSketch(Params{})
}
