package core

import (
	"sort"

	"repro/internal/bipartite"
	"repro/internal/hashing"
)

// Sketch is the H≤n coverage sketch (Definition 2.1) with the one-pass
// edge-arrival construction of Algorithm 2. A Sketch is not safe for
// concurrent use; for parallelism, build one sketch per goroutine over
// disjoint shards and Merge them (see merge.go and internal/distributed).
//
// Online equivalence with the paper's Algorithm 2: the sketch maintains
// the invariant that the kept elements are exactly those with the
// smallest hash priorities whose capped degrees sum to at least the edge
// budget B (the minimal such prefix). Evictions always remove the
// current largest-priority element, so an evicted element is never
// readmitted — the eviction bar only moves down. Arriving edges of
// elements at or above the bar are discarded in O(1).
type Sketch struct {
	params Params
	budget int
	degCap int
	// slack bounds how far totalEdges may overshoot the budget between
	// deferred shrinks on the batched ingest path (see AddEdges).
	slack int
	hash  func(uint32) uint64

	index map[uint32]int32 // element id -> slot index
	slots []slot
	free  []int32
	heap  []int32 // max-heap over slots by (hash, elem)

	totalEdges int

	// Eviction bar: the smallest (hash, elem) pair ever evicted. Every
	// kept element compares strictly below it.
	evicted    bool
	barHash    uint64
	barElem    uint32
	peakEdges  int
	edgesSeen  int64
	dupEdges   int64
	dropDegree int64
	dropHash   int64
}

type slot struct {
	elem uint32
	hash uint64
	// sets holds the distinct set ids of the element in arrival order,
	// len <= degCap. The hot path appends; readers that need a canonical
	// order sort lazily via normalize (the sorted flag tracks whether the
	// list is currently ascending).
	sets   []uint32
	sorted bool
	full   bool  // degree cap reached; later edges of this element drop
	hpos   int32 // position in heap, -1 if free
}

// normalize sorts the slot's set list ascending; it is idempotent and
// called lazily by readers that expose or persist the list.
func (sl *slot) normalize() {
	if sl.sorted {
		return
	}
	sort.Slice(sl.sets, func(i, j int) bool { return sl.sets[i] < sl.sets[j] })
	sl.sorted = true
}

// NewSketch returns an empty sketch for the given parameters.
func NewSketch(params Params) (*Sketch, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	var hash func(uint32) uint64
	switch params.Hash {
	case HashTabulation:
		hash = hashing.NewTabulationHasher(params.Seed).Hash
	default:
		hash = hashing.NewHasher(params.Seed).Hash
	}
	s := &Sketch{
		params: params,
		budget: params.EffectiveEdgeBudget(),
		degCap: params.EffectiveDegreeCap(),
		hash:   hash,
		index:  make(map[uint32]int32),
	}
	// Shrink slack: the batched path lets the sketch overshoot the budget
	// by this many edges before re-enforcing Definition 2.1. Larger slack
	// amortizes shrink better; smaller slack keeps the eviction bar fresh
	// (so the cheap hash-only drop path engages sooner) and bounds the
	// transient memory overshoot.
	s.slack = s.budget / 8
	if s.slack < 128 {
		s.slack = 128
	}
	return s, nil
}

// MustNewSketch is NewSketch that panics on invalid parameters.
func MustNewSketch(params Params) *Sketch {
	s, err := NewSketch(params)
	if err != nil {
		panic(err)
	}
	return s
}

// Params returns the sketch parameters.
func (s *Sketch) Params() Params { return s.params }

// Budget returns the effective edge budget B.
func (s *Sketch) Budget() int { return s.budget }

// DegreeCap returns the effective per-element degree cap D.
func (s *Sketch) DegreeCap() int { return s.degCap }

// priorityLess orders (hash, elem) pairs; it breaks hash ties by element
// id so that the order is a strict total order even under hash collisions.
func priorityLess(h1 uint64, e1 uint32, h2 uint64, e2 uint32) bool {
	if h1 != h2 {
		return h1 < h2
	}
	return e1 < e2
}

// AddEdge processes one stream edge (Algorithm 2's update step). It is a
// thin single-edge wrapper over the same insertion core as AddEdges; the
// element hash is only computed for elements not already kept (a kept
// element needs no priority to accept another edge).
func (s *Sketch) AddEdge(e bipartite.Edge) {
	s.edgesSeen++
	if si, ok := s.index[e.Elem]; ok {
		s.addToSlot(si, e.Set, true)
		s.shrink()
		return
	}
	h := s.hash(e.Elem)
	// New element: if it is at or above the eviction bar it would have
	// been (or immediately be) evicted — discard without allocating.
	if s.evicted && !priorityLess(h, e.Elem, s.barHash, s.barElem) {
		s.dropHash++
		return
	}
	si := s.alloc(e.Elem, h)
	s.addToSlot(si, e.Set, true)
	s.shrink()
}

// AddEdges processes a batch of stream edges. It is equivalent to calling
// AddEdge on each edge in order — same kept elements, same per-element
// set lists, same eviction bar (pinned by TestBatchEqualsIncremental) —
// but amortizes the per-edge overheads over the batch:
//
//   - Every kept element is strictly below the eviction bar (the bar only
//     moves down and evicted elements are never readmitted), so an edge
//     whose element hashes at or above the bar is dropped after one
//     SplitMix64 call, before the index lookup that dominates the
//     per-edge cost.
//   - shrink() — re-enforcing the Definition 2.1 minimal-prefix invariant
//     — is deferred to slack boundaries and to the end of the batch
//     instead of running after every edge. Deferral is sound because the
//     sketch is an order-invariant function of the absorbed edge set:
//     any insert/shrink interleaving that ends with a shrink reaches the
//     same fixed point (see DESIGN.md §6 for the argument).
//
// Below-bar elements still short-circuit before any allocation, and the
// transient budget overshoot between shrinks is bounded by the sketch's
// slack (budget/8, at least 128 edges).
func (s *Sketch) AddEdges(edges []bipartite.Edge) {
	for _, e := range edges {
		s.edgesSeen++
		s.insert(e, true)
	}
	s.shrink()
}

// insert applies the kept-edge admission policy for one edge on the
// deferred-shrink paths: bar-first hash drop, index lookup, alloc, slot
// insert, and budget re-enforcement at slack boundaries only. count
// selects stream accounting (false on the merge/restore path). Both
// AddEdges and absorb go through here so the admission policy cannot
// diverge between streaming and merge ingest.
func (s *Sketch) insert(e bipartite.Edge, count bool) {
	h := s.hash(e.Elem)
	if s.evicted && !priorityLess(h, e.Elem, s.barHash, s.barElem) {
		if count {
			s.dropHash++
		}
		return
	}
	si, ok := s.index[e.Elem]
	if !ok {
		si = s.alloc(e.Elem, h)
	}
	s.addToSlot(si, e.Set, count)
	if s.totalEdges >= s.budget+s.slack {
		s.shrink()
	}
}

// streamBatch is the internal batch size AddStream feeds to AddEdges.
const streamBatch = 2048

// drainBatches reads st into streamBatch-sized chunks, hands each chunk
// to fn (including a final partial one), and returns the number of edges
// consumed. Shared by Sketch.AddStream and Ensemble.AddStream.
func drainBatches(st interface {
	Next() (bipartite.Edge, bool)
}, fn func([]bipartite.Edge)) int {
	buf := make([]bipartite.Edge, 0, streamBatch)
	count := 0
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		buf = append(buf, e)
		if len(buf) == streamBatch {
			fn(buf)
			count += len(buf)
			buf = buf[:0]
		}
	}
	fn(buf)
	return count + len(buf)
}

// AddStream drains st into the sketch and returns the number of edges
// consumed. It is the whole single pass of Algorithm 2, fed through the
// batched AddEdges path.
func (s *Sketch) AddStream(st interface {
	Next() (bipartite.Edge, bool)
}) int {
	return drainBatches(st, s.AddEdges)
}

// absorb is the merge/restore ingest path: it inserts an edge with the
// same kept-edge policy as AddEdges but without touching the stream
// accounting (edgesSeen, dupEdges, dropDegree, dropHash) — a re-folded
// kept edge is not stream traffic. Callers must shrink() afterwards;
// absorb itself only re-enforces the budget at slack boundaries.
func (s *Sketch) absorb(e bipartite.Edge) {
	s.insert(e, false)
}

func (s *Sketch) alloc(elem uint32, h uint64) int32 {
	var si int32
	if len(s.free) > 0 {
		si = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.slots[si].elem = elem
		s.slots[si].hash = h
		s.slots[si].sets = s.slots[si].sets[:0]
		s.slots[si].sorted = true
		s.slots[si].full = false
	} else {
		s.slots = append(s.slots, slot{elem: elem, hash: h, sorted: true})
		si = int32(len(s.slots) - 1)
	}
	s.index[elem] = si
	s.heapPush(si)
	return si
}

// sortedInsertThreshold is the slot size beyond which addToSlot switches
// from append-plus-linear-scan to a sorted list with binary-search dup
// checks: short lists (the common case) stay append-only with no
// memmove, long lists avoid O(D) scans on every duplicate.
const sortedInsertThreshold = 24

// addToSlot records set as incident to the slot's element. Duplicates
// are rejected exactly — totalEdges always counts distinct edges, so the
// budget checks stay sound — but adaptively: short lists append in
// arrival order and dup-check with a branch-predictable linear scan;
// once a list crosses sortedInsertThreshold it is sorted once and kept
// sorted (binary-search dup check, positional insert). count selects
// whether the dup/degree-drop stream counters are updated (false on the
// merge/restore path).
func (s *Sketch) addToSlot(si int32, set uint32, count bool) {
	sl := &s.slots[si]
	if sl.full {
		if count {
			s.dropDegree++
		}
		return
	}
	if len(sl.sets) >= sortedInsertThreshold {
		sl.normalize()
		sets := sl.sets
		i := sort.Search(len(sets), func(i int) bool { return sets[i] >= set })
		if i < len(sets) && sets[i] == set {
			if count {
				s.dupEdges++
			}
			return
		}
		sets = append(sets, 0)
		copy(sets[i+1:], sets[i:])
		sets[i] = set
		sl.sets = sets
	} else {
		for _, v := range sl.sets {
			if v == set {
				if count {
					s.dupEdges++
				}
				return
			}
		}
		if n := len(sl.sets); sl.sorted && n > 0 && set < sl.sets[n-1] {
			sl.sorted = false
		}
		if cap(sl.sets) == 0 {
			// First edge of a fresh slot: skip the tiny append growth steps
			// (1→2→4) that dominate allocation churn during a build.
			c := s.degCap
			if c > 8 {
				c = 8
			}
			sl.sets = make([]uint32, 0, c)
		}
		sl.sets = append(sl.sets, set)
	}
	s.totalEdges++
	// Peak residency is tracked at insert time so the batched path's
	// transient overshoot between deferred shrinks (bounded by slack) is
	// reported honestly in the space accounting.
	if s.totalEdges > s.peakEdges {
		s.peakEdges = s.totalEdges
	}
	if len(sl.sets) >= s.degCap {
		sl.full = true
	}
}

// shrink enforces Definition 2.1: keep the minimal hash-prefix of
// elements whose kept edges total at least the budget. While removing the
// largest-priority element still leaves >= budget edges, remove it.
func (s *Sketch) shrink() {
	for len(s.heap) > 1 {
		top := s.heap[0]
		if s.totalEdges-len(s.slots[top].sets) < s.budget {
			return
		}
		s.evict(top)
	}
}

func (s *Sketch) evict(si int32) {
	sl := &s.slots[si]
	if !s.evicted || priorityLess(sl.hash, sl.elem, s.barHash, s.barElem) {
		s.evicted = true
		s.barHash = sl.hash
		s.barElem = sl.elem
	}
	s.totalEdges -= len(sl.sets)
	delete(s.index, sl.elem)
	s.heapRemove(sl.hpos)
	sl.hpos = -1
	sl.sets = sl.sets[:0]
	s.free = append(s.free, si)
}

// --- max-heap over slots keyed by (hash, elem) ---

func (s *Sketch) heapAbove(a, b int32) bool {
	sa, sb := &s.slots[a], &s.slots[b]
	return priorityLess(sb.hash, sb.elem, sa.hash, sa.elem) // a above b iff a > b
}

func (s *Sketch) heapPush(si int32) {
	s.heap = append(s.heap, si)
	i := int32(len(s.heap) - 1)
	s.slots[si].hpos = i
	s.heapUp(i)
}

func (s *Sketch) heapRemove(pos int32) {
	last := int32(len(s.heap) - 1)
	if pos != last {
		s.heapSwap(pos, last)
	}
	s.heap = s.heap[:last]
	if pos != last && pos < int32(len(s.heap)) {
		s.heapDown(pos)
		s.heapUp(pos)
	}
}

func (s *Sketch) heapSwap(i, j int32) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.slots[s.heap[i]].hpos = i
	s.slots[s.heap[j]].hpos = j
}

func (s *Sketch) heapUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapAbove(s.heap[i], s.heap[parent]) {
			return
		}
		s.heapSwap(i, parent)
		i = parent
	}
}

func (s *Sketch) heapDown(i int32) {
	n := int32(len(s.heap))
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && s.heapAbove(s.heap[l], s.heap[best]) {
			best = l
		}
		if r < n && s.heapAbove(s.heap[r], s.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		s.heapSwap(i, best)
		i = best
	}
}

// --- accessors ---

// Elements returns the number of elements currently kept.
func (s *Sketch) Elements() int { return len(s.index) }

// Edges returns the number of edges currently kept.
func (s *Sketch) Edges() int { return s.totalEdges }

// PStar returns the sampling probability p* of the sketch: the fraction
// of hash space below the eviction bar, or 1 when nothing was evicted
// (the sketch then holds the entire capped input).
func (s *Sketch) PStar() float64 {
	if !s.evicted {
		return 1
	}
	return hashing.ToUnit(s.barHash)
}

// Contains reports whether element elem is currently kept.
func (s *Sketch) Contains(elem uint32) bool {
	_, ok := s.index[elem]
	return ok
}

// SetsOf returns the kept set ids incident to elem, sorted ascending
// (nil if not kept). The slice aliases internal storage and must not be
// modified. The hot ingest path stores lists in arrival order, so this
// reader sorts lazily on first access; like every Sketch method it must
// not race with other access.
func (s *Sketch) SetsOf(elem uint32) []uint32 {
	si, ok := s.index[elem]
	if !ok {
		return nil
	}
	s.slots[si].normalize()
	return s.slots[si].sets
}

// Coverage counts kept elements covered by the selected sets:
// |Γ(H≤n, S)| for S = {s : selected(s)}.
func (s *Sketch) Coverage(selected func(set uint32) bool) int {
	covered := 0
	for _, si := range s.heap {
		for _, set := range s.slots[si].sets {
			if selected(set) {
				covered++
				break
			}
		}
	}
	return covered
}

// CoverageOf is Coverage for an explicit id list.
func (s *Sketch) CoverageOf(sets []int) int {
	sel := make(map[uint32]struct{}, len(sets))
	for _, x := range sets {
		sel[uint32(x)] = struct{}{}
	}
	return s.Coverage(func(set uint32) bool {
		_, ok := sel[set]
		return ok
	})
}

// EstimateCoverage returns the unbiased-scaled coverage estimate
// |Γ(H≤n, S)| / p* of Lemma 2.2 for the given sets.
func (s *Sketch) EstimateCoverage(sets []int) float64 {
	return float64(s.CoverageOf(sets)) / s.PStar()
}

// Graph materializes the sketch as a bipartite graph: set ids are
// preserved; kept elements are renumbered 0..Elements()-1 in increasing
// hash order (the order is irrelevant to coverage). The second return
// value maps new element ids back to original ones.
func (s *Sketch) Graph() (*bipartite.Graph, []uint32) {
	type kv struct {
		hash uint64
		si   int32
	}
	kept := make([]kv, 0, len(s.heap))
	for _, si := range s.heap {
		kept = append(kept, kv{hash: s.slots[si].hash, si: si})
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := &s.slots[kept[i].si], &s.slots[kept[j].si]
		return priorityLess(a.hash, a.elem, b.hash, b.elem)
	})
	ids := make([]uint32, len(kept))
	edges := make([]bipartite.Edge, 0, s.totalEdges)
	for newID, e := range kept {
		sl := &s.slots[e.si]
		// Normalize while extracting: a sketch that has been graphed (every
		// published server snapshot) is fully sorted, so subsequent readers
		// like SetsOf are pure reads and safe to share.
		sl.normalize()
		ids[newID] = sl.elem
		for _, set := range sl.sets {
			edges = append(edges, bipartite.Edge{Set: set, Elem: uint32(newID)})
		}
	}
	g, err := bipartite.FromEdges(s.params.NumSets, len(kept), edges)
	if err != nil {
		panic("core: sketch graph construction failed: " + err.Error())
	}
	return g, ids
}

// Stats reports the resource usage and stream accounting of the sketch.
type Stats struct {
	EdgesSeen    int64 // edges consumed from the stream
	EdgesKept    int   // edges currently stored
	PeakEdges    int   // maximum edges ever stored simultaneously
	ElementsKept int   // elements currently stored
	Budget       int   // effective edge budget B
	DegreeCap    int   // effective degree cap D
	DupEdges     int64 // duplicate (set,elem) pairs discarded
	DropDegree   int64 // edges discarded by the degree cap
	DropHash     int64 // edges discarded by the eviction bar
	PStar        float64
	Bytes        int64 // approximate resident bytes of the sketch payload
}

// Stats returns a snapshot of the sketch accounting.
func (s *Sketch) Stats() Stats {
	var bytes int64
	for i := range s.slots {
		bytes += 24 /* slot header */ + 4*int64(cap(s.slots[i].sets))
	}
	bytes += int64(len(s.heap))*4 + int64(len(s.index))*12
	return Stats{
		EdgesSeen:    s.edgesSeen,
		EdgesKept:    s.totalEdges,
		PeakEdges:    s.peakEdges,
		ElementsKept: len(s.index),
		Budget:       s.budget,
		DegreeCap:    s.degCap,
		DupEdges:     s.dupEdges,
		DropDegree:   s.dropDegree,
		DropHash:     s.dropHash,
		PStar:        s.PStar(),
		Bytes:        bytes,
	}
}
