package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/bipartite"
)

// This file adds the persistence and duplication primitives the serving
// path needs: a sketch can be deep-copied (Clone), written to a compact
// binary snapshot (WriteTo) and reconstructed from one (ReadSketch).
// Restore relies on the same order-invariance as merging: the sketch is a
// deterministic function of its kept-edge set plus the eviction bar, so
// replaying the kept edges and folding the stored bar reproduces the
// sketch exactly (see merge.go for the argument).

// SketchMagic heads every serialized sketch; the trailing digit is the
// format version. Exported so containers that embed or sniff sketch
// blobs (the service's multi-namespace snapshot v2, covserved's restore
// path) can distinguish a bare v1 sketch file from their own framing
// without attempting a full decode.
const SketchMagic = "SKCH1"

// Clone returns a deep copy of the sketch. The copy shares only the
// (stateless, read-only) hash function with the original; mutating one
// never affects the other. Cloning is how the serving path takes a
// consistent cut of a shard's state without stalling its ingest loop.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{
		params:     s.params,
		budget:     s.budget,
		degCap:     s.degCap,
		slack:      s.slack,
		hash:       s.hash,
		index:      make(map[uint32]int32, len(s.index)),
		slots:      make([]slot, len(s.slots)),
		free:       append([]int32(nil), s.free...),
		heap:       append([]int32(nil), s.heap...),
		totalEdges: s.totalEdges,
		evicted:    s.evicted,
		barHash:    s.barHash,
		barElem:    s.barElem,
		peakEdges:  s.peakEdges,
		edgesSeen:  s.edgesSeen,
		dupEdges:   s.dupEdges,
		dropDegree: s.dropDegree,
		dropHash:   s.dropHash,
	}
	for i := range s.slots {
		c.slots[i] = s.slots[i]
		c.slots[i].sets = append([]uint32(nil), s.slots[i].sets...)
	}
	for k, v := range s.index {
		c.index[k] = v
	}
	return c
}

// SetEdgesSeen overrides the sketch's consumed-edge counter. Merged
// sketches count only the kept edges they replayed (see Merge), so a
// serving coordinator that persists a merged sketch uses this to carry
// the true ingested total across a snapshot/restore cycle.
func (s *Sketch) SetEdgesSeen(n int64) { s.edgesSeen = n }

// WriteTo serializes the sketch — parameters, eviction bar, stream
// accounting and every kept edge — in a compact little-endian binary
// format readable by ReadSketch. It implements io.WriterTo.
func (s *Sketch) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	put := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(SketchMagic); err != nil {
		return n, err
	}
	n += int64(len(SketchMagic))
	p := s.params
	fields := []interface{}{
		int64(p.NumSets), int64(p.NumElems), int64(p.K),
		math.Float64bits(p.Eps), math.Float64bits(p.DeltaPP),
		int64(p.EdgeBudget), int64(p.DegreeCap), math.Float64bits(p.SpaceFactor),
		p.Seed, uint8(p.Hash),
		boolByte(s.evicted), s.barHash, s.barElem,
		s.edgesSeen, uint32(len(s.heap)),
	}
	for _, f := range fields {
		if err := put(f); err != nil {
			return n, err
		}
	}
	// Canonical element order: the heap's layout depends on insertion
	// history (a merged sketch and a streamed sketch with identical
	// content interleave differently), so persist elements in ascending
	// (hash, elem) priority — the same order Graph materializes — and
	// equal sketches serialize to equal bytes however they were built.
	kept := append([]int32(nil), s.heap...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := &s.slots[kept[i]], &s.slots[kept[j]]
		return priorityLess(a.hash, a.elem, b.hash, b.elem)
	})
	for _, si := range kept {
		sl := &s.slots[si]
		// Canonical bytes: the hot ingest path keeps set lists in arrival
		// order; persist them sorted so equal sketches serialize equally.
		sl.normalize()
		if err := put(sl.elem); err != nil {
			return n, err
		}
		if err := put(uint32(len(sl.sets))); err != nil {
			return n, err
		}
		for _, set := range sl.sets {
			if err := put(set); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadSketch reconstructs a sketch written by WriteTo. The result is
// identical to the original: same kept edges, eviction bar, sampling
// probability and parameters (per-run drop counters are not preserved —
// they describe the stream, not the sketch).
func ReadSketch(r io.Reader) (*Sketch, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(SketchMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading sketch header: %w", err)
	}
	if string(magic) != SketchMagic {
		return nil, fmt.Errorf("core: bad sketch magic %q", magic)
	}
	get := func(v interface{}) error { return binary.Read(br, binary.LittleEndian, v) }
	var (
		numSets, numElems, k       int64
		epsBits, deltaBits, sfBits uint64
		edgeBudget, degCap         int64
		seed                       uint64
		hashFam                    uint8
		evicted                    uint8
		barHash                    uint64
		barElem                    uint32
		edgesSeen                  int64
		elements                   uint32
	)
	for _, v := range []interface{}{
		&numSets, &numElems, &k, &epsBits, &deltaBits,
		&edgeBudget, &degCap, &sfBits, &seed, &hashFam,
		&evicted, &barHash, &barElem, &edgesSeen, &elements,
	} {
		if err := get(v); err != nil {
			return nil, fmt.Errorf("core: reading sketch fields: %w", err)
		}
	}
	params := Params{
		NumSets:     int(numSets),
		NumElems:    int(numElems),
		K:           int(k),
		Eps:         math.Float64frombits(epsBits),
		DeltaPP:     math.Float64frombits(deltaBits),
		EdgeBudget:  int(edgeBudget),
		DegreeCap:   int(degCap),
		SpaceFactor: math.Float64frombits(sfBits),
		Seed:        seed,
		Hash:        HashFamily(hashFam),
	}
	s, err := NewSketch(params)
	if err != nil {
		return nil, fmt.Errorf("core: restoring sketch: %w", err)
	}
	for i := uint32(0); i < elements; i++ {
		var elem, nsets uint32
		if err := get(&elem); err != nil {
			return nil, fmt.Errorf("core: reading element %d: %w", i, err)
		}
		if err := get(&nsets); err != nil {
			return nil, fmt.Errorf("core: reading element %d: %w", i, err)
		}
		for j := uint32(0); j < nsets; j++ {
			var set uint32
			if err := get(&set); err != nil {
				return nil, fmt.Errorf("core: reading element %d: %w", i, err)
			}
			// absorb: replayed kept edges are not stream traffic, so the
			// per-run counters (dup/drop) stay zero without a reset.
			s.absorb(bipartite.Edge{Set: set, Elem: elem})
		}
	}
	if evicted != 0 {
		s.foldBar(barHash, barElem)
	} else {
		s.shrink()
	}
	s.edgesSeen = edgesSeen
	s.peakEdges = s.totalEdges
	return s, nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
