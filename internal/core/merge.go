package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bipartite"
)

// This file makes H≤n sketches composable — the property behind the
// paper's companion distributed results (§1.3.2 and the conclusion): the
// sketch is a deterministic, order-invariant function of the *set* of
// edges it has absorbed, so sketches built over disjoint shards of a
// stream merge into exactly the sketch of the whole stream.
//
// Why merging kept edges suffices: a worker drops an edge only (a) above
// its eviction bar or (b) beyond the degree cap. For (a), the worker kept
// ≥ B edges strictly below its bar, so the global sketch — which sees a
// superset of edges — has a bar no higher, and would have dropped the
// edge too. For (b), the global sketch caps the same element at the same
// D, so it also keeps only D of the element's edges (possibly a different
// D-subset, which Definition 2.1 explicitly allows). Hence
// Merge(shard sketches) ≡ Sketch(whole stream), exactly when degree caps
// never bind and up to the allowed cap-subset choice otherwise. The
// equivalence is pinned down by TestMergeEqualsGlobalSketch.

// ForEachEdge calls fn for every kept edge of the sketch. Iteration
// order is unspecified. fn must not mutate the sketch.
func (s *Sketch) ForEachEdge(fn func(e bipartite.Edge)) {
	for _, si := range s.heap {
		sl := &s.slots[si]
		for _, set := range sl.sets {
			fn(bipartite.Edge{Set: set, Elem: sl.elem})
		}
	}
}

// Merge folds other's kept edges into s. Both sketches must have been
// built with compatible parameters (same dimensions, ε, k, seed, hash
// family and effective budget/cap), otherwise the kept-edge policies
// disagree and an error is returned. other is not modified.
//
// Besides the edges, the eviction bar is folded: the sampling threshold
// of the merged sketch is the minimum of the inputs' thresholds (the
// globally smallest excluded element is either excluded by some input —
// whose bar then equals it — or evicted here). Kept elements at or above
// the folded bar are evicted: their edge lists may be incomplete, since
// other discarded edges above its own bar; the prefix below them already
// carries a full budget, so Definition 2.1 excludes them anyway.
//
// Stream-accounting note: folding other's kept edges goes through the
// internal absorb path, which does NOT touch the stream counters —
// s.Stats().EdgesSeen still reports only the edges s itself consumed
// from a stream, never re-folded kept edges. A coordinator that needs
// the cluster-wide consumed total sums the inputs' EdgesSeen (as
// internal/distributed.Stats and the server engine do) or overrides it
// with SetEdgesSeen before persisting.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return nil
	}
	if !s.params.sketchCompatible(other.params) {
		return fmt.Errorf("core: cannot merge incompatible sketches (params %+v vs %+v)",
			s.params, other.params)
	}
	// Batched fold: absorbFrom defers budget enforcement to slack
	// boundaries; foldBar/shrink below restore Definition 2.1 at the end.
	s.absorbFrom(other)
	if other.evicted {
		s.foldBar(other.barHash, other.barElem)
	} else {
		s.shrink()
	}
	return nil
}

// absorbFrom folds other's kept slots into s with the same kept-edge
// policy as the per-edge absorb path but at slot granularity: the
// element hash is already stored in the slot, so an element at or above
// s's eviction bar is skipped whole at one comparison — no SplitMix64
// call per edge — and an admitted element's set list inserts into one
// resolved slot. Interleaving budget enforcement at element instead of
// edge boundaries is covered by the deferred-shrink argument (DESIGN.md
// §6): any schedule ending in shrink reaches the same fixed point.
// Stream accounting is untouched, as for absorb.
func (s *Sketch) absorbFrom(other *Sketch) {
	for _, osi := range other.heap {
		sl := &other.slots[osi]
		if s.evicted && !priorityLess(sl.hash, sl.elem, s.barHash, s.barElem) {
			continue
		}
		si, ok := s.index[sl.elem]
		if !ok {
			si = s.alloc(sl.elem, sl.hash)
		}
		for _, set := range sl.sets {
			s.addToSlot(si, set, false)
		}
		if s.totalEdges >= s.budget+s.slack {
			s.shrink()
		}
	}
}

// foldBar lowers the eviction bar to at most (h, e), evicts every kept
// element at or above the new bar, and re-enforces the budget. Shared by
// Merge and by snapshot restore (serialize.go).
func (s *Sketch) foldBar(h uint64, e uint32) {
	if !s.evicted || priorityLess(h, e, s.barHash, s.barElem) {
		s.evicted = true
		s.barHash = h
		s.barElem = e
	}
	s.evictAboveBar()
	s.shrink()
}

// evictAboveBar removes every kept element whose priority is at or above
// the current eviction bar.
func (s *Sketch) evictAboveBar() {
	for len(s.heap) > 0 {
		top := s.heap[0]
		sl := &s.slots[top]
		if priorityLess(sl.hash, sl.elem, s.barHash, s.barElem) {
			return
		}
		s.evict(top)
	}
}

// MergeAll builds a sketch with the given parameters holding the merge
// of every input. Inputs must all be compatible with params and are
// never modified.
//
// With three or more inputs the fold is a parallel tree reduction: one
// goroutine per pair at each level, leaves merging into fresh sketches
// and higher levels folding the right intermediate into the left one
// (intermediates are owned here, so reusing them as accumulation
// targets is safe). Merging is order-invariant — the sketch is a
// function of the absorbed edge set (see the argument at the top of
// this file) — so the tree reduce returns the same sketch as the
// sequential left fold: exactly when degree caps never bind at merge
// time, and up to the cap-subset choice Definition 2.1 allows
// otherwise, as for any fold order (both pinned by
// TestMergeAllTreeEqualsSequential). The coordinator refresh of
// internal/server rides this: its
// wall-clock merge cost drops from the sum of the shard merges to the
// depth of the tree.
func MergeAll(params Params, sketches ...*Sketch) (*Sketch, error) {
	live := make([]*Sketch, 0, len(sketches))
	for _, sk := range sketches {
		if sk != nil {
			live = append(live, sk)
		}
	}
	if len(live) < 3 {
		out, err := NewSketch(params)
		if err != nil {
			return nil, err
		}
		for _, sk := range live {
			if err := out.Merge(sk); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	barH, barE, seeded, cutByCum := mergeBar(params, live)
	out, err := mergeFold(params, live, barH, barE, seeded)
	if err != nil {
		return nil, err
	}
	if cutByCum && out.totalEdges < out.budget {
		// The presift bar was computed from per-input degree sums; inputs
		// that overlap on (set, elem) pairs inflate those sums, which can
		// only push the presift bar too low (never too high), and that
		// manifests exactly as a merged sketch below budget. Redo the fold
		// without the presift; the unseeded fold is correct for any inputs.
		return mergeFold(params, live, 0, 0, false)
	}
	return out, nil
}

// mergeFold folds the inputs with the strategy fitting the hardware:
// the goroutine-per-pair tree when there is parallelism to exploit,
// otherwise a sequential fold into a single (optionally presift-seeded)
// target — the same result either way by merge order-invariance.
func mergeFold(params Params, live []*Sketch, barH uint64, barE uint32, seeded bool) (*Sketch, error) {
	if runtime.GOMAXPROCS(0) > 1 {
		return mergeTree(params, live, barH, barE, seeded)
	}
	return mergeSeq(params, live, barH, barE, seeded)
}

// mergeSeq folds the inputs sequentially into one fresh target, seeded
// with the presift bar when available.
func mergeSeq(params Params, live []*Sketch, barH uint64, barE uint32, seeded bool) (*Sketch, error) {
	out, err := NewSketch(params)
	if err != nil {
		return nil, err
	}
	if seeded {
		out.foldBar(barH, barE)
	}
	for _, sk := range live {
		if err := out.Merge(sk); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mergeBar presifts the fold: it predicts the merged sketch's eviction
// bar from the inputs' kept-slot summaries so absorption can drop
// excluded elements at one comparison instead of inserting and then
// evicting them. The final kept set is the minimal ascending-priority
// prefix of the inputs' elements whose capped degrees sum to at least
// the budget (Definition 2.1), and the final bar is the smaller of the
// folded input bars and the first excluded element's priority. Degrees
// are summed across inputs (capped at D), which is exact when inputs
// are edge-disjoint — the engine's hash-partitioned shards — and an
// overestimate otherwise; MergeAll detects the overestimated case and
// falls back (see above). cutByCum reports whether the returned bar
// came from the budget cut rather than the input bars alone.
func mergeBar(params Params, inputs []*Sketch) (barH uint64, barE uint32, seeded, cutByCum bool) {
	for _, sk := range inputs {
		if sk.evicted && (!seeded || priorityLess(sk.barHash, sk.barElem, barH, barE)) {
			barH, barE, seeded = sk.barHash, sk.barElem, true
		}
	}
	total := 0
	for _, sk := range inputs {
		total += len(sk.heap)
	}
	cands := make([]mergeCand, 0, total)
	for _, sk := range inputs {
		for _, si := range sk.heap {
			sl := &sk.slots[si]
			if seeded && !priorityLess(sl.hash, sl.elem, barH, barE) {
				continue // at or above a folded input bar: excluded regardless
			}
			cands = append(cands, mergeCand{hash: sl.hash, elem: sl.elem, deg: int32(len(sl.sets))})
		}
	}
	// Selection, not a full sort: only the minimal prefix matters, which
	// is typically a small fraction of the candidates (every shard keeps
	// the same low-priority elements, so the budget is met after
	// ~budget/Σdeg of them). A manual min-heap pops candidates in
	// ascending priority until the budget cut.
	candHeapify(cands)
	budget := params.EffectiveEdgeBudget()
	degCap := params.EffectiveDegreeCap()
	cum := 0
	for len(cands) > 0 {
		top := cands[0]
		if cum >= budget {
			// First element beyond the minimal prefix: the bar drops to it.
			barH, barE, seeded, cutByCum = top.hash, top.elem, true, true
			break
		}
		// Coalesce the element across inputs, capping the summed degree.
		deg := 0
		for len(cands) > 0 && cands[0].elem == top.elem && cands[0].hash == top.hash {
			deg += int(cands[0].deg)
			cands = candPop(cands)
		}
		if deg > degCap {
			deg = degCap
		}
		cum += deg
	}
	return barH, barE, seeded, cutByCum
}

// mergeCand is one presift candidate: a kept element of one input with
// its per-input degree.
type mergeCand struct {
	hash uint64
	elem uint32
	deg  int32
}

// candHeapify builds a min-heap by (hash, elem) in place.
func candHeapify(c []mergeCand) {
	for i := len(c)/2 - 1; i >= 0; i-- {
		candSiftDown(c, i)
	}
}

// candPop removes the minimum and returns the shrunk heap.
func candPop(c []mergeCand) []mergeCand {
	last := len(c) - 1
	c[0] = c[last]
	c = c[:last]
	candSiftDown(c, 0)
	return c
}

func candSiftDown(c []mergeCand, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(c) && priorityLess(c[l].hash, c[l].elem, c[least].hash, c[least].elem) {
			least = l
		}
		if r < len(c) && priorityLess(c[r].hash, c[r].elem, c[least].hash, c[least].elem) {
			least = r
		}
		if least == i {
			return
		}
		c[i], c[least] = c[least], c[i]
		i = least
	}
}

// mergeTree is the parallel reduction over ≥ 3 input sketches. cur
// holds the working list; owned[i] marks intermediates allocated here
// (mutable accumulation targets) as opposed to caller inputs (read-only).
// When seeded, fresh targets start with their eviction bar at (barH,
// barE) — the presift prediction — so excluded elements drop on arrival.
func mergeTree(params Params, cur []*Sketch, barH uint64, barE uint32, seeded bool) (*Sketch, error) {
	owned := make([]bool, len(cur))
	for len(cur) > 1 {
		pairs := len(cur) / 2
		next := make([]*Sketch, (len(cur)+1)/2)
		nextOwned := make([]bool, len(next))
		errs := make([]error, pairs)
		var wg sync.WaitGroup
		for p := 0; p < pairs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				a, b := cur[2*p], cur[2*p+1]
				switch {
				case owned[2*p]:
					errs[p] = a.Merge(b)
					next[p], nextOwned[p] = a, true
				case owned[2*p+1]:
					errs[p] = b.Merge(a)
					next[p], nextOwned[p] = b, true
				default:
					out, err := NewSketch(params)
					if err == nil {
						if seeded {
							out.foldBar(barH, barE)
						}
						err = out.Merge(a)
					}
					if err == nil {
						err = out.Merge(b)
					}
					next[p], nextOwned[p], errs[p] = out, true, err
				}
			}(p)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		if len(cur)%2 == 1 { // odd leftover rides up a level unchanged
			next[pairs] = cur[len(cur)-1]
			nextOwned[pairs] = owned[len(cur)-1]
		}
		cur, owned = next, nextOwned
	}
	if !owned[0] {
		// Single caller-owned survivor (cannot happen with ≥ 3 inputs, but
		// keep the invariant local): copy into a fresh sketch.
		out, err := NewSketch(params)
		if err != nil {
			return nil, err
		}
		if err := out.Merge(cur[0]); err != nil {
			return nil, err
		}
		return out, nil
	}
	return cur[0], nil
}
