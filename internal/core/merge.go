package core

import (
	"fmt"

	"repro/internal/bipartite"
)

// This file makes H≤n sketches composable — the property behind the
// paper's companion distributed results (§1.3.2 and the conclusion): the
// sketch is a deterministic, order-invariant function of the *set* of
// edges it has absorbed, so sketches built over disjoint shards of a
// stream merge into exactly the sketch of the whole stream.
//
// Why merging kept edges suffices: a worker drops an edge only (a) above
// its eviction bar or (b) beyond the degree cap. For (a), the worker kept
// ≥ B edges strictly below its bar, so the global sketch — which sees a
// superset of edges — has a bar no higher, and would have dropped the
// edge too. For (b), the global sketch caps the same element at the same
// D, so it also keeps only D of the element's edges (possibly a different
// D-subset, which Definition 2.1 explicitly allows). Hence
// Merge(shard sketches) ≡ Sketch(whole stream), exactly when degree caps
// never bind and up to the allowed cap-subset choice otherwise. The
// equivalence is pinned down by TestMergeEqualsGlobalSketch.

// ForEachEdge calls fn for every kept edge of the sketch. Iteration
// order is unspecified. fn must not mutate the sketch.
func (s *Sketch) ForEachEdge(fn func(e bipartite.Edge)) {
	for _, si := range s.heap {
		sl := &s.slots[si]
		for _, set := range sl.sets {
			fn(bipartite.Edge{Set: set, Elem: sl.elem})
		}
	}
}

// Merge folds other's kept edges into s. Both sketches must have been
// built with compatible parameters (same dimensions, ε, k, seed, hash
// family and effective budget/cap), otherwise the kept-edge policies
// disagree and an error is returned. other is not modified.
//
// Besides the edges, the eviction bar is folded: the sampling threshold
// of the merged sketch is the minimum of the inputs' thresholds (the
// globally smallest excluded element is either excluded by some input —
// whose bar then equals it — or evicted here). Kept elements at or above
// the folded bar are evicted: their edge lists may be incomplete, since
// other discarded edges above its own bar; the prefix below them already
// carries a full budget, so Definition 2.1 excludes them anyway.
//
// Stream-accounting note: folding other's kept edges goes through the
// internal absorb path, which does NOT touch the stream counters —
// s.Stats().EdgesSeen still reports only the edges s itself consumed
// from a stream, never re-folded kept edges. A coordinator that needs
// the cluster-wide consumed total sums the inputs' EdgesSeen (as
// internal/distributed.Stats and the server engine do) or overrides it
// with SetEdgesSeen before persisting.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return nil
	}
	if !s.params.sketchCompatible(other.params) {
		return fmt.Errorf("core: cannot merge incompatible sketches (params %+v vs %+v)",
			s.params, other.params)
	}
	// Batched fold: absorb defers budget enforcement to slack boundaries;
	// foldBar/shrink below restore Definition 2.1 once at the end.
	other.ForEachEdge(s.absorb)
	if other.evicted {
		s.foldBar(other.barHash, other.barElem)
	} else {
		s.shrink()
	}
	return nil
}

// foldBar lowers the eviction bar to at most (h, e), evicts every kept
// element at or above the new bar, and re-enforces the budget. Shared by
// Merge and by snapshot restore (serialize.go).
func (s *Sketch) foldBar(h uint64, e uint32) {
	if !s.evicted || priorityLess(h, e, s.barHash, s.barElem) {
		s.evicted = true
		s.barHash = h
		s.barElem = e
	}
	s.evictAboveBar()
	s.shrink()
}

// evictAboveBar removes every kept element whose priority is at or above
// the current eviction bar.
func (s *Sketch) evictAboveBar() {
	for len(s.heap) > 0 {
		top := s.heap[0]
		sl := &s.slots[top]
		if priorityLess(sl.hash, sl.elem, s.barHash, s.barElem) {
			return
		}
		s.evict(top)
	}
}

// MergeAll builds a fresh sketch with the given parameters and merges
// every input into it. Inputs must all be compatible with params.
func MergeAll(params Params, sketches ...*Sketch) (*Sketch, error) {
	out, err := NewSketch(params)
	if err != nil {
		return nil, err
	}
	for _, sk := range sketches {
		if err := out.Merge(sk); err != nil {
			return nil, err
		}
	}
	return out, nil
}
