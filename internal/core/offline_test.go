package core

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/hashing"
	"repro/internal/workload"
)

func TestBuildHpFiltersByHash(t *testing.T) {
	inst := workload.Uniform(10, 500, 0.1, 1)
	g := inst.G
	seed := uint64(5)
	for _, p := range []float64{0.1, 0.5, 1.0} {
		hp := BuildHp(g, p, seed)
		h := hashing.NewHasher(seed)
		bar := hashing.FromUnit(p)
		for e := 0; e < g.NumElems(); e++ {
			keptDeg := hp.ElemDegree(e)
			if h.Hash(uint32(e)) <= bar {
				if keptDeg != g.ElemDegree(e) {
					t.Fatalf("p=%v: kept element %d lost edges", p, e)
				}
			} else if keptDeg != 0 {
				t.Fatalf("p=%v: filtered element %d still has edges", p, e)
			}
		}
	}
}

func TestBuildHpEdgeFractionMatchesP(t *testing.T) {
	inst := workload.Uniform(10, 5000, 0.05, 2)
	g := inst.G
	hp := BuildHp(g, 0.3, 9)
	frac := float64(hp.NumEdges()) / float64(g.NumEdges())
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("Hp kept %.2f of edges, expected ~0.3", frac)
	}
}

func TestBuildHpPrimeCapsDegrees(t *testing.T) {
	// All elements have degree 8; cap at 3.
	var edges []bipartite.Edge
	for s := 0; s < 8; s++ {
		for e := 0; e < 50; e++ {
			edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(e)})
		}
	}
	g := bipartite.MustFromEdges(8, 50, edges)
	hpp := BuildHpPrime(g, 1.0, 3, 4)
	for e := 0; e < 50; e++ {
		if hpp.ElemDegree(e) != 3 {
			t.Fatalf("element %d degree %d, want 3", e, hpp.ElemDegree(e))
		}
	}
	// H'p ⊆ Hp.
	hp := BuildHp(g, 1.0, 4)
	if hpp.NumEdges() > hp.NumEdges() {
		t.Fatal("H'p has more edges than Hp")
	}
}

func TestBuildHpPrimeSubsetOfHp(t *testing.T) {
	inst := workload.Zipf(15, 300, 100, 0.9, 0.7, 3)
	g := inst.G
	hp := BuildHp(g, 0.4, 17)
	hpp := BuildHpPrime(g, 0.4, 2, 17)
	for s := 0; s < g.NumSets(); s++ {
		for _, e := range hpp.Set(s) {
			if !hp.Contains(s, e) {
				t.Fatalf("edge (%d,%d) in H'p but not Hp", s, e)
			}
		}
	}
}

func TestBuildOfflineBudget(t *testing.T) {
	inst := workload.Uniform(20, 400, 0.1, 4)
	g := inst.G
	params := smallParams(20, 3, 150, 33)
	s, err := BuildOffline(g, params)
	if err != nil {
		t.Fatal(err)
	}
	if s.Edges() < 150 && s.Edges() != g.NumEdges() {
		t.Fatalf("offline sketch kept %d edges, budget 150", s.Edges())
	}
	if s.Edges() > 150+s.DegreeCap() {
		t.Fatalf("offline sketch overshot: %d > budget+cap", s.Edges())
	}
}

func TestBuildOfflineRejectsBadParams(t *testing.T) {
	inst := workload.Uniform(5, 20, 0.2, 5)
	if _, err := BuildOffline(inst.G, Params{}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestFigureEdgesConsistency(t *testing.T) {
	g := bipartite.MustFromEdges(3, 4, []bipartite.Edge{
		{Set: 0, Elem: 0}, {Set: 1, Elem: 0}, {Set: 2, Elem: 0},
		{Set: 0, Elem: 1}, {Set: 1, Elem: 2}, {Set: 2, Elem: 3},
	})
	const p = 0.6
	const cap = 2
	seed := uint64(7)
	fes := FigureEdges(g, p, cap, seed)
	if len(fes) != g.NumEdges() {
		t.Fatalf("FigureEdges returned %d of %d edges", len(fes), g.NumEdges())
	}
	hp := BuildHp(g, p, seed)
	hpp := BuildHpPrime(g, p, cap, seed)
	inHp, inHpp := 0, 0
	for _, fe := range fes {
		if fe.InHpPrime && !fe.InHp {
			t.Fatal("edge in H'p but not Hp")
		}
		if fe.HashUnit < 0 || fe.HashUnit >= 1 {
			t.Fatalf("hash unit out of range: %v", fe.HashUnit)
		}
		if fe.InHp {
			inHp++
		}
		if fe.InHpPrime {
			inHpp++
		}
	}
	if inHp != hp.NumEdges() {
		t.Fatalf("FigureEdges counts %d Hp edges, builder %d", inHp, hp.NumEdges())
	}
	if inHpp != hpp.NumEdges() {
		t.Fatalf("FigureEdges counts %d H'p edges, builder %d", inHpp, hpp.NumEdges())
	}
}
