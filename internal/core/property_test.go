package core

import (
	"testing"
	"testing/quick"

	"repro/internal/bipartite"
	"repro/internal/hashing"
)

// Property tests over randomized tiny instances: for arbitrary edge sets,
// arbitrary budgets and arbitrary arrival orders, the streaming
// construction must (1) equal the offline construction, (2) keep a
// hash-prefix of the elements, and (3) respect budget and degree cap.

type propInstance struct {
	g      *bipartite.Graph
	params Params
	order  uint64
}

func decodeInstance(seed uint64, budgetRaw, capRaw uint8) propInstance {
	rng := hashing.NewRNG(seed)
	n := 3 + rng.Intn(10)
	m := 5 + rng.Intn(60)
	var edges []bipartite.Edge
	count := 1 + rng.Intn(4*m)
	for i := 0; i < count; i++ {
		edges = append(edges, bipartite.Edge{
			Set:  uint32(rng.Intn(n)),
			Elem: uint32(rng.Intn(m)),
		})
	}
	g := bipartite.MustFromEdges(n, m, edges)
	budget := 1 + int(budgetRaw)%(g.NumEdges()+5)
	degCap := 1 + int(capRaw)%(n+2)
	return propInstance{
		g: g,
		params: Params{
			NumSets:    n,
			NumElems:   m,
			K:          1 + rng.Intn(3),
			Eps:        0.5,
			Seed:       rng.Uint64(),
			EdgeBudget: budget,
			DegreeCap:  degCap,
		},
		order: rng.Uint64(),
	}
}

func TestPropertyStreamingInvariants(t *testing.T) {
	check := func(seed uint64, budgetRaw, capRaw uint8) bool {
		pi := decodeInstance(seed, budgetRaw, capRaw)
		s := MustNewSketch(pi.params)
		feed(s, pi.g, pi.order)

		// Budget respected: edges in [min(budget, capped-input), budget+cap].
		if s.Edges() > pi.params.EdgeBudget+s.DegreeCap() {
			return false
		}
		// Degree cap respected, and kept edges exist in the input.
		for e := 0; e < pi.g.NumElems(); e++ {
			sets := s.SetsOf(uint32(e))
			if len(sets) > s.DegreeCap() {
				return false
			}
			for _, set := range sets {
				if !pi.g.Contains(int(set), uint32(e)) {
					return false
				}
			}
		}
		// Prefix property: no excluded element may strictly precede a
		// kept element in (hash, id) order.
		h := hashing.NewHasher(pi.params.Seed)
		var maxKeptH uint64
		var maxKeptID uint32
		kept := false
		for e := 0; e < pi.g.NumElems(); e++ {
			if s.Contains(uint32(e)) {
				hv := h.Hash(uint32(e))
				if !kept || priorityLess(maxKeptH, maxKeptID, hv, uint32(e)) {
					maxKeptH, maxKeptID = hv, uint32(e)
					kept = true
				}
			}
		}
		for e := 0; e < pi.g.NumElems(); e++ {
			if pi.g.ElemDegree(e) == 0 || s.Contains(uint32(e)) {
				continue
			}
			if kept && priorityLess(h.Hash(uint32(e)), uint32(e), maxKeptH, maxKeptID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStreamingEqualsOffline(t *testing.T) {
	check := func(seed uint64, budgetRaw uint8) bool {
		pi := decodeInstance(seed, budgetRaw, 255)
		// Disable the cap so the equality is exact.
		pi.params.DegreeCap = pi.g.NumSets() + 1
		if pi.params.DegreeCap > pi.g.NumSets() {
			pi.params.DegreeCap = pi.g.NumSets()
		}

		st := MustNewSketch(pi.params)
		feed(st, pi.g, pi.order)
		off, err := BuildOffline(pi.g, pi.params)
		if err != nil {
			return false
		}
		if st.Elements() != off.Elements() || st.Edges() != off.Edges() {
			return false
		}
		if st.PStar() != off.PStar() {
			return false
		}
		for e := 0; e < pi.g.NumElems(); e++ {
			if st.Contains(uint32(e)) != off.Contains(uint32(e)) {
				return false
			}
			if len(st.SetsOf(uint32(e))) != len(off.SetsOf(uint32(e))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMergeEqualsDirect(t *testing.T) {
	// Splitting any edge set into two arbitrary halves and merging the
	// two sketches equals sketching the whole set.
	check := func(seed uint64, budgetRaw uint8, splitMask uint16) bool {
		pi := decodeInstance(seed, budgetRaw, 255)
		pi.params.DegreeCap = pi.g.NumSets() // cap never binds

		edges := pi.g.Edges(nil)
		var a, b []bipartite.Edge
		for i, e := range edges {
			if splitMask&(1<<(uint(i)%16)) != 0 {
				a = append(a, e)
			} else {
				b = append(b, e)
			}
		}
		direct := MustNewSketch(pi.params)
		for _, e := range edges {
			direct.AddEdge(e)
		}
		sa := MustNewSketch(pi.params)
		for _, e := range a {
			sa.AddEdge(e)
		}
		sb := MustNewSketch(pi.params)
		for _, e := range b {
			sb.AddEdge(e)
		}
		merged, err := MergeAll(pi.params, sa, sb)
		if err != nil {
			return false
		}
		if merged.Elements() != direct.Elements() || merged.Edges() != direct.Edges() {
			return false
		}
		return merged.PStar() == direct.PStar()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
