package core

import (
	"sort"

	"repro/internal/bipartite"
	"repro/internal/hashing"
)

// Ensemble maintains R independent H≤n sketches (distinct derived seeds)
// over the same stream, as in §1.3.2: "all the algorithms presented here
// construct O~(1) independent instances of the sketch". Medians across
// replicas boost the per-query success probability from constant to
// 1 − exp(−Ω(R)), and solving on every replica and keeping the best
// median-estimated solution hedges against an unlucky hash draw.
type Ensemble struct {
	sketches []*Sketch
}

// NewEnsemble returns an ensemble of `replicas` sketches whose seeds are
// derived from params.Seed; replicas < 1 is treated as 1.
func NewEnsemble(params Params, replicas int) (*Ensemble, error) {
	if replicas < 1 {
		replicas = 1
	}
	e := &Ensemble{sketches: make([]*Sketch, replicas)}
	for i := range e.sketches {
		p := params
		p.Seed = hashing.Mix2(params.Seed, uint64(i)+1)
		sk, err := NewSketch(p)
		if err != nil {
			return nil, err
		}
		e.sketches[i] = sk
	}
	return e, nil
}

// Replicas returns the number of member sketches.
func (e *Ensemble) Replicas() int { return len(e.sketches) }

// Sketch returns the i-th member (for diagnostics).
func (e *Ensemble) Sketch(i int) *Sketch { return e.sketches[i] }

// AddEdge feeds one edge to every replica.
func (e *Ensemble) AddEdge(edge bipartite.Edge) {
	for _, sk := range e.sketches {
		sk.AddEdge(edge)
	}
}

// AddEdges feeds a batch of edges to every replica through the batched
// ingest path.
func (e *Ensemble) AddEdges(edges []bipartite.Edge) {
	for _, sk := range e.sketches {
		sk.AddEdges(edges)
	}
}

// AddStream drains st into every replica (batched) and returns the edge
// count.
func (e *Ensemble) AddStream(st interface {
	Next() (bipartite.Edge, bool)
}) int {
	return drainBatches(st, e.AddEdges)
}

// EstimateCoverage returns the median of the replicas' coverage
// estimates for the family — the standard estimator-boosting trick.
func (e *Ensemble) EstimateCoverage(sets []int) float64 {
	ests := make([]float64, len(e.sketches))
	for i, sk := range e.sketches {
		ests[i] = sk.EstimateCoverage(sets)
	}
	sort.Float64s(ests)
	n := len(ests)
	if n%2 == 1 {
		return ests[n/2]
	}
	return (ests[n/2-1] + ests[n/2]) / 2
}

// Edges returns the total edges stored across replicas (the ensemble's
// space: R times a single sketch).
func (e *Ensemble) Edges() int {
	total := 0
	for _, sk := range e.sketches {
		total += sk.Edges()
	}
	return total
}

// BestSolution runs the provided solver on every replica's compact
// instance and returns the solution with the highest median-estimated
// coverage. solver receives the replica's graph and must return set ids.
func (e *Ensemble) BestSolution(solver func(g *bipartite.Graph) []int) (sets []int, estimate float64) {
	best := []int(nil)
	bestEst := -1.0
	for _, sk := range e.sketches {
		g, _ := sk.Graph()
		sol := solver(g)
		if est := e.EstimateCoverage(sol); est > bestEst {
			bestEst = est
			best = sol
		}
	}
	return best, bestEst
}
