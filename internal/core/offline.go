package core

import (
	"sort"

	"repro/internal/bipartite"
	"repro/internal/hashing"
)

// This file contains the offline (random-access) constructions of the
// intermediary sketches Hp and H′p from Section 2, and the offline H≤n
// construction of Algorithm 1. They exist for three reasons: the accuracy
// experiments of Lemma 2.2/2.3 sweep p directly, Figure 1 renders Hp and
// H′p, and the property tests verify that the streaming construction
// (Algorithm 2) produces exactly the same sketch as Algorithm 1.

// BuildHp returns the subgraph of g induced by the elements whose hash
// (under seed) is at most p, as in Section 2: "Hp contains an edge e if
// and only if h(e) <= p". Element ids are preserved.
func BuildHp(g *bipartite.Graph, p float64, seed uint64) *bipartite.Graph {
	h := hashing.NewHasher(seed)
	bar := hashing.FromUnit(p)
	return g.Induce(func(elem uint32) bool { return h.Hash(elem) <= bar })
}

// BuildHpPrime returns H′p: Hp with every element's degree capped at
// degCap, surplus edges dropped (lowest set ids kept — the paper allows
// any choice). Element ids are preserved.
func BuildHpPrime(g *bipartite.Graph, p float64, degCap int, seed uint64) *bipartite.Graph {
	h := hashing.NewHasher(seed)
	bar := hashing.FromUnit(p)
	edges := make([]bipartite.Edge, 0, g.NumEdges())
	for e := 0; e < g.NumElems(); e++ {
		if h.Hash(uint32(e)) > bar {
			continue
		}
		sets := g.Elem(e)
		if len(sets) > degCap {
			sets = sets[:degCap]
		}
		for _, s := range sets {
			edges = append(edges, bipartite.Edge{Set: s, Elem: uint32(e)})
		}
	}
	ng, err := bipartite.FromEdges(g.NumSets(), g.NumElems(), edges)
	if err != nil {
		panic("core: BuildHpPrime: " + err.Error())
	}
	return ng
}

// BuildOffline runs Algorithm 1: it sorts the elements of g by hash value
// and inserts them (with degree capping) until the edge budget is
// reached. The result is a *Sketch identical to what the streaming
// construction produces on any edge ordering of g, provided no element
// exceeds the degree cap (when elements do exceed it, the kept edge
// subsets may differ — both are valid H≤n sketches).
func BuildOffline(g *bipartite.Graph, params Params) (*Sketch, error) {
	s, err := NewSketch(params)
	if err != nil {
		return nil, err
	}
	type he struct {
		hash uint64
		elem uint32
	}
	order := make([]he, 0, g.NumElems())
	for e := 0; e < g.NumElems(); e++ {
		if g.ElemDegree(e) == 0 {
			continue
		}
		order = append(order, he{hash: s.hash(uint32(e)), elem: uint32(e)})
	}
	sort.Slice(order, func(i, j int) bool {
		return priorityLess(order[i].hash, order[i].elem, order[j].hash, order[j].elem)
	})
	// Algorithm 1: add elements of minimum hash while the sketch holds
	// fewer edges than the budget. Each element's incident edges go in as
	// one batch through the same ingest core as the streaming path.
	buf := make([]bipartite.Edge, 0, s.degCap)
	for _, oe := range order {
		if s.totalEdges >= s.budget {
			// Mark the bar at the first excluded element so PStar matches
			// the streaming construction.
			if !s.evicted {
				s.evicted = true
				s.barHash = oe.hash
				s.barElem = oe.elem
			}
			break
		}
		buf = buf[:0]
		for _, set := range g.Elem(int(oe.elem)) {
			buf = append(buf, bipartite.Edge{Set: set, Elem: oe.elem})
		}
		s.AddEdges(buf)
	}
	return s, nil
}

// FigureExample reproduces the structure of the paper's Figure 1: given a
// tiny graph, a probability p and a degree cap, it reports per element
// whether each incident edge lands in Hp and in H′p. Used by the
// fig1-sketch experiment to render the ASCII figure.
type FigureEdge struct {
	Set, Elem uint32
	HashUnit  float64 // h(elem) in [0,1)
	InHp      bool
	InHpPrime bool
}

// FigureEdges enumerates every edge of g annotated with its Figure-1
// status under the given p, degree cap and seed.
func FigureEdges(g *bipartite.Graph, p float64, degCap int, seed uint64) []FigureEdge {
	h := hashing.NewHasher(seed)
	bar := hashing.FromUnit(p)
	out := make([]FigureEdge, 0, g.NumEdges())
	for e := 0; e < g.NumElems(); e++ {
		inHp := h.Hash(uint32(e)) <= bar
		for rank, s := range g.Elem(e) {
			out = append(out, FigureEdge{
				Set:       s,
				Elem:      uint32(e),
				HashUnit:  h.Unit(uint32(e)),
				InHp:      inHp,
				InHpPrime: inHp && rank < degCap,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Set != out[j].Set {
			return out[i].Set < out[j].Set
		}
		return out[i].Elem < out[j].Elem
	})
	return out
}
