package core

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/stream"
	"repro/internal/workload"
)

// The BenchmarkIngest* family measures Algorithm 2's update cost on the
// dense-degree workload (LargeSets: every element belongs to ~n·frac
// sets), the regime the paper highlights and the one where per-edge
// overheads — hashing, index lookups, sorted inserts, per-edge shrink —
// dominate. BenchmarkIngestStream* build a fresh sketch per iteration
// (the one-pass cost); BenchmarkIngestSingle/Batch measure the converged
// steady state. The ingest-throughput covbench experiment (BENCH_ingest
// .json) reports the same comparison at full scale.

func denseIngest() ([]bipartite.Edge, Params) {
	inst := workload.LargeSets(200, 20000, 0.3, 1)
	edges := stream.Drain(stream.Shuffled(inst.G, 1))
	params := Params{NumSets: 200, NumElems: 20000, K: 10, Eps: 0.3,
		Seed: 7, EdgeBudget: 40 * 200}
	return edges, params
}

// BenchmarkIngestSingle measures steady-state edge-at-a-time ingest
// (AddEdge) on the dense-degree workload.
func BenchmarkIngestSingle(b *testing.B) {
	edges, params := denseIngest()
	b.ReportAllocs()
	b.ResetTimer()
	s := MustNewSketch(params)
	for i := 0; i < b.N; i++ {
		s.AddEdge(edges[i%len(edges)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
}

// BenchmarkIngestBatch measures steady-state batched ingest (AddEdges in
// 1024-edge batches) on the same workload; b.N counts edges.
func BenchmarkIngestBatch(b *testing.B) {
	edges, params := denseIngest()
	const batch = 1024
	b.ReportAllocs()
	b.ResetTimer()
	s := MustNewSketch(params)
	done := 0
	for done < b.N {
		lo := done % len(edges)
		hi := lo + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		if n := b.N - done; hi-lo > n {
			hi = lo + n
		}
		s.AddEdges(edges[lo:hi])
		done += hi - lo
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
}

// BenchmarkIngestStreamSingle measures building a fresh sketch over the
// dense-degree stream one edge at a time.
func BenchmarkIngestStreamSingle(b *testing.B) {
	edges, params := denseIngest()
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		s := MustNewSketch(params)
		for _, e := range edges {
			s.AddEdge(e)
		}
		total += len(edges)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "edges/sec")
}

// BenchmarkIngestStreamBatch measures building a fresh sketch over the
// same stream through AddEdges in 1024-edge batches.
func BenchmarkIngestStreamBatch(b *testing.B) {
	edges, params := denseIngest()
	const batch = 1024
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		s := MustNewSketch(params)
		for lo := 0; lo < len(edges); lo += batch {
			hi := lo + batch
			if hi > len(edges) {
				hi = len(edges)
			}
			s.AddEdges(edges[lo:hi])
		}
		total += len(edges)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "edges/sec")
}
