// Package server hosts the long-running coverage-query service: a
// concurrent sharded ingest engine over a pluggable per-shard state
// (mode.go), plus an HTTP JSON API (httpapi.go) served by cmd/covserved.
//
// Architecture. N shard goroutines each own a private ShardState built
// by the engine's Mode with identical parameters. Edge batches are
// hash-routed to shards over bounded channels; each shard applies its
// batches sequentially, so no state is ever touched by two goroutines.
// Queries never read shard states directly: a coordinator merge —
// triggered periodically, on demand, or lazily by the first query —
// asks every shard for a consistent clone of its state (a message in
// the same mailbox as the batches, so it observes every batch sent
// before it), folds the clones into one merged state (Mode.MergeStates;
// a parallel tree reduction for the sketch mode), and publishes the
// result as an immutable Snapshot behind an atomic pointer. Queries run
// greedy algorithms against the current snapshot without stalling
// ingest; for the default sketch mode, merge-composability
// (internal/core/merge.go) makes the snapshot identical to the sketch a
// single machine would have built over every edge ingested before the
// merge.
//
// The query plane is engineered for read-heavy traffic (DESIGN.md §7):
// snapshots carry a precomputed bitset coverage index so greedy
// marginals are word-level popcounts, a Refresh on an idle engine
// (ingested-edge counter unchanged) reuses the published snapshot
// instead of re-merging, concurrent first-snapshot builds collapse into
// one merge behind refreshMu, and repeated queries against one snapshot
// are memoized in a small LRU keyed by (snapshot seq, algo, k, lambda).
package server

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algorithms"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/distributed"
	"repro/internal/wal"
	"repro/internal/weighted"
)

// Config sizes the engine. NumSets, K and (implicitly) Eps mirror
// algorithms.Options: the shard sketches are built with the exact
// Algorithm 3 parameters, so a kcover query with k = K returns the same
// solution as the offline single-pass streamcover.MaxCoverage run with
// the same Options over the same edges.
type Config struct {
	// NumSets is n, the number of sets edges may refer to. Required.
	NumSets int
	// K is the solution size the sketch is provisioned for. Required.
	// Queries may use any k; the approximation guarantee holds for k ≤ K.
	K int
	// Eps is the accuracy parameter (default 0.5, as in streamcover).
	Eps float64
	// Seed drives hashing, making the service deterministic.
	Seed uint64
	// NumElems is m when known (tunes a log log m budget factor only).
	NumElems int
	// EdgeBudget / SpaceFactor override the sketch budget (per shard
	// sketch), as in streamcover.Options.
	EdgeBudget  int
	SpaceFactor float64

	// Shards is the number of ingest workers (default 4).
	Shards int
	// QueueDepth is the per-shard mailbox capacity in batches (default 64).
	// Ingest blocks when a shard's mailbox is full — backpressure, not loss.
	QueueDepth int
	// MergeEvery, when positive, refreshes the snapshot on a timer so
	// queries see recent edges without paying a merge themselves.
	MergeEvery time.Duration

	// QueryCache bounds the engine's memoized QueryResult entries, keyed
	// by (snapshot seq, algo, k, lambda): repeated queries against an
	// unchanged snapshot return without re-running greedy, and a new
	// snapshot seq invalidates naturally. 0 selects the default (64
	// entries); negative disables caching.
	QueryCache int

	// Engine selects the engine mode by name: ModeSketch (the default),
	// ModeWeighted (also implied by Weights) or ModeSieve, the
	// constant-memory swap-buffer engine that keeps at most K candidate
	// sets per shard. See EngineMode for the resolution rules.
	Engine ModeName

	// Weights, when non-nil, switches the engine into weighted-coverage
	// mode: every shard owns a bank of per-weight-class sketches
	// (internal/weighted) instead of a single H≤n sketch, snapshots
	// publish the scaled union of the merged class bank, and kcover
	// queries run the weighted greedy on it. Outliers and full-greedy
	// queries are not defined for weighted instances and are rejected.
	Weights *WeightConfig

	// WAL, when non-nil, makes the engine durable (DESIGN.md §12): every
	// accepted Ingest batch is appended to a write-ahead log in WAL.Dir
	// before it is enqueued to the shard mailboxes, and New replays any
	// log tail the restore state does not cover — through the same
	// routing path, so the recovered shard states are bit-identical to
	// the uncrashed engine's. Checkpoint (or CheckpointEngine /
	// CheckpointMulti) truncates the log behind a durable snapshot. Nil
	// (the default) keeps the engine purely in-memory with zero logging
	// overhead.
	WAL *WALConfig

	// OnRefreshError, when non-nil, is invoked with the first error of
	// the periodic merge loop (Config.MergeEvery) — at most once per
	// engine, so a supervisor can log the failure without being flooded.
	// Every background failure is also counted in Stats.RefreshErrors.
	OnRefreshError func(error)

	// Restore, when non-nil, seeds the engine with a previously persisted
	// sketch (see Engine.WriteSnapshot / core.ReadSketch). The restored
	// sketch must have been produced by a service with the same Config.
	// Weighted engines restore through RestoreWeighted instead.
	Restore *core.Sketch
	// RestoreWeighted, when non-nil, seeds a weighted engine with a
	// previously persisted class bank (see weighted.ReadBank); requires
	// Weights. NewFromSnapshot fills the right field from raw bytes.
	RestoreWeighted *weighted.Bank
	// RestoreState, when non-nil, seeds the engine with a decoded shard
	// state of the configured mode — the mode-generic restore slot the
	// sieve engine uses (ReadRestore fills it). The typed Restore /
	// RestoreWeighted fields remain for the two original modes.
	RestoreState ShardState
}

func (c Config) shards() int {
	if c.Shards < 1 {
		return 4
	}
	return c.Shards
}

func (c Config) queueDepth() int {
	if c.QueueDepth < 1 {
		return 64
	}
	return c.QueueDepth
}

func (c Config) queryCache() int {
	switch {
	case c.QueryCache < 0:
		return 0
	case c.QueryCache == 0:
		return 64
	}
	return c.QueryCache
}

// Params derives the Algorithm 3 sketch parameters from the config —
// exported so the cluster layer can fold remote sketches with exactly
// the parameters the local shards were built with.
func (c Config) Params() core.Params {
	return algorithms.KCoverParams(c.NumSets, c.K, algorithms.Options{
		Eps:         c.Eps,
		Seed:        c.Seed,
		NumElems:    c.NumElems,
		EdgeBudget:  c.EdgeBudget,
		SpaceFactor: c.SpaceFactor,
	})
}

// WeightedOptions derives the class-bank options from the config — the
// same mapping streamcover.MaxWeightedCoverage applies to its Options,
// so a weighted engine, a one-shot run and a cluster peer's decoded
// bank all build identical per-class sketches.
func (c Config) WeightedOptions() weighted.Options {
	return weighted.Options{
		Eps:         c.Eps,
		Seed:        c.Seed,
		NumElems:    c.NumElems,
		EdgeBudget:  c.EdgeBudget,
		SpaceFactor: c.SpaceFactor,
	}
}

// ErrClosed is returned by every engine operation after Close.
var ErrClosed = errors.New("server: engine closed")

// shardMsg is a mailbox entry: an edge batch, an op batch, or a state
// request.
type shardMsg struct {
	// batch is a pooled per-shard buffer owned by the message: the shard
	// returns it to the engine's pool after applying it, so steady-state
	// ingest recycles buffers instead of allocating per submission.
	batch *[]bipartite.Edge
	// ops is the op-batch analog of batch (IngestOps routes through it
	// when the batch carries deletes); exactly one of batch/ops/reply is
	// set.
	ops   *[]bipartite.Op
	reply chan shardReply // non-nil: respond with the shard's state
	// wantClone asks for a deep copy of the state (a merge is coming);
	// stats-only requests leave it false and skip the O(budget) copy.
	wantClone bool
}

// shardReply is a shard's answer to a state request: its accounting,
// plus a deep clone of its state when one was asked for.
type shardReply struct {
	clone ShardState // nil unless wantClone
	stats core.Stats
}

type shard struct {
	mail   chan shardMsg
	done   chan struct{}
	pool   *sync.Pool // shared with the engine; receives applied batches
	opPool *sync.Pool // likewise for op-batch buffers
}

// run is a shard's ingest loop; st is the shard's private state (built
// by the engine's Mode) and is owned exclusively by this goroutine.
func (sh *shard) run(st ShardState) {
	defer close(sh.done)
	for msg := range sh.mail {
		if msg.reply != nil {
			rep := shardReply{stats: st.Stats()}
			if msg.wantClone {
				rep.clone = st.CloneState()
			}
			msg.reply <- rep
			continue
		}
		if msg.ops != nil {
			// Op batches only reach shards whose mode supports every op in
			// them (IngestOps gates deletes on Mode.SupportsDeletes before
			// logging or routing), so ApplyOps cannot fail here.
			_ = st.ApplyOps(*msg.ops)
			sh.opPool.Put(msg.ops)
			continue
		}
		// Batched ingest: one pass over the whole batch (e.g. the sketch's
		// deferred-shrink core.Sketch.AddEdges) instead of per-edge updates.
		st.AddEdges(*msg.batch)
		sh.pool.Put(msg.batch)
	}
}

// Snapshot is an immutable merged view of the service state at a point
// in time. Queries execute against a snapshot; ingest continues
// concurrently and is reflected by later snapshots.
type Snapshot struct {
	// Seq increases with every coordinator merge; 0 means "never merged".
	Seq uint64
	// CreatedAt is the merge time.
	CreatedAt time.Time
	// IngestedEdges is the number of edges the merged state actually
	// reflects: the sum of edges the shards had applied when the
	// coordinator collected their clones, plus any restored edges. It is
	// captured from the same mailbox replies as the clones themselves,
	// so it can never disagree with the merged state — every Ingest
	// call that returned before the merge was requested is included (the
	// mailbox ordering guarantee), and nothing the state missed is
	// counted.
	IngestedEdges int64

	mode    Mode             // the engine mode the state belongs to
	state   ShardState       // merged state (sketch / bank / sieve buffer)
	weights []float64        // weighted: scaled union element weights
	graph   *bipartite.Graph // materialized (union) graph queries run on
	ids     []uint32         // graph element id -> original element id
}

// Mode returns the engine mode the snapshot was merged under.
func (s *Snapshot) Mode() Mode { return s.mode }

// ModeName returns the snapshot's engine-mode name.
func (s *Snapshot) ModeName() ModeName { return s.mode.Name() }

// State returns the snapshot's merged shard state. Callers must not
// mutate it (ShardState's read verbs — Stats, WriteTo — are safe).
func (s *Snapshot) State() ShardState { return s.state }

// Sketch returns the merged H≤n sketch (nil unless the snapshot came
// from the sketch mode). Callers must not mutate it.
func (s *Snapshot) Sketch() *core.Sketch {
	if st, ok := s.state.(sketchState); ok {
		return st.sk
	}
	return nil
}

// Bank returns the merged weight-class bank (nil unless the snapshot
// came from the weighted mode). Callers must not mutate it.
func (s *Snapshot) Bank() *weighted.Bank {
	if st, ok := s.state.(bankState); ok {
		return st.bank
	}
	return nil
}

// Weighted reports whether the snapshot came from a weighted engine.
func (s *Snapshot) Weighted() bool { return s.mode.Name() == ModeWeighted }

// elements is the sampled-element count of the merged state.
func (s *Snapshot) elements() int { return s.state.Stats().ElementsKept }

// keptEdges is the resident edge count of the merged state.
func (s *Snapshot) keptEdges() int { return s.state.Stats().EdgesKept }

// pStar is the sampling probability of the merged state; a weighted
// snapshot reports its smallest class probability (each class is an
// independent subsample, so there is no single p*), and a sieve
// snapshot reports 1 (the buffer holds true element ids, unsampled).
func (s *Snapshot) pStar() float64 { return s.state.Stats().PStar }

// Graph returns the snapshot state materialized as a bipartite graph
// (elements renumbered; see core.Sketch.Graph), with the bitset
// coverage index already built when profitable. Read-only: the graph is
// shared with every query running against this snapshot.
func (s *Snapshot) Graph() *bipartite.Graph { return s.graph }

// WriteState serializes the snapshot's merged state in its mode's wire
// format (v1 sketch, weighted.BankMagic bank, or sieve.Magic buffer).
// These are the exact bytes Engine.WriteSnapshot persists and
// /v1/cluster/sketch serves — one wire format for disk and peers. Safe
// on a published snapshot: WriteTo only reads, and any lazy
// normalization already ran when the snapshot's graph was materialized.
func (s *Snapshot) WriteState(w io.Writer) error {
	_, err := s.state.WriteTo(w)
	return err
}

// NewStateSnapshot materializes a queryable Snapshot from a merged
// shard state of the given mode. It is the snapshot-building tail of a
// coordinator refresh, exported so the cluster layer can publish a
// cluster-wide view (local state folded with decoded peer states via
// Mode.MergeStates) that queries exactly like an engine snapshot.
// edges is the ingested-edge total the state reflects (a merged state
// only counts the kept edges it replayed, so the caller pins the true
// total).
func NewStateSnapshot(mode Mode, seq uint64, edges int64, st ShardState) (*Snapshot, error) {
	st.SetEdgesSeen(edges)
	mat, err := mode.Materialize(st)
	if err != nil {
		return nil, err
	}
	// Materialize the bitset coverage index now (when profitable for this
	// graph) so no query pays the build: snapshots are immutable and the
	// index is shared by every greedy run against them.
	mat.graph.BuildCoverIndex()
	return &Snapshot{
		Seq:           seq,
		CreatedAt:     time.Now(),
		IngestedEdges: edges,
		mode:          mode,
		state:         st,
		weights:       mat.weights,
		graph:         mat.graph,
		ids:           mat.ids,
	}, nil
}

// Engine is the concurrent sharded ingest engine.
type Engine struct {
	cfg    Config
	params core.Params
	mode   Mode
	part   distributed.Partitioner
	shards []*shard
	// wal is the engine's write-ahead log (nil unless Config.WAL): every
	// accepted batch is appended before it enters a shard mailbox.
	wal *wal.Log

	// restored is the ingested-edge total carried in by the Config
	// restore fields; shard stream counters never see those edges (they
	// arrive via the merge path), so snapshot accounting adds it back.
	restored int64

	ingestMu sync.RWMutex // guards shards' mailboxes against Close
	closed   bool

	refreshMu sync.Mutex // serializes coordinator merges
	snap      atomic.Pointer[Snapshot]
	seq       atomic.Uint64

	ingested atomic.Int64
	batches  atomic.Int64
	queries  atomic.Int64
	// deletes counts delete ops accepted by IngestOps (always 0 on
	// append-only modes, which reject them before any counter moves).
	deletes atomic.Int64
	// samplerRecoveries counts published dynamic-mode snapshots — each
	// one ran a successful L0 sampler decode in Materialize.
	samplerRecoveries atomic.Int64
	// ingestStalls counts shard-mailbox sends that found the mailbox
	// full and had to wait — the engine's backpressure events. The wire
	// ingest plane surfaces them as its stall metric.
	ingestStalls atomic.Int64

	cache     *queryCache // nil when disabled
	cacheHits atomic.Int64
	// refreshes counts coordinator merges that actually ran; refreshSkips
	// counts Refresh calls satisfied by the idle short-circuit.
	refreshes    atomic.Int64
	refreshSkips atomic.Int64
	// refreshErrors counts background (merge-ticker) refreshes that
	// failed; refreshErrOnce gates the Config.OnRefreshError callback.
	refreshErrors  atomic.Int64
	refreshErrOnce sync.Once

	// batchPool recycles the per-shard sub-batch buffers that Ingest
	// routes edges into; shards return applied buffers here. opPool is
	// the op-batch analog for IngestOps.
	batchPool sync.Pool
	opPool    sync.Pool

	stopTicker chan struct{}
	tickerDone chan struct{}
}

// New validates cfg and starts the shard goroutines (and the periodic
// merge ticker when configured). Call Close to stop them.
func New(cfg Config) (*Engine, error) {
	if cfg.NumSets <= 0 || cfg.K <= 0 {
		return nil, fmt.Errorf("server: Config needs positive NumSets and K")
	}
	if err := cfg.Weights.Validate(); err != nil {
		return nil, err
	}
	if cfg.Weights == nil && cfg.RestoreWeighted != nil {
		return nil, fmt.Errorf("server: RestoreWeighted requires Weights")
	}
	if cfg.Weights != nil && cfg.Restore != nil {
		return nil, fmt.Errorf("server: a weighted engine restores through RestoreWeighted, not Restore")
	}
	// Private copy: the engine outlives the caller's table.
	cfg.Weights = cfg.Weights.clone()
	mode, err := cfg.EngineMode()
	if err != nil {
		return nil, err
	}
	// Normalize the typed restore fields into one mode-checked state.
	restore := cfg.RestoreState
	if cfg.Restore != nil {
		if restore != nil {
			return nil, fmt.Errorf("server: Restore and RestoreState are mutually exclusive")
		}
		restore = sketchState{cfg.Restore}
	}
	if cfg.RestoreWeighted != nil {
		if restore != nil {
			return nil, fmt.Errorf("server: RestoreWeighted and RestoreState are mutually exclusive")
		}
		restore = bankState{cfg.RestoreWeighted}
	}
	cfg.Restore, cfg.RestoreWeighted, cfg.RestoreState = nil, nil, nil

	states := make([]ShardState, cfg.shards())
	for i := range states {
		if states[i], err = mode.NewShardState(); err != nil {
			return nil, err
		}
	}
	restoredEdges := int64(0)
	if restore != nil {
		if err := states[0].MergeFrom(restore); err != nil {
			if mode.Name() == ModeWeighted {
				return nil, fmt.Errorf("server: restoring weighted snapshot: %w", err)
			}
			return nil, fmt.Errorf("server: restoring snapshot: %w", err)
		}
		restoredEdges = restore.Stats().EdgesSeen
		// The restore state was consumed by the merge; the pointer dies
		// with this scope, so the engine does not pin a full copy for life.
	}
	e := &Engine{
		cfg:    cfg,
		params: cfg.Params(),
		mode:   mode,
		// Offset the partition seed from the sketch seed so edge routing
		// and element sampling are independent.
		part:     distributed.NewPartitioner(cfg.shards(), cfg.Seed+0x5eed),
		shards:   make([]*shard, cfg.shards()),
		cache:    newQueryCache(cfg.queryCache()),
		restored: restoredEdges,
	}
	// Recovery: replay the WAL tail the restore state does not cover into
	// the still-private shard states (no goroutines yet, so the replay is
	// exactly as deterministic as the original sequential Ingest calls),
	// then log new batches from the recovered offset.
	total := restoredEdges
	if cfg.WAL != nil {
		wlog, recovered, err := openEngineWAL(cfg, e.part, states, restoredEdges)
		if err != nil {
			return nil, err
		}
		e.wal = wlog
		total = recovered
	}
	for i := range e.shards {
		sh := &shard{
			mail:   make(chan shardMsg, cfg.queueDepth()),
			done:   make(chan struct{}),
			pool:   &e.batchPool,
			opPool: &e.opPool,
		}
		e.shards[i] = sh
		go sh.run(states[i])
	}
	if total > 0 {
		e.ingested.Store(total)
	}
	if cfg.MergeEvery > 0 {
		e.stopTicker = make(chan struct{})
		e.tickerDone = make(chan struct{})
		go e.mergeLoop(cfg.MergeEvery)
	}
	return e, nil
}

// EngineMode returns the engine's resolved mode.
func (e *Engine) EngineMode() Mode { return e.mode }

// ModeName returns the engine's mode name ("sketch", "weighted", "sieve").
func (e *Engine) ModeName() ModeName { return e.mode.Name() }

// SupportsDeletes reports whether the engine's mode accepts delete ops
// (today only "dynamic") — the gate the ingest planes check before
// accepting an op-speaking client that may delete.
func (e *Engine) SupportsDeletes() bool { return e.mode.SupportsDeletes() }

// Weighted reports whether the engine runs the weighted query plane —
// a single comparison, unlike Config(), which deep-copies the weight
// table and is therefore not for hot read paths.
func (e *Engine) Weighted() bool { return e.mode.Name() == ModeWeighted }

// WeightSig fingerprints the engine's weight mapping (0 when
// unweighted) — see WeightConfig.Signature and Mode.Signature. Cluster
// peers compare it before merging remote state.
func (e *Engine) WeightSig() uint64 { return e.mode.Signature() }

func (e *Engine) mergeLoop(every time.Duration) {
	defer close(e.tickerDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := e.Refresh(); err != nil {
				// A failed background merge is invisible to any caller —
				// count it (Stats.RefreshErrors) and surface the first one
				// to the supervisor instead of dropping it on the floor.
				e.refreshErrors.Add(1)
				if cb := e.cfg.OnRefreshError; cb != nil {
					e.refreshErrOnce.Do(func() { cb(err) })
				}
			}
		case <-e.stopTicker:
			return
		}
	}
}

// getBatchBuf returns an empty pooled edge buffer.
func (e *Engine) getBatchBuf() *[]bipartite.Edge {
	if v := e.batchPool.Get(); v != nil {
		b := v.(*[]bipartite.Edge)
		*b = (*b)[:0]
		return b
	}
	b := make([]bipartite.Edge, 0, 256)
	return &b
}

// getOpBuf returns an empty pooled op buffer.
func (e *Engine) getOpBuf() *[]bipartite.Op {
	if v := e.opPool.Get(); v != nil {
		b := v.(*[]bipartite.Op)
		*b = (*b)[:0]
		return b
	}
	b := make([]bipartite.Op, 0, 256)
	return &b
}

// Ingest routes one batch of edges to the shard states and returns the
// number of edges accepted. It blocks only when shard mailboxes are full
// (backpressure). Safe for concurrent use. The caller's slice is copied
// into pooled per-shard buffers before Ingest returns, so callers may
// reuse it immediately.
func (e *Engine) Ingest(edges []bipartite.Edge) (int, error) {
	if len(edges) == 0 {
		return 0, nil
	}
	for _, ed := range edges {
		if int(ed.Set) >= e.cfg.NumSets {
			return 0, fmt.Errorf("server: edge set id %d out of range [0,%d)", ed.Set, e.cfg.NumSets)
		}
	}
	e.ingestMu.RLock()
	defer e.ingestMu.RUnlock()
	if e.closed {
		return 0, ErrClosed
	}
	// Durability first: the batch must be in the log before any shard can
	// observe it, so a crash never leaves applied-but-unlogged edges. The
	// fsync policy decides whether "in the log" means stable storage
	// (always) or the kernel (interval/off) by the time Ingest returns. A
	// log failure rejects the batch: no shard has seen it, so the engine
	// stays consistent with the log's acknowledged prefix.
	if e.wal != nil {
		if _, err := e.wal.Append(edges); err != nil {
			return 0, err
		}
	}
	// Route into pooled sub-batch buffers (ownership passes to the shard,
	// which recycles them after its batched AddEdges pass).
	buckets := make([]*[]bipartite.Edge, len(e.shards))
	for _, ed := range edges {
		w := e.part.Route(ed)
		if buckets[w] == nil {
			buckets[w] = e.getBatchBuf()
		}
		*buckets[w] = append(*buckets[w], ed)
	}
	// Count before enqueueing: the accepted-edge counter must never lag a
	// batch that a concurrent Refresh can already observe through the
	// shard mailboxes, so the idle short-circuit's "counter unchanged ⇒
	// snapshot complete" reasoning stays sound.
	e.ingested.Add(int64(len(edges)))
	e.batches.Add(1)
	for w, b := range buckets {
		if b == nil {
			continue
		}
		// Fast path: the mailbox has room. A full mailbox is counted as a
		// backpressure stall before the blocking send — the signal the
		// wire plane and /metrics surface as ingest_stalls.
		select {
		case e.shards[w].mail <- shardMsg{batch: b}:
		default:
			e.ingestStalls.Add(1)
			e.shards[w].mail <- shardMsg{batch: b}
		}
	}
	return len(edges), nil
}

// IngestOps routes one batch of ops (inserts and deletes) to the shard
// states and returns the number of ops accepted. Insert-only batches
// take exactly the Ingest path — same WAL frame bytes, same mailbox
// shape — so an op-speaking client pointed at an append-only engine
// behaves byte-identically to an edge-speaking one as long as it never
// deletes. A batch containing deletes requires a mode whose ApplyOps
// accepts them (Mode.SupportsDeletes, today only "dynamic"); on any
// other engine the whole batch is rejected with ErrDeletesUnsupported
// before anything is logged, counted or routed. All-or-nothing like
// Ingest; offsets/watermarks count ops, deletes included.
func (e *Engine) IngestOps(ops []bipartite.Op) (int, error) {
	if len(ops) == 0 {
		return 0, nil
	}
	hasDeletes := false
	for i := range ops {
		if int(ops[i].Edge.Set) >= e.cfg.NumSets {
			return 0, fmt.Errorf("server: edge set id %d out of range [0,%d)", ops[i].Edge.Set, e.cfg.NumSets)
		}
		switch ops[i].Kind {
		case bipartite.OpInsert:
		case bipartite.OpDelete:
			hasDeletes = true
		default:
			return 0, fmt.Errorf("server: unknown op kind %d", ops[i].Kind)
		}
	}
	if !hasDeletes {
		edges := make([]bipartite.Edge, len(ops))
		for i := range ops {
			edges[i] = ops[i].Edge
		}
		return e.Ingest(edges)
	}
	if !e.mode.SupportsDeletes() {
		return 0, fmt.Errorf("server: engine %q: %w", e.ModeName(), ErrDeletesUnsupported)
	}
	e.ingestMu.RLock()
	defer e.ingestMu.RUnlock()
	if e.closed {
		return 0, ErrClosed
	}
	// Durability first, exactly as in Ingest; delete-carrying batches
	// are logged as op frames (wal.AppendOps), which old-format readers
	// reject rather than misread.
	if e.wal != nil {
		if _, err := e.wal.AppendOps(ops); err != nil {
			return 0, err
		}
	}
	buckets := make([]*[]bipartite.Op, len(e.shards))
	deletes := int64(0)
	for _, op := range ops {
		if op.Kind == bipartite.OpDelete {
			deletes++
		}
		// Route on the edge, ignoring the kind: an edge's delete lands on
		// the shard that holds its insert, so per-shard samplers see
		// well-formed sub-streams.
		w := e.part.Route(op.Edge)
		if buckets[w] == nil {
			buckets[w] = e.getOpBuf()
		}
		*buckets[w] = append(*buckets[w], op)
	}
	e.ingested.Add(int64(len(ops)))
	e.deletes.Add(deletes)
	e.batches.Add(1)
	for w, b := range buckets {
		if b == nil {
			continue
		}
		select {
		case e.shards[w].mail <- shardMsg{ops: b}:
		default:
			e.ingestStalls.Add(1)
			e.shards[w].mail <- shardMsg{ops: b}
		}
	}
	return len(ops), nil
}

// collect asks every shard for a consistent view of its state (with a
// deep clone of the state when wantClone). The request rides the same
// mailbox as the batches, so each reply reflects every batch enqueued
// to that shard before the call.
func (e *Engine) collect(wantClone bool) ([]shardReply, error) {
	e.ingestMu.RLock()
	defer e.ingestMu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	replies := make([]chan shardReply, len(e.shards))
	for i, sh := range e.shards {
		replies[i] = make(chan shardReply, 1)
		sh.mail <- shardMsg{reply: replies[i], wantClone: wantClone}
	}
	out := make([]shardReply, len(replies))
	for i, ch := range replies {
		out[i] = <-ch
	}
	return out, nil
}

// Refresh publishes a snapshot reflecting every edge whose Ingest call
// returned before Refresh was called. When the ingested-edge counter
// has not moved since the current snapshot was published, that snapshot
// already reflects everything and is returned as-is — an idle Refresh
// costs two atomic loads instead of a full clone-and-merge.
func (e *Engine) Refresh() (*Snapshot, error) {
	e.refreshMu.Lock()
	defer e.refreshMu.Unlock()
	return e.refreshLocked()
}

// refreshLocked is Refresh's body; the caller holds refreshMu.
func (e *Engine) refreshLocked() (*Snapshot, error) {
	ingested := e.ingested.Load()
	if snap := e.snap.Load(); snap != nil && snap.IngestedEdges == ingested {
		// Idle short-circuit. Ingest bumps the accepted-edge counter
		// before it enqueues, so "counter unchanged since the snapshot's
		// applied total" means no batch has entered a mailbox since that
		// merge — the published snapshot still satisfies the Refresh
		// contract.
		e.refreshSkips.Add(1)
		return snap, nil
	}
	replies, err := e.collect(true)
	if err != nil {
		return nil, err
	}
	// Capture the ingested-edge total from the same replies as the
	// clones: the count and the merged state describe the exact same cut
	// of the mailboxes, so the snapshot's accounting can neither lag a
	// batch the merge contains nor claim one it missed. (The counter
	// read above is only the idle check — a batch accepted between it
	// and collect() is legitimately included here.)
	applied := e.restored
	states := make([]ShardState, len(replies))
	for i, rep := range replies {
		applied += rep.stats.EdgesSeen
		states[i] = rep.clone
	}
	// Fold the shard clones into one merged state (the clones are owned
	// here and discarded after the fold).
	merged, err := e.mode.MergeStates(states)
	if err != nil {
		return nil, err
	}
	// NewStateSnapshot pins the captured applied total on the merged
	// state (a merged state only counts the kept edges it replayed;
	// restored edges already ride `applied`), so the snapshot reports the
	// true consumed count and WriteSnapshot persists it without a fix-up
	// clone.
	snap, err := NewStateSnapshot(e.mode, e.seq.Add(1), applied, merged)
	if err != nil {
		return nil, err
	}
	e.publish(snap)
	return snap, nil
}

// publish stores a freshly built snapshot and bumps the merge-plane
// counters (a dynamic-mode snapshot implies one successful sampler
// decode — Materialize would have failed the build otherwise).
func (e *Engine) publish(snap *Snapshot) {
	e.snap.Store(snap)
	e.refreshes.Add(1)
	if e.mode.Name() == ModeDynamic {
		e.samplerRecoveries.Add(1)
	}
}

// Snapshot returns the current snapshot, building the first one on
// demand. Concurrent first calls collapse into a single coordinator
// merge behind refreshMu (the losers wait and reuse the winner's
// snapshot) instead of each triggering an independent Refresh.
func (e *Engine) Snapshot() (*Snapshot, error) {
	if s := e.snap.Load(); s != nil {
		return s, nil
	}
	e.refreshMu.Lock()
	defer e.refreshMu.Unlock()
	if s := e.snap.Load(); s != nil { // built while we waited for the lock
		return s, nil
	}
	return e.refreshLocked()
}

// Config returns a copy of the configuration the engine was built with
// (with the restore state cleared — it is consumed at construction).
// The namespace layer persists this alongside the merged state so a
// snapshot-v2 restore can rebuild the engine identically.
func (e *Engine) Config() Config {
	cfg := e.cfg
	cfg.Restore = nil
	cfg.RestoreWeighted = nil
	cfg.RestoreState = nil
	cfg.Weights = cfg.Weights.clone()
	return cfg
}

// RefreshErrors reports the number of background (merge-ticker)
// refreshes that failed. A single atomic load — unlike Stats it stays
// readable after Close, when the failures typically happen.
func (e *Engine) RefreshErrors() int64 { return e.refreshErrors.Load() }

// IngestedEdges reports the number of edges accepted so far. Unlike
// Stats it is a single atomic load — no message rides the shard
// mailboxes — so it is safe to call at directory-listing frequency.
func (e *Engine) IngestedEdges() int64 { return e.ingested.Load() }

// IngestStalls reports the number of shard-mailbox sends that found the
// mailbox full and had to wait (backpressure events). A single atomic
// load, safe at any frequency.
func (e *Engine) IngestStalls() int64 { return e.ingestStalls.Load() }

// DeletedEdges reports the number of delete ops accepted so far (always
// 0 on append-only modes). A single atomic load.
func (e *Engine) DeletedEdges() int64 { return e.deletes.Load() }

// Counters is the cheap subset of Stats: every field is an atomic read,
// no message rides the shard mailboxes, so a metrics scrape can collect
// it per namespace at high frequency without perturbing ingest.
type Counters struct {
	// IngestedEdges / Batches / IngestStalls account the ingest plane.
	IngestedEdges int64
	Batches       int64
	IngestStalls  int64
	// DeletedEdges counts accepted delete ops (IngestOps); always 0 on
	// append-only modes. SamplerRecoveries counts published dynamic-mode
	// snapshots (one successful L0 decode each); 0 on other modes.
	DeletedEdges      int64
	SamplerRecoveries int64
	// Queries / QueryCacheHits account the query plane.
	Queries        int64
	QueryCacheHits int64
	// Refreshes / RefreshSkips / RefreshErrors account the merge plane.
	Refreshes     int64
	RefreshSkips  int64
	RefreshErrors int64
	// SnapshotSeq / SnapshotEdges identify the published snapshot (zero
	// before the first merge).
	SnapshotSeq   uint64
	SnapshotEdges int64
}

// Counters returns the engine's cheap counters (see Counters).
func (e *Engine) Counters() Counters {
	c := Counters{
		IngestedEdges:     e.ingested.Load(),
		Batches:           e.batches.Load(),
		IngestStalls:      e.ingestStalls.Load(),
		DeletedEdges:      e.deletes.Load(),
		SamplerRecoveries: e.samplerRecoveries.Load(),
		Queries:           e.queries.Load(),
		QueryCacheHits:    e.cacheHits.Load(),
		Refreshes:         e.refreshes.Load(),
		RefreshSkips:      e.refreshSkips.Load(),
		RefreshErrors:     e.refreshErrors.Load(),
	}
	if snap := e.snap.Load(); snap != nil {
		c.SnapshotSeq = snap.Seq
		c.SnapshotEdges = snap.IngestedEdges
	}
	return c
}

// Algo identifies a query algorithm.
type Algo string

const (
	// AlgoKCover runs the greedy (1−1/e)-approximation for max k-cover on
	// the snapshot state — Algorithm 3's offline step (Theorem 3.1).
	AlgoKCover Algo = "kcover"
	// AlgoOutliers runs greedy partial cover until a 1−λ fraction of the
	// snapshot's sampled elements is covered — the offline step of the
	// outlier algorithm (Theorem 3.3) on the service sketch.
	AlgoOutliers Algo = "outliers"
	// AlgoGreedy runs the full greedy set cover over the snapshot sketch.
	AlgoGreedy Algo = "greedy"
	// AlgoWeightedKCover runs the weighted greedy (1−1/e for weighted
	// coverage) over the snapshot's scaled class-bank union. Only valid
	// on a weighted engine, where plain AlgoKCover is an alias for it —
	// the explicit name lets clients assert they are talking to a
	// weighted namespace.
	AlgoWeightedKCover Algo = "wkcover"
)

// Query is a request against a snapshot.
type Query struct {
	// Algo selects the algorithm (default empty = AlgoKCover at the HTTP
	// layer; the engine itself requires an explicit value).
	Algo Algo
	// K bounds the solution size (required for kcover).
	K int
	// Lambda is the outlier fraction in (0, 1) (required for outliers).
	Lambda float64
	// Refresh forces a coordinator merge before answering, so the result
	// reflects every previously ingested edge.
	Refresh bool
}

// QueryResult reports a query execution.
type QueryResult struct {
	// Algo echoes the executed algorithm.
	Algo Algo `json:"algo"`
	// Sets is the chosen solution, as set ids.
	Sets []int `json:"sets"`
	// SketchCoverage is the number of sampled elements Sets covers.
	SketchCoverage int `json:"sketch_coverage"`
	// EstimatedCoverage is SketchCoverage / p*, the Lemma 2.2 estimate of
	// the true coverage.
	EstimatedCoverage float64 `json:"estimated_coverage"`
	// SampledElements and PStar describe the snapshot the query ran on.
	// An empty (never-ingested) snapshot reports SampledElements 0 and
	// EstimatedCoverage 0 — never NaN/Inf, which JSON could not encode.
	SampledElements int     `json:"sampled_elements"`
	PStar           float64 `json:"p_star"`
	// Weighted marks results from the weighted query plane; there
	// EstimatedCoverage is the class-scaled total covered weight (not
	// SketchCoverage / p*) and WeightClasses counts the non-empty weight
	// classes in the snapshot bank.
	Weighted      bool `json:"weighted,omitempty"`
	WeightClasses int  `json:"weight_classes,omitempty"`
	// Engine names the engine mode for results from a non-default mode
	// (currently only "sieve"); empty for the sketch and weighted planes,
	// whose result shape predates the field.
	Engine ModeName `json:"engine,omitempty"`
	// SnapshotSeq and SnapshotEdges identify the snapshot; a query issued
	// during ingestion reports the merge it was served from.
	SnapshotSeq   uint64 `json:"snapshot_seq"`
	SnapshotEdges int64  `json:"snapshot_edges"`
}

// ValidateQuery checks q against an engine mode without executing it:
// algo known, k/lambda in range, algo defined for the mode. Engine.Query
// and the cluster query plane share it so a malformed query is rejected
// identically everywhere.
func ValidateQuery(q Query, mode ModeName) error {
	isWeighted := mode == ModeWeighted
	switch q.Algo {
	case AlgoKCover:
		if q.K <= 0 {
			return fmt.Errorf("server: kcover query needs positive k")
		}
	case AlgoWeightedKCover:
		if !isWeighted {
			return fmt.Errorf("server: wkcover requires a weighted engine (configure Weights)")
		}
		if q.K <= 0 {
			return fmt.Errorf("server: wkcover query needs positive k")
		}
	case AlgoOutliers:
		if !(q.Lambda > 0 && q.Lambda < 1) {
			return fmt.Errorf("server: outliers query needs lambda in (0,1), got %v", q.Lambda)
		}
	case AlgoGreedy:
	default:
		return fmt.Errorf("server: unknown query algo %q", q.Algo)
	}
	if isWeighted && (q.Algo == AlgoOutliers || q.Algo == AlgoGreedy) {
		return fmt.Errorf("server: algo %q is not defined on a weighted engine (weighted coverage serves kcover)", q.Algo)
	}
	if mode == ModeSieve && (q.Algo == AlgoOutliers || q.Algo == AlgoGreedy) {
		// The sieve buffer keeps at most K candidate sets — partial and
		// full set cover over that residue would answer a different
		// question than the algorithms promise.
		return fmt.Errorf("server: algo %q is not defined on a sieve engine (sieve serves kcover)", q.Algo)
	}
	if mode == ModeDynamic && (q.Algo == AlgoOutliers || q.Algo == AlgoGreedy) {
		// The dynamic sampler recovers a p*-sample sized for k-cover
		// estimation; the outlier and full-cover guarantees are only
		// analyzed for the append-only sketch.
		return fmt.Errorf("server: algo %q is not defined on a dynamic engine (dynamic serves kcover)", q.Algo)
	}
	return nil
}

// ExecuteQuery runs a validated query against a snapshot — the greedy
// dispatch of Engine.Query without the engine: no cache, no refresh,
// no counters. The cluster layer uses it to answer queries on merged
// cluster-view snapshots (NewStateSnapshot) with byte-for-byte the
// result shape a local engine produces. q.Refresh is ignored (there is
// no engine to refresh); the caller picks the snapshot.
func ExecuteQuery(snap *Snapshot, q Query) (*QueryResult, error) {
	if err := ValidateQuery(q, snap.ModeName()); err != nil {
		return nil, err
	}
	return snap.mode.Execute(snap, q)
}

// Query executes q against the current (or freshly merged) snapshot.
// Safe for concurrent use with Ingest: the snapshot is immutable.
// Results for an unchanged snapshot are memoized (see Config.QueryCache);
// every call returns a privately owned Sets slice either way.
func (e *Engine) Query(q Query) (*QueryResult, error) {
	if err := ValidateQuery(q, e.ModeName()); err != nil {
		return nil, err
	}
	var (
		snap *Snapshot
		err  error
	)
	if q.Refresh {
		snap, err = e.Refresh()
	} else {
		snap, err = e.Snapshot()
	}
	if err != nil {
		return nil, err
	}
	e.queries.Add(1)
	key := newQueryKey(snap.Seq, e.mode.Signature(), q)
	if e.cache != nil {
		if res, ok := e.cache.get(key); ok {
			e.cacheHits.Add(1)
			// kcover/wkcover share an entry on a weighted engine; echo the
			// algo actually requested (get hands back a private copy).
			res.Algo = q.Algo
			return res, nil
		}
	}
	out, err := ExecuteQuery(snap, q)
	if err != nil {
		return nil, err
	}
	if e.cache != nil {
		e.cache.put(key, out)
	}
	return out, nil
}

// safeEstimate is the Lemma 2.2 estimate covered / p*, defined for the
// degenerate snapshots a long-running service can serve: an empty
// (never-ingested) snapshot covers nothing and estimates 0, and a
// sketch whose eviction bar collapsed to priority zero (p* = 0 — it
// retains no measurable sample) also estimates 0 instead of NaN/Inf,
// which would poison the JSON encoder downstream.
func safeEstimate(covered int, pStar float64) float64 {
	if covered <= 0 || pStar <= 0 {
		return 0
	}
	return float64(covered) / pStar
}

// WriteSnapshot merges and persists the service state in the engine
// mode's wire format: a sketch engine writes its merged sketch (v1
// format, restorable through core.ReadSketch into Config.Restore), a
// weighted engine its merged class bank (weighted.BankMagic framing,
// restorable into Config.RestoreWeighted), a sieve engine its merged
// swap buffer (sieve.Magic framing, restorable into Config.RestoreState).
// ReadRestore / NewFromSnapshot decode any of them from the config. The
// persisted state carries the engine's true ingested-edge total (a
// merged state only counts the kept edges it replayed), so accounting
// survives restore.
func (e *Engine) WriteSnapshot(w io.Writer) (*Snapshot, error) {
	// A durable engine snapshots through the batch-aligned Checkpoint so
	// the persisted edge total always lands on a WAL record boundary —
	// restoring these bytes next to the engine's own WAL must never
	// split a frame. (Callers wanting truncation too use CheckpointEngine.)
	snapFn := e.Refresh
	if e.wal != nil {
		snapFn = e.Checkpoint
	}
	snap, err := snapFn()
	if err != nil {
		return nil, err
	}
	// No clone needed in any mode: the refresh already pinned the merged
	// state's consumed-edge counter to the snapshot's applied total, and
	// WriteState only reads, so serializing the published state races
	// with nothing.
	if err := snap.WriteState(w); err != nil {
		return nil, err
	}
	return snap, nil
}

// ReadRestore decodes a snapshot previously written by WriteSnapshot
// and returns cfg with the matching restore field filled: weighted
// configs (Weights set) decode a class bank into RestoreWeighted,
// sketch configs a v1 sketch into Restore, sieve configs a swap buffer
// into RestoreState. The config must repeat the writing engine's
// parameters.
func ReadRestore(cfg Config, r io.Reader) (Config, error) {
	mode, err := cfg.EngineMode()
	if err != nil {
		return cfg, err
	}
	st, err := mode.ReadState(r)
	if err != nil {
		if mode.Name() == ModeWeighted {
			return cfg, fmt.Errorf("server: restoring weighted snapshot: %w", err)
		}
		return cfg, fmt.Errorf("server: restoring snapshot: %w", err)
	}
	switch s := st.(type) {
	case sketchState:
		cfg.Restore = s.sk
	case bankState:
		cfg.RestoreWeighted = s.bank
	default:
		cfg.RestoreState = st
	}
	return cfg, nil
}

// NewFromSnapshot starts an engine seeded from persisted WriteSnapshot
// bytes — ReadRestore followed by New.
func NewFromSnapshot(r io.Reader, cfg Config) (*Engine, error) {
	cfg, err := ReadRestore(cfg, r)
	if err != nil {
		return nil, err
	}
	return New(cfg)
}

// Stats reports engine-level accounting.
type Stats struct {
	// Shards is the number of ingest workers (each owning one state).
	Shards int `json:"shards"`
	// IngestedEdges is the total number of edges accepted by Ingest.
	IngestedEdges int64 `json:"ingested_edges"`
	// Batches is the number of Ingest calls that delivered edges.
	Batches int64 `json:"batches"`
	// IngestStalls counts shard-mailbox sends that found the mailbox
	// full and had to wait — backpressure events, the signal the wire
	// ingest plane propagates to producers by pausing socket reads.
	IngestStalls int64 `json:"ingest_stalls"`
	// DeletedEdges counts accepted delete ops; SamplerRecoveries counts
	// published dynamic-mode snapshots (one successful L0 decode each).
	// Both omitted when zero — the legacy modes' stats shape predates
	// the op plane.
	DeletedEdges      int64 `json:"deleted_edges,omitempty"`
	SamplerRecoveries int64 `json:"sampler_recoveries,omitempty"`
	// Queries is the number of queries served (cache hits included).
	Queries int64 `json:"queries"`
	// QueryCacheHits counts queries answered from the memoized result
	// cache without re-running greedy.
	QueryCacheHits int64 `json:"query_cache_hits"`
	// QueryCacheEntries is the cache's current occupancy (0 when the
	// cache is disabled).
	QueryCacheEntries int `json:"query_cache_entries"`
	// Refreshes counts coordinator merges that actually ran.
	Refreshes int64 `json:"refreshes"`
	// RefreshSkips counts Refresh calls satisfied by the idle
	// short-circuit (ingested-edge counter unchanged since the snapshot).
	RefreshSkips int64 `json:"refresh_skips"`
	// RefreshErrors counts background (merge-ticker) refreshes that
	// failed; the first failure also reaches Config.OnRefreshError.
	RefreshErrors int64 `json:"refresh_errors"`
	// Weighted reports whether the engine runs the weighted query plane;
	// WeightClasses counts the non-empty weight classes in the current
	// snapshot's class bank (weighted engines only).
	Weighted      bool `json:"weighted,omitempty"`
	WeightClasses int  `json:"weight_classes,omitempty"`
	// Engine names the engine mode for non-default modes (currently only
	// "sieve"); empty for the sketch and weighted planes, whose stats
	// shape predates the field.
	Engine ModeName `json:"engine,omitempty"`
	// ShardStats holds each shard state's accounting, in shard order.
	ShardStats []core.Stats `json:"shard_stats"`
	// SnapshotSeq identifies the current merged snapshot (0: none yet).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// SnapshotEdges is the ingested-edge count the snapshot reflects.
	SnapshotEdges int64 `json:"snapshot_edges"`
	// SnapshotElements is the number of sampled elements in the snapshot
	// state.
	SnapshotElements int `json:"snapshot_elements"`
	// SnapshotKept is the number of edges the snapshot state holds.
	SnapshotKept int `json:"snapshot_kept_edges"`
	// SnapshotPStar is the snapshot state's sampling probability p*.
	SnapshotPStar float64 `json:"snapshot_p_star"`
}

// Stats returns a consistent per-shard and snapshot accounting. It rides
// the shard mailboxes, so it reflects all previously ingested batches.
func (e *Engine) Stats() (*Stats, error) {
	replies, err := e.collect(false)
	if err != nil {
		return nil, err
	}
	st := &Stats{
		Shards:            len(e.shards),
		IngestedEdges:     e.ingested.Load(),
		Batches:           e.batches.Load(),
		IngestStalls:      e.ingestStalls.Load(),
		DeletedEdges:      e.deletes.Load(),
		SamplerRecoveries: e.samplerRecoveries.Load(),
		Queries:           e.queries.Load(),
		QueryCacheHits:    e.cacheHits.Load(),
		Refreshes:         e.refreshes.Load(),
		RefreshSkips:      e.refreshSkips.Load(),
		RefreshErrors:     e.refreshErrors.Load(),
		Weighted:          e.Weighted(),
	}
	if name := e.mode.Name(); name != ModeSketch && name != ModeWeighted {
		st.Engine = name
	}
	if e.cache != nil {
		st.QueryCacheEntries = e.cache.len()
	}
	for _, rep := range replies {
		st.ShardStats = append(st.ShardStats, rep.stats)
	}
	if snap := e.snap.Load(); snap != nil {
		st.SnapshotSeq = snap.Seq
		st.SnapshotEdges = snap.IngestedEdges
		st.SnapshotElements = snap.elements()
		st.SnapshotKept = snap.keptEdges()
		st.SnapshotPStar = snap.pStar()
		if bank := snap.Bank(); bank != nil {
			st.WeightClasses = bank.Classes()
		}
	}
	return st, nil
}

// Close stops the merge ticker and the shard goroutines. Ingest and
// queries fail afterwards; the last snapshot remains readable via
// Snapshot (it is immutable). Close is idempotent.
func (e *Engine) Close() error {
	e.ingestMu.Lock()
	if e.closed {
		e.ingestMu.Unlock()
		return nil
	}
	e.closed = true
	for _, sh := range e.shards {
		close(sh.mail)
	}
	e.ingestMu.Unlock()
	if e.stopTicker != nil {
		close(e.stopTicker)
		<-e.tickerDone
	}
	for _, sh := range e.shards {
		<-sh.done
	}
	if e.wal != nil {
		// Last: flush the log tail to stable storage. Every accepted batch
		// is already in the kernel (Append never returns before the write
		// syscall), so this bounds loss on a clean shutdown to zero even
		// under the "off" policy.
		return e.wal.Close()
	}
	return nil
}
