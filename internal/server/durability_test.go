package server

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/wal/faultfs"
)

// durConfig returns a small engine config for durability tests in the
// given mode ("sketch", "weighted", "sieve").
func durConfig(mode ModeName) Config {
	cfg := Config{
		NumSets:  40,
		K:        4,
		Eps:      0.5,
		Seed:     42,
		NumElems: 600,
		Shards:   3,
	}
	switch mode {
	case ModeWeighted:
		table := make([]float64, 600)
		for i := range table {
			table[i] = float64(1 + i%7)
		}
		cfg.Weights = &WeightConfig{Table: table, Default: 1}
	case ModeSieve:
		cfg.Engine = ModeSieve
	}
	return cfg
}

// durBatches generates a deterministic batched edge workload.
func durBatches(numSets, numElems, batches, per int) [][]bipartite.Edge {
	out := make([][]bipartite.Edge, batches)
	state := uint64(0x9e3779b97f4a7c15)
	for b := range out {
		batch := make([]bipartite.Edge, per)
		for i := range batch {
			state = state*6364136223846793005 + 1442695040888963407
			batch[i] = bipartite.Edge{
				Set:  uint32(state>>33) % uint32(numSets),
				Elem: uint32(state>>13) % uint32(numElems),
			}
		}
		out[b] = batch
	}
	return out
}

// stateBytes snapshots an engine's merged state to canonical bytes.
func stateBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := e.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

// prefixRef builds the uncrashed reference: a WAL-less engine that
// ingests the first n batches, serialized canonically. Memoized per n
// by the caller.
func prefixRef(t *testing.T, cfg Config, batches [][]bipartite.Edge, n int) []byte {
	t.Helper()
	cfg.WAL = nil
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New(ref): %v", err)
	}
	defer e.Close()
	for _, b := range batches[:n] {
		if _, err := e.Ingest(b); err != nil {
			t.Fatalf("ref Ingest: %v", err)
		}
	}
	return stateBytes(t, e)
}

var durModes = []ModeName{ModeSketch, ModeWeighted, ModeSieve}

// TestCrashRecoveryBitIdentical sweeps an injected crash across the WAL
// byte range: for every crash point, a recovered engine's merged state
// must serialize to exactly the bytes of an uncrashed engine that
// ingested the acknowledged batch prefix — for all three engine modes.
// (Canonical serialization means equal bytes ⇔ equal state.)
func TestCrashRecoveryBitIdentical(t *testing.T) {
	for _, mode := range durModes {
		t.Run(string(mode), func(t *testing.T) {
			base := durConfig(mode)
			batches := durBatches(base.NumSets, base.NumElems, 10, 6)

			// Probe run: no fault, measure the workload's WAL byte volume.
			probe := faultfs.NewInjector(-1)
			cfg := base
			cfg.WAL = &WALConfig{Dir: t.TempDir(), Fsync: "always", OpenWrite: probe.OpenWrite}
			e, err := New(cfg)
			if err != nil {
				t.Fatalf("New(probe): %v", err)
			}
			for _, b := range batches {
				if _, err := e.Ingest(b); err != nil {
					t.Fatalf("probe Ingest: %v", err)
				}
			}
			e.Close()
			totalBytes := probe.Written()
			if totalBytes == 0 {
				t.Fatalf("probe wrote no WAL bytes")
			}

			refs := map[int][]byte{}
			refFor := func(n int) []byte {
				if b, ok := refs[n]; ok {
					return b
				}
				b := prefixRef(t, base, batches, n)
				refs[n] = b
				return b
			}

			step := int64(5)
			if testing.Short() {
				step = 37
			}
			for limit := int64(0); limit <= totalBytes; limit += step {
				dir := t.TempDir()
				inj := faultfs.NewInjector(limit)
				cfg := base
				cfg.WAL = &WALConfig{Dir: dir, Fsync: "always", OpenWrite: inj.OpenWrite}
				acked := 0
				if e, err := New(cfg); err == nil {
					for _, b := range batches {
						if _, err := e.Ingest(b); err != nil {
							break
						}
						acked++
					}
					e.Close() // may fail syncing the torn tail; the crash is the point
				}

				rcfg := base
				rcfg.WAL = &WALConfig{Dir: dir, Fsync: "off"}
				rec, err := New(rcfg)
				if err != nil {
					t.Fatalf("limit %d: recovery New: %v", limit, err)
				}
				if got := rec.IngestedEdges(); got != int64(acked*6) {
					t.Fatalf("limit %d: recovered %d edges, acknowledged %d", limit, got, acked*6)
				}
				got := stateBytes(t, rec)
				rec.Close()
				if !bytes.Equal(got, refFor(acked)) {
					t.Fatalf("limit %d (acked %d/%d batches): recovered state differs from uncrashed reference",
						limit, acked, len(batches))
				}
			}
		})
	}
}

// TestCrashRecoveryAfterCheckpoint crashes in the WAL tail *after* a
// durable checkpoint: recovery = restore the snapshot + replay only the
// uncovered tail. The pinned invariant is that a crash is
// indistinguishable from a clean restart at the same point — recovered
// bytes equal a clean restore-from-checkpoint followed by direct
// ingestion of the acknowledged tail. For sketch and weighted the test
// additionally pins that reference to the engine that never restarted
// at all (merge-composability makes restore + tail = straight-through);
// the sieve buffer is order- and merge-path-dependent by design
// (DESIGN.md §11), so there any restart — crashed or clean — legally
// diverges from the never-restarted engine, and bit-identical recovery
// means equality with the clean restart.
func TestCrashRecoveryAfterCheckpoint(t *testing.T) {
	for _, mode := range durModes {
		t.Run(string(mode), func(t *testing.T) {
			base := durConfig(mode)
			batches := durBatches(base.NumSets, base.NumElems, 10, 6)
			half := len(batches) / 2

			// Probe run with a mid-stream checkpoint, recording the WAL byte
			// volume at the checkpoint and at the end.
			probe := faultfs.NewInjector(-1)
			cfg := base
			cfg.WAL = &WALConfig{Dir: t.TempDir(), Fsync: "always", OpenWrite: probe.OpenWrite}
			e, err := New(cfg)
			if err != nil {
				t.Fatalf("New(probe): %v", err)
			}
			snapProbe := filepath.Join(t.TempDir(), "probe.snap")
			for _, b := range batches[:half] {
				if _, err := e.Ingest(b); err != nil {
					t.Fatalf("probe Ingest: %v", err)
				}
			}
			if _, err := CheckpointEngine(e, snapProbe); err != nil {
				t.Fatalf("probe CheckpointEngine: %v", err)
			}
			ckptBytes := probe.Written()
			for _, b := range batches[half:] {
				if _, err := e.Ingest(b); err != nil {
					t.Fatalf("probe Ingest: %v", err)
				}
			}
			e.Close()
			totalBytes := probe.Written()
			if totalBytes <= ckptBytes {
				t.Fatalf("tail wrote no WAL bytes (ckpt %d, total %d)", ckptBytes, totalBytes)
			}

			// Reference: a clean restart from the checkpoint — restore the
			// snapshot, then ingest the first n-half tail batches directly.
			// (The checkpoint is deterministic, so every crashed run's
			// snapshot file equals the probe's.)
			refs := map[int][]byte{}
			refFor := func(n int) []byte {
				if b, ok := refs[n]; ok {
					return b
				}
				f, err := os.Open(snapProbe)
				if err != nil {
					t.Fatalf("opening probe snapshot: %v", err)
				}
				rcfg, err := ReadRestore(base, f)
				f.Close()
				if err != nil {
					t.Fatalf("ReadRestore(ref): %v", err)
				}
				e, err := New(rcfg)
				if err != nil {
					t.Fatalf("New(ref): %v", err)
				}
				for _, bt := range batches[half:n] {
					if _, err := e.Ingest(bt); err != nil {
						t.Fatalf("ref Ingest: %v", err)
					}
				}
				b := stateBytes(t, e)
				e.Close()
				if mode != ModeSieve {
					// Merge-composability: for sketch and weighted, the clean
					// restart equals the engine that never restarted.
					if direct := prefixRef(t, base, batches, n); !bytes.Equal(b, direct) {
						t.Fatalf("restart reference diverged from straight-through engine at %d batches", n)
					}
				}
				refs[n] = b
				return b
			}

			step := int64(5)
			if testing.Short() {
				step = 37
			}
			for limit := ckptBytes + 1; limit <= totalBytes; limit += step {
				dir := t.TempDir()
				snapPath := filepath.Join(t.TempDir(), "state.snap")
				inj := faultfs.NewInjector(limit)
				cfg := base
				cfg.WAL = &WALConfig{Dir: dir, Fsync: "always", OpenWrite: inj.OpenWrite}
				e, err := New(cfg)
				if err != nil {
					t.Fatalf("limit %d: New: %v", limit, err)
				}
				acked := 0
				for _, b := range batches[:half] {
					if _, err := e.Ingest(b); err != nil {
						t.Fatalf("limit %d: pre-checkpoint Ingest: %v", limit, err)
					}
					acked++
				}
				if _, err := CheckpointEngine(e, snapPath); err != nil {
					t.Fatalf("limit %d: CheckpointEngine: %v", limit, err)
				}
				for _, b := range batches[half:] {
					if _, err := e.Ingest(b); err != nil {
						break
					}
					acked++
				}
				e.Close()

				// Recover: snapshot restore + WAL tail replay.
				f, err := os.Open(snapPath)
				if err != nil {
					t.Fatalf("limit %d: opening snapshot: %v", limit, err)
				}
				rcfg, err := ReadRestore(base, f)
				f.Close()
				if err != nil {
					t.Fatalf("limit %d: ReadRestore: %v", limit, err)
				}
				rcfg.WAL = &WALConfig{Dir: dir, Fsync: "off"}
				rec, err := New(rcfg)
				if err != nil {
					t.Fatalf("limit %d: recovery New: %v", limit, err)
				}
				if got := rec.IngestedEdges(); got != int64(acked*6) {
					t.Fatalf("limit %d: recovered %d edges, acknowledged %d", limit, got, acked*6)
				}
				got := stateBytes(t, rec)
				rec.Close()
				if !bytes.Equal(got, refFor(acked)) {
					t.Fatalf("limit %d (acked %d/%d batches): recovered state differs from uncrashed reference",
						limit, acked, len(batches))
				}
			}
		})
	}
}

// TestMultiDurabilityLifecycle exercises the directory-level plane:
// namespaces created under SetDurability log to per-namespace WAL dirs,
// CheckpointMulti truncates them behind the container, a restart
// (RestoreAll + RecoverNamespaces) rebuilds every namespace — including
// one never captured in any container — bit-identically, and Delete
// removes the namespace's WAL directory so it cannot resurrect.
func TestMultiDurabilityLifecycle(t *testing.T) {
	walRoot := t.TempDir()
	snapPath := filepath.Join(t.TempDir(), "all.snap")
	dur := &WALConfig{Dir: walRoot, Fsync: "off"}

	m := NewMulti("")
	m.SetDurability(dur)
	cfgA := durConfig(ModeSketch)
	cfgB := durConfig(ModeSieve)
	if _, err := m.Create("alpha", cfgA); err != nil {
		t.Fatalf("Create(alpha): %v", err)
	}
	batches := durBatches(cfgA.NumSets, cfgA.NumElems, 8, 5)
	a, _ := m.Get("alpha")
	for _, b := range batches[:4] {
		if _, err := a.Ingest(b); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	if err := CheckpointMulti(m, snapPath); err != nil {
		t.Fatalf("CheckpointMulti: %v", err)
	}
	// Post-checkpoint work: a tail on alpha, plus a namespace the
	// container has never seen.
	for _, b := range batches[4:] {
		if _, err := a.Ingest(b); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	if _, err := m.Create("beta", cfgB); err != nil {
		t.Fatalf("Create(beta): %v", err)
	}
	bEng, _ := m.Get("beta")
	for _, b := range batches[:3] {
		if _, err := bEng.Ingest(b); err != nil {
			t.Fatalf("Ingest(beta): %v", err)
		}
	}
	wantA := stateBytes(t, a)
	wantB := stateBytes(t, bEng)
	m.Close() // "crash" with a clean kernel: fsync=off still survives process death

	// Restart.
	m2 := NewMulti("")
	m2.SetDurability(dur)
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatalf("opening container: %v", err)
	}
	if n, err := m2.RestoreAll(f); err != nil || n != 1 {
		t.Fatalf("RestoreAll = %d, %v; want 1 namespace", n, err)
	}
	f.Close()
	recovered, err := m2.RecoverNamespaces()
	if err != nil {
		t.Fatalf("RecoverNamespaces: %v", err)
	}
	if len(recovered) != 1 || recovered[0] != "beta" {
		t.Fatalf("RecoverNamespaces = %v, want [beta]", recovered)
	}
	a2, ok := m2.Get("alpha")
	if !ok {
		t.Fatalf("alpha missing after restart")
	}
	b2, ok := m2.Get("beta")
	if !ok {
		t.Fatalf("beta missing after restart")
	}
	if got := stateBytes(t, a2); !bytes.Equal(got, wantA) {
		t.Fatalf("alpha state differs after restart")
	}
	if got := stateBytes(t, b2); !bytes.Equal(got, wantB) {
		t.Fatalf("beta state differs after restart")
	}

	// Delete must take the WAL directory with it.
	if err := m2.Delete("beta"); err != nil {
		t.Fatalf("Delete(beta): %v", err)
	}
	if _, err := os.Stat(filepath.Join(walRoot, "beta")); !os.IsNotExist(err) {
		t.Fatalf("beta WAL dir survived Delete: %v", err)
	}
	if rec, err := m2.RecoverNamespaces(); err != nil || len(rec) != 0 {
		t.Fatalf("deleted namespace resurrected: %v, %v", rec, err)
	}
	m2.Close()
}

// TestAutosnapshotCheckpoints exercises the periodic checkpoint loop:
// the container file appears, reflects ingested data, and the WAL
// shrinks behind it.
func TestAutosnapshotCheckpoints(t *testing.T) {
	walRoot := t.TempDir()
	snapPath := filepath.Join(t.TempDir(), "auto.snap")
	m := NewMulti("")
	m.SetDurability(&WALConfig{Dir: walRoot, Fsync: "off"})
	defer m.Close()
	cfg := durConfig(ModeSketch)
	e, err := m.Create("ns", cfg)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	batches := durBatches(cfg.NumSets, cfg.NumElems, 6, 5)
	for _, b := range batches {
		if _, err := e.Ingest(b); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	var autoErr error
	stop := m.StartAutosnapshot(snapPath, 5*time.Millisecond, func(err error) { autoErr = err })
	deadline := time.Now().Add(2 * time.Second)
	for {
		if fi, err := os.Stat(snapPath); err == nil && fi.Size() > 0 && e.WALStats().NextOffset == 30 {
			// One checkpoint covered everything: the replayable WAL tail is
			// empty (all segments behind the cut were truncated).
			if st := e.WALStats(); st.Segments == 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("autosnapshot never produced a truncating checkpoint (stats %+v, err %v)", e.WALStats(), autoErr)
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	if autoErr != nil {
		t.Fatalf("autosnapshot error: %v", autoErr)
	}

	// The container restores on its own (no WAL tail needed).
	want := stateBytes(t, e)
	m2 := NewMulti("")
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatalf("opening container: %v", err)
	}
	defer f.Close()
	if n, err := m2.RestoreAll(f); err != nil || n != 1 {
		t.Fatalf("RestoreAll = %d, %v", n, err)
	}
	e2, _ := m2.Get("ns")
	if got := stateBytes(t, e2); !bytes.Equal(got, want) {
		t.Fatalf("restored autosnapshot state differs")
	}
	m2.Close()
}

// TestAtomicWriteSyncsBeforeRename pins the durability ordering of the
// snapshot write path: file contents are fsynced before the rename
// publishes them, and the parent directory is fsynced after — the
// missing pieces that used to let a "persisted" snapshot vanish on
// power loss.
func TestAtomicWriteSyncsBeforeRename(t *testing.T) {
	origSyncFile, origRename, origSyncDir := syncFile, renameFile, syncDir
	defer func() { syncFile, renameFile, syncDir = origSyncFile, origRename, origSyncDir }()

	var steps []string
	syncFile = func(f *os.File) error {
		steps = append(steps, "sync-file")
		return origSyncFile(f)
	}
	renameFile = func(old, new string) error {
		steps = append(steps, "rename")
		return origRename(old, new)
	}
	syncDir = func(dir string) error {
		steps = append(steps, "sync-dir")
		return origSyncDir(dir)
	}

	path := filepath.Join(t.TempDir(), "out.bin")
	if err := atomicWrite(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatalf("atomicWrite: %v", err)
	}
	want := []string{"sync-file", "rename", "sync-dir"}
	if fmt.Sprint(steps) != fmt.Sprint(want) {
		t.Fatalf("durability steps = %v, want %v", steps, want)
	}
	if data, err := os.ReadFile(path); err != nil || string(data) != "payload" {
		t.Fatalf("written file = %q, %v", data, err)
	}
}
