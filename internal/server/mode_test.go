package server

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sieve"
	"repro/internal/stream"
	"repro/internal/workload"
)

func sieveConfig(n, m, k int, seed uint64, shards int) Config {
	cfg := testConfig(n, m, k, seed, shards)
	cfg.Engine = ModeSieve
	return cfg
}

// TestValidateQueryAcrossModes pins the query-validation contract the
// engine and cluster query planes share: which (algo, mode) pairs are
// legal, and the parameter bounds each algo enforces. A case's want map
// names the modes expected to reject it (with an error substring);
// modes absent from the map must accept.
func TestValidateQueryAcrossModes(t *testing.T) {
	modes := []ModeName{ModeSketch, ModeWeighted, ModeSieve}
	all := func(msg string) map[ModeName]string {
		return map[ModeName]string{ModeSketch: msg, ModeWeighted: msg, ModeSieve: msg}
	}
	cases := []struct {
		name string
		q    Query
		want map[ModeName]string
	}{
		{"kcover valid everywhere", Query{Algo: AlgoKCover, K: 3}, nil},
		{"kcover needs positive k", Query{Algo: AlgoKCover},
			all("kcover query needs positive k")},
		{"kcover rejects negative k", Query{Algo: AlgoKCover, K: -1},
			all("kcover query needs positive k")},
		{"wkcover is weighted-only", Query{Algo: AlgoWeightedKCover, K: 2},
			map[ModeName]string{
				ModeSketch: "wkcover requires a weighted engine",
				ModeSieve:  "wkcover requires a weighted engine",
			}},
		{"wkcover needs positive k", Query{Algo: AlgoWeightedKCover},
			map[ModeName]string{
				ModeSketch:   "wkcover requires a weighted engine",
				ModeWeighted: "wkcover query needs positive k",
				ModeSieve:    "wkcover requires a weighted engine",
			}},
		{"outliers is sketch-only", Query{Algo: AlgoOutliers, Lambda: 0.1},
			map[ModeName]string{
				ModeWeighted: `algo "outliers" is not defined on a weighted engine`,
				ModeSieve:    `algo "outliers" is not defined on a sieve engine`,
			}},
		{"outliers lambda lower bound", Query{Algo: AlgoOutliers, Lambda: 0},
			all("lambda in (0,1)")},
		{"outliers lambda upper bound", Query{Algo: AlgoOutliers, Lambda: 1},
			all("lambda in (0,1)")},
		{"greedy is sketch-only", Query{Algo: AlgoGreedy},
			map[ModeName]string{
				ModeWeighted: `algo "greedy" is not defined on a weighted engine`,
				ModeSieve:    `algo "greedy" is not defined on a sieve engine`,
			}},
		{"unknown algo", Query{Algo: "coverme", K: 3},
			all(`unknown query algo "coverme"`)},
	}
	for _, c := range cases {
		for _, mode := range modes {
			err := ValidateQuery(c.q, mode)
			wantMsg, wantErr := c.want[mode]
			if !wantErr {
				if err != nil {
					t.Errorf("%s on %s: unexpected error %v", c.name, mode, err)
				}
				continue
			}
			if err == nil {
				t.Errorf("%s on %s: accepted, want error containing %q", c.name, mode, wantMsg)
			} else if !strings.Contains(err.Error(), wantMsg) {
				t.Errorf("%s on %s: error %q does not contain %q", c.name, mode, err, wantMsg)
			}
		}
	}
}

func TestConfigEngineModeResolution(t *testing.T) {
	base := testConfig(10, 100, 3, 1, 1)

	if m, err := base.EngineMode(); err != nil || m.Name() != ModeSketch {
		t.Fatalf("default mode = %v, %v; want sketch", m, err)
	}
	w := base
	w.Weights = &WeightConfig{Default: 1}
	if m, err := w.EngineMode(); err != nil || m.Name() != ModeWeighted {
		t.Fatalf("weights-implied mode = %v, %v; want weighted", m, err)
	}
	sv := base
	sv.Engine = ModeSieve
	if m, err := sv.EngineMode(); err != nil || m.Name() != ModeSieve {
		t.Fatalf("sieve mode = %v, %v", m, err)
	}

	bad := []struct {
		cfg  func() Config
		want string
	}{
		{func() Config { c := base; c.Engine = ModeSieve; c.Weights = &WeightConfig{Default: 1}; return c },
			"does not take Weights"},
		{func() Config { c := base; c.Engine = ModeSketch; c.Weights = &WeightConfig{Default: 1}; return c },
			"does not take Weights"},
		{func() Config { c := base; c.Engine = ModeWeighted; return c },
			"requires Weights"},
		{func() Config { c := base; c.Engine = "bogus"; return c },
			`unknown engine "bogus"`},
	}
	for _, b := range bad {
		cfg := b.cfg()
		if _, err := cfg.EngineMode(); err == nil || !strings.Contains(err.Error(), b.want) {
			t.Errorf("EngineMode() with Engine=%q Weights=%v: err %v, want substring %q",
				cfg.Engine, cfg.Weights != nil, err, b.want)
		}
		// New must refuse the same configs.
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), b.want) {
			t.Errorf("New() with Engine=%q: err %v, want substring %q", cfg.Engine, err, b.want)
		}
	}
}

// TestSieveEngineMatchesOfflineReference pins the sieve mode's
// determinism end to end: a single-shard service fed the stream in
// order must answer exactly what the one-shot offline sieve replay
// answers (the swap buffer is order-dependent, so this only holds with
// one shard consuming the stream sequentially).
func TestSieveEngineMatchesOfflineReference(t *testing.T) {
	const (
		n, m, k = 40, 3000, 5
		seed    = 17
	)
	inst := workload.Zipf(n, m, 600, 0.9, 0.7, seed)
	edges := stream.Drain(stream.Shuffled(inst.G, 3))

	ref, err := sieve.KCover(stream.NewSlice(edges), n, k)
	if err != nil {
		t.Fatal(err)
	}

	e, err := New(sieveConfig(n, m, k, seed, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < len(edges); i += 113 {
		j := min(i+113, len(edges))
		if _, err := e.Ingest(edges[i:j]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}

	if res.Engine != ModeSieve {
		t.Fatalf("result engine = %q, want sieve", res.Engine)
	}
	if len(res.Sets) != len(ref.Sets) {
		t.Fatalf("service sets %v != offline %v", res.Sets, ref.Sets)
	}
	for i := range res.Sets {
		if res.Sets[i] != ref.Sets[i] {
			t.Fatalf("service sets %v != offline %v", res.Sets, ref.Sets)
		}
	}
	if int(res.EstimatedCoverage) != ref.Covered {
		t.Fatalf("service coverage %v != offline %d", res.EstimatedCoverage, ref.Covered)
	}
	if res.SnapshotEdges != int64(len(edges)) {
		t.Fatalf("snapshot saw %d of %d edges", res.SnapshotEdges, len(edges))
	}

	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine != ModeSieve {
		t.Fatalf("stats engine = %q, want sieve", st.Engine)
	}
	if st.SnapshotKept != ref.EdgesKept {
		t.Fatalf("kept %d edges, offline kept %d", st.SnapshotKept, ref.EdgesKept)
	}
}

// TestSieveSnapshotRestoreRoundTrip covers both persistence paths: the
// raw state blob (ReadRestore, what covserved uses for single-state
// files) and the v2 multi-namespace container.
func TestSieveSnapshotRestoreRoundTrip(t *testing.T) {
	const (
		n, m, k = 30, 1500, 4
		seed    = 23
	)
	inst := workload.Uniform(n, m, 0.08, seed)
	cfg := sieveConfig(n, m, k, seed, 2)

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, e, inst.G, 197, 5)
	var blob bytes.Buffer
	snap, err := e.WriteSnapshot(&blob)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Query(Query{Algo: AlgoKCover, K: k})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Raw blob → ReadRestore → fresh engine.
	restoredCfg, err := ReadRestore(cfg, bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restoredCfg.RestoreState == nil {
		t.Fatal("ReadRestore left RestoreState nil for a sieve blob")
	}
	e2, err := New(restoredCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, err := e2.Query(Query{Algo: AlgoKCover, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if got.EstimatedCoverage != want.EstimatedCoverage || len(got.Sets) != len(want.Sets) {
		t.Fatalf("restored answer %v/%v != original %v/%v",
			got.Sets, got.EstimatedCoverage, want.Sets, want.EstimatedCoverage)
	}
	for i := range got.Sets {
		if got.Sets[i] != want.Sets[i] {
			t.Fatalf("restored sets %v != original %v", got.Sets, want.Sets)
		}
	}
	if got.SnapshotEdges != snap.IngestedEdges {
		t.Fatalf("restored snapshot reports %d edges, wrote %d", got.SnapshotEdges, snap.IngestedEdges)
	}

	// Same dataset through the v2 container.
	multi := NewMulti("sieve-ns")
	if _, err := multi.Create("sieve-ns", cfg); err != nil {
		t.Fatal(err)
	}
	me, _ := multi.Get("sieve-ns")
	ingestAll(t, me, inst.G, 197, 5)
	if _, err := me.Refresh(); err != nil {
		t.Fatal(err)
	}
	var container bytes.Buffer
	if err := multi.WriteSnapshot(&container); err != nil {
		t.Fatal(err)
	}
	multi.Close()

	multi2 := NewMulti("sieve-ns")
	defer multi2.Close()
	if nrestored, err := multi2.RestoreAll(bytes.NewReader(container.Bytes())); err != nil || nrestored != 1 {
		t.Fatalf("RestoreAll: %d, %v", nrestored, err)
	}
	e3, ok := multi2.Get("sieve-ns")
	if !ok {
		t.Fatal("sieve namespace missing after restore")
	}
	if e3.ModeName() != ModeSieve {
		t.Fatalf("restored namespace mode = %q, want sieve", e3.ModeName())
	}
	got2, err := e3.Query(Query{Algo: AlgoKCover, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if got2.EstimatedCoverage != want.EstimatedCoverage {
		t.Fatalf("container-restored coverage %v != original %v",
			got2.EstimatedCoverage, want.EstimatedCoverage)
	}
}

// TestSieveRejectsSketchAlgos exercises the rejection through the full
// engine path, not just ValidateQuery.
func TestSieveRejectsSketchAlgos(t *testing.T) {
	e, err := New(sieveConfig(10, 100, 3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Query(Query{Algo: AlgoOutliers, Lambda: 0.2}); err == nil ||
		!strings.Contains(err.Error(), "not defined on a sieve engine") {
		t.Fatalf("outliers on sieve: %v", err)
	}
	if _, err := e.Query(Query{Algo: AlgoWeightedKCover, K: 2}); err == nil ||
		!strings.Contains(err.Error(), "requires a weighted engine") {
		t.Fatalf("wkcover on sieve: %v", err)
	}
}
