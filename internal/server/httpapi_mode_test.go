package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/sieve"
	"repro/internal/stream"
	"repro/internal/workload"
)

// TestHTTPSieveNamespace drives the sieve mode through the HTTP plane:
// namespace creation with "engine": "sieve", ingest, kcover (checked
// against the offline sieve replay), the X-Cov-Engine state header, and
// the per-mode algo rejections as status codes.
func TestHTTPSieveNamespace(t *testing.T) {
	const n, m, k = 25, 1200, 4
	multi := NewMulti("")
	defer multi.Close()
	ts := httptest.NewServer(NewMultiHandler(multi, HTTPOptions{}))
	defer ts.Close()

	// Invalid engine configs are 400s, not namespaces.
	for _, body := range []string{
		`{"name":"bad","num_sets":10,"k":3,"engine":"sieve","weights":{"table":[1,2]}}`,
		`{"name":"bad","num_sets":10,"k":3,"engine":"turbo"}`,
	} {
		if resp, out := doJSON(t, "POST", ts.URL+"/v1/ns", body); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST /v1/ns %s: got %d (%s), want 400", body, resp.StatusCode, out)
		}
	}

	resp, out := doJSON(t, "POST", ts.URL+"/v1/ns",
		`{"name":"sv","num_sets":25,"k":4,"eps":0.4,"seed":5,"num_elems":1200,"shards":1,"engine":"sieve"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create sieve namespace: got %d: %s", resp.StatusCode, out)
	}
	var info NamespaceInfo
	if err := json.Unmarshal(out, &info); err != nil {
		t.Fatal(err)
	}
	if info.Engine != ModeSieve {
		t.Fatalf("created namespace reports engine %q, want sieve", info.Engine)
	}

	inst := workload.Uniform(n, m, 0.1, 9)
	edges := stream.Drain(stream.Shuffled(inst.G, 2))
	pairs := make([][2]uint32, len(edges))
	for i, ed := range edges {
		pairs[i] = [2]uint32{ed.Set, ed.Elem}
	}
	body, _ := json.Marshal(ingestRequest{Edges: pairs})
	ir, err := http.Post(ts.URL+"/v1/ns/sv/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ir.Body.Close()
	if ir.StatusCode != http.StatusOK {
		t.Fatalf("ingest into sieve namespace: %s", ir.Status)
	}

	ref, err := sieve.KCover(stream.NewSlice(edges), n, k)
	if err != nil {
		t.Fatal(err)
	}
	resp, out = doJSON(t, "GET", ts.URL+"/v1/ns/sv/query?algo=kcover&k=4&refresh=1", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sieve query: %d: %s", resp.StatusCode, out)
	}
	var qr QueryResult
	if err := json.Unmarshal(out, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Engine != ModeSieve {
		t.Fatalf("query result engine %q, want sieve", qr.Engine)
	}
	if int(qr.EstimatedCoverage) != ref.Covered {
		t.Fatalf("HTTP sieve coverage %v != offline %d", qr.EstimatedCoverage, ref.Covered)
	}

	// Algos the sieve does not serve are client errors.
	if resp, _ := doJSON(t, "GET", ts.URL+"/v1/ns/sv/query?algo=outliers&lambda=0.2", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("outliers on sieve over HTTP: got %d, want 400", resp.StatusCode)
	}

	// The binary state endpoint advertises the mode.
	sr, err := http.Get(ts.URL + "/v1/ns/sv/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	blob := new(bytes.Buffer)
	if _, err := blob.ReadFrom(sr.Body); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if sr.StatusCode != http.StatusOK {
		t.Fatalf("GET snapshot: %s", sr.Status)
	}
	if got := sr.Header.Get(HeaderEngine); got != string(ModeSieve) {
		t.Fatalf("%s = %q, want %q", HeaderEngine, got, ModeSieve)
	}
	// The blob is a sieve buffer, decodable by the sieve mode.
	cfg := Config{NumSets: n, NumElems: m, K: k, Eps: 0.4, Seed: 5, Engine: ModeSieve}
	mode, err := cfg.EngineMode()
	if err != nil {
		t.Fatal(err)
	}
	st, err := mode.ReadState(bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().EdgesSeen != int64(len(edges)) {
		t.Fatalf("state blob saw %d edges, want %d", st.Stats().EdgesSeen, len(edges))
	}
}
