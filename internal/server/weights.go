package server

import (
	"fmt"
	"math"
)

// WeightConfig switches an engine into weighted-coverage mode: elements
// carry non-negative weights and queries maximize the total weight of
// the covered elements instead of their count. Weights are namespace
// configuration — a deterministic element → weight mapping fixed at
// engine creation — so every shard, merge, snapshot and restart
// resolves the same weight for the same element, which is what makes
// the sharded weighted service bit-identical to the one-shot
// streamcover.MaxWeightedCoverage run (see internal/weighted).
type WeightConfig struct {
	// Table[e] is the weight of element e for e < len(Table). Entries
	// must be finite and non-negative; zero-weight elements are ignored
	// by the sketch (they never contribute coverage).
	Table []float64
	// Default is the weight of every element at or beyond len(Table).
	// Zero (the zero value) ignores such elements; must be finite and
	// non-negative.
	Default float64
}

// Validate checks the weight ranges.
func (w *WeightConfig) Validate() error {
	if w == nil {
		return nil
	}
	if w.Default < 0 || math.IsNaN(w.Default) || math.IsInf(w.Default, 0) {
		return fmt.Errorf("server: bad default weight %v", w.Default)
	}
	for e, v := range w.Table {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("server: bad weight %v for element %d", v, e)
		}
	}
	return nil
}

// clone deep-copies the config so a long-lived engine never aliases a
// caller-owned table.
func (w *WeightConfig) clone() *WeightConfig {
	if w == nil {
		return nil
	}
	return &WeightConfig{Table: append([]float64(nil), w.Table...), Default: w.Default}
}

// Fn returns the element-weight oracle the config describes.
func (w *WeightConfig) Fn() func(uint32) float64 {
	table, def := w.Table, w.Default
	return func(e uint32) float64 {
		if int(e) < len(table) {
			return table[e]
		}
		return def
	}
}

// Signature fingerprints the weight mapping: a SplitMix64-style fold
// over the table bits, the default and the length. Two engines only
// share a query cache when their weights agree, and a cluster peer is
// only merged when its weight signature equals the local one — weights
// that disagree would make the per-class scaled union silently wrong.
func (w *WeightConfig) Signature() uint64 {
	if w == nil {
		return 0
	}
	mix := func(h, v uint64) uint64 {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xbf58476d1ce4e5b9
		return h ^ (h >> 31)
	}
	h := mix(uint64(len(w.Table)), math.Float64bits(w.Default))
	for _, v := range w.Table {
		h = mix(h, math.Float64bits(v))
	}
	// Reserve 0 for "unweighted" so a weighted engine never collides
	// with the unweighted key space.
	if h == 0 {
		h = 1
	}
	return h
}
