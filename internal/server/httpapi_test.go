package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/workload"
)

func postEdges(t *testing.T, ts *httptest.Server, pairs [][2]uint32) ingestResponse {
	t.Helper()
	body, _ := json.Marshal(ingestRequest{Edges: pairs})
	resp, err := http.Post(ts.URL+"/v1/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/edges: %s", resp.Status)
	}
	var out ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHTTPEndpoints(t *testing.T) {
	inst := workload.PlantedKCover(30, 2000, 3, 0.9, 25, 9)
	e, err := New(testConfig(30, 2000, 3, 7, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	snapPath := filepath.Join(t.TempDir(), "state.skch")
	ts := httptest.NewServer(NewHTTPHandler(e, HTTPOptions{SnapshotPath: snapPath}))
	defer ts.Close()

	// Ingest everything in batches of pairs.
	edges := stream.Drain(stream.Shuffled(inst.G, 1))
	pairs := make([][2]uint32, len(edges))
	for i, ed := range edges {
		pairs[i] = [2]uint32{ed.Set, ed.Elem}
	}
	total := int64(0)
	for i := 0; i < len(pairs); i += 300 {
		j := i + 300
		if j > len(pairs) {
			j = len(pairs)
		}
		r := postEdges(t, ts, pairs[i:j])
		if r.Accepted != j-i {
			t.Fatalf("accepted %d of %d", r.Accepted, j-i)
		}
		total = r.IngestedTotal
	}
	if total != int64(len(pairs)) {
		t.Fatalf("ingested_total %d != %d", total, len(pairs))
	}

	// Snapshot: merges and persists.
	resp, err := http.Post(ts.URL+"/v1/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshotResponse
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Seq == 0 || snap.IngestedEdges != int64(len(pairs)) || snap.Persisted != snapPath {
		t.Fatalf("snapshot response %+v", snap)
	}
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.ReadSketch(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if restored.Edges() != snap.KeptEdges {
		t.Fatalf("persisted sketch has %d edges, response says %d", restored.Edges(), snap.KeptEdges)
	}

	// Query.
	resp, err = http.Get(ts.URL + "/v1/query?algo=kcover&k=3")
	if err != nil {
		t.Fatal(err)
	}
	var qr QueryResult
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(qr.Sets) == 0 || qr.SketchCoverage <= 0 {
		t.Fatalf("query result %+v", qr)
	}

	// Stats.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Shards != 4 || st.IngestedEdges != int64(len(pairs)) {
		t.Fatalf("stats %+v", st)
	}

	// Health.
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
}

func TestHTTPErrors(t *testing.T) {
	e, err := New(testConfig(10, 100, 2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ts := httptest.NewServer(NewHTTPHandler(e, HTTPOptions{MaxBatchEdges: 4}))
	defer ts.Close()

	check := func(method, path, body string, want int) {
		t.Helper()
		req, _ := http.NewRequest(method, ts.URL+path, bytes.NewReader([]byte(body)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s %s: got %d want %d", method, path, resp.StatusCode, want)
		}
	}
	check("GET", "/v1/edges", "", http.StatusMethodNotAllowed)
	check("POST", "/v1/edges", "{not json", http.StatusBadRequest)
	check("POST", "/v1/edges", `{"edges":[[0,0],[1,1],[2,2],[3,3],[4,4]]}`, http.StatusRequestEntityTooLarge)
	check("POST", "/v1/edges", `{"edges":[[99,0]]}`, http.StatusBadRequest) // set id out of range
	check("POST", "/v1/edges", `{"edges":[[0,0]]} trailing garbage`, http.StatusBadRequest)
	check("POST", "/v1/edges", `{"edges":[[0,0]]}{"edges":[[1,1]]}`, http.StatusBadRequest)
	check("POST", "/v1/query", "", http.StatusMethodNotAllowed)
	check("GET", "/v1/query?algo=kcover&k=zero", "", http.StatusBadRequest)
	check("GET", "/v1/query?algo=outliers&lambda=nope", "", http.StatusBadRequest)
	check("GET", fmt.Sprintf("/v1/query?algo=%s", "bogus"), "", http.StatusBadRequest)
	check("DELETE", "/v1/snapshot", "", http.StatusMethodNotAllowed)
	check("POST", "/v1/stats", "", http.StatusMethodNotAllowed)
	check("POST", "/v1/healthz", "", http.StatusMethodNotAllowed)
}

func TestHTTPMethodNotAllowedSetsAllow(t *testing.T) {
	e, err := New(testConfig(10, 100, 2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ts := httptest.NewServer(NewHTTPHandler(e, HTTPOptions{}))
	defer ts.Close()

	cases := []struct {
		method, path, allow string
	}{
		{"GET", "/v1/edges", "POST, DELETE"},
		{"DELETE", "/v1/query", "GET"},
		{"PUT", "/v1/stats", "GET"},
		{"DELETE", "/v1/snapshot", "GET, POST"},
		{"POST", "/v1/healthz", "GET, HEAD"},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: got %d want 405", c.method, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Fatalf("%s %s: Allow = %q, want %q", c.method, c.path, got, c.allow)
		}
	}
}

func TestHTTPIngestBodyLimit(t *testing.T) {
	e, err := New(testConfig(10, 100, 2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ts := httptest.NewServer(NewHTTPHandler(e, HTTPOptions{MaxBodyBytes: 64}))
	defer ts.Close()

	big := `{"edges":[` // > 64 bytes of valid JSON
	for i := 0; i < 20; i++ {
		if i > 0 {
			big += ","
		}
		big += "[1,2]"
	}
	big += `]}`
	resp, err := http.Post(ts.URL+"/v1/edges", "application/json", bytes.NewReader([]byte(big)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: got %d want 413", resp.StatusCode)
	}
	// A small batch still goes through.
	resp, err = http.Post(ts.URL+"/v1/edges", "application/json",
		bytes.NewReader([]byte(`{"edges":[[1,2]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body: got %d want 200", resp.StatusCode)
	}
}
