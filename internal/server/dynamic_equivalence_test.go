package server

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/baselines"
	"repro/internal/bipartite"
	"repro/internal/stream"
	"repro/internal/workload"
)

// The insert-only equivalence suite for the dynamic mode: on streams
// small enough that both structures are exact — the sketch keeps every
// edge below its budget, the sampler decodes at level 0 — the two
// engines answer from the same full incidence graph, so their kcover
// answers must agree exactly: same sets, same covered count, same
// estimate. This is the regime contract NewDynamicService documents,
// pinned across workload generators × shard counts, through both the
// AddEdges and the ApplyOps ingest paths, and across a snapshot
// write/restore round trip.

// eqWorkloads are small-instance generators: every one keeps the total
// edge count within both exact regimes (sketch budget 60·n, sampler
// level-0 capacity ≈ cells/2 = 60·n).
func eqWorkloads() []workload.Instance {
	return []workload.Instance{
		workload.Uniform(50, 300, 0.04, 11),
		workload.Zipf(50, 300, 60, 0.9, 0.7, 12),
		workload.PlantedKCover(40, 300, 5, 0.8, 12, 13),
		workload.UniformFixedSize(30, 300, 20, 14),
	}
}

func eqConfig(n, m, shards int) Config {
	return Config{
		NumSets:    n,
		K:          5,
		Eps:        0.4,
		Seed:       9,
		NumElems:   m,
		EdgeBudget: 60 * n,
		Shards:     shards,
	}
}

// eqAnswer ingests edges into a fresh engine of the given config (via
// IngestOps when ops is set, Ingest otherwise) and answers kcover.
func eqAnswer(t *testing.T, cfg Config, edges []bipartite.Edge, ops bool) (*QueryResult, []byte) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if ops {
		if _, err := e.IngestOps(bipartite.Inserts(edges)); err != nil {
			t.Fatal(err)
		}
	} else {
		if _, err := e.Ingest(edges); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Query(Query{Algo: AlgoKCover, K: cfg.K, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	return res, stateBytes(t, e)
}

func assertSameAnswer(t *testing.T, label string, got, want *QueryResult) {
	t.Helper()
	if fmt.Sprint(got.Sets) != fmt.Sprint(want.Sets) {
		t.Fatalf("%s: sets %v != %v", label, got.Sets, want.Sets)
	}
	if got.SketchCoverage != want.SketchCoverage {
		t.Fatalf("%s: covered %d != %d", label, got.SketchCoverage, want.SketchCoverage)
	}
	if got.EstimatedCoverage != want.EstimatedCoverage {
		t.Fatalf("%s: estimate %v != %v", label, got.EstimatedCoverage, want.EstimatedCoverage)
	}
}

func TestDynamicInsertOnlyMatchesSketch(t *testing.T) {
	for _, inst := range eqWorkloads() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			n, m := inst.G.NumSets(), inst.G.NumElems()
			edges := stream.Drain(stream.Shuffled(inst.G, 7))

			// The single-shard sketch answer anchors the whole matrix.
			ref, _ := eqAnswer(t, eqConfig(n, m, 1), edges, false)
			if len(ref.Sets) == 0 {
				t.Fatal("reference answer is empty; the workload tests nothing")
			}

			for _, shards := range []int{1, 3, 5} {
				cfg := eqConfig(n, m, shards)
				sketch, _ := eqAnswer(t, cfg, edges, false)
				assertSameAnswer(t, fmt.Sprintf("sketch shards=%d vs ref", shards), sketch, ref)

				dynCfg := cfg
				dynCfg.Engine = ModeDynamic
				dyn, dynState := eqAnswer(t, dynCfg, edges, true)
				assertSameAnswer(t, fmt.Sprintf("dynamic shards=%d vs sketch", shards), dyn, ref)
				if dyn.Engine != ModeDynamic {
					t.Fatalf("dynamic answer reports engine %q", dyn.Engine)
				}

				// The AddEdges path (edge ingest into a dynamic engine) must
				// land in the same sampler state as the op path: linearity
				// again, pinned as byte equality of the canonical snapshot.
				_, viaEdges := eqAnswer(t, dynCfg, edges, false)
				if !bytes.Equal(dynState, viaEdges) {
					t.Fatalf("shards=%d: IngestOps and Ingest leave different dynamic states", shards)
				}

				// Snapshot write/restore round trip: the restored engine
				// re-serializes byte-identically and answers identically.
				rcfg, err := ReadRestore(dynCfg, bytes.NewReader(dynState))
				if err != nil {
					t.Fatalf("shards=%d: ReadRestore: %v", shards, err)
				}
				rec, err := New(rcfg)
				if err != nil {
					t.Fatal(err)
				}
				if got := stateBytes(t, rec); !bytes.Equal(got, dynState) {
					rec.Close()
					t.Fatalf("shards=%d: restored dynamic state re-serializes differently", shards)
				}
				res, err := rec.Query(Query{Algo: AlgoKCover, K: dynCfg.K, Refresh: true})
				rec.Close()
				if err != nil {
					t.Fatal(err)
				}
				assertSameAnswer(t, fmt.Sprintf("restored dynamic shards=%d", shards), res, ref)
			}
		})
	}
}

// TestDynamicMatchesOfflineL0KCover compares the dynamic engine against
// the offline Appendix-D baseline in the regime where both are exact:
// with per-set KMV capacity t ≥ m every union estimate is an exact
// count, so the baseline's greedy walks exactly the marginal-gain
// sequence the engine's greedy walks, and the answers coincide.
func TestDynamicMatchesOfflineL0KCover(t *testing.T) {
	for _, inst := range eqWorkloads() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			n, m := inst.G.NumSets(), inst.G.NumElems()
			edges := stream.Drain(stream.Shuffled(inst.G, 7))

			dynCfg := eqConfig(n, m, 3)
			dynCfg.Engine = ModeDynamic
			dyn, _ := eqAnswer(t, dynCfg, edges, true)

			// Eps 0.1 → t = 301 ≥ m = 300: exact sketches, exact unions.
			out := baselines.L0KCover(stream.NewSlice(edges), n, dynCfg.K, baselines.L0Options{
				Eps: 0.1, Seed: 9, Reps: 2,
			})
			if fmt.Sprint(out.Sets) != fmt.Sprint(dyn.Sets) {
				t.Fatalf("l0kcover sets %v != dynamic %v", out.Sets, dyn.Sets)
			}
			if int(out.Estimate) != dyn.SketchCoverage {
				t.Fatalf("l0kcover estimate %v != dynamic covered %d", out.Estimate, dyn.SketchCoverage)
			}
		})
	}
}
