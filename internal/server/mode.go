package server

// This file is the pluggable engine-mode plane. The service used to
// hard-code a two-way branch ("exactly one of merged/bank is non-nil")
// across the engine, the snapshot framing, the HTTP query plane and the
// cluster blob validation; every branch point now dispatches through
// two interfaces instead:
//
//   - ShardState is the per-shard (and per-snapshot) state object with
//     the lifecycle verbs all modes share: batched ingest, deep clone,
//     merge, uniform accounting, the consumed-edge override the
//     coordinator uses to pin true totals, and serialization.
//   - Mode is the engine-mode singleton: it names the mode, fingerprints
//     its configuration for cluster compatibility, constructs / merges /
//     decodes shard states, materializes a merged state into the
//     queryable graph, and executes validated queries against a
//     Snapshot.
//
// Three modes implement the plane: "sketch" (the paper's H≤n sketch,
// the default), "weighted" (PR 5's per-weight-class bank, selected by
// Config.Weights) and "sieve" (the constant-memory swap buffer of
// internal/sieve, selected by Config.Engine). The two pre-existing
// modes are pure re-expressions — same types, same merge policy, same
// wire bytes — so their behavior and snapshot frames are unchanged.

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/sieve"
	"repro/internal/weighted"
)

// ModeName identifies an engine mode (Config.Engine, the HTTP "engine"
// field, and the X-Cov-Engine cluster header).
type ModeName string

const (
	// ModeSketch is the default: one H≤n sketch per shard, exactly the
	// paper's Algorithm 3 summary (internal/core).
	ModeSketch ModeName = "sketch"
	// ModeWeighted serves weighted coverage: one sketch per geometric
	// weight class (internal/weighted). Selected by Config.Weights.
	ModeWeighted ModeName = "weighted"
	// ModeSieve is the constant-memory swap buffer (internal/sieve): at
	// most K candidate sets per shard, single-pass, order-dependent.
	ModeSieve ModeName = "sieve"
	// ModeDynamic serves insert/delete (turnstile) streams with the
	// leveled L0 edge sampler (internal/l0), after Chakrabarti–McGregor–
	// Wirth. The only mode whose ApplyOps accepts deletes.
	ModeDynamic ModeName = "dynamic"
)

// ErrDeletesUnsupported is returned (wrapped, with the engine name)
// when a delete op reaches an append-only engine mode. The paper's H≤n
// sketch — and the weighted bank and sieve built on the same shape —
// subsample and *discard* stream suffix information; once an edge has
// been dropped by the eviction bar there is nothing to subtract a
// delete from, so these modes reject deletes outright rather than
// silently corrupt their estimates. Only the dynamic mode's linear
// sampler supports retraction.
var ErrDeletesUnsupported = errors.New("deletes unsupported")

// rejectDeletes is the shared ApplyOps implementation for the
// append-only modes: insert-only batches forward to AddEdges, any
// delete fails the whole batch with the typed error.
func rejectDeletes(name ModeName, add func([]bipartite.Edge), ops []bipartite.Op) error {
	if bipartite.HasDeletes(ops) {
		return fmt.Errorf("server: engine %q: %w", name, ErrDeletesUnsupported)
	}
	add(bipartite.InsertEdges(make([]bipartite.Edge, 0, len(ops)), ops))
	return nil
}

// ShardState is the state a single ingest shard owns — and, after a
// coordinator merge, the state a Snapshot carries. The three engine
// modes (H≤n sketch, weighted class bank, sieve swap buffer) implement
// it with the lifecycle verbs they already shared.
type ShardState interface {
	// AddEdges absorbs one routed batch of inserts. Only the owning
	// shard goroutine calls it.
	AddEdges(edges []bipartite.Edge)
	// ApplyOps absorbs one routed op batch (inserts and deletes).
	// Append-only modes return ErrDeletesUnsupported (wrapped) if the
	// batch contains a delete; the engine gates op routing on
	// Mode.SupportsDeletes so shard goroutines never see that error.
	ApplyOps(ops []bipartite.Op) error
	// CloneState returns a deep copy, taken inside the shard mailbox so
	// it is a consistent cut of the shard's stream.
	CloneState() ShardState
	// MergeFrom folds other (a state of the same mode and configuration)
	// into the receiver. The receiver's consumed-edge counter is left
	// untouched — replayed kept edges were already counted upstream.
	MergeFrom(other ShardState) error
	// Stats reports the state's accounting in the uniform core.Stats
	// shape (EdgesSeen/EdgesKept/ElementsKept/PStar/…).
	Stats() core.Stats
	// SetEdgesSeen pins the consumed-edge counter: a merged state only
	// replays kept edges, so the coordinator overrides it with the true
	// ingested total before publishing or persisting.
	SetEdgesSeen(n int64)
	// WriteTo serializes the state — exactly the bytes WriteSnapshot
	// persists and /v1/cluster/sketch serves. Pure reads on a published
	// state.
	WriteTo(w io.Writer) (int64, error)
}

// materialized is a merged state rendered queryable: the bipartite
// graph greedy runs on, the graph-id → original-element mapping, and
// (weighted mode only) the per-element weights of the scaled union.
type materialized struct {
	graph   *bipartite.Graph
	ids     []uint32
	weights []float64
}

// Mode is an engine mode: the factory, merge policy, wire codec, query
// validator/executor and compatibility fingerprint behind one engine
// configuration. Engine, Snapshot, the snapshot-v2 container and the
// cluster exchange all dispatch through it; adding an engine mode means
// implementing Mode + ShardState and listing the name in EngineMode.
type Mode interface {
	// Name is the mode's wire name.
	Name() ModeName
	// SupportsDeletes reports whether ApplyOps accepts delete ops. The
	// engine, the HTTP plane and the wire server gate op ingest on it
	// so append-only modes reject deletes before any state mutates.
	SupportsDeletes() bool
	// Signature fingerprints mode configuration that the serialized
	// state cannot carry itself (the weighted mode's weight table; 0
	// otherwise). Cluster peers refuse blobs whose signature disagrees.
	Signature() uint64
	// NewShardState returns an empty state for one ingest shard.
	NewShardState() (ShardState, error)
	// MergeStates folds shard states (owned by the caller) into one
	// merged state without modifying the inputs.
	MergeStates(states []ShardState) (ShardState, error)
	// ReadState decodes WriteTo bytes, validating that the blob was
	// built with this mode's configuration.
	ReadState(r io.Reader) (ShardState, error)
	// Materialize renders a merged state queryable.
	Materialize(st ShardState) (*materialized, error)
	// Execute runs a validated query against a snapshot of this mode.
	Execute(s *Snapshot, q Query) (*QueryResult, error)
}

// EngineMode resolves the config to its engine mode: Config.Engine when
// set ("" defaults to "weighted" iff Weights is configured, else
// "sketch"), validated against the weight configuration — the weighted
// mode requires Weights, the other modes refuse it.
func (c Config) EngineMode() (Mode, error) {
	name := c.engineName()
	switch name {
	case ModeSketch, ModeSieve, ModeDynamic:
		if c.Weights != nil {
			return nil, fmt.Errorf("server: engine %q does not take Weights (use the weighted engine)", name)
		}
	case ModeWeighted:
		if c.Weights == nil {
			return nil, fmt.Errorf("server: the weighted engine requires Weights")
		}
	default:
		return nil, fmt.Errorf("server: unknown engine %q (known: %q, %q, %q, %q)",
			name, ModeSketch, ModeWeighted, ModeSieve, ModeDynamic)
	}
	switch name {
	case ModeWeighted:
		return weightedMode{
			numSets: c.NumSets,
			k:       c.K,
			opt:     c.WeightedOptions(),
			fn:      c.Weights.Fn(),
			sig:     c.Weights.Signature(),
		}, nil
	case ModeSieve:
		return sieveMode{numSets: c.NumSets, k: c.K}, nil
	case ModeDynamic:
		return dynamicMode{numSets: c.NumSets, params: c.DynamicParams()}, nil
	}
	return sketchMode{params: c.Params()}, nil
}

// engineName resolves the effective mode name without validating it.
func (c Config) engineName() ModeName {
	if c.Engine != "" {
		return c.Engine
	}
	if c.Weights != nil {
		return ModeWeighted
	}
	return ModeSketch
}

// ---- sketch mode (unweighted H≤n sketch, the default) ----

type sketchState struct{ sk *core.Sketch }

func (s sketchState) AddEdges(edges []bipartite.Edge) { s.sk.AddEdges(edges) }
func (s sketchState) ApplyOps(ops []bipartite.Op) error {
	return rejectDeletes(ModeSketch, s.AddEdges, ops)
}
func (s sketchState) CloneState() ShardState { return sketchState{s.sk.Clone()} }
func (s sketchState) Stats() core.Stats      { return s.sk.Stats() }
func (s sketchState) SetEdgesSeen(n int64)   { s.sk.SetEdgesSeen(n) }
func (s sketchState) WriteTo(w io.Writer) (int64, error) {
	return s.sk.WriteTo(w)
}

func (s sketchState) MergeFrom(other ShardState) error {
	o, ok := other.(sketchState)
	if !ok {
		return fmt.Errorf("server: cannot merge %T state into a sketch engine", other)
	}
	return s.sk.Merge(o.sk)
}

type sketchMode struct{ params core.Params }

func (m sketchMode) Name() ModeName        { return ModeSketch }
func (m sketchMode) SupportsDeletes() bool { return false }
func (m sketchMode) Signature() uint64     { return 0 }

func (m sketchMode) NewShardState() (ShardState, error) {
	sk, err := core.NewSketch(m.params)
	if err != nil {
		return nil, err
	}
	return sketchState{sk}, nil
}

func (m sketchMode) MergeStates(states []ShardState) (ShardState, error) {
	sketches := make([]*core.Sketch, len(states))
	for i, st := range states {
		s, ok := st.(sketchState)
		if !ok {
			return nil, fmt.Errorf("server: cannot merge %T state into a sketch engine", st)
		}
		sketches[i] = s.sk
	}
	// Parallel tree reduction (core.MergeAll); the inputs are read-only.
	merged, err := core.MergeAll(m.params, sketches...)
	if err != nil {
		return nil, err
	}
	return sketchState{merged}, nil
}

func (m sketchMode) ReadState(r io.Reader) (ShardState, error) {
	sk, err := core.ReadSketch(r)
	if err != nil {
		return nil, err
	}
	if sk.Params() != m.params {
		return nil, fmt.Errorf("sketch parameter mismatch (peer built with different options)")
	}
	return sketchState{sk}, nil
}

func (m sketchMode) Materialize(st ShardState) (*materialized, error) {
	s, ok := st.(sketchState)
	if !ok {
		return nil, fmt.Errorf("server: cannot materialize %T state on a sketch engine", st)
	}
	g, ids := s.sk.Graph()
	return &materialized{graph: g, ids: ids}, nil
}

func (m sketchMode) Execute(snap *Snapshot, q Query) (*QueryResult, error) {
	var res greedy.Result
	switch q.Algo {
	case AlgoKCover:
		res = greedy.MaxCover(snap.graph, q.K)
	case AlgoOutliers:
		// Ceiling, not truncation: a truncated target can leave the
		// covered fraction strictly below 1−λ (e.g. λ=0.001 over 999
		// elements truncates 998.001 to 998, i.e. 998/999 < 0.999). The
		// (1−1e-12) relative tolerance keeps float noise from rounding an
		// exactly-integral product up (10·0.3 evaluates above 3.0, which
		// a bare Ceil would turn into a target of 4).
		target := int(math.Ceil(float64(snap.graph.CoveredElems()) * (1 - q.Lambda) * (1 - 1e-12)))
		res = greedy.PartialCover(snap.graph, target)
	case AlgoGreedy:
		res = greedy.SetCover(snap.graph)
	}
	st := snap.state.Stats()
	return &QueryResult{
		Algo:              q.Algo,
		Sets:              res.Sets,
		SketchCoverage:    res.Covered,
		EstimatedCoverage: safeEstimate(res.Covered, st.PStar),
		SampledElements:   st.ElementsKept,
		PStar:             st.PStar,
		SnapshotSeq:       snap.Seq,
		SnapshotEdges:     snap.IngestedEdges,
	}, nil
}

// ---- weighted mode (per-weight-class bank, Config.Weights) ----

type bankState struct{ bank *weighted.Bank }

func (s bankState) AddEdges(edges []bipartite.Edge) { s.bank.AddEdges(edges) }
func (s bankState) ApplyOps(ops []bipartite.Op) error {
	return rejectDeletes(ModeWeighted, s.AddEdges, ops)
}
func (s bankState) CloneState() ShardState { return bankState{s.bank.Clone()} }
func (s bankState) Stats() core.Stats      { return s.bank.Stats() }
func (s bankState) SetEdgesSeen(n int64)   { s.bank.SetEdgesSeen(n) }
func (s bankState) WriteTo(w io.Writer) (int64, error) {
	return s.bank.WriteTo(w)
}

func (s bankState) MergeFrom(other ShardState) error {
	o, ok := other.(bankState)
	if !ok {
		return fmt.Errorf("server: cannot merge %T state into a weighted engine", other)
	}
	return s.bank.Merge(o.bank)
}

type weightedMode struct {
	numSets, k int
	opt        weighted.Options
	fn         func(uint32) float64
	sig        uint64
}

func (m weightedMode) Name() ModeName        { return ModeWeighted }
func (m weightedMode) SupportsDeletes() bool { return false }
func (m weightedMode) Signature() uint64     { return m.sig }

func (m weightedMode) NewShardState() (ShardState, error) {
	bk, err := weighted.NewBank(m.numSets, m.k, m.opt, m.fn)
	if err != nil {
		return nil, err
	}
	return bankState{bk}, nil
}

func (m weightedMode) MergeStates(states []ShardState) (ShardState, error) {
	banks := make([]*weighted.Bank, len(states))
	for i, st := range states {
		s, ok := st.(bankState)
		if !ok {
			return nil, fmt.Errorf("server: cannot merge %T state into a weighted engine", st)
		}
		banks[i] = s.bank
	}
	merged, err := weighted.MergeBanks(m.numSets, m.k, m.opt, m.fn, banks...)
	if err != nil {
		return nil, err
	}
	return bankState{merged}, nil
}

func (m weightedMode) ReadState(r io.Reader) (ShardState, error) {
	bk, err := weighted.ReadBank(r, m.numSets, m.k, m.opt, m.fn)
	if err != nil {
		return nil, err
	}
	return bankState{bk}, nil
}

func (m weightedMode) Materialize(st ShardState) (*materialized, error) {
	s, ok := st.(bankState)
	if !ok {
		return nil, fmt.Errorf("server: cannot materialize %T state on a weighted engine", st)
	}
	in, ids, err := s.bank.Assemble()
	if err != nil {
		return nil, err
	}
	return &materialized{graph: in.G, ids: ids, weights: in.W}, nil
}

func (m weightedMode) Execute(snap *Snapshot, q Query) (*QueryResult, error) {
	res := weighted.MaxCover(weighted.Instance{G: snap.graph, W: snap.weights}, q.K)
	return &QueryResult{
		Algo:              q.Algo,
		Sets:              res.Sets,
		SketchCoverage:    res.CoveredElems,
		EstimatedCoverage: res.Covered, // the weighted greedy scales per class already
		SampledElements:   snap.graph.NumElems(),
		PStar:             snap.pStar(),
		Weighted:          true,
		WeightClasses:     snap.Bank().Classes(),
		SnapshotSeq:       snap.Seq,
		SnapshotEdges:     snap.IngestedEdges,
	}, nil
}

// ---- sieve mode (constant-memory swap buffer, Config.Engine) ----

type sieveState struct{ buf *sieve.Buffer }

func (s sieveState) AddEdges(edges []bipartite.Edge) { s.buf.AddEdges(edges) }
func (s sieveState) ApplyOps(ops []bipartite.Op) error {
	return rejectDeletes(ModeSieve, s.AddEdges, ops)
}
func (s sieveState) CloneState() ShardState { return sieveState{s.buf.Clone()} }
func (s sieveState) Stats() core.Stats      { return s.buf.Stats() }
func (s sieveState) SetEdgesSeen(n int64)   { s.buf.SetEdgesSeen(n) }
func (s sieveState) WriteTo(w io.Writer) (int64, error) {
	return s.buf.WriteTo(w)
}

func (s sieveState) MergeFrom(other ShardState) error {
	o, ok := other.(sieveState)
	if !ok {
		return fmt.Errorf("server: cannot merge %T state into a sieve engine", other)
	}
	return s.buf.Merge(o.buf)
}

type sieveMode struct{ numSets, k int }

func (m sieveMode) Name() ModeName        { return ModeSieve }
func (m sieveMode) SupportsDeletes() bool { return false }
func (m sieveMode) Signature() uint64     { return 0 }

func (m sieveMode) NewShardState() (ShardState, error) {
	buf, err := sieve.NewBuffer(m.numSets, m.k)
	if err != nil {
		return nil, err
	}
	return sieveState{buf}, nil
}

func (m sieveMode) MergeStates(states []ShardState) (ShardState, error) {
	fresh, err := sieve.NewBuffer(m.numSets, m.k)
	if err != nil {
		return nil, err
	}
	// Canonical fold: each state's kept edges replay through the swap
	// rule in ascending (set, elem) order, states in shard order. Not
	// order-invariant over the original streams (the sieve trades that
	// for its constant buffer) but deterministic, and the single-state
	// fold reproduces the state exactly — the shards=1 service answer
	// therefore matches the one-shot sieve.KCover reference.
	for _, st := range states {
		s, ok := st.(sieveState)
		if !ok {
			return nil, fmt.Errorf("server: cannot merge %T state into a sieve engine", st)
		}
		if err := fresh.Merge(s.buf); err != nil {
			return nil, err
		}
	}
	return sieveState{fresh}, nil
}

func (m sieveMode) ReadState(r io.Reader) (ShardState, error) {
	buf, err := sieve.ReadBuffer(r, m.numSets, m.k)
	if err != nil {
		return nil, err
	}
	return sieveState{buf}, nil
}

func (m sieveMode) Materialize(st ShardState) (*materialized, error) {
	s, ok := st.(sieveState)
	if !ok {
		return nil, fmt.Errorf("server: cannot materialize %T state on a sieve engine", st)
	}
	g, ids := s.buf.Graph()
	return &materialized{graph: g, ids: ids}, nil
}

func (m sieveMode) Execute(snap *Snapshot, q Query) (*QueryResult, error) {
	res := greedy.MaxCover(snap.graph, q.K)
	return &QueryResult{
		Algo:           q.Algo,
		Sets:           res.Sets,
		SketchCoverage: res.Covered,
		// The buffer holds true element ids (no subsampling): coverage of
		// the buffered universe is exact, so the estimate is the count
		// itself and p* is 1.
		EstimatedCoverage: float64(res.Covered),
		SampledElements:   snap.graph.NumElems(),
		PStar:             1,
		Engine:            ModeSieve,
		SnapshotSeq:       snap.Seq,
		SnapshotEdges:     snap.IngestedEdges,
	}, nil
}
