package server

import (
	"bytes"
	"net/http"
	"sort"
	"strconv"
)

// This file is the observability plane: GET /metrics in the Prometheus
// text exposition format (v0.0.4), surfacing every namespace's cheap
// engine counters (Engine.Counters — atomic reads only, so a scraper
// cannot perturb ingest by riding the shard mailboxes) plus any number
// of extra sources (the wire ingest server contributes its connection,
// frame and backpressure-stall counters).

// MetricsWriter accumulates one scrape in the Prometheus text format.
// Metric families (HELP/TYPE headers) are emitted once, on the first
// sample of each name, so several sources and namespaces can share a
// family as long as their label sets differ.
type MetricsWriter struct {
	buf  bytes.Buffer
	seen map[string]bool
}

// Label is one metric label pair.
type Label struct{ Name, Value string }

func (w *MetricsWriter) sample(name, help, typ string, labels []Label, v float64) {
	if w.seen == nil {
		w.seen = make(map[string]bool)
	}
	if !w.seen[name] {
		w.seen[name] = true
		w.buf.WriteString("# HELP ")
		w.buf.WriteString(name)
		w.buf.WriteByte(' ')
		w.buf.WriteString(help)
		w.buf.WriteString("\n# TYPE ")
		w.buf.WriteString(name)
		w.buf.WriteByte(' ')
		w.buf.WriteString(typ)
		w.buf.WriteByte('\n')
	}
	w.buf.WriteString(name)
	if len(labels) > 0 {
		w.buf.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.buf.WriteByte(',')
			}
			w.buf.WriteString(l.Name)
			w.buf.WriteString(`="`)
			// Namespace names are [A-Za-z0-9._-] so no escaping is ever
			// needed for them; escape anyway so arbitrary sources are safe.
			for _, r := range l.Value {
				switch r {
				case '\\', '"':
					w.buf.WriteByte('\\')
					w.buf.WriteRune(r)
				case '\n':
					w.buf.WriteString(`\n`)
				default:
					w.buf.WriteRune(r)
				}
			}
			w.buf.WriteByte('"')
		}
		w.buf.WriteByte('}')
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	w.buf.WriteByte('\n')
}

// Counter emits one sample of a counter family.
func (w *MetricsWriter) Counter(name, help string, labels []Label, v float64) {
	w.sample(name, help, "counter", labels, v)
}

// Gauge emits one sample of a gauge family.
func (w *MetricsWriter) Gauge(name, help string, labels []Label, v float64) {
	w.sample(name, help, "gauge", labels, v)
}

// MetricsSource contributes samples to a /metrics scrape. Sources are
// invoked once per scrape, in registration order, on a writer shared
// with the namespace metrics.
type MetricsSource interface {
	AppendMetrics(w *MetricsWriter)
}

// appendMultiMetrics writes the per-namespace engine counters.
func appendMultiMetrics(w *MetricsWriter, m *Multi) {
	infos := m.List()
	w.Gauge("covserved_namespaces", "Live namespaces in the directory.", nil, float64(len(infos)))
	// Collect the engines under their (sorted) names; List already
	// sorts, and Get may race with deletion, so skip vanished ones.
	names := make([]string, 0, len(infos))
	for _, info := range infos {
		names = append(names, info.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		e, ok := m.Get(name)
		if !ok {
			continue
		}
		c := e.Counters()
		ns := []Label{{"ns", name}}
		w.Counter("covserved_ingested_edges_total", "Edges accepted by Ingest.", ns, float64(c.IngestedEdges))
		w.Counter("covserved_ingest_batches_total", "Ingest calls that delivered edges.", ns, float64(c.Batches))
		w.Counter("covserved_ingest_stalls_total", "Shard-mailbox sends that found the mailbox full (backpressure).", ns, float64(c.IngestStalls))
		w.Counter("covserved_queries_total", "Queries served (cache hits included).", ns, float64(c.Queries))
		w.Counter("covserved_query_cache_hits_total", "Queries answered from the memoized result cache.", ns, float64(c.QueryCacheHits))
		w.Counter("covserved_refreshes_total", "Coordinator merges that actually ran.", ns, float64(c.Refreshes))
		w.Counter("covserved_refresh_skips_total", "Refresh calls satisfied by the idle short-circuit.", ns, float64(c.RefreshSkips))
		w.Counter("covserved_refresh_errors_total", "Background merge failures.", ns, float64(c.RefreshErrors))
		w.Gauge("covserved_snapshot_seq", "Current merged snapshot sequence number.", ns, float64(c.SnapshotSeq))
		w.Gauge("covserved_snapshot_edges", "Ingested-edge count the current snapshot reflects.", ns, float64(c.SnapshotEdges))
	}
}

// NewMetricsHandler serves GET /metrics over a namespace directory plus
// any extra sources. Scrapes read only atomic counters (no shard
// mailbox traffic), so a tight scrape interval cannot perturb ingest or
// queries.
func NewMetricsHandler(m *Multi, sources ...MetricsSource) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			MethodNotAllowed(rw, "GET, HEAD")
			return
		}
		var w MetricsWriter
		appendMultiMetrics(&w, m)
		for _, src := range sources {
			if src != nil {
				src.AppendMetrics(&w)
			}
		}
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rw.Header().Set("Content-Length", strconv.Itoa(w.buf.Len()))
		rw.WriteHeader(http.StatusOK)
		if r.Method != http.MethodHead {
			rw.Write(w.buf.Bytes())
		}
	})
}
