package server

import (
	"container/list"
	"sync"
)

// queryKey identifies a memoizable query outcome. The snapshot seq is
// part of the key, so publishing a new snapshot invalidates every prior
// entry naturally (stale seqs age out of the LRU). The weight signature
// — a fingerprint of the engine's weight table, 0 for unweighted — is
// part of the key too, so a weighted result can never be mistaken for
// an unweighted one (or for a result under different weights) should
// cache entries ever travel between engines. Parameters that do not
// affect an algorithm's answer are normalized away (k for outliers and
// greedy, lambda for kcover and greedy; wkcover is kcover's weighted
// alias) so equivalent requests share one entry.
type queryKey struct {
	seq    uint64
	wsig   uint64
	algo   Algo
	k      int
	lambda float64
}

func newQueryKey(seq, wsig uint64, q Query) queryKey {
	key := queryKey{seq: seq, wsig: wsig, algo: q.Algo}
	switch q.Algo {
	case AlgoKCover, AlgoWeightedKCover:
		key.algo = AlgoKCover // wkcover answers are kcover answers on a weighted engine
		key.k = q.K
	case AlgoOutliers:
		key.lambda = q.Lambda
	}
	return key
}

// queryCache is a small mutex-guarded LRU of QueryResult values. At
// high QPS the same handful of (snapshot, query) pairs repeats, so a
// few dozen entries make repeated queries snapshot-lookup cheap instead
// of greedy-run expensive.
type queryCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent; values are *cacheEntry
	byK map[queryKey]*list.Element
}

type cacheEntry struct {
	key queryKey
	res QueryResult
}

func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		return nil
	}
	return &queryCache{cap: capacity, ll: list.New(), byK: make(map[queryKey]*list.Element)}
}

// get returns a copy of the cached result for key, if present. The Sets
// slice is cloned so callers may mutate their result freely — cached
// answers stay pristine.
func (c *queryCache) get(key queryKey) (*QueryResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	res.Sets = append([]int(nil), res.Sets...)
	return &res, true
}

// put stores res under key, evicting the least-recently-used entry at
// capacity. The Sets slice is cloned into the entry, so the caller's
// result — which Query hands out — stays private.
func (c *queryCache) put(key queryKey, res *QueryResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	stored := *res
	stored.Sets = append([]int(nil), res.Sets...)
	if el, ok := c.byK[key]; ok {
		el.Value.(*cacheEntry).res = stored
		c.ll.MoveToFront(el)
		return
	}
	c.byK[key] = c.ll.PushFront(&cacheEntry{key: key, res: stored})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byK, last.Value.(*cacheEntry).key)
	}
}

// len reports the number of live entries.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
