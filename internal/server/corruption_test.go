package server

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// This file pins the failure mode of every persistence input: a
// truncated or bit-flipped v2 container, v1-format state blob, or WAL
// segment must surface as a clear error (or, for a WAL's torn tail, a
// clean prefix recovery) — never a panic and never silently wrong
// state — across all three engine modes.

// buildContainer returns v2 container bytes holding one namespace per
// engine mode, each with a little ingested data.
func buildContainer(t *testing.T) []byte {
	t.Helper()
	m := NewMulti("")
	defer m.Close()
	for _, mode := range durModes {
		cfg := durConfig(mode)
		e, err := m.Create("ns-"+string(mode), cfg)
		if err != nil {
			t.Fatalf("Create(%s): %v", mode, err)
		}
		for _, b := range durBatches(cfg.NumSets, cfg.NumElems, 3, 5) {
			if _, err := e.Ingest(b); err != nil {
				t.Fatalf("Ingest(%s): %v", mode, err)
			}
		}
	}
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

// restoreContainer attempts a RestoreAll of data into a fresh Multi,
// converting any panic into a test failure.
func restoreContainer(t *testing.T, data []byte) (err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("RestoreAll panicked: %v", r)
		}
	}()
	m := NewMulti("")
	defer m.Close()
	_, err = m.RestoreAll(bytes.NewReader(data))
	return err
}

func TestCorruptContainerTruncated(t *testing.T) {
	data := buildContainer(t)
	if err := restoreContainer(t, data); err != nil {
		t.Fatalf("pristine container failed to restore: %v", err)
	}
	// Every strict prefix must fail with an error: container parsing is
	// length-framed, so any truncation starves a read.
	cuts := []int{0, 1, len(MultiSnapshotMagic), len(MultiSnapshotMagic) + 2}
	for frac := 1; frac < 10; frac++ {
		cuts = append(cuts, len(data)*frac/10)
	}
	cuts = append(cuts, len(data)-1)
	for _, cut := range cuts {
		if cut >= len(data) {
			continue
		}
		if err := restoreContainer(t, data[:cut]); err == nil {
			t.Errorf("container truncated to %d/%d bytes restored without error", cut, len(data))
		}
	}
}

func TestCorruptContainerBitFlips(t *testing.T) {
	data := buildContainer(t)
	// Flip one bit at a spread of positions. A flip must either fail
	// loudly or — only when it lands in a state blob's numeric payload
	// without breaking framing or decode invariants — restore different
	// but well-formed state. It must never panic; restoreContainer
	// converts panics to failures.
	for pos := 0; pos < len(data); pos += 41 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x10
		restoreContainer(t, mut)
	}
	// Flips in the header/count region specifically must error.
	for pos := 0; pos < len(MultiSnapshotMagic); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x10
		if err := restoreContainer(t, mut); err == nil {
			t.Errorf("magic flipped at %d restored without error", pos)
		}
	}
}

// TestCorruptV1BlobPerMode feeds each mode's raw state blob, truncated
// and bit-flipped, to ReadRestore.
func TestCorruptV1BlobPerMode(t *testing.T) {
	for _, mode := range durModes {
		t.Run(string(mode), func(t *testing.T) {
			cfg := durConfig(mode)
			e, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			for _, b := range durBatches(cfg.NumSets, cfg.NumElems, 3, 5) {
				if _, err := e.Ingest(b); err != nil {
					t.Fatalf("Ingest: %v", err)
				}
			}
			var buf bytes.Buffer
			if _, err := e.WriteSnapshot(&buf); err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}
			e.Close()
			blob := buf.Bytes()

			read := func(data []byte) (err error) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("ReadRestore panicked: %v", r)
					}
				}()
				_, err = ReadRestore(cfg, bytes.NewReader(data))
				return err
			}
			if err := read(blob); err != nil {
				t.Fatalf("pristine blob failed: %v", err)
			}
			for _, cut := range []int{0, 1, 4, len(blob) / 3, len(blob) / 2, len(blob) - 1} {
				if cut >= len(blob) {
					continue
				}
				if err := read(blob[:cut]); err == nil {
					t.Errorf("blob truncated to %d/%d bytes decoded without error", cut, len(blob))
				}
			}
			for pos := 0; pos < len(blob); pos += 23 {
				mut := append([]byte(nil), blob...)
				mut[pos] ^= 0x20
				read(mut) // decode error or different state; never a panic
			}
		})
	}
}

// TestCorruptWALPerMode starts a durable engine over damaged WAL
// segments: a flipped frame in the only segment is a torn tail (clean
// prefix recovery), while a flipped or missing middle segment with
// acknowledged successors is a gap and must be a clear error — for all
// three modes.
func TestCorruptWALPerMode(t *testing.T) {
	for _, mode := range durModes {
		t.Run(string(mode), func(t *testing.T) {
			cfg := durConfig(mode)
			batches := durBatches(cfg.NumSets, cfg.NumElems, 4, 5)
			newDurable := func(dir string) (*Engine, error) {
				c := cfg
				// Tiny segments: every batch seals its own file, so damage
				// can land in acknowledged history.
				c.WAL = &WALConfig{Dir: dir, Fsync: "off", SegmentBytes: 1}
				var e *Engine
				var err error
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("New over damaged WAL panicked: %v", r)
						}
					}()
					e, err = New(c)
				}()
				return e, err
			}
			seed := func(t *testing.T) string {
				dir := t.TempDir()
				e, err := newDurable(dir)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				for _, b := range batches {
					if _, err := e.Ingest(b); err != nil {
						t.Fatalf("Ingest: %v", err)
					}
				}
				e.Close()
				return dir
			}
			segments := func(dir string) []string {
				ents, err := os.ReadDir(dir)
				if err != nil {
					t.Fatalf("ReadDir: %v", err)
				}
				var segs []string
				for _, en := range ents {
					if filepath.Ext(en.Name()) == ".wal" {
						segs = append(segs, filepath.Join(dir, en.Name()))
					}
				}
				return segs
			}

			t.Run("flip-middle-segment", func(t *testing.T) {
				dir := seed(t)
				segs := segments(dir)
				if len(segs) < 3 {
					t.Fatalf("want ≥3 segments, got %d", len(segs))
				}
				data, err := os.ReadFile(segs[1])
				if err != nil {
					t.Fatalf("ReadFile: %v", err)
				}
				data[len(data)/2] ^= 0x08
				if err := os.WriteFile(segs[1], data, 0o666); err != nil {
					t.Fatalf("WriteFile: %v", err)
				}
				if e, err := newDurable(dir); err == nil {
					e.Close()
					t.Fatalf("flipped middle segment recovered without error")
				}
			})

			t.Run("missing-middle-segment", func(t *testing.T) {
				dir := seed(t)
				segs := segments(dir)
				if err := os.Remove(segs[1]); err != nil {
					t.Fatalf("Remove: %v", err)
				}
				if e, err := newDurable(dir); err == nil {
					e.Close()
					t.Fatalf("missing middle segment recovered without error")
				}
			})

			t.Run("torn-final-segment", func(t *testing.T) {
				dir := seed(t)
				segs := segments(dir)
				last := segs[len(segs)-1] // the write frontier: tearing it is benign
				fi, err := os.Stat(last)
				if err != nil {
					t.Fatalf("Stat: %v", err)
				}
				if err := os.Truncate(last, fi.Size()-3); err != nil {
					t.Fatalf("Truncate: %v", err)
				}
				e, err := newDurable(dir)
				if err != nil {
					t.Fatalf("torn tail must recover the clean prefix, got error: %v", err)
				}
				want := int64((len(batches) - 1) * 5)
				if got := e.IngestedEdges(); got != want {
					t.Fatalf("recovered %d edges after torn tail, want %d", got, want)
				}
				e.Close()
			})
		})
	}
}

// TestWALReplayRejectsOutOfRangeSets pins the replay-side validation: a
// WAL written under a larger NumSets (or corrupted into one) must be
// rejected with a clear error when replayed into a smaller config.
func TestWALReplayRejectsOutOfRangeSets(t *testing.T) {
	cfg := durConfig(ModeSketch)
	dir := t.TempDir()
	cfg.WAL = &WALConfig{Dir: dir, Fsync: "off"}
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := e.Ingest(durBatches(cfg.NumSets, cfg.NumElems, 1, 5)[0]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	e.Close()
	small := cfg
	small.NumSets = 2
	if e, err := New(small); err == nil {
		e.Close()
		t.Fatalf("replay with out-of-range set ids succeeded")
	} else if want := "out of range"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}
