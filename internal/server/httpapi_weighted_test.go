package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stream"
	"repro/internal/weighted"
	"repro/internal/workload"
)

// TestHTTPWeightedNamespace drives the weighted workload end to end
// over the wire: create a namespace with a weight table, ingest, query
// the weighted kcover route, and verify the answer bit-identically
// against the one-shot weighted run.
func TestHTTPWeightedNamespace(t *testing.T) {
	const n, m, k = 40, 2000, 4
	inst := workload.Zipf(n, m, 500, 0.9, 0.7, 11)
	table := weightTable(m)

	multi := NewMulti("")
	defer multi.Close()
	srv := httptest.NewServer(NewMultiHandler(multi, HTTPOptions{}))
	defer srv.Close()

	createBody, _ := json.Marshal(map[string]interface{}{
		"name": "heavy", "num_sets": n, "num_elems": m, "k": k,
		"eps": 0.4, "seed": 7, "edge_budget": 60 * n,
		"weights": map[string]interface{}{"table": table},
	})
	resp, body := doJSON(t, "POST", srv.URL+"/v1/ns", string(createBody))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create weighted namespace: %s: %s", resp.Status, body)
	}
	var info NamespaceInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if !info.Weighted {
		t.Fatalf("created namespace not marked weighted: %s", body)
	}

	edges := stream.Drain(stream.Shuffled(inst.G, 2))
	pairs := make([][2]uint32, len(edges))
	for i, e := range edges {
		pairs[i] = [2]uint32{e.Set, e.Elem}
	}
	ingestBody, _ := json.Marshal(map[string]interface{}{"edges": pairs})
	if resp, body := doJSON(t, "POST", srv.URL+"/v1/ns/heavy/edges", string(ingestBody)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, body)
	}

	cfg := Config{NumSets: n, NumElems: m, K: k, Eps: 0.4, Seed: 7, EdgeBudget: 60 * n,
		Weights: &WeightConfig{Table: table}}
	oneshot, err := weighted.KCover(stream.NewSlice(edges), n, k, cfg.Weights.Fn(), cfg.WeightedOptions())
	if err != nil {
		t.Fatal(err)
	}

	for _, algo := range []string{"kcover", "wkcover"} {
		resp, body := doJSON(t, "GET",
			fmt.Sprintf("%s/v1/ns/heavy/query?algo=%s&k=%d&refresh=1", srv.URL, algo, k), "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %s: %s: %s", algo, resp.Status, body)
		}
		var res QueryResult
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("query %s: bad JSON %q: %v", algo, body, err)
		}
		if res.EstimatedCoverage != oneshot.EstimatedCoverage || !sameIntSets(res.Sets, oneshot.Sets) {
			t.Fatalf("algo %s: server (%v, %v) != one-shot (%v, %v)",
				algo, res.Sets, res.EstimatedCoverage, oneshot.Sets, oneshot.EstimatedCoverage)
		}
		if !res.Weighted || res.WeightClasses != oneshot.Classes {
			t.Fatalf("algo %s: weighted=%v classes=%d, want true/%d", algo, res.Weighted, res.WeightClasses, oneshot.Classes)
		}
	}

	// Weighted namespaces reject the unweighted-only algorithms.
	if resp, _ := doJSON(t, "GET", srv.URL+"/v1/ns/heavy/query?algo=outliers&lambda=0.1", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("outliers on weighted namespace: %s, want 400", resp.Status)
	}
	// Unweighted namespaces reject wkcover.
	plainBody, _ := json.Marshal(map[string]interface{}{"name": "plain", "num_sets": n, "k": k})
	if resp, body := doJSON(t, "POST", srv.URL+"/v1/ns", string(plainBody)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create plain namespace: %s: %s", resp.Status, body)
	}
	if resp, _ := doJSON(t, "GET", srv.URL+"/v1/ns/plain/query?algo=wkcover&k=2", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wkcover on unweighted namespace: %s, want 400", resp.Status)
	}
}

// TestHTTPWeightedSnapshotPersistAndRestart pins the covserved restart
// story: POST …/snapshot persists the weighted namespace into the v2
// container, and a fresh Multi restoring the file answers identically.
func TestHTTPWeightedSnapshotPersistAndRestart(t *testing.T) {
	const n, m, k = 30, 1500, 3
	inst := workload.Uniform(n, m, 0.05, 13)
	table := weightTable(m)
	path := filepath.Join(t.TempDir(), "state.mcov")

	multi := NewMulti("")
	defer multi.Close()
	srv := httptest.NewServer(NewMultiHandler(multi, HTTPOptions{SnapshotPath: path}))
	defer srv.Close()

	createBody, _ := json.Marshal(map[string]interface{}{
		"name": "heavy", "num_sets": n, "num_elems": m, "k": k,
		"eps": 0.4, "seed": 3, "edge_budget": 50 * n,
		"weights": map[string]interface{}{"table": table},
	})
	if resp, body := doJSON(t, "POST", srv.URL+"/v1/ns", string(createBody)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s: %s", resp.Status, body)
	}
	edges := stream.Drain(stream.Shuffled(inst.G, 1))
	pairs := make([][2]uint32, len(edges))
	for i, e := range edges {
		pairs[i] = [2]uint32{e.Set, e.Elem}
	}
	ingestBody, _ := json.Marshal(map[string]interface{}{"edges": pairs})
	if resp, body := doJSON(t, "POST", srv.URL+"/v1/ns/heavy/edges", string(ingestBody)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, body)
	}
	resp, body := doJSON(t, "GET", fmt.Sprintf("%s/v1/ns/heavy/query?algo=wkcover&k=%d&refresh=1", srv.URL, k), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %s: %s", resp.Status, body)
	}
	var want QueryResult
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}
	var snapResp snapshotResponse
	resp, body = doJSON(t, "POST", srv.URL+"/v1/ns/heavy/snapshot", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %s: %s", resp.Status, body)
	}
	if err := json.Unmarshal(body, &snapResp); err != nil {
		t.Fatal(err)
	}
	if !snapResp.Weighted || snapResp.Persisted != path {
		t.Fatalf("snapshot response %+v, want weighted and persisted to %s", snapResp, path)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restarted := NewMulti("")
	defer restarted.Close()
	if restored, err := restarted.RestoreAll(f); err != nil || restored != 1 {
		t.Fatalf("restored %d namespaces, err %v", restored, err)
	}
	e, ok := restarted.Get("heavy")
	if !ok {
		t.Fatal("weighted namespace missing after restart")
	}
	got, err := e.Query(Query{Algo: AlgoWeightedKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.EstimatedCoverage != want.EstimatedCoverage || !sameIntSets(got.Sets, want.Sets) {
		t.Fatalf("restarted weighted namespace (%v, %v) != pre-restart (%v, %v)",
			got.Sets, got.EstimatedCoverage, want.Sets, want.EstimatedCoverage)
	}
}

// TestHTTPQueryFreshNamespaceWellFormed is the satellite regression: a
// query against a just-created namespace (no edges, no snapshot) must
// return a 200 whose body is valid JSON with the defined empty result —
// sampled_elements 0 and estimated_coverage 0 — not a truncated body
// from a failed NaN encode.
func TestHTTPQueryFreshNamespaceWellFormed(t *testing.T) {
	multi := NewMulti("")
	defer multi.Close()
	srv := httptest.NewServer(NewMultiHandler(multi, HTTPOptions{}))
	defer srv.Close()

	createBody, _ := json.Marshal(map[string]interface{}{"name": "fresh", "num_sets": 20, "k": 3})
	if resp, body := doJSON(t, "POST", srv.URL+"/v1/ns", string(createBody)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s: %s", resp.Status, body)
	}
	for _, algo := range []string{"kcover&k=3", "outliers&lambda=0.25", "greedy"} {
		resp, body := doJSON(t, "GET", srv.URL+"/v1/ns/fresh/query?algo="+algo, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("algo %s on fresh namespace: %s: %s", algo, resp.Status, body)
		}
		if len(bytes.TrimSpace(body)) == 0 {
			t.Fatalf("algo %s: empty body on a 200 response", algo)
		}
		var res QueryResult
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("algo %s: 200 body is not valid JSON (%q): %v", algo, body, err)
		}
		if res.SampledElements != 0 || res.EstimatedCoverage != 0 || len(res.Sets) != 0 {
			t.Fatalf("algo %s: fresh namespace result %+v, want the empty result", algo, res)
		}
	}
}
