package server

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/workload"
)

func testConfig(n, m, k int, seed uint64, shards int) Config {
	return Config{
		NumSets: n, NumElems: m, K: k,
		Eps: 0.4, Seed: seed, EdgeBudget: 50 * n,
		Shards: shards, QueueDepth: 8,
	}
}

// ingestAll pushes every edge of g through the engine in batches.
func ingestAll(t *testing.T, e *Engine, g *bipartite.Graph, batch int, seed uint64) {
	t.Helper()
	edges := stream.Drain(stream.Shuffled(g, seed))
	for i := 0; i < len(edges); i += batch {
		j := i + batch
		if j > len(edges) {
			j = len(edges)
		}
		if _, err := e.Ingest(edges[i:j]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEngineMatchesSinglePassKCover(t *testing.T) {
	const (
		n, m, k = 60, 5000, 6
		seed    = 21
	)
	inst := workload.Zipf(n, m, 900, 0.9, 0.7, seed)
	cfg := testConfig(n, m, k, seed, 4)

	// Offline single-pass reference: Algorithm 3 with identical options.
	opt := algorithms.Options{Eps: cfg.Eps, Seed: cfg.Seed, NumElems: m, EdgeBudget: cfg.EdgeBudget}
	offline, err := algorithms.KCover(stream.Shuffled(inst.G, 3), n, k, opt)
	if err != nil {
		t.Fatal(err)
	}

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ingestAll(t, e, inst.G, 257, 9)

	res, err := e.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.EstimatedCoverage != offline.EstimatedCoverage {
		t.Fatalf("service estimate %v != offline %v", res.EstimatedCoverage, offline.EstimatedCoverage)
	}
	if len(res.Sets) != len(offline.Sets) {
		t.Fatalf("service sets %v != offline %v", res.Sets, offline.Sets)
	}
	for i := range res.Sets {
		if res.Sets[i] != offline.Sets[i] {
			t.Fatalf("service sets %v != offline %v", res.Sets, offline.Sets)
		}
	}
	if res.SnapshotEdges != int64(inst.G.NumEdges()) {
		t.Fatalf("snapshot saw %d of %d edges", res.SnapshotEdges, inst.G.NumEdges())
	}
}

func TestQueriesDuringConcurrentIngest(t *testing.T) {
	const n, m, k = 40, 3000, 4
	inst := workload.PlantedKCover(n, m, k, 0.9, 30, 5)
	e, err := New(testConfig(n, m, k, 11, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	edges := stream.Drain(stream.Shuffled(inst.G, 7))
	var wg sync.WaitGroup
	// Two concurrent producers.
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(part []bipartite.Edge) {
			defer wg.Done()
			for i := 0; i < len(part); i += 101 {
				j := i + 101
				if j > len(part) {
					j = len(part)
				}
				if _, err := e.Ingest(part[i:j]); err != nil {
					t.Error(err)
					return
				}
			}
		}(edges[p*len(edges)/2 : (p+1)*len(edges)/2])
	}
	// Concurrent queries with forced merges must succeed mid-ingest.
	for q := 0; q < 5; q++ {
		res, err := e.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SketchCoverage < 0 {
			t.Fatalf("bad coverage %d", res.SketchCoverage)
		}
	}
	wg.Wait()

	res, err := e.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotEdges != int64(len(edges)) {
		t.Fatalf("final snapshot saw %d of %d edges", res.SnapshotEdges, len(edges))
	}
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.IngestedEdges != int64(len(edges)) || len(st.ShardStats) != 4 {
		t.Fatalf("stats %+v", st)
	}
	var seen int64
	for _, s := range st.ShardStats {
		seen += s.EdgesSeen
	}
	if seen != int64(len(edges)) {
		t.Fatalf("shards consumed %d of %d edges", seen, len(edges))
	}
}

func TestPeriodicMergePublishesSnapshots(t *testing.T) {
	inst := workload.Uniform(20, 1000, 0.05, 3)
	cfg := testConfig(20, 1000, 3, 5, 2)
	cfg.MergeEvery = 5 * time.Millisecond
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ingestAll(t, e, inst.G, 64, 1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if snap.IngestedEdges == int64(inst.G.NumEdges()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ticker never caught up: snapshot at %d of %d edges",
				snap.IngestedEdges, inst.G.NumEdges())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSnapshotRestoreResumesService(t *testing.T) {
	const n, m, k = 40, 3000, 4
	inst := workload.Zipf(n, m, 700, 0.9, 0.7, 13)
	cfg := testConfig(n, m, k, 29, 4)
	edges := stream.Drain(stream.Shuffled(inst.G, 2))
	half := len(edges) / 2

	// Reference: one service sees everything.
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}

	// First service ingests half, persists, and shuts down.
	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Ingest(edges[:half]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := first.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	first.Close()

	// Second service restores and ingests the rest.
	restored, err := core.ReadSketch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Restore = restored
	second, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if _, err := second.Ingest(edges[half:]); err != nil {
		t.Fatal(err)
	}
	got, err := second.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.EstimatedCoverage != want.EstimatedCoverage || got.PStar != want.PStar {
		t.Fatalf("restored service answer %v/%v != uninterrupted %v/%v",
			got.EstimatedCoverage, got.PStar, want.EstimatedCoverage, want.PStar)
	}
	// The ingested-edge accounting must survive the snapshot/restore
	// cycle: a merged sketch only replays kept edges, so WriteSnapshot
	// carries the engine's true total instead.
	if got.SnapshotEdges != int64(len(edges)) {
		t.Fatalf("restored service accounts %d of %d ingested edges",
			got.SnapshotEdges, len(edges))
	}
}

func TestQueryAlgos(t *testing.T) {
	inst := workload.PlantedSetCover(30, 2000, 5, 20, 7)
	e, err := New(testConfig(30, 2000, 5, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ingestAll(t, e, inst.G, 500, 1)

	if _, err := e.Query(Query{Algo: AlgoKCover}); err == nil {
		t.Fatal("kcover without k accepted")
	}
	if _, err := e.Query(Query{Algo: AlgoOutliers, Lambda: 1.5}); err == nil {
		t.Fatal("outliers with bad lambda accepted")
	}
	if _, err := e.Query(Query{Algo: "nope"}); err == nil {
		t.Fatal("unknown algo accepted")
	}

	out, err := e.Query(Query{Algo: AlgoOutliers, Lambda: 0.1, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := e.Query(Query{Algo: AlgoGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if out.SketchCoverage > full.SketchCoverage {
		t.Fatalf("outlier cover %d exceeds full cover %d", out.SketchCoverage, full.SketchCoverage)
	}
	if len(out.Sets) > len(full.Sets) {
		t.Fatalf("outlier cover uses %d sets, full cover %d", len(out.Sets), len(full.Sets))
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(Config{NumSets: 0, K: 1}); err == nil {
		t.Fatal("NumSets=0 accepted")
	}
	e, err := New(testConfig(10, 100, 2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]bipartite.Edge{{Set: 10, Elem: 0}}); err == nil {
		t.Fatal("out-of-range set id accepted")
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.Ingest([]bipartite.Edge{{Set: 1, Elem: 1}}); err == nil {
		t.Fatal("ingest after close accepted")
	}
	if _, err := e.Stats(); err == nil {
		t.Fatal("stats after close accepted")
	}
}
