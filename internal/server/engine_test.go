package server

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/workload"
)

func testConfig(n, m, k int, seed uint64, shards int) Config {
	return Config{
		NumSets: n, NumElems: m, K: k,
		Eps: 0.4, Seed: seed, EdgeBudget: 50 * n,
		Shards: shards, QueueDepth: 8,
	}
}

// ingestAll pushes every edge of g through the engine in batches.
func ingestAll(t *testing.T, e *Engine, g *bipartite.Graph, batch int, seed uint64) {
	t.Helper()
	edges := stream.Drain(stream.Shuffled(g, seed))
	for i := 0; i < len(edges); i += batch {
		j := i + batch
		if j > len(edges) {
			j = len(edges)
		}
		if _, err := e.Ingest(edges[i:j]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEngineMatchesSinglePassKCover(t *testing.T) {
	const (
		n, m, k = 60, 5000, 6
		seed    = 21
	)
	inst := workload.Zipf(n, m, 900, 0.9, 0.7, seed)
	cfg := testConfig(n, m, k, seed, 4)

	// Offline single-pass reference: Algorithm 3 with identical options.
	opt := algorithms.Options{Eps: cfg.Eps, Seed: cfg.Seed, NumElems: m, EdgeBudget: cfg.EdgeBudget}
	offline, err := algorithms.KCover(stream.Shuffled(inst.G, 3), n, k, opt)
	if err != nil {
		t.Fatal(err)
	}

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ingestAll(t, e, inst.G, 257, 9)

	res, err := e.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.EstimatedCoverage != offline.EstimatedCoverage {
		t.Fatalf("service estimate %v != offline %v", res.EstimatedCoverage, offline.EstimatedCoverage)
	}
	if len(res.Sets) != len(offline.Sets) {
		t.Fatalf("service sets %v != offline %v", res.Sets, offline.Sets)
	}
	for i := range res.Sets {
		if res.Sets[i] != offline.Sets[i] {
			t.Fatalf("service sets %v != offline %v", res.Sets, offline.Sets)
		}
	}
	if res.SnapshotEdges != int64(inst.G.NumEdges()) {
		t.Fatalf("snapshot saw %d of %d edges", res.SnapshotEdges, inst.G.NumEdges())
	}
}

func TestQueriesDuringConcurrentIngest(t *testing.T) {
	const n, m, k = 40, 3000, 4
	inst := workload.PlantedKCover(n, m, k, 0.9, 30, 5)
	e, err := New(testConfig(n, m, k, 11, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	edges := stream.Drain(stream.Shuffled(inst.G, 7))
	var wg sync.WaitGroup
	// Two concurrent producers.
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(part []bipartite.Edge) {
			defer wg.Done()
			for i := 0; i < len(part); i += 101 {
				j := i + 101
				if j > len(part) {
					j = len(part)
				}
				if _, err := e.Ingest(part[i:j]); err != nil {
					t.Error(err)
					return
				}
			}
		}(edges[p*len(edges)/2 : (p+1)*len(edges)/2])
	}
	// Concurrent queries with forced merges must succeed mid-ingest.
	for q := 0; q < 5; q++ {
		res, err := e.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SketchCoverage < 0 {
			t.Fatalf("bad coverage %d", res.SketchCoverage)
		}
	}
	wg.Wait()

	res, err := e.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotEdges != int64(len(edges)) {
		t.Fatalf("final snapshot saw %d of %d edges", res.SnapshotEdges, len(edges))
	}
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.IngestedEdges != int64(len(edges)) || len(st.ShardStats) != 4 {
		t.Fatalf("stats %+v", st)
	}
	var seen int64
	for _, s := range st.ShardStats {
		seen += s.EdgesSeen
	}
	if seen != int64(len(edges)) {
		t.Fatalf("shards consumed %d of %d edges", seen, len(edges))
	}
}

func TestPeriodicMergePublishesSnapshots(t *testing.T) {
	inst := workload.Uniform(20, 1000, 0.05, 3)
	cfg := testConfig(20, 1000, 3, 5, 2)
	cfg.MergeEvery = 5 * time.Millisecond
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ingestAll(t, e, inst.G, 64, 1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if snap.IngestedEdges == int64(inst.G.NumEdges()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ticker never caught up: snapshot at %d of %d edges",
				snap.IngestedEdges, inst.G.NumEdges())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSnapshotRestoreResumesService(t *testing.T) {
	const n, m, k = 40, 3000, 4
	inst := workload.Zipf(n, m, 700, 0.9, 0.7, 13)
	cfg := testConfig(n, m, k, 29, 4)
	edges := stream.Drain(stream.Shuffled(inst.G, 2))
	half := len(edges) / 2

	// Reference: one service sees everything.
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}

	// First service ingests half, persists, and shuts down.
	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Ingest(edges[:half]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := first.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	first.Close()

	// Second service restores and ingests the rest.
	restored, err := core.ReadSketch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Restore = restored
	second, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if _, err := second.Ingest(edges[half:]); err != nil {
		t.Fatal(err)
	}
	got, err := second.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.EstimatedCoverage != want.EstimatedCoverage || got.PStar != want.PStar {
		t.Fatalf("restored service answer %v/%v != uninterrupted %v/%v",
			got.EstimatedCoverage, got.PStar, want.EstimatedCoverage, want.PStar)
	}
	// The ingested-edge accounting must survive the snapshot/restore
	// cycle: a merged sketch only replays kept edges, so WriteSnapshot
	// carries the engine's true total instead.
	if got.SnapshotEdges != int64(len(edges)) {
		t.Fatalf("restored service accounts %d of %d ingested edges",
			got.SnapshotEdges, len(edges))
	}
}

func TestQueryAlgos(t *testing.T) {
	inst := workload.PlantedSetCover(30, 2000, 5, 20, 7)
	e, err := New(testConfig(30, 2000, 5, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ingestAll(t, e, inst.G, 500, 1)

	if _, err := e.Query(Query{Algo: AlgoKCover}); err == nil {
		t.Fatal("kcover without k accepted")
	}
	if _, err := e.Query(Query{Algo: AlgoOutliers, Lambda: 1.5}); err == nil {
		t.Fatal("outliers with bad lambda accepted")
	}
	if _, err := e.Query(Query{Algo: "nope"}); err == nil {
		t.Fatal("unknown algo accepted")
	}

	out, err := e.Query(Query{Algo: AlgoOutliers, Lambda: 0.1, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := e.Query(Query{Algo: AlgoGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if out.SketchCoverage > full.SketchCoverage {
		t.Fatalf("outlier cover %d exceeds full cover %d", out.SketchCoverage, full.SketchCoverage)
	}
	if len(out.Sets) > len(full.Sets) {
		t.Fatalf("outlier cover uses %d sets, full cover %d", len(out.Sets), len(full.Sets))
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(Config{NumSets: 0, K: 1}); err == nil {
		t.Fatal("NumSets=0 accepted")
	}
	e, err := New(testConfig(10, 100, 2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]bipartite.Edge{{Set: 10, Elem: 0}}); err == nil {
		t.Fatal("out-of-range set id accepted")
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.Ingest([]bipartite.Edge{{Set: 1, Elem: 1}}); err == nil {
		t.Fatal("ingest after close accepted")
	}
	if _, err := e.Stats(); err == nil {
		t.Fatal("stats after close accepted")
	}
}

// TestFirstSnapshotSingleflight pins the thundering-herd fix: concurrent
// Snapshot() calls on an engine with no snapshot yet must collapse into
// exactly one coordinator merge.
func TestFirstSnapshotSingleflight(t *testing.T) {
	inst := workload.Uniform(30, 1500, 0.08, 17)
	e, err := New(testConfig(30, 1500, 4, 23, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ingestAll(t, e, inst.G, 200, 3)

	const callers = 16
	snaps := make([]*Snapshot, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := e.Snapshot()
			if err != nil {
				t.Error(err)
				return
			}
			snaps[i] = s
		}(i)
	}
	wg.Wait()
	for i, s := range snaps {
		if s == nil || s.Seq != 1 {
			t.Fatalf("caller %d got snapshot %+v, want the single Seq=1 merge", i, s)
		}
		if s != snaps[0] {
			t.Fatalf("caller %d got a different snapshot object", i)
		}
	}
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Refreshes != 1 {
		t.Fatalf("%d coordinator merges ran for %d concurrent first snapshots", st.Refreshes, callers)
	}
}

// TestIdleRefreshShortCircuits pins satellite 2: Refresh (and
// Query{Refresh:true}) on an engine whose ingested-edge counter has not
// moved reuses the published snapshot instead of re-merging, and the
// snapshot Seq does not advance.
func TestIdleRefreshShortCircuits(t *testing.T) {
	inst := workload.Zipf(30, 2000, 400, 0.9, 0.7, 19)
	e, err := New(testConfig(30, 2000, 4, 31, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ingestAll(t, e, inst.G, 300, 5)

	first, err := e.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if first.Seq != 1 {
		t.Fatalf("first refresh got seq %d", first.Seq)
	}
	again, err := e.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("idle Refresh rebuilt the snapshot")
	}
	res, err := e.Query(Query{Algo: AlgoKCover, K: 4, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotSeq != first.Seq {
		t.Fatalf("idle Query{Refresh:true} advanced seq to %d", res.SnapshotSeq)
	}
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Refreshes != 1 || st.RefreshSkips != 2 {
		t.Fatalf("refreshes=%d skips=%d, want 1 merge and 2 short-circuits", st.Refreshes, st.RefreshSkips)
	}

	// New edges re-arm the merge.
	if _, err := e.Ingest([]bipartite.Edge{{Set: 0, Elem: 0}}); err != nil {
		t.Fatal(err)
	}
	after, err := e.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if after.Seq != first.Seq+1 {
		t.Fatalf("dirty refresh got seq %d, want %d", after.Seq, first.Seq+1)
	}
}

// TestQueryCache pins the memoized query plane: repeated queries on one
// snapshot hit the cache and return identical answers, distinct
// parameters and new snapshots miss.
func TestQueryCache(t *testing.T) {
	inst := workload.PlantedKCover(40, 2500, 5, 0.9, 25, 3)
	e, err := New(testConfig(40, 2500, 5, 7, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ingestAll(t, e, inst.G, 400, 1)

	q := Query{Algo: AlgoKCover, K: 5}
	first, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Sets) != len(second.Sets) {
		t.Fatalf("cached answer differs: %v vs %v", first.Sets, second.Sets)
	}
	for i := range first.Sets {
		if first.Sets[i] != second.Sets[i] {
			t.Fatalf("cached answer differs: %v vs %v", first.Sets, second.Sets)
		}
	}
	st, _ := e.Stats()
	if st.QueryCacheHits != 1 {
		t.Fatalf("cache hits = %d after a repeated query, want 1", st.QueryCacheHits)
	}

	// Different k, different algo: misses.
	if _, err := e.Query(Query{Algo: AlgoKCover, K: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(Query{Algo: AlgoGreedy}); err != nil {
		t.Fatal(err)
	}
	st, _ = e.Stats()
	if st.QueryCacheHits != 1 {
		t.Fatalf("distinct queries hit the cache (hits=%d)", st.QueryCacheHits)
	}
	if st.QueryCacheEntries != 3 {
		t.Fatalf("cache holds %d entries, want 3", st.QueryCacheEntries)
	}

	// A new snapshot seq invalidates: same query misses, then hits again.
	if _, err := e.Ingest([]bipartite.Edge{{Set: 1, Elem: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	st, _ = e.Stats()
	if st.QueryCacheHits != 1 {
		t.Fatalf("query against a fresh snapshot hit a stale entry (hits=%d)", st.QueryCacheHits)
	}
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	st, _ = e.Stats()
	if st.QueryCacheHits != 2 {
		t.Fatalf("repeat on the fresh snapshot missed (hits=%d)", st.QueryCacheHits)
	}
}

// TestQueryCacheDisabled pins the opt-out: QueryCache < 0 turns
// memoization off entirely.
func TestQueryCacheDisabled(t *testing.T) {
	inst := workload.Uniform(20, 800, 0.1, 5)
	cfg := testConfig(20, 800, 3, 9, 2)
	cfg.QueryCache = -1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ingestAll(t, e, inst.G, 200, 2)
	q := Query{Algo: AlgoKCover, K: 3}
	for i := 0; i < 3; i++ {
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := e.Stats()
	if st.QueryCacheHits != 0 || st.QueryCacheEntries != 0 {
		t.Fatalf("disabled cache recorded hits=%d entries=%d", st.QueryCacheHits, st.QueryCacheEntries)
	}
}

// TestQueryCacheLRUEviction bounds the cache: more distinct keys than
// capacity must evict the least recently used, never grow unbounded.
func TestQueryCacheLRUEviction(t *testing.T) {
	inst := workload.Uniform(30, 800, 0.1, 8)
	cfg := testConfig(30, 800, 3, 13, 2)
	cfg.QueryCache = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ingestAll(t, e, inst.G, 200, 2)
	for k := 1; k <= 10; k++ {
		if _, err := e.Query(Query{Algo: AlgoKCover, K: k}); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := e.Stats()
	if st.QueryCacheEntries != 4 {
		t.Fatalf("cache grew to %d entries with capacity 4", st.QueryCacheEntries)
	}
	// k=10 is the most recent entry: must still hit. k=1 was evicted.
	if _, err := e.Query(Query{Algo: AlgoKCover, K: 10}); err != nil {
		t.Fatal(err)
	}
	st, _ = e.Stats()
	if st.QueryCacheHits != 1 {
		t.Fatalf("most-recent entry evicted (hits=%d)", st.QueryCacheHits)
	}
	if _, err := e.Query(Query{Algo: AlgoKCover, K: 1}); err != nil {
		t.Fatal(err)
	}
	st, _ = e.Stats()
	if st.QueryCacheHits != 1 {
		t.Fatalf("evicted entry hit (hits=%d)", st.QueryCacheHits)
	}
}

// TestQueryResultIsPrivate pins the aliasing contract: mutating a
// returned Sets slice must not corrupt the cached entry other callers
// receive.
func TestQueryResultIsPrivate(t *testing.T) {
	inst := workload.Uniform(20, 800, 0.1, 21)
	e, err := New(testConfig(20, 800, 3, 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ingestAll(t, e, inst.G, 200, 2)

	q := Query{Algo: AlgoKCover, K: 3}
	first, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int(nil), first.Sets...)
	for i := range first.Sets {
		first.Sets[i] = -1 // caller scribbles on its result
	}
	second, err := e.Query(q) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	for i := range second.Sets {
		if second.Sets[i] != want[i] {
			t.Fatalf("cached answer corrupted by caller mutation: %v, want %v", second.Sets, want)
		}
	}
	second.Sets[0] = -2
	third, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if third.Sets[0] != want[0] {
		t.Fatalf("cache hit handed out a shared slice: %v, want %v", third.Sets, want)
	}
}
