package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/stream"
	"repro/internal/workload"
)

// TestHTTPDynamicNamespace drives the dynamic (insert/delete) mode
// through the HTTP plane: namespace creation with "engine": "dynamic",
// ops-body ingest, the DELETE …/edges route, the insert-all-delete-all
// acceptance over HTTP (empty kcover answer on a fully cancelled
// stream), and the state blob's engine header.
func TestHTTPDynamicNamespace(t *testing.T) {
	const n, m, k = 30, 400, 4
	multi := NewMulti("")
	defer multi.Close()
	ts := httptest.NewServer(NewMultiHandler(multi, HTTPOptions{}))
	defer ts.Close()

	resp, out := doJSON(t, "POST", ts.URL+"/v1/ns",
		`{"name":"dyn","num_sets":30,"k":4,"eps":0.4,"seed":5,"num_elems":400,"edge_budget":1800,"shards":2,"engine":"dynamic"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create dynamic namespace: got %d: %s", resp.StatusCode, out)
	}
	var info NamespaceInfo
	if err := json.Unmarshal(out, &info); err != nil {
		t.Fatal(err)
	}
	if info.Engine != ModeDynamic {
		t.Fatalf("created namespace reports engine %q, want dynamic", info.Engine)
	}

	inst := workload.Uniform(n, m, 0.05, 9)
	edges := stream.Drain(stream.Shuffled(inst.G, 2))

	// Ingest everything as an ops body (all inserts), in two batches.
	half := len(edges) / 2
	for _, chunk := range [][]int{{0, half}, {half, len(edges)}} {
		ops := make([][3]uint32, 0, chunk[1]-chunk[0])
		for _, e := range edges[chunk[0]:chunk[1]] {
			ops = append(ops, [3]uint32{0, e.Set, e.Elem})
		}
		body, _ := json.Marshal(ingestRequest{Ops: ops})
		resp, out := doJSON(t, "POST", ts.URL+"/v1/ns/dyn/edges", string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ops ingest: %d: %s", resp.StatusCode, out)
		}
	}

	// With everything live, the dynamic answer matches a fresh engine
	// fed the same edges directly.
	refCfg := Config{NumSets: n, NumElems: m, K: k, Eps: 0.4, Seed: 5,
		EdgeBudget: 1800, Shards: 2, Engine: ModeDynamic}
	ref, _ := eqAnswer(t, refCfg, edges, true)
	if len(ref.Sets) == 0 {
		t.Fatal("reference answer is empty; the workload tests nothing")
	}
	resp, out = doJSON(t, "GET", ts.URL+"/v1/ns/dyn/query?algo=kcover&k=4&refresh=1", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dynamic query: %d: %s", resp.StatusCode, out)
	}
	var qr QueryResult
	if err := json.Unmarshal(out, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Engine != ModeDynamic {
		t.Fatalf("query result engine %q, want dynamic", qr.Engine)
	}
	assertSameAnswer(t, "HTTP dynamic vs direct engine", &qr, ref)

	// The state blob advertises the dynamic mode and decodes as one.
	sr, err := http.Get(ts.URL + "/v1/ns/dyn/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	blob := new(bytes.Buffer)
	if _, err := blob.ReadFrom(sr.Body); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if sr.StatusCode != http.StatusOK {
		t.Fatalf("GET snapshot: %s", sr.Status)
	}
	if got := sr.Header.Get(HeaderEngine); got != string(ModeDynamic) {
		t.Fatalf("%s = %q, want %q", HeaderEngine, got, ModeDynamic)
	}
	mode, err := refCfg.EngineMode()
	if err != nil {
		t.Fatal(err)
	}
	st, err := mode.ReadState(bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().EdgesSeen != int64(len(edges)) {
		t.Fatalf("state blob saw %d ops, want %d", st.Stats().EdgesSeen, len(edges))
	}

	// DELETE …/edges retracts every inserted edge, in batches: the HTTP
	// leg of the insert-all-delete-all acceptance. The net stream is
	// empty, so kcover must answer the empty solution.
	for start := 0; start < len(edges); start += 100 {
		end := start + 100
		if end > len(edges) {
			end = len(edges)
		}
		pairs := make([][2]uint32, 0, end-start)
		for _, e := range edges[start:end] {
			pairs = append(pairs, [2]uint32{e.Set, e.Elem})
		}
		body, _ := json.Marshal(ingestRequest{Edges: pairs})
		resp, out := doJSON(t, "DELETE", ts.URL+"/v1/ns/dyn/edges", string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE edges [%d:%d]: %d: %s", start, end, resp.StatusCode, out)
		}
	}
	resp, out = doJSON(t, "GET", ts.URL+"/v1/ns/dyn/query?algo=kcover&k=4&refresh=1", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after delete-all: %d: %s", resp.StatusCode, out)
	}
	qr = QueryResult{}
	if err := json.Unmarshal(out, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Sets) != 0 || qr.EstimatedCoverage != 0 || qr.SketchCoverage != 0 {
		t.Fatalf("delete-all over HTTP answered %v (coverage %v/%d), want the empty solution",
			qr.Sets, qr.EstimatedCoverage, qr.SketchCoverage)
	}
	var stats Stats
	if resp, out := doJSON(t, "GET", ts.URL+"/v1/ns/dyn/stats", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	} else if err := json.Unmarshal(out, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.IngestedEdges != int64(2*len(edges)) {
		t.Fatalf("ingested_edges %d after insert+delete of %d edges, want %d",
			stats.IngestedEdges, len(edges), 2*len(edges))
	}
}

// TestHTTPDeleteRejectedOnLegacyEngines: the op plane is negotiated per
// engine mode. Append-only namespaces answer 409 Conflict to DELETE and
// to ops bodies carrying deletes, and malformed op bodies are 400s on
// every engine.
func TestHTTPDeleteRejectedOnLegacyEngines(t *testing.T) {
	multi := NewMulti("")
	defer multi.Close()
	ts := httptest.NewServer(NewMultiHandler(multi, HTTPOptions{}))
	defer ts.Close()

	for _, ns := range []string{
		`{"name":"sk","num_sets":10,"k":3,"eps":0.5,"seed":1,"num_elems":100,"engine":"sketch"}`,
		`{"name":"sv","num_sets":10,"k":3,"eps":0.5,"seed":1,"num_elems":100,"engine":"sieve"}`,
	} {
		if resp, out := doJSON(t, "POST", ts.URL+"/v1/ns", ns); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create: %d: %s", resp.StatusCode, out)
		}
	}

	for _, name := range []string{"sk", "sv"} {
		// Insert-only ops bodies are fine on any engine…
		resp, out := doJSON(t, "POST", ts.URL+"/v1/ns/"+name+"/edges",
			`{"ops":[[0,1,2],[0,3,4]]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: insert-only ops body: %d: %s", name, resp.StatusCode, out)
		}
		// …but deletes are a typed conflict, via both routes.
		resp, out = doJSON(t, "POST", ts.URL+"/v1/ns/"+name+"/edges",
			`{"ops":[[1,1,2]]}`)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s: delete op on legacy engine: got %d (%s), want 409", name, resp.StatusCode, out)
		}
		resp, out = doJSON(t, "DELETE", ts.URL+"/v1/ns/"+name+"/edges",
			`{"edges":[[1,2]]}`)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s: DELETE on legacy engine: got %d (%s), want 409", name, resp.StatusCode, out)
		}
		// The rejected mutations must not have landed.
		var stats Stats
		if _, out := doJSON(t, "GET", ts.URL+"/v1/ns/"+name+"/stats", ""); json.Unmarshal(out, &stats) != nil {
			t.Fatal("bad stats body")
		}
		if stats.IngestedEdges != 2 {
			t.Fatalf("%s: ingested_edges = %d after rejected deletes, want 2", name, stats.IngestedEdges)
		}
	}

	// Malformed op bodies: unknown kind, mixed edges+ops, ops on the
	// DELETE route.
	for _, bad := range []struct{ method, body string }{
		{"POST", `{"ops":[[2,1,2]]}`},
		{"POST", `{"edges":[[1,2]],"ops":[[0,3,4]]}`},
		{"DELETE", `{"ops":[[1,1,2]]}`},
	} {
		resp, out := doJSON(t, bad.method, ts.URL+"/v1/ns/sk/edges", bad.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %s: got %d (%s), want 400", bad.method, bad.body, resp.StatusCode, out)
		}
	}
}
