package server

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
)

// This file adds the multi-tenant layer: one process hosting many
// independent coverage datasets. Each namespace owns a full Engine —
// its own shard goroutines, sketch parameters, snapshot sequence and
// query cache — so tenants are isolated by construction: no sketch,
// cache entry or counter is ever shared between namespaces, and the
// paper's per-instance space bound (Õ(n/ε³) kept edges, §2) applies to
// each namespace separately. The Multi itself is only a name → Engine
// directory plus lifecycle: creation, deletion and the snapshot-v2
// container that frames every namespace into one file (multisnapshot.go).

// Namespace lifecycle errors. The HTTP layer maps these to status codes
// (404 for unknown, 409 for duplicate creation).
var (
	// ErrNamespaceUnknown is returned when an operation names a namespace
	// that does not exist (or was deleted).
	ErrNamespaceUnknown = errors.New("server: unknown namespace")
	// ErrNamespaceExists is returned by Create for a name already in use.
	ErrNamespaceExists = errors.New("server: namespace already exists")
)

// DefaultNamespace is the namespace the unprefixed (pre-namespace) HTTP
// routes resolve to when the Multi was built without an explicit
// default name.
const DefaultNamespace = "default"

// maxNamespaceName bounds namespace name length.
const maxNamespaceName = 64

// ValidateNamespaceName checks that name is usable as a namespace: 1 to
// 64 characters drawn from [A-Za-z0-9._-], not starting with a dot (so
// "." and ".." can never appear in URL paths or snapshot frames).
func ValidateNamespaceName(name string) error {
	if name == "" {
		return fmt.Errorf("server: empty namespace name")
	}
	if len(name) > maxNamespaceName {
		return fmt.Errorf("server: namespace name longer than %d bytes", maxNamespaceName)
	}
	if name[0] == '.' {
		return fmt.Errorf("server: namespace name %q may not start with '.'", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("server: namespace name %q contains %q (allowed: letters, digits, '.', '_', '-')", name, c)
		}
	}
	return nil
}

// Multi hosts N independent Engines keyed by namespace name. All
// methods are safe for concurrent use; the directory lock is held only
// for map access, never across engine operations, so a slow merge or a
// backpressured ingest in one namespace cannot block lifecycle calls or
// traffic in another.
//
// Create-vs-ingest races are resolved by the engine handle: Get returns
// the live engine under a read lock, and a Delete that wins the race
// removes the name first and closes the engine after, so an in-flight
// Ingest on the doomed handle either completes before the shard
// mailboxes close or fails with ErrClosed — it can never touch a
// different tenant's sketch.
type Multi struct {
	defaultName string

	mu     sync.RWMutex
	ns     map[string]*Engine
	closed bool
	// dur, when non-nil, is the durability template (SetDurability):
	// Create gives each namespace a WAL in dur.Dir/<name>, and Delete
	// removes that directory with the namespace.
	dur *WALConfig
}

// NewMulti returns an empty namespace directory. defaultName is the
// namespace the legacy (unprefixed) routes and the empty name resolve
// to; "" selects DefaultNamespace. No namespace is created implicitly —
// callers bootstrap with Create or RestoreAll.
func NewMulti(defaultName string) *Multi {
	if defaultName == "" {
		defaultName = DefaultNamespace
	}
	return &Multi{defaultName: defaultName, ns: make(map[string]*Engine)}
}

// DefaultName reports which namespace the empty name aliases.
func (m *Multi) DefaultName() string { return m.defaultName }

// Create validates name and cfg, starts a fresh Engine for the
// namespace and returns it. It fails with ErrNamespaceExists if the
// name is taken and ErrClosed after Close. The engine is started
// outside the directory lock and published only on success, so a
// concurrent Get never observes a half-built namespace.
func (m *Multi) Create(name string, cfg Config) (*Engine, error) {
	if err := ValidateNamespaceName(name); err != nil {
		return nil, err
	}
	// Cheap pre-check without holding the lock across engine startup.
	m.mu.RLock()
	_, taken := m.ns[name]
	closed := m.closed
	m.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if taken {
		return nil, fmt.Errorf("%w: %q", ErrNamespaceExists, name)
	}
	// Durability plane armed: the namespace logs (and recovers) in its
	// own subdirectory of the WAL root. An explicit cfg.WAL wins, so
	// tests and embedders can still place a log manually.
	if d := m.durability(); d != nil && cfg.WAL == nil {
		cfg.WAL = d.namespaceWAL(name)
	}
	eng, err := New(cfg)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		eng.Close()
		return nil, ErrClosed
	}
	if _, taken := m.ns[name]; taken {
		m.mu.Unlock()
		eng.Close() // lost a create-create race; the winner's engine stands
		return nil, fmt.Errorf("%w: %q", ErrNamespaceExists, name)
	}
	m.ns[name] = eng
	m.mu.Unlock()
	return eng, nil
}

// Get resolves a namespace to its engine. The empty name resolves to
// the default namespace.
func (m *Multi) Get(name string) (*Engine, bool) {
	if name == "" {
		name = m.defaultName
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.ns[name]
	return e, ok
}

// Default resolves the default namespace (false until it is created).
func (m *Multi) Default() (*Engine, bool) { return m.Get(m.defaultName) }

// Delete removes the namespace and stops its engine, releasing its
// sketches. In-flight operations on the engine finish or fail with
// ErrClosed; other namespaces are unaffected. Deleting an unknown
// namespace returns ErrNamespaceUnknown.
func (m *Multi) Delete(name string) error {
	if name == "" {
		name = m.defaultName
	}
	m.mu.Lock()
	e, ok := m.ns[name]
	if ok {
		delete(m.ns, name)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNamespaceUnknown, name)
	}
	// Close drains the shard goroutines; done outside the directory lock
	// so sibling namespaces keep serving while this one winds down.
	err := e.Close()
	// A deleted namespace must not resurrect at the next startup: its WAL
	// directory (segments + config sidecar) goes with it.
	if d := m.durability(); d != nil {
		if rerr := os.RemoveAll(d.namespaceWAL(name).Dir); err == nil {
			err = rerr
		}
	}
	return err
}

// NamespaceInfo is a directory entry: the namespace's configuration
// plus cheap (atomic-read) traffic counters. Deep per-shard accounting
// stays behind Engine.Stats, which rides the shard mailboxes.
type NamespaceInfo struct {
	// Name is the namespace key.
	Name string `json:"name"`
	// Default reports whether the legacy unprefixed routes alias this
	// namespace.
	Default bool `json:"default"`
	// NumSets, K, Eps, Seed and Shards echo the namespace's Config.
	NumSets int     `json:"num_sets"`
	K       int     `json:"k"`
	Eps     float64 `json:"eps"`
	Seed    uint64  `json:"seed"`
	Shards  int     `json:"shards"`
	// Weighted reports whether the namespace serves weighted coverage
	// (Config.Weights set).
	Weighted bool `json:"weighted,omitempty"`
	// Engine names a non-default engine mode (currently only "sieve");
	// omitted for the sketch and weighted modes, whose listing shape
	// predates the field.
	Engine ModeName `json:"engine,omitempty"`
	// IngestedEdges is the number of edges the namespace has accepted.
	IngestedEdges int64 `json:"ingested_edges"`
	// SnapshotSeq is the namespace's current merge sequence number (0
	// before the first merge).
	SnapshotSeq uint64 `json:"snapshot_seq"`
}

func infoFor(name string, e *Engine, isDefault bool) NamespaceInfo {
	// Read the config fields directly: Engine.Config() deep-copies the
	// weight table, which directory listings must not pay per entry.
	cfg := &e.cfg
	info := NamespaceInfo{
		Name:          name,
		Default:       isDefault,
		NumSets:       cfg.NumSets,
		K:             cfg.K,
		Eps:           cfg.Eps,
		Seed:          cfg.Seed,
		Shards:        cfg.shards(),
		Weighted:      cfg.Weights != nil,
		Engine:        nonDefaultEngine(*cfg),
		IngestedEdges: e.IngestedEdges(),
	}
	if snap := e.snap.Load(); snap != nil {
		info.SnapshotSeq = snap.Seq
	}
	return info
}

// List returns one entry per namespace, sorted by name.
func (m *Multi) List() []NamespaceInfo {
	type entry struct {
		name string
		eng  *Engine
	}
	m.mu.RLock()
	entries := make([]entry, 0, len(m.ns))
	for name, e := range m.ns {
		entries = append(entries, entry{name, e})
	}
	m.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	out := make([]NamespaceInfo, len(entries))
	for i, en := range entries {
		out[i] = infoFor(en.name, en.eng, en.name == m.defaultName)
	}
	return out
}

// Close stops every namespace engine. Subsequent Create/Delete calls
// fail with ErrClosed; Close is idempotent. The first engine error is
// returned but every engine is closed regardless.
func (m *Multi) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	engines := make([]*Engine, 0, len(m.ns))
	for _, e := range m.ns {
		engines = append(engines, e)
	}
	m.ns = make(map[string]*Engine)
	m.mu.Unlock()
	var first error
	for _, e := range engines {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
