package server

import (
	"bytes"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/wal/faultfs"
)

// The dynamic-mode leg of the crash-recovery suite: the WAL now carries
// op frames (inserts and deletes interleaved), and recovery must still
// be bit-identical to an uncrashed engine fed the acknowledged batch
// prefix. The sampler's linearity is what makes this exact: the
// recovered state is a function of the net op multiset alone, so
// replaying the same op prefix — whatever the crash point tore off —
// reproduces the same bytes.

// durOpBatches builds a deterministic op workload: every batch inserts
// fresh edges, and every odd batch additionally retracts half of the
// previous batch's inserts, keeping the whole stream a valid turnstile
// stream at every prefix.
func durOpBatches(numSets, numElems, batches, per int) [][]bipartite.Op {
	ins := durBatches(numSets, numElems, batches, per)
	out := make([][]bipartite.Op, batches)
	for b := range out {
		ops := bipartite.Inserts(ins[b])
		if b%2 == 1 {
			ops = append(ops, bipartite.Deletes(ins[b-1][:per/2])...)
		}
		out[b] = ops
	}
	return out
}

// prefixOpRef is prefixRef for op batches: a WAL-less dynamic engine
// that ingests the first n op batches, serialized canonically.
func prefixOpRef(t *testing.T, cfg Config, batches [][]bipartite.Op, n int) []byte {
	t.Helper()
	cfg.WAL = nil
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New(ref): %v", err)
	}
	defer e.Close()
	for _, b := range batches[:n] {
		if _, err := e.IngestOps(b); err != nil {
			t.Fatalf("ref IngestOps: %v", err)
		}
	}
	return stateBytes(t, e)
}

// TestDynamicCrashRecoveryBitIdentical sweeps an injected crash across
// the op-framed WAL byte range: for every crash point, the recovered
// dynamic engine's merged state must serialize to exactly the bytes of
// an uncrashed engine that applied the acknowledged op-batch prefix —
// deletes included.
func TestDynamicCrashRecoveryBitIdentical(t *testing.T) {
	base := durConfig(ModeSketch)
	base.Engine = ModeDynamic
	batches := durOpBatches(base.NumSets, base.NumElems, 10, 6)
	opCount := func(n int) int64 {
		var c int64
		for _, b := range batches[:n] {
			c += int64(len(b))
		}
		return c
	}

	// Probe run: no fault, measure the workload's WAL byte volume.
	probe := faultfs.NewInjector(-1)
	cfg := base
	cfg.WAL = &WALConfig{Dir: t.TempDir(), Fsync: "always", OpenWrite: probe.OpenWrite}
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New(probe): %v", err)
	}
	for _, b := range batches {
		if _, err := e.IngestOps(b); err != nil {
			t.Fatalf("probe IngestOps: %v", err)
		}
	}
	e.Close()
	totalBytes := probe.Written()
	if totalBytes == 0 {
		t.Fatalf("probe wrote no WAL bytes")
	}

	refs := map[int][]byte{}
	refFor := func(n int) []byte {
		if b, ok := refs[n]; ok {
			return b
		}
		b := prefixOpRef(t, base, batches, n)
		refs[n] = b
		return b
	}

	step := int64(5)
	if testing.Short() {
		step = 37
	}
	for limit := int64(0); limit <= totalBytes; limit += step {
		dir := t.TempDir()
		inj := faultfs.NewInjector(limit)
		cfg := base
		cfg.WAL = &WALConfig{Dir: dir, Fsync: "always", OpenWrite: inj.OpenWrite}
		acked := 0
		if e, err := New(cfg); err == nil {
			for _, b := range batches {
				if _, err := e.IngestOps(b); err != nil {
					break
				}
				acked++
			}
			e.Close() // may fail syncing the torn tail; the crash is the point
		}

		rcfg := base
		rcfg.WAL = &WALConfig{Dir: dir, Fsync: "off"}
		rec, err := New(rcfg)
		if err != nil {
			t.Fatalf("limit %d: recovery New: %v", limit, err)
		}
		if got := rec.IngestedEdges(); got != opCount(acked) {
			t.Fatalf("limit %d: recovered %d ops, acknowledged %d", limit, got, opCount(acked))
		}
		got := stateBytes(t, rec)
		rec.Close()
		if !bytes.Equal(got, refFor(acked)) {
			t.Fatalf("limit %d (acked %d/%d batches): recovered dynamic state differs from uncrashed reference",
				limit, acked, len(batches))
		}
	}
}

// TestDynamicWALDeleteAllRecoversEmpty pins the WAL-recovery leg of the
// insert-all-delete-all acceptance: a log whose net stream is empty
// recovers into an engine whose answer is the empty solution.
func TestDynamicWALDeleteAllRecoversEmpty(t *testing.T) {
	base := durConfig(ModeSketch)
	base.Engine = ModeDynamic
	edges := durBatches(base.NumSets, base.NumElems, 1, 120)[0]

	dir := t.TempDir()
	cfg := base
	cfg.WAL = &WALConfig{Dir: dir, Fsync: "always"}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestOps(bipartite.Inserts(edges)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestOps(bipartite.Deletes(edges)); err != nil {
		t.Fatal(err)
	}
	e.Close()

	rcfg := base
	rcfg.WAL = &WALConfig{Dir: dir, Fsync: "off"}
	rec, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.IngestedEdges(); got != int64(2*len(edges)) {
		t.Fatalf("recovered %d ops, want %d", got, 2*len(edges))
	}
	res, err := rec.Query(Query{Algo: AlgoKCover, K: base.K, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 0 || res.EstimatedCoverage != 0 || res.SketchCoverage != 0 {
		t.Fatalf("recovered engine answered %v (coverage %v/%d) on a fully cancelled log",
			res.Sets, res.EstimatedCoverage, res.SketchCoverage)
	}
}

// TestDynamicWALRejectsLegacyEngineReplay: a WAL holding delete frames
// replayed into an append-only engine is a configuration mismatch and
// must surface the typed error, not data loss.
func TestDynamicWALRejectsLegacyEngineReplay(t *testing.T) {
	base := durConfig(ModeSketch)
	dynCfg := base
	dynCfg.Engine = ModeDynamic
	edges := durBatches(base.NumSets, base.NumElems, 1, 20)[0]

	dir := t.TempDir()
	dynCfg.WAL = &WALConfig{Dir: dir, Fsync: "off"}
	e, err := New(dynCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestOps(bipartite.Inserts(edges)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestOps(bipartite.Deletes(edges[:5])); err != nil {
		t.Fatal(err)
	}
	e.Close()

	cfg := base // sketch engine over the same log
	cfg.WAL = &WALConfig{Dir: dir, Fsync: "off"}
	if _, err := New(cfg); err == nil {
		t.Fatal("sketch engine replayed a delete-bearing WAL without error")
	}
}
