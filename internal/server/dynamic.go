package server

// The dynamic engine mode: insert/delete (turnstile) streams served by
// the leveled L0 edge sampler of internal/l0 (see sampler.go there for
// the structure; DESIGN.md §14 for the contract). The sampler is linear
// in the op stream, so every lifecycle verb the mode plane needs is
// cell-wise arithmetic: shard states merge into exactly the sampler of
// the concatenated streams, clones are plain copies, and serialization
// is a deterministic function of the net op multiset — the property the
// crash-recovery and cluster suites pin bit-for-bit.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/l0"
)

// DynamicParams derives the L0 sampler geometry from the config: the
// per-level cell count tracks the Algorithm 3 edge budget (two cells
// per budgeted edge — a level decodes while it holds about Cells/2
// distinct edges), capped so the Levels×Cells cell matrix stays a
// bounded multiple of the sketch's footprint. Exported for the cluster
// layer, which must build samplers with exactly the local geometry.
func (c Config) DynamicParams() l0.SamplerParams {
	cells := 2 * c.Params().EffectiveEdgeBudget()
	if cells > maxDynamicCells {
		cells = maxDynamicCells
	}
	if cells < minDynamicCells {
		cells = minDynamicCells
	}
	return l0.SamplerParams{Levels: dynamicLevels, Cells: cells, Seed: c.Seed}.Normalize()
}

const (
	// dynamicLevels geometric levels decode streams of up to about
	// Cells/2 · 2^(Levels−1) distinct edges — far past any stream the
	// budget-driven cell count is provisioned for.
	dynamicLevels   = 16
	minDynamicCells = 96
	maxDynamicCells = 1 << 14
)

// dynamicState is the per-shard (and merged-snapshot) state of the
// dynamic mode: the sampler plus op accounting. Pointer receivers —
// unlike the legacy wrapper states it carries its own counters.
type dynamicState struct {
	sam *l0.Sampler
	// opsSeen counts ops applied (the EdgesSeen analog — deletes
	// included, matching the engine's op-counted offsets).
	opsSeen int64
	// deletes counts delete ops applied.
	deletes int64

	// Recovery accounting, filled once by Materialize on a merged
	// snapshot state and immutable afterwards (snapshots are published
	// through an atomic pointer, so readers observe the filled values).
	recEdges, recElems int
	recPStar           float64
	materialized       bool
}

func (d *dynamicState) AddEdges(edges []bipartite.Edge) {
	d.sam.AddEdges(edges)
	d.opsSeen += int64(len(edges))
}

func (d *dynamicState) ApplyOps(ops []bipartite.Op) error {
	d.sam.Apply(ops)
	d.opsSeen += int64(len(ops))
	for i := range ops {
		if ops[i].Kind == bipartite.OpDelete {
			d.deletes++
		}
	}
	return nil
}

func (d *dynamicState) CloneState() ShardState {
	return &dynamicState{sam: d.sam.Clone(), opsSeen: d.opsSeen, deletes: d.deletes}
}

func (d *dynamicState) MergeFrom(other ShardState) error {
	o, ok := other.(*dynamicState)
	if !ok {
		return fmt.Errorf("server: cannot merge %T state into a dynamic engine", other)
	}
	if err := d.sam.Merge(o.sam); err != nil {
		return err
	}
	// The consumed-op counter is left untouched per the ShardState
	// contract (the coordinator pins true totals); the delete counter is
	// content accounting and folds in.
	d.deletes += o.deletes
	return nil
}

func (d *dynamicState) Stats() core.Stats {
	st := core.Stats{
		EdgesSeen: d.opsSeen,
		Budget:    d.sam.Params().Cells,
		Bytes:     int64(d.sam.Bytes()),
	}
	if d.materialized {
		st.EdgesKept = d.recEdges
		st.ElementsKept = d.recElems
		st.PStar = d.recPStar
	}
	return st
}

func (d *dynamicState) SetEdgesSeen(n int64) { d.opsSeen = n }

// dynMagic frames the dynamic state: op counters, then the sampler's
// own self-checksummed bytes.
const dynMagic = "L0DYNS1\n"

func (d *dynamicState) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, 0, len(dynMagic)+20)
	hdr = append(hdr, dynMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(d.opsSeen))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(d.deletes))
	crc := crc32.Checksum(hdr[len(dynMagic):], dynCRCTable)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc)
	n, err := w.Write(hdr)
	if err != nil {
		return int64(n), err
	}
	sn, err := d.sam.WriteTo(w)
	return int64(n) + sn, err
}

var dynCRCTable = crc32.MakeTable(crc32.Castagnoli)

// dynamicMode implements Mode for ModeDynamic.
type dynamicMode struct {
	numSets int
	params  l0.SamplerParams
}

func (m dynamicMode) Name() ModeName        { return ModeDynamic }
func (m dynamicMode) SupportsDeletes() bool { return true }
func (m dynamicMode) Signature() uint64     { return 0 }

func (m dynamicMode) NewShardState() (ShardState, error) {
	return &dynamicState{sam: l0.NewSampler(m.params)}, nil
}

func (m dynamicMode) MergeStates(states []ShardState) (ShardState, error) {
	merged := &dynamicState{sam: l0.NewSampler(m.params)}
	for _, st := range states {
		s, ok := st.(*dynamicState)
		if !ok {
			return nil, fmt.Errorf("server: cannot merge %T state into a dynamic engine", st)
		}
		if err := merged.sam.Merge(s.sam); err != nil {
			return nil, err
		}
		merged.opsSeen += s.opsSeen
		merged.deletes += s.deletes
	}
	return merged, nil
}

func (m dynamicMode) ReadState(r io.Reader) (ShardState, error) {
	hdr := make([]byte, len(dynMagic)+20)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("decoding dynamic state header: %w", err)
	}
	if string(hdr[:len(dynMagic)]) != dynMagic {
		return nil, fmt.Errorf("decoding dynamic state: bad magic %q", hdr[:len(dynMagic)])
	}
	body := hdr[len(dynMagic):]
	if got, want := binary.LittleEndian.Uint32(body[16:20]), crc32.Checksum(body[:16], dynCRCTable); got != want {
		return nil, fmt.Errorf("decoding dynamic state: header checksum mismatch (got %08x want %08x)", got, want)
	}
	sam, err := l0.ReadSampler(r)
	if err != nil {
		return nil, err
	}
	if sam.Params() != m.params {
		return nil, fmt.Errorf("dynamic sampler parameter mismatch (peer built with different options)")
	}
	return &dynamicState{
		sam:     sam,
		opsSeen: int64(binary.LittleEndian.Uint64(body[0:8])),
		deletes: int64(binary.LittleEndian.Uint64(body[8:16])),
	}, nil
}

func (m dynamicMode) Materialize(st ShardState) (*materialized, error) {
	d, ok := st.(*dynamicState)
	if !ok {
		return nil, fmt.Errorf("server: cannot materialize %T state on a dynamic engine", st)
	}
	rec, err := d.sam.Recover()
	if err != nil {
		return nil, fmt.Errorf("server: dynamic engine: %w", err)
	}
	// Renumber the sample's elements densely (ascending original id, as
	// deterministic as the recovery itself).
	ids := make([]uint32, 0, len(rec.Edges))
	for _, e := range rec.Edges {
		ids = append(ids, e.Elem)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ids = compactU32(ids)
	idx := make(map[uint32]uint32, len(ids))
	for i, el := range ids {
		idx[el] = uint32(i)
	}
	edges := make([]bipartite.Edge, len(rec.Edges))
	for i, e := range rec.Edges {
		edges[i] = bipartite.Edge{Set: e.Set, Elem: idx[e.Elem]}
	}
	g, err := bipartite.FromEdges(m.numSets, len(ids), edges)
	if err != nil {
		return nil, fmt.Errorf("server: dynamic engine: building sample graph: %w", err)
	}
	d.recEdges = len(rec.Edges)
	d.recElems = len(ids)
	d.recPStar = rec.PStar
	d.materialized = true
	return &materialized{graph: g, ids: ids}, nil
}

// compactU32 dedupes a sorted slice in place.
func compactU32(xs []uint32) []uint32 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

func (m dynamicMode) Execute(snap *Snapshot, q Query) (*QueryResult, error) {
	res := greedy.MaxCover(snap.graph, q.K)
	st := snap.state.Stats()
	return &QueryResult{
		Algo:           q.Algo,
		Sets:           res.Sets,
		SketchCoverage: res.Covered,
		// The recovered sample is the exact incidence list of a
		// p*-sample of elements, so the Lemma 2.2 estimate covered/p*
		// applies unchanged.
		EstimatedCoverage: safeEstimate(res.Covered, st.PStar),
		SampledElements:   st.ElementsKept,
		PStar:             st.PStar,
		Engine:            ModeDynamic,
		SnapshotSeq:       snap.Seq,
		SnapshotEdges:     snap.IngestedEdges,
	}, nil
}
