package server

import (
	"bufio"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bipartite"
)

// metricsScrape is one parsed text-format exposition: sample line →
// value, family name → TYPE.
type metricsScrape struct {
	samples map[string]float64
	types   map[string]string
	helps   map[string]int // family → number of HELP lines (must be 1)
}

func parseMetrics(t *testing.T, body string) *metricsScrape {
	t.Helper()
	s := &metricsScrape{
		samples: make(map[string]float64),
		types:   make(map[string]string),
		helps:   make(map[string]int),
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) != 2 || fields[1] == "" {
				t.Fatalf("HELP line without text: %q", line)
			}
			s.helps[fields[0]]++
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if fields[1] != "counter" && fields[1] != "gauge" {
				t.Fatalf("unknown metric type in %q", line)
			}
			if prev, dup := s.types[fields[0]]; dup {
				t.Fatalf("family %s typed twice (%s, %s)", fields[0], prev, fields[1])
			}
			s.types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		key := line[:sp]
		if _, dup := s.samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		s.samples[key] = v
		family := key
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		if _, ok := s.types[family]; !ok {
			t.Fatalf("sample %q before its TYPE line", key)
		}
	}
	for family, n := range s.helps {
		if n != 1 {
			t.Fatalf("family %s has %d HELP lines", family, n)
		}
		if _, ok := s.types[family]; !ok {
			t.Fatalf("family %s has HELP but no TYPE", family)
		}
	}
	return s
}

func (s *metricsScrape) value(t *testing.T, key string) float64 {
	t.Helper()
	v, ok := s.samples[key]
	if !ok {
		t.Fatalf("metric %q missing from scrape", key)
	}
	return v
}

type extraSource struct{ calls int }

func (x *extraSource) AppendMetrics(w *MetricsWriter) {
	x.calls++
	w.Counter("covserved_test_extra_total", "Extra source sample.", []Label{{"src", `quo"te`}}, 3)
}

func TestMetricsEndpoint(t *testing.T) {
	m := NewMulti("")
	defer m.Close()
	cfg := Config{NumSets: 32, K: 4, Eps: 0.5, Seed: 1, Shards: 2}
	for _, ns := range []string{"alpha", "beta"} {
		if _, err := m.Create(ns, cfg); err != nil {
			t.Fatalf("Create(%q): %v", ns, err)
		}
	}
	extra := &extraSource{}
	h := NewMetricsHandler(m, extra)

	scrape := func() *metricsScrape {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("GET /metrics: status %d", rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		return parseMetrics(t, rec.Body.String())
	}

	// Scripted activity on alpha: ingest, two identical queries (second
	// hits the cache), an explicit refresh.
	alpha, _ := m.Get("alpha")
	edges := make([]bipartite.Edge, 200)
	for i := range edges {
		edges[i] = bipartite.Edge{Set: uint32(i % 32), Elem: uint32(i)}
	}
	if _, err := alpha.Ingest(edges); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if _, err := alpha.Query(Query{Algo: AlgoKCover, K: 3, Refresh: true}); err != nil {
		t.Fatalf("Query 1: %v", err)
	}
	if _, err := alpha.Query(Query{Algo: AlgoKCover, K: 3}); err != nil {
		t.Fatalf("Query 2: %v", err)
	}
	if _, err := alpha.Refresh(); err != nil {
		t.Fatalf("Refresh: %v", err)
	}

	s1 := scrape()

	// Expected families, with their types.
	wantTypes := map[string]string{
		"covserved_namespaces":             "gauge",
		"covserved_ingested_edges_total":   "counter",
		"covserved_ingest_batches_total":   "counter",
		"covserved_ingest_stalls_total":    "counter",
		"covserved_queries_total":          "counter",
		"covserved_query_cache_hits_total": "counter",
		"covserved_refreshes_total":        "counter",
		"covserved_refresh_skips_total":    "counter",
		"covserved_refresh_errors_total":   "counter",
		"covserved_snapshot_seq":           "gauge",
		"covserved_snapshot_edges":         "gauge",
		"covserved_test_extra_total":       "counter",
	}
	for family, typ := range wantTypes {
		if got := s1.types[family]; got != typ {
			t.Fatalf("family %s: type %q, want %q", family, got, typ)
		}
	}

	if got := s1.value(t, "covserved_namespaces"); got != 2 {
		t.Fatalf("namespaces = %v, want 2", got)
	}
	if got := s1.value(t, `covserved_ingested_edges_total{ns="alpha"}`); got != 200 {
		t.Fatalf("alpha ingested = %v, want 200", got)
	}
	if got := s1.value(t, `covserved_ingested_edges_total{ns="beta"}`); got != 0 {
		t.Fatalf("beta ingested = %v, want 0", got)
	}
	if got := s1.value(t, `covserved_queries_total{ns="alpha"}`); got != 2 {
		t.Fatalf("alpha queries = %v, want 2", got)
	}
	if got := s1.value(t, `covserved_query_cache_hits_total{ns="alpha"}`); got != 1 {
		t.Fatalf("alpha cache hits = %v, want 1", got)
	}
	if got := s1.value(t, `covserved_snapshot_edges{ns="alpha"}`); got != 200 {
		t.Fatalf("alpha snapshot edges = %v, want 200", got)
	}
	// Label values are escaped.
	if _, ok := s1.samples[`covserved_test_extra_total{src="quo\"te"}`]; !ok {
		t.Fatalf("escaped extra-source sample missing; have %v", s1.samples)
	}

	// More activity, then a second scrape: every counter is monotone
	// non-decreasing, and the touched ones strictly grew.
	if _, err := alpha.Ingest(edges[:50]); err != nil {
		t.Fatalf("Ingest 2: %v", err)
	}
	if _, err := alpha.Query(Query{Algo: AlgoKCover, K: 2, Refresh: true}); err != nil {
		t.Fatalf("Query 3: %v", err)
	}
	s2 := scrape()
	for key, v1 := range s1.samples {
		family := key
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		if s1.types[family] != "counter" {
			continue
		}
		if v2 := s2.value(t, key); v2 < v1 {
			t.Fatalf("counter %s went backwards: %v → %v", key, v1, v2)
		}
	}
	if got := s2.value(t, `covserved_ingested_edges_total{ns="alpha"}`); got != 250 {
		t.Fatalf("alpha ingested after second scrape = %v, want 250", got)
	}
	if got := s2.value(t, `covserved_queries_total{ns="alpha"}`); got != 3 {
		t.Fatalf("alpha queries after second scrape = %v, want 3", got)
	}
	if extra.calls != 2 {
		t.Fatalf("extra source invoked %d times, want 2", extra.calls)
	}

	// Method handling: POST is refused, HEAD answers headers only.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics: status %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("HEAD", "/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("HEAD /metrics: status %d, body %d bytes", rec.Code, rec.Body.Len())
	}
	if cl := rec.Header().Get("Content-Length"); cl == "" || cl == "0" {
		t.Fatalf("HEAD Content-Length = %q", cl)
	}
}
