package server

// This file is the service side of the durability plane (DESIGN.md
// §12): engines append every accepted batch to a per-engine
// write-ahead log (internal/wal) before it reaches the shard mailboxes,
// checkpoints cut batch-aligned snapshots whose persisted edge totals
// land exactly on WAL record boundaries, and startup recovery replays
// the WAL tail a restored snapshot does not cover through the normal
// routing path — so a recovered engine is bit-identical to one that
// never crashed. The recovery ordering is: write the snapshot container
// atomically (temp + fsync + rename + parent-dir sync), then truncate
// the WAL; a crash between the two leaves only frames the snapshot
// already covers, which replay skips.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/bipartite"
	"repro/internal/distributed"
	"repro/internal/wal"
)

// WALConfig makes an engine durable: every accepted Ingest batch is
// logged before it is enqueued to the shard mailboxes, and New replays
// the log tail at startup. See Config.WAL.
type WALConfig struct {
	// Dir is the log directory (per engine; a Multi with SetDurability
	// gives each namespace the subdirectory named after it). Required.
	Dir string
	// Fsync is the fsync policy: "always" (durable before Ingest
	// returns), "interval" (the default; fsync on a timer) or "off"
	// (kernel-buffered only — survives a process crash, not power loss).
	Fsync string
	// FsyncInterval is the "interval" policy's fsync period (default
	// 100ms).
	FsyncInterval time.Duration
	// SegmentBytes is the segment rotation threshold (default 64 MiB).
	SegmentBytes int64
	// OpenWrite, when non-nil, opens segment files for writing — the
	// fault-injection hook (internal/wal/faultfs). Production leaves it
	// nil.
	OpenWrite func(path string) (wal.WriteFile, error)
}

func (d *WALConfig) clone() *WALConfig {
	if d == nil {
		return nil
	}
	c := *d
	return &c
}

// walConfigName is the per-WAL-dir sidecar persisting the engine's
// configFrame, so Multi.RecoverNamespaces can rebuild a namespace that
// was never captured in a snapshot container.
const walConfigName = "config.json"

// openEngineWAL opens (and replays) an engine's write-ahead log during
// New, before the shard goroutines start: surviving frames past seed —
// the edge total the restored snapshot state already reflects — are
// routed through the same partitioner and applied with the same
// per-shard sub-batch boundaries as the original Ingest calls, so the
// shard states end up exactly as if those Ingests had re-run. Returns
// the log and the recovered edge total (seed + replayed).
func openEngineWAL(cfg Config, part distributed.Partitioner, states []ShardState, seed int64) (*wal.Log, int64, error) {
	d := cfg.WAL
	policy, err := wal.ParsePolicy(d.Fsync)
	if err != nil {
		return nil, 0, fmt.Errorf("server: Config.WAL: %w", err)
	}
	buckets := make([][]bipartite.Op, len(states))
	wlog, err := wal.OpenOps(wal.Options{
		Dir:          d.Dir,
		Policy:       policy,
		Interval:     d.FsyncInterval,
		SegmentBytes: d.SegmentBytes,
		OpenWrite:    d.OpenWrite,
	}, seed, func(off int64, ops []bipartite.Op) error {
		for i := range buckets {
			buckets[i] = buckets[i][:0]
		}
		for _, op := range ops {
			if int(op.Edge.Set) >= cfg.NumSets {
				return fmt.Errorf("edge set id %d out of range [0,%d)", op.Edge.Set, cfg.NumSets)
			}
			w := part.Route(op.Edge)
			buckets[w] = append(buckets[w], op)
		}
		for i, b := range buckets {
			if len(b) == 0 {
				continue
			}
			// Insert-only batches reach AddEdges through the states' own
			// ApplyOps adapters, preserving the exact per-shard sub-batch
			// boundaries of the original Ingest calls; a delete frame
			// replayed into an append-only engine fails recovery with the
			// typed ErrDeletesUnsupported (the WAL belongs to a dynamic
			// engine — a config mismatch, not data loss).
			if err := states[i].ApplyOps(b); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("server: recovering WAL: %w", err)
	}
	if err := writeWALConfig(d.Dir, cfg); err != nil {
		wlog.Close()
		return nil, 0, err
	}
	return wlog, wlog.NextOffset(), nil
}

// writeWALConfig persists the engine's configFrame beside its segments.
func writeWALConfig(dir string, cfg Config) error {
	frame, err := json.Marshal(frameFromConfig(cfg))
	if err != nil {
		return err
	}
	if err := atomicWrite(filepath.Join(dir, walConfigName), func(w io.Writer) error {
		_, werr := w.Write(frame)
		return werr
	}); err != nil {
		return fmt.Errorf("server: persisting WAL config: %w", err)
	}
	return nil
}

// Checkpoint publishes a batch-aligned snapshot: one whose
// IngestedEdges total lands exactly on a WAL record boundary, so a
// restore of its persisted state replays the remaining WAL tail without
// splitting any frame. A plain Refresh cannot promise that — a
// concurrent Ingest may have reached some shard mailboxes but not
// others when the merge requests cut through them — so Checkpoint holds
// the ingest lock exclusively (Ingest holds it shared across all of its
// enqueues) just long enough to place the state requests, guaranteeing
// the cut observes only complete batches. The snapshot is published
// like any refresh; on an engine without a WAL, Checkpoint is simply a
// Refresh with a momentarily exclusive cut.
func (e *Engine) Checkpoint() (*Snapshot, error) {
	e.refreshMu.Lock()
	defer e.refreshMu.Unlock()
	e.ingestMu.Lock()
	if e.closed {
		e.ingestMu.Unlock()
		return nil, ErrClosed
	}
	// Idle short-circuit: with the ingest lock held exclusively the
	// counter is exact, so an unchanged count means the published
	// snapshot already sits on the current (aligned) frontier.
	ingested := e.ingested.Load()
	if snap := e.snap.Load(); snap != nil && snap.IngestedEdges == ingested {
		e.ingestMu.Unlock()
		e.refreshSkips.Add(1)
		return snap, nil
	}
	replies := make([]chan shardReply, len(e.shards))
	for i, sh := range e.shards {
		replies[i] = make(chan shardReply, 1)
		sh.mail <- shardMsg{reply: replies[i], wantClone: true}
	}
	// The cut is placed; later Ingests order behind it in every mailbox,
	// so gathering can proceed without blocking them.
	e.ingestMu.Unlock()
	applied := e.restored
	states := make([]ShardState, len(replies))
	for i, ch := range replies {
		rep := <-ch
		applied += rep.stats.EdgesSeen
		states[i] = rep.clone
	}
	merged, err := e.mode.MergeStates(states)
	if err != nil {
		return nil, err
	}
	snap, err := NewStateSnapshot(e.mode, e.seq.Add(1), applied, merged)
	if err != nil {
		return nil, err
	}
	e.publish(snap)
	return snap, nil
}

// truncateWAL drops WAL segments fully covered by a durable snapshot
// reflecting the first end edges. No-op without a WAL.
func (e *Engine) truncateWAL(end int64) error {
	if e.wal == nil {
		return nil
	}
	return e.wal.TruncateBefore(end)
}

// WALStats reports the engine's write-ahead-log accounting (zero value
// without a WAL).
func (e *Engine) WALStats() wal.Stats {
	if e.wal == nil {
		return wal.Stats{}
	}
	return e.wal.Stats()
}

// CheckpointEngine checkpoints one engine to path: batch-aligned
// snapshot, atomic durable write (v1 state bytes), then WAL truncation
// — in that order, so a crash at any point leaves either the old
// snapshot plus a full WAL or the new snapshot plus a (possibly
// not-yet-truncated) WAL whose covered frames replay as no-ops.
func CheckpointEngine(e *Engine, path string) (*Snapshot, error) {
	snap, err := e.Checkpoint()
	if err != nil {
		return nil, err
	}
	if err := atomicWrite(path, snap.WriteState); err != nil {
		return nil, err
	}
	if err := e.truncateWAL(snap.IngestedEdges); err != nil {
		return snap, err
	}
	return snap, nil
}

// CheckpointMulti checkpoints every namespace into one v2 container at
// path (atomic durable write), then truncates each namespace's WAL to
// the frames its frame in the container does not cover.
func CheckpointMulti(m *Multi, path string) error {
	type cut struct {
		e    *Engine
		edge int64
	}
	var cuts []cut
	err := atomicWrite(path, func(w io.Writer) error {
		return m.writeSnapshotWith(w, func(e *Engine) (*Snapshot, error) {
			snap, err := e.Checkpoint()
			if err == nil {
				cuts = append(cuts, cut{e, snap.IngestedEdges})
			}
			return snap, err
		})
	})
	if err != nil {
		return err
	}
	var first error
	for _, c := range cuts {
		if err := c.e.truncateWAL(c.edge); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SetDurability arms the directory's durability plane: every namespace
// created (or restored, or recovered) afterwards runs with a WAL in
// root Dir's subdirectory named after it, and Delete removes that
// subdirectory with the namespace. Call before any Create; d.Dir is the
// root. A nil d disarms.
func (m *Multi) SetDurability(d *WALConfig) {
	m.mu.Lock()
	m.dur = d.clone()
	m.mu.Unlock()
}

// durability returns the directory's WAL template (nil when disarmed).
func (m *Multi) durability() *WALConfig {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.dur
}

// namespaceWAL derives a namespace's WALConfig from the directory
// template (namespace names are validated to be filesystem-safe).
func (d *WALConfig) namespaceWAL(name string) *WALConfig {
	c := *d
	c.Dir = filepath.Join(d.Dir, name)
	return &c
}

// RecoverNamespaces scans the durability root for namespaces that left
// a WAL behind but are absent from the directory — created after the
// last container snapshot, or never snapshotted at all — and recreates
// each from its persisted config sidecar, replaying its full WAL.
// Called after RestoreAll at startup, it closes the recovery picture:
// snapshotted namespaces restore + replay their tails via Create's WAL
// injection, and the rest are rebuilt here. Returns the recovered
// names, sorted.
func (m *Multi) RecoverNamespaces() ([]string, error) {
	d := m.durability()
	if d == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(d.Dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: scanning durability root: %w", err)
	}
	var names []string
	for _, en := range entries {
		name := en.Name()
		if !en.IsDir() || ValidateNamespaceName(name) != nil {
			continue
		}
		if _, ok := m.Get(name); ok {
			continue
		}
		data, err := os.ReadFile(filepath.Join(d.Dir, name, walConfigName))
		if os.IsNotExist(err) {
			continue // not a namespace WAL directory
		}
		if err != nil {
			return names, fmt.Errorf("server: recovering namespace %q: %w", name, err)
		}
		var frame configFrame
		if err := json.Unmarshal(data, &frame); err != nil {
			return names, fmt.Errorf("server: recovering namespace %q: decoding %s: %w", name, walConfigName, err)
		}
		if _, err := m.Create(name, frame.config()); err != nil {
			return names, fmt.Errorf("server: recovering namespace %q: %w", name, err)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// StartAutosnapshot checkpoints the whole directory to path every
// interval (CheckpointMulti: atomic v2 container write, then WAL
// truncation), bounding both the data at risk under the "off"/"interval"
// fsync policies and the WAL replay length at the next startup. onErr,
// when non-nil, receives every failed checkpoint. The returned stop
// function halts the loop and waits for an in-flight checkpoint to
// finish; it is safe to call once.
func (m *Multi) StartAutosnapshot(path string, interval time.Duration, onErr func(error)) (stop func()) {
	if interval <= 0 || path == "" {
		return func() {}
	}
	stopC := make(chan struct{})
	doneC := make(chan struct{})
	go func() {
		defer close(doneC)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopC:
				return
			case <-t.C:
				if err := CheckpointMulti(m, path); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
	return func() {
		close(stopC)
		<-doneC
	}
}
