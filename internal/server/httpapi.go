package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/bipartite"
)

// HTTPOptions tunes the HTTP front end.
type HTTPOptions struct {
	// MaxBatchEdges rejects ingest bodies with more edges (default 1<<20).
	MaxBatchEdges int
	// MaxBodyBytes caps the accepted request body size in bytes. Zero
	// derives a limit from MaxBatchEdges (32 bytes per edge pair plus
	// headroom — enough for the largest allowed batch in the JSON wire
	// format even with whitespace-heavy encoders).
	MaxBodyBytes int64
	// SnapshotPath, when non-empty, is where POST /v1/snapshot persists
	// the merged sketch (written atomically via a temp file + rename).
	SnapshotPath string
}

func (o HTTPOptions) maxBatch() int {
	if o.MaxBatchEdges < 1 {
		return 1 << 20
	}
	return o.MaxBatchEdges
}

func (o HTTPOptions) maxBodyBytes() int64 {
	if o.MaxBodyBytes > 0 {
		return o.MaxBodyBytes
	}
	// Compact encoding needs 24 bytes per worst-case pair
	// ("[4294967295,4294967295],"); budget 32 so clients that emit
	// whitespace (e.g. pretty-printers) still fit a full -max-batch.
	return 32*int64(o.maxBatch()) + 4096
}

// NewHTTPHandler exposes an engine as the covserved JSON API:
//
//	POST /v1/edges     {"edges": [[set, elem], ...]}  → bulk ingest
//	GET  /v1/query     ?algo=kcover&k=10 | ?algo=outliers&lambda=0.1 |
//	                   ?algo=greedy — optional &refresh=1 merges first
//	GET  /v1/stats     → engine + per-shard accounting
//	POST /v1/snapshot  → coordinator merge; persists when configured
//	GET  /v1/healthz   → liveness
func NewHTTPHandler(e *Engine, opt HTTPOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/edges", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			methodNotAllowed(w, http.MethodPost)
			return
		}
		// Bound the body before decoding: a misbehaving client cannot make
		// the decoder buffer an unbounded payload.
		r.Body = http.MaxBytesReader(w, r.Body, opt.maxBodyBytes())
		var body ingestRequest
		dec := json.NewDecoder(r.Body)
		if err := dec.Decode(&body); err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				httpError(w, http.StatusRequestEntityTooLarge,
					"body exceeds limit of %d bytes", tooLarge.Limit)
				return
			}
			httpError(w, http.StatusBadRequest, "bad ingest body: %v", err)
			return
		}
		// One JSON document per request: trailing tokens after the body
		// are a malformed request, not silently ignorable garbage.
		if _, err := dec.Token(); err != io.EOF {
			httpError(w, http.StatusBadRequest, "trailing data after JSON body")
			return
		}
		if len(body.Edges) > opt.maxBatch() {
			httpError(w, http.StatusRequestEntityTooLarge,
				"batch of %d edges exceeds limit %d", len(body.Edges), opt.maxBatch())
			return
		}
		n, err := e.Ingest(body.edges())
		if err != nil {
			httpError(w, statusFor(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, ingestResponse{Accepted: n, IngestedTotal: e.ingested.Load()})
	})

	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		q := Query{Algo: Algo(r.URL.Query().Get("algo"))}
		if q.Algo == "" {
			q.Algo = AlgoKCover
		}
		if v := r.URL.Query().Get("k"); v != "" {
			k, err := strconv.Atoi(v)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad k: %v", err)
				return
			}
			q.K = k
		}
		if v := r.URL.Query().Get("lambda"); v != "" {
			l, err := strconv.ParseFloat(v, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad lambda: %v", err)
				return
			}
			q.Lambda = l
		}
		if v := r.URL.Query().Get("refresh"); v == "1" || v == "true" {
			q.Refresh = true
		}
		res, err := e.Query(q)
		if err != nil {
			httpError(w, statusFor(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		st, err := e.Stats()
		if err != nil {
			httpError(w, statusFor(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("/v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			methodNotAllowed(w, http.MethodPost)
			return
		}
		resp := snapshotResponse{}
		if opt.SnapshotPath != "" {
			snap, err := persistSnapshot(e, opt.SnapshotPath)
			if err != nil {
				httpError(w, http.StatusInternalServerError, "%v", err)
				return
			}
			resp.fill(snap)
			resp.Persisted = opt.SnapshotPath
		} else {
			snap, err := e.Refresh()
			if err != nil {
				httpError(w, statusFor(err), "%v", err)
				return
			}
			resp.fill(snap)
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			methodNotAllowed(w, "GET, HEAD")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// methodNotAllowed writes a 405 with the required Allow header (RFC 9110
// §15.5.6).
func methodNotAllowed(w http.ResponseWriter, allowed string) {
	w.Header().Set("Allow", allowed)
	httpError(w, http.StatusMethodNotAllowed, "%s required", allowed)
}

// persistSnapshot merges and writes the sketch atomically to path. The
// temp file is private to this call, so concurrent snapshot requests
// cannot interleave bytes; the rename publishes one complete sketch.
func persistSnapshot(e *Engine, path string) (*Snapshot, error) {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	tmp := f.Name()
	snap, err := e.WriteSnapshot(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	return snap, nil
}

// ingestRequest is the POST /v1/edges body: edges as [set, elem] pairs.
type ingestRequest struct {
	Edges [][2]uint32 `json:"edges"`
}

func (r ingestRequest) edges() []bipartite.Edge {
	out := make([]bipartite.Edge, len(r.Edges))
	for i, p := range r.Edges {
		out[i] = bipartite.Edge{Set: p[0], Elem: p[1]}
	}
	return out
}

type ingestResponse struct {
	Accepted      int   `json:"accepted"`
	IngestedTotal int64 `json:"ingested_total"`
}

type snapshotResponse struct {
	Seq           uint64    `json:"seq"`
	CreatedAt     time.Time `json:"created_at"`
	IngestedEdges int64     `json:"ingested_edges"`
	Elements      int       `json:"elements"`
	KeptEdges     int       `json:"kept_edges"`
	PStar         float64   `json:"p_star"`
	Persisted     string    `json:"persisted,omitempty"`
}

func (r *snapshotResponse) fill(s *Snapshot) {
	r.Seq = s.Seq
	r.CreatedAt = s.CreatedAt
	r.IngestedEdges = s.IngestedEdges
	r.Elements = s.sketch.Elements()
	r.KeptEdges = s.sketch.Edges()
	r.PStar = s.sketch.PStar()
}

// statusFor maps engine errors to HTTP codes: a closed engine is a
// conflict with the server's state; everything else is a bad request.
func statusFor(err error) int {
	if errors.Is(err, ErrClosed) {
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
