package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/bipartite"
)

// HTTPOptions tunes the HTTP front end.
type HTTPOptions struct {
	// MaxBatchEdges rejects ingest bodies with more edges (default 1<<20).
	MaxBatchEdges int
	// MaxBodyBytes caps the accepted request body size in bytes. Zero
	// derives a limit from MaxBatchEdges (32 bytes per edge pair plus
	// headroom — enough for the largest allowed batch in the JSON wire
	// format even with whitespace-heavy encoders).
	MaxBodyBytes int64
	// SnapshotPath, when non-empty, is where POST …/snapshot persists
	// state (written atomically via a temp file + rename). A single-engine
	// handler writes the v1 sketch format; a multi handler writes the v2
	// container framing every namespace.
	SnapshotPath string
}

func (o HTTPOptions) maxBatch() int {
	if o.MaxBatchEdges < 1 {
		return 1 << 20
	}
	return o.MaxBatchEdges
}

func (o HTTPOptions) maxBodyBytes() int64 {
	if o.MaxBodyBytes > 0 {
		return o.MaxBodyBytes
	}
	// Compact encoding needs 24 bytes per worst-case pair
	// ("[4294967295,4294967295],"); budget 32 so clients that emit
	// whitespace (e.g. pretty-printers) still fit a full -max-batch.
	return 32*int64(o.maxBatch()) + 4096
}

// api bundles the pieces the engine-scoped endpoints share between the
// single-engine and the multi-tenant handler: the request limits and
// the snapshot-persistence strategy (v1 sketch file vs v2 container).
type api struct {
	opt HTTPOptions
	// persist implements POST …/snapshot for target e: refresh e and,
	// when a SnapshotPath is configured, persist to disk. It returns e's
	// fresh snapshot and the path written ("" when nothing persisted).
	persist func(e *Engine) (*Snapshot, string, error)
}

// NewHTTPHandler exposes a single engine as the covserved JSON API:
//
//	POST /v1/edges     {"edges": [[set, elem], ...]}  → bulk ingest
//	GET  /v1/query     ?algo=kcover&k=10 | ?algo=outliers&lambda=0.1 |
//	                   ?algo=greedy — optional &refresh=1 merges first.
//	                   Weighted datasets serve kcover (alias wkcover)
//	                   through the weighted query plane and reject
//	                   outliers/greedy.
//	GET  /v1/stats     → engine + per-shard accounting
//	POST /v1/snapshot  → coordinator merge; persists when configured
//	GET  /v1/healthz   → liveness
//
// For a namespaced (multi-tenant) surface, see NewMultiHandler; this
// handler serves exactly one dataset and persists v1 sketch files.
func NewHTTPHandler(e *Engine, opt HTTPOptions) http.Handler {
	a := &api{opt: opt}
	a.persist = func(target *Engine) (*Snapshot, string, error) {
		if opt.SnapshotPath == "" {
			snap, err := target.Refresh()
			return snap, "", err
		}
		snap, err := persistSnapshot(target, opt.SnapshotPath)
		return snap, opt.SnapshotPath, err
	}
	mux := http.NewServeMux()
	fixed := func(r *http.Request) (*Engine, error) { return e, nil }
	a.engineRoutes(mux, "/v1", fixed)
	registerHealthz(mux)
	return mux
}

// NewMultiHandler exposes a namespace directory as the multi-tenant
// covserved JSON API. The single-dataset routes of NewHTTPHandler stay
// available unprefixed and resolve to the directory's default namespace
// (404 until it is created), so pre-namespace clients keep working.
// The namespaced surface:
//
//	GET    /v1/ns                   → list namespaces
//	POST   /v1/ns                   {"name": …, "num_sets": …, "k": …, …}
//	GET    /v1/ns/{name}            → one namespace's directory entry
//	DELETE /v1/ns/{name}            → stop and remove the namespace
//	POST   /v1/ns/{name}/edges      ┐
//	GET    /v1/ns/{name}/query      │ per-namespace variants of the
//	GET    /v1/ns/{name}/stats      │ single-dataset routes
//	POST   /v1/ns/{name}/snapshot   ┘
//
// POST …/snapshot (any variant) persists the whole directory as one v2
// container when HTTPOptions.SnapshotPath is set, so a single file
// always holds every namespace.
func NewMultiHandler(m *Multi, opt HTTPOptions) http.Handler {
	a := &api{opt: opt}
	a.persist = func(target *Engine) (*Snapshot, string, error) {
		// Refresh the target first so the response describes a merge that
		// reflects this request; the container write below re-merges every
		// namespace (idle ones short-circuit).
		snap, err := target.Refresh()
		if err != nil || opt.SnapshotPath == "" {
			return snap, "", err
		}
		if err := persistMultiSnapshot(m, opt.SnapshotPath); err != nil {
			return nil, "", err
		}
		return snap, opt.SnapshotPath, nil
	}
	mux := http.NewServeMux()
	a.engineRoutes(mux, "/v1", func(r *http.Request) (*Engine, error) {
		e, ok := m.Default()
		if !ok {
			return nil, fmt.Errorf("%w: %q (default)", ErrNamespaceUnknown, m.DefaultName())
		}
		return e, nil
	})
	a.engineRoutes(mux, "/v1/ns/{name}", func(r *http.Request) (*Engine, error) {
		name := r.PathValue("name")
		e, ok := m.Get(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNamespaceUnknown, name)
		}
		return e, nil
	})

	mux.HandleFunc("/v1/ns", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			WriteJSON(w, http.StatusOK, listNamespacesResponse{
				Default:    m.DefaultName(),
				Namespaces: m.List(),
			})
		case http.MethodPost:
			a.handleCreateNamespace(m, w, r)
		default:
			MethodNotAllowed(w, "GET, POST")
		}
	})

	mux.HandleFunc("/v1/ns/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		switch r.Method {
		case http.MethodGet:
			e, ok := m.Get(name)
			if !ok {
				ErrorJSON(w, http.StatusNotFound, "%v: %q", ErrNamespaceUnknown, name)
				return
			}
			WriteJSON(w, http.StatusOK, infoFor(name, e, name == m.DefaultName()))
		case http.MethodDelete:
			if err := m.Delete(name); err != nil {
				ErrorJSON(w, StatusFor(err), "%v", err)
				return
			}
			WriteJSON(w, http.StatusOK, map[string]string{"deleted": name})
		default:
			MethodNotAllowed(w, "GET, DELETE")
		}
	})

	registerHealthz(mux)
	return mux
}

// engineRoutes registers the four engine-scoped endpoints under prefix,
// resolving the target engine per request (the resolver reads the
// {name} path value on namespaced routes).
func (a *api) engineRoutes(mux *http.ServeMux, prefix string, resolve func(*http.Request) (*Engine, error)) {
	withEngine := func(method, allow string, h func(*Engine, http.ResponseWriter, *http.Request)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != method {
				MethodNotAllowed(w, allow)
				return
			}
			e, err := resolve(r)
			if err != nil {
				ErrorJSON(w, StatusFor(err), "%v", err)
				return
			}
			h(e, w, r)
		}
	}
	// POST ingests edges (or, on a delete-capable engine, an op batch);
	// DELETE retracts previously inserted edges — dynamic engines only.
	mux.HandleFunc(prefix+"/edges", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost && r.Method != http.MethodDelete {
			MethodNotAllowed(w, "POST, DELETE")
			return
		}
		e, err := resolve(r)
		if err != nil {
			ErrorJSON(w, StatusFor(err), "%v", err)
			return
		}
		if r.Method == http.MethodDelete {
			a.handleDelete(e, w, r)
			return
		}
		a.handleIngest(e, w, r)
	})
	mux.HandleFunc(prefix+"/query", withEngine(http.MethodGet, "GET", a.handleQuery))
	mux.HandleFunc(prefix+"/stats", withEngine(http.MethodGet, "GET", a.handleStats))
	// POST merges (and persists when configured); GET serves the merged
	// state bytes — the same blob a cluster peer pulls from
	// /v1/cluster/sketch, so one curl can inspect or back up a node.
	mux.HandleFunc(prefix+"/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodPost {
			MethodNotAllowed(w, "GET, POST")
			return
		}
		e, err := resolve(r)
		if err != nil {
			ErrorJSON(w, StatusFor(err), "%v", err)
			return
		}
		if r.Method == http.MethodGet {
			ServeState(e, w, r)
			return
		}
		a.handleSnapshot(e, w, r)
	})
}

// Response headers of the binary state endpoints (GET …/snapshot and
// /v1/cluster/sketch): enough metadata for a cluster peer to validate a
// blob before decoding it and to account for the edges it carries.
const (
	// HeaderNodeID carries the serving node's id on cluster responses.
	HeaderNodeID = "X-Cov-Node"
	// HeaderWeighted is "1" when the blob is a weighted class bank
	// (weighted.BankMagic framing) rather than a v1 sketch.
	HeaderWeighted = "X-Cov-Weighted"
	// HeaderWeightsSig is the decimal WeightConfig.Signature of the
	// serving engine (0 for unweighted) — peers refuse to merge a blob
	// whose weights disagree with their own.
	HeaderWeightsSig = "X-Cov-Weights-Sig"
	// HeaderEdges is the decimal ingested-edge total the blob reflects.
	HeaderEdges = "X-Cov-Edges"
	// HeaderEngine is the serving engine's mode name ("sketch",
	// "weighted", "sieve") — peers refuse to merge a blob produced by a
	// different engine mode. Absent on responses from servers that
	// predate the engine-mode plane; receivers treat it as advisory.
	HeaderEngine = "X-Cov-Engine"
)

// ServeState implements a conditional GET of an engine's serialized
// merged state: Content-Type application/octet-stream, body exactly the
// bytes Engine.WriteSnapshot persists (v1 sketch, or a class bank on a
// weighted engine), metadata in the X-Cov-* headers. The ETag is the
// quoted ingested-edge total — a node's merged state is a deterministic
// function of its (append-only) ingested edge set, so an unchanged
// count means unchanged bytes and If-None-Match short-circuits to an
// empty 304: the anti-entropy loop's steady-state probe costs one
// refresh idle-check and no serialization. Both GET …/snapshot and the
// cluster /v1/cluster/sketch endpoint are this handler.
func ServeState(e *Engine, w http.ResponseWriter, r *http.Request) {
	snap, err := e.Refresh() // idle engines reuse the published snapshot
	if err != nil {
		ErrorJSON(w, StatusFor(err), "%v", err)
		return
	}
	etag := `"` + strconv.FormatInt(snap.IngestedEdges, 10) + `"`
	h := w.Header()
	h.Set("ETag", etag)
	h.Set(HeaderEdges, strconv.FormatInt(snap.IngestedEdges, 10))
	h.Set(HeaderWeightsSig, strconv.FormatUint(e.WeightSig(), 10))
	h.Set(HeaderEngine, string(e.ModeName()))
	if snap.Weighted() {
		h.Set(HeaderWeighted, "1")
	}
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	// Serialize to memory first: an encode failure after WriteHeader
	// would truncate a 200 mid-body, which a peer could mistake for a
	// corrupt snapshot rather than a server error.
	var buf bytes.Buffer
	if err := snap.WriteState(&buf); err != nil {
		ErrorJSON(w, http.StatusInternalServerError, "serializing state: %v", err)
		return
	}
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		w.Write(buf.Bytes())
	}
}

func registerHealthz(mux *http.ServeMux) {
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			MethodNotAllowed(w, "GET, HEAD")
			return
		}
		WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
}

func (a *api) handleIngest(e *Engine, w http.ResponseWriter, r *http.Request) {
	// Bound the body before decoding: a misbehaving client cannot make
	// the decoder buffer an unbounded payload.
	r.Body = http.MaxBytesReader(w, r.Body, a.opt.maxBodyBytes())
	var body ingestRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			ErrorJSON(w, http.StatusRequestEntityTooLarge,
				"body exceeds limit of %d bytes", tooLarge.Limit)
			return
		}
		ErrorJSON(w, http.StatusBadRequest, "bad ingest body: %v", err)
		return
	}
	// One JSON document per request: trailing tokens after the body
	// are a malformed request, not silently ignorable garbage.
	if _, err := dec.Token(); err != io.EOF {
		ErrorJSON(w, http.StatusBadRequest, "trailing data after JSON body")
		return
	}
	if len(body.Edges) > 0 && len(body.Ops) > 0 {
		ErrorJSON(w, http.StatusBadRequest, `body mixes "edges" and "ops"; send one or the other`)
		return
	}
	if max := a.opt.maxBatch(); len(body.Edges) > max || len(body.Ops) > max {
		ErrorJSON(w, http.StatusRequestEntityTooLarge,
			"batch of %d edges exceeds limit %d", len(body.Edges)+len(body.Ops), max)
		return
	}
	var n int
	var err error
	if len(body.Ops) > 0 {
		var ops []bipartite.Op
		if ops, err = body.ops(); err == nil {
			n, err = e.IngestOps(ops)
		}
	} else {
		n, err = e.Ingest(body.edges())
	}
	if err != nil {
		ErrorJSON(w, StatusFor(err), "%v", err)
		return
	}
	WriteJSON(w, http.StatusOK, ingestResponse{Accepted: n, IngestedTotal: e.IngestedEdges()})
}

// handleDelete is DELETE …/edges: the body's edges are retracted as
// delete ops. Engines whose mode cannot apply deletes answer 409 with
// the typed ErrDeletesUnsupported message.
func (a *api) handleDelete(e *Engine, w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, a.opt.maxBodyBytes())
	var body ingestRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			ErrorJSON(w, http.StatusRequestEntityTooLarge,
				"body exceeds limit of %d bytes", tooLarge.Limit)
			return
		}
		ErrorJSON(w, http.StatusBadRequest, "bad delete body: %v", err)
		return
	}
	if _, err := dec.Token(); err != io.EOF {
		ErrorJSON(w, http.StatusBadRequest, "trailing data after JSON body")
		return
	}
	if len(body.Ops) > 0 {
		ErrorJSON(w, http.StatusBadRequest, `DELETE takes "edges" only; POST an "ops" batch for mixed mutations`)
		return
	}
	if len(body.Edges) > a.opt.maxBatch() {
		ErrorJSON(w, http.StatusRequestEntityTooLarge,
			"batch of %d edges exceeds limit %d", len(body.Edges), a.opt.maxBatch())
		return
	}
	n, err := e.IngestOps(bipartite.Deletes(body.edges()))
	if err != nil {
		ErrorJSON(w, StatusFor(err), "%v", err)
		return
	}
	WriteJSON(w, http.StatusOK, ingestResponse{Accepted: n, IngestedTotal: e.IngestedEdges()})
}

// ParseQuery decodes the ?algo/&k/&lambda/&refresh query parameters
// into a Query (algo defaults to kcover). The engine and cluster query
// endpoints share it, so a URL means the same thing on every route.
func ParseQuery(r *http.Request) (Query, error) {
	q := Query{Algo: Algo(r.URL.Query().Get("algo"))}
	if q.Algo == "" {
		q.Algo = AlgoKCover
	}
	if v := r.URL.Query().Get("k"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil {
			return q, fmt.Errorf("bad k: %v", err)
		}
		q.K = k
	}
	if v := r.URL.Query().Get("lambda"); v != "" {
		l, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return q, fmt.Errorf("bad lambda: %v", err)
		}
		q.Lambda = l
	}
	if v := r.URL.Query().Get("refresh"); v == "1" || v == "true" {
		q.Refresh = true
	}
	return q, nil
}

func (a *api) handleQuery(e *Engine, w http.ResponseWriter, r *http.Request) {
	q, err := ParseQuery(r)
	if err != nil {
		ErrorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := e.Query(q)
	if err != nil {
		ErrorJSON(w, StatusFor(err), "%v", err)
		return
	}
	WriteJSON(w, http.StatusOK, res)
}

func (a *api) handleStats(e *Engine, w http.ResponseWriter, r *http.Request) {
	st, err := e.Stats()
	if err != nil {
		ErrorJSON(w, StatusFor(err), "%v", err)
		return
	}
	WriteJSON(w, http.StatusOK, st)
}

func (a *api) handleSnapshot(e *Engine, w http.ResponseWriter, r *http.Request) {
	snap, persisted, err := a.persist(e)
	if err != nil {
		// Unlike the other endpoints, a snapshot failure that is not a
		// recognized service-state error is an I/O problem (disk full,
		// unwritable path) — the server's fault, not the request's.
		code := StatusFor(err)
		if code == http.StatusBadRequest {
			code = http.StatusInternalServerError
		}
		ErrorJSON(w, code, "%v", err)
		return
	}
	resp := snapshotResponse{}
	resp.fill(snap)
	resp.Persisted = persisted
	WriteJSON(w, http.StatusOK, resp)
}

// handleCreateNamespace implements POST /v1/ns.
func (a *api) handleCreateNamespace(m *Multi, w http.ResponseWriter, r *http.Request) {
	// Larger than the other control bodies: a weighted namespace carries
	// its element-weight table inline (~20 JSON bytes per element).
	r.Body = http.MaxBytesReader(w, r.Body, 1<<24)
	var req createNamespaceRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			ErrorJSON(w, http.StatusRequestEntityTooLarge,
				"body exceeds limit of %d bytes", tooLarge.Limit)
			return
		}
		ErrorJSON(w, http.StatusBadRequest, "bad namespace body: %v", err)
		return
	}
	if _, err := dec.Token(); err != io.EOF {
		ErrorJSON(w, http.StatusBadRequest, "trailing data after JSON body")
		return
	}
	e, err := m.Create(req.Name, req.config())
	if err != nil {
		ErrorJSON(w, StatusFor(err), "%v", err)
		return
	}
	WriteJSON(w, http.StatusCreated, infoFor(req.Name, e, req.Name == m.DefaultName()))
}

// MethodNotAllowed writes a 405 with the required Allow header (RFC 9110
// §15.5.6).
func MethodNotAllowed(w http.ResponseWriter, allowed string) {
	w.Header().Set("Allow", allowed)
	ErrorJSON(w, http.StatusMethodNotAllowed, "%s required", allowed)
}

// Indirection points of atomicWrite's durability steps, swapped by the
// write-path test to assert the ordering (data fsynced before the
// rename publishes it; directory fsynced after, so the new name itself
// survives power loss).
var (
	syncFile   = (*os.File).Sync
	renameFile = os.Rename
	syncDir    = func(dir string) error {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		err = d.Sync()
		if cerr := d.Close(); err == nil {
			err = cerr
		}
		return err
	}
)

// atomicWrite streams write to a private temp file, fsyncs it, renames
// it over path and fsyncs the parent directory — so concurrent writers
// cannot interleave bytes, readers only ever observe a complete file,
// and a power loss after return cannot roll the file back to its old
// content (rename without the surrounding fsyncs guarantees neither).
func atomicWrite(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	err = write(f)
	if err == nil {
		err = syncFile(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := renameFile(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// persistSnapshot checkpoints one engine's state (format v1)
// atomically to path, truncating its WAL behind the durable file.
func persistSnapshot(e *Engine, path string) (*Snapshot, error) {
	return CheckpointEngine(e, path)
}

// persistMultiSnapshot checkpoints the whole namespace directory as one
// v2 container, atomically, truncating every namespace's WAL behind it.
func persistMultiSnapshot(m *Multi, path string) error {
	return CheckpointMulti(m, path)
}

// ingestRequest is the POST …/edges body: edges as [set, elem] pairs,
// or — on delete-capable engines — ops as [kind, set, elem] triples
// (kind 0 = insert, 1 = delete). The two forms are mutually exclusive
// per request; DELETE …/edges reuses the edges form and retracts them.
type ingestRequest struct {
	Edges [][2]uint32 `json:"edges"`
	Ops   [][3]uint32 `json:"ops"`
}

func (r ingestRequest) edges() []bipartite.Edge {
	out := make([]bipartite.Edge, len(r.Edges))
	for i, p := range r.Edges {
		out[i] = bipartite.Edge{Set: p[0], Elem: p[1]}
	}
	return out
}

func (r ingestRequest) ops() ([]bipartite.Op, error) {
	out := make([]bipartite.Op, len(r.Ops))
	for i, p := range r.Ops {
		if p[0] > uint32(bipartite.OpDelete) {
			return nil, fmt.Errorf("op %d: unknown kind %d (0 inserts, 1 deletes)", i, p[0])
		}
		out[i] = bipartite.Op{Kind: bipartite.OpKind(p[0]), Edge: bipartite.Edge{Set: p[1], Elem: p[2]}}
	}
	return out, nil
}

type ingestResponse struct {
	Accepted      int   `json:"accepted"`
	IngestedTotal int64 `json:"ingested_total"`
}

// createNamespaceRequest is the POST /v1/ns body. Name, NumSets and K
// are required; the rest default as in Config. A weights object makes
// the namespace a weighted-coverage dataset (element weights are
// namespace configuration; kcover queries then run the weighted plane).
type createNamespaceRequest struct {
	Name        string  `json:"name"`
	NumSets     int     `json:"num_sets"`
	K           int     `json:"k"`
	Eps         float64 `json:"eps"`
	Seed        uint64  `json:"seed"`
	NumElems    int     `json:"num_elems"`
	EdgeBudget  int     `json:"edge_budget"`
	SpaceFactor float64 `json:"space_factor"`
	Shards      int     `json:"shards"`
	QueueDepth  int     `json:"queue_depth"`
	// MergeEveryMS enables the periodic snapshot merge, in milliseconds.
	MergeEveryMS int64         `json:"merge_every_ms"`
	QueryCache   int           `json:"query_cache"`
	Weights      *weightsFrame `json:"weights,omitempty"`
	// Engine selects the engine mode by name ("sketch", "weighted",
	// "sieve"); empty defaults as in Config.EngineMode.
	Engine string `json:"engine,omitempty"`
}

// weightsFrame is the wire/persisted form of a WeightConfig, shared by
// the POST /v1/ns body and the snapshot-v2 config frame.
type weightsFrame struct {
	// Table[e] is element e's weight (finite, non-negative).
	Table []float64 `json:"table"`
	// Default is the weight of elements at or beyond the table (0 =
	// ignore them).
	Default float64 `json:"default,omitempty"`
}

func weightsFromConfig(w *WeightConfig) *weightsFrame {
	if w == nil {
		return nil
	}
	return &weightsFrame{Table: w.Table, Default: w.Default}
}

func (f *weightsFrame) config() *WeightConfig {
	if f == nil {
		return nil
	}
	return &WeightConfig{Table: f.Table, Default: f.Default}
}

func (r createNamespaceRequest) config() Config {
	return Config{
		NumSets:     r.NumSets,
		K:           r.K,
		Eps:         r.Eps,
		Seed:        r.Seed,
		NumElems:    r.NumElems,
		EdgeBudget:  r.EdgeBudget,
		SpaceFactor: r.SpaceFactor,
		Shards:      r.Shards,
		QueueDepth:  r.QueueDepth,
		MergeEvery:  time.Duration(r.MergeEveryMS) * time.Millisecond,
		QueryCache:  r.QueryCache,
		Weights:     r.Weights.config(),
		Engine:      ModeName(r.Engine),
	}
}

// listNamespacesResponse is the GET /v1/ns body.
type listNamespacesResponse struct {
	// Default names the namespace the unprefixed routes alias.
	Default string `json:"default"`
	// Namespaces lists every namespace, sorted by name.
	Namespaces []NamespaceInfo `json:"namespaces"`
}

type snapshotResponse struct {
	Seq           uint64    `json:"seq"`
	CreatedAt     time.Time `json:"created_at"`
	IngestedEdges int64     `json:"ingested_edges"`
	Elements      int       `json:"elements"`
	KeptEdges     int       `json:"kept_edges"`
	PStar         float64   `json:"p_star"`
	Weighted      bool      `json:"weighted,omitempty"`
	WeightClasses int       `json:"weight_classes,omitempty"`
	Engine        ModeName  `json:"engine,omitempty"`
	Persisted     string    `json:"persisted,omitempty"`
}

func (r *snapshotResponse) fill(s *Snapshot) {
	r.Seq = s.Seq
	r.CreatedAt = s.CreatedAt
	r.IngestedEdges = s.IngestedEdges
	r.Elements = s.elements()
	r.KeptEdges = s.keptEdges()
	r.PStar = s.pStar()
	if s.Weighted() {
		r.Weighted = true
		r.WeightClasses = s.Bank().Classes()
	}
	if name := s.ModeName(); name != ModeSketch && name != ModeWeighted {
		r.Engine = name
	}
}

// StatusFor maps service errors to HTTP codes: a closed engine or a
// duplicate namespace conflict with the server's state, an unknown
// namespace is absent, and everything else is a bad request.
func StatusFor(err error) int {
	switch {
	case errors.Is(err, ErrClosed):
		return http.StatusConflict
	case errors.Is(err, ErrNamespaceExists):
		return http.StatusConflict
	case errors.Is(err, ErrNamespaceUnknown):
		return http.StatusNotFound
	case errors.Is(err, ErrDeletesUnsupported):
		// The request is well-formed; the engine's configuration cannot
		// honor it — a state conflict, like a closed engine.
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

func ErrorJSON(w http.ResponseWriter, code int, format string, args ...interface{}) {
	WriteJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// WriteJSON marshals v before touching the response: if encoding fails
// (it should not — query results are now NaN-free by construction — but
// a marshal error after WriteHeader would emit a broken 200 with an
// empty body), the client receives a well-formed 500 instead.
func WriteJSON(w http.ResponseWriter, code int, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		code = http.StatusInternalServerError
		data, _ = json.Marshal(map[string]string{"error": "encoding response: " + err.Error()})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}
