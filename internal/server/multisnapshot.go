package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
)

// Snapshot format v2: one file framing every namespace of a Multi.
//
//	"MCOV2"                         magic (5 bytes)
//	uint32 count                    number of namespace frames
//	count × frame:
//	  uint32 len, name bytes        namespace name (UTF-8, validated)
//	  uint32 len, config JSON       the namespace's Config (configFrame)
//	  uint64 len, sketch blob       core.Sketch WriteTo bytes (format v1)
//
// All integers are little-endian, matching the sketch format. Each
// frame embeds an unmodified v1 sketch blob — the per-namespace payload
// is exactly what Engine.WriteSnapshot has always produced (merged
// sketch with the true ingested-edge total folded in) — so v2 is a
// container around v1, not a new sketch encoding. A v1 file (magic
// "SKCH1", core.SketchMagic) therefore stays loadable: covserved and
// streamcover's Hub restore such files into the default namespace.
const MultiSnapshotMagic = "MCOV2"

// Limits applied while parsing a v2 container, so a corrupt or
// truncated file fails with a decode error instead of a huge
// allocation.
const (
	maxConfigFrameBytes = 1 << 20
	maxSketchFrameBytes = 1 << 30
)

// configFrame is the JSON encoding of a namespace's Config inside a v2
// snapshot. Durations are persisted in nanoseconds. A weighted
// namespace additionally frames its element-weight table (weights is
// omitted entirely for unweighted namespaces, so files written before
// the weighted extension — and files written for unweighted namespaces
// today — are byte-identical and restore unchanged).
type configFrame struct {
	NumSets     int           `json:"num_sets"`
	K           int           `json:"k"`
	Eps         float64       `json:"eps,omitempty"`
	Seed        uint64        `json:"seed,omitempty"`
	NumElems    int           `json:"num_elems,omitempty"`
	EdgeBudget  int           `json:"edge_budget,omitempty"`
	SpaceFactor float64       `json:"space_factor,omitempty"`
	Shards      int           `json:"shards,omitempty"`
	QueueDepth  int           `json:"queue_depth,omitempty"`
	MergeEvery  int64         `json:"merge_every_ns,omitempty"`
	QueryCache  int           `json:"query_cache,omitempty"`
	Weights     *weightsFrame `json:"weights,omitempty"`
	// Engine names a non-default engine mode (currently only "sieve").
	// Omitted for sketch and weighted namespaces, so files written before
	// the engine-mode plane — and files those modes write today — stay
	// byte-identical.
	Engine ModeName `json:"engine,omitempty"`
}

func frameFromConfig(cfg Config) configFrame {
	return configFrame{
		NumSets:     cfg.NumSets,
		K:           cfg.K,
		Eps:         cfg.Eps,
		Seed:        cfg.Seed,
		NumElems:    cfg.NumElems,
		EdgeBudget:  cfg.EdgeBudget,
		SpaceFactor: cfg.SpaceFactor,
		Shards:      cfg.Shards,
		QueueDepth:  cfg.QueueDepth,
		MergeEvery:  int64(cfg.MergeEvery),
		QueryCache:  cfg.QueryCache,
		Weights:     weightsFromConfig(cfg.Weights),
		Engine:      nonDefaultEngine(cfg),
	}
}

// nonDefaultEngine reports the config's engine name when it cannot be
// re-derived from the frame's other fields ("sketch" is the default,
// "weighted" is implied by the weights frame).
func nonDefaultEngine(cfg Config) ModeName {
	if name := cfg.engineName(); name != ModeSketch && name != ModeWeighted {
		return name
	}
	return ""
}

func (f configFrame) config() Config {
	return Config{
		NumSets:     f.NumSets,
		K:           f.K,
		Eps:         f.Eps,
		Seed:        f.Seed,
		NumElems:    f.NumElems,
		EdgeBudget:  f.EdgeBudget,
		SpaceFactor: f.SpaceFactor,
		Shards:      f.Shards,
		QueueDepth:  f.QueueDepth,
		MergeEvery:  time.Duration(f.MergeEvery),
		QueryCache:  f.QueryCache,
		Weights:     f.Weights.config(),
		Engine:      f.Engine,
	}
}

// WriteSnapshot merges every namespace and writes the v2 container.
// Namespaces are framed in sorted name order, so two Multis with equal
// state serialize to equal bytes. Each namespace's frame carries its
// Config, making the file self-describing: RestoreAll rebuilds every
// engine without the caller re-supplying parameters.
func (m *Multi) WriteSnapshot(w io.Writer) error {
	return m.writeSnapshotWith(w, func(e *Engine) (*Snapshot, error) {
		// Durable engines cut batch-aligned checkpoints (see
		// Engine.WriteSnapshot); WriteSnapshot's Refresh does the right
		// thing either way, minus this container's own buffering.
		if e.wal != nil {
			return e.Checkpoint()
		}
		return e.Refresh()
	})
}

// writeSnapshotWith writes the v2 container, obtaining each namespace's
// snapshot through snapFor — Refresh for a plain WriteSnapshot,
// Checkpoint when CheckpointMulti needs batch-aligned, truncatable cuts.
func (m *Multi) writeSnapshotWith(w io.Writer, snapFor func(*Engine) (*Snapshot, error)) error {
	infos := m.List()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(MultiSnapshotMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(infos))); err != nil {
		return err
	}
	var blob bytes.Buffer
	for _, info := range infos {
		e, ok := m.Get(info.Name)
		if !ok { // deleted since List; skip would corrupt the count
			return fmt.Errorf("%w: %q (deleted during snapshot)", ErrNamespaceUnknown, info.Name)
		}
		snap, err := snapFor(e)
		blob.Reset()
		if err == nil {
			err = snap.WriteState(&blob)
		}
		if err != nil {
			return fmt.Errorf("server: snapshotting namespace %q: %w", info.Name, err)
		}
		cfgJSON, err := json.Marshal(frameFromConfig(e.Config()))
		if err != nil {
			return err
		}
		if err := writeChunk32(bw, []byte(info.Name)); err != nil {
			return err
		}
		if err := writeChunk32(bw, cfgJSON); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(blob.Len())); err != nil {
			return err
		}
		if _, err := bw.Write(blob.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RestoreAll reads a v2 container and creates every framed namespace,
// seeding each engine with its persisted sketch and Config. It returns
// the number of namespaces restored. Restoring into a Multi that
// already holds one of the framed names fails with ErrNamespaceExists
// (namespaces created before the error stay).
func (m *Multi) RestoreAll(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(MultiSnapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("server: reading snapshot header: %w", err)
	}
	if string(magic) != MultiSnapshotMagic {
		return 0, fmt.Errorf("server: bad snapshot magic %q (want %q; single-sketch %q files restore via Config.Restore)",
			magic, MultiSnapshotMagic, core.SketchMagic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return 0, fmt.Errorf("server: reading snapshot count: %w", err)
	}
	restored := 0
	for i := uint32(0); i < count; i++ {
		name, err := readChunk32(br, maxNamespaceName)
		if err != nil {
			return restored, fmt.Errorf("server: reading namespace %d name: %w", i, err)
		}
		cfgJSON, err := readChunk32(br, maxConfigFrameBytes)
		if err != nil {
			return restored, fmt.Errorf("server: reading namespace %q config: %w", name, err)
		}
		var frame configFrame
		if err := json.Unmarshal(cfgJSON, &frame); err != nil {
			return restored, fmt.Errorf("server: decoding namespace %q config: %w", name, err)
		}
		var blobLen uint64
		if err := binary.Read(br, binary.LittleEndian, &blobLen); err != nil {
			return restored, fmt.Errorf("server: reading namespace %q sketch size: %w", name, err)
		}
		if blobLen > maxSketchFrameBytes {
			return restored, fmt.Errorf("server: namespace %q sketch frame of %d bytes exceeds limit", name, blobLen)
		}
		// The sketch decoder buffers its own reads, so hand it an exact
		// in-memory frame rather than the shared reader: it must not
		// consume bytes belonging to the next namespace. CopyN (rather
		// than one make of the declared size) grows the buffer only as
		// bytes actually arrive, so a lying length field in a truncated
		// file fails early instead of pre-allocating the full claim.
		var blob bytes.Buffer
		if _, err := io.CopyN(&blob, br, int64(blobLen)); err != nil {
			return restored, fmt.Errorf("server: reading namespace %q sketch: %w", name, err)
		}
		// The frame's config decides the blob format: weighted namespaces
		// persist a class bank, unweighted ones a v1 sketch. ReadRestore
		// fills the matching Config restore field.
		cfg, err := ReadRestore(frame.config(), bytes.NewReader(blob.Bytes()))
		if err != nil {
			return restored, fmt.Errorf("server: decoding namespace %q state: %w", name, err)
		}
		if _, err := m.Create(string(name), cfg); err != nil {
			return restored, err
		}
		restored++
	}
	return restored, nil
}

func writeChunk32(w io.Writer, b []byte) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readChunk32(r io.Reader, limit int) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if int(n) > limit {
		return nil, fmt.Errorf("chunk of %d bytes exceeds limit %d", n, limit)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
