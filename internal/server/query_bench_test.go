package server

import (
	"testing"

	"repro/internal/stream"
	"repro/internal/workload"
)

// benchEngine builds an engine over the dense-degree workload, ingests
// everything and publishes one snapshot — the steady state the query
// benchmarks measure against.
func benchEngine(b *testing.B, cache int) *Engine {
	b.Helper()
	const n, m = 200, 20000
	inst := workload.LargeSets(n, m, 0.3, 1)
	cfg := Config{
		NumSets: n, NumElems: m, K: 10,
		Eps: 0.3, Seed: 7, EdgeBudget: 40 * n,
		Shards: 8, QueryCache: cache,
	}
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	edges := stream.Drain(stream.Shuffled(inst.G, 2))
	for lo := 0; lo < len(edges); lo += 4096 {
		hi := lo + 4096
		if hi > len(edges) {
			hi = len(edges)
		}
		if _, err := e.Ingest(edges[lo:hi]); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := e.Refresh(); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkQueryKCoverCached is the high-QPS hot path: the same query
// against an unchanged snapshot, answered from the memoized cache.
func BenchmarkQueryKCoverCached(b *testing.B) {
	e := benchEngine(b, 0) // default cache
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(Query{Algo: AlgoKCover, K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryKCoverUncached re-runs bitset lazy greedy per query
// (cache disabled) — the cost of a cache miss on a fresh snapshot.
func BenchmarkQueryKCoverUncached(b *testing.B) {
	e := benchEngine(b, -1)
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(Query{Algo: AlgoKCover, K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryGreedyUncached prices the most expensive query algo
// (full greedy set cover) per call.
func BenchmarkQueryGreedyUncached(b *testing.B) {
	e := benchEngine(b, -1)
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(Query{Algo: AlgoGreedy}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryRefreshIdle measures Refresh's idle short-circuit: no
// new edges since the published snapshot, so no clone or merge runs.
func BenchmarkQueryRefreshIdle(b *testing.B) {
	e := benchEngine(b, 0)
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryRefreshDirty measures a full coordinator merge (clone
// every shard, parallel tree reduce, materialize graph + cover index):
// each iteration ingests one edge to re-arm the merge.
func BenchmarkQueryRefreshDirty(b *testing.B) {
	e := benchEngine(b, 0)
	defer e.Close()
	edge := stream.Drain(stream.Shuffled(workload.LargeSets(200, 20000, 0.3, 1).G, 3))[:1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Ingest(edge); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}
