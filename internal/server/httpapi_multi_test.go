package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stream"
	"repro/internal/workload"
)

func doJSON(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestHTTPNamespaceCRUD(t *testing.T) {
	m := NewMulti("")
	defer m.Close()
	ts := httptest.NewServer(NewMultiHandler(m, HTTPOptions{}))
	defer ts.Close()

	// Nothing exists yet: the legacy routes 404 (no default namespace),
	// as do namespace-scoped routes for unknown names.
	for _, path := range []string{"/v1/query?algo=greedy", "/v1/stats", "/v1/ns/nope/stats", "/v1/ns/nope"} {
		if resp, _ := doJSON(t, "GET", ts.URL+path, ""); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s on empty server: got %d want 404", path, resp.StatusCode)
		}
	}

	// Create two namespaces, one of them the default.
	for _, body := range []string{
		`{"name":"default","num_sets":30,"k":3,"eps":0.4,"seed":7,"num_elems":2000,"edge_budget":1500,"shards":3}`,
		`{"name":"tenant-b","num_sets":45,"k":4,"eps":0.4,"seed":11,"num_elems":3000,"edge_budget":2250,"shards":2}`,
	} {
		resp, out := doJSON(t, "POST", ts.URL+"/v1/ns", body)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /v1/ns: got %d: %s", resp.StatusCode, out)
		}
	}
	// Duplicate name: conflict. Invalid name / bad config: bad request.
	if resp, _ := doJSON(t, "POST", ts.URL+"/v1/ns", `{"name":"tenant-b","num_sets":5,"k":1}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: got %d want 409", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "POST", ts.URL+"/v1/ns", `{"name":"bad/name","num_sets":5,"k":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid name: got %d want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "POST", ts.URL+"/v1/ns", `{"name":"nok","num_sets":5}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing k: got %d want 400", resp.StatusCode)
	}

	// List reflects both, sorted, with the default flagged.
	resp, out := doJSON(t, "GET", ts.URL+"/v1/ns", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/ns: %d", resp.StatusCode)
	}
	var list listNamespacesResponse
	if err := json.Unmarshal(out, &list); err != nil {
		t.Fatal(err)
	}
	if list.Default != DefaultNamespace || len(list.Namespaces) != 2 ||
		list.Namespaces[0].Name != "default" || !list.Namespaces[0].Default ||
		list.Namespaces[1].Name != "tenant-b" || list.Namespaces[1].Default {
		t.Fatalf("GET /v1/ns = %+v", list)
	}

	// Single-entry GET.
	resp, out = doJSON(t, "GET", ts.URL+"/v1/ns/tenant-b", "")
	var info NamespaceInfo
	if err := json.Unmarshal(out, &info); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || info.NumSets != 45 || info.K != 4 || info.Shards != 2 {
		t.Fatalf("GET /v1/ns/tenant-b: %d %+v", resp.StatusCode, info)
	}

	// Delete, then the namespace and its routes are gone.
	if resp, _ := doJSON(t, "DELETE", ts.URL+"/v1/ns/tenant-b", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: got %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "DELETE", ts.URL+"/v1/ns/tenant-b", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE: got %d want 404", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/v1/ns/tenant-b/stats", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stats after delete: got %d want 404", resp.StatusCode)
	}

	// Method discipline on the new routes (405 + Allow, like the legacy ones).
	for _, c := range []struct{ method, path, allow string }{
		{"PUT", "/v1/ns", "GET, POST"},
		{"POST", "/v1/ns/default", "GET, DELETE"},
		{"GET", "/v1/ns/default/edges", "POST, DELETE"},
		{"DELETE", "/v1/ns/default/query", "GET"},
		{"POST", "/v1/ns/default/stats", "GET"},
		{"DELETE", "/v1/ns/default/snapshot", "GET, POST"},
	} {
		resp, _ := doJSON(t, c.method, ts.URL+c.path, "")
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: got %d want 405", c.method, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Fatalf("%s %s: Allow = %q want %q", c.method, c.path, got, c.allow)
		}
	}
}

// TestHTTPLegacyRoutesAliasDefaultNamespace pins the compatibility
// contract: the unprefixed PR 1-era routes and the /v1/ns/default/…
// routes address the same engine.
func TestHTTPLegacyRoutesAliasDefaultNamespace(t *testing.T) {
	inst := workload.PlantedKCover(30, 2000, 3, 0.9, 25, 9)
	m := NewMulti("")
	defer m.Close()
	if _, err := m.Create(DefaultNamespace, testConfig(30, 2000, 3, 7, 3)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewMultiHandler(m, HTTPOptions{}))
	defer ts.Close()

	edges := stream.Drain(stream.Shuffled(inst.G, 1))
	pairs := make([][2]uint32, len(edges))
	for i, ed := range edges {
		pairs[i] = [2]uint32{ed.Set, ed.Elem}
	}
	half := len(pairs) / 2
	for _, route := range []struct {
		path string
		part [][2]uint32
	}{
		{"/v1/edges", pairs[:half]},            // legacy route
		{"/v1/ns/default/edges", pairs[half:]}, // scoped route, same tenant
	} {
		body, _ := json.Marshal(ingestRequest{Edges: route.part})
		resp, err := http.Post(ts.URL+route.path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %s", route.path, resp.Status)
		}
	}

	// Both stats views see the union of both ingests.
	for _, path := range []string{"/v1/stats", "/v1/ns/default/stats"} {
		resp, out := doJSON(t, "GET", ts.URL+path, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		var st Stats
		if err := json.Unmarshal(out, &st); err != nil {
			t.Fatal(err)
		}
		if st.IngestedEdges != int64(len(pairs)) {
			t.Fatalf("GET %s: ingested %d want %d", path, st.IngestedEdges, len(pairs))
		}
	}

	// And both query views return the identical answer.
	var answers []QueryResult
	for _, path := range []string{"/v1/query?algo=kcover&k=3&refresh=1", "/v1/ns/default/query?algo=kcover&k=3"} {
		resp, out := doJSON(t, "GET", ts.URL+path, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, out)
		}
		var qr QueryResult
		if err := json.Unmarshal(out, &qr); err != nil {
			t.Fatal(err)
		}
		answers = append(answers, qr)
	}
	if len(answers[0].Sets) == 0 {
		t.Fatal("empty kcover answer")
	}
	a, b := answers[0], answers[1]
	if a.EstimatedCoverage != b.EstimatedCoverage || len(a.Sets) != len(b.Sets) {
		t.Fatalf("legacy answer %+v != scoped answer %+v", a, b)
	}
	for i := range a.Sets {
		if a.Sets[i] != b.Sets[i] {
			t.Fatalf("legacy answer %+v != scoped answer %+v", a, b)
		}
	}
}

// TestHTTPMultiSnapshotPersistsAllNamespaces pins that POST …/snapshot
// on a multi handler writes one v2 container holding every namespace.
func TestHTTPMultiSnapshotPersistsAllNamespaces(t *testing.T) {
	instA := workload.PlantedKCover(30, 2000, 3, 0.9, 25, 9)
	m := NewMulti("")
	defer m.Close()
	a, err := m.Create(DefaultNamespace, testConfig(30, 2000, 3, 7, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("tenant-b", testConfig(45, 3000, 4, 11, 2)); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, a, instA.G, 256, 5)

	snapPath := filepath.Join(t.TempDir(), "hub.mcov")
	ts := httptest.NewServer(NewMultiHandler(m, HTTPOptions{SnapshotPath: snapPath}))
	defer ts.Close()

	// Snapshot through the namespace-scoped route of one tenant.
	resp, out := doJSON(t, "POST", ts.URL+"/v1/ns/default/snapshot", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST snapshot: %d: %s", resp.StatusCode, out)
	}
	var sr snapshotResponse
	if err := json.Unmarshal(out, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Persisted != snapPath || sr.IngestedEdges != a.IngestedEdges() {
		t.Fatalf("snapshot response %+v", sr)
	}

	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored := NewMulti("")
	defer restored.Close()
	n, err := restored.RestoreAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("persisted container holds %d namespaces, want 2", n)
	}
	re, _ := restored.Get(DefaultNamespace)
	if re.IngestedEdges() != a.IngestedEdges() {
		t.Fatalf("restored ingested %d want %d", re.IngestedEdges(), a.IngestedEdges())
	}
}
