package server

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stream"
	"repro/internal/weighted"
	"repro/internal/workload"
)

// weightTable spreads m elements across several geometric weight
// classes, with a zero-weight residue class to exercise the skip path.
func weightTable(m int) []float64 {
	t := make([]float64, m)
	for e := range t {
		t[e] = float64((uint32(e) * 2654435761) % 9)
	}
	return t
}

func weightedTestConfig(n, m, k int, seed uint64, shards int) Config {
	return Config{
		NumSets: n, NumElems: m, K: k,
		Eps: 0.4, Seed: seed, EdgeBudget: 60 * n,
		Shards: shards, QueueDepth: 8,
		Weights: &WeightConfig{Table: weightTable(m)},
	}
}

func sameIntSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWeightedEngineMatchesOneShot pins the tentpole equivalence at the
// engine layer: for any shard count and batch split, a weighted engine
// answers kcover bit-identically to the one-shot weighted.KCover with
// the same options over the same edges — including after a snapshot
// write/restore cycle.
func TestWeightedEngineMatchesOneShot(t *testing.T) {
	const (
		n, m, k = 50, 3000, 5
		seed    = 21
	)
	inst := workload.Zipf(n, m, 700, 0.9, 0.7, seed)
	cfg := weightedTestConfig(n, m, k, seed, 1)
	fn := cfg.Weights.Fn()

	oneshot, err := weighted.KCover(stream.Shuffled(inst.G, 3), n, k, fn, cfg.WeightedOptions())
	if err != nil {
		t.Fatal(err)
	}

	edges := stream.Drain(stream.Shuffled(inst.G, 3))
	for i, shards := range []int{1, 4, 8} {
		batch := []int{len(edges), 97, 512}[i]
		cfg := weightedTestConfig(n, m, k, seed, shards)
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(edges); lo += batch {
			hi := lo + batch
			if hi > len(edges) {
				hi = len(edges)
			}
			if _, err := e.Ingest(edges[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		for _, algo := range []Algo{AlgoKCover, AlgoWeightedKCover} {
			res, err := e.Query(Query{Algo: algo, K: k, Refresh: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.EstimatedCoverage != oneshot.EstimatedCoverage || !sameIntSets(res.Sets, oneshot.Sets) {
				t.Fatalf("shards=%d algo=%s: engine (%v, %v) != one-shot (%v, %v)",
					shards, algo, res.Sets, res.EstimatedCoverage, oneshot.Sets, oneshot.EstimatedCoverage)
			}
			if !res.Weighted || res.WeightClasses != oneshot.Classes {
				t.Fatalf("shards=%d: result marks weighted=%v classes=%d, want true/%d",
					shards, res.Weighted, res.WeightClasses, oneshot.Classes)
			}
			if res.SketchCoverage != oneshot.CoveredElems {
				t.Fatalf("shards=%d: sketch coverage %d != one-shot %d", shards, res.SketchCoverage, oneshot.CoveredElems)
			}
		}
		if res, err := e.Query(Query{Algo: AlgoKCover, K: k}); err != nil || res.SnapshotEdges != int64(len(edges)) {
			t.Fatalf("shards=%d: snapshot at %d of %d edges (err %v)", shards, res.SnapshotEdges, len(edges), err)
		}

		// Persist, restore into a fresh engine, and re-verify.
		var buf bytes.Buffer
		if _, err := e.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		e.Close()
		restored, err := NewFromSnapshot(&buf, weightedTestConfig(n, m, k, seed, shards))
		if err != nil {
			t.Fatal(err)
		}
		res, err := restored.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.EstimatedCoverage != oneshot.EstimatedCoverage || !sameIntSets(res.Sets, oneshot.Sets) {
			t.Fatalf("shards=%d: restored engine (%v, %v) != one-shot (%v, %v)",
				shards, res.Sets, res.EstimatedCoverage, oneshot.Sets, oneshot.EstimatedCoverage)
		}
		if res.SnapshotEdges != int64(len(edges)) {
			t.Fatalf("shards=%d: restored accounting %d of %d edges", shards, res.SnapshotEdges, len(edges))
		}
		restored.Close()
	}
}

// TestWeightedEngineHalfRestoreResume pins restore mid-stream: half the
// edges before the snapshot, half after, must equal the uninterrupted
// weighted run.
func TestWeightedEngineHalfRestoreResume(t *testing.T) {
	const n, m, k = 40, 2500, 4
	inst := workload.PlantedKCover(n, m, k, 0.9, 25, 5)
	cfg := weightedTestConfig(n, m, k, 13, 4)
	edges := stream.Drain(stream.Shuffled(inst.G, 2))
	half := len(edges) / 2

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}

	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Ingest(edges[:half]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := first.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	first.Close()

	second, err := NewFromSnapshot(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if _, err := second.Ingest(edges[half:]); err != nil {
		t.Fatal(err)
	}
	got, err := second.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.EstimatedCoverage != want.EstimatedCoverage || !sameIntSets(got.Sets, want.Sets) {
		t.Fatalf("restored weighted engine (%v, %v) != uninterrupted (%v, %v)",
			got.Sets, got.EstimatedCoverage, want.Sets, want.EstimatedCoverage)
	}
	if got.SnapshotEdges != int64(len(edges)) {
		t.Fatalf("restored accounting %d of %d edges", got.SnapshotEdges, len(edges))
	}
}

// TestWeightedEngineValidation covers mode/algo mismatches and weight
// validation.
func TestWeightedEngineValidation(t *testing.T) {
	bad := weightedTestConfig(10, 100, 2, 1, 2)
	bad.Weights.Table[3] = -1
	if _, err := New(bad); err == nil {
		t.Fatal("negative weight accepted")
	}

	we, err := New(weightedTestConfig(10, 100, 2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer we.Close()
	if _, err := we.Query(Query{Algo: AlgoOutliers, Lambda: 0.1}); err == nil {
		t.Fatal("outliers accepted on a weighted engine")
	}
	if _, err := we.Query(Query{Algo: AlgoGreedy}); err == nil {
		t.Fatal("greedy accepted on a weighted engine")
	}
	if _, err := we.Query(Query{Algo: AlgoWeightedKCover}); err == nil {
		t.Fatal("wkcover without k accepted")
	}

	un, err := New(testConfig(10, 100, 2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer un.Close()
	if _, err := un.Query(Query{Algo: AlgoWeightedKCover, K: 2}); err == nil {
		t.Fatal("wkcover accepted on an unweighted engine")
	}

	mixed := testConfig(10, 100, 2, 1, 2)
	mixed.RestoreWeighted = &weighted.Bank{}
	if _, err := New(mixed); err == nil {
		t.Fatal("RestoreWeighted without Weights accepted")
	}
}

// TestWeightedQueryCache pins that weighted answers are memoized under
// a key carrying the weight signature, and that kcover/wkcover share
// one entry while echoing the requested algo.
func TestWeightedQueryCache(t *testing.T) {
	const n, m, k = 30, 1500, 3
	inst := workload.Uniform(n, m, 0.05, 7)
	e, err := New(weightedTestConfig(n, m, k, 9, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Ingest(stream.Drain(stream.Shuffled(inst.G, 1))); err != nil {
		t.Fatal(err)
	}
	first, err := e.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Query(Query{Algo: AlgoWeightedKCover, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if second.Algo != AlgoWeightedKCover {
		t.Fatalf("cache hit echoed algo %q, want the requested wkcover", second.Algo)
	}
	if first.EstimatedCoverage != second.EstimatedCoverage || !sameIntSets(first.Sets, second.Sets) {
		t.Fatalf("cached weighted answer differs: %+v vs %+v", first, second)
	}
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 2 || st.QueryCacheHits != 1 {
		t.Fatalf("queries=%d hits=%d, want 2 and 1 (kcover/wkcover share an entry)", st.Queries, st.QueryCacheHits)
	}
	if !st.Weighted || st.WeightClasses == 0 {
		t.Fatalf("stats weighted=%v classes=%d", st.Weighted, st.WeightClasses)
	}
}

// TestMultiWeightedSnapshotRoundTrip pins snapshot v2 with a mixed
// directory: a weighted and an unweighted namespace persist into one
// container and restore with identical answers, and the unweighted
// frame stays byte-compatible with pre-weighted files (no "weights"
// key).
func TestMultiWeightedSnapshotRoundTrip(t *testing.T) {
	const n, m, k = 40, 2000, 4
	inst := workload.Zipf(n, m, 500, 0.9, 0.7, 3)
	edges := stream.Drain(stream.Shuffled(inst.G, 4))

	multi := NewMulti("")
	defer multi.Close()
	wEng, err := multi.Create("heavy", weightedTestConfig(n, m, k, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	uEng, err := multi.Create("plain", testConfig(n, m, k, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wEng.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	if _, err := uEng.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	wantW, err := wEng.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	wantU, err := uEng.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := multi.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	if !strings.Contains(raw, `"weights"`) {
		t.Fatal("weighted namespace frame carries no weights config")
	}
	// The unweighted frame must not mention weights at all — that is what
	// keeps pre-weighted v2 files and new unweighted frames byte-identical.
	plainFrame := raw[strings.Index(raw, "plain"):]
	if i := strings.Index(plainFrame, core0Magic); i >= 0 {
		plainFrame = plainFrame[:i]
	}
	if strings.Contains(plainFrame, `"weights"`) {
		t.Fatal("unweighted namespace frame mentions weights")
	}

	fresh := NewMulti("")
	defer fresh.Close()
	if restored, err := fresh.RestoreAll(bytes.NewReader(buf.Bytes())); err != nil || restored != 2 {
		t.Fatalf("restored %d namespaces, err %v", restored, err)
	}
	wBack, _ := fresh.Get("heavy")
	uBack, _ := fresh.Get("plain")
	gotW, err := wBack.Query(Query{Algo: AlgoWeightedKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	gotU, err := uBack.Query(Query{Algo: AlgoKCover, K: k, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if gotW.EstimatedCoverage != wantW.EstimatedCoverage || !sameIntSets(gotW.Sets, wantW.Sets) {
		t.Fatalf("restored weighted namespace (%v, %v) != original (%v, %v)",
			gotW.Sets, gotW.EstimatedCoverage, wantW.Sets, wantW.EstimatedCoverage)
	}
	if gotU.EstimatedCoverage != wantU.EstimatedCoverage || !sameIntSets(gotU.Sets, wantU.Sets) {
		t.Fatalf("restored unweighted namespace (%v, %v) != original (%v, %v)",
			gotU.Sets, gotU.EstimatedCoverage, wantU.Sets, wantU.EstimatedCoverage)
	}
	infos := fresh.List()
	for _, info := range infos {
		if want := info.Name == "heavy"; info.Weighted != want {
			t.Fatalf("namespace %q weighted=%v", info.Name, info.Weighted)
		}
	}
}

// core0Magic is the sketch magic used to delimit the config frame in
// the raw-container scan above.
const core0Magic = "SKCH1"
