package server

import (
	"bytes"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
)

// This file pins the query-plane accounting fixes: the outliers target
// ceiling, the NaN-free empty-snapshot estimate, the ingest-counter /
// snapshot consistency under concurrency, and the background-merge
// error accounting. Each test fails on the pre-fix code.

// TestOutliersTargetCeiling: covering "all but a λ fraction" must round
// the target UP. With 999 singleton sets and λ=0.001 the target is
// ⌈998.001⌉ = 999; the pre-fix truncation asked for 998, leaving the
// covered fraction 998/999 ≈ 0.998999 strictly below 1−λ.
func TestOutliersTargetCeiling(t *testing.T) {
	const n = 999
	cfg := Config{NumSets: n, K: 4, Eps: 0.4, Seed: 1, EdgeBudget: 10 * n, Shards: 1}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	edges := make([]bipartite.Edge, n)
	for i := range edges {
		edges[i] = bipartite.Edge{Set: uint32(i), Elem: uint32(i)} // singleton sets
	}
	if _, err := e.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	for _, lambda := range []float64{0.001, 0.01, 0.5} {
		res, err := e.Query(Query{Algo: AlgoOutliers, Lambda: lambda, Refresh: true})
		if err != nil {
			t.Fatal(err)
		}
		covered := res.SketchCoverage
		total := n // budget is ample: every element is sampled
		if frac := float64(covered) / float64(total); frac < 1-lambda {
			t.Fatalf("lambda=%v: covered %d of %d (%.6f) is below 1-lambda=%.6f",
				lambda, covered, total, frac, 1-lambda)
		}
	}

	// And the ceiling must not overshoot either: with 10 elements and
	// λ=0.7 the target is exactly 3, but 10·(1−0.7) evaluates just above
	// 3.0 in float64, so a bare Ceil would demand a 4th set.
	small, err := New(Config{NumSets: 10, K: 2, Eps: 0.4, Seed: 1, EdgeBudget: 100, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	tiny := make([]bipartite.Edge, 10)
	for i := range tiny {
		tiny[i] = bipartite.Edge{Set: uint32(i), Elem: uint32(i)}
	}
	if _, err := small.Ingest(tiny); err != nil {
		t.Fatal(err)
	}
	res, err := small.Query(Query{Algo: AlgoOutliers, Lambda: 0.7, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SketchCoverage != 3 || len(res.Sets) != 3 {
		t.Fatalf("lambda=0.7 over 10 singletons covered %d with %d sets, want exactly 3 (float noise overshoot)",
			res.SketchCoverage, len(res.Sets))
	}
}

// craftPStarZeroSketch fabricates valid v1 sketch bytes whose eviction
// bar sits at priority zero — p* = 0, the degenerate state the estimate
// guard must survive. No ingest path produces it cheaply (it needs an
// element hashing exactly to 0), so the test writes an empty sketch and
// flips the persisted eviction flag; ReadSketch then folds bar (0, 0).
func craftPStarZeroSketch(t *testing.T, params core.Params) *core.Sketch {
	t.Helper()
	var buf bytes.Buffer
	if _, err := core.MustNewSketch(params).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Layout after the 5-byte magic: nine 8-byte params fields, one hash
	// family byte, then the evicted flag (barHash/barElem already zero).
	evictedOff := 5 + 9*8 + 1
	raw[evictedOff] = 1
	sk, err := core.ReadSketch(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if sk.PStar() != 0 {
		t.Fatalf("crafted sketch has p* = %v, want 0", sk.PStar())
	}
	return sk
}

// TestEmptySnapshotEstimateDefined pins the division guard: a query
// against a snapshot with p* = 0 (and against a plain never-ingested
// engine) reports EstimatedCoverage 0 — never NaN or Inf, which would
// make json.Marshal fail downstream.
func TestEmptySnapshotEstimateDefined(t *testing.T) {
	cfg := Config{NumSets: 10, K: 2, Eps: 0.4, Seed: 3, EdgeBudget: 500, Shards: 2}
	cfg.Restore = craftPStarZeroSketch(t, cfg.Params())
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Query(Query{Algo: AlgoKCover, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.EstimatedCoverage) || math.IsInf(res.EstimatedCoverage, 0) {
		t.Fatalf("p*=0 snapshot estimated %v, want 0", res.EstimatedCoverage)
	}
	if res.EstimatedCoverage != 0 || res.SampledElements != 0 {
		t.Fatalf("p*=0 snapshot result %+v, want 0 coverage over 0 sampled elements", res)
	}

	// The ordinary empty engine (never ingested, p* = 1) is defined too.
	fresh, err := New(Config{NumSets: 10, K: 2, Eps: 0.4, Seed: 3, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	res, err = fresh.Query(Query{Algo: AlgoKCover, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.EstimatedCoverage != 0 || res.SampledElements != 0 || len(res.Sets) != 0 {
		t.Fatalf("fresh engine result %+v, want the empty result", res)
	}
}

// TestIngestRefreshAccountingConsistent hammers Ingest concurrently
// with Refresh and asserts every published snapshot's IngestedEdges
// equals the edges its merged sketch actually reflects. All edges are
// distinct and the budget is ample, so the merged kept-edge count IS
// the applied-edge count. Pre-fix, the counter was read before the
// shard collection and bumped after the mailbox sends, so a snapshot
// could contain batches its IngestedEdges had not counted (run with
// -race to also certify the ordering).
func TestIngestRefreshAccountingConsistent(t *testing.T) {
	const (
		n         = 8
		producers = 4
		batches   = 250
		batchLen  = 7
	)
	cfg := Config{NumSets: n, K: 2, Eps: 0.4, Seed: 1, EdgeBudget: 1 << 20, Shards: 4, QueueDepth: 4}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	var next atomic.Uint32
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([]bipartite.Edge, batchLen)
			for i := 0; i < batches; i++ {
				for j := range batch {
					id := next.Add(1) // globally unique element per edge
					batch[j] = bipartite.Edge{Set: id % n, Elem: id}
				}
				if _, err := e.Ingest(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	check := func() {
		snap, err := e.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		if kept := int64(snap.Sketch().Edges()); kept != snap.IngestedEdges {
			t.Fatalf("snapshot seq %d reports %d ingested edges but its merged sketch holds %d",
				snap.Seq, snap.IngestedEdges, kept)
		}
	}
	for {
		select {
		case <-done:
			check()
			snap, err := e.Refresh()
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(producers * batches * batchLen); snap.IngestedEdges != want {
				t.Fatalf("final snapshot accounts %d of %d edges", snap.IngestedEdges, want)
			}
			return
		default:
			check()
		}
	}
}

// TestMergeLoopCountsRefreshErrors forces the background-merge failure
// path via a closed engine (the shard mailboxes are closed while the
// ticker still runs — the shutdown race mergeLoop used to swallow
// silently) and asserts the errors are counted and the OnRefreshError
// callback fires exactly once.
func TestMergeLoopCountsRefreshErrors(t *testing.T) {
	var logged atomic.Int32
	cfg := Config{
		NumSets: 4, K: 1, Eps: 0.5, Seed: 1, Shards: 2,
		MergeEvery:     5 * time.Millisecond,
		OnRefreshError: func(error) { logged.Add(1) },
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Replicate Close's first half only: mark closed and drain the shard
	// goroutines, but leave the ticker running so it hits the error path.
	e.ingestMu.Lock()
	e.closed = true
	for _, sh := range e.shards {
		close(sh.mail)
	}
	e.ingestMu.Unlock()
	for _, sh := range e.shards {
		<-sh.done
	}

	deadline := time.Now().Add(5 * time.Second)
	for e.RefreshErrors() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("mergeLoop recorded %d refresh errors, want at least 2", e.RefreshErrors())
		}
		time.Sleep(time.Millisecond)
	}
	if got := logged.Load(); got != 1 {
		t.Fatalf("OnRefreshError fired %d times across %d failures, want once", got, e.RefreshErrors())
	}
	// Finish the shutdown by hand (Close already sees closed=true).
	close(e.stopTicker)
	<-e.tickerDone
}

// TestStatsReportRefreshErrors pins the refresh_errors counter's Stats
// surface on a healthy engine (zero) so the field is wired end to end.
func TestStatsReportRefreshErrors(t *testing.T) {
	e, err := New(Config{NumSets: 5, K: 1, Eps: 0.5, Seed: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.RefreshErrors != 0 {
		t.Fatalf("fresh engine reports %d refresh errors", st.RefreshErrors)
	}
}
