package server

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/stream"
	"repro/internal/workload"
)

func TestValidateNamespaceName(t *testing.T) {
	for _, ok := range []string{"default", "tenant-a", "A.b_c-9", "x"} {
		if err := ValidateNamespaceName(ok); err != nil {
			t.Errorf("ValidateNamespaceName(%q) = %v, want nil", ok, err)
		}
	}
	long := make([]byte, maxNamespaceName+1)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "a/b", "a b", "café", ".hidden", "..", string(long)} {
		if err := ValidateNamespaceName(bad); err == nil {
			t.Errorf("ValidateNamespaceName(%q) = nil, want error", bad)
		}
	}
}

func TestMultiLifecycle(t *testing.T) {
	m := NewMulti("")
	defer m.Close()
	if m.DefaultName() != DefaultNamespace {
		t.Fatalf("DefaultName() = %q, want %q", m.DefaultName(), DefaultNamespace)
	}
	if _, ok := m.Default(); ok {
		t.Fatal("Default() ok on empty Multi")
	}

	if _, err := m.Create("bad name", testConfig(10, 100, 2, 1, 2)); err == nil {
		t.Fatal("Create accepted an invalid name")
	}
	a, err := m.Create("a", testConfig(10, 100, 2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("a", testConfig(10, 100, 2, 1, 2)); !errors.Is(err, ErrNamespaceExists) {
		t.Fatalf("duplicate Create: err = %v, want ErrNamespaceExists", err)
	}
	if _, err := m.Create(DefaultNamespace, testConfig(20, 100, 3, 2, 1)); err != nil {
		t.Fatal(err)
	}

	if got, ok := m.Get("a"); !ok || got != a {
		t.Fatal("Get(a) did not return the created engine")
	}
	// The empty name aliases the default namespace.
	def, ok := m.Get("")
	if !ok {
		t.Fatal("Get(\"\") not ok after default namespace created")
	}
	if d2, ok := m.Default(); !ok || d2 != def {
		t.Fatal("Default() disagrees with Get(\"\")")
	}

	infos := m.List()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != DefaultNamespace {
		t.Fatalf("List() = %+v, want [a default]", infos)
	}
	if infos[0].Default || !infos[1].Default {
		t.Fatalf("List() default flags wrong: %+v", infos)
	}
	if infos[0].NumSets != 10 || infos[1].NumSets != 20 {
		t.Fatalf("List() configs wrong: %+v", infos)
	}

	if err := m.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("a"); !errors.Is(err, ErrNamespaceUnknown) {
		t.Fatalf("second Delete: err = %v, want ErrNamespaceUnknown", err)
	}
	// The deleted namespace's engine is closed: operations fail.
	if _, err := a.Stats(); !errors.Is(err, ErrClosed) {
		t.Fatalf("deleted engine Stats: err = %v, want ErrClosed", err)
	}
	// The sibling namespace is untouched.
	if _, err := def.Stats(); err != nil {
		t.Fatalf("sibling engine Stats after Delete: %v", err)
	}

	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("later", testConfig(10, 100, 2, 1, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Create after Close: err = %v, want ErrClosed", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal("Close not idempotent:", err)
	}
}

// TestMultiNamespacesMatchStandaloneEngines pins tenant isolation: two
// namespaces ingesting different datasets concurrently in one Multi
// answer exactly like two standalone engines fed the same edges.
func TestMultiNamespacesMatchStandaloneEngines(t *testing.T) {
	instA := workload.PlantedKCover(30, 2000, 3, 0.9, 25, 9)
	instB := workload.Zipf(45, 3000, 700, 0.8, 0.6, 4)
	cfgA := testConfig(30, 2000, 3, 7, 3)
	cfgB := testConfig(45, 3000, 4, 11, 2)

	solo := make([]*QueryResult, 2)
	soloA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	defer soloA.Close()
	ingestAll(t, soloA, instA.G, 256, 5)
	if solo[0], err = soloA.Query(Query{Algo: AlgoKCover, K: 3, Refresh: true}); err != nil {
		t.Fatal(err)
	}
	soloB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer soloB.Close()
	ingestAll(t, soloB, instB.G, 256, 5)
	if solo[1], err = soloB.Query(Query{Algo: AlgoKCover, K: 4, Refresh: true}); err != nil {
		t.Fatal(err)
	}

	m := NewMulti("")
	defer m.Close()
	nsA, err := m.Create("tenant-a", cfgA)
	if err != nil {
		t.Fatal(err)
	}
	nsB, err := m.Create("tenant-b", cfgB)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ingestAll(t, nsA, instA.G, 256, 5) }()
	go func() { defer wg.Done(); ingestAll(t, nsB, instB.G, 256, 5) }()
	wg.Wait()

	gotA, err := nsA.Query(Query{Algo: AlgoKCover, K: 3, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := nsB.Query(Query{Algo: AlgoKCover, K: 4, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, pair := range []struct{ got, want *QueryResult }{{gotA, solo[0]}, {gotB, solo[1]}} {
		if !reflect.DeepEqual(pair.got.Sets, pair.want.Sets) ||
			pair.got.EstimatedCoverage != pair.want.EstimatedCoverage ||
			pair.got.SketchCoverage != pair.want.SketchCoverage {
			t.Fatalf("namespace %d: got %+v, standalone %+v", i, pair.got, pair.want)
		}
	}
}

// TestMultiConcurrentLifecycleAndIngest hammers create/delete/ingest
// concurrently; run with -race this pins the directory locking.
func TestMultiConcurrentLifecycleAndIngest(t *testing.T) {
	inst := workload.PlantedKCover(20, 500, 2, 0.9, 13, 3)
	edges := stream.Drain(stream.Shuffled(inst.G, 1))
	m := NewMulti("")
	defer m.Close()
	if _, err := m.Create("steady", testConfig(20, 500, 2, 3, 2)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				name := fmt.Sprintf("churn-%d", w)
				if _, err := m.Create(name, testConfig(20, 500, 2, uint64(w), 1)); err != nil && !errors.Is(err, ErrNamespaceExists) {
					t.Error(err)
					return
				}
				if e, ok := m.Get(name); ok {
					e.Ingest(edges[:50])
				}
				if err := m.Delete(name); err != nil && !errors.Is(err, ErrNamespaceUnknown) {
					t.Error(err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				e, ok := m.Get("steady")
				if !ok {
					t.Error("steady namespace vanished")
					return
				}
				if _, err := e.Ingest(edges[:100]); err != nil {
					t.Error(err)
					return
				}
				m.List()
			}
		}()
	}
	wg.Wait()
	e, _ := m.Get("steady")
	if got := e.IngestedEdges(); got != 4*20*100 {
		t.Fatalf("steady ingested %d, want %d", got, 4*20*100)
	}
}

// TestMultiSnapshotRoundTrip pins the v2 container: write a two-tenant
// directory, restore it, and require identical configs, accounting and
// query answers.
func TestMultiSnapshotRoundTrip(t *testing.T) {
	instA := workload.PlantedKCover(30, 2000, 3, 0.9, 25, 9)
	instB := workload.Zipf(45, 3000, 700, 0.8, 0.6, 4)
	m := NewMulti("")
	a, err := m.Create(DefaultNamespace, testConfig(30, 2000, 3, 7, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Create("tenant-b", testConfig(45, 3000, 4, 11, 2))
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, a, instA.G, 256, 5)
	ingestAll(t, b, instB.G, 256, 5)
	wantA, err := a.Query(Query{Algo: AlgoKCover, K: 3, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := b.Query(Query{Algo: AlgoKCover, K: 4, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String()[:len(MultiSnapshotMagic)]; got != MultiSnapshotMagic {
		t.Fatalf("snapshot magic %q, want %q", got, MultiSnapshotMagic)
	}
	m.Close()

	r := NewMulti("")
	defer r.Close()
	nrestored, err := r.RestoreAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if nrestored != 2 {
		t.Fatalf("restored %d namespaces, want 2", nrestored)
	}
	infos := r.List()
	if len(infos) != 2 || infos[0].Name != DefaultNamespace || infos[1].Name != "tenant-b" {
		t.Fatalf("restored List() = %+v", infos)
	}
	if infos[1].NumSets != 45 || infos[1].K != 4 || infos[1].Seed != 11 || infos[1].Shards != 2 {
		t.Fatalf("tenant-b config not preserved: %+v", infos[1])
	}
	ra, _ := r.Get(DefaultNamespace)
	rb, _ := r.Get("tenant-b")
	if got := ra.IngestedEdges(); got != a.IngestedEdges() {
		t.Fatalf("restored default ingested %d, want %d", got, a.IngestedEdges())
	}
	gotA, err := ra.Query(Query{Algo: AlgoKCover, K: 3, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := rb.Query(Query{Algo: AlgoKCover, K: 4, Refresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA.Sets, wantA.Sets) || gotA.EstimatedCoverage != wantA.EstimatedCoverage {
		t.Fatalf("restored default answers %+v, want %+v", gotA, wantA)
	}
	if !reflect.DeepEqual(gotB.Sets, wantB.Sets) || gotB.EstimatedCoverage != wantB.EstimatedCoverage {
		t.Fatalf("restored tenant-b answers %+v, want %+v", gotB, wantB)
	}

	// Restoring over an existing name must fail, not overwrite.
	if _, err := r.RestoreAll(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrNamespaceExists) {
		t.Fatalf("RestoreAll over live namespaces: err = %v, want ErrNamespaceExists", err)
	}
}

// TestRestoreAllRejectsV1 pins the error path for feeding a bare v1
// sketch file to the v2 reader (covserved sniffs and routes formats;
// the library must still fail cleanly).
func TestRestoreAllRejectsV1(t *testing.T) {
	e, err := New(testConfig(10, 100, 2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var v1 bytes.Buffer
	if _, err := e.WriteSnapshot(&v1); err != nil {
		t.Fatal(err)
	}
	m := NewMulti("")
	defer m.Close()
	if _, err := m.RestoreAll(bytes.NewReader(v1.Bytes())); err == nil {
		t.Fatal("RestoreAll accepted a v1 sketch file")
	}
}
