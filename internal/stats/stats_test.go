package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	// Sample stddev of the classic dataset: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := Stddev(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Stddev = %v, want %v", got, want)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Fatal("empty/singleton edge cases wrong")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("Min/Max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Fatalf("interpolated median = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Input must not be reordered.
	ys := []float64{5, 1, 3}
	Quantile(ys, 0.5)
	if ys[0] != 5 || ys[1] != 1 || ys[2] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Mean != 5.5 || s.Min != 1 || s.Max != 10 || s.Median != 5.5 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.Q10 >= s.Median || s.Median >= s.Q90 {
		t.Fatalf("quantiles out of order: %+v", s)
	}
}

func TestFmtFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{1234.5678, "1234.6"},
		{3.14159, "3.142"},
		{0.01234, "0.0123"},
		{-2, "-2"},
	}
	for _, c := range cases {
		if got := FmtFloat(c.in); got != c.want {
			t.Fatalf("FmtFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title: "demo",
		Cols:  []string{"name", "value"},
		Notes: []string{"a note"},
	}
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("b", 42)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "name", "value", "alpha", "1.500", "42", "note: a note", "-----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Aligned: every data line has the same prefix width for column 2.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected line count: %d", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Cols: []string{"a", "b"}}
	tbl.AddRow("x,y", `quote"inside`)
	tbl.AddRow("plain", 7)
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, `"x,y"`) {
		t.Fatalf("comma not escaped: %q", out)
	}
	if !strings.Contains(out, `"quote""inside"`) {
		t.Fatalf("quote not escaped: %q", out)
	}
	if !strings.Contains(out, "plain,7\n") {
		t.Fatalf("plain row wrong: %q", out)
	}
}

func TestAddRowFormatsTypes(t *testing.T) {
	tbl := &Table{Cols: []string{"v"}}
	tbl.AddRow("s")
	tbl.AddRow(3.5)
	tbl.AddRow(float32(2))
	tbl.AddRow(7)
	tbl.AddRow(true)
	want := []string{"s", "3.500", "2", "7", "true"}
	for i, row := range tbl.Rows {
		if row[0] != want[i] {
			t.Fatalf("row %d = %q, want %q", i, row[0], want[i])
		}
	}
}
