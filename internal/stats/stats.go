// Package stats provides the small statistical helpers and the aligned
// text-table renderer used by the experiment harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for fewer than
// two values).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation on the sorted sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(cp) {
		return cp[len(cp)-1]
	}
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// Median returns the sample median (mean of the two central order
// statistics for even-sized samples; 0 for an empty one). It is
// Quantile at 0.5, named for call sites that read better with the
// statistic than with the quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N            int
	Mean, Stddev float64
	Min, Max     float64
	Median       float64
	Q10, Q90     float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Stddev: Stddev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Quantile(xs, 0.5),
		Q10:    Quantile(xs, 0.1),
		Q90:    Quantile(xs, 0.9),
	}
}

// Table is an experiment result rendered as an aligned text table (and
// exportable as CSV or JSON — the tags drive covbench -json). Rows are
// formatted strings; numeric formatting is the caller's choice via Fmt
// helpers.
type Table struct {
	Title string     `json:"title"`
	Notes []string   `json:"notes,omitempty"`
	Cols  []string   `json:"cols"`
	Rows  [][]string `json:"rows"`
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = FmtFloat(x)
		case float32:
			row[i] = FmtFloat(float64(x))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FmtFloat renders a float compactly: integers without decimals, small
// values with enough precision to compare.
func FmtFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%.0f", x)
	}
	if math.Abs(x) >= 1000 {
		return fmt.Sprintf("%.1f", x)
	}
	if math.Abs(x) >= 1 {
		return fmt.Sprintf("%.3f", x)
	}
	return fmt.Sprintf("%.4f", x)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (with a header row).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	for i, c := range t.Cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(c))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(cell))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
