package l0

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/hashing"
)

// This file implements the turnstile-stream edge sampler behind the
// "dynamic" engine mode, after Chakrabarti–McGregor–Wirth: maximum
// coverage under insert/delete streams reduces to ℓ0-sampling the edge
// multiset at geometrically decreasing rates. Levels subsample by
// *element* hash (level ℓ keeps elements whose hash has ≥ ℓ leading
// zero bits, i.e. probability 2^−ℓ), so the recovered edge set at a
// level is the exact incidence list of a p-sample of elements — the
// same "coverage of the sample / p" estimator shape as the paper's
// sketch (Lemma 2.2). Each level stores the surviving edges in an
// invertible (IBLT-style) cell array; deletions subtract exactly what
// insertions added, so a fully cancelled stream leaves all-zero cells
// and level 0 decodes to the empty graph.
//
// The structure is linear in the update stream: every verb the engine
// needs (Merge across shards, Clone for snapshots, byte serialization)
// is cell-wise arithmetic, making the recovered sample — and therefore
// the published answer — a deterministic function of the net op
// multiset, independent of shard count, batch boundaries, or op order.

// SamplerParams sizes a Sampler. Two samplers interoperate (Merge,
// state restore) only when all three fields match.
type SamplerParams struct {
	// Levels is the number of geometric subsampling levels; level ℓ
	// samples elements with probability 2^−ℓ.
	Levels int
	// Cells is the number of IBLT cells per level (a multiple of 3 —
	// the decoder uses three partitioned hash rows). A level decodes
	// reliably while it holds at most about Cells/2 distinct edges.
	Cells int
	// Seed drives every hash function in the structure.
	Seed uint64
}

const (
	maxLevels       = 48
	maxCellsTotal   = 1 << 24 // read-side allocation cap (512 MiB of cells)
	samplerMagic    = "L0SAMP1\n"
	samplerRowCount = 3

	levelSalt = 0x9e3779b97f4a7c15
	fpSalt    = 0xc2b2ae3d27d4eb4f
	rowSalt   = 0x165667b19e3779f9
)

// Normalize clamps the parameters into their legal ranges, rounding
// Cells up to a multiple of the row count.
func (p SamplerParams) Normalize() SamplerParams {
	if p.Levels < 1 {
		p.Levels = 1
	}
	if p.Levels > maxLevels {
		p.Levels = maxLevels
	}
	if p.Cells < 2*samplerRowCount {
		p.Cells = 2 * samplerRowCount
	}
	if r := p.Cells % samplerRowCount; r != 0 {
		p.Cells += samplerRowCount - r
	}
	return p
}

func (p SamplerParams) validate() error {
	if p.Levels < 1 || p.Levels > maxLevels {
		return fmt.Errorf("l0: levels %d out of range [1,%d]", p.Levels, maxLevels)
	}
	if p.Cells < 2*samplerRowCount || p.Cells%samplerRowCount != 0 {
		return fmt.Errorf("l0: cells %d must be a positive multiple of %d", p.Cells, samplerRowCount)
	}
	if p.Levels*p.Cells > maxCellsTotal {
		return fmt.Errorf("l0: levels*cells %d exceeds cap %d", p.Levels*p.Cells, maxCellsTotal)
	}
	return nil
}

// cell is one IBLT bucket: the count, 128-bit key sum and fingerprint
// sum of every edge currently hashed into it. The 128-bit key sum makes
// multiplicity-m decoding an exact integer division (a 64-bit sum would
// wrap and require modular inverses).
type cell struct {
	count int64
	keyLo uint64
	keyHi uint64
	fpSum uint64
}

func (c *cell) zero() bool {
	return c.count == 0 && c.keyLo == 0 && c.keyHi == 0 && c.fpSum == 0
}

// Sampler is a leveled invertible sketch over edges, supporting
// inserts, deletes, merge, clone and deterministic serialization.
// It is not safe for concurrent mutation.
type Sampler struct {
	p         SamplerParams
	levelSeed uint64
	fpSeed    uint64
	rowSeeds  [samplerRowCount]uint64
	// cells holds Levels consecutive blocks of p.Cells cells.
	cells []cell
}

// NewSampler builds an empty sampler; params are normalized first.
func NewSampler(params SamplerParams) *Sampler {
	p := params.Normalize()
	s := &Sampler{p: p, cells: make([]cell, p.Levels*p.Cells)}
	s.deriveSeeds()
	return s
}

func (s *Sampler) deriveSeeds() {
	s.levelSeed = hashing.Mix2(s.p.Seed, levelSalt)
	s.fpSeed = hashing.Mix2(s.p.Seed, fpSalt)
	for r := 0; r < samplerRowCount; r++ {
		s.rowSeeds[r] = hashing.Mix2(s.p.Seed, rowSalt+uint64(r))
	}
}

// Params returns the sampler's (normalized) parameters.
func (s *Sampler) Params() SamplerParams { return s.p }

// Bytes returns the allocated cell-array footprint.
func (s *Sampler) Bytes() int { return len(s.cells) * 32 }

// NonZeroCells counts cells with any live content — the serialized
// (sparse) state size is proportional to it.
func (s *Sampler) NonZeroCells() int {
	n := 0
	for i := range s.cells {
		if !s.cells[i].zero() {
			n++
		}
	}
	return n
}

func edgeKey(set, elem uint32) uint64 { return uint64(set)<<32 | uint64(elem) }

// elemLevel returns the deepest level the element participates in:
// the number of leading zero bits of its hash, capped at Levels−1.
func (s *Sampler) elemLevel(elem uint32) int {
	h := hashing.Mix2(s.levelSeed, uint64(elem))
	l := bits.LeadingZeros64(h | 1)
	if l >= s.p.Levels {
		l = s.p.Levels - 1
	}
	return l
}

func (s *Sampler) fp(key uint64) uint64 { return hashing.Mix2(s.fpSeed, key) }

// rowPos returns the in-level cell index for (level, row, key). Rows
// partition the level's cells into three disjoint ranges, so a key's
// three cells are always distinct.
func (s *Sampler) rowPos(level, row int, key uint64) int {
	w := s.p.Cells / samplerRowCount
	h := hashing.Mix2(s.rowSeeds[row]+uint64(level)*0x9e37, key)
	return row*w + int(h%uint64(w))
}

// Update applies one op: delta must be +1 (insert) or −1 (delete).
func (s *Sampler) Update(set, elem uint32, delta int64) {
	key := edgeKey(set, elem)
	fp := s.fp(key)
	top := s.elemLevel(elem)
	for l := 0; l <= top; l++ {
		base := l * s.p.Cells
		for r := 0; r < samplerRowCount; r++ {
			c := &s.cells[base+s.rowPos(l, r, key)]
			c.count += delta
			if delta > 0 {
				var carry uint64
				c.keyLo, carry = bits.Add64(c.keyLo, key, 0)
				c.keyHi += carry
				c.fpSum += fp
			} else {
				var borrow uint64
				c.keyLo, borrow = bits.Sub64(c.keyLo, key, 0)
				c.keyHi -= borrow
				c.fpSum -= fp
			}
		}
	}
}

// Apply consumes a batch of ops.
func (s *Sampler) Apply(ops []bipartite.Op) {
	for i := range ops {
		delta := int64(1)
		if ops[i].Kind == bipartite.OpDelete {
			delta = -1
		}
		s.Update(ops[i].Edge.Set, ops[i].Edge.Elem, delta)
	}
}

// AddEdges inserts a batch of edges.
func (s *Sampler) AddEdges(edges []bipartite.Edge) {
	for i := range edges {
		s.Update(edges[i].Set, edges[i].Elem, 1)
	}
}

// Merge folds other into s cell-wise; the samplers must share params.
// Because the structure is linear, merging shard-local samplers yields
// exactly the sampler of the concatenated op streams.
func (s *Sampler) Merge(other *Sampler) error {
	if other.p != s.p {
		return fmt.Errorf("l0: cannot merge samplers with different params (%+v vs %+v)", s.p, other.p)
	}
	for i := range s.cells {
		a, b := &s.cells[i], &other.cells[i]
		a.count += b.count
		var carry uint64
		a.keyLo, carry = bits.Add64(a.keyLo, b.keyLo, 0)
		a.keyHi += b.keyHi + carry
		a.fpSum += b.fpSum
	}
	return nil
}

// Clone returns an independent deep copy.
func (s *Sampler) Clone() *Sampler {
	c := &Sampler{p: s.p, levelSeed: s.levelSeed, fpSeed: s.fpSeed, rowSeeds: s.rowSeeds}
	c.cells = append(make([]cell, 0, len(s.cells)), s.cells...)
	return c
}

// ErrNoDecode reports that no level of the sampler peeled completely —
// the stream is too dense for the configured cells, or (for invalid
// streams that delete edges never inserted) no consistent sample
// exists.
var ErrNoDecode = errors.New("l0: sampler recovery failed at every level")

// RecoverResult is a decoded sample: the distinct surviving edges at
// the shallowest decodable level, and that level's sampling rate.
type RecoverResult struct {
	// Edges lists the distinct edges of the level's sample, sorted by
	// (Set, Elem) — deterministic for a given cell state.
	Edges []bipartite.Edge
	// Level is the decoded level; the element-sampling probability is
	// PStar = 2^−Level.
	Level int
	// PStar = 2^−Level, the probability each element survived into the
	// decoded sample.
	PStar float64
}

// Recover peels the levels shallowest-first and returns the first one
// that decodes completely. Level 0 holds everything, so on streams
// small enough to fit it the result is the exact live edge set — in
// particular a fully cancelled stream decodes at level 0 to no edges.
func (s *Sampler) Recover() (RecoverResult, error) {
	for l := 0; l < s.p.Levels; l++ {
		edges, ok := s.peelLevel(l)
		if !ok {
			continue
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Set != edges[j].Set {
				return edges[i].Set < edges[j].Set
			}
			return edges[i].Elem < edges[j].Elem
		})
		return RecoverResult{Edges: edges, Level: l, PStar: levelP(l)}, nil
	}
	return RecoverResult{}, ErrNoDecode
}

func levelP(level int) float64 {
	return 1.0 / float64(uint64(1)<<uint(level))
}

// peelLevel runs IBLT peeling over a copy of one level's cells.
func (s *Sampler) peelLevel(level int) ([]bipartite.Edge, bool) {
	base := level * s.p.Cells
	work := append(make([]cell, 0, s.p.Cells), s.cells[base:base+s.p.Cells]...)
	w := s.p.Cells / samplerRowCount

	var keys []uint64
	// Every productive round decodes at least one distinct key and a
	// decodable level holds at most Cells keys, so Cells+8 rounds
	// suffice; the cap also bounds ghost-decode cascades on garbage.
	for round := 0; round < s.p.Cells+8; round++ {
		progress := false
		for pos := range work {
			c := &work[pos]
			if c.zero() || c.count <= 0 {
				continue
			}
			m := uint64(c.count)
			if c.keyHi >= m {
				continue // key sum can't be m·key for any 64-bit key
			}
			key, rem := bits.Div64(c.keyHi, c.keyLo, m)
			if rem != 0 || c.fpSum != m*s.fp(key) {
				continue
			}
			elem := uint32(key)
			if s.elemLevel(elem) < level {
				continue // decoded key doesn't belong at this level
			}
			row := pos / w
			if s.rowPos(level, row, key) != pos {
				continue // decoded key doesn't hash to this cell
			}
			// Pure cell: remove m copies of key from its three cells.
			mhi, mlo := bits.Mul64(m, key)
			mfp := m * s.fp(key)
			for r := 0; r < samplerRowCount; r++ {
				t := &work[s.rowPos(level, r, key)]
				t.count -= int64(m)
				var borrow uint64
				t.keyLo, borrow = bits.Sub64(t.keyLo, mlo, 0)
				t.keyHi -= mhi + borrow
				t.fpSum -= mfp
			}
			keys = append(keys, key)
			progress = true
		}
		if !progress {
			break
		}
	}
	for i := range work {
		if !work[i].zero() {
			return nil, false
		}
	}
	// Distinct keys only: a ghost decode could in principle repeat a
	// key; dedupe after sorting keeps the output a set.
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	edges := make([]bipartite.Edge, 0, len(keys))
	for i, k := range keys {
		if i > 0 && keys[i-1] == k {
			continue
		}
		edges = append(edges, bipartite.Edge{Set: uint32(k >> 32), Elem: uint32(k)})
	}
	return edges, true
}

// ErrCorruptSampler reports an undecodable serialized sampler state.
var ErrCorruptSampler = errors.New("l0: corrupt sampler state")

// WriteTo serializes the sampler deterministically: a fixed header,
// the non-zero cells in ascending index order, and a CRC. Equal cell
// states — and by linearity, equal net op multisets — produce
// byte-identical output regardless of how the state was assembled.
func (s *Sampler) WriteTo(wr io.Writer) (int64, error) {
	nnz := s.NonZeroCells()
	buf := make([]byte, 0, len(samplerMagic)+24+8+nnz*36+4)
	buf = append(buf, samplerMagic...)
	payload := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.p.Levels))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.p.Cells))
	buf = binary.LittleEndian.AppendUint64(buf, s.p.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(nnz))
	for i := range s.cells {
		c := &s.cells[i]
		if c.zero() {
			continue
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(i))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c.count))
		buf = binary.LittleEndian.AppendUint64(buf, c.keyLo)
		buf = binary.LittleEndian.AppendUint64(buf, c.keyHi)
		buf = binary.LittleEndian.AppendUint64(buf, c.fpSum)
	}
	crc := crc32.Checksum(buf[payload:], crcTable)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	n, err := wr.Write(buf)
	return int64(n), err
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ReadSampler decodes a sampler serialized by WriteTo. Corruption
// yields a typed error (wrapping ErrCorruptSampler), never a panic,
// and allocation is bounded by the validated header.
func ReadSampler(rd io.Reader) (*Sampler, error) {
	var magic [len(samplerMagic)]byte
	if _, err := io.ReadFull(rd, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrCorruptSampler, err)
	}
	if string(magic[:]) != samplerMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptSampler, magic[:])
	}
	var hdr [24]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrCorruptSampler, err)
	}
	crc := crc32.Checksum(hdr[:], crcTable)
	p := SamplerParams{
		Levels: int(binary.LittleEndian.Uint32(hdr[0:4])),
		Cells:  int(binary.LittleEndian.Uint32(hdr[4:8])),
		Seed:   binary.LittleEndian.Uint64(hdr[8:16]),
	}
	if err := p.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSampler, err)
	}
	nnz := binary.LittleEndian.Uint64(hdr[16:24])
	if nnz > uint64(p.Levels*p.Cells) {
		return nil, fmt.Errorf("%w: %d non-zero cells exceed capacity %d", ErrCorruptSampler, nnz, p.Levels*p.Cells)
	}
	s := &Sampler{p: p, cells: make([]cell, p.Levels*p.Cells)}
	s.deriveSeeds()
	var ent [36]byte
	prev := -1
	for i := uint64(0); i < nnz; i++ {
		if _, err := io.ReadFull(rd, ent[:]); err != nil {
			return nil, fmt.Errorf("%w: reading cell %d: %v", ErrCorruptSampler, i, err)
		}
		crc = crc32.Update(crc, crcTable, ent[:])
		idx := int(binary.LittleEndian.Uint32(ent[0:4]))
		if idx <= prev || idx >= len(s.cells) {
			return nil, fmt.Errorf("%w: cell index %d out of order or range", ErrCorruptSampler, idx)
		}
		prev = idx
		s.cells[idx] = cell{
			count: int64(binary.LittleEndian.Uint64(ent[4:12])),
			keyLo: binary.LittleEndian.Uint64(ent[12:20]),
			keyHi: binary.LittleEndian.Uint64(ent[20:28]),
			fpSum: binary.LittleEndian.Uint64(ent[28:36]),
		}
	}
	var tail [4]byte
	if _, err := io.ReadFull(rd, tail[:]); err != nil {
		return nil, fmt.Errorf("%w: reading checksum: %v", ErrCorruptSampler, err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != crc {
		return nil, fmt.Errorf("%w: checksum mismatch (got %08x want %08x)", ErrCorruptSampler, got, crc)
	}
	return s, nil
}
