// Package l0 implements mergeable ℓ0 (distinct-count) sketches in the
// style of Cormode–Datar–Indyk–Muthukrishnan [16], which Appendix D of the
// paper uses as the natural-but-suboptimal O~(nk)-space baseline for
// k-cover. The concrete sketch is KMV (k-minimum-values): keep the t
// smallest distinct hash values of the inserted items; the number of
// distinct items is estimated as (t−1)/h_(t) where h_(t) is the t-th
// smallest hash scaled to (0,1]. Two KMV sketches over the same hash
// function merge into the sketch of the union — exactly the property
// Appendix D needs to estimate coverage of a family of sets.
package l0

import (
	"fmt"
	"sort"

	"repro/internal/hashing"
)

// KMV is a k-minimum-values distinct counter. The zero value is unusable;
// construct with NewKMV. Sketches merge only if built with the same seed
// and capacity.
type KMV struct {
	t      int
	seed   uint64
	hasher hashing.Hasher
	// hs holds the up-to-t smallest distinct hash values, sorted
	// ascending. Insertion keeps it sorted; typical t is small (O(1/ε²)).
	hs []uint64
	// exactBelow is true while fewer than t distinct values were seen, in
	// which case len(hs) is the exact distinct count.
	sawAny bool
}

// NewKMV returns a KMV sketch keeping the t smallest hash values.
// t = ceil(3/ε²) gives a (1±ε) estimate with constant probability; callers
// boost confidence by taking medians across independent seeds.
func NewKMV(t int, seed uint64) *KMV {
	if t < 2 {
		t = 2
	}
	return &KMV{t: t, seed: seed, hasher: hashing.NewHasher(seed), hs: make([]uint64, 0, t)}
}

// TForEpsilon returns the sketch capacity needed for a (1±eps) relative
// error with constant success probability.
func TForEpsilon(eps float64) int {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("l0: eps out of range: %v", eps))
	}
	t := int(3.0/(eps*eps)) + 1
	if t < 16 {
		t = 16
	}
	return t
}

// Seed returns the sketch's hash seed.
func (s *KMV) Seed() uint64 { return s.seed }

// T returns the sketch capacity.
func (s *KMV) T() int { return s.t }

// Size returns the number of stored hash values (≤ t).
func (s *KMV) Size() int { return len(s.hs) }

// Bytes returns the approximate memory footprint of the sketch payload.
func (s *KMV) Bytes() int { return 8 * cap(s.hs) }

// Add inserts item; duplicate items hash identically and are ignored.
func (s *KMV) Add(item uint32) {
	s.insertHash(s.hasher.Hash(item))
}

func (s *KMV) insertHash(h uint64) {
	n := len(s.hs)
	if n == s.t && h >= s.hs[n-1] {
		return // not among the t smallest
	}
	i := sort.Search(n, func(i int) bool { return s.hs[i] >= h })
	if i < n && s.hs[i] == h {
		return // duplicate
	}
	if n < s.t {
		s.hs = append(s.hs, 0)
	} else {
		n-- // drop the largest
	}
	copy(s.hs[i+1:], s.hs[i:n])
	s.hs[i] = h
}

// Merge folds other into s; both sketches must share seed and capacity.
func (s *KMV) Merge(other *KMV) error {
	if other.seed != s.seed || other.t != s.t {
		return fmt.Errorf("l0: cannot merge sketches with different seed/capacity")
	}
	for _, h := range other.hs {
		s.insertHash(h)
	}
	return nil
}

// Clone returns an independent copy of s.
func (s *KMV) Clone() *KMV {
	c := &KMV{t: s.t, seed: s.seed, hasher: s.hasher}
	c.hs = append(make([]uint64, 0, s.t), s.hs...)
	return c
}

// Estimate returns the estimated number of distinct items inserted.
func (s *KMV) Estimate() float64 {
	n := len(s.hs)
	if n < s.t {
		// Fewer than t distinct values seen: the count is exact.
		return float64(n)
	}
	ht := hashing.ToUnit(s.hs[n-1])
	if ht <= 0 {
		return float64(n)
	}
	return float64(s.t-1) / ht
}

// UnionEstimate estimates |A ∪ B| for the multisets underlying sketches;
// it merges copies, leaving the inputs untouched.
func UnionEstimate(sketches ...*KMV) (float64, error) {
	if len(sketches) == 0 {
		return 0, nil
	}
	acc := sketches[0].Clone()
	for _, s := range sketches[1:] {
		if err := acc.Merge(s); err != nil {
			return 0, err
		}
	}
	return acc.Estimate(), nil
}
