package l0

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hashing"
)

func TestExactBelowCapacity(t *testing.T) {
	s := NewKMV(64, 1)
	for i := uint32(0); i < 50; i++ {
		s.Add(i)
	}
	if got := s.Estimate(); got != 50 {
		t.Fatalf("below capacity the count must be exact: got %v", got)
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	s := NewKMV(64, 2)
	for rep := 0; rep < 10; rep++ {
		for i := uint32(0); i < 30; i++ {
			s.Add(i)
		}
	}
	if got := s.Estimate(); got != 30 {
		t.Fatalf("duplicates inflated the sketch: got %v", got)
	}
	if s.Size() != 30 {
		t.Fatalf("Size = %d, want 30", s.Size())
	}
}

func TestCapacityEnforced(t *testing.T) {
	s := NewKMV(16, 3)
	for i := uint32(0); i < 10000; i++ {
		s.Add(i)
	}
	if s.Size() != 16 {
		t.Fatalf("Size = %d, want 16", s.Size())
	}
	if s.Bytes() < 16*8 {
		t.Fatalf("Bytes = %d suspiciously small", s.Bytes())
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// Median-of-11 estimates over a t=3/eps^2 sketch should land within
	// ~2 eps of the truth.
	const truth = 20000
	const eps = 0.1
	tCap := TForEpsilon(eps)
	var ests []float64
	for seed := uint64(0); seed < 11; seed++ {
		s := NewKMV(tCap, seed)
		for i := uint32(0); i < truth; i++ {
			s.Add(i)
		}
		ests = append(ests, s.Estimate())
	}
	// median
	for i := 1; i < len(ests); i++ {
		for j := i; j > 0 && ests[j] < ests[j-1]; j-- {
			ests[j], ests[j-1] = ests[j-1], ests[j]
		}
	}
	med := ests[len(ests)/2]
	if math.Abs(med-truth)/truth > 2*eps {
		t.Fatalf("median estimate %v too far from %d", med, truth)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	err := quick.Check(func(xs, ys []uint16) bool {
		a := NewKMV(32, 7)
		b := NewKMV(32, 7)
		u := NewKMV(32, 7)
		for _, x := range xs {
			a.Add(uint32(x))
			u.Add(uint32(x))
		}
		for _, y := range ys {
			b.Add(uint32(y))
			u.Add(uint32(y))
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		if a.Size() != u.Size() {
			return false
		}
		return a.Estimate() == u.Estimate()
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMergeRejectsMismatchedSeeds(t *testing.T) {
	a := NewKMV(32, 1)
	b := NewKMV(32, 2)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across seeds accepted")
	}
	c := NewKMV(16, 1)
	if err := a.Merge(c); err == nil {
		t.Fatal("merge across capacities accepted")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := NewKMV(16, 5)
	for i := uint32(0); i < 10; i++ {
		a.Add(i)
	}
	c := a.Clone()
	c.Add(1000)
	if a.Size() == c.Size() {
		t.Fatal("clone aliases original")
	}
	if c.Seed() != a.Seed() || c.T() != a.T() {
		t.Fatal("clone changed parameters")
	}
}

func TestUnionEstimate(t *testing.T) {
	a := NewKMV(512, 9)
	b := NewKMV(512, 9)
	for i := uint32(0); i < 300; i++ {
		a.Add(i)
	}
	for i := uint32(200); i < 500; i++ {
		b.Add(i)
	}
	got, err := UnionEstimate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 500 { // both under capacity -> exact
		t.Fatalf("UnionEstimate = %v, want 500", got)
	}
	// Inputs untouched.
	if a.Size() != 300 || b.Size() != 300 {
		t.Fatal("UnionEstimate modified inputs")
	}
	if v, err := UnionEstimate(); err != nil || v != 0 {
		t.Fatal("empty UnionEstimate should be 0, nil")
	}
}

func TestTForEpsilon(t *testing.T) {
	if TForEpsilon(0.1) < 300 {
		t.Fatalf("TForEpsilon(0.1) = %d too small", TForEpsilon(0.1))
	}
	if TForEpsilon(0.9) < 16 {
		t.Fatal("TForEpsilon floor violated")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TForEpsilon(0) did not panic")
		}
	}()
	TForEpsilon(0)
}

func TestMinimumCapacityClamp(t *testing.T) {
	s := NewKMV(0, 1)
	if s.T() < 2 {
		t.Fatal("capacity not clamped")
	}
}

func TestInsertHashOrderInvariance(t *testing.T) {
	// The sketch state must not depend on insertion order.
	items := make([]uint32, 200)
	for i := range items {
		items[i] = uint32(i * 7)
	}
	a := NewKMV(32, 11)
	for _, x := range items {
		a.Add(x)
	}
	b := NewKMV(32, 11)
	rng := hashing.NewRNG(99)
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	for _, x := range items {
		b.Add(x)
	}
	if a.Estimate() != b.Estimate() || a.Size() != b.Size() {
		t.Fatal("sketch state depends on insertion order")
	}
}
