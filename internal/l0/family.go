package l0

import (
	"fmt"

	"repro/internal/hashing"
	"repro/internal/stats"
)

// Family maintains the Appendix D sketch family: one KMV ℓ0 sketch per
// set per repetition, all repetitions sharing a hash seed derived from
// the base seed, plus the median-across-repetitions union-size oracle
// built on top. It is the streaming half of the L0KCover baseline,
// promoted here so the offline baseline and any online caller share
// one implementation of the maintenance loop.
type Family struct {
	numSets int
	reps    int
	t       int
	seed    uint64
	// sketches[set][rep]
	sketches [][]*KMV
}

// NewFamily builds an empty family of numSets × reps KMV sketches with
// capacity t; repetition r hashes with seed Mix2(seed, r+1).
func NewFamily(numSets, reps, t int, seed uint64) *Family {
	if numSets < 1 || reps < 1 {
		panic(fmt.Sprintf("l0: bad family shape %d×%d", numSets, reps))
	}
	f := &Family{numSets: numSets, reps: reps, t: t, seed: seed}
	f.sketches = make([][]*KMV, numSets)
	for s := range f.sketches {
		f.sketches[s] = make([]*KMV, reps)
		for r := 0; r < reps; r++ {
			f.sketches[s][r] = NewKMV(t, hashing.Mix2(seed, uint64(r)+1))
		}
	}
	return f
}

// NumSets returns the number of sets tracked.
func (f *Family) NumSets() int { return f.numSets }

// Reps returns the number of repetitions per set.
func (f *Family) Reps() int { return f.reps }

// Add records one (set, elem) stream edge in every repetition.
func (f *Family) Add(set int, elem uint32) {
	for r := 0; r < f.reps; r++ {
		f.sketches[set][r].Add(elem)
	}
}

// Sketch exposes one underlying KMV sketch (set-major, rep-minor).
func (f *Family) Sketch(set, rep int) *KMV { return f.sketches[set][rep] }

// Values returns the total number of stored hash values across the
// family — the baseline's space in items.
func (f *Family) Values() int {
	n := 0
	for s := range f.sketches {
		for r := 0; r < f.reps; r++ {
			n += f.sketches[s][r].Size()
		}
	}
	return n
}

// UnionEstimate is the (1±ε) union-size oracle: per repetition, merge
// the chosen sets' sketches and estimate; return the median across
// repetitions.
func (f *Family) UnionEstimate(sets []int) float64 {
	if len(sets) == 0 {
		return 0
	}
	ests := make([]float64, f.reps)
	for r := 0; r < f.reps; r++ {
		acc := f.sketches[sets[0]][r].Clone()
		for _, s := range sets[1:] {
			if err := acc.Merge(f.sketches[s][r]); err != nil {
				panic("l0: family union merge: " + err.Error())
			}
		}
		ests[r] = acc.Estimate()
	}
	return stats.Median(ests)
}

// Accumulator is a running union over chosen sets, one merged sketch
// per repetition — the structure greedy needs so each candidate probe
// costs one clone+merge per repetition rather than re-merging the
// whole prefix.
type Accumulator struct {
	f       *Family
	current []*KMV
	scratch []float64
}

// NewAccumulator returns an empty running union for the family.
func (f *Family) NewAccumulator() *Accumulator {
	a := &Accumulator{f: f, current: make([]*KMV, f.reps), scratch: make([]float64, f.reps)}
	for r := range a.current {
		a.current[r] = NewKMV(f.t, f.sketches[0][r].Seed())
	}
	return a
}

// EstimateWith returns the median estimated size of (current union) ∪
// set without modifying the accumulator.
func (a *Accumulator) EstimateWith(set int) float64 {
	for r := 0; r < a.f.reps; r++ {
		acc := a.current[r].Clone()
		if err := acc.Merge(a.f.sketches[set][r]); err != nil {
			panic("l0: accumulator merge: " + err.Error())
		}
		a.scratch[r] = acc.Estimate()
	}
	return stats.Median(a.scratch)
}

// Absorb folds set into the running union.
func (a *Accumulator) Absorb(set int) {
	for r := 0; r < a.f.reps; r++ {
		if err := a.current[r].Merge(a.f.sketches[set][r]); err != nil {
			panic("l0: accumulator merge: " + err.Error())
		}
	}
}
