package l0

import "testing"

// BenchmarkKMVAdd measures the per-item insert cost of the ℓ0 sketch.
func BenchmarkKMVAdd(b *testing.B) {
	s := NewKMV(256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(uint32(i))
	}
}

// BenchmarkKMVMerge measures merging two full sketches — the union
// operation Appendix D performs per oracle query.
func BenchmarkKMVMerge(b *testing.B) {
	x := NewKMV(256, 1)
	y := NewKMV(256, 1)
	for i := uint32(0); i < 100000; i++ {
		if i%2 == 0 {
			x.Add(i)
		} else {
			y.Add(i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		if err := c.Merge(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKMVEstimate measures the estimation query.
func BenchmarkKMVEstimate(b *testing.B) {
	s := NewKMV(256, 1)
	for i := uint32(0); i < 100000; i++ {
		s.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Estimate() <= 0 {
			b.Fatal("bad estimate")
		}
	}
}
