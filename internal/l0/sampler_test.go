package l0

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bipartite"
)

func testParams() SamplerParams {
	return SamplerParams{Levels: 12, Cells: 96, Seed: 42}.Normalize()
}

// genEdges builds n distinct edges over a small universe, deterministic
// in seed.
func genEdges(n int, seed int64) []bipartite.Edge {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool, n)
	edges := make([]bipartite.Edge, 0, n)
	for len(edges) < n {
		e := bipartite.Edge{Set: uint32(rng.Intn(64)), Elem: uint32(rng.Intn(1 << 16))}
		k := edgeKey(e.Set, e.Elem)
		if seen[k] {
			continue
		}
		seen[k] = true
		edges = append(edges, e)
	}
	return edges
}

func sortedEqual(a, b []bipartite.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[uint64]bool, len(a))
	for _, e := range a {
		am[edgeKey(e.Set, e.Elem)] = true
	}
	for _, e := range b {
		if !am[edgeKey(e.Set, e.Elem)] {
			return false
		}
	}
	return true
}

func serialize(t *testing.T, s *Sampler) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSamplerExactBelowCapacity: a stream small enough for level 0
// recovers exactly, at sampling probability 1.
func TestSamplerExactBelowCapacity(t *testing.T) {
	s := NewSampler(testParams())
	edges := genEdges(30, 1)
	s.AddEdges(edges)
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Level != 0 || rec.PStar != 1 {
		t.Fatalf("level %d p* %v, want level 0 p* 1", rec.Level, rec.PStar)
	}
	if !sortedEqual(rec.Edges, edges) {
		t.Fatalf("recovered %d edges != inserted %d", len(rec.Edges), len(edges))
	}
}

// TestSamplerDeleteExact: deleting a subset leaves exactly the rest.
func TestSamplerDeleteExact(t *testing.T) {
	s := NewSampler(testParams())
	edges := genEdges(40, 2)
	s.AddEdges(edges)
	s.Apply(bipartite.Deletes(edges[:25]))
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !sortedEqual(rec.Edges, edges[25:]) {
		t.Fatalf("recovered %d edges, want the %d undeleted ones", len(rec.Edges), len(edges)-25)
	}
}

// TestSamplerMultiplicity: an edge inserted m times needs m deletes to
// disappear, and recovery reports it once while any copies remain.
func TestSamplerMultiplicity(t *testing.T) {
	s := NewSampler(testParams())
	e := bipartite.Edge{Set: 3, Elem: 7}
	for i := 0; i < 3; i++ {
		s.AddEdges([]bipartite.Edge{e})
	}
	s.Apply(bipartite.Deletes([]bipartite.Edge{e, e}))
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Edges) != 1 || rec.Edges[0] != e {
		t.Fatalf("recovered %v, want exactly one copy of %v", rec.Edges, e)
	}
	s.Apply(bipartite.Deletes([]bipartite.Edge{e}))
	rec, err = s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Edges) != 0 {
		t.Fatalf("recovered %v after the last delete, want empty", rec.Edges)
	}
}

// TestSamplerInsertAllDeleteAll: a fully cancelled stream leaves every
// cell zero and decodes at level 0 to the empty graph — the linchpin of
// the engine-level insert-all-delete-all acceptance.
func TestSamplerInsertAllDeleteAll(t *testing.T) {
	s := NewSampler(testParams())
	edges := genEdges(500, 3) // well past level-0 capacity while live
	s.Apply(bipartite.Inserts(edges))
	s.Apply(bipartite.Deletes(edges))
	if nnz := s.NonZeroCells(); nnz != 0 {
		t.Fatalf("%d non-zero cells after full cancellation", nnz)
	}
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Edges) != 0 || rec.Level != 0 || rec.PStar != 1 {
		t.Fatalf("recovered %d edges at level %d, want the empty level-0 decode", len(rec.Edges), rec.Level)
	}
}

// TestSamplerLinearity: merging per-shard samplers equals the sampler
// of the concatenated stream, byte for byte — and so does any
// reordering or rebatching of the ops.
func TestSamplerLinearity(t *testing.T) {
	edges := genEdges(200, 4)
	ops := append(bipartite.Inserts(edges), bipartite.Deletes(edges[:80])...)

	whole := NewSampler(testParams())
	whole.Apply(ops)

	a, b := NewSampler(testParams()), NewSampler(testParams())
	for i, op := range ops {
		if i%2 == 0 {
			a.Apply([]bipartite.Op{op})
		} else {
			b.Apply([]bipartite.Op{op})
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialize(t, a), serialize(t, whole)) {
		t.Fatal("merged shard samplers != sampler of the concatenated stream")
	}

	rev := NewSampler(testParams())
	for i := len(ops) - 1; i >= 0; i-- {
		rev.Apply(ops[i : i+1])
	}
	if !bytes.Equal(serialize(t, rev), serialize(t, whole)) {
		t.Fatal("op order changed the sampler state")
	}
}

// TestSamplerCloneIndependent: mutating a clone leaves the original
// untouched and vice versa.
func TestSamplerCloneIndependent(t *testing.T) {
	s := NewSampler(testParams())
	edges := genEdges(20, 5)
	s.AddEdges(edges)
	before := serialize(t, s)
	c := s.Clone()
	c.Apply(bipartite.Deletes(edges))
	if !bytes.Equal(serialize(t, s), before) {
		t.Fatal("deleting through a clone mutated the original")
	}
	if c.NonZeroCells() != 0 {
		t.Fatal("clone did not absorb the deletes")
	}
}

// TestSamplerMergeRejectsMismatch: samplers built with different
// parameters must refuse to merge instead of silently corrupting state.
func TestSamplerMergeRejectsMismatch(t *testing.T) {
	a := NewSampler(testParams())
	p := testParams()
	p.Seed++
	b := NewSampler(p)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across different seeds succeeded")
	}
}

// TestSamplerSerializeRoundTrip: WriteTo → ReadSampler is lossless (the
// restored sampler re-serializes byte-identically and recovers the same
// edges), and any single-byte corruption is a typed error.
func TestSamplerSerializeRoundTrip(t *testing.T) {
	s := NewSampler(testParams())
	edges := genEdges(60, 6)
	s.AddEdges(edges)
	s.Apply(bipartite.Deletes(edges[:10]))
	blob := serialize(t, s)

	r, err := ReadSampler(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialize(t, r), blob) {
		t.Fatal("restored sampler re-serializes differently")
	}
	rec, err := r.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !sortedEqual(rec.Edges, edges[10:]) {
		t.Fatal("restored sampler recovers a different edge set")
	}

	for _, pos := range []int{0, len(samplerMagic) + 3, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[pos] ^= 0x01
		if _, err := ReadSampler(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptSampler) {
			t.Fatalf("corruption at byte %d: err = %v, want ErrCorruptSampler", pos, err)
		}
	}
	if _, err := ReadSampler(bytes.NewReader(blob[:len(blob)-5])); !errors.Is(err, ErrCorruptSampler) {
		t.Fatalf("truncated blob: err = %v, want ErrCorruptSampler", err)
	}
}

// TestSamplerLevelSubsampling: past level-0 capacity, recovery lands on
// a deeper level whose edges are exactly the incidence list of the
// elements that level samples — never a partial element.
func TestSamplerLevelSubsampling(t *testing.T) {
	p := SamplerParams{Levels: 16, Cells: 48, Seed: 9}.Normalize()
	s := NewSampler(p)
	edges := genEdges(3000, 7)
	s.AddEdges(edges)
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Level == 0 || rec.PStar >= 1 {
		t.Fatalf("3000 live edges decoded at level %d (p*=%v); expected subsampling", rec.Level, rec.PStar)
	}
	// The recovered sample must contain an element's full incidence
	// list or none of it, and exactly the elements the level keeps.
	want := make(map[uint64]bool)
	for _, e := range edges {
		if s.elemLevel(e.Elem) >= rec.Level {
			want[edgeKey(e.Set, e.Elem)] = true
		}
	}
	if len(rec.Edges) != len(want) {
		t.Fatalf("recovered %d edges, level %d samples %d", len(rec.Edges), rec.Level, len(want))
	}
	for _, e := range rec.Edges {
		if !want[edgeKey(e.Set, e.Elem)] {
			t.Fatalf("recovered edge %v is not in the level-%d sample", e, rec.Level)
		}
	}
}
