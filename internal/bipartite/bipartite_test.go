package bipartite

import (
	"testing"
	"testing/quick"

	"repro/internal/hashing"
)

func tinyGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(3, 5, []Edge{
		{0, 0}, {0, 1}, {0, 2},
		{1, 2}, {1, 3},
		{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasics(t *testing.T) {
	g := tinyGraph(t)
	if g.NumSets() != 3 || g.NumElems() != 5 || g.NumEdges() != 6 {
		t.Fatalf("dims: n=%d m=%d e=%d", g.NumSets(), g.NumElems(), g.NumEdges())
	}
	if g.SetLen(0) != 3 || g.SetLen(1) != 2 || g.SetLen(2) != 1 {
		t.Fatal("set sizes wrong")
	}
	want := []uint32{0, 1, 2}
	for i, e := range g.Set(0) {
		if e != want[i] {
			t.Fatalf("Set(0) = %v", g.Set(0))
		}
	}
}

func TestFromEdgesDedupes(t *testing.T) {
	g, err := FromEdges(2, 2, []Edge{{0, 1}, {0, 1}, {0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("dedupe failed: %d edges", g.NumEdges())
	}
}

func TestFromEdgesSortsUnsortedInput(t *testing.T) {
	g, err := FromEdges(1, 10, []Edge{{0, 9}, {0, 3}, {0, 7}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	adj := g.Set(0)
	for i := 1; i < len(adj); i++ {
		if adj[i-1] >= adj[i] {
			t.Fatalf("Set(0) not sorted: %v", adj)
		}
	}
}

func TestFromEdgesRangeErrors(t *testing.T) {
	if _, err := FromEdges(2, 2, []Edge{{2, 0}}); err == nil {
		t.Fatal("out-of-range set accepted")
	}
	if _, err := FromEdges(2, 2, []Edge{{0, 2}}); err == nil {
		t.Fatal("out-of-range element accepted")
	}
	if _, err := FromEdges(-1, 2, nil); err == nil {
		t.Fatal("negative dims accepted")
	}
}

func TestElemIndexMirrorsSetIndex(t *testing.T) {
	g := tinyGraph(t)
	if g.ElemDegree(2) != 2 {
		t.Fatalf("ElemDegree(2) = %d", g.ElemDegree(2))
	}
	sets := g.Elem(2)
	if len(sets) != 2 || sets[0] != 0 || sets[1] != 1 {
		t.Fatalf("Elem(2) = %v", sets)
	}
	// Every edge visible both ways.
	for s := 0; s < g.NumSets(); s++ {
		for _, e := range g.Set(s) {
			found := false
			for _, back := range g.Elem(int(e)) {
				if back == uint32(s) {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) missing from element index", s, e)
			}
		}
	}
}

func TestContains(t *testing.T) {
	g := tinyGraph(t)
	if !g.Contains(0, 1) || g.Contains(0, 4) || g.Contains(2, 0) {
		t.Fatal("Contains wrong")
	}
}

func TestCoverage(t *testing.T) {
	g := tinyGraph(t)
	cases := []struct {
		sets []int
		want int
	}{
		{nil, 0},
		{[]int{0}, 3},
		{[]int{1}, 2},
		{[]int{0, 1}, 4},
		{[]int{0, 1, 2}, 5},
		{[]int{2, 2}, 1},
	}
	for _, c := range cases {
		if got := g.Coverage(c.sets); got != c.want {
			t.Fatalf("Coverage(%v) = %d, want %d", c.sets, got, c.want)
		}
	}
}

func TestCovererIncrementalAndMarginal(t *testing.T) {
	g := tinyGraph(t)
	c := NewCoverer(g)
	if c.Marginal(0) != 3 {
		t.Fatalf("Marginal(0) = %d", c.Marginal(0))
	}
	if got := c.Add(0); got != 3 {
		t.Fatalf("Add(0) = %d", got)
	}
	if c.Marginal(1) != 1 { // element 2 already covered
		t.Fatalf("Marginal(1) after Add(0) = %d", c.Marginal(1))
	}
	if got := c.Add(1); got != 4 {
		t.Fatalf("Add(1) = %d", got)
	}
	if !c.IsCovered(2) || c.IsCovered(4) {
		t.Fatal("IsCovered wrong")
	}
	c.Reset()
	if c.Covered() != 0 || c.IsCovered(0) {
		t.Fatal("Reset did not clear")
	}
	if got := c.Add(2); got != 1 {
		t.Fatalf("Add after Reset = %d", got)
	}
}

func TestCovererEpochWrap(t *testing.T) {
	g := tinyGraph(t)
	c := NewCoverer(g)
	c.Add(0)
	// Force the epoch counter to wrap.
	c.epoch = ^uint32(0)
	c.Reset()
	if c.IsCovered(0) {
		t.Fatal("stale coverage visible after epoch wrap")
	}
	if got := c.Add(0); got != 3 {
		t.Fatalf("Add after wrap = %d", got)
	}
}

func TestDegreeStats(t *testing.T) {
	g := tinyGraph(t)
	if g.MaxSetLen() != 3 {
		t.Fatalf("MaxSetLen = %d", g.MaxSetLen())
	}
	if g.MaxElemDegree() != 2 {
		t.Fatalf("MaxElemDegree = %d", g.MaxElemDegree())
	}
	if g.CoveredElems() != 5 {
		t.Fatalf("CoveredElems = %d", g.CoveredElems())
	}
}

func TestIsolatedElements(t *testing.T) {
	g, err := FromEdges(2, 4, []Edge{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.CoveredElems() != 2 {
		t.Fatalf("CoveredElems = %d", g.CoveredElems())
	}
	if g.ElemDegree(3) != 0 {
		t.Fatal("isolated element has edges")
	}
}

func TestInduce(t *testing.T) {
	g := tinyGraph(t)
	sub := g.Induce(func(e uint32) bool { return e%2 == 0 })
	if sub.NumSets() != g.NumSets() || sub.NumElems() != g.NumElems() {
		t.Fatal("Induce changed dimensions")
	}
	// Only even elements remain: set 0 keeps {0,2}, set 1 keeps {2}, set 2 keeps {4}.
	if sub.SetLen(0) != 2 || sub.SetLen(1) != 1 || sub.SetLen(2) != 1 {
		t.Fatalf("Induce kept wrong edges: %d %d %d", sub.SetLen(0), sub.SetLen(1), sub.SetLen(2))
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := tinyGraph(t)
	edges := g.Edges(nil)
	if len(edges) != g.NumEdges() {
		t.Fatalf("Edges returned %d", len(edges))
	}
	g2, err := FromEdges(g.NumSets(), g.NumElems(), edges)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.NumSets(); s++ {
		a, b := g.Set(s), g2.Set(s)
		if len(a) != len(b) {
			t.Fatalf("set %d size mismatch", s)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("set %d differs", s)
			}
		}
	}
}

func TestFromSets(t *testing.T) {
	g, err := FromSets(4, [][]uint32{{0, 1}, {1, 2, 3}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSets() != 3 || g.SetLen(2) != 0 || g.NumEdges() != 5 {
		t.Fatal("FromSets wrong")
	}
}

// randomGraph builds a random instance for property tests.
func randomGraph(seed uint64, n, m int, density float64) *Graph {
	rng := hashing.NewRNG(seed)
	var edges []Edge
	for s := 0; s < n; s++ {
		for e := 0; e < m; e++ {
			if rng.Float64() < density {
				edges = append(edges, Edge{Set: uint32(s), Elem: uint32(e)})
			}
		}
	}
	return MustFromEdges(n, m, edges)
}

func TestCoverageMonotone(t *testing.T) {
	err := quick.Check(func(seed uint64, pick uint8) bool {
		g := randomGraph(seed, 8, 30, 0.15)
		var sets []int
		for s := 0; s < 8; s++ {
			if pick&(1<<uint(s)) != 0 {
				sets = append(sets, s)
			}
		}
		base := g.Coverage(sets)
		for s := 0; s < 8; s++ {
			if g.Coverage(append(append([]int(nil), sets...), s)) < base {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoverageSubmodular(t *testing.T) {
	// f(A + x) - f(A) >= f(B + x) - f(B) for A ⊆ B.
	err := quick.Check(func(seed uint64, maskA, extra uint8) bool {
		g := randomGraph(seed, 8, 30, 0.15)
		maskB := maskA | extra
		var a, b []int
		for s := 0; s < 8; s++ {
			if maskA&(1<<uint(s)) != 0 {
				a = append(a, s)
			}
			if maskB&(1<<uint(s)) != 0 {
				b = append(b, s)
			}
		}
		fa, fb := g.Coverage(a), g.Coverage(b)
		for x := 0; x < 8; x++ {
			gainA := g.Coverage(append(append([]int(nil), a...), x)) - fa
			gainB := g.Coverage(append(append([]int(nil), b...), x)) - fb
			if gainA < gainB {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}
