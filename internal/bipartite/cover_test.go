package bipartite

import "testing"

// TestBitsetCovererMatchesStamp drives both evaluators through the same
// add/marginal schedule on random graphs and demands identical answers
// at every step.
func TestBitsetCovererMatchesStamp(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := randomGraph(seed, 25, 300, 0.08)
		stamp := NewCoverer(g)
		bits := NewBitsetCoverer(g)
		for round := 0; round < 3; round++ {
			for s := 0; s < g.NumSets(); s++ {
				if stamp.Marginal(s) != bits.Marginal(s) {
					t.Fatalf("seed=%d round=%d set=%d: marginal %d != %d",
						seed, round, s, stamp.Marginal(s), bits.Marginal(s))
				}
			}
			pick := int(seed+uint64(round)*7) % g.NumSets()
			if a, b := stamp.Add(pick), bits.Add(pick); a != b {
				t.Fatalf("seed=%d round=%d: add %d != %d", seed, round, a, b)
			}
			for e := 0; e < g.NumElems(); e++ {
				if stamp.IsCovered(uint32(e)) != bits.IsCovered(uint32(e)) {
					t.Fatalf("seed=%d round=%d elem=%d: IsCovered disagree", seed, round, e)
				}
			}
		}
		if stamp.Covered() != bits.Covered() {
			t.Fatalf("seed=%d: covered %d != %d", seed, stamp.Covered(), bits.Covered())
		}
		stamp.Reset()
		bits.Reset()
		if bits.Covered() != 0 || bits.IsCovered(0) {
			t.Fatal("reset did not clear bitset coverer")
		}
		if a, b := stamp.Add(0, 1, 2), bits.Add(0, 1, 2); a != b {
			t.Fatalf("post-reset add %d != %d", a, b)
		}
	}
}

func TestBitsetCoverersShareGraphIndex(t *testing.T) {
	g := randomGraph(3, 10, 100, 0.2)
	a := NewBitsetCoverer(g)
	b := NewBitsetCoverer(g)
	if a.ix != b.ix {
		t.Fatal("bitmap index not shared across coverers of one graph")
	}
	// Coverers are independent despite the shared index.
	a.Add(0)
	if b.Covered() != 0 {
		t.Fatal("coverers share covered state")
	}
}

func TestNewEvaluatorHeuristic(t *testing.T) {
	// Dense-degree: avg set size (~0.5*m) far exceeds m/64 words.
	dense := randomGraph(1, 20, 512, 0.5)
	if _, ok := dense.NewEvaluator().(*BitsetCoverer); !ok {
		t.Fatalf("dense graph got %T, want bitset engine", dense.NewEvaluator())
	}
	// Sparse: avg set size ~2 over a wide ground set; stamp must win.
	sparse := randomGraph(2, 50, 20000, 0.0001)
	if _, ok := sparse.NewEvaluator().(*Coverer); !ok {
		t.Fatalf("sparse graph got %T, want stamp engine", sparse.NewEvaluator())
	}
	// Empty graph falls back to the stamp engine.
	empty := MustFromEdges(4, 4, nil)
	if _, ok := empty.NewEvaluator().(*Coverer); !ok {
		t.Fatal("empty graph must use the stamp engine")
	}
}

func TestBuildCoverIndexIsEagerAndIdempotent(t *testing.T) {
	g := randomGraph(5, 16, 256, 0.4)
	g.BuildCoverIndex()
	if g.coverIndex == nil {
		t.Fatal("BuildCoverIndex did not materialize the index on a dense graph")
	}
	ix := g.coverIndex
	g.BuildCoverIndex()
	if g.coverIndex != ix {
		t.Fatal("BuildCoverIndex rebuilt the index")
	}
	// The index rows must agree with adjacency.
	for s := 0; s < g.NumSets(); s++ {
		row := ix.row(s)
		if row.Count() != g.SetLen(s) {
			t.Fatalf("set %d: %d bits != %d adjacency entries", s, row.Count(), g.SetLen(s))
		}
		for _, e := range g.Set(s) {
			if !row.Get(int(e)) {
				t.Fatalf("set %d missing element %d in bitmap", s, e)
			}
		}
	}
}
