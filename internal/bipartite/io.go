package bipartite

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text format:
//
//	# comments and blank lines are ignored
//	header: "c <numSets> <numElems>"
//	edges:  "<set> <elem>" one per line
//
// Binary format: magic "BCOV1", then numSets, numElems, numEdges as
// little-endian uint64, then (set, elem) uint32 pairs.

const binaryMagic = "BCOV1"

// WriteText writes g as a text edge list.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "c %d %d\n", g.NumSets(), g.NumElems()); err != nil {
		return err
	}
	for s := 0; s < g.NumSets(); s++ {
		for _, e := range g.Set(s) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", s, e); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadText parses the text edge-list format.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var (
		haveHeader bool
		numSets    int
		numElems   int
		edges      []Edge
	)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "c" {
			if len(fields) != 3 {
				return nil, fmt.Errorf("bipartite: line %d: header needs 'c n m'", line)
			}
			var err error
			numSets, err = strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("bipartite: line %d: bad n: %v", line, err)
			}
			numElems, err = strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("bipartite: line %d: bad m: %v", line, err)
			}
			haveHeader = true
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("bipartite: line %d: expected 'set elem'", line)
		}
		s, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bipartite: line %d: bad set id: %v", line, err)
		}
		e, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bipartite: line %d: bad element id: %v", line, err)
		}
		edges = append(edges, Edge{Set: uint32(s), Elem: uint32(e)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !haveHeader {
		// Infer dimensions from the edges.
		for _, e := range edges {
			if int(e.Set) >= numSets {
				numSets = int(e.Set) + 1
			}
			if int(e.Elem) >= numElems {
				numElems = int(e.Elem) + 1
			}
		}
	}
	return FromEdges(numSets, numElems, edges)
}

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := [3]uint64{uint64(g.NumSets()), uint64(g.NumElems()), uint64(g.NumEdges())}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	var buf [8]byte
	for s := 0; s < g.NumSets(); s++ {
		for _, e := range g.Set(s) {
			binary.LittleEndian.PutUint32(buf[0:4], uint32(s))
			binary.LittleEndian.PutUint32(buf[4:8], e)
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("bipartite: bad magic %q", magic)
	}
	var hdr [3]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	numSets, numElems, numEdges := int(hdr[0]), int(hdr[1]), int(hdr[2])
	edges := make([]Edge, numEdges)
	var buf [8]byte
	for i := 0; i < numEdges; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		edges[i] = Edge{
			Set:  binary.LittleEndian.Uint32(buf[0:4]),
			Elem: binary.LittleEndian.Uint32(buf[4:8]),
		}
	}
	return FromEdges(numSets, numElems, edges)
}
