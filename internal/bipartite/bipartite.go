// Package bipartite represents coverage-problem instances as bipartite
// graphs between a family of n sets and a ground set of m elements,
// following the paper's modeling (Section 1.1): the instance is a graph G
// with one vertex per set, one per element, and an edge (S, i) whenever
// element i belongs to set S. The coverage function of a subfamily S is
// C(S) = |Γ(G, S)|, the number of distinct element-neighbors.
//
// The package stores instances in compressed sparse row (CSR) form in both
// directions, provides exact coverage evaluation, and (de)serializes edge
// lists. Throughout the repository, as in the paper, n denotes the number
// of sets and m the number of elements.
package bipartite

import (
	"fmt"
	"sort"
	"sync"
)

// Edge is one (set, element) membership pair — the unit of the
// edge-arrival streaming model.
type Edge struct {
	Set  uint32
	Elem uint32
}

// Graph is an immutable coverage instance. Sets are numbered 0..n-1 and
// elements 0..m-1. Duplicate edges are removed at construction, so each
// adjacency list contains distinct, sorted ids.
type Graph struct {
	numSets  int
	numElems int

	setOff []int64  // len numSets+1; setAdj[setOff[s]:setOff[s+1]] = elements of set s
	setAdj []uint32 // sorted within each set

	elemOff []int64  // len numElems+1; elemAdj[...] = sets containing the element
	elemAdj []uint32 // sorted within each element

	// coverOnce/coverIndex lazily cache the dense per-set bitmap index
	// behind the bitset coverage engine (cover.go); built at most once
	// per graph and shared by every BitsetCoverer.
	coverOnce  sync.Once
	coverIndex *setBitmaps
}

// FromEdges builds a Graph from an edge list. numSets and numElems fix the
// vertex ranges; they must be at least 1 + the largest id appearing in
// edges (isolated trailing sets/elements are allowed, matching instances
// where some sets are empty). Duplicate edges are coalesced. The input
// slice is not modified.
func FromEdges(numSets, numElems int, edges []Edge) (*Graph, error) {
	if numSets < 0 || numElems < 0 {
		return nil, fmt.Errorf("bipartite: negative dimensions n=%d m=%d", numSets, numElems)
	}
	for _, e := range edges {
		if int(e.Set) >= numSets {
			return nil, fmt.Errorf("bipartite: edge set id %d out of range [0,%d)", e.Set, numSets)
		}
		if int(e.Elem) >= numElems {
			return nil, fmt.Errorf("bipartite: edge element id %d out of range [0,%d)", e.Elem, numElems)
		}
	}
	g := &Graph{numSets: numSets, numElems: numElems}

	// Counting sort by set, then sort-dedupe each adjacency list.
	counts := make([]int64, numSets+1)
	for _, e := range edges {
		counts[e.Set+1]++
	}
	for i := 0; i < numSets; i++ {
		counts[i+1] += counts[i]
	}
	adj := make([]uint32, len(edges))
	next := make([]int64, numSets)
	copy(next, counts[:numSets])
	for _, e := range edges {
		adj[next[e.Set]] = e.Elem
		next[e.Set]++
	}
	// Sort and dedupe per set, compacting in place.
	off := make([]int64, numSets+1)
	w := int64(0)
	for s := 0; s < numSets; s++ {
		lo, hi := counts[s], counts[s+1]
		seg := adj[lo:hi]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		off[s] = w
		var prev uint32
		first := true
		for _, v := range seg {
			if first || v != prev {
				adj[w] = v
				w++
				prev = v
				first = false
			}
		}
	}
	off[numSets] = w
	g.setOff = off
	g.setAdj = adj[:w:w]
	g.buildElemIndex()
	return g, nil
}

// MustFromEdges is FromEdges that panics on error; for tests and
// generators whose inputs are valid by construction.
func MustFromEdges(numSets, numElems int, edges []Edge) *Graph {
	g, err := FromEdges(numSets, numElems, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// FromSets builds a Graph from explicit element lists, one per set.
func FromSets(numElems int, sets [][]uint32) (*Graph, error) {
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	edges := make([]Edge, 0, total)
	for si, s := range sets {
		for _, e := range s {
			edges = append(edges, Edge{Set: uint32(si), Elem: e})
		}
	}
	return FromEdges(len(sets), numElems, edges)
}

// buildElemIndex constructs the element→sets CSR from the set→elements one.
func (g *Graph) buildElemIndex() {
	counts := make([]int64, g.numElems+1)
	for _, e := range g.setAdj {
		counts[e+1]++
	}
	for i := 0; i < g.numElems; i++ {
		counts[i+1] += counts[i]
	}
	adj := make([]uint32, len(g.setAdj))
	next := make([]int64, g.numElems)
	copy(next, counts[:g.numElems])
	for s := 0; s < g.numSets; s++ {
		for _, e := range g.Set(s) {
			adj[next[e]] = uint32(s)
			next[e]++
		}
	}
	g.elemOff = counts
	g.elemAdj = adj
}

// NumSets returns n, the number of sets.
func (g *Graph) NumSets() int { return g.numSets }

// NumElems returns m, the number of elements in the ground set.
func (g *Graph) NumElems() int { return g.numElems }

// NumEdges returns the number of distinct (set, element) memberships.
func (g *Graph) NumEdges() int { return len(g.setAdj) }

// Set returns the sorted element ids of set s. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Set(s int) []uint32 {
	return g.setAdj[g.setOff[s]:g.setOff[s+1]]
}

// SetLen returns |set s|.
func (g *Graph) SetLen(s int) int {
	return int(g.setOff[s+1] - g.setOff[s])
}

// Elem returns the sorted ids of the sets containing element e. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) Elem(e int) []uint32 {
	return g.elemAdj[g.elemOff[e]:g.elemOff[e+1]]
}

// ElemDegree returns the number of sets containing element e.
func (g *Graph) ElemDegree(e int) int {
	return int(g.elemOff[e+1] - g.elemOff[e])
}

// Edges appends every edge of the graph to dst and returns it. Edges are
// emitted grouped by set in increasing order; use stream.Shuffled for
// arbitrary-order arrival.
func (g *Graph) Edges(dst []Edge) []Edge {
	if dst == nil {
		dst = make([]Edge, 0, g.NumEdges())
	}
	for s := 0; s < g.numSets; s++ {
		for _, e := range g.Set(s) {
			dst = append(dst, Edge{Set: uint32(s), Elem: e})
		}
	}
	return dst
}

// Contains reports whether element e belongs to set s.
func (g *Graph) Contains(s int, e uint32) bool {
	adj := g.Set(s)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= e })
	return i < len(adj) && adj[i] == e
}

// Coverage returns C(S) = |∪_{s∈sets} set s|, the paper's coverage
// function. It allocates a scratch marker; use a Coverer for repeated
// evaluation.
func (g *Graph) Coverage(sets []int) int {
	c := NewCoverer(g)
	return c.Add(sets...)
}

// MaxSetLen returns the largest set size (0 for an empty family).
func (g *Graph) MaxSetLen() int {
	best := 0
	for s := 0; s < g.numSets; s++ {
		if l := g.SetLen(s); l > best {
			best = l
		}
	}
	return best
}

// MaxElemDegree returns the largest element degree.
func (g *Graph) MaxElemDegree() int {
	best := 0
	for e := 0; e < g.numElems; e++ {
		if d := g.ElemDegree(e); d > best {
			best = d
		}
	}
	return best
}

// CoveredElems returns the number of non-isolated elements (elements with
// at least one incident edge). The paper assumes no isolated elements; the
// generators here guarantee it, but the library tolerates them and set
// cover is defined over covered elements only.
func (g *Graph) CoveredElems() int {
	c := 0
	for e := 0; e < g.numElems; e++ {
		if g.ElemDegree(e) > 0 {
			c++
		}
	}
	return c
}

// Induce returns the subgraph keeping only elements for which keep returns
// true. Set ids are preserved; element ids are preserved too (the ground
// set size stays m) so coverage values remain directly comparable.
func (g *Graph) Induce(keep func(elem uint32) bool) *Graph {
	edges := make([]Edge, 0, g.NumEdges())
	for s := 0; s < g.numSets; s++ {
		for _, e := range g.Set(s) {
			if keep(e) {
				edges = append(edges, Edge{Set: uint32(s), Elem: e})
			}
		}
	}
	ng, err := FromEdges(g.numSets, g.numElems, edges)
	if err != nil {
		panic("bipartite: Induce produced invalid edges: " + err.Error())
	}
	return ng
}

// Coverer evaluates coverage incrementally: Add marks the elements of the
// given sets and returns the running total of distinct covered elements.
// It uses an epoch-stamped marker array, so Reset is O(1).
type Coverer struct {
	g       *Graph
	stamp   []uint32
	epoch   uint32
	covered int
}

// NewCoverer returns a Coverer for g.
func NewCoverer(g *Graph) *Coverer {
	return &Coverer{g: g, stamp: make([]uint32, g.numElems), epoch: 1}
}

// Reset clears the covered-set in O(1).
func (c *Coverer) Reset() {
	c.epoch++
	c.covered = 0
	if c.epoch == 0 { // wrapped: clear and restart
		for i := range c.stamp {
			c.stamp[i] = 0
		}
		c.epoch = 1
	}
}

// Add marks every element of the given sets and returns the total number
// of distinct elements covered so far.
func (c *Coverer) Add(sets ...int) int {
	for _, s := range sets {
		for _, e := range c.g.Set(s) {
			if c.stamp[e] != c.epoch {
				c.stamp[e] = c.epoch
				c.covered++
			}
		}
	}
	return c.covered
}

// Marginal returns |set s \ covered| without changing the state.
func (c *Coverer) Marginal(s int) int {
	gain := 0
	for _, e := range c.g.Set(s) {
		if c.stamp[e] != c.epoch {
			gain++
		}
	}
	return gain
}

// Covered returns the number of distinct elements covered so far.
func (c *Coverer) Covered() int { return c.covered }

// IsCovered reports whether element e has been covered.
func (c *Coverer) IsCovered(e uint32) bool { return c.stamp[e] == c.epoch }
