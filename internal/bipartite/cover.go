package bipartite

// This file is the query-plane coverage engine: incremental coverage
// evaluation behind the CoverageEvaluator interface, with two
// implementations — the epoch-stamped Coverer (bipartite.go), whose
// Marginal scans a set's adjacency list, and the BitsetCoverer, which
// answers marginals with word-level popcounts over dense per-set
// element bitmaps. Both produce exactly the same integer marginals, so
// greedy runs are bit-identical whichever engine backs them (pinned by
// the equivalence property tests in internal/greedy).

import "repro/internal/bitset"

// CoverageEvaluator evaluates coverage incrementally for the greedy
// algorithms: Add commits sets to the solution, Marginal prices a
// candidate without changing state. Implementations are deterministic —
// marginals are exact counts — so a greedy run produces the same picks
// regardless of which evaluator backs it.
type CoverageEvaluator interface {
	// Add marks every element of the given sets and returns the total
	// number of distinct elements covered so far.
	Add(sets ...int) int
	// Marginal returns |set s \ covered| without changing the state.
	Marginal(s int) int
	// Covered returns the number of distinct elements covered so far.
	Covered() int
	// Reset clears the covered-set.
	Reset()
	// IsCovered reports whether element e has been covered.
	IsCovered(e uint32) bool
}

var (
	_ CoverageEvaluator = (*Coverer)(nil)
	_ CoverageEvaluator = (*BitsetCoverer)(nil)
)

// setBitmaps is the dense bitmap index: one ceil(m/64)-word row per
// set, flat in one allocation. Row s has bit e set iff element e
// belongs to set s. Immutable once built.
type setBitmaps struct {
	words int
	rows  []uint64 // len numSets*words; row s = rows[s*words:(s+1)*words]
}

func (ix *setBitmaps) row(s int) bitset.Bitset {
	return bitset.Bitset(ix.rows[s*ix.words : (s+1)*ix.words])
}

// bitmaps builds (once) and returns the per-set bitmap index.
func (g *Graph) bitmaps() *setBitmaps {
	g.coverOnce.Do(func() {
		words := (g.numElems + 63) / 64
		ix := &setBitmaps{words: words, rows: make([]uint64, g.numSets*words)}
		for s := 0; s < g.numSets; s++ {
			row := ix.rows[s*words : (s+1)*words]
			for _, e := range g.Set(s) {
				row[e>>6] |= 1 << uint(e&63)
			}
		}
		g.coverIndex = ix
	})
	return g.coverIndex
}

// maxCoverIndexWords caps the bitmap index at 64 MiB so NewEvaluator
// never silently balloons memory on huge sparse instances.
const maxCoverIndexWords = 8 << 20

// bitsetProfitable reports whether the bitset engine should back
// evaluators for g. A bitset marginal scans ceil(m/64) words regardless
// of the set's size while a stamp marginal scans |set| adjacency
// entries, so the bitmaps only pay off when the average set is at least
// as large as the word count (≥ 1 covered bit per word scanned) — the
// dense-degree regime of sketch snapshots. The index memory is capped
// as well.
func (g *Graph) bitsetProfitable() bool {
	if g.numSets == 0 || g.numElems == 0 || g.NumEdges() == 0 {
		return false
	}
	words := int64((g.numElems + 63) / 64)
	if int64(g.numSets)*words > maxCoverIndexWords {
		return false
	}
	return int64(g.NumEdges()) >= int64(g.numSets)*words
}

// NewEvaluator returns the coverage evaluator best suited to g: the
// bitset engine when the dense per-set bitmaps are affordable and
// profitable (see bitsetProfitable), else the stamp engine. Both yield
// identical greedy results.
func (g *Graph) NewEvaluator() CoverageEvaluator {
	if g.bitsetProfitable() {
		return NewBitsetCoverer(g)
	}
	return NewCoverer(g)
}

// BuildCoverIndex eagerly materializes the bitmap index NewEvaluator's
// bitset engine rides (a no-op when the heuristic selects the stamp
// engine). Snapshot publishers call it once at graph materialization so
// the first query after a refresh does not pay the index build.
func (g *Graph) BuildCoverIndex() {
	if g.bitsetProfitable() {
		g.bitmaps()
	}
}

// BitsetCoverer is the bitset-backed CoverageEvaluator: covered
// elements live in one dense bitmap, per-set bitmaps come from the
// graph's shared index, and marginals are word-level AND-NOT popcounts
// (bitset.AndNotCount / UnionCount).
type BitsetCoverer struct {
	g       *Graph
	ix      *setBitmaps
	covered bitset.Bitset
	count   int
}

// NewBitsetCoverer returns a bitset-backed evaluator for g, building
// the graph's bitmap index on first use.
func NewBitsetCoverer(g *Graph) *BitsetCoverer {
	return &BitsetCoverer{g: g, ix: g.bitmaps(), covered: bitset.New(g.numElems)}
}

// Add marks every element of the given sets and returns the total
// number of distinct elements covered so far.
func (c *BitsetCoverer) Add(sets ...int) int {
	for _, s := range sets {
		c.count += c.covered.UnionCount(c.ix.row(s))
	}
	return c.count
}

// Marginal returns |set s \ covered| without changing the state.
func (c *BitsetCoverer) Marginal(s int) int {
	return c.covered.AndNotCount(c.ix.row(s))
}

// Covered returns the number of distinct elements covered so far.
func (c *BitsetCoverer) Covered() int { return c.count }

// Reset clears the covered-set.
func (c *BitsetCoverer) Reset() {
	c.covered.Reset()
	c.count = 0
}

// IsCovered reports whether element e has been covered.
func (c *BitsetCoverer) IsCovered(e uint32) bool { return c.covered.Get(int(e)) }
