package bipartite

import (
	"bytes"
	"strings"
	"testing"
)

func graphsEqual(a, b *Graph) bool {
	if a.NumSets() != b.NumSets() || a.NumElems() != b.NumElems() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for s := 0; s < a.NumSets(); s++ {
		x, y := a.Set(s), b.Set(s)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	g := randomGraph(1, 7, 40, 0.2)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("text round trip changed graph")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraph(2, 9, 60, 0.15)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("binary round trip changed graph")
	}
}

func TestReadTextCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
c 2 3

0 0
# another
0 2
1 1
`
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSets() != 2 || g.NumElems() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed dims n=%d m=%d e=%d", g.NumSets(), g.NumElems(), g.NumEdges())
	}
}

func TestReadTextInfersDims(t *testing.T) {
	g, err := ReadText(strings.NewReader("0 0\n3 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSets() != 4 || g.NumElems() != 8 {
		t.Fatalf("inferred dims n=%d m=%d", g.NumSets(), g.NumElems())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"c 2\n",        // short header
		"c x 3\n",      // bad n
		"c 2 y\n",      // bad m
		"0\n",          // short edge
		"a 0\n",        // bad set id
		"0 b\n",        // bad element id
		"c 1 1\n5 0\n", // out of range set
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTBC000")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	g := randomGraph(3, 4, 20, 0.2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("truncated binary accepted")
	}
}

func TestEmptyGraphRoundTrip(t *testing.T) {
	g := MustFromEdges(3, 4, nil)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("empty graph round trip failed")
	}
}
