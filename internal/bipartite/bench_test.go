package bipartite

import (
	"testing"
)

func benchGraph(b *testing.B, n, m int, density float64) *Graph {
	b.Helper()
	g := randomGraph(1, n, m, density)
	b.ReportAllocs()
	b.ResetTimer()
	return g
}

// BenchmarkFromEdges measures CSR construction (counting sort + dedupe).
func BenchmarkFromEdges(b *testing.B) {
	g := randomGraph(1, 500, 20000, 0.01)
	edges := g.Edges(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(500, 20000, edges); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoverage measures one coverage evaluation of a 50-set family.
func BenchmarkCoverage(b *testing.B) {
	g := benchGraph(b, 500, 20000, 0.01)
	sets := make([]int, 50)
	for i := range sets {
		sets[i] = i * 10
	}
	for i := 0; i < b.N; i++ {
		if g.Coverage(sets) == 0 {
			b.Fatal("empty coverage")
		}
	}
}

// BenchmarkCovererMarginal measures the marginal-gain primitive that
// dominates greedy runtimes.
func BenchmarkCovererMarginal(b *testing.B) {
	g := randomGraph(2, 500, 20000, 0.01)
	c := NewCoverer(g)
	c.Add(0, 1, 2, 3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Marginal(i % 500)
	}
}
