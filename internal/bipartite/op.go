package bipartite

// OpKind distinguishes the two mutations an operation stream can carry.
type OpKind uint8

const (
	// OpInsert adds one (set, elem) incidence to the stream's multiset.
	OpInsert OpKind = 0
	// OpDelete retracts one previously inserted incidence. A stream is
	// valid when every prefix has at least as many inserts as deletes
	// for each distinct edge (the turnstile "strict" condition).
	OpDelete OpKind = 1
)

// String returns the wire/JSON spelling of the kind.
func (k OpKind) String() string {
	if k == OpDelete {
		return "delete"
	}
	return "insert"
}

// Op is one element of an operation stream: an edge plus whether it is
// being inserted or deleted. Insert-only streams are exactly the edge
// streams the append-only sketches consume.
type Op struct {
	Kind OpKind
	Edge Edge
}

// Inserts wraps a batch of edges as insert ops.
func Inserts(edges []Edge) []Op {
	ops := make([]Op, len(edges))
	for i, e := range edges {
		ops[i] = Op{Kind: OpInsert, Edge: e}
	}
	return ops
}

// Deletes wraps a batch of edges as delete ops.
func Deletes(edges []Edge) []Op {
	ops := make([]Op, len(edges))
	for i, e := range edges {
		ops[i] = Op{Kind: OpDelete, Edge: e}
	}
	return ops
}

// HasDeletes reports whether any op in the batch is a delete.
func HasDeletes(ops []Op) bool {
	for i := range ops {
		if ops[i].Kind == OpDelete {
			return true
		}
	}
	return false
}

// InsertEdges extracts the edges of an insert-only batch into dst
// (reusing its capacity). It must only be called when HasDeletes is
// false; delete ops are skipped defensively.
func InsertEdges(dst []Edge, ops []Op) []Edge {
	dst = dst[:0]
	for i := range ops {
		if ops[i].Kind == OpInsert {
			dst = append(dst, ops[i].Edge)
		}
	}
	return dst
}
