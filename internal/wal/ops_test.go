package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/bipartite"
)

func opBatch(start, n, deleteEvery int) []bipartite.Op {
	ops := make([]bipartite.Op, n)
	for i := range ops {
		kind := bipartite.OpInsert
		if deleteEvery > 0 && i%deleteEvery == 0 {
			kind = bipartite.OpDelete
		}
		ops[i] = bipartite.Op{Kind: kind, Edge: bipartite.Edge{Set: uint32(start + i), Elem: uint32(3*start + i)}}
	}
	return ops
}

func readSegments(t *testing.T, dir string) []byte {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, name := range names {
		b, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	return all
}

// TestAppendOpsInsertOnlyByteIdentical: an insert-only batch through
// AppendOps produces exactly the bytes Append produces — the property
// that keeps pre-op-plane logs and insert-only logs interchangeable
// (and pre-extension readers working against new writers).
func TestAppendOpsInsertOnlyByteIdentical(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	la, err := Open(Options{Dir: dirA, Policy: SyncOff}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := OpenOps(Options{Dir: dirB, Policy: SyncOff}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		edges := edgeBatch(i*7, 4+i)
		if _, err := la.Append(edges); err != nil {
			t.Fatal(err)
		}
		if _, err := lb.AppendOps(bipartite.Inserts(edges)); err != nil {
			t.Fatal(err)
		}
	}
	la.Close()
	lb.Close()
	if !bytes.Equal(readSegments(t, dirA), readSegments(t, dirB)) {
		t.Fatal("insert-only AppendOps segment differs from Append's")
	}
}

// TestAppendOpsReplayRoundTrip: op frames with interleaved deletes
// replay exactly, with op-counted offsets.
func TestAppendOpsReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncOff}
	l, err := OpenOps(opts, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]bipartite.Op
	next := int64(0)
	for i := 0; i < 6; i++ {
		b := opBatch(i*10, 3+i, 2+i%2)
		off, err := l.AppendOps(b)
		if err != nil {
			t.Fatal(err)
		}
		if off != next {
			t.Fatalf("AppendOps offset = %d, want %d", off, next)
		}
		next += int64(len(b))
		want = append(want, b)
	}
	l.Close()

	var offs []int64
	var frames [][]bipartite.Op
	l2, err := OpenOps(opts, 0, func(off int64, ops []bipartite.Op) error {
		offs = append(offs, off)
		frames = append(frames, append([]bipartite.Op(nil), ops...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(frames, want) {
		t.Fatalf("replayed op frames differ:\n got %v\nwant %v", frames, want)
	}
	run := int64(0)
	for i, off := range offs {
		if off != run {
			t.Fatalf("frame %d offset = %d, want %d", i, off, run)
		}
		run += int64(len(frames[i]))
	}
	if got := l2.NextOffset(); got != next {
		t.Fatalf("recovered NextOffset = %d, want %d", got, next)
	}
}

// TestOpenRejectsDeleteLog: the edge-replay Open is the insert-only
// legacy surface; pointing it at a log holding delete ops must fail
// with the typed ErrInsertOnly, never silently replay deletes as
// inserts.
func TestOpenRejectsDeleteLog(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncOff}
	l, err := OpenOps(opts, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendOps(bipartite.Inserts(edgeBatch(0, 4))); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendOps(opBatch(10, 4, 2)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	if _, err := Open(opts, 0, func(int64, []bipartite.Edge) error { return nil }); !errors.Is(err, ErrInsertOnly) {
		t.Fatalf("Open on a delete-bearing log: err = %v, want ErrInsertOnly", err)
	}
}

// TestOpFrameMixedWithEdgeFrames: edge frames and op frames interleave
// freely in one log; OpenOps replays both (edge frames surface as
// insert ops).
func TestOpFrameMixedWithEdgeFrames(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncOff}
	l, err := OpenOps(opts, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	edges := edgeBatch(0, 3)
	if _, err := l.Append(edges); err != nil {
		t.Fatal(err)
	}
	dels := opBatch(5, 2, 1) // all deletes
	if _, err := l.AppendOps(dels); err != nil {
		t.Fatal(err)
	}
	l.Close()

	var frames [][]bipartite.Op
	l2, err := OpenOps(opts, 0, func(off int64, ops []bipartite.Op) error {
		frames = append(frames, append([]bipartite.Op(nil), ops...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	want := [][]bipartite.Op{bipartite.Inserts(edges), dels}
	if !reflect.DeepEqual(frames, want) {
		t.Fatalf("replayed frames differ:\n got %v\nwant %v", frames, want)
	}
}

// TestOpFrameFlagBeyondLegacyBound: the op-frame flag bit must lie
// outside the legacy reader's accepted length range, so a pre-extension
// binary hitting the first op frame stops at a clean torn tail instead
// of misreading deletes as inserts.
func TestOpFrameFlagBeyondLegacyBound(t *testing.T) {
	if opFrameFlag <= maxFrameBody {
		t.Fatalf("opFrameFlag %#x within legacy frame bound %#x: old readers would decode op frames", opFrameFlag, maxFrameBody)
	}
	if opDeleteBit <= uint32(0x7fffffff)>>1 {
		t.Fatalf("opDeleteBit %#x must be the set word's top bit", opDeleteBit)
	}
}
