package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bipartite"
)

func edgeBatch(start, n int) []bipartite.Edge {
	b := make([]bipartite.Edge, n)
	for i := range b {
		b[i] = bipartite.Edge{Set: uint32(start + i), Elem: uint32(2*start + 3*i)}
	}
	return b
}

// replayAll opens the log at seed and collects every replayed frame.
func replayAll(t *testing.T, opts Options, seed int64) (*Log, []int64, [][]bipartite.Edge) {
	t.Helper()
	var offs []int64
	var frames [][]bipartite.Edge
	l, err := Open(opts, seed, func(off int64, edges []bipartite.Edge) error {
		offs = append(offs, off)
		frames = append(frames, append([]bipartite.Edge(nil), edges...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, offs, frames
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncOff}
	l, err := Open(opts, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var want [][]bipartite.Edge
	next := int64(0)
	for i := 0; i < 7; i++ {
		b := edgeBatch(i*10, 3+i)
		off, err := l.Append(b)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if off != next {
			t.Fatalf("Append offset = %d, want %d", off, next)
		}
		next += int64(len(b))
		want = append(want, b)
	}
	if got := l.NextOffset(); got != next {
		t.Fatalf("NextOffset = %d, want %d", got, next)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, offs, frames := replayAll(t, opts, 0)
	defer l2.Close()
	if !reflect.DeepEqual(frames, want) {
		t.Fatalf("replayed frames differ:\n got %v\nwant %v", frames, want)
	}
	run := int64(0)
	for i, off := range offs {
		if off != run {
			t.Fatalf("frame %d offset = %d, want %d", i, off, run)
		}
		run += int64(len(frames[i]))
	}
	if got := l2.NextOffset(); got != next {
		t.Fatalf("recovered NextOffset = %d, want %d", got, next)
	}
}

func TestReplaySkipsSeededFrames(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncOff}
	l, err := Open(opts, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(edgeBatch(i, 5)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	// Seed on a frame boundary: replay starts at the next frame.
	l2, offs, _ := replayAll(t, opts, 10)
	l2.Close()
	if !reflect.DeepEqual(offs, []int64{10, 15}) {
		t.Fatalf("replayed offsets = %v, want [10 15]", offs)
	}

	// Seed past the log: nothing to replay, next stays at seed... but a
	// seed beyond the end with surviving earlier frames is fine (they
	// are all covered).
	l3, offs3, _ := replayAll(t, opts, 20)
	l3.Close()
	if len(offs3) != 0 {
		t.Fatalf("replayed offsets = %v, want none", offs3)
	}

	// Seed mid-frame: checkpoint cuts are batch-aligned, so this means
	// corruption and must error.
	if _, err := Open(opts, 12, nil); err == nil {
		t.Fatalf("Open with straddling seed succeeded, want error")
	}
}

func TestTornTailStopsCleanly(t *testing.T) {
	for _, cut := range []int{1, 4, frameHeader, frameHeader + 3, frameHeader + 8} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Dir: dir, Policy: SyncOff}
			l, err := Open(opts, 0, nil)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if _, err := l.Append(edgeBatch(0, 4)); err != nil {
				t.Fatalf("Append: %v", err)
			}
			if _, err := l.Append(edgeBatch(4, 2)); err != nil {
				t.Fatalf("Append: %v", err)
			}
			l.Close()

			// Tear the second frame: keep the first frame plus cut bytes
			// of the second.
			segs, err := listSegments(dir)
			if err != nil || len(segs) != 1 {
				t.Fatalf("listSegments = %v, %v", segs, err)
			}
			keep := int64(len(segMagic)) + int64(frameHeader+8+8*4) + int64(cut)
			if err := os.Truncate(segs[0].path, keep); err != nil {
				t.Fatalf("Truncate: %v", err)
			}

			l2, offs, frames := replayAll(t, opts, 0)
			defer l2.Close()
			if !reflect.DeepEqual(offs, []int64{0}) || len(frames) != 1 || len(frames[0]) != 4 {
				t.Fatalf("after torn tail: offsets %v, frames %v", offs, frames)
			}
			if got := l2.NextOffset(); got != 4 {
				t.Fatalf("NextOffset = %d, want 4", got)
			}
		})
	}
}

func TestBitFlipStopsSegment(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncOff}
	l, err := Open(opts, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.Append(edgeBatch(0, 4))
	l.Append(edgeBatch(4, 4))
	l.Close()

	segs, _ := listSegments(dir)
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	// Flip a payload bit in the second frame.
	data[len(segMagic)+(frameHeader+8+8*4)+frameHeader+10] ^= 0x40
	if err := os.WriteFile(segs[0].path, data, 0o666); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	l2, offs, _ := replayAll(t, opts, 0)
	l2.Close()
	if !reflect.DeepEqual(offs, []int64{0}) {
		t.Fatalf("replayed offsets = %v, want [0] (stop at bad CRC)", offs)
	}
}

func TestBadMagicIsError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, fmt.Sprintf("%020d%s", 1, segExt))
	if err := os.WriteFile(path, []byte("NOTAWAL!\x00\x00\x00\x00"), 0o666); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := Open(Options{Dir: dir, Policy: SyncOff}, 0, nil); err == nil {
		t.Fatalf("Open over bad magic succeeded, want error")
	}
}

func TestMissingSegmentIsGapError(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncOff, SegmentBytes: 1} // rotate every append
	l, err := Open(opts, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(edgeBatch(i, 2)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	// Delete a middle segment holding acknowledged frames.
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := Open(opts, 0, nil); err == nil {
		t.Fatalf("Open over missing middle segment succeeded, want gap error")
	}
}

func TestRotationAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncOff, SegmentBytes: 200}
	l, err := Open(opts, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	total := int64(0)
	for i := 0; i < 20; i++ {
		b := edgeBatch(i, 6)
		if _, err := l.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
		total += int64(len(b))
	}
	st := l.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("expected rotations, got %+v", st)
	}

	// Checkpoint covering half the stream: all fully covered sealed
	// segments go away, the rest stays replayable.
	if err := l.TruncateBefore(total / 2); err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	segs, _ := listSegments(dir)
	if len(segs) >= st.Segments+1 { // rotate-on-truncate adds ≤1
		t.Fatalf("truncation removed nothing: %d segments", len(segs))
	}
	l.Close()

	l2, offs, _ := replayAll(t, opts, total/2)
	defer l2.Close()
	if got := l2.NextOffset(); got != total {
		t.Fatalf("recovered NextOffset = %d, want %d", got, total)
	}
	if len(offs) == 0 {
		t.Fatalf("no frames replayed after truncation")
	}

	// A checkpoint covering everything empties the log.
	if err := l2.TruncateBefore(total); err != nil {
		t.Fatalf("TruncateBefore(all): %v", err)
	}
	l2.Close()
	l3, offs3, _ := replayAll(t, opts, total)
	defer l3.Close()
	if len(offs3) != 0 {
		t.Fatalf("replayed %d frames after full truncation, want 0", len(offs3))
	}
}

// TestTruncationMarkerRefusesUnseededRecovery pins the truncation
// marker: once a checkpoint has truncated away the whole log, a
// recovery that forgot the covering snapshot (seed 0) must fail loudly
// instead of silently coming up empty — an empty truncated log and a
// genuinely empty log are otherwise indistinguishable.
func TestTruncationMarkerRefusesUnseededRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncOff}
	l, err := Open(opts, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	total := int64(0)
	for i := 0; i < 10; i++ {
		b := edgeBatch(i, 4)
		if _, err := l.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
		total += int64(len(b))
	}

	// A partial checkpoint: the single sealed segment straddles the cut,
	// so every frame survives, and the marker alone must not refuse a
	// seed-0 recovery that still accounts for the whole stream.
	if err := l.TruncateBefore(total / 2); err != nil {
		t.Fatalf("TruncateBefore(half): %v", err)
	}
	l.Close()
	l2, offs, _ := replayAll(t, opts, 0)
	if got := l2.NextOffset(); got != total || len(offs) == 0 {
		t.Fatalf("recovered NextOffset = %d (frames %d), want %d", got, len(offs), total)
	}

	// A checkpoint covering everything deletes every frame; seed 0 can
	// no longer be accounted for and recovery must refuse.
	if err := l2.TruncateBefore(total); err != nil {
		t.Fatalf("TruncateBefore(all): %v", err)
	}
	l2.Close()
	if _, err := Open(opts, 0, nil); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("Open(seed 0) after full truncation = %v, want truncation error", err)
	}

	// Restoring the covering snapshot (seed == checkpoint offset)
	// recovers, and the log keeps appending from there.
	l3, err := Open(opts, total, nil)
	if err != nil {
		t.Fatalf("Open(seed %d): %v", total, err)
	}
	defer l3.Close()
	if got := l3.NextOffset(); got != total {
		t.Fatalf("NextOffset after seeded recovery = %d, want %d", got, total)
	}

	// A corrupt marker is a loud error, not a silent zero.
	if err := os.WriteFile(filepath.Join(dir, truncName), []byte("junk"), 0o666); err != nil {
		t.Fatal(err)
	}
	l3.Close()
	if _, err := Open(opts, total, nil); err == nil || !strings.Contains(err.Error(), "marker") {
		t.Fatalf("Open with corrupt marker = %v, want marker error", err)
	}
}

func TestConcurrentAppendSyncAlways(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncAlways}
	l, err := Open(opts, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := l.Append(edgeBatch(w*100+i, 2)); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	want := int64(workers * perWorker * 2)
	if st.NextOffset != want {
		t.Fatalf("NextOffset = %d, want %d", st.NextOffset, want)
	}
	if st.SyncedOffset != want {
		t.Fatalf("SyncedOffset = %d, want %d (SyncAlways must be durable on return)", st.SyncedOffset, want)
	}
	if st.Syncs > st.Appends {
		t.Fatalf("more syncs (%d) than appends (%d)", st.Syncs, st.Appends)
	}
	l.Close()

	// Every acknowledged frame must replay, and offsets must be
	// contiguous (Open checks that itself).
	l2, offs, _ := replayAll(t, opts, 0)
	defer l2.Close()
	if len(offs) != workers*perWorker {
		t.Fatalf("replayed %d frames, want %d", len(offs), workers*perWorker)
	}
}

func TestSyncEveryFlushesOnTimer(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: SyncEvery, Interval: 5 * time.Millisecond}
	l, err := Open(opts, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append(edgeBatch(0, 3)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().SyncedOffset < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("interval sync never caught up: %+v", l.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncOff}, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(edgeBatch(0, 1)); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
	if err := l.TruncateBefore(0); err != ErrClosed {
		t.Fatalf("TruncateBefore after Close = %v, want ErrClosed", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, good := range []string{"", "always", "interval", "off"} {
		if _, err := ParsePolicy(good); err != nil {
			t.Errorf("ParsePolicy(%q): %v", good, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Errorf("ParsePolicy accepted junk")
	}
}
