// Package faultfs injects storage faults into the WAL write path for
// crash-recovery testing. An Injector hands out wal.WriteFile
// implementations that count every byte written across all files it
// opened and, once a configured byte limit is crossed, tear the write
// in progress: the chunk that crosses the limit is written only up to
// the limit (a torn frame on disk, exactly what a power loss leaves)
// and the write returns ErrCrashed; every later write and fsync fails
// the same way. Sweeping the limit across a workload's full byte range
// simulates a crash at every possible frame boundary and mid-frame
// position.
package faultfs

import (
	"errors"
	"os"
	"sync"

	"repro/internal/wal"
)

// ErrCrashed is returned by writes and syncs after the injector's byte
// limit is crossed — the process is considered dead from that point.
var ErrCrashed = errors.New("faultfs: injected crash")

// Injector opens fault-injecting files. The zero value is unusable; use
// NewInjector.
type Injector struct {
	mu      sync.Mutex
	limit   int64 // total bytes allowed across all opened files; <0 = unlimited
	written int64
	crashed bool
}

// NewInjector returns an injector that lets limit bytes through across
// every file it opens, tears the write that crosses the limit, and
// fails everything afterwards. A negative limit never crashes (useful
// to measure a workload's total byte volume via Written).
func NewInjector(limit int64) *Injector {
	return &Injector{limit: limit}
}

// Written reports the total bytes successfully written so far.
func (in *Injector) Written() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.written
}

// Crashed reports whether the byte limit has been crossed.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// OpenWrite opens path for appending with fault injection; it has the
// signature of wal.Options.OpenWrite.
func (in *Injector) OpenWrite(path string) (wal.WriteFile, error) {
	in.mu.Lock()
	crashed := in.crashed
	in.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f}, nil
}

type faultFile struct {
	in *Injector
	f  *os.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	in := ff.in
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return 0, ErrCrashed
	}
	allow := len(p)
	if in.limit >= 0 && in.written+int64(allow) > in.limit {
		allow = int(in.limit - in.written)
		in.crashed = true
	}
	in.written += int64(allow)
	in.mu.Unlock()

	n, err := ff.f.Write(p[:allow])
	if err != nil {
		return n, err
	}
	if allow < len(p) {
		// The torn portion must be what a real crash leaves behind:
		// flushed to the file, then nothing more.
		ff.f.Sync()
		return n, ErrCrashed
	}
	return n, nil
}

func (ff *faultFile) Sync() error {
	if ff.in.Crashed() {
		return ErrCrashed
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	return ff.f.Close()
}
