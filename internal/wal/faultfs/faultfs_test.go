package faultfs

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/wal"
)

// TestCrashSweep drives a fixed workload into a WAL while sweeping the
// injected crash point across every byte offset, then checks that
// recovery always yields a clean prefix of the acknowledged batches —
// never a gap, never a partial frame.
func TestCrashSweep(t *testing.T) {
	batches := [][]bipartite.Edge{}
	for i := 0; i < 6; i++ {
		b := make([]bipartite.Edge, 3+i%3)
		for j := range b {
			b[j] = bipartite.Edge{Set: uint32(i), Elem: uint32(10*i + j)}
		}
		batches = append(batches, b)
	}

	// Pass 1: no fault, measure total bytes.
	probe := NewInjector(-1)
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncAlways, OpenWrite: probe.OpenWrite}, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, b := range batches {
		if _, err := l.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()
	totalBytes := probe.Written()
	if totalBytes == 0 {
		t.Fatalf("probe run wrote nothing")
	}

	step := int64(1)
	if testing.Short() {
		step = 7
	}
	for limit := int64(0); limit <= totalBytes; limit += step {
		dir := t.TempDir()
		inj := NewInjector(limit)
		l, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncAlways, OpenWrite: inj.OpenWrite}, 0, nil)
		if err != nil {
			continue // crashed before the segment header landed; empty dir recovers to empty
		}
		acked := 0
		for _, b := range batches {
			if _, err := l.Append(b); err != nil {
				break
			}
			acked++
		}
		l.Close()

		// Recover with plain os I/O — the crash is over.
		var got [][]bipartite.Edge
		rec, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncOff}, 0, func(off int64, edges []bipartite.Edge) error {
			got = append(got, append([]bipartite.Edge(nil), edges...))
			return nil
		})
		if err != nil {
			t.Fatalf("limit %d: recovery Open: %v", limit, err)
		}
		rec.Close()
		if len(got) < acked {
			t.Fatalf("limit %d: recovered %d frames, but %d were acknowledged durable", limit, len(got), acked)
		}
		for i := 0; i < len(got); i++ {
			if i >= len(batches) {
				t.Fatalf("limit %d: recovered more frames than written", limit)
			}
			if len(got[i]) != len(batches[i]) {
				t.Fatalf("limit %d: frame %d has %d edges, want %d", limit, i, len(got[i]), len(batches[i]))
			}
			for j := range got[i] {
				if got[i][j] != batches[i][j] {
					t.Fatalf("limit %d: frame %d edge %d = %v, want %v", limit, i, j, got[i][j], batches[i][j])
				}
			}
		}
	}
}

func TestInjectorFailsAfterCrash(t *testing.T) {
	inj := NewInjector(4)
	f, err := inj.OpenWrite(t.TempDir() + "/x")
	if err != nil {
		t.Fatalf("OpenWrite: %v", err)
	}
	if n, err := f.Write([]byte("abcdefgh")); err != ErrCrashed || n != 4 {
		t.Fatalf("torn write = (%d, %v), want (4, ErrCrashed)", n, err)
	}
	if !inj.Crashed() {
		t.Fatalf("injector not marked crashed")
	}
	if _, err := f.Write([]byte("x")); err != ErrCrashed {
		t.Fatalf("post-crash write = %v, want ErrCrashed", err)
	}
	if err := f.Sync(); err != ErrCrashed {
		t.Fatalf("post-crash sync = %v, want ErrCrashed", err)
	}
	if _, err := inj.OpenWrite(t.TempDir() + "/y"); err != ErrCrashed {
		t.Fatalf("post-crash open = %v, want ErrCrashed", err)
	}
}
