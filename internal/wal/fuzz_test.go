package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bipartite"
)

// FuzzWALRecord feeds arbitrary bytes to the frame-body decoder under
// both frame interpretations: no input may panic, over-allocate past
// the body-derived record count, or fail with anything but an error
// wrapping ErrCorruptRecord. Successful decodes must re-encode to the
// exact input bytes (the encoder and decoder are inverses — the
// property crash recovery's bit-identity rests on).
func FuzzWALRecord(f *testing.F) {
	// Well-formed seeds: a v1 edge body and an op body with a delete.
	l := &Log{}
	v1 := append([]byte(nil), l.encodeFrameLocked(7, []bipartite.Edge{{Set: 1, Elem: 2}, {Set: 3, Elem: 4}})...)
	f.Add(v1[frameHeader:], false)
	opf := append([]byte(nil), l.encodeOpsFrameLocked(9, []bipartite.Op{
		{Kind: bipartite.OpInsert, Edge: bipartite.Edge{Set: 1, Elem: 2}},
		{Kind: bipartite.OpDelete, Edge: bipartite.Edge{Set: 1, Elem: 2}},
	}, true)...)
	f.Add(opf[frameHeader:], true)
	// Structurally hostile ones: short, misaligned, delete flag in a v1
	// body, negative offset.
	f.Add([]byte{}, false)
	f.Add([]byte{1, 2, 3}, true)
	f.Add(bytes.Repeat([]byte{0}, 12), false)
	f.Add(append(bytes.Repeat([]byte{0}, 8), 0, 0, 0, 0x80, 0, 0, 0, 0), false)
	f.Add(append(bytes.Repeat([]byte{0xFF}, 8), bytes.Repeat([]byte{0}, 8)...), true)

	f.Fuzz(func(t *testing.T, body []byte, opFrame bool) {
		if len(body) > maxFrameBody {
			body = body[:maxFrameBody]
		}
		off, ops, err := decodeBody(body, opFrame, nil)
		if err != nil {
			if !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if off < 0 {
			t.Fatalf("accepted negative offset %d", off)
		}
		if want := (len(body) - 8) / 8; len(ops) != want {
			t.Fatalf("decoded %d records from a %d-byte body, want %d", len(ops), len(body), want)
		}
		if cap(ops) > len(body)/8+1 {
			t.Fatalf("op buffer grew to %d entries for a %d-byte body", cap(ops), len(body))
		}
		// Inverse check: re-encoding the decode under the same frame
		// interpretation must reproduce the input body bit for bit.
		frame := (&Log{}).encodeOpsFrameLocked(off, ops, opFrame)
		if !bytes.Equal(frame[frameHeader:], body) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", frame[frameHeader:], body)
		}
	})
}

// FuzzWALSegment writes arbitrary bytes after a valid segment magic and
// scans them: the torn-tail rule means a scan may stop early but must
// never panic, report records a CRC-valid frame does not hold, or
// return an error for anything except the replay callback's own.
func FuzzWALSegment(f *testing.F) {
	l := &Log{}
	valid := []byte(segMagic)
	valid = append(valid, l.encodeFrameLocked(0, []bipartite.Edge{{Set: 1, Elem: 2}})...)
	valid = append(valid, l.encodeOpsFrameLocked(1, []bipartite.Op{
		{Kind: bipartite.OpDelete, Edge: bipartite.Edge{Set: 1, Elem: 2}},
	}, true)...)
	f.Add(valid)
	f.Add([]byte(segMagic))
	f.Add(valid[:len(valid)-3])
	corrupt := append([]byte(nil), valid...)
	corrupt[len(segMagic)+10] ^= 0x40
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "seg.wal")
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		last := int64(-1)
		end, err := scanSegment(path, func(off int64, ops []bipartite.Op) error {
			if off < 0 {
				t.Fatalf("negative frame offset %d", off)
			}
			last = off + int64(len(ops))
			return nil
		})
		if err != nil {
			// The only reachable error with a nil-friendly callback is the
			// bad-magic reject; a short or torn file must scan cleanly.
			if len(data) >= len(segMagic) && string(data[:len(segMagic)]) == segMagic {
				t.Fatalf("scan error on a well-opened segment: %v", err)
			}
			return
		}
		if last >= 0 && end != last {
			t.Fatalf("segment end %d != last frame end %d", end, last)
		}
	})
}
