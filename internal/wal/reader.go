package wal

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bipartite"
)

// segFile is a discovered on-disk segment.
type segFile struct {
	path string
	seq  uint64
}

// listSegments returns dir's segment files in sequence order.
func listSegments(dir string) ([]segFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading log dir: %w", err)
	}
	var segs []segFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segExt) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, segExt), 10, 64)
		if err != nil {
			continue // not a segment of ours
		}
		segs = append(segs, segFile{path: filepath.Join(dir, name), seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// scanSegment reads one segment, calling fn for every intact frame in
// order, and returns the offset past the last intact frame (0 when the
// segment holds none). Per the torn-tail rule it stops cleanly — nil
// error — at the first frame that is short, oversized, fails its CRC,
// or decodes to an implausible record; only fn's errors and I/O errors
// other than EOF propagate. Both frame encodings arrive as op batches:
// v1 edge frames decode to insert ops.
func scanSegment(path string, fn func(offset int64, ops []bipartite.Op) error) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return 0, nil // shorter than the header: torn at creation
	}
	if string(magic) != segMagic {
		return 0, fmt.Errorf("not a WAL segment (bad magic %q)", magic)
	}

	var (
		end    int64
		header [frameHeader]byte
		body   []byte
		ops    []bipartite.Op
	)
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return end, nil
			}
			return end, err
		}
		raw := getU32(header[0:])
		length, opFrame := raw&^opFrameFlag, raw&opFrameFlag != 0
		if length < 8 || length%8 != 0 || length > maxFrameBody {
			return end, nil // implausible length: torn tail
		}
		if cap(body) < int(length) {
			body = make([]byte, length)
		}
		body = body[:length]
		if _, err := io.ReadFull(f, body); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return end, nil
			}
			return end, err
		}
		if crc32.Checksum(body, castagnoli) != getU32(header[4:]) {
			return end, nil
		}
		off, decoded, derr := decodeBody(body, opFrame, ops)
		if derr != nil {
			return end, nil // CRC-valid but not ours: treat as torn tail
		}
		ops = decoded
		if err := fn(off, ops); err != nil {
			return end, err
		}
		end = off + int64(len(ops))
	}
}

// ErrCorruptRecord marks a frame body that passed its length and CRC
// gates but still decodes to something our writer never emits. Every
// decodeBody failure wraps it — the contract the fuzz target pins.
var ErrCorruptRecord = fmt.Errorf("wal: corrupt record")

// decodeBody decodes one CRC-validated frame body — u64 offset followed
// by 8-byte records — into dst (reusing its capacity). opFrame selects
// the op-record interpretation, where a record's set word carries the
// op kind in its top bit; in a v1 body that bit is corruption (our
// writer validates set ids far below it), never a huge set id.
// Allocation is bounded by len(body), which callers cap at
// maxFrameBody.
func decodeBody(body []byte, opFrame bool, dst []bipartite.Op) (int64, []bipartite.Op, error) {
	if len(body) < 8 || len(body)%8 != 0 {
		return 0, dst, fmt.Errorf("%w: implausible body length %d", ErrCorruptRecord, len(body))
	}
	off := int64(getU64(body))
	if off < 0 {
		return 0, dst, fmt.Errorf("%w: negative frame offset", ErrCorruptRecord)
	}
	n := (len(body) - 8) / 8
	if cap(dst) < n {
		dst = make([]bipartite.Op, n)
	}
	dst = dst[:n]
	for i := range dst {
		set := getU32(body[8+8*i:])
		kind := bipartite.OpInsert
		if set&opDeleteBit != 0 {
			if !opFrame {
				return 0, dst[:0], fmt.Errorf("%w: delete flag in a v1 edge frame", ErrCorruptRecord)
			}
			kind = bipartite.OpDelete
			set &^= opDeleteBit
		}
		dst[i] = bipartite.Op{Kind: kind, Edge: bipartite.Edge{Set: set, Elem: getU32(body[12+8*i:])}}
	}
	return off, dst, nil
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}
