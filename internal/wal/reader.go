package wal

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bipartite"
)

// segFile is a discovered on-disk segment.
type segFile struct {
	path string
	seq  uint64
}

// listSegments returns dir's segment files in sequence order.
func listSegments(dir string) ([]segFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading log dir: %w", err)
	}
	var segs []segFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segExt) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, segExt), 10, 64)
		if err != nil {
			continue // not a segment of ours
		}
		segs = append(segs, segFile{path: filepath.Join(dir, name), seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// scanSegment reads one segment, calling fn for every intact frame in
// order, and returns the offset past the last intact frame (0 when the
// segment holds none). Per the torn-tail rule it stops cleanly — nil
// error — at the first frame that is short, oversized, or fails its
// CRC; only fn's errors and I/O errors other than EOF propagate.
func scanSegment(path string, fn func(offset int64, edges []bipartite.Edge) error) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return 0, nil // shorter than the header: torn at creation
	}
	if string(magic) != segMagic {
		return 0, fmt.Errorf("not a WAL segment (bad magic %q)", magic)
	}

	var (
		end    int64
		header [frameHeader]byte
		body   []byte
		edges  []bipartite.Edge
	)
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return end, nil
			}
			return end, err
		}
		length := getU32(header[0:])
		if length < 8 || length%8 != 0 || length > maxFrameBody {
			return end, nil // implausible length: torn tail
		}
		if cap(body) < int(length) {
			body = make([]byte, length)
		}
		body = body[:length]
		if _, err := io.ReadFull(f, body); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return end, nil
			}
			return end, err
		}
		if crc32.Checksum(body, castagnoli) != getU32(header[4:]) {
			return end, nil
		}
		off := int64(getU64(body))
		n := (len(body) - 8) / 8
		if cap(edges) < n {
			edges = make([]bipartite.Edge, n)
		}
		edges = edges[:n]
		for i := range edges {
			edges[i].Set = getU32(body[8+8*i:])
			edges[i].Elem = getU32(body[12+8*i:])
		}
		if err := fn(off, edges); err != nil {
			return end, err
		}
		end = off + int64(n)
	}
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}
