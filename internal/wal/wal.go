// Package wal is the durability plane's write-ahead log: a
// per-namespace append-only log of edge batches, written as
// length-prefixed CRC32C-framed binary records across rotated segment
// files. The service logs every ingest batch here *before* handing it
// to the shard mailboxes, so a crash loses at most the frames the
// configured fsync policy had not yet forced to stable storage;
// recovery restores the last durable snapshot and replays the WAL tail
// through the normal ingest path, and because the paper's sketch is a
// deterministic function of the routed per-shard streams the recovered
// engine is bit-identical to one that never crashed (the server
// package's fault-injection tests pin this for all three engine modes).
//
// # On-disk format
//
// A log is a directory of segment files named %020d.wal in strictly
// increasing sequence order. Every segment starts with the 8-byte magic
// "COVWAL1\n" followed by frames:
//
//	uint32  length   body size in bytes (8 + 8×edges)
//	uint32  crc      CRC32C (Castagnoli) of the body
//	uint64  offset   cumulative edge index of the frame's first edge
//	edges × (uint32 set, uint32 elem)
//
// All integers are little-endian, matching the sketch wire formats. The
// explicit per-frame offset makes segments self-describing: recovery
// skips frames a restored snapshot already covers (end ≤ snapshot
// edges) without any side index, and contiguity of the replayed tail is
// checked frame by frame, so a corrupted or missing middle segment
// surfaces as a clear gap error instead of silent data loss.
//
// # Op frames
//
// The dynamic (insert/delete) engine mode logs operation batches. An op
// frame reuses the v1 layout but sets the top bit of the length word
// (the true body size is length &^ 1<<31), and each record's set word
// carries the op kind in its own top bit (set → delete). AppendOps
// emits an op frame only when the batch actually contains a delete;
// insert-only batches — and every batch of the legacy edge API — use
// the v1 encoding byte for byte, so logs written by delete-free
// workloads are indistinguishable from v1 logs. A reader that predates
// the extension stops cleanly at the first op frame: the flagged length
// word exceeds maxFrameBody, which the torn-tail rule treats as a clean
// segment end, so old binaries never misread a delete as an insert.
//
// # Torn-tail rule
//
// A crash can leave a partially written final frame. The reader stops a
// segment cleanly at the first frame that is short, oversized, or fails
// its CRC — those bytes were never acknowledged as durable — and
// continues with the next segment (a restarted writer always opens a
// fresh segment, so valid data never follows a torn tail within one
// file). Only a missing stretch of acknowledged offsets is an error.
//
// # Fsync policies
//
// SyncAlways forces every append to stable storage before it returns
// (concurrent appenders coalesce: one fsync can acknowledge several
// frames — group commit). SyncEvery fsyncs on a timer, bounding loss to
// the interval. SyncOff never fsyncs: frames still reach the kernel
// with every append (a process crash loses nothing), but a power loss
// may drop the tail.
package wal

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bipartite"
)

// SyncPolicy selects when appended frames are fsynced.
type SyncPolicy string

const (
	// SyncAlways fsyncs before every Append returns (group-committed:
	// concurrent appends share fsyncs).
	SyncAlways SyncPolicy = "always"
	// SyncEvery fsyncs on a timer (Options.Interval); an append returns
	// once its frame reached the kernel.
	SyncEvery SyncPolicy = "interval"
	// SyncOff never fsyncs; the OS flushes on its own schedule.
	SyncOff SyncPolicy = "off"
)

// ParsePolicy validates a policy name ("" selects SyncEvery).
func ParsePolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case "":
		return SyncEvery, nil
	case SyncAlways, SyncEvery, SyncOff:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (known: %q, %q, %q)",
		s, SyncAlways, SyncEvery, SyncOff)
}

// WriteFile is the writable-file surface the log needs — satisfied by
// *os.File and by the fault-injecting writers of wal/faultfs, which is
// how the crash-recovery tests tear frames at arbitrary byte offsets.
type WriteFile interface {
	io.Writer
	Sync() error
	Close() error
}

// Options configures a Log.
type Options struct {
	// Dir is the log directory (created if missing). Required.
	Dir string
	// Policy is the fsync policy (default SyncEvery).
	Policy SyncPolicy
	// Interval is the SyncEvery fsync period (default 100ms).
	Interval time.Duration
	// SegmentBytes rotates to a fresh segment once the current one
	// exceeds this size (default 64 MiB).
	SegmentBytes int64
	// OpenWrite opens a segment file for appending (default: os.Create).
	// The fault-injection harness substitutes writers that tear or drop
	// writes at a chosen byte offset.
	OpenWrite func(path string) (WriteFile, error)
}

func (o Options) policy() (SyncPolicy, error) { return ParsePolicy(string(o.Policy)) }

func (o Options) interval() time.Duration {
	if o.Interval <= 0 {
		return 100 * time.Millisecond
	}
	return o.Interval
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return 64 << 20
	}
	return o.SegmentBytes
}

func (o Options) openWrite(path string) (WriteFile, error) {
	if o.OpenWrite != nil {
		return o.OpenWrite(path)
	}
	return os.Create(path)
}

const (
	segMagic = "COVWAL1\n"
	segExt   = ".wal"
	// frameHeader is the fixed frame prefix: uint32 length + uint32 crc.
	frameHeader = 8
	// maxFrameBody bounds a frame's declared body size; anything larger
	// is treated as a torn/corrupt frame, never allocated.
	maxFrameBody = 1 << 27
	// opFrameFlag marks an op frame in the length word. Deliberately past
	// maxFrameBody so pre-extension readers stop cleanly at the first op
	// frame instead of misreading delete records as inserts.
	opFrameFlag uint32 = 1 << 31
	// opDeleteBit carries a record's op kind in its set word (op frames
	// only; a v1 frame with this bit set is corrupt).
	opDeleteBit uint32 = 1 << 31
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = fmt.Errorf("wal: log closed")

// ErrInsertOnly is returned by Open when the log holds delete ops but
// the caller replays plain edges — the log was written by a dynamic
// engine and cannot be replayed into an append-only one.
var ErrInsertOnly = fmt.Errorf("wal: log contains delete ops but caller replays insert-only edges")

// sealed is a read-only predecessor segment kept for replay until a
// checkpoint covers it.
type sealed struct {
	path string
	// end is the offset past the segment's last valid frame (0 when the
	// segment holds no valid frames — always safe to delete).
	end int64
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	opt    Options
	policy SyncPolicy

	writeMu  sync.Mutex
	f        WriteFile
	segPath  string
	segSeq   uint64
	segBytes int64
	next     int64 // offset the next appended frame will carry
	sealed   []sealed
	scratch  []byte
	closed   bool

	// syncMu serializes fsyncs; synced is the highest offset known
	// durable, letting concurrent SyncAlways appenders coalesce: whoever
	// acquires syncMu first syncs for everyone behind it.
	syncMu sync.Mutex
	synced int64

	appends   atomic.Int64
	syncs     atomic.Int64
	rotations atomic.Int64

	stopC chan struct{}
	doneC chan struct{}
}

// truncName is the truncation marker file: the highest checkpoint
// offset whose covered frames TruncateBefore may have deleted. Without
// it a fully truncated log is indistinguishable from an empty one, and
// a restart that forgot its snapshot would silently come up empty
// instead of erroring.
const truncName = "TRUNCATED"

func readTruncMarker(dir string) (int64, error) {
	b, err := os.ReadFile(filepath.Join(dir, truncName))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: reading truncation marker: %w", err)
	}
	v, perr := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
	if perr != nil || v < 0 {
		return 0, fmt.Errorf("wal: corrupt truncation marker %q", b)
	}
	return v, nil
}

func writeTruncMarker(dir string, off int64) error {
	tmp := filepath.Join(dir, truncName+".tmp")
	if err := os.WriteFile(tmp, []byte(strconv.FormatInt(off, 10)+"\n"), 0o666); err != nil {
		return fmt.Errorf("wal: writing truncation marker: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, truncName)); err != nil {
		return fmt.Errorf("wal: publishing truncation marker: %w", err)
	}
	return nil
}

// Open scans opts.Dir, replays every surviving frame past seed through
// fn (frames whose end ≤ seed are skipped — a restored snapshot already
// covers them), and opens a fresh segment for appending at the
// recovered offset. seed is the edge offset the caller's restored state
// already reflects; with no snapshot it is 0. A frame that straddles
// seed, or a gap in the replayed offsets (possible only if acknowledged
// segments were corrupted or deleted), is an error; a torn tail is not.
// Recovery that accounts for fewer edges than the log's truncation
// marker is also an error — the missing prefix was deleted after a
// checkpoint, so the caller must first restore the covering snapshot.
//
// Open replays insert-only logs; a surviving op frame with deletes
// fails with ErrInsertOnly. Callers that can apply deletes use OpenOps.
func Open(opts Options, seed int64, fn func(offset int64, edges []bipartite.Edge) error) (*Log, error) {
	var edges []bipartite.Edge
	return OpenOps(opts, seed, func(off int64, ops []bipartite.Op) error {
		if bipartite.HasDeletes(ops) {
			return fmt.Errorf("frame at offset %d: %w", off, ErrInsertOnly)
		}
		if fn == nil {
			return nil
		}
		edges = bipartite.InsertEdges(edges, ops)
		return fn(off, edges)
	})
}

// OpenOps is Open for operation streams: surviving frames replay as op
// batches (v1 edge frames arrive as insert ops), so a dynamic engine's
// deletes survive a crash exactly like its inserts. The offset
// bookkeeping is identical — one op advances the offset by one, as one
// edge does.
func OpenOps(opts Options, seed int64, fn func(offset int64, ops []bipartite.Op) error) (*Log, error) {
	policy, err := opts.policy()
	if err != nil {
		return nil, err
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if seed < 0 {
		return nil, fmt.Errorf("wal: negative seed offset %d", seed)
	}
	if err := os.MkdirAll(opts.Dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: creating log dir: %w", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	trunc, err := readTruncMarker(opts.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{opt: opts, policy: policy, next: seed, synced: seed}
	maxSeq := uint64(0)
	for _, sf := range segs {
		if sf.seq > maxSeq {
			maxSeq = sf.seq
		}
		end, err := scanSegment(sf.path, func(off int64, ops []bipartite.Op) error {
			frameEnd := off + int64(len(ops))
			switch {
			case frameEnd <= l.next:
				return nil // snapshot (or an earlier replay) already covers it
			case off < l.next:
				return fmt.Errorf("wal: frame [%d,%d) straddles recovery offset %d", off, frameEnd, l.next)
			case off > l.next:
				return fmt.Errorf("wal: gap: log resumes at offset %d but only %d edges are accounted for", off, l.next)
			}
			if fn != nil {
				if err := fn(off, ops); err != nil {
					return err
				}
			}
			l.next = frameEnd
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s: %w", filepath.Base(sf.path), err)
		}
		l.sealed = append(l.sealed, sealed{path: sf.path, end: end})
	}
	if l.next < trunc {
		return nil, fmt.Errorf("wal: log was truncated at offset %d by a checkpoint, but restored state and surviving frames account for only %d edges; restore the snapshot covering the checkpoint first", trunc, l.next)
	}
	l.synced = l.next
	if err := l.openSegmentLocked(maxSeq + 1); err != nil {
		return nil, err
	}
	if policy == SyncEvery {
		l.stopC = make(chan struct{})
		l.doneC = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// openSegmentLocked creates segment seq and makes it current. Caller
// holds writeMu (or is the constructor).
func (l *Log) openSegmentLocked(seq uint64) error {
	path := filepath.Join(l.opt.Dir, fmt.Sprintf("%020d%s", seq, segExt))
	f, err := l.opt.openWrite(path)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	l.f, l.segPath, l.segSeq = f, path, seq
	l.segBytes = int64(len(segMagic))
	return nil
}

// rotateLocked seals the current segment (flushing it to stable
// storage so its frames can be acknowledged by the seal) and opens the
// next one. Caller holds writeMu.
func (l *Log) rotateLocked() error {
	l.syncMu.Lock()
	err := l.f.Sync()
	if err == nil && l.next > l.synced {
		l.synced = l.next
	}
	l.syncMu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: syncing sealed segment: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing sealed segment: %w", err)
	}
	l.sealed = append(l.sealed, sealed{path: l.segPath, end: l.next})
	l.rotations.Add(1)
	return l.openSegmentLocked(l.segSeq + 1)
}

// Append logs one edge batch and returns the offset its frame carries
// (the cumulative edge count before the batch). Durability on return
// follows the sync policy: SyncAlways frames are on stable storage,
// SyncEvery/SyncOff frames have reached the kernel. An append error
// leaves the batch's durability undefined (a torn frame may or may not
// survive); callers must treat it as fatal for the log.
func (l *Log) Append(edges []bipartite.Edge) (int64, error) {
	return l.appendFrame(len(edges), func(off int64) []byte {
		return l.encodeFrameLocked(off, edges)
	})
}

// AppendOps logs one operation batch. Insert-only batches are encoded
// as plain v1 edge frames — byte-identical to the Append of the same
// edges — and only batches that actually carry a delete use the flagged
// op encoding, so the on-disk format changes exactly when the semantics
// do. Offset accounting counts ops, mirroring Append's edge count.
func (l *Log) AppendOps(ops []bipartite.Op) (int64, error) {
	opFrame := bipartite.HasDeletes(ops)
	return l.appendFrame(len(ops), func(off int64) []byte {
		return l.encodeOpsFrameLocked(off, ops, opFrame)
	})
}

// appendFrame is the shared append path: rotation, encode (under
// writeMu, via enc), write, offset advance, and policy-driven sync.
// count is the number of records the frame accounts for.
func (l *Log) appendFrame(count int, enc func(off int64) []byte) (int64, error) {
	if count == 0 {
		l.writeMu.Lock()
		off := l.next
		l.writeMu.Unlock()
		return off, nil
	}
	l.writeMu.Lock()
	if l.closed {
		l.writeMu.Unlock()
		return 0, ErrClosed
	}
	if l.segBytes >= l.opt.segmentBytes() {
		if err := l.rotateLocked(); err != nil {
			l.writeMu.Unlock()
			return 0, err
		}
	}
	off := l.next
	frame := enc(off)
	if _, err := l.f.Write(frame); err != nil {
		l.writeMu.Unlock()
		return 0, fmt.Errorf("wal: appending frame: %w", err)
	}
	end := off + int64(count)
	l.next = end
	l.segBytes += int64(len(frame))
	l.appends.Add(1)
	f := l.f
	l.writeMu.Unlock()
	if l.policy == SyncAlways {
		if err := l.syncTo(f, end); err != nil {
			return 0, err
		}
	}
	return off, nil
}

// syncTo fsyncs f unless a concurrent syncer already covered end — the
// group-commit coalescing of the SyncAlways policy.
func (l *Log) syncTo(f WriteFile, end int64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced >= end {
		return nil
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs.Add(1)
	l.synced = end
	return nil
}

// Sync forces everything appended so far to stable storage.
func (l *Log) Sync() error {
	l.writeMu.Lock()
	if l.closed {
		l.writeMu.Unlock()
		return ErrClosed
	}
	f, end := l.f, l.next
	l.writeMu.Unlock()
	return l.syncTo(f, end)
}

func (l *Log) syncLoop() {
	defer close(l.doneC)
	t := time.NewTicker(l.opt.interval())
	defer t.Stop()
	for {
		select {
		case <-l.stopC:
			return
		case <-t.C:
			l.writeMu.Lock()
			if l.closed {
				l.writeMu.Unlock()
				return
			}
			f, end := l.f, l.next
			l.writeMu.Unlock()
			l.syncTo(f, end) // a failing disk resurfaces on Append/Close
		}
	}
}

// encodeFrameLocked builds a frame into the log's scratch buffer.
// Caller holds writeMu.
func (l *Log) encodeFrameLocked(off int64, edges []bipartite.Edge) []byte {
	body := 8 + 8*len(edges)
	need := frameHeader + body
	if cap(l.scratch) < need {
		l.scratch = make([]byte, need)
	}
	buf := l.scratch[:need]
	putU32(buf[0:], uint32(body))
	putU64(buf[8:], uint64(off))
	for i, e := range edges {
		putU32(buf[16+8*i:], e.Set)
		putU32(buf[20+8*i:], e.Elem)
	}
	putU32(buf[4:], crc32.Checksum(buf[8:], castagnoli))
	return buf
}

// encodeOpsFrameLocked builds an op-batch frame into the scratch
// buffer. With opFrame false (an insert-only batch) the output is
// byte-identical to encodeFrameLocked on the batch's edges. Caller
// holds writeMu.
func (l *Log) encodeOpsFrameLocked(off int64, ops []bipartite.Op, opFrame bool) []byte {
	body := 8 + 8*len(ops)
	need := frameHeader + body
	if cap(l.scratch) < need {
		l.scratch = make([]byte, need)
	}
	buf := l.scratch[:need]
	length := uint32(body)
	if opFrame {
		length |= opFrameFlag
	}
	putU32(buf[0:], length)
	putU64(buf[8:], uint64(off))
	for i, op := range ops {
		set := op.Edge.Set
		if opFrame && op.Kind == bipartite.OpDelete {
			set |= opDeleteBit
		}
		putU32(buf[16+8*i:], set)
		putU32(buf[20+8*i:], op.Edge.Elem)
	}
	putU32(buf[4:], crc32.Checksum(buf[8:], castagnoli))
	return buf
}

// TruncateBefore deletes sealed segments every frame of which is
// covered by a durable snapshot reflecting the first end edges — the
// post-checkpoint cleanup. The current segment is first rotated away
// when non-empty, so a checkpoint always bounds the log to the frames
// it does not cover. Frames in surviving segments that the snapshot
// covers are skipped (not replayed) at the next recovery. The
// truncation offset is recorded in a marker file *before* any segment
// is deleted, so a later Open that cannot account for the deleted
// prefix refuses recovery instead of silently starting empty (a crash
// between marker and deletion is harmless: the surviving frames still
// account for the marker offset, so Open proceeds).
func (l *Log) TruncateBefore(end int64) error {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.segBytes > int64(len(segMagic)) {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if end > 0 {
		cur, err := readTruncMarker(l.opt.Dir)
		if err != nil {
			return err
		}
		if end > cur {
			if err := writeTruncMarker(l.opt.Dir, end); err != nil {
				return err
			}
		}
	}
	var firstErr error
	keep := l.sealed[:0]
	for _, s := range l.sealed {
		if s.end <= end {
			if err := os.Remove(s.path); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("wal: removing covered segment: %w", err)
			}
			continue
		}
		keep = append(keep, s)
	}
	l.sealed = keep
	return firstErr
}

// NextOffset reports the offset the next appended frame will carry —
// the cumulative edge count the log accounts for.
func (l *Log) NextOffset() int64 {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	return l.next
}

// Stats reports log accounting.
type Stats struct {
	// Appends counts logged frames; Syncs counts fsyncs actually issued
	// (group commit can acknowledge several appends per fsync);
	// Rotations counts sealed segments.
	Appends, Syncs, Rotations int64
	// Segments is the number of on-disk segments (sealed + current).
	Segments int
	// NextOffset is the cumulative edge count the log accounts for;
	// SyncedOffset is the prefix known to be on stable storage.
	NextOffset, SyncedOffset int64
}

// Stats returns a consistent snapshot of the log's accounting.
func (l *Log) Stats() Stats {
	l.writeMu.Lock()
	st := Stats{
		Appends:    l.appends.Load(),
		Syncs:      l.syncs.Load(),
		Rotations:  l.rotations.Load(),
		Segments:   len(l.sealed) + 1,
		NextOffset: l.next,
	}
	l.writeMu.Unlock()
	l.syncMu.Lock()
	st.SyncedOffset = l.synced
	l.syncMu.Unlock()
	return st
}

// Close stops the sync timer, flushes the tail to stable storage and
// closes the current segment. Idempotent.
func (l *Log) Close() error {
	l.writeMu.Lock()
	if l.closed {
		l.writeMu.Unlock()
		return nil
	}
	l.closed = true
	f, end := l.f, l.next
	l.writeMu.Unlock()
	if l.stopC != nil {
		close(l.stopC)
		<-l.doneC
	}
	err := l.syncTo(f, end)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}
