// Package algorithms implements the paper's streaming algorithms on top
// of the H≤n sketch:
//
//   - KCover — Algorithm 3, the single-pass (1 − 1/e − ε)-approximation
//     for k-cover in O~(n) space (Theorem 3.1).
//   - CoverSubmodule — Algorithm 4, the bounded-size partial-cover
//     submodule used by set cover.
//   - SetCoverOutliers — Algorithm 5, the single-pass (1+ε)·ln(1/λ)-
//     approximation for set cover with λ outliers (Theorem 3.3), running
//     O(log n) geometric guesses of the optimal size in parallel over one
//     pass.
//   - SetCoverMultiPass — Algorithm 6, the p-pass (1+ε)·ln(m)-
//     approximation for set cover in O~(n·m^{O(1/p)} + m) space
//     (Theorem 3.4).
//
// Every algorithm consumes an edge-arrival stream, never the underlying
// graph; space accounting (edges stored, bytes) is reported in the result
// so experiments can verify the space claims.
package algorithms

import (
	"fmt"
	"math"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/stream"
)

// Options configures the streaming algorithms. Eps is the ε of the
// respective theorem. The sketch overrides mirror core.Params and exist
// so that experiments can run with practical space budgets; zero values
// select the paper's formulas.
type Options struct {
	// Eps is the accuracy parameter ε ∈ (0, 1] of the theorem statements.
	Eps float64
	// Seed makes the run deterministic.
	Seed uint64
	// NumElems is m when known; it only tunes the δ factor (log log m).
	NumElems int

	// EdgeBudget, SpaceFactor and DegreeCap override the sketch sizing
	// (per sketch); see core.Params.
	EdgeBudget  int
	SpaceFactor float64
	DegreeCap   int

	// GuessStep overrides the geometric guess-grid step of Algorithm 5
	// (default ε/3). Used by the grid ablation; leave zero otherwise.
	GuessStep float64
}

func (o Options) eps() float64 {
	if o.Eps <= 0 || o.Eps > 1 {
		return 0.5
	}
	return o.Eps
}

func (o Options) sketchParams(n, k int, eps float64, deltaPP float64) core.Params {
	return core.Params{
		NumSets:     n,
		NumElems:    o.NumElems,
		K:           k,
		Eps:         eps,
		DeltaPP:     deltaPP,
		EdgeBudget:  o.EdgeBudget,
		SpaceFactor: o.SpaceFactor,
		DegreeCap:   o.DegreeCap,
		Seed:        o.Seed,
	}
}

// KCoverResult reports a run of Algorithm 3.
type KCoverResult struct {
	// Sets is the chosen solution (at most k set ids).
	Sets []int
	// SketchCoverage is |Γ(H≤n, Sets)|, the coverage inside the sketch.
	SketchCoverage int
	// EstimatedCoverage is SketchCoverage / p*, the Lemma 2.2 estimate of
	// the true coverage C(Sets).
	EstimatedCoverage float64
	// SketchElemIDs lists the original ids of the elements the sketch
	// sampled (diagnostics for the sketch-composition experiments).
	SketchElemIDs []uint32
	// Sketch reports the space accounting of the sketch.
	Sketch core.Stats
}

// KCoverParams returns the sketch parameters Algorithm 3 uses:
// H≤n(k, ε/12, 2+ln n). Exported so that alternative drivers (the
// distributed round, the ensemble) build sketches with identical policy
// and inherit Theorem 3.1's guarantee.
func KCoverParams(numSets, k int, opt Options) core.Params {
	eps := opt.eps()
	epsP := eps / 12 // Algorithm 3 line 1: ε′ = ε/12
	deltaPP := 2 + math.Log(float64(maxInt(numSets, 2)))
	return opt.sketchParams(numSets, k, epsP, deltaPP)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// KCover runs Algorithm 3: build H≤n(k, ε/12, 2+ln n) over a single pass
// of the stream, then run the offline greedy 1−1/e approximation on the
// sketch. The returned solution is a (1 − 1/e − ε)-approximation to
// k-cover on the underlying instance with probability 1 − 1/n
// (Theorem 3.1).
func KCover(st stream.Stream, numSets, k int, opt Options) (*KCoverResult, error) {
	if numSets <= 0 || k <= 0 {
		return nil, fmt.Errorf("algorithms: KCover needs positive numSets and k")
	}
	sk, err := core.NewSketch(KCoverParams(numSets, k, opt))
	if err != nil {
		return nil, err
	}
	sk.AddStream(st)
	return KCoverFromSketch(sk, k), nil
}

// KCoverFromSketch runs the greedy stage of Algorithm 3 on an
// already-built sketch (used by the distributed driver after merging).
func KCoverFromSketch(sk *core.Sketch, k int) *KCoverResult {
	return kCoverOnSketch(sk, k)
}

func kCoverOnSketch(sk *core.Sketch, k int) *KCoverResult {
	g, ids := sk.Graph()
	res := greedy.MaxCover(g, k)
	return &KCoverResult{
		Sets:              res.Sets,
		SketchCoverage:    res.Covered,
		EstimatedCoverage: float64(res.Covered) / sk.PStar(),
		SketchElemIDs:     ids,
		Sketch:            sk.Stats(),
	}
}

// SubmoduleResult reports a run of Algorithm 4 on a pre-built sketch.
type SubmoduleResult struct {
	// OK is false when the submodule "returns false", certifying (w.h.p.)
	// that the instance has no set cover of size kPrime.
	OK bool
	// Sets is the solution (size ≤ kPrime·ln(1/λ′)) when OK.
	Sets []int
	// SketchFraction is the fraction of sketch elements covered by Sets.
	SketchFraction float64
}

// CoverSubmodule runs the decision procedure of Algorithm 4 on a built
// sketch: run greedy for k = ⌈k′·ln(1/λ′)⌉ picks and accept iff the
// solution covers at least a 1 − λ′ − ε·ln(1/λ′) fraction of the sketch's
// elements, where ε is the sketch's accuracy parameter. By Lemma 3.2, a
// false return means (w.h.p.) no set cover of size k′ exists.
func CoverSubmodule(sk *core.Sketch, kPrime int, lambdaP float64) SubmoduleResult {
	k := int(math.Ceil(float64(kPrime) * math.Log(1/lambdaP)))
	if k < 1 {
		k = 1
	}
	g, _ := sk.Graph()
	res := greedy.MaxCover(g, k)
	elems := g.NumElems()
	frac := 1.0
	if elems > 0 {
		frac = float64(res.Covered) / float64(elems)
	}
	eps := sk.Params().Eps
	threshold := 1 - lambdaP - eps*math.Log(1/lambdaP)
	return SubmoduleResult{
		OK:             frac >= threshold,
		Sets:           res.Sets,
		SketchFraction: frac,
	}
}

// OutliersResult reports a run of Algorithm 5.
type OutliersResult struct {
	// Sets is the selected cover.
	Sets []int
	// GuessK is the accepted guess k′ for the optimal cover size.
	GuessK int
	// Guesses is the number of parallel guesses maintained.
	Guesses int
	// SketchFraction is the covered fraction inside the accepted sketch.
	SketchFraction float64
	// TotalEdges is the total number of edges stored across all guess
	// sketches (the algorithm's space).
	TotalEdges int
	// TotalBytes approximates the resident bytes across all sketches.
	TotalBytes int64
	// Exhausted is true when every guess up to n failed (with paper
	// parameters this happens with probability ≤ 1/n; with overridden
	// space budgets it can happen more often). The largest-guess solution
	// is still returned in Sets.
	Exhausted bool
}

// SetCoverOutliers runs Algorithm 5: one pass over the stream maintaining
// a sketch per geometric guess k′ ∈ {1, (1+ε/3), (1+ε/3)², …, n} of the
// optimal cover size, then the first guess whose Algorithm-4 check passes
// yields the answer. The solution has size at most (1+ε)·ln(1/λ)·k* and
// covers at least a 1−λ fraction of the elements, with probability
// 1 − 1/n (Theorem 3.3).
func SetCoverOutliers(st stream.Stream, numSets int, lambda float64, opt Options) (*OutliersResult, error) {
	if numSets <= 0 {
		return nil, fmt.Errorf("algorithms: SetCoverOutliers needs positive numSets")
	}
	if !(lambda > 0 && lambda <= 1/math.E) {
		return nil, fmt.Errorf("algorithms: lambda must be in (0, 1/e], got %v", lambda)
	}
	eps := opt.eps()
	// Algorithm 5 line 1.
	epsP := lambda * (1 - math.Exp(-eps/2))
	lambdaP := lambda * math.Exp(-eps/2)
	// Sketch accuracy from Algorithm 4 line 1: ε = ε′ / (13·ln(1/λ′)).
	epsSketch := epsP / (13 * math.Log(1/lambdaP))
	if epsSketch >= 1 {
		epsSketch = 0.999
	}
	deltaPP := 2 + math.Log(float64(numSets))

	// Geometric guesses k′ = (1+ε/3)^i clamped to [1, n].
	step := eps / 3
	if opt.GuessStep > 0 {
		step = opt.GuessStep
	}
	guesses := guessGrid(numSets, step)
	sketches := make([]*core.Sketch, len(guesses))
	for i, kp := range guesses {
		k := int(math.Ceil(float64(kp) * math.Log(1/lambdaP)))
		if k < 1 {
			k = 1
		}
		sk, err := core.NewSketch(opt.sketchParams(numSets, k, epsSketch, deltaPP))
		if err != nil {
			return nil, err
		}
		sketches[i] = sk
	}

	// Single pass feeding every guess sketch.
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		for _, sk := range sketches {
			sk.AddEdge(e)
		}
	}

	res := &OutliersResult{Guesses: len(guesses)}
	for _, sk := range sketches {
		st := sk.Stats()
		res.TotalEdges += st.EdgesKept
		res.TotalBytes += st.Bytes
	}
	for i, kp := range guesses {
		sub := CoverSubmodule(sketches[i], kp, lambdaP)
		res.Sets = sub.Sets
		res.GuessK = kp
		res.SketchFraction = sub.SketchFraction
		if sub.OK {
			return res, nil
		}
	}
	res.Exhausted = true
	return res, nil
}

// guessGrid returns the geometric guess values 1, (1+step), (1+step)², …
// rounded up to distinct integers, ending with n.
func guessGrid(n int, step float64) []int {
	if step <= 0 {
		step = 0.1
	}
	var out []int
	last := 0
	for v := 1.0; ; v *= 1 + step {
		k := int(math.Ceil(v))
		if k > n {
			break
		}
		if k != last {
			out = append(out, k)
			last = k
		}
	}
	if last != n {
		out = append(out, n)
	}
	return out
}

// MultiPassResult reports a run of Algorithm 6.
type MultiPassResult struct {
	// Sets is the final set cover.
	Sets []int
	// Covered is the number of elements the solution covers.
	Covered int
	// Passes is the number of stream passes consumed.
	Passes int
	// Rounds reports each iteration's accepted guess and selection size.
	Rounds []MultiPassRound
	// ResidualEdges is the number of edges stored to build G_r.
	ResidualEdges int
	// PeakEdges is the maximum number of edges held at any time across
	// sketches and the residual graph.
	PeakEdges int
}

// MultiPassRound is one iteration of Algorithm 6.
type MultiPassRound struct {
	Round      int
	PickedSets int
	GuessK     int
	Exhausted  bool
}

// SetCoverMultiPass runs Algorithm 6 with r iterations: each of the first
// r−1 iterations runs Algorithm 5 with λ = m^{−1/(2+r)} on the residual
// instance (two passes each: one to mark covered elements, one to build
// the sketches); a final pass collects the residual graph G_r which is
// solved by the offline greedy. The result covers every non-isolated
// element and has size at most (1+ε)·ln(m)·k* w.h.p. (Theorem 3.4).
func SetCoverMultiPass(st stream.Resettable, numSets, numElems, r int, opt Options) (*MultiPassResult, error) {
	if numSets <= 0 || numElems <= 0 {
		return nil, fmt.Errorf("algorithms: SetCoverMultiPass needs positive dimensions")
	}
	if r < 1 {
		return nil, fmt.Errorf("algorithms: SetCoverMultiPass needs r >= 1, got %d", r)
	}
	lambda := math.Pow(float64(numElems), -1/(2+float64(r)))
	if lambda > 1/math.E {
		lambda = 1 / math.E
	}
	opt.NumElems = numElems

	covered := make([]bool, numElems)
	selected := make([]bool, numSets)
	out := &MultiPassResult{}
	var solution []int

	markPass := func() {
		st.Reset()
		out.Passes++
		for {
			e, ok := st.Next()
			if !ok {
				return
			}
			if selected[e.Set] {
				covered[e.Elem] = true
			}
		}
	}

	for i := 1; i <= r-1; i++ {
		// Pass A: mark elements covered by the current selection
		// (trivially empty in iteration 1, still one pass as in §3).
		markPass()
		// Pass B: Algorithm 5 on the residual instance.
		st.Reset()
		out.Passes++
		filtered := stream.Func(func() (bipartite.Edge, bool) {
			for {
				e, ok := st.Next()
				if !ok {
					return bipartite.Edge{}, false
				}
				if !covered[e.Elem] {
					return e, true
				}
			}
		})
		roundOpt := opt
		roundOpt.Seed = opt.Seed + uint64(i)*0x9e3779b97f4a7c15
		res, err := SetCoverOutliers(filtered, numSets, lambda, roundOpt)
		if err != nil {
			return nil, err
		}
		picked := 0
		for _, s := range res.Sets {
			if !selected[s] {
				selected[s] = true
				solution = append(solution, s)
				picked++
			}
		}
		if res.TotalEdges > out.PeakEdges {
			out.PeakEdges = res.TotalEdges
		}
		out.Rounds = append(out.Rounds, MultiPassRound{
			Round:      i,
			PickedSets: picked,
			GuessK:     res.GuessK,
			Exhausted:  res.Exhausted,
		})
	}

	// Final pass (the "one extra pass" of Section 3): simultaneously mark
	// elements covered by the last iteration's picks and buffer the edges
	// of elements not yet known to be covered. An edge can be buffered
	// before its element's covering edge arrives, so the buffer is
	// filtered afterwards; the transient memory is bounded by the edges
	// of G_{r-1}, within the theorem's O~(n·m^{O(1/r)}) budget.
	st.Reset()
	out.Passes++
	var buffer []bipartite.Edge
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		if selected[e.Set] {
			covered[e.Elem] = true
		}
		if !covered[e.Elem] {
			buffer = append(buffer, e)
		}
	}
	residual := buffer[:0]
	for _, e := range buffer {
		if !covered[e.Elem] {
			residual = append(residual, e)
		}
	}
	out.ResidualEdges = len(residual)
	if len(buffer) > out.PeakEdges {
		out.PeakEdges = len(buffer)
	}
	coveredCount := 0
	for _, c := range covered {
		if c {
			coveredCount++
		}
	}
	if len(residual) > 0 {
		gr, err := bipartite.FromEdges(numSets, numElems, residual)
		if err != nil {
			return nil, fmt.Errorf("algorithms: residual graph: %w", err)
		}
		res := greedy.SetCover(gr)
		for _, s := range res.Sets {
			if !selected[s] {
				selected[s] = true
				solution = append(solution, s)
			}
		}
		// Residual elements are disjoint from the already-covered ones,
		// and the greedy covers every non-isolated element of G_r.
		coveredCount += gr.CoveredElems()
	}
	out.Sets = solution
	out.Covered = coveredCount
	return out, nil
}
