package algorithms

import (
	"testing"

	"repro/internal/stream"
	"repro/internal/workload"
)

// BenchmarkKCoverEndToEnd measures Algorithm 3 end to end (sketch build
// over a ~200k-edge stream + greedy on the sketch).
func BenchmarkKCoverEndToEnd(b *testing.B) {
	inst := workload.Zipf(1000, 100000, 20000, 0.9, 0.8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := KCover(stream.Shuffled(inst.G, uint64(i)), 1000, 20,
			Options{Eps: 0.4, Seed: 7, NumElems: 100000, EdgeBudget: 40 * 1000})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Sets) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkOutliersEndToEnd measures Algorithm 5 (all parallel guesses).
func BenchmarkOutliersEndToEnd(b *testing.B) {
	inst := workload.PlantedSetCover(300, 20000, 10, 30, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SetCoverOutliers(stream.Shuffled(inst.G, uint64(i)), 300, 0.1,
			Options{Eps: 0.5, Seed: 7, NumElems: 20000, EdgeBudget: 20 * 300})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Sets) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkMultiPassEndToEnd measures Algorithm 6 with r=3 (5 passes).
func BenchmarkMultiPassEndToEnd(b *testing.B) {
	inst := workload.PlantedSetCover(200, 10000, 8, 20, 3)
	st := stream.Shuffled(inst.G, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		res, err := SetCoverMultiPass(st, 200, 10000, 3,
			Options{Eps: 0.5, Seed: 7, EdgeBudget: 20 * 200})
		if err != nil {
			b.Fatal(err)
		}
		if res.Covered == 0 {
			b.Fatal("empty result")
		}
	}
}
