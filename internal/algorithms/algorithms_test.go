package algorithms

import (
	"math"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/hashing"
	"repro/internal/stream"
	"repro/internal/workload"
)

func TestKCoverRecoversPlantedSolution(t *testing.T) {
	n, m, k := 60, 4000, 5
	for seed := uint64(0); seed < 3; seed++ {
		inst := workload.PlantedKCover(n, m, k, 0.9, 20, seed)
		res, err := KCover(stream.Shuffled(inst.G, seed), n, k,
			Options{Eps: 0.4, Seed: seed, NumElems: m, EdgeBudget: 60 * n})
		if err != nil {
			t.Fatal(err)
		}
		got := inst.G.Coverage(res.Sets)
		want := float64(inst.PlantedCoverage)
		if float64(got) < (1-1/math.E-0.45)*want {
			t.Fatalf("seed=%d: covered %d, planted %d", seed, got, inst.PlantedCoverage)
		}
		if len(res.Sets) > k {
			t.Fatalf("returned %d > k sets", len(res.Sets))
		}
	}
}

func TestKCoverBeatsTheoremBoundVsExact(t *testing.T) {
	// Small instances where the exact optimum is computable: the paper's
	// guarantee is 1 - 1/e - eps with probability 1 - 1/n; we run several
	// seeds and require the bound on every one (practical budgets are
	// generous enough here that failures indicate bugs, not bad luck).
	bound := 1 - 1/math.E - 0.4
	for seed := uint64(0); seed < 8; seed++ {
		inst := workload.Uniform(25, 300, 0.06, seed)
		k := 4
		opt := exact.MaxCover(inst.G, k)
		res, err := KCover(stream.Shuffled(inst.G, seed+100), 25, k,
			Options{Eps: 0.4, Seed: seed, NumElems: 300})
		if err != nil {
			t.Fatal(err)
		}
		got := inst.G.Coverage(res.Sets)
		if float64(got) < bound*float64(opt.Covered) {
			t.Fatalf("seed=%d: ratio %.3f below bound %.3f", seed,
				float64(got)/float64(opt.Covered), bound)
		}
	}
}

func TestKCoverEstimatedCoverageClose(t *testing.T) {
	inst := workload.PlantedKCover(50, 5000, 5, 0.8, 30, 3)
	res, err := KCover(stream.Shuffled(inst.G, 4), 50, 5,
		Options{Eps: 0.3, Seed: 9, NumElems: 5000, EdgeBudget: 2500})
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(inst.G.Coverage(res.Sets))
	if res.EstimatedCoverage < 0.8*truth || res.EstimatedCoverage > 1.2*truth {
		t.Fatalf("estimate %v vs truth %v", res.EstimatedCoverage, truth)
	}
}

func TestKCoverOrderRobust(t *testing.T) {
	// The same seed must give the same answer whatever the edge order
	// (sketch content is order-invariant up to degree-cap choices; with
	// no cap pressure it is exactly invariant).
	inst := workload.Uniform(30, 1000, 0.03, 5)
	var ref []int
	for order := uint64(0); order < 4; order++ {
		res, err := KCover(stream.Shuffled(inst.G, order), 30, 4,
			Options{Eps: 0.4, Seed: 1234, NumElems: 1000, EdgeBudget: 900})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Sets
			continue
		}
		if len(ref) != len(res.Sets) {
			t.Fatalf("order %d changed solution size", order)
		}
		for i := range ref {
			if ref[i] != res.Sets[i] {
				t.Fatalf("order %d changed solution: %v vs %v", order, res.Sets, ref)
			}
		}
	}
	// Adversarial order too.
	res, err := KCover(stream.Adversarial(inst.G), 30, 4,
		Options{Eps: 0.4, Seed: 1234, NumElems: 1000, EdgeBudget: 900})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i] != res.Sets[i] {
			t.Fatalf("adversarial order changed solution")
		}
	}
}

func TestAlgorithmsHoldUnderSetArrivalOrder(t *testing.T) {
	// Table 1's note: "all our results for edge arrival also hold for
	// set arrival" — the set-arrival order is just one edge order. The
	// sketch is order-invariant, so results must be identical.
	inst := workload.PlantedKCover(40, 2000, 4, 0.9, 10, 21)
	opt := Options{Eps: 0.4, Seed: 55, NumElems: 2000, EdgeBudget: 1500}
	edgeRes, err := KCover(stream.Shuffled(inst.G, 1), 40, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	setRes, err := KCover(stream.BySet(inst.G, 2), 40, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(edgeRes.Sets) != len(setRes.Sets) {
		t.Fatalf("edge %v vs set %v", edgeRes.Sets, setRes.Sets)
	}
	for i := range edgeRes.Sets {
		if edgeRes.Sets[i] != setRes.Sets[i] {
			t.Fatalf("edge %v vs set %v", edgeRes.Sets, setRes.Sets)
		}
	}
}

func TestOutliersAdversarialOrder(t *testing.T) {
	// The coverage and size guarantees are order-oblivious; run the
	// hardest order (high-degree elements first) and re-check them.
	inst := workload.PlantedSetCover(50, 2000, 5, 15, 23)
	res, err := SetCoverOutliers(stream.Adversarial(inst.G), 50, 0.1,
		Options{Eps: 0.5, Seed: 31, NumElems: 2000, EdgeBudget: 60 * 50})
	if err != nil {
		t.Fatal(err)
	}
	covered := inst.G.Coverage(res.Sets)
	if float64(covered) < 0.85*2000 {
		t.Fatalf("adversarial order broke coverage: %d", covered)
	}
	if float64(len(res.Sets)) > (1+0.5)*math.Log(1/0.1)*5+1 {
		t.Fatalf("adversarial order broke size bound: %d sets", len(res.Sets))
	}
}

func TestMultiPassOrderChangesBetweenPasses(t *testing.T) {
	// Algorithm 6 must tolerate a stream whose order differs per pass
	// (the model guarantees only the same multiset).
	inst := workload.PlantedSetCover(40, 1200, 5, 10, 29)
	edges := inst.G.Edges(nil)
	pass := 0
	reshuffling := &reshuffleStream{edges: edges, pass: &pass}
	res, err := SetCoverMultiPass(reshuffling, 40, 1200, 2,
		Options{Eps: 0.5, Seed: 41, EdgeBudget: 40 * 40})
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.G.Coverage(res.Sets); got != 1200 {
		t.Fatalf("per-pass reshuffling broke the cover: %d of 1200", got)
	}
}

// reshuffleStream replays the same edge multiset in a different order on
// every pass.
type reshuffleStream struct {
	edges []bipartite.Edge
	order []int
	pos   int
	pass  *int
}

func (r *reshuffleStream) Reset() {
	*r.pass++
	rng := hashing.NewRNG(uint64(*r.pass) * 977)
	r.order = rng.Perm(len(r.edges))
	r.pos = 0
}

func (r *reshuffleStream) Next() (bipartite.Edge, bool) {
	if r.order == nil {
		r.Reset()
	}
	if r.pos >= len(r.order) {
		return bipartite.Edge{}, false
	}
	e := r.edges[r.order[r.pos]]
	r.pos++
	return e, true
}

func TestKCoverValidation(t *testing.T) {
	if _, err := KCover(stream.NewSlice(nil), 0, 1, Options{}); err == nil {
		t.Fatal("numSets=0 accepted")
	}
	if _, err := KCover(stream.NewSlice(nil), 5, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestKCoverEmptyStream(t *testing.T) {
	res, err := KCover(stream.NewSlice(nil), 5, 2, Options{Eps: 0.5, NumElems: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 0 || res.SketchCoverage != 0 {
		t.Fatal("empty stream produced a non-empty solution")
	}
}

func TestSetCoverOutliersGuarantees(t *testing.T) {
	n, m, kStar := 60, 3000, 5
	eps := 0.5
	for _, lambda := range []float64{0.1, 0.3} {
		for seed := uint64(0); seed < 3; seed++ {
			inst := workload.PlantedSetCover(n, m, kStar, 20, seed)
			res, err := SetCoverOutliers(stream.Shuffled(inst.G, seed), n, lambda,
				Options{Eps: eps, Seed: seed, NumElems: m, EdgeBudget: 60 * n})
			if err != nil {
				t.Fatal(err)
			}
			covered := inst.G.Coverage(res.Sets)
			// Coverage promise, with slack for the practical budget.
			if float64(covered) < (1-lambda-0.05)*float64(m) {
				t.Fatalf("lambda=%v seed=%d: covered %d of %d", lambda, seed, covered, m)
			}
			// Size promise: (1+eps) ln(1/lambda) k* (+1 slack for ceil).
			bound := (1+eps)*math.Log(1/lambda)*float64(kStar) + 1
			if float64(len(res.Sets)) > bound {
				t.Fatalf("lambda=%v seed=%d: %d sets > bound %.1f", lambda, seed, len(res.Sets), bound)
			}
		}
	}
}

func TestSetCoverOutliersValidatesLambda(t *testing.T) {
	if _, err := SetCoverOutliers(stream.NewSlice(nil), 5, 0, Options{}); err == nil {
		t.Fatal("lambda=0 accepted")
	}
	if _, err := SetCoverOutliers(stream.NewSlice(nil), 5, 0.5, Options{}); err == nil {
		t.Fatal("lambda > 1/e accepted")
	}
	if _, err := SetCoverOutliers(stream.NewSlice(nil), 0, 0.1, Options{}); err == nil {
		t.Fatal("numSets=0 accepted")
	}
}

func TestGuessGrid(t *testing.T) {
	g := guessGrid(100, 0.1)
	if g[0] != 1 {
		t.Fatalf("grid must start at 1: %v", g[:3])
	}
	if g[len(g)-1] != 100 {
		t.Fatalf("grid must end at n: %v", g[len(g)-3:])
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not strictly increasing: %v", g)
		}
	}
	// Coarser steps give fewer guesses.
	if len(guessGrid(100, 1.0)) >= len(guessGrid(100, 0.1)) {
		t.Fatal("coarse grid not smaller")
	}
	// Degenerate step falls back.
	if len(guessGrid(10, 0)) == 0 {
		t.Fatal("zero step produced empty grid")
	}
}

func TestCoverSubmoduleAcceptsFeasible(t *testing.T) {
	n, m, kStar := 40, 2000, 4
	inst := workload.PlantedSetCover(n, m, kStar, 10, 1)
	sk := buildSketchForTest(t, inst, n, kStar)
	res := CoverSubmodule(sk, kStar, 0.1)
	if !res.OK {
		t.Fatalf("submodule rejected the true k* (fraction %.3f)", res.SketchFraction)
	}
}

func TestCoverSubmoduleRejectsInfeasible(t *testing.T) {
	// Partition cover of size 8; guessing k'=1 cannot cover enough.
	n, m := 40, 2000
	inst := workload.PlantedSetCover(n, m, 8, 4, 2)
	sk := buildSketchForTest(t, inst, n, 8)
	res := CoverSubmodule(sk, 1, 0.1)
	if res.OK {
		t.Fatalf("submodule accepted k'=1 on a k*=8 partition (fraction %.3f)", res.SketchFraction)
	}
}

// buildSketchForTest builds a sketch the way Algorithm 5 would for the
// guess kStar with lambda' = 0.1.
func buildSketchForTest(t *testing.T, inst workload.Instance, n, kStar int) *core.Sketch {
	t.Helper()
	k := int(math.Ceil(float64(kStar) * math.Log(1/0.1)))
	sk := core.MustNewSketch(core.Params{
		NumSets:  n,
		NumElems: inst.G.NumElems(),
		K:        k,
		Eps:      0.02,
		Seed:     3,
		// Generous budget: the test exercises the decision logic, not
		// the space bound.
		EdgeBudget: 200 * n,
	})
	sk.AddStream(stream.Shuffled(inst.G, 8))
	return sk
}

func TestSetCoverMultiPassCoversEverything(t *testing.T) {
	n, m, kStar := 50, 2000, 5
	for _, r := range []int{1, 2, 3} {
		for seed := uint64(0); seed < 2; seed++ {
			inst := workload.PlantedSetCover(n, m, kStar, 15, seed)
			res, err := SetCoverMultiPass(stream.Shuffled(inst.G, seed), n, m, r,
				Options{Eps: 0.5, Seed: seed, EdgeBudget: 40 * n})
			if err != nil {
				t.Fatal(err)
			}
			if got := inst.G.Coverage(res.Sets); got != m {
				t.Fatalf("r=%d seed=%d: covered %d of %d", r, seed, got, m)
			}
			if res.Covered != m {
				t.Fatalf("r=%d: reported %d covered, want %d", r, res.Covered, m)
			}
			if res.Passes != 2*(r-1)+1 {
				t.Fatalf("r=%d: consumed %d passes, want %d", r, res.Passes, 2*(r-1)+1)
			}
			bound := (1+0.5)*math.Log(float64(m))*float64(kStar) + 1
			if float64(len(res.Sets)) > bound {
				t.Fatalf("r=%d: %d sets > (1+eps)ln(m)k* = %.1f", r, len(res.Sets), bound)
			}
		}
	}
}

func TestSetCoverMultiPassSpaceDecreasesWithPasses(t *testing.T) {
	n, m := 60, 4000
	inst := workload.PlantedSetCover(n, m, 6, 10, 7)
	var prevResidual int
	for i, r := range []int{1, 3} {
		res, err := SetCoverMultiPass(stream.Shuffled(inst.G, 3), n, m, r,
			Options{Eps: 0.5, Seed: 11, EdgeBudget: 40 * n})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			prevResidual = res.ResidualEdges
		} else if res.ResidualEdges > prevResidual {
			t.Fatalf("residual grew with more passes: %d -> %d", prevResidual, res.ResidualEdges)
		}
	}
}

func TestSetCoverMultiPassValidation(t *testing.T) {
	if _, err := SetCoverMultiPass(stream.NewSlice(nil), 0, 5, 2, Options{}); err == nil {
		t.Fatal("numSets=0 accepted")
	}
	if _, err := SetCoverMultiPass(stream.NewSlice(nil), 5, 0, 2, Options{}); err == nil {
		t.Fatal("numElems=0 accepted")
	}
	if _, err := SetCoverMultiPass(stream.NewSlice(nil), 5, 5, 0, Options{}); err == nil {
		t.Fatal("r=0 accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.eps() != 0.5 {
		t.Fatalf("default eps = %v", o.eps())
	}
	o.Eps = 2
	if o.eps() != 0.5 {
		t.Fatal("out-of-range eps not clamped")
	}
	o.Eps = 0.25
	if o.eps() != 0.25 {
		t.Fatal("valid eps overridden")
	}
}
