package bitset

import (
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("fresh bitset has %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("Set(%d) not visible", i)
		}
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("Clear(64) did not clear")
	}
	if !b.Get(63) || !b.Get(65) {
		t.Fatal("Clear(64) disturbed neighbors")
	}
}

func TestCountAndReset(t *testing.T) {
	b := New(200)
	for i := 0; i < 200; i += 3 {
		b.Set(i)
	}
	want := 0
	for i := 0; i < 200; i += 3 {
		want++
	}
	if b.Count() != want {
		t.Fatalf("Count = %d, want %d", b.Count(), want)
	}
	b.Reset()
	if b.Count() != 0 || b.Any() {
		t.Fatal("Reset left members")
	}
}

func TestCapacityAndWords(t *testing.T) {
	b := New(65)
	if b.Words() != 2 || b.Capacity() != 128 {
		t.Fatalf("Words=%d Capacity=%d", b.Words(), b.Capacity())
	}
	if New(0).Words() != 0 {
		t.Fatal("New(0) should have no words")
	}
}

// refModel mirrors bitset operations with maps for property checks.
func refSet(xs []uint16, n int) (Bitset, map[int]bool) {
	b := New(n)
	m := map[int]bool{}
	for _, x := range xs {
		i := int(x) % n
		b.Set(i)
		m[i] = true
	}
	return b, m
}

func TestOrAndAndNotAgainstModel(t *testing.T) {
	const n = 300
	err := quick.Check(func(xs, ys []uint16) bool {
		a, ma := refSet(xs, n)
		b, mb := refSet(ys, n)

		or := a.Clone()
		or.Or(b)
		and := a.Clone()
		and.And(b)
		andNot := a.Clone()
		andNot.AndNot(b)

		for i := 0; i < n; i++ {
			if or.Get(i) != (ma[i] || mb[i]) {
				return false
			}
			if and.Get(i) != (ma[i] && mb[i]) {
				return false
			}
			if andNot.Get(i) != (ma[i] && !mb[i]) {
				return false
			}
		}
		// Count-only variants agree with materialized results.
		if a.OrCount(b) != or.Count() {
			return false
		}
		cnt := 0
		for i := 0; i < n; i++ {
			if mb[i] && !ma[i] {
				cnt++
			}
		}
		return a.AndNotCount(b) == cnt
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Get(6) {
		t.Fatal("Clone aliases original")
	}
	if !c.Get(5) {
		t.Fatal("Clone lost members")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(128)
	a.Set(100)
	b := New(128)
	b.Set(3)
	b.CopyFrom(a)
	if b.Get(3) || !b.Get(100) {
		t.Fatal("CopyFrom incorrect")
	}
}

func TestEqualAndSubset(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(10)
	a.Set(20)
	b.Set(10)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	if !b.IsSubsetOf(a) {
		t.Fatal("{10} should be subset of {10,20}")
	}
	if a.IsSubsetOf(b) {
		t.Fatal("{10,20} is not subset of {10}")
	}
	b.Set(20)
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	if a.Equal(New(164)) {
		t.Fatal("different capacities reported equal")
	}
}

func TestIterOnesAndOnes(t *testing.T) {
	b := New(200)
	want := []int{0, 63, 64, 65, 150, 199}
	for _, i := range want {
		b.Set(i)
	}
	got := b.Ones()
	if len(got) != len(want) {
		t.Fatalf("Ones = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ones = %v, want %v", got, want)
		}
	}
	// Early stop.
	visited := 0
	b.IterOnes(func(i int) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("IterOnes early stop visited %d", visited)
	}
}

func TestAny(t *testing.T) {
	b := New(64)
	if b.Any() {
		t.Fatal("empty set Any() = true")
	}
	b.Set(63)
	if !b.Any() {
		t.Fatal("non-empty set Any() = false")
	}
}

func TestUnionCountAgainstModel(t *testing.T) {
	const n = 300
	err := quick.Check(func(xs, ys []uint16) bool {
		a, ma := refSet(xs, n)
		b, mb := refSet(ys, n)

		added := 0
		for i := 0; i < n; i++ {
			if mb[i] && !ma[i] {
				added++
			}
		}
		got := a.UnionCount(b)
		if got != added {
			return false
		}
		// a is now the union; b is untouched.
		for i := 0; i < n; i++ {
			if a.Get(i) != (ma[i] || mb[i]) || b.Get(i) != mb[i] {
				return false
			}
		}
		// A second union adds nothing.
		return a.UnionCount(b) == 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
