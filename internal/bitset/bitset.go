// Package bitset implements a dense, fixed-capacity bitset used by the
// exact solvers and the greedy reference implementations. The
// representation is a plain []uint64 so that values can be embedded,
// copied with copy(), and compared cheaply.
package bitset

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers. The
// capacity is fixed at construction; operations never grow the slice.
type Bitset []uint64

// New returns a bitset able to hold values in [0, n).
func New(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// Words returns the number of 64-bit words backing the set.
func (b Bitset) Words() int { return len(b) }

// Capacity returns the number of representable values.
func (b Bitset) Capacity() int { return len(b) * 64 }

// Set inserts i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Clear removes i.
func (b Bitset) Clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// Get reports whether i is present.
func (b Bitset) Get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// Reset removes every member.
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Count returns the number of members.
func (b Bitset) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy of b.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// CopyFrom overwrites b with src. The two sets must have equal capacity.
func (b Bitset) CopyFrom(src Bitset) { copy(b, src) }

// Or sets b to b ∪ other.
func (b Bitset) Or(other Bitset) {
	for i, w := range other {
		b[i] |= w
	}
}

// And sets b to b ∩ other.
func (b Bitset) And(other Bitset) {
	for i, w := range other {
		b[i] &= w
	}
}

// AndNot sets b to b \ other.
func (b Bitset) AndNot(other Bitset) {
	for i, w := range other {
		b[i] &^= w
	}
}

// OrCount returns |b ∪ other| without modifying either set.
func (b Bitset) OrCount(other Bitset) int {
	c := 0
	for i, w := range other {
		c += bits.OnesCount64(b[i] | w)
	}
	return c
}

// AndNotCount returns |other \ b|: the number of members of other that are
// not in b. This is the marginal-gain primitive of greedy algorithms.
func (b Bitset) AndNotCount(other Bitset) int {
	c := 0
	for i, w := range other {
		c += bits.OnesCount64(w &^ b[i])
	}
	return c
}

// UnionCount sets b to b ∪ other and returns the number of members newly
// added — the fused accept step of greedy algorithms (AndNotCount of the
// pick followed by Or, in one pass).
func (b Bitset) UnionCount(other Bitset) int {
	c := 0
	for i, w := range other {
		nw := w &^ b[i]
		if nw != 0 {
			c += bits.OnesCount64(nw)
			b[i] |= w
		}
	}
	return c
}

// Equal reports whether b and other contain the same members.
func (b Bitset) Equal(other Bitset) bool {
	if len(b) != len(other) {
		return false
	}
	for i, w := range other {
		if b[i] != w {
			return false
		}
	}
	return true
}

// IsSubsetOf reports whether every member of b is a member of other.
func (b Bitset) IsSubsetOf(other Bitset) bool {
	for i, w := range b {
		if w&^other[i] != 0 {
			return false
		}
	}
	return true
}

// Any reports whether the set is non-empty.
func (b Bitset) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// IterOnes calls fn for every member in increasing order. If fn returns
// false, iteration stops.
func (b Bitset) IterOnes(fn func(i int) bool) {
	for wi, w := range b {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// Ones returns the members in increasing order.
func (b Bitset) Ones() []int {
	out := make([]int, 0, b.Count())
	b.IterOnes(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}
