package stream

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/bipartite"
)

// TextStream parses the text edge-list format ("c n m" header optional,
// then "set elem" lines) lazily from an io.Reader — true edge-at-a-time
// streaming without materializing the instance. If the reader is an
// io.ReadSeeker the stream is resettable, enabling the multi-pass
// algorithms directly on a file.
type TextStream struct {
	r       io.Reader
	seeker  io.ReadSeeker
	scanner *bufio.Scanner
	line    int
	err     error

	// Header dimensions, when a "c n m" line was present (else zero).
	NumSets  int
	NumElems int
}

// NewTextStream wraps r. Parse errors surface through Err after the
// stream ends (Next returns ok=false on malformed input).
func NewTextStream(r io.Reader) *TextStream {
	ts := &TextStream{r: r}
	if s, ok := r.(io.ReadSeeker); ok {
		ts.seeker = s
	}
	ts.start()
	return ts
}

func (ts *TextStream) start() {
	ts.scanner = bufio.NewScanner(ts.r)
	ts.scanner.Buffer(make([]byte, 1<<16), 1<<24)
	ts.line = 0
}

// Err returns the first parse or I/O error encountered, if any.
func (ts *TextStream) Err() error { return ts.err }

// Next implements Stream. Malformed lines stop the stream and set Err.
func (ts *TextStream) Next() (bipartite.Edge, bool) {
	if ts.err != nil {
		return bipartite.Edge{}, false
	}
	for ts.scanner.Scan() {
		ts.line++
		text := strings.TrimSpace(ts.scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "c" {
			if len(fields) != 3 {
				ts.err = fmt.Errorf("stream: line %d: header needs 'c n m'", ts.line)
				return bipartite.Edge{}, false
			}
			n, err1 := parseUint32(fields[1])
			m, err2 := parseUint32(fields[2])
			if err1 != nil || err2 != nil {
				ts.err = fmt.Errorf("stream: line %d: bad header", ts.line)
				return bipartite.Edge{}, false
			}
			ts.NumSets, ts.NumElems = int(n), int(m)
			continue
		}
		if len(fields) != 2 {
			ts.err = fmt.Errorf("stream: line %d: expected 'set elem'", ts.line)
			return bipartite.Edge{}, false
		}
		s, err1 := parseUint32(fields[0])
		e, err2 := parseUint32(fields[1])
		if err1 != nil || err2 != nil {
			ts.err = fmt.Errorf("stream: line %d: bad edge %q", ts.line, text)
			return bipartite.Edge{}, false
		}
		return bipartite.Edge{Set: s, Elem: e}, true
	}
	if err := ts.scanner.Err(); err != nil {
		ts.err = err
	}
	return bipartite.Edge{}, false
}

// Reset implements Resettable when the underlying reader can seek; it
// panics otherwise (check CanReset first).
func (ts *TextStream) Reset() {
	if ts.seeker == nil {
		panic("stream: TextStream over a non-seekable reader cannot Reset")
	}
	if _, err := ts.seeker.Seek(0, io.SeekStart); err != nil {
		ts.err = err
		return
	}
	ts.err = nil
	ts.start()
}

// CanReset reports whether Reset is available.
func (ts *TextStream) CanReset() bool { return ts.seeker != nil }

// parseUint32 is a minimal, allocation-free decimal parser.
func parseUint32(s string) (uint32, error) {
	if len(s) == 0 {
		return 0, fmt.Errorf("empty number")
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digit %q", c)
		}
		v = v*10 + uint64(c-'0')
		if v > 1<<32-1 {
			return 0, fmt.Errorf("overflow")
		}
	}
	return uint32(v), nil
}
