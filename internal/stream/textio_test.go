package stream

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bipartite"
)

func TestTextStreamParsesEdges(t *testing.T) {
	in := "# comment\nc 3 5\n0 1\n1 2\n\n2 4\n"
	ts := NewTextStream(strings.NewReader(in))
	edges := Drain(ts)
	if ts.Err() != nil {
		t.Fatal(ts.Err())
	}
	want := []bipartite.Edge{{Set: 0, Elem: 1}, {Set: 1, Elem: 2}, {Set: 2, Elem: 4}}
	if len(edges) != len(want) {
		t.Fatalf("parsed %d edges", len(edges))
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
	if ts.NumSets != 3 || ts.NumElems != 5 {
		t.Fatalf("header not captured: n=%d m=%d", ts.NumSets, ts.NumElems)
	}
}

func TestTextStreamNoHeader(t *testing.T) {
	ts := NewTextStream(strings.NewReader("1 2\n3 4\n"))
	edges := Drain(ts)
	if len(edges) != 2 || ts.Err() != nil {
		t.Fatalf("edges=%d err=%v", len(edges), ts.Err())
	}
	if ts.NumSets != 0 {
		t.Fatal("phantom header")
	}
}

func TestTextStreamMalformed(t *testing.T) {
	cases := []string{
		"c 1\n",
		"c a b\n",
		"0\n",
		"x 1\n",
		"1 y\n",
		"1 99999999999\n",
	}
	for _, in := range cases {
		ts := NewTextStream(strings.NewReader(in))
		if _, ok := ts.Next(); ok {
			t.Fatalf("input %q yielded an edge", in)
		}
		if ts.Err() == nil {
			t.Fatalf("input %q produced no error", in)
		}
		// Stream stays stopped after an error.
		if _, ok := ts.Next(); ok {
			t.Fatal("stream continued after error")
		}
	}
}

func TestTextStreamResetWithSeeker(t *testing.T) {
	in := "0 0\n1 1\n"
	r := bytes.NewReader([]byte(in))
	ts := NewTextStream(r)
	if !ts.CanReset() {
		t.Fatal("bytes.Reader should be seekable")
	}
	first := Drain(ts)
	ts.Reset()
	second := Drain(ts)
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("passes delivered %d and %d edges", len(first), len(second))
	}
}

// nonSeeker hides the Seek method of an underlying reader.
type nonSeeker struct{ r *strings.Reader }

func (n nonSeeker) Read(p []byte) (int, error) { return n.r.Read(p) }

func TestTextStreamResetPanicsWithoutSeeker(t *testing.T) {
	ts := NewTextStream(nonSeeker{strings.NewReader("0 0\n")})
	if ts.CanReset() {
		t.Fatal("non-seekable reader reported resettable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reset on non-seekable did not panic")
		}
	}()
	ts.Reset()
}

func TestTextStreamRoundTripWithWriter(t *testing.T) {
	// bipartite.WriteText output must stream back identically.
	g := bipartite.MustFromEdges(4, 6, []bipartite.Edge{
		{Set: 0, Elem: 5}, {Set: 1, Elem: 0}, {Set: 3, Elem: 2},
	})
	var buf bytes.Buffer
	if err := bipartite.WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	ts := NewTextStream(bytes.NewReader(buf.Bytes()))
	edges := Drain(ts)
	if ts.Err() != nil {
		t.Fatal(ts.Err())
	}
	g2, err := bipartite.FromEdges(ts.NumSets, ts.NumElems, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumSets() != g.NumSets() {
		t.Fatal("round trip changed instance")
	}
}

func TestParseUint32(t *testing.T) {
	good := map[string]uint32{"0": 0, "7": 7, "4294967295": 1<<32 - 1}
	for s, want := range good {
		got, err := parseUint32(s)
		if err != nil || got != want {
			t.Fatalf("parseUint32(%q) = %d, %v", s, got, err)
		}
	}
	for _, s := range []string{"", "-1", "x", "4294967296"} {
		if _, err := parseUint32(s); err == nil {
			t.Fatalf("parseUint32(%q) accepted", s)
		}
	}
}
