// Package stream provides the edge-arrival streaming substrate: streams of
// (set, element) membership edges in arbitrary order, resettable streams
// for multi-pass algorithms, instrumented wrappers that count traffic, and
// a set-arrival adapter for the prior-work baselines that require whole
// sets (the model this paper improves on).
package stream

import (
	"repro/internal/bipartite"
	"repro/internal/hashing"
)

// Stream yields edges one at a time, in the order chosen by the producer.
// Next returns ok=false after the final edge.
type Stream interface {
	Next() (e bipartite.Edge, ok bool)
}

// Resettable is a stream that can be replayed from the beginning; required
// by the multi-pass set-cover algorithm (Algorithm 6). Implementations
// must yield the same edge multiset on every pass (the order may differ
// between passes, matching the adversarial model).
type Resettable interface {
	Stream
	Reset()
}

// Sized is implemented by streams whose total edge count is known.
type Sized interface {
	Len() int
}

// Slice is a Resettable stream over a fixed edge slice.
type Slice struct {
	edges []bipartite.Edge
	pos   int
}

// NewSlice returns a stream over edges; the slice is not copied.
func NewSlice(edges []bipartite.Edge) *Slice {
	return &Slice{edges: edges}
}

// Next implements Stream.
func (s *Slice) Next() (bipartite.Edge, bool) {
	if s.pos >= len(s.edges) {
		return bipartite.Edge{}, false
	}
	e := s.edges[s.pos]
	s.pos++
	return e, true
}

// Reset implements Resettable.
func (s *Slice) Reset() { s.pos = 0 }

// Len implements Sized.
func (s *Slice) Len() int { return len(s.edges) }

// Shuffled materializes the edges of g in a pseudo-random order determined
// by seed and returns a Resettable stream over them. This is the standard
// way experiments present a graph in the edge-arrival model.
func Shuffled(g *bipartite.Graph, seed uint64) *Slice {
	edges := g.Edges(nil)
	rng := hashing.NewRNG(seed)
	rng.Shuffle(len(edges), func(i, j int) {
		edges[i], edges[j] = edges[j], edges[i]
	})
	return NewSlice(edges)
}

// BySet returns a Resettable stream that emits the edges of g grouped by
// set, with the set order permuted by seed. This realizes the set-arrival
// order as a special case of edge arrival.
func BySet(g *bipartite.Graph, seed uint64) *Slice {
	rng := hashing.NewRNG(seed)
	order := rng.Perm(g.NumSets())
	edges := make([]bipartite.Edge, 0, g.NumEdges())
	for _, s := range order {
		for _, e := range g.Set(s) {
			edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: e})
		}
	}
	return NewSlice(edges)
}

// Adversarial returns a Resettable stream ordered to stress sampling
// algorithms: edges are sorted so that all edges of high-degree elements
// arrive first, which maximizes churn in bounded-memory sketches.
func Adversarial(g *bipartite.Graph) *Slice {
	type ed struct {
		deg int
		e   bipartite.Edge
	}
	tmp := make([]ed, 0, g.NumEdges())
	for s := 0; s < g.NumSets(); s++ {
		for _, e := range g.Set(s) {
			tmp = append(tmp, ed{deg: g.ElemDegree(int(e)), e: bipartite.Edge{Set: uint32(s), Elem: e}})
		}
	}
	// Simple stable ordering: descending element degree, then element id,
	// then set id. Insertion into buckets by degree keeps it O(E + maxDeg).
	maxDeg := 0
	for _, t := range tmp {
		if t.deg > maxDeg {
			maxDeg = t.deg
		}
	}
	buckets := make([][]bipartite.Edge, maxDeg+1)
	for _, t := range tmp {
		buckets[t.deg] = append(buckets[t.deg], t.e)
	}
	edges := make([]bipartite.Edge, 0, len(tmp))
	for d := maxDeg; d >= 0; d-- {
		edges = append(edges, buckets[d]...)
	}
	return NewSlice(edges)
}

// Counter wraps a stream and counts the edges delivered; used for
// verifying single-pass claims and for reporting stream sizes.
type Counter struct {
	inner Stream
	seen  int64
}

// NewCounter wraps inner.
func NewCounter(inner Stream) *Counter { return &Counter{inner: inner} }

// Next implements Stream.
func (c *Counter) Next() (bipartite.Edge, bool) {
	e, ok := c.inner.Next()
	if ok {
		c.seen++
	}
	return e, ok
}

// Seen returns the number of edges delivered so far.
func (c *Counter) Seen() int64 { return c.seen }

// Reset implements Resettable when the inner stream does; it panics
// otherwise. The edge count accumulates across passes.
func (c *Counter) Reset() {
	r, ok := c.inner.(Resettable)
	if !ok {
		panic("stream: Reset on non-resettable inner stream")
	}
	r.Reset()
}

// Limit wraps a stream and stops after max edges; used in failure
// injection tests (truncated streams).
type Limit struct {
	inner Stream
	left  int
}

// NewLimit wraps inner, delivering at most max edges.
func NewLimit(inner Stream, max int) *Limit { return &Limit{inner: inner, left: max} }

// Next implements Stream.
func (l *Limit) Next() (bipartite.Edge, bool) {
	if l.left <= 0 {
		return bipartite.Edge{}, false
	}
	e, ok := l.inner.Next()
	if ok {
		l.left--
	}
	return e, ok
}

// Concat chains streams back to back.
type Concat struct {
	streams []Stream
	idx     int
}

// NewConcat returns a stream that yields all edges of each input in turn.
func NewConcat(streams ...Stream) *Concat { return &Concat{streams: streams} }

// Next implements Stream.
func (c *Concat) Next() (bipartite.Edge, bool) {
	for c.idx < len(c.streams) {
		if e, ok := c.streams[c.idx].Next(); ok {
			return e, true
		}
		c.idx++
	}
	return bipartite.Edge{}, false
}

// Func adapts a closure to the Stream interface.
type Func func() (bipartite.Edge, bool)

// Next implements Stream.
func (f Func) Next() (bipartite.Edge, bool) { return f() }

// Drain consumes the stream and returns all edges; test helper.
func Drain(s Stream) []bipartite.Edge {
	var out []bipartite.Edge
	for {
		e, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}
