package stream

import (
	"sort"
	"testing"

	"repro/internal/bipartite"
)

func edgeKey(e bipartite.Edge) uint64 { return uint64(e.Set)<<32 | uint64(e.Elem) }

func multiset(edges []bipartite.Edge) map[uint64]int {
	m := map[uint64]int{}
	for _, e := range edges {
		m[edgeKey(e)]++
	}
	return m
}

func sameMultiset(a, b []bipartite.Edge) bool {
	ma, mb := multiset(a), multiset(b)
	if len(ma) != len(mb) {
		return false
	}
	for k, v := range ma {
		if mb[k] != v {
			return false
		}
	}
	return true
}

func testGraph(t *testing.T) *bipartite.Graph {
	t.Helper()
	return bipartite.MustFromEdges(4, 6, []bipartite.Edge{
		{Set: 0, Elem: 0}, {Set: 0, Elem: 1},
		{Set: 1, Elem: 1}, {Set: 1, Elem: 2}, {Set: 1, Elem: 3},
		{Set: 2, Elem: 3}, {Set: 2, Elem: 4},
		{Set: 3, Elem: 5},
	})
}

func TestSliceNextAndReset(t *testing.T) {
	edges := []bipartite.Edge{{Set: 0, Elem: 1}, {Set: 1, Elem: 2}}
	s := NewSlice(edges)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := Drain(s)
	if !sameMultiset(got, edges) {
		t.Fatal("Drain lost edges")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted stream yielded edge")
	}
	s.Reset()
	if got2 := Drain(s); !sameMultiset(got2, edges) {
		t.Fatal("Reset did not replay")
	}
}

func TestShuffledPreservesMultiset(t *testing.T) {
	g := testGraph(t)
	st := Shuffled(g, 42)
	got := Drain(st)
	if !sameMultiset(got, g.Edges(nil)) {
		t.Fatal("Shuffled changed the edge multiset")
	}
}

func TestShuffledDeterministicBySeed(t *testing.T) {
	g := testGraph(t)
	a := Drain(Shuffled(g, 7))
	b := Drain(Shuffled(g, 7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different orders")
		}
	}
	c := Drain(Shuffled(g, 8))
	different := false
	for i := range a {
		if a[i] != c[i] {
			different = true
		}
	}
	if !different {
		t.Fatal("different seeds produced identical order (suspicious)")
	}
}

func TestBySetGroupsEdges(t *testing.T) {
	g := testGraph(t)
	st := BySet(g, 3)
	edges := Drain(st)
	if !sameMultiset(edges, g.Edges(nil)) {
		t.Fatal("BySet changed the edge multiset")
	}
	// All edges of a set must be contiguous.
	seen := map[uint32]bool{}
	var cur uint32 = ^uint32(0)
	for _, e := range edges {
		if e.Set != cur {
			if seen[e.Set] {
				t.Fatalf("set %d appeared in two runs", e.Set)
			}
			seen[e.Set] = true
			cur = e.Set
		}
	}
}

func TestAdversarialOrdersByElementDegree(t *testing.T) {
	g := testGraph(t)
	edges := Drain(Adversarial(g))
	if !sameMultiset(edges, g.Edges(nil)) {
		t.Fatal("Adversarial changed the edge multiset")
	}
	for i := 1; i < len(edges); i++ {
		if g.ElemDegree(int(edges[i-1].Elem)) < g.ElemDegree(int(edges[i].Elem)) {
			t.Fatal("Adversarial not sorted by descending element degree")
		}
	}
}

func TestCounter(t *testing.T) {
	g := testGraph(t)
	c := NewCounter(Shuffled(g, 1))
	Drain(c)
	if c.Seen() != int64(g.NumEdges()) {
		t.Fatalf("Seen = %d, want %d", c.Seen(), g.NumEdges())
	}
	c.Reset()
	Drain(c)
	if c.Seen() != 2*int64(g.NumEdges()) {
		t.Fatalf("Seen after second pass = %d", c.Seen())
	}
}

func TestCounterResetPanicsOnNonResettable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reset on non-resettable stream did not panic")
		}
	}()
	c := NewCounter(Func(func() (bipartite.Edge, bool) { return bipartite.Edge{}, false }))
	c.Reset()
}

func TestLimit(t *testing.T) {
	g := testGraph(t)
	got := Drain(NewLimit(Shuffled(g, 1), 3))
	if len(got) != 3 {
		t.Fatalf("Limit delivered %d edges", len(got))
	}
	if got2 := Drain(NewLimit(Shuffled(g, 1), 100)); len(got2) != g.NumEdges() {
		t.Fatalf("generous Limit delivered %d edges", len(got2))
	}
}

func TestConcat(t *testing.T) {
	a := NewSlice([]bipartite.Edge{{Set: 0, Elem: 0}})
	b := NewSlice([]bipartite.Edge{{Set: 1, Elem: 1}, {Set: 2, Elem: 2}})
	got := Drain(NewConcat(a, b))
	if len(got) != 3 || got[0].Set != 0 || got[2].Set != 2 {
		t.Fatalf("Concat = %v", got)
	}
}

func TestGraphSetStream(t *testing.T) {
	g := testGraph(t)
	ss := NewGraphSetStream(g, 5)
	if ss.NumSets() != g.NumSets() {
		t.Fatalf("NumSets = %d", ss.NumSets())
	}
	ids, sets := CollectSets(ss)
	if len(ids) != g.NumSets() {
		t.Fatalf("collected %d sets", len(ids))
	}
	sortedIDs := append([]uint32(nil), ids...)
	sort.Slice(sortedIDs, func(i, j int) bool { return sortedIDs[i] < sortedIDs[j] })
	for i, id := range sortedIDs {
		if id != uint32(i) {
			t.Fatalf("ids not a permutation: %v", ids)
		}
	}
	for i, id := range ids {
		want := g.Set(int(id))
		if len(sets[i]) != len(want) {
			t.Fatalf("set %d has wrong elements", id)
		}
		for j := range want {
			if sets[i][j] != want[j] {
				t.Fatalf("set %d element mismatch", id)
			}
		}
	}
	// Resettable.
	ss.ResetSets()
	ids2, _ := CollectSets(ss)
	if len(ids2) != len(ids) {
		t.Fatal("ResetSets did not replay")
	}
}
