package stream

import (
	"repro/internal/bipartite"
	"repro/internal/hashing"
)

// SetStream is the set-arrival model assumed by most prior work: each call
// yields an entire set with all of its elements at once. The paper argues
// this model hides the cost of gathering a set's edges; we implement it
// only to run the prior-work baselines of Table 1.
type SetStream interface {
	// NextSet returns the next set id together with its full element
	// list. The returned slice is only valid until the following call.
	NextSet() (set uint32, elems []uint32, ok bool)
}

// ResettableSetStream is a SetStream that supports multiple passes.
type ResettableSetStream interface {
	SetStream
	ResetSets()
}

// GraphSetStream replays the sets of a graph in a seeded pseudo-random
// order.
type GraphSetStream struct {
	g     *bipartite.Graph
	order []int
	pos   int
}

// NewGraphSetStream returns a set-arrival view of g with set order
// permuted by seed.
func NewGraphSetStream(g *bipartite.Graph, seed uint64) *GraphSetStream {
	rng := hashing.NewRNG(seed)
	return &GraphSetStream{g: g, order: rng.Perm(g.NumSets())}
}

// NextSet implements SetStream.
func (s *GraphSetStream) NextSet() (uint32, []uint32, bool) {
	if s.pos >= len(s.order) {
		return 0, nil, false
	}
	set := s.order[s.pos]
	s.pos++
	return uint32(set), s.g.Set(set), true
}

// ResetSets implements ResettableSetStream.
func (s *GraphSetStream) ResetSets() { s.pos = 0 }

// NumSets returns the number of sets the stream will deliver per pass.
func (s *GraphSetStream) NumSets() int { return len(s.order) }

// CollectSets drains a SetStream into explicit (id, elems) pairs,
// copying element slices; test helper.
func CollectSets(ss SetStream) (ids []uint32, sets [][]uint32) {
	for {
		id, elems, ok := ss.NextSet()
		if !ok {
			return ids, sets
		}
		cp := make([]uint32, len(elems))
		copy(cp, elems)
		ids = append(ids, id)
		sets = append(sets, cp)
	}
}
