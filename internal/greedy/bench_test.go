package greedy

import (
	"testing"

	"repro/internal/workload"
)

// BenchmarkMaxCoverLazy measures the lazy greedy on a mid-size instance;
// this is the per-solve cost paid after the sketch is built.
func BenchmarkMaxCoverLazy(b *testing.B) {
	inst := workload.Zipf(2000, 50000, 5000, 0.9, 0.8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := MaxCover(inst.G, 50)
		if res.Covered == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkSetCoverGreedy measures a full greedy set cover.
func BenchmarkSetCoverGreedy(b *testing.B) {
	inst := workload.PlantedSetCover(1000, 20000, 40, 30, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := SetCover(inst.G)
		if res.Covered != inst.G.CoveredElems() {
			b.Fatal("incomplete cover")
		}
	}
}

// BenchmarkPartialCover measures the outlier variant at 90% coverage.
func BenchmarkPartialCover(b *testing.B) {
	inst := workload.Zipf(1000, 30000, 4000, 0.9, 0.8, 3)
	target := inst.G.CoveredElems() * 9 / 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PartialCover(inst.G, target)
	}
}
