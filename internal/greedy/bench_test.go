package greedy

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/workload"
)

// BenchmarkMaxCoverLazy measures the lazy greedy on a mid-size instance;
// this is the per-solve cost paid after the sketch is built.
func BenchmarkMaxCoverLazy(b *testing.B) {
	inst := workload.Zipf(2000, 50000, 5000, 0.9, 0.8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := MaxCover(inst.G, 50)
		if res.Covered == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkSetCoverGreedy measures a full greedy set cover.
func BenchmarkSetCoverGreedy(b *testing.B) {
	inst := workload.PlantedSetCover(1000, 20000, 40, 30, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := SetCover(inst.G)
		if res.Covered != inst.G.CoveredElems() {
			b.Fatal("incomplete cover")
		}
	}
}

// BenchmarkPartialCover measures the outlier variant at 90% coverage.
func BenchmarkPartialCover(b *testing.B) {
	inst := workload.Zipf(1000, 30000, 4000, 0.9, 0.8, 3)
	target := inst.G.CoveredElems() * 9 / 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PartialCover(inst.G, target)
	}
}

// BenchmarkMaxCoverStampDense / BenchmarkMaxCoverBitsetDense compare the
// two coverage engines head to head on the dense-degree regime of sketch
// snapshots (the query-plane hot path).
func BenchmarkMaxCoverStampDense(b *testing.B) {
	inst := workload.LargeSets(200, 4000, 0.3, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := BudgetedWith(inst.G, bipartite.NewCoverer(inst.G), func(picked, covered, gain int) bool {
			return picked < 10 && gain > 0
		})
		if res.Covered == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkMaxCoverBitsetDense(b *testing.B) {
	inst := workload.LargeSets(200, 4000, 0.3, 1)
	inst.G.BuildCoverIndex()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := BudgetedWith(inst.G, bipartite.NewBitsetCoverer(inst.G), func(picked, covered, gain int) bool {
			return picked < 10 && gain > 0
		})
		if res.Covered == 0 {
			b.Fatal("empty result")
		}
	}
}
