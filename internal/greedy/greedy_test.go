package greedy

import (
	"math"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/hashing"
)

func randomGraph(seed uint64, n, m int, density float64) *bipartite.Graph {
	rng := hashing.NewRNG(seed)
	var edges []bipartite.Edge
	for s := 0; s < n; s++ {
		for e := 0; e < m; e++ {
			if rng.Float64() < density {
				edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(e)})
			}
		}
	}
	return bipartite.MustFromEdges(n, m, edges)
}

// naiveMaxCover is the textbook O(nk) greedy used as a reference for the
// lazy implementation.
func naiveMaxCover(g *bipartite.Graph, k int) ([]int, int) {
	cov := bipartite.NewCoverer(g)
	var picks []int
	for len(picks) < k {
		best, bestGain := -1, 0
		for s := 0; s < g.NumSets(); s++ {
			if gain := cov.Marginal(s); gain > bestGain {
				best, bestGain = s, gain
			}
		}
		if best < 0 {
			break
		}
		cov.Add(best)
		picks = append(picks, best)
	}
	return picks, cov.Covered()
}

func TestMaxCoverMatchesNaiveCoverage(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g := randomGraph(seed, 15, 60, 0.12)
		for _, k := range []int{1, 3, 7} {
			lazy := MaxCover(g, k)
			_, naiveCov := naiveMaxCover(g, k)
			// Tie-breaking may differ, but greedy coverage value is
			// determined by the gain sequence, which is identical.
			if lazy.Covered != naiveCov {
				t.Fatalf("seed=%d k=%d: lazy %d != naive %d", seed, k, lazy.Covered, naiveCov)
			}
		}
	}
}

func TestMaxCoverGainsNonIncreasing(t *testing.T) {
	g := randomGraph(3, 20, 100, 0.1)
	res := MaxCover(g, 10)
	for i := 1; i < len(res.Gains); i++ {
		if res.Gains[i] > res.Gains[i-1] {
			t.Fatalf("gains increased: %v", res.Gains)
		}
	}
	sum := 0
	for _, gn := range res.Gains {
		sum += gn
	}
	if sum != res.Covered {
		t.Fatalf("gains sum %d != covered %d", sum, res.Covered)
	}
}

func TestMaxCoverRespectsK(t *testing.T) {
	g := randomGraph(5, 12, 50, 0.2)
	res := MaxCover(g, 4)
	if len(res.Sets) > 4 {
		t.Fatalf("picked %d sets", len(res.Sets))
	}
	if got := g.Coverage(res.Sets); got != res.Covered {
		t.Fatalf("reported %d, actual %d", res.Covered, got)
	}
}

func TestMaxCoverSkipsZeroGain(t *testing.T) {
	// Two identical sets: the second adds nothing and must be skipped.
	g := bipartite.MustFromEdges(3, 3, []bipartite.Edge{
		{Set: 0, Elem: 0}, {Set: 0, Elem: 1},
		{Set: 1, Elem: 0}, {Set: 1, Elem: 1},
		{Set: 2, Elem: 2},
	})
	res := MaxCover(g, 3)
	if len(res.Sets) != 2 {
		t.Fatalf("picked %v, want 2 sets", res.Sets)
	}
	if res.Covered != 3 {
		t.Fatalf("covered %d", res.Covered)
	}
}

func TestMaxCoverOnEmptyGraph(t *testing.T) {
	g := bipartite.MustFromEdges(4, 4, nil)
	res := MaxCover(g, 2)
	if len(res.Sets) != 0 || res.Covered != 0 {
		t.Fatal("empty graph should yield empty result")
	}
}

func TestMaxCoverApproximationOnPartition(t *testing.T) {
	// Greedy is optimal when the best sets are disjoint.
	var edges []bipartite.Edge
	for s := 0; s < 5; s++ {
		for e := 0; e < 10; e++ {
			edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(s*10 + e)})
		}
	}
	// Decoy overlapping sets.
	for s := 5; s < 10; s++ {
		for e := 0; e < 5; e++ {
			edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(e)})
		}
	}
	g := bipartite.MustFromEdges(10, 50, edges)
	res := MaxCover(g, 5)
	if res.Covered != 50 {
		t.Fatalf("greedy covered %d of 50 on a partition", res.Covered)
	}
}

func TestSetCoverCoversEverything(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := randomGraph(seed, 20, 80, 0.1)
		res := SetCover(g)
		if res.Covered != g.CoveredElems() {
			t.Fatalf("seed=%d: covered %d of %d", seed, res.Covered, g.CoveredElems())
		}
		if got := g.Coverage(res.Sets); got != res.Covered {
			t.Fatalf("reported %d != actual %d", res.Covered, got)
		}
	}
}

func TestSetCoverLnMGuarantee(t *testing.T) {
	// On a partition instance with k* = 5 planted sets, greedy must stay
	// within ln(m)+1 of optimal.
	var edges []bipartite.Edge
	m := 100
	for e := 0; e < m; e++ {
		edges = append(edges, bipartite.Edge{Set: uint32(e % 5), Elem: uint32(e)})
	}
	// noisy small sets
	for s := 5; s < 30; s++ {
		for e := 0; e < 6; e++ {
			edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32((s*7 + e*13) % m)})
		}
	}
	g := bipartite.MustFromEdges(30, m, edges)
	res := SetCover(g)
	bound := float64(5) * (math.Log(float64(m)) + 1)
	if float64(len(res.Sets)) > bound {
		t.Fatalf("greedy used %d sets, bound %.1f", len(res.Sets), bound)
	}
}

func TestPartialCoverStopsAtTarget(t *testing.T) {
	g := randomGraph(11, 25, 100, 0.08)
	target := g.CoveredElems() * 3 / 4
	res := PartialCover(g, target)
	if res.Covered < target {
		full := SetCover(g)
		if res.Covered < full.Covered { // only fail if more was reachable
			t.Fatalf("partial covered %d < target %d (reachable %d)", res.Covered, target, full.Covered)
		}
	}
	// Should generally use fewer sets than a full cover.
	full := SetCover(g)
	if len(res.Sets) > len(full.Sets) {
		t.Fatalf("partial used more sets (%d) than full cover (%d)", len(res.Sets), len(full.Sets))
	}
}

func TestBudgetedCustomStop(t *testing.T) {
	g := randomGraph(13, 20, 80, 0.1)
	res := Budgeted(g, func(picked, covered, gain int) bool {
		return gain >= 5 // stop once marginal gains drop below 5
	})
	for _, gn := range res.Gains {
		if gn < 5 {
			t.Fatalf("picked a set with gain %d < 5", gn)
		}
	}
}

func TestCoverageOf(t *testing.T) {
	g := randomGraph(17, 10, 40, 0.15)
	sets := []int{0, 3, 7}
	if CoverageOf(g, sets) != g.Coverage(sets) {
		t.Fatal("CoverageOf disagrees with graph coverage")
	}
}
