// Package greedy implements the offline approximation algorithms the
// paper's streaming algorithms run on top of their sketch: the classical
// greedy for maximum coverage (1 − 1/e, Nemhauser–Wolsey–Fisher [40]) and
// for (partial) set cover (ln m, and C(Greedy(k·ln(1/λ))) ≥ (1−λ)·Opt_k).
//
// All entry points use the lazy-greedy (accelerated greedy) evaluation
// order: cached marginal gains are kept in a max-heap and only the top
// candidate is re-evaluated, which is valid because coverage is submodular
// so marginals only shrink.
package greedy

import (
	"container/heap"

	"repro/internal/bipartite"
)

// Result reports a greedy run.
type Result struct {
	// Sets are the chosen set ids in pick order.
	Sets []int
	// Covered is the number of distinct elements covered by Sets.
	Covered int
	// Gains[i] is the marginal gain of the i-th pick; non-increasing.
	Gains []int
}

// candidate is a heap entry: a set with its cached (stale) marginal gain.
type candidate struct {
	set  int
	gain int
}

type candHeap []candidate

func (h candHeap) Len() int { return len(h) }

// Less orders by gain descending, breaking ties by smaller set id so the
// algorithm is fully deterministic (it picks the same solution as the
// textbook scan-all greedy that keeps the first maximum).
func (h candHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].set < h[j].set
}
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// MaxCover picks at most k sets of g greedily, maximizing coverage. It is
// the 1−1/e approximation of [40]. Picks with zero marginal gain are
// skipped, so len(Result.Sets) can be < k when fewer sets suffice to cover
// everything reachable.
func MaxCover(g *bipartite.Graph, k int) Result {
	return run(g, func(picked, covered, gain int) bool {
		return picked < k && gain > 0
	})
}

// SetCover picks sets greedily until every non-isolated element is
// covered; the classical ln(m)+1 approximation.
func SetCover(g *bipartite.Graph) Result {
	target := g.CoveredElems()
	return run(g, func(picked, covered, gain int) bool {
		return covered < target && gain > 0
	})
}

// PartialCover picks sets greedily until at least targetCovered elements
// are covered (or no set adds coverage). With targetCovered = (1−λ)·m this
// is the set-cover-with-outliers greedy whose solution size is at most
// ln(1/λ)·k* (used by Algorithm 4 with k = k′·ln(1/λ′)).
func PartialCover(g *bipartite.Graph, targetCovered int) Result {
	return run(g, func(picked, covered, gain int) bool {
		return covered < targetCovered && gain > 0
	})
}

// Budgeted runs greedy until cont returns false. cont is consulted before
// each pick with the current number of picks, covered elements, and the
// best available marginal gain.
func Budgeted(g *bipartite.Graph, cont func(picked, covered, gain int) bool) Result {
	return run(g, cont)
}

func run(g *bipartite.Graph, cont func(picked, covered, gain int) bool) Result {
	n := g.NumSets()
	cov := bipartite.NewCoverer(g)
	h := make(candHeap, 0, n)
	for s := 0; s < n; s++ {
		if l := g.SetLen(s); l > 0 {
			h = append(h, candidate{set: s, gain: l})
		}
	}
	heap.Init(&h)

	res := Result{}
	for h.Len() > 0 {
		top := h[0]
		// Refresh the cached gain; if it is still at least the runner-up's
		// cached gain it is the true maximum (submodularity).
		fresh := cov.Marginal(top.set)
		if fresh != top.gain {
			if fresh <= 0 {
				heap.Pop(&h)
				continue
			}
			h[0].gain = fresh
			heap.Fix(&h, 0)
			continue
		}
		if !cont(len(res.Sets), cov.Covered(), fresh) {
			break
		}
		heap.Pop(&h)
		cov.Add(top.set)
		res.Sets = append(res.Sets, top.set)
		res.Gains = append(res.Gains, fresh)
	}
	res.Covered = cov.Covered()
	return res
}

// CoverageOf evaluates C(sets) on g; convenience re-export for callers
// that already depend on this package.
func CoverageOf(g *bipartite.Graph, sets []int) int {
	return g.Coverage(sets)
}
