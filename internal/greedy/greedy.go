// Package greedy implements the offline approximation algorithms the
// paper's streaming algorithms run on top of their sketch: the classical
// greedy for maximum coverage (1 − 1/e, Nemhauser–Wolsey–Fisher [40]) and
// for (partial) set cover (ln m, and C(Greedy(k·ln(1/λ))) ≥ (1−λ)·Opt_k).
//
// All entry points use the lazy-greedy (accelerated greedy) evaluation
// order: cached marginal gains are kept in a max-heap and only the top
// candidate is re-evaluated, which is valid because coverage is submodular
// so marginals only shrink.
//
// Marginals come from a bipartite.CoverageEvaluator: on dense instances
// (sketch snapshots in particular) that is the bitset popcount engine,
// otherwise the stamp-array scan — the two produce identical integer
// gains, so the picked solution is bit-identical either way (pinned by
// the equivalence property tests in this package).
package greedy

import (
	"repro/internal/bipartite"
)

// Result reports a greedy run.
type Result struct {
	// Sets are the chosen set ids in pick order.
	Sets []int
	// Covered is the number of distinct elements covered by Sets.
	Covered int
	// Gains[i] is the marginal gain of the i-th pick; non-increasing.
	Gains []int
}

// candidate is a heap entry: a set with its cached (stale) marginal
// gain, packed into one word so the heap orders with a single integer
// compare — gain in the high 32 bits (descending) and the complemented
// set id in the low 32 (so equal gains break toward the smaller id).
// The order is a strict total order — distinct sets give distinct keys —
// so the maximum is unique and the algorithm is fully deterministic: it
// picks the same solution as the textbook scan-all greedy that keeps
// the first maximum.
type candidate uint64

func packCand(set, gain int) candidate {
	return candidate(uint64(uint32(gain))<<32 | uint64(^uint32(set)))
}

func (c candidate) set() int  { return int(^uint32(c)) }
func (c candidate) gain() int { return int(uint32(c >> 32)) }

// candHeap is a hand-rolled max-heap of packed candidates (no
// container/heap: the interface indirection costs more than the sift
// loops on the query hot path).
type candHeap []candidate

func (h candHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && h[l] > h[best] {
			best = l
		}
		if r < len(h) && h[r] > h[best] {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// init establishes the heap property over arbitrary contents.
func (h candHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// popTop removes the maximum (h[0]) and returns the shrunk heap.
func (h candHeap) popTop() candHeap {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	h.siftDown(0)
	return h
}

// MaxCover picks at most k sets of g greedily, maximizing coverage. It is
// the 1−1/e approximation of [40]. Picks with zero marginal gain are
// skipped, so len(Result.Sets) can be < k when fewer sets suffice to cover
// everything reachable.
func MaxCover(g *bipartite.Graph, k int) Result {
	return run(g, func(picked, covered, gain int) bool {
		return picked < k && gain > 0
	})
}

// SetCover picks sets greedily until every non-isolated element is
// covered; the classical ln(m)+1 approximation.
func SetCover(g *bipartite.Graph) Result {
	target := g.CoveredElems()
	return run(g, func(picked, covered, gain int) bool {
		return covered < target && gain > 0
	})
}

// PartialCover picks sets greedily until at least targetCovered elements
// are covered (or no set adds coverage). With targetCovered = (1−λ)·m this
// is the set-cover-with-outliers greedy whose solution size is at most
// ln(1/λ)·k* (used by Algorithm 4 with k = k′·ln(1/λ′)).
func PartialCover(g *bipartite.Graph, targetCovered int) Result {
	return run(g, func(picked, covered, gain int) bool {
		return covered < targetCovered && gain > 0
	})
}

// Budgeted runs greedy until cont returns false. cont is consulted before
// each pick with the current number of picks, covered elements, and the
// best available marginal gain.
func Budgeted(g *bipartite.Graph, cont func(picked, covered, gain int) bool) Result {
	return run(g, cont)
}

// BudgetedWith is Budgeted over an explicit coverage evaluator instead
// of the one g.NewEvaluator picks. The equivalence property tests and
// the query-plane benchmarks use it to compare the stamp and bitset
// engines on identical instances; the Result is the same either way.
func BudgetedWith(g *bipartite.Graph, cov bipartite.CoverageEvaluator, cont func(picked, covered, gain int) bool) Result {
	return runWith(g, cov, cont)
}

// run picks the coverage evaluator for g (bitset-backed on dense
// instances such as sketch snapshots, epoch-stamped otherwise) and runs
// lazy greedy on it.
func run(g *bipartite.Graph, cont func(picked, covered, gain int) bool) Result {
	return runWith(g, g.NewEvaluator(), cont)
}

// runWith dispatches to a concrete-typed instantiation of the greedy
// loop when the evaluator is one of the two known engines, so the
// per-marginal method calls devirtualize and inline — on a snapshot
// graph the bitset marginal is a handful of popcounts, and the dynamic
// dispatch would cost as much as the work itself.
func runWith(g *bipartite.Graph, cov bipartite.CoverageEvaluator, cont func(picked, covered, gain int) bool) Result {
	switch c := cov.(type) {
	case *bipartite.BitsetCoverer:
		return runLoop(g, c, cont)
	case *bipartite.Coverer:
		return runLoop(g, c, cont)
	default:
		return runLoop(g, cov, cont)
	}
}

func runLoop[E bipartite.CoverageEvaluator](g *bipartite.Graph, cov E, cont func(picked, covered, gain int) bool) Result {
	n := g.NumSets()
	h := make(candHeap, 0, n)
	for s := 0; s < n; s++ {
		if l := g.SetLen(s); l > 0 {
			h = append(h, packCand(s, l))
		}
	}
	h.init()

	res := Result{}
	for len(h) > 0 {
		top := h[0]
		set := top.set()
		// Refresh the cached gain; if it is still at least the runner-up's
		// cached gain it is the true maximum (submodularity).
		fresh := cov.Marginal(set)
		if fresh != top.gain() {
			if fresh <= 0 {
				h = h.popTop()
				continue
			}
			h[0] = packCand(set, fresh)
			h.siftDown(0)
			continue
		}
		if !cont(len(res.Sets), cov.Covered(), fresh) {
			break
		}
		h = h.popTop()
		cov.Add(set)
		res.Sets = append(res.Sets, set)
		res.Gains = append(res.Gains, fresh)
	}
	res.Covered = cov.Covered()
	return res
}

// CoverageOf evaluates C(sets) on g; convenience re-export for callers
// that already depend on this package.
func CoverageOf(g *bipartite.Graph, sets []int) int {
	return g.Coverage(sets)
}
