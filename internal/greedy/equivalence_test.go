package greedy

import (
	"fmt"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/workload"
)

// equivInstances is the fuzz-style workload table: every generator the
// repository ships, at sizes spanning sparse and dense regimes, each at
// several seeds.
func equivInstances(seed uint64) []workload.Instance {
	return []workload.Instance{
		workload.Uniform(25, 400, 0.05, seed),
		workload.Uniform(15, 200, 0.4, seed+1), // dense: bitset-profitable
		workload.UniformFixedSize(30, 500, 12, seed+2),
		workload.Zipf(40, 800, 150, 0.9, 0.7, seed+3),
		workload.PlantedKCover(30, 600, 5, 0.8, 10, seed+4),
		workload.PlantedSetCover(25, 400, 6, 15, seed+5),
		workload.BlogTopics(35, 500, 80, seed+6),
		workload.LargeSets(20, 300, 0.3, seed+7),
		workload.Clustered(24, 360, 6, seed+8),
	}
}

// resultsEqual demands bit-identical greedy outcomes: same picks in the
// same order, same gain sequence, same covered count.
func resultsEqual(t *testing.T, label string, stamp, bits Result) {
	t.Helper()
	if stamp.Covered != bits.Covered {
		t.Fatalf("%s: covered %d != %d", label, stamp.Covered, bits.Covered)
	}
	if len(stamp.Sets) != len(bits.Sets) {
		t.Fatalf("%s: picked %v != %v", label, stamp.Sets, bits.Sets)
	}
	for i := range stamp.Sets {
		if stamp.Sets[i] != bits.Sets[i] || stamp.Gains[i] != bits.Gains[i] {
			t.Fatalf("%s: pick %d: (%d, gain %d) != (%d, gain %d)",
				label, i, stamp.Sets[i], stamp.Gains[i], bits.Sets[i], bits.Gains[i])
		}
	}
}

// TestBitsetGreedyEqualsStampGreedy pins the tentpole equivalence: the
// bitset and stamp coverage engines produce identical Results for
// kcover (all k), outliers-style partial cover, and full set cover,
// across every workload generator. This is what lets the query plane
// swap engines without changing a single published answer.
func TestBitsetGreedyEqualsStampGreedy(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		for _, inst := range equivInstances(seed * 100) {
			g := inst.G
			n := g.NumSets()
			contKCover := func(k int) func(picked, covered, gain int) bool {
				return func(picked, covered, gain int) bool { return picked < k && gain > 0 }
			}
			for _, k := range []int{1, 2, 3, 5, 8, n} {
				label := fmt.Sprintf("%s seed=%d kcover k=%d", inst.Name, seed, k)
				stamp := BudgetedWith(g, bipartite.NewCoverer(g), contKCover(k))
				bits := BudgetedWith(g, bipartite.NewBitsetCoverer(g), contKCover(k))
				resultsEqual(t, label, stamp, bits)
				// The default entry point must agree with both.
				resultsEqual(t, label+" (auto)", MaxCover(g, k), bits)
			}
			for _, frac := range []int{2, 4} { // cover 1/2 and 3/4 of elements
				target := g.CoveredElems() * (frac + 1) / (frac + 2)
				label := fmt.Sprintf("%s seed=%d partial target=%d", inst.Name, seed, target)
				contPartial := func(picked, covered, gain int) bool {
					return covered < target && gain > 0
				}
				stamp := BudgetedWith(g, bipartite.NewCoverer(g), contPartial)
				bits := BudgetedWith(g, bipartite.NewBitsetCoverer(g), contPartial)
				resultsEqual(t, label, stamp, bits)
			}
			full := g.CoveredElems()
			contFull := func(picked, covered, gain int) bool {
				return covered < full && gain > 0
			}
			label := fmt.Sprintf("%s seed=%d setcover", inst.Name, seed)
			stamp := BudgetedWith(g, bipartite.NewCoverer(g), contFull)
			bits := BudgetedWith(g, bipartite.NewBitsetCoverer(g), contFull)
			resultsEqual(t, label, stamp, bits)
			resultsEqual(t, label+" (auto)", SetCover(g), bits)
		}
	}
}
