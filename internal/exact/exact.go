// Package exact solves small coverage instances optimally by branch and
// bound over bitset-encoded sets. The exact optima ground the
// approximation-ratio measurements in tests and experiments: where the
// paper states a ratio against Opt_k, we compare against these solvers
// (and fall back to planted optima when instances are too large).
package exact

import (
	"sort"

	"repro/internal/bipartite"
	"repro/internal/bitset"
)

// MaxCoverResult is the optimal k-cover solution.
type MaxCoverResult struct {
	Sets    []int
	Covered int
}

// setMask pairs a set id with its element bitset.
type setMask struct {
	id   int
	mask bitset.Bitset
	size int
}

func masksOf(g *bipartite.Graph) []setMask {
	masks := make([]setMask, 0, g.NumSets())
	for s := 0; s < g.NumSets(); s++ {
		b := bitset.New(g.NumElems())
		for _, e := range g.Set(s) {
			b.Set(int(e))
		}
		masks = append(masks, setMask{id: s, mask: b, size: g.SetLen(s)})
	}
	return masks
}

// MaxCover returns an optimal k-cover solution of g by depth-first branch
// and bound. Complexity is exponential in k; intended for n up to a few
// hundred with small k, or tiny instances. Sorting sets by size descending
// plus a sum-of-top-sizes bound prunes heavily in practice.
func MaxCover(g *bipartite.Graph, k int) MaxCoverResult {
	masks := masksOf(g)
	sort.Slice(masks, func(i, j int) bool { return masks[i].size > masks[j].size })
	n := len(masks)
	if k > n {
		k = n
	}

	best := MaxCoverResult{}
	cur := make([]int, 0, k)
	covered := bitset.New(g.NumElems())

	// suffixBound[i] = sum of the k largest set sizes among masks[i:].
	// Because masks are sorted by size, that is just the next k sizes.
	var dfs func(start, coveredCount, depth int)
	dfs = func(start, coveredCount, depth int) {
		if coveredCount > best.Covered {
			best.Covered = coveredCount
			best.Sets = append(best.Sets[:0], cur...)
		}
		if depth == k {
			return
		}
		// Optimistic bound: add the sizes of the next (k-depth) sets.
		bound := coveredCount
		for i := start; i < n && i < start+(k-depth); i++ {
			bound += masks[i].size
		}
		if bound <= best.Covered {
			return
		}
		for i := start; i < n; i++ {
			gain := covered.AndNotCount(masks[i].mask)
			if gain == 0 {
				continue
			}
			if coveredCount+gain+boundTail(masks, i+1, k-depth-1) <= best.Covered {
				continue
			}
			snapshot := covered.Clone()
			covered.Or(masks[i].mask)
			cur = append(cur, masks[i].id)
			dfs(i+1, coveredCount+gain, depth+1)
			cur = cur[:len(cur)-1]
			covered.CopyFrom(snapshot)
		}
	}
	dfs(0, 0, 0)
	sort.Ints(best.Sets)
	return best
}

func boundTail(masks []setMask, start, picks int) int {
	b := 0
	for i := start; i < len(masks) && picks > 0; i, picks = i+1, picks-1 {
		b += masks[i].size
	}
	return b
}

// SetCoverResult is the optimal set-cover solution.
type SetCoverResult struct {
	Sets []int
	// Feasible is false when even the whole family does not cover every
	// non-isolated element (cannot happen for graphs built from edges).
	Feasible bool
}

// SetCover returns a minimum set cover of the non-isolated elements of g
// via iterative deepening on the solution size with a greedy upper bound.
// Intended for small instances (n up to ~60, m up to a few thousand).
func SetCover(g *bipartite.Graph) SetCoverResult {
	masks := masksOf(g)
	sort.Slice(masks, func(i, j int) bool { return masks[i].size > masks[j].size })
	n := len(masks)

	target := bitset.New(g.NumElems())
	for e := 0; e < g.NumElems(); e++ {
		if g.ElemDegree(e) > 0 {
			target.Set(e)
		}
	}
	need := target.Count()
	if need == 0 {
		return SetCoverResult{Feasible: true}
	}
	all := bitset.New(g.NumElems())
	for _, m := range masks {
		all.Or(m.mask)
	}
	if !target.IsSubsetOf(all) {
		return SetCoverResult{Feasible: false}
	}

	// Greedy upper bound gives the deepening limit.
	ub := greedyCoverSize(masks, target)

	covered := bitset.New(g.NumElems())
	cur := make([]int, 0, ub)
	var best []int

	var dfs func(start, coveredCount, depth, limit int) bool
	dfs = func(start, coveredCount, depth, limit int) bool {
		if coveredCount == need {
			best = append(best[:0], cur...)
			return true
		}
		if depth == limit {
			return false
		}
		// Bound: even taking the largest remaining sets cannot finish.
		remaining := need - coveredCount
		bound := 0
		for i := start; i < n && i < start+(limit-depth); i++ {
			bound += masks[i].size
		}
		if bound < remaining {
			return false
		}
		for i := start; i < n; i++ {
			gain := covered.AndNotCount(masks[i].mask)
			if gain == 0 {
				continue
			}
			snapshot := covered.Clone()
			covered.Or(masks[i].mask)
			cur = append(cur, masks[i].id)
			if dfs(i+1, coveredCount+gain, depth+1, limit) {
				return true
			}
			cur = cur[:len(cur)-1]
			covered.CopyFrom(snapshot)
		}
		return false
	}

	for limit := 1; limit <= ub; limit++ {
		covered.Reset()
		cur = cur[:0]
		if dfs(0, 0, 0, limit) {
			sort.Ints(best)
			return SetCoverResult{Sets: best, Feasible: true}
		}
	}
	// The greedy solution itself is optimal-size fallback (unreachable:
	// the deepening always succeeds at limit=ub).
	return SetCoverResult{Sets: nil, Feasible: false}
}

func greedyCoverSize(masks []setMask, target bitset.Bitset) int {
	covered := bitset.New(target.Capacity())
	need := target.Count()
	got := 0
	picks := 0
	for got < need {
		bestGain, bestIdx := 0, -1
		for i, m := range masks {
			if gain := covered.AndNotCount(m.mask); gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 {
			break
		}
		covered.Or(masks[bestIdx].mask)
		got += bestGain
		picks++
	}
	return picks
}
