package exact

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/greedy"
	"repro/internal/hashing"
)

func randomGraph(seed uint64, n, m int, density float64) *bipartite.Graph {
	rng := hashing.NewRNG(seed)
	var edges []bipartite.Edge
	for s := 0; s < n; s++ {
		for e := 0; e < m; e++ {
			if rng.Float64() < density {
				edges = append(edges, bipartite.Edge{Set: uint32(s), Elem: uint32(e)})
			}
		}
	}
	return bipartite.MustFromEdges(n, m, edges)
}

// bruteMaxCover enumerates all k-subsets — the independent reference.
func bruteMaxCover(g *bipartite.Graph, k int) int {
	n := g.NumSets()
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	if k > n {
		return g.Coverage(allSets(n))
	}
	best := 0
	for {
		if c := g.Coverage(idx); c > best {
			best = c
		}
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return best
}

func allSets(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestMaxCoverMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		g := randomGraph(seed, 10, 30, 0.15)
		for _, k := range []int{1, 2, 3, 4} {
			got := MaxCover(g, k)
			want := bruteMaxCover(g, k)
			if got.Covered != want {
				t.Fatalf("seed=%d k=%d: branch-and-bound %d != brute force %d", seed, k, got.Covered, want)
			}
			if actual := g.Coverage(got.Sets); actual != got.Covered {
				t.Fatalf("reported coverage %d != actual %d", got.Covered, actual)
			}
			if len(got.Sets) > k {
				t.Fatalf("solution uses %d > k sets", len(got.Sets))
			}
		}
	}
}

func TestMaxCoverBeatsGreedySometimes(t *testing.T) {
	// A classic instance where greedy is suboptimal at k=2: three sets of
	// equal size; greedy's first (tie-broken) pick straddles the two
	// disjoint optimal sets.
	//   S0 = {0,1,2,3}   S1 = {0,1,4,5}   S2 = {2,3,6,7}
	// Greedy picks S0 first (lowest id among size-4 ties), then gains
	// only 2 more; the optimum {S1, S2} covers all 8.
	var edges []bipartite.Edge
	for _, e := range []uint32{0, 1, 2, 3} {
		edges = append(edges, bipartite.Edge{Set: 0, Elem: e})
	}
	for _, e := range []uint32{0, 1, 4, 5} {
		edges = append(edges, bipartite.Edge{Set: 1, Elem: e})
	}
	for _, e := range []uint32{2, 3, 6, 7} {
		edges = append(edges, bipartite.Edge{Set: 2, Elem: e})
	}
	g := bipartite.MustFromEdges(3, 8, edges)
	opt := MaxCover(g, 2)
	if opt.Covered != 8 {
		t.Fatalf("optimum is {1,2} covering 8, got %d (%v)", opt.Covered, opt.Sets)
	}
	gr := greedy.MaxCover(g, 2)
	if gr.Covered != 6 {
		t.Fatalf("greedy should cover exactly 6 here, got %d", gr.Covered)
	}
}

func TestMaxCoverKLargerThanN(t *testing.T) {
	g := randomGraph(7, 5, 20, 0.2)
	got := MaxCover(g, 10)
	if got.Covered != g.Coverage(allSets(5)) {
		t.Fatalf("k>n should cover everything reachable")
	}
}

func TestMaxCoverEmpty(t *testing.T) {
	g := bipartite.MustFromEdges(3, 3, nil)
	got := MaxCover(g, 2)
	if got.Covered != 0 || len(got.Sets) != 0 {
		t.Fatal("empty graph nonzero solution")
	}
}

// bruteSetCover finds the true minimum cover size by subset enumeration.
func bruteSetCover(g *bipartite.Graph) int {
	n := g.NumSets()
	need := g.CoveredElems()
	best := n + 1
	for mask := 0; mask < 1<<uint(n); mask++ {
		var sets []int
		for s := 0; s < n; s++ {
			if mask&(1<<uint(s)) != 0 {
				sets = append(sets, s)
			}
		}
		if len(sets) >= best {
			continue
		}
		if g.Coverage(sets) == need {
			best = len(sets)
		}
	}
	return best
}

func TestSetCoverMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		g := randomGraph(seed, 9, 25, 0.2)
		got := SetCover(g)
		if !got.Feasible {
			t.Fatalf("seed=%d: feasible instance reported infeasible", seed)
		}
		want := bruteSetCover(g)
		if len(got.Sets) != want {
			t.Fatalf("seed=%d: exact size %d != brute force %d", seed, len(got.Sets), want)
		}
		if g.Coverage(got.Sets) != g.CoveredElems() {
			t.Fatalf("seed=%d: returned sets do not cover", seed)
		}
	}
}

func TestSetCoverOnPartition(t *testing.T) {
	var edges []bipartite.Edge
	for e := 0; e < 30; e++ {
		edges = append(edges, bipartite.Edge{Set: uint32(e / 10), Elem: uint32(e)})
	}
	// A decoy set overlapping all three.
	for _, e := range []uint32{0, 10, 20} {
		edges = append(edges, bipartite.Edge{Set: 3, Elem: e})
	}
	g := bipartite.MustFromEdges(4, 30, edges)
	got := SetCover(g)
	if len(got.Sets) != 3 {
		t.Fatalf("minimum cover is the 3 partition sets, got %v", got.Sets)
	}
}

func TestSetCoverEmptyGraph(t *testing.T) {
	g := bipartite.MustFromEdges(3, 5, nil)
	got := SetCover(g)
	if !got.Feasible || len(got.Sets) != 0 {
		t.Fatal("graph with no coverable elements should have empty cover")
	}
}

func TestSetCoverSingleSet(t *testing.T) {
	g := bipartite.MustFromEdges(3, 5, []bipartite.Edge{
		{Set: 1, Elem: 0}, {Set: 1, Elem: 1}, {Set: 1, Elem: 2}, {Set: 1, Elem: 3}, {Set: 1, Elem: 4},
		{Set: 0, Elem: 0}, {Set: 2, Elem: 4},
	})
	got := SetCover(g)
	if len(got.Sets) != 1 || got.Sets[0] != 1 {
		t.Fatalf("expected {1}, got %v", got.Sets)
	}
}
