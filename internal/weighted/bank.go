package weighted

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/stream"
)

// This file lifts the weighted extension from a one-shot batch function
// into a first-class sketch bank with the same lifecycle verbs as
// core.Sketch: a Bank owns one H≤n sketch per non-empty geometric
// weight class and supports cloning, merging, binary persistence and a
// canonical assembly into the scaled union instance the weighted greedy
// runs on. The serving engine (internal/server) shards a stream across
// N banks and merges them at query time; because every per-class
// operation delegates to the core sketch — whose merge-composability is
// the paper's §1.3.2 argument — the merged bank equals the bank a
// single pass would have built, class by class, and the weighted
// service answers bit-identically to the one-shot KCover.

// BankMagic heads every serialized class bank; the trailing digit is
// the format version. The payload frames one core.Sketch v1 blob per
// class, so a bank file is a container around sketch files, exactly as
// the service's multi-namespace snapshot v2 is a container around v1.
const BankMagic = "WBNK1"

// maxBankClassBytes bounds one class frame while decoding, so a corrupt
// length field fails with an error instead of a huge allocation.
const maxBankClassBytes = 1 << 30

// Bank is a bank of per-weight-class H≤n sketches over one logical edge
// stream. Elements are bucketed by classIndex of their weight; each
// class keeps an independent sketch whose hashing is derived from the
// bank seed and the class index, so two banks built with the same
// options are class-compatible and mergeable. A Bank is not safe for
// concurrent use (like core.Sketch); shard the stream across banks and
// Merge instead.
type Bank struct {
	numSets  int
	k        int
	opt      Options // normalized: Eps defaulted to 0.5
	weightOf func(uint32) float64
	classes  map[int]*core.Sketch
	// edgesSeen counts every edge handed to Add/AddEdges, including
	// zero-weight edges that route to no class — it mirrors the
	// EdgesSeen stream accounting of an unweighted shard sketch so the
	// serving engine's applied-edge bookkeeping is mode-independent.
	edgesSeen int64
}

// normalizeOptions applies the KCover defaults so that every params
// derivation — bank construction, class creation, restore validation —
// sees one canonical option set.
func normalizeOptions(opt Options) Options {
	if opt.Eps <= 0 || opt.Eps > 1 {
		opt.Eps = 0.5
	}
	return opt
}

// NewBank returns an empty class bank for weighted k-cover instances
// with numSets sets, provisioned for solutions of size k. weightOf is
// the element-weight oracle (instance metadata, like the ids
// themselves); it must be deterministic, since classes are keyed by it
// on every path (ingest, merge, assembly).
func NewBank(numSets, k int, opt Options, weightOf func(uint32) float64) (*Bank, error) {
	if numSets <= 0 || k <= 0 {
		return nil, fmt.Errorf("weighted: bank needs positive numSets and k")
	}
	if weightOf == nil {
		return nil, fmt.Errorf("weighted: nil weight oracle")
	}
	b := &Bank{
		numSets:  numSets,
		k:        k,
		opt:      normalizeOptions(opt),
		weightOf: weightOf,
		classes:  make(map[int]*core.Sketch),
	}
	// Validate the derived parameters once; classParams only varies the
	// seed afterwards, so lazy class creation cannot fail.
	if err := b.classParams(0).Validate(); err != nil {
		return nil, fmt.Errorf("weighted: bank parameters: %w", err)
	}
	return b, nil
}

// classParams derives the class sketch parameters: the KCover base
// parameters (per-class accuracy ε/12) with independent hashing per
// class, derived from the bank seed.
func (b *Bank) classParams(ci int) core.Params {
	return core.Params{
		NumSets:     b.numSets,
		NumElems:    b.opt.NumElems,
		K:           b.k,
		Eps:         b.opt.Eps / 12,
		Seed:        b.opt.Seed ^ (uint64(int64(ci))+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9,
		EdgeBudget:  b.opt.EdgeBudget,
		SpaceFactor: b.opt.SpaceFactor,
	}
}

// sketchFor returns the class sketch, creating it on first use.
func (b *Bank) sketchFor(ci int) *core.Sketch {
	sk, ok := b.classes[ci]
	if !ok {
		sk = core.MustNewSketch(b.classParams(ci))
		b.classes[ci] = sk
	}
	return sk
}

// Add routes one stream edge to its weight-class sketch. Zero-weight
// elements are skipped (they never contribute coverage) but still
// counted as seen.
func (b *Bank) Add(e bipartite.Edge) {
	b.edgesSeen++
	w := b.weightOf(e.Elem)
	if w <= 0 {
		return
	}
	b.sketchFor(classIndex(w)).AddEdge(e)
}

// AddEdges routes a batch of stream edges to their class sketches. It
// is equivalent to calling Add on each edge in order (per-class sketch
// state is an order-invariant function of the absorbed edge set).
func (b *Bank) AddEdges(edges []bipartite.Edge) {
	for _, e := range edges {
		b.Add(e)
	}
}

// AddStream drains st into the bank and returns the number of edges
// consumed.
func (b *Bank) AddStream(st stream.Stream) int {
	n := 0
	for {
		e, ok := st.Next()
		if !ok {
			return n
		}
		b.Add(e)
		n++
	}
}

// Classes returns the number of non-empty weight classes sketched.
func (b *Bank) Classes() int { return len(b.classes) }

// Edges returns the total kept edges across the class sketches — the
// bank's resident size.
func (b *Bank) Edges() int {
	total := 0
	for _, sk := range b.classes {
		total += sk.Edges()
	}
	return total
}

// Elements returns the total kept elements across the class sketches.
// An element belongs to exactly one class (its weight is fixed), so
// this never double-counts.
func (b *Bank) Elements() int {
	total := 0
	for _, sk := range b.classes {
		total += sk.Elements()
	}
	return total
}

// EdgesSeen reports the number of edges the bank consumed from the
// stream (zero-weight edges included).
func (b *Bank) EdgesSeen() int64 { return b.edgesSeen }

// SetEdgesSeen overrides the consumed-edge counter, mirroring
// core.Sketch.SetEdgesSeen: a merged bank only replays kept edges, so a
// serving coordinator persists the true ingested total through this.
func (b *Bank) SetEdgesSeen(n int64) { b.edgesSeen = n }

// Stats aggregates the class sketches' accounting into one core.Stats.
// EdgesSeen is the bank-level stream counter (zero-weight edges
// included); PStar reports the smallest class sampling probability (1
// when no class has evicted).
func (b *Bank) Stats() core.Stats {
	st := core.Stats{EdgesSeen: b.edgesSeen, PStar: 1}
	for _, sk := range b.classes {
		s := sk.Stats()
		st.EdgesKept += s.EdgesKept
		st.PeakEdges += s.PeakEdges
		st.ElementsKept += s.ElementsKept
		st.Budget += s.Budget
		st.DupEdges += s.DupEdges
		st.DropDegree += s.DropDegree
		st.DropHash += s.DropHash
		st.Bytes += s.Bytes
		if s.DegreeCap > st.DegreeCap {
			st.DegreeCap = s.DegreeCap
		}
		if s.PStar < st.PStar {
			st.PStar = s.PStar
		}
	}
	return st
}

// Clone returns a deep copy of the bank (sharing only the stateless
// weight oracle). Cloning is how the serving path takes a consistent
// cut of a shard's weighted state without stalling its ingest loop.
func (b *Bank) Clone() *Bank {
	c := &Bank{
		numSets:   b.numSets,
		k:         b.k,
		opt:       b.opt,
		weightOf:  b.weightOf,
		classes:   make(map[int]*core.Sketch, len(b.classes)),
		edgesSeen: b.edgesSeen,
	}
	for ci, sk := range b.classes {
		c.classes[ci] = sk.Clone()
	}
	return c
}

// compatible reports whether two banks were built over the same
// instance geometry and options — the precondition for class-by-class
// merging (core.Merge re-checks the derived sketch parameters too).
func (b *Bank) compatible(other *Bank) bool {
	return b.numSets == other.numSets && b.k == other.k && b.opt == other.opt
}

// Merge folds other's class sketches into b, class by class; classes
// missing locally are created. other is not modified. As with
// core.Sketch.Merge, b's bank-level stream accounting (EdgesSeen) is
// untouched — re-folded kept edges are not stream traffic; coordinators
// that need totals sum the inputs' EdgesSeen or use SetEdgesSeen. The
// per-class consumed counters, however, are summed: the bank is the
// coordinator of its class sketches, and carrying their totals keeps a
// merged bank byte-identical to the single-pass bank over the union
// stream (pinned by TestBankMergeEqualsSingle).
func (b *Bank) Merge(other *Bank) error {
	if other == nil {
		return nil
	}
	if !b.compatible(other) {
		return fmt.Errorf("weighted: cannot merge incompatible banks (n=%d/%d k=%d/%d opts %+v vs %+v)",
			b.numSets, other.numSets, b.k, other.k, b.opt, other.opt)
	}
	for _, ci := range other.sortedClasses() {
		sk := b.sketchFor(ci)
		seen := sk.Stats().EdgesSeen + other.classes[ci].Stats().EdgesSeen
		if err := sk.Merge(other.classes[ci]); err != nil {
			return err
		}
		sk.SetEdgesSeen(seen)
	}
	return nil
}

// MergeBanks builds a bank holding the merge of every input (inputs are
// never modified). Each class folds through core.MergeAll, so classes
// with three or more contributing shards get the presifted parallel
// tree reduction. By per-class merge-composability the result equals
// the bank a single pass over the concatenated streams would build.
func MergeBanks(numSets, k int, opt Options, weightOf func(uint32) float64, banks ...*Bank) (*Bank, error) {
	out, err := NewBank(numSets, k, opt, weightOf)
	if err != nil {
		return nil, err
	}
	perClass := make(map[int][]*core.Sketch)
	for _, in := range banks {
		if in == nil {
			continue
		}
		if !out.compatible(in) {
			return nil, fmt.Errorf("weighted: cannot merge incompatible banks (opts %+v vs %+v)", out.opt, in.opt)
		}
		out.edgesSeen += in.edgesSeen
		for ci, sk := range in.classes {
			perClass[ci] = append(perClass[ci], sk)
		}
	}
	for ci, sketches := range perClass {
		merged, err := core.MergeAll(out.classParams(ci), sketches...)
		if err != nil {
			return nil, err
		}
		// Per-class consumed totals survive the fold (merging replays only
		// kept edges, which are not stream traffic), so the merged bank is
		// byte-identical to the single-pass bank over the whole stream.
		seen := int64(0)
		for _, sk := range sketches {
			seen += sk.Stats().EdgesSeen
		}
		merged.SetEdgesSeen(seen)
		out.classes[ci] = merged
	}
	return out, nil
}

// sortedClasses returns the class indices ascending — the canonical
// iteration order every deterministic consumer (assembly, persistence,
// merging) uses.
func (b *Bank) sortedClasses() []int {
	cis := make([]int, 0, len(b.classes))
	for ci := range b.classes {
		cis = append(cis, ci)
	}
	sort.Ints(cis)
	return cis
}

// Assemble materializes the bank as the scaled union instance: kept
// elements from every class (classes ascending, elements in hash order
// within a class — a canonical order, so equal banks assemble equal
// instances bit for bit), with each element's weight scaled by
// 1/p*_class so weighted coverage on the union estimates weighted
// coverage on the input (Lemma 2.2 per class). The second return value
// maps union element ids back to original ones.
func (b *Bank) Assemble() (*Instance, []uint32, error) {
	var (
		edges  []bipartite.Edge
		wts    []float64
		orig   []uint32
		nextID uint32
	)
	for _, ci := range b.sortedClasses() {
		sk := b.classes[ci]
		ps := sk.PStar()
		if ps <= 0 {
			// A class whose bar collapsed to priority zero keeps (at most)
			// the single hash-zero element and estimates nothing: scaling by
			// 1/p* would produce infinite weights, so the class is excluded
			// from the union rather than poisoning the greedy. Materialize
			// it anyway: Graph normalizes the slot set-lists, upholding
			// Assemble's contract that a later WriteTo is a pure read.
			sk.Graph()
			continue
		}
		scale := 1 / ps
		g, ids := sk.Graph()
		for newID, origID := range ids {
			for _, set := range g.Elem(newID) {
				edges = append(edges, bipartite.Edge{Set: set, Elem: nextID})
			}
			wts = append(wts, b.weightOf(origID)*scale)
			orig = append(orig, origID)
			nextID++
		}
	}
	union, err := bipartite.FromEdges(b.numSets, int(nextID), edges)
	if err != nil {
		return nil, nil, fmt.Errorf("weighted: union sketch: %w", err)
	}
	return &Instance{G: union, W: wts}, orig, nil
}

// Solve assembles the scaled union and runs the weighted lazy greedy —
// the offline step of the streaming weighted k-cover. k may differ from
// the provisioned solution size; the approximation guarantee holds for
// k up to it.
func (b *Bank) Solve(k int) (*Result, error) {
	in, _, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	res := MaxCover(*in, k)
	return &Result{
		Sets:              res.Sets,
		EstimatedCoverage: res.Covered,
		CoveredElems:      res.CoveredElems,
		Classes:           len(b.classes),
		EdgesStored:       b.Edges(),
	}, nil
}

// WriteTo serializes the bank: the magic, the stream counter, and one
// length-prefixed core.Sketch v1 blob per class in ascending class
// order (a canonical encoding — equal banks serialize to equal bytes).
// The bank options are NOT persisted; ReadBank takes them from the
// caller, exactly as the serving engine's Config travels separately
// from its sketch blob, and validates the frames against them. It
// implements io.WriterTo.
func (b *Bank) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	if _, err := bw.WriteString(BankMagic); err != nil {
		return n, err
	}
	n += int64(len(BankMagic))
	put := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := put(b.edgesSeen); err != nil {
		return n, err
	}
	if err := put(uint32(len(b.classes))); err != nil {
		return n, err
	}
	var blob bytes.Buffer
	for _, ci := range b.sortedClasses() {
		blob.Reset()
		if _, err := b.classes[ci].WriteTo(&blob); err != nil {
			return n, err
		}
		if err := put(int32(ci)); err != nil {
			return n, err
		}
		if err := put(uint64(blob.Len())); err != nil {
			return n, err
		}
		nn, err := bw.Write(blob.Bytes())
		n += int64(nn)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadBank reconstructs a bank written by WriteTo. numSets, k and opt
// must repeat the writing bank's configuration (they determine the
// per-class sketch parameters, which are validated frame by frame);
// weightOf is the same element-weight oracle. The result is identical
// to the original: same classes, same kept edges and eviction bars, so
// it assembles — and answers — bit-identically.
func ReadBank(r io.Reader, numSets, k int, opt Options, weightOf func(uint32) float64) (*Bank, error) {
	b, err := NewBank(numSets, k, opt, weightOf)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(BankMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("weighted: reading bank header: %w", err)
	}
	if string(magic) != BankMagic {
		return nil, fmt.Errorf("weighted: bad bank magic %q (want %q)", magic, BankMagic)
	}
	var (
		edgesSeen int64
		count     uint32
	)
	if err := binary.Read(br, binary.LittleEndian, &edgesSeen); err != nil {
		return nil, fmt.Errorf("weighted: reading bank counter: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("weighted: reading bank class count: %w", err)
	}
	for i := uint32(0); i < count; i++ {
		var (
			ci      int32
			blobLen uint64
		)
		if err := binary.Read(br, binary.LittleEndian, &ci); err != nil {
			return nil, fmt.Errorf("weighted: reading class %d index: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &blobLen); err != nil {
			return nil, fmt.Errorf("weighted: reading class %d size: %w", ci, err)
		}
		if blobLen > maxBankClassBytes {
			return nil, fmt.Errorf("weighted: class %d frame of %d bytes exceeds limit", ci, blobLen)
		}
		if _, dup := b.classes[int(ci)]; dup {
			return nil, fmt.Errorf("weighted: duplicate class %d frame", ci)
		}
		// The sketch decoder buffers its own reads; hand it an exact
		// in-memory frame so it cannot consume the next class's bytes.
		var blob bytes.Buffer
		if _, err := io.CopyN(&blob, br, int64(blobLen)); err != nil {
			return nil, fmt.Errorf("weighted: reading class %d sketch: %w", ci, err)
		}
		sk, err := core.ReadSketch(bytes.NewReader(blob.Bytes()))
		if err != nil {
			return nil, fmt.Errorf("weighted: decoding class %d sketch: %w", ci, err)
		}
		if sk.Params() != b.classParams(int(ci)) {
			return nil, fmt.Errorf("weighted: class %d sketch parameters do not match the bank options", ci)
		}
		b.classes[int(ci)] = sk
	}
	b.edgesSeen = edgesSeen
	return b, nil
}
