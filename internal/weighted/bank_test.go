package weighted

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/stream"
	"repro/internal/workload"
)

// bankWorkloads is the full generator matrix the serialization and
// merge property tests sweep — every workload family the repository
// ships.
func bankWorkloads() map[string]workload.Instance {
	return map[string]workload.Instance{
		"uniform":          workload.Uniform(40, 2500, 0.05, 11),
		"zipf":             workload.Zipf(50, 3000, 700, 0.9, 0.7, 7),
		"planted_kcover":   workload.PlantedKCover(40, 2500, 4, 0.9, 25, 5),
		"planted_setcover": workload.PlantedSetCover(30, 2000, 5, 20, 9),
		"blog_topics":      workload.BlogTopics(40, 1500, 120, 3),
		"large_sets":       workload.LargeSets(12, 4000, 0.3, 13),
		"clustered":        workload.Clustered(30, 2000, 5, 17),
	}
}

// testWeightOf spreads elements over several geometric classes and
// leaves a residue class at weight zero, exercising the skip path.
func testWeightOf(e uint32) float64 {
	return float64((e * 2654435761) % 9)
}

func testBankOptions() Options {
	return Options{Eps: 0.4, Seed: 77, NumElems: 3000, EdgeBudget: 2500}
}

// serializeBank returns the canonical bytes of a bank.
func serializeBank(t *testing.T, b *Bank) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mustSolve runs Solve and fails the test on error.
func mustSolve(t *testing.T, b *Bank, k int) *Result {
	t.Helper()
	res, err := b.Solve(k)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameResult(a, b *Result) bool {
	if a.EstimatedCoverage != b.EstimatedCoverage || a.Classes != b.Classes ||
		a.EdgesStored != b.EdgesStored || len(a.Sets) != len(b.Sets) {
		return false
	}
	for i := range a.Sets {
		if a.Sets[i] != b.Sets[i] {
			return false
		}
	}
	return true
}

// TestBankMatchesKCover pins that a Bank fed edge batches answers
// exactly like the one-shot KCover over the same stream (KCover is the
// bank in stream clothing, so this guards the refactor).
func TestBankMatchesKCover(t *testing.T) {
	const k = 5
	for name, inst := range bankWorkloads() {
		n := inst.G.NumSets()
		opt := testBankOptions()
		oneshot, err := KCover(stream.Shuffled(inst.G, 3), n, k, testWeightOf, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := NewBank(n, k, opt, testWeightOf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		edges := stream.Drain(stream.Shuffled(inst.G, 3))
		for i := 0; i < len(edges); i += 97 {
			j := i + 97
			if j > len(edges) {
				j = len(edges)
			}
			b.AddEdges(edges[i:j])
		}
		if got := b.EdgesSeen(); got != int64(len(edges)) {
			t.Fatalf("%s: bank saw %d of %d edges", name, got, len(edges))
		}
		res := mustSolve(t, b, k)
		if !sameResult(res, oneshot) {
			t.Fatalf("%s: bank %+v != one-shot %+v", name, res, oneshot)
		}
	}
}

// TestBankSerializationRoundTrip is the satellite property test: for
// every workload generator, WriteTo → ReadBank reproduces the bank
// exactly — byte-identical re-serialization, identical accounting and
// identical answers.
func TestBankSerializationRoundTrip(t *testing.T) {
	const k = 4
	for name, inst := range bankWorkloads() {
		n := inst.G.NumSets()
		opt := testBankOptions()
		b, err := NewBank(n, k, opt, testWeightOf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b.AddStream(stream.Shuffled(inst.G, 5))

		raw := serializeBank(t, b)
		back, err := ReadBank(bytes.NewReader(raw), n, k, opt, testWeightOf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := serializeBank(t, back); !bytes.Equal(raw, got) {
			t.Fatalf("%s: restored bank re-serializes to different bytes (%d vs %d)", name, len(got), len(raw))
		}
		if back.Classes() != b.Classes() || back.Edges() != b.Edges() ||
			back.Elements() != b.Elements() || back.EdgesSeen() != b.EdgesSeen() {
			t.Fatalf("%s: restored bank accounting differs: classes %d/%d edges %d/%d elems %d/%d seen %d/%d",
				name, back.Classes(), b.Classes(), back.Edges(), b.Edges(),
				back.Elements(), b.Elements(), back.EdgesSeen(), b.EdgesSeen())
		}
		if want, got := mustSolve(t, b, k), mustSolve(t, back, k); !sameResult(want, got) {
			t.Fatalf("%s: restored bank answers %+v, original %+v", name, got, want)
		}
	}
}

// TestBankMergeEqualsSingle pins class-bank merge-composability: banks
// built over disjoint shards of the stream merge into exactly the bank
// of the whole stream, for both pairwise Merge and MergeBanks.
func TestBankMergeEqualsSingle(t *testing.T) {
	const k = 4
	for name, inst := range bankWorkloads() {
		n := inst.G.NumSets()
		opt := testBankOptions()
		whole, err := NewBank(n, k, opt, testWeightOf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		whole.AddStream(stream.Shuffled(inst.G, 9))
		want := serializeBank(t, whole)

		edges := stream.Drain(stream.Shuffled(inst.G, 9))
		const parts = 3
		shards := make([]*Bank, parts)
		for p := range shards {
			if shards[p], err = NewBank(n, k, opt, testWeightOf); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			shards[p].AddEdges(edges[p*len(edges)/parts : (p+1)*len(edges)/parts])
		}

		merged, err := MergeBanks(n, k, opt, testWeightOf, shards...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := serializeBank(t, merged); !bytes.Equal(want, got) {
			t.Fatalf("%s: MergeBanks of %d shards differs from the single-pass bank", name, parts)
		}

		pairwise, err := NewBank(n, k, opt, testWeightOf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, sh := range shards {
			if err := pairwise.Merge(sh); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		// Pairwise Merge leaves stream accounting untouched (like
		// core.Sketch.Merge); align it before the byte comparison.
		pairwise.SetEdgesSeen(whole.EdgesSeen())
		if got := serializeBank(t, pairwise); !bytes.Equal(want, got) {
			t.Fatalf("%s: pairwise merge differs from the single-pass bank", name)
		}
	}
}

// TestBankCloneIsDeep pins clone isolation: mutating the clone leaves
// the original untouched and vice versa.
func TestBankCloneIsDeep(t *testing.T) {
	inst := workload.Zipf(30, 1500, 300, 0.9, 0.7, 21)
	b, err := NewBank(30, 3, testBankOptions(), testWeightOf)
	if err != nil {
		t.Fatal(err)
	}
	edges := stream.Drain(stream.Shuffled(inst.G, 1))
	half := len(edges) / 2
	b.AddEdges(edges[:half])
	want := serializeBank(t, b)

	c := b.Clone()
	c.AddEdges(edges[half:])
	if got := serializeBank(t, b); !bytes.Equal(want, got) {
		t.Fatal("mutating the clone changed the original bank")
	}
	full, err := NewBank(30, 3, testBankOptions(), testWeightOf)
	if err != nil {
		t.Fatal(err)
	}
	full.AddEdges(edges)
	if got, wantFull := serializeBank(t, c), serializeBank(t, full); !bytes.Equal(got, wantFull) {
		t.Fatal("clone fed the remaining edges differs from a bank fed everything")
	}
}

// TestBankValidation covers constructor and decoder error paths.
func TestBankValidation(t *testing.T) {
	if _, err := NewBank(0, 1, Options{}, testWeightOf); err == nil {
		t.Fatal("numSets=0 accepted")
	}
	if _, err := NewBank(5, 0, Options{}, testWeightOf); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewBank(5, 1, Options{}, nil); err == nil {
		t.Fatal("nil weight oracle accepted")
	}

	b, err := NewBank(5, 2, testBankOptions(), testWeightOf)
	if err != nil {
		t.Fatal(err)
	}
	b.Add(bipartite.Edge{Set: 1, Elem: 3})
	raw := serializeBank(t, b)

	if _, err := ReadBank(bytes.NewReader([]byte("NOPE!")), 5, 2, testBankOptions(), testWeightOf); err == nil {
		t.Fatal("bad magic accepted")
	}
	// A different seed derives different class params: the frames must be
	// rejected instead of silently re-keyed.
	otherOpt := testBankOptions()
	otherOpt.Seed++
	if _, err := ReadBank(bytes.NewReader(raw), 5, 2, otherOpt, testWeightOf); err == nil {
		t.Fatal("bank restored under mismatched options")
	}
	if _, err := ReadBank(bytes.NewReader(raw[:len(raw)-2]), 5, 2, testBankOptions(), testWeightOf); err == nil {
		t.Fatal("truncated bank accepted")
	}

	other, err := NewBank(5, 3, testBankOptions(), testWeightOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Merge(other); err == nil {
		t.Fatal("merge of incompatible banks accepted")
	}
}

// TestBankStatsAggregate sanity-checks the aggregated accounting.
func TestBankStatsAggregate(t *testing.T) {
	inst := workload.Uniform(20, 1000, 0.08, 3)
	b, err := NewBank(20, 3, testBankOptions(), testWeightOf)
	if err != nil {
		t.Fatal(err)
	}
	n := b.AddStream(stream.Shuffled(inst.G, 2))
	st := b.Stats()
	if st.EdgesSeen != int64(n) {
		t.Fatalf("stats saw %d of %d edges", st.EdgesSeen, n)
	}
	if st.EdgesKept != b.Edges() || st.ElementsKept != b.Elements() {
		t.Fatalf("stats kept %d/%d, bank %d/%d", st.EdgesKept, st.ElementsKept, b.Edges(), b.Elements())
	}
	if st.PStar <= 0 || st.PStar > 1 || math.IsNaN(st.PStar) {
		t.Fatalf("bad aggregate p* %v", st.PStar)
	}
}
