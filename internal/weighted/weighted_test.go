package weighted

import (
	"math"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/hashing"
	"repro/internal/stream"
	"repro/internal/workload"
)

func uniformWeights(m int, w float64) []float64 {
	ws := make([]float64, m)
	for i := range ws {
		ws[i] = w
	}
	return ws
}

func TestValidate(t *testing.T) {
	g := bipartite.MustFromEdges(2, 3, []bipartite.Edge{{Set: 0, Elem: 0}})
	if err := (Instance{G: g, W: uniformWeights(3, 1)}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Instance{
		{G: nil, W: nil},
		{G: g, W: uniformWeights(2, 1)},
		{G: g, W: []float64{1, -1, 1}},
		{G: g, W: []float64{1, math.NaN(), 1}},
		{G: g, W: []float64{1, math.Inf(1), 1}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Fatalf("bad instance %d accepted", i)
		}
	}
}

func TestCoverageWeighted(t *testing.T) {
	g := bipartite.MustFromEdges(3, 4, []bipartite.Edge{
		{Set: 0, Elem: 0}, {Set: 0, Elem: 1},
		{Set: 1, Elem: 1}, {Set: 1, Elem: 2},
		{Set: 2, Elem: 3},
	})
	in := Instance{G: g, W: []float64{1, 10, 100, 1000}}
	if got := in.Coverage([]int{0}); got != 11 {
		t.Fatalf("Coverage({0}) = %v", got)
	}
	if got := in.Coverage([]int{0, 1}); got != 111 {
		t.Fatalf("Coverage({0,1}) = %v", got)
	}
	if got := in.Coverage([]int{0, 0}); got != 11 {
		t.Fatalf("duplicate sets double-counted: %v", got)
	}
	if got := in.Coverage(nil); got != 0 {
		t.Fatalf("empty coverage %v", got)
	}
}

// bruteWeighted enumerates all k-subsets for ground truth.
func bruteWeighted(in Instance, k int) float64 {
	n := in.G.NumSets()
	best := 0.0
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) == k || start == n {
			if v := in.Coverage(chosen); v > best {
				best = v
			}
			if len(chosen) == k {
				return
			}
		}
		for s := start; s < n; s++ {
			rec(s+1, append(chosen, s))
		}
	}
	rec(0, nil)
	return best
}

func TestGreedyMatchesUnweightedWhenUniform(t *testing.T) {
	inst := workload.Uniform(12, 80, 0.15, 1)
	in := Instance{G: inst.G, W: uniformWeights(80, 2.5)}
	res := MaxCover(in, 4)
	// With uniform weights, weighted greedy = unweighted greedy * w.
	if got := in.Coverage(res.Sets); math.Abs(got-res.Covered) > 1e-9 {
		t.Fatalf("reported %v != recomputed %v", res.Covered, got)
	}
	unweighted := float64(inst.G.Coverage(res.Sets)) * 2.5
	if math.Abs(unweighted-res.Covered) > 1e-9 {
		t.Fatalf("uniform-weight run disagrees with unweighted: %v vs %v", res.Covered, unweighted)
	}
}

func TestGreedyApproximationRatio(t *testing.T) {
	rng := hashing.NewRNG(7)
	for trial := 0; trial < 10; trial++ {
		inst := workload.Uniform(10, 40, 0.15, uint64(trial))
		ws := make([]float64, 40)
		for i := range ws {
			ws[i] = math.Pow(2, float64(rng.Intn(8))) // weights 1..128
		}
		in := Instance{G: inst.G, W: ws}
		k := 3
		greedyVal := MaxCover(in, k).Covered
		opt := bruteWeighted(in, k)
		if greedyVal < (1-1/math.E-1e-9)*opt {
			t.Fatalf("trial %d: greedy %v below (1-1/e)·opt %v", trial, greedyVal, opt)
		}
	}
}

func TestGreedyPrefersHeavyElements(t *testing.T) {
	// Set 0 covers many light elements; set 1 covers one heavy element.
	g := bipartite.MustFromEdges(2, 11, []bipartite.Edge{
		{Set: 0, Elem: 0}, {Set: 0, Elem: 1}, {Set: 0, Elem: 2}, {Set: 0, Elem: 3},
		{Set: 1, Elem: 10},
	})
	ws := uniformWeights(11, 1)
	ws[10] = 1000
	res := MaxCover(Instance{G: g, W: ws}, 1)
	if len(res.Sets) != 1 || res.Sets[0] != 1 {
		t.Fatalf("greedy picked %v, want the heavy set", res.Sets)
	}
}

func TestGreedySkipsZeroGain(t *testing.T) {
	g := bipartite.MustFromEdges(3, 2, []bipartite.Edge{
		{Set: 0, Elem: 0}, {Set: 1, Elem: 0}, {Set: 2, Elem: 1},
	})
	res := MaxCover(Instance{G: g, W: []float64{5, 1}}, 3)
	if len(res.Sets) != 2 {
		t.Fatalf("picked %v; the duplicate set adds nothing", res.Sets)
	}
}

func TestClassIndex(t *testing.T) {
	cases := []struct {
		w    float64
		want int
	}{
		{1, 0}, {1.5, 0}, {2, 1}, {3.99, 1}, {4, 2}, {0.5, -1}, {0.3, -2},
	}
	for _, c := range cases {
		if got := classIndex(c.w); got != c.want {
			t.Fatalf("classIndex(%v) = %d, want %d", c.w, got, c.want)
		}
	}
}

func TestStreamingKCoverUniformMatchesUnweightedPipeline(t *testing.T) {
	// With all weights equal, the weighted pipeline must behave like the
	// unweighted one (single class, same structure).
	inst := workload.PlantedKCover(40, 2000, 4, 0.9, 10, 3)
	res, err := KCover(stream.Shuffled(inst.G, 1), 40, 4,
		func(uint32) float64 { return 1 },
		Options{Eps: 0.4, Seed: 9, NumElems: 2000, EdgeBudget: 60 * 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes != 1 {
		t.Fatalf("uniform weights produced %d classes", res.Classes)
	}
	in := Instance{G: inst.G, W: uniformWeights(2000, 1)}
	got := in.Coverage(res.Sets)
	if got < (1-1/math.E-0.45)*float64(inst.PlantedCoverage) {
		t.Fatalf("covered %v, planted %d", got, inst.PlantedCoverage)
	}
}

func TestStreamingKCoverHeavyClassDominates(t *testing.T) {
	// Elements 0..9 weigh 1000 and belong to set 0 only; the rest weigh 1.
	var edges []bipartite.Edge
	for e := 0; e < 10; e++ {
		edges = append(edges, bipartite.Edge{Set: 0, Elem: uint32(e)})
	}
	for e := 10; e < 500; e++ {
		edges = append(edges, bipartite.Edge{Set: uint32(1 + e%9), Elem: uint32(e)})
	}
	g := bipartite.MustFromEdges(10, 500, edges)
	weightOf := func(e uint32) float64 {
		if e < 10 {
			return 1000
		}
		return 1
	}
	res, err := KCover(stream.Shuffled(g, 2), 10, 1, weightOf,
		Options{Eps: 0.4, Seed: 5, NumElems: 500, EdgeBudget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 1 || res.Sets[0] != 0 {
		t.Fatalf("picked %v, want the heavy set 0", res.Sets)
	}
	if res.Classes < 2 {
		t.Fatalf("expected >= 2 weight classes, got %d", res.Classes)
	}
}

func TestStreamingKCoverEstimateAccuracy(t *testing.T) {
	// Under sampling, the estimated weighted coverage should land near
	// the true weighted coverage of the returned solution.
	inst := workload.LargeSets(12, 6000, 0.35, 4)
	rng := hashing.NewRNG(11)
	ws := make([]float64, 6000)
	for i := range ws {
		ws[i] = 1 + 7*rng.Float64() // one weight class boundary spanned
	}
	in := Instance{G: inst.G, W: ws}
	res, err := KCover(stream.Shuffled(inst.G, 3), 12, 3,
		func(e uint32) float64 { return ws[e] },
		Options{Eps: 0.4, Seed: 13, NumElems: 6000, EdgeBudget: 1200})
	if err != nil {
		t.Fatal(err)
	}
	truth := in.Coverage(res.Sets)
	if res.EstimatedCoverage < 0.75*truth || res.EstimatedCoverage > 1.25*truth {
		t.Fatalf("estimate %v vs truth %v", res.EstimatedCoverage, truth)
	}
}

func TestStreamingKCoverSkipsZeroWeights(t *testing.T) {
	inst := workload.Uniform(8, 100, 0.2, 5)
	res, err := KCover(stream.Shuffled(inst.G, 1), 8, 2,
		func(e uint32) float64 {
			if e%2 == 0 {
				return 0
			}
			return 1
		},
		Options{Eps: 0.4, Seed: 3, NumElems: 100, EdgeBudget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes != 1 {
		t.Fatalf("zero weights should be skipped; classes = %d", res.Classes)
	}
	if len(res.Sets) == 0 {
		t.Fatal("empty solution")
	}
}

func TestStreamingKCoverValidation(t *testing.T) {
	if _, err := KCover(stream.NewSlice(nil), 0, 1, func(uint32) float64 { return 1 }, Options{}); err == nil {
		t.Fatal("numSets=0 accepted")
	}
	if _, err := KCover(stream.NewSlice(nil), 5, 0, func(uint32) float64 { return 1 }, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KCover(stream.NewSlice(nil), 5, 1, nil, Options{}); err == nil {
		t.Fatal("nil weight oracle accepted")
	}
}
