// Package weighted extends the paper's machinery to weighted maximum
// coverage: elements carry non-negative weights and the goal is to pick
// k sets maximizing the total weight of their union. The paper treats
// the unweighted case; this extension follows the standard reduction to
// it: bucket elements into geometric weight classes [2^j, 2^{j+1}), keep
// one H≤n sketch per class (each class is a uniform subsample of its
// elements, so Lemma 2.2's concentration applies per class), and solve
// with a weighted lazy greedy on the union of the class sketches with
// every kept element's weight scaled by 1/p*_j of its class.
//
// The greedy stage inherits the classical 1−1/e guarantee for weighted
// coverage (a monotone submodular function), and each class estimate is
// (1±ε)-accurate w.h.p., so the end-to-end loss matches the unweighted
// pipeline up to the number of non-empty classes (a log(w_max/w_min)
// factor in space).
package weighted

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/bipartite"
	"repro/internal/stream"
)

// Instance is a coverage instance with element weights.
type Instance struct {
	G *bipartite.Graph
	// W[e] is the non-negative weight of element e; len(W) = NumElems.
	W []float64
}

// Validate checks dimensions and weight signs.
func (in Instance) Validate() error {
	if in.G == nil {
		return fmt.Errorf("weighted: nil graph")
	}
	if len(in.W) != in.G.NumElems() {
		return fmt.Errorf("weighted: %d weights for %d elements", len(in.W), in.G.NumElems())
	}
	for e, w := range in.W {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("weighted: bad weight %v for element %d", w, e)
		}
	}
	return nil
}

// Coverage returns the total weight of the union of the given sets.
func (in Instance) Coverage(sets []int) float64 {
	cov := bipartite.NewCoverer(in.G)
	total := 0.0
	for _, s := range sets {
		for _, e := range in.G.Set(s) {
			if !cov.IsCovered(e) {
				total += in.W[e]
			}
		}
		cov.Add(s)
	}
	return total
}

// --- weighted lazy greedy ---

type wCand struct {
	set  int
	gain float64
}

type wHeap []wCand

func (h wHeap) Len() int { return len(h) }
func (h wHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].set < h[j].set
}
func (h wHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wHeap) Push(x interface{}) { *h = append(*h, x.(wCand)) }
func (h *wHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// GreedyResult reports a weighted greedy run.
type GreedyResult struct {
	Sets    []int
	Covered float64
	// CoveredElems is the number of (sketch) elements the solution
	// covers — the raw count behind the weighted Covered total.
	CoveredElems int
}

// MaxCover picks at most k sets greedily by weighted marginal gain — the
// 1−1/e approximation for weighted coverage. Deterministic: gain ties
// break by smaller set id (with an epsilon tolerance for float noise).
func MaxCover(in Instance, k int) GreedyResult {
	if err := in.Validate(); err != nil {
		panic(err)
	}
	g := in.G
	cov := bipartite.NewCoverer(g)
	marginal := func(s int) float64 {
		gain := 0.0
		for _, e := range g.Set(s) {
			if !cov.IsCovered(e) {
				gain += in.W[e]
			}
		}
		return gain
	}
	h := make(wHeap, 0, g.NumSets())
	for s := 0; s < g.NumSets(); s++ {
		if gain := marginal(s); gain > 0 {
			h = append(h, wCand{set: s, gain: gain})
		}
	}
	heap.Init(&h)

	res := GreedyResult{}
	const tol = 1e-12
	for h.Len() > 0 && len(res.Sets) < k {
		top := h[0]
		fresh := marginal(top.set)
		if math.Abs(fresh-top.gain) > tol*(1+math.Abs(top.gain)) {
			if fresh <= 0 {
				heap.Pop(&h)
				continue
			}
			h[0].gain = fresh
			heap.Fix(&h, 0)
			continue
		}
		if fresh <= 0 {
			break
		}
		heap.Pop(&h)
		cov.Add(top.set)
		res.Sets = append(res.Sets, top.set)
		res.Covered += fresh
	}
	res.CoveredElems = cov.Covered()
	return res
}

// --- streaming weighted k-cover via per-class sketches ---

// Options configures the streaming weighted k-cover.
type Options struct {
	// Eps is the accuracy parameter of each class sketch.
	Eps float64
	// Seed drives all hashing.
	Seed uint64
	// NumElems is m when known.
	NumElems int
	// EdgeBudget / SpaceFactor size each class sketch (see core.Params).
	EdgeBudget  int
	SpaceFactor float64
}

// Result reports a streaming weighted k-cover run.
type Result struct {
	Sets []int
	// EstimatedCoverage is the class-scaled weighted coverage estimate.
	EstimatedCoverage float64
	// CoveredElems is the number of sampled (union) elements the
	// solution covers — the raw count behind the weighted estimate.
	CoveredElems int
	// Classes is the number of non-empty weight classes sketched.
	Classes int
	// EdgesStored is the total edges across class sketches.
	EdgesStored int
}

// classIndex returns the geometric weight class of w (base 2). Elements
// of weight zero are ignored (they never contribute coverage).
func classIndex(w float64) int {
	return int(math.Floor(math.Log2(w)))
}

// KCover solves weighted k-cover over one pass of the edge stream. The
// caller supplies weightOf, the element-weight oracle (weights are
// instance metadata, like the element ids themselves). Elements with
// zero weight are skipped.
//
// The pass feeds a class Bank (bank.go) — one H≤n sketch per non-empty
// geometric weight class — and solves the weighted greedy on its scaled
// union. The bank assembles the union in a canonical class order, so
// KCover is fully deterministic given the options, and a sharded
// service merging per-shard banks over the same edges answers
// bit-identically (pinned by the server equivalence tests).
func KCover(st stream.Stream, numSets, k int, weightOf func(elem uint32) float64, opt Options) (*Result, error) {
	b, err := NewBank(numSets, k, opt, weightOf)
	if err != nil {
		return nil, err
	}
	b.AddStream(st)
	return b.Solve(k)
}
