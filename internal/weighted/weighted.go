// Package weighted extends the paper's machinery to weighted maximum
// coverage: elements carry non-negative weights and the goal is to pick
// k sets maximizing the total weight of their union. The paper treats
// the unweighted case; this extension follows the standard reduction to
// it: bucket elements into geometric weight classes [2^j, 2^{j+1}), keep
// one H≤n sketch per class (each class is a uniform subsample of its
// elements, so Lemma 2.2's concentration applies per class), and solve
// with a weighted lazy greedy on the union of the class sketches with
// every kept element's weight scaled by 1/p*_j of its class.
//
// The greedy stage inherits the classical 1−1/e guarantee for weighted
// coverage (a monotone submodular function), and each class estimate is
// (1±ε)-accurate w.h.p., so the end-to-end loss matches the unweighted
// pipeline up to the number of non-empty classes (a log(w_max/w_min)
// factor in space).
package weighted

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/stream"
)

// Instance is a coverage instance with element weights.
type Instance struct {
	G *bipartite.Graph
	// W[e] is the non-negative weight of element e; len(W) = NumElems.
	W []float64
}

// Validate checks dimensions and weight signs.
func (in Instance) Validate() error {
	if in.G == nil {
		return fmt.Errorf("weighted: nil graph")
	}
	if len(in.W) != in.G.NumElems() {
		return fmt.Errorf("weighted: %d weights for %d elements", len(in.W), in.G.NumElems())
	}
	for e, w := range in.W {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("weighted: bad weight %v for element %d", w, e)
		}
	}
	return nil
}

// Coverage returns the total weight of the union of the given sets.
func (in Instance) Coverage(sets []int) float64 {
	cov := bipartite.NewCoverer(in.G)
	total := 0.0
	for _, s := range sets {
		for _, e := range in.G.Set(s) {
			if !cov.IsCovered(e) {
				total += in.W[e]
			}
		}
		cov.Add(s)
	}
	return total
}

// --- weighted lazy greedy ---

type wCand struct {
	set  int
	gain float64
}

type wHeap []wCand

func (h wHeap) Len() int { return len(h) }
func (h wHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].set < h[j].set
}
func (h wHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wHeap) Push(x interface{}) { *h = append(*h, x.(wCand)) }
func (h *wHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// GreedyResult reports a weighted greedy run.
type GreedyResult struct {
	Sets    []int
	Covered float64
}

// MaxCover picks at most k sets greedily by weighted marginal gain — the
// 1−1/e approximation for weighted coverage. Deterministic: gain ties
// break by smaller set id (with an epsilon tolerance for float noise).
func MaxCover(in Instance, k int) GreedyResult {
	if err := in.Validate(); err != nil {
		panic(err)
	}
	g := in.G
	cov := bipartite.NewCoverer(g)
	marginal := func(s int) float64 {
		gain := 0.0
		for _, e := range g.Set(s) {
			if !cov.IsCovered(e) {
				gain += in.W[e]
			}
		}
		return gain
	}
	h := make(wHeap, 0, g.NumSets())
	for s := 0; s < g.NumSets(); s++ {
		if gain := marginal(s); gain > 0 {
			h = append(h, wCand{set: s, gain: gain})
		}
	}
	heap.Init(&h)

	res := GreedyResult{}
	const tol = 1e-12
	for h.Len() > 0 && len(res.Sets) < k {
		top := h[0]
		fresh := marginal(top.set)
		if math.Abs(fresh-top.gain) > tol*(1+math.Abs(top.gain)) {
			if fresh <= 0 {
				heap.Pop(&h)
				continue
			}
			h[0].gain = fresh
			heap.Fix(&h, 0)
			continue
		}
		if fresh <= 0 {
			break
		}
		heap.Pop(&h)
		cov.Add(top.set)
		res.Sets = append(res.Sets, top.set)
		res.Covered += fresh
	}
	return res
}

// --- streaming weighted k-cover via per-class sketches ---

// Options configures the streaming weighted k-cover.
type Options struct {
	// Eps is the accuracy parameter of each class sketch.
	Eps float64
	// Seed drives all hashing.
	Seed uint64
	// NumElems is m when known.
	NumElems int
	// EdgeBudget / SpaceFactor size each class sketch (see core.Params).
	EdgeBudget  int
	SpaceFactor float64
}

// Result reports a streaming weighted k-cover run.
type Result struct {
	Sets []int
	// EstimatedCoverage is the class-scaled weighted coverage estimate.
	EstimatedCoverage float64
	// Classes is the number of non-empty weight classes sketched.
	Classes int
	// EdgesStored is the total edges across class sketches.
	EdgesStored int
}

// classIndex returns the geometric weight class of w (base 2). Elements
// of weight zero are ignored (they never contribute coverage).
func classIndex(w float64) int {
	return int(math.Floor(math.Log2(w)))
}

// KCover solves weighted k-cover over one pass of the edge stream. The
// caller supplies weightOf, the element-weight oracle (weights are
// instance metadata, like the element ids themselves). Elements with
// zero weight are skipped.
func KCover(st stream.Stream, numSets, k int, weightOf func(elem uint32) float64, opt Options) (*Result, error) {
	if numSets <= 0 || k <= 0 {
		return nil, fmt.Errorf("weighted: KCover needs positive numSets and k")
	}
	if weightOf == nil {
		return nil, fmt.Errorf("weighted: nil weight oracle")
	}
	eps := opt.Eps
	if eps <= 0 || eps > 1 {
		eps = 0.5
	}
	baseParams := core.Params{
		NumSets:     numSets,
		NumElems:    opt.NumElems,
		K:           k,
		Eps:         eps / 12,
		Seed:        opt.Seed,
		EdgeBudget:  opt.EdgeBudget,
		SpaceFactor: opt.SpaceFactor,
	}

	// One sketch per non-empty weight class, created lazily.
	sketches := map[int]*core.Sketch{}
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		w := weightOf(e.Elem)
		if w <= 0 {
			continue
		}
		ci := classIndex(w)
		sk, ok := sketches[ci]
		if !ok {
			p := baseParams
			// Independent hashing per class, derived from the seed.
			p.Seed = opt.Seed ^ (uint64(int64(ci))+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
			var err error
			sk, err = core.NewSketch(p)
			if err != nil {
				return nil, err
			}
			sketches[ci] = sk
		}
		sk.AddEdge(e)
	}

	// Assemble the union instance: kept elements from every class, with
	// weights scaled by 1/p*_class so weighted coverage on the union
	// estimates weighted coverage on the input.
	var (
		edges   []bipartite.Edge
		weights []float64
		nextID  uint32
		stored  int
	)
	for _, sk := range sketches {
		g, ids := sk.Graph()
		scale := 1 / sk.PStar()
		stored += sk.Edges()
		for newID, orig := range ids {
			for _, set := range g.Elem(newID) {
				edges = append(edges, bipartite.Edge{Set: set, Elem: nextID})
			}
			weights = append(weights, weightOf(orig)*scale)
			nextID++
		}
	}
	union, err := bipartite.FromEdges(numSets, int(nextID), edges)
	if err != nil {
		return nil, fmt.Errorf("weighted: union sketch: %w", err)
	}
	res := MaxCover(Instance{G: union, W: weights}, k)
	return &Result{
		Sets:              res.Sets,
		EstimatedCoverage: res.Covered,
		Classes:           len(sketches),
		EdgesStored:       stored,
	}, nil
}
