package wire

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/server"
)

func dynConfig() server.Config {
	cfg := baseConfig()
	cfg.Engine = server.ModeDynamic
	return cfg
}

// TestOpsHelloRejectedOnLegacyEngine: a session announcing the op plane
// against an append-only engine is refused at the handshake — before
// any frame could carry a delete — with the typed code.
func TestOpsHelloRejectedOnLegacyEngine(t *testing.T) {
	sieve := baseConfig()
	sieve.Engine = server.ModeSieve
	sieve.Shards = 1
	env := newTestEnv(t, map[string]server.Config{
		"default": baseConfig(),
		"sv":      sieve,
		"dyn":     dynConfig(),
	}, Options{})

	for _, ns := range []string{"default", "sv"} {
		_, err := Dial(env.addr, Hello{Namespace: ns, Ops: true})
		var werr *WireError
		if !errors.As(err, &werr) || werr.Code != CodeOpsUnsupported {
			t.Fatalf("ops hello on %q: err=%v, want WireError code %d", ns, err, CodeOpsUnsupported)
		}
	}

	// The dynamic namespace accepts the same hello.
	c, err := Dial(env.addr, Hello{Namespace: "dyn", Ops: true})
	if err != nil {
		t.Fatalf("ops hello on dynamic namespace: %v", err)
	}
	if hs := c.Handshake(); hs.Engine != string(server.ModeDynamic) {
		t.Fatalf("handshake engine %q, want dynamic", hs.Engine)
	}
	c.Close()
}

// TestOpFrameWithoutNegotiation: an op-batch frame on a session whose
// hello did not set Ops is rejected even on a delete-capable engine —
// the negotiation is per session, not per namespace.
func TestOpFrameWithoutNegotiation(t *testing.T) {
	env := newTestEnv(t, map[string]server.Config{"dyn": dynConfig()}, Options{})

	s := newRawSession(t, env.addr, Hello{Namespace: "dyn"})
	body, err := AppendOpBatch(nil, 0, bipartite.Inserts([]bipartite.Edge{{Set: 1, Elem: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	s.send(AppendFrame(nil, FrameOpBatch, body))
	s.expectError(CodeOpsUnsupported)
}

// TestSessionOpsDeleteAll is the wire leg of the insert-all-delete-all
// acceptance: a session streams every edge as inserts and then retracts
// every one of them; the engine ends on the fully cancelled state and
// answers the empty solution.
func TestSessionOpsDeleteAll(t *testing.T) {
	env := newTestEnv(t, map[string]server.Config{"dyn": dynConfig()}, Options{AckEvery: 4})
	eng, _ := env.multi.Get("dyn")

	conn, err := Dial(env.addr, Hello{Namespace: "dyn", Ops: true})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	rng := rand.New(rand.NewSource(6))
	edges := randomEdges(rng, 500, 64)

	for off := 0; off < len(edges); off += 50 {
		if err := conn.SendOps(bipartite.Inserts(edges[off : off+50])); err != nil {
			t.Fatalf("SendOps(inserts): %v", err)
		}
	}
	for off := 0; off < len(edges); off += 50 {
		if err := conn.SendOps(bipartite.Deletes(edges[off : off+50])); err != nil {
			t.Fatalf("SendOps(deletes): %v", err)
		}
	}
	if err := conn.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if wm := conn.Watermark(); wm != int64(2*len(edges)) {
		t.Fatalf("watermark %d, want %d (offsets count ops)", wm, 2*len(edges))
	}
	if err := conn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if got := eng.IngestedEdges(); got != int64(2*len(edges)) {
		t.Fatalf("engine ingested %d ops, want %d", got, 2*len(edges))
	}
	res, err := eng.Query(server.Query{Algo: server.AlgoKCover, K: 4, Refresh: true})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Sets) != 0 || res.EstimatedCoverage != 0 || res.SketchCoverage != 0 {
		t.Fatalf("delete-all over the wire answered %v (coverage %v/%d), want the empty solution",
			res.Sets, res.EstimatedCoverage, res.SketchCoverage)
	}
}

// TestOpsReconnectResumesExactlyOnce: op offsets ride the same
// watermark/dedup machinery as edge offsets, so a crashed-and-resumed
// op stream applies every delete exactly once. Over-applied deletes
// would leave net-negative cells, so the final empty decode doubles as
// a cancellation check.
func TestOpsReconnectResumesExactlyOnce(t *testing.T) {
	env := newTestEnv(t, map[string]server.Config{"dyn": dynConfig()}, Options{AckEvery: 2})
	eng, _ := env.multi.Get("dyn")

	rng := rand.New(rand.NewSource(7))
	edges := randomEdges(rng, 400, 64)
	ops := append(bipartite.Inserts(edges), bipartite.Deletes(edges)...)

	// First connection sends a prefix spanning the insert/delete
	// boundary, then dies without flushing.
	c1, err := Dial(env.addr, Hello{Namespace: "dyn", Stream: "loader", Ops: true})
	if err != nil {
		t.Fatalf("Dial 1: %v", err)
	}
	for sent := 0; sent < 500; sent += 25 {
		if err := c1.SendOps(ops[sent : sent+25]); err != nil {
			t.Fatalf("SendOps: %v", err)
		}
	}
	c1.Abort()

	c2, err := dialRetryBusy(env.addr, Hello{Namespace: "dyn", Stream: "loader", Ops: true})
	if err != nil {
		t.Fatalf("Dial 2: %v", err)
	}
	wm := c2.Handshake().Watermark
	if wm < 0 || wm > 500 {
		t.Fatalf("resume watermark %d outside [0,500]", wm)
	}
	if wm != eng.IngestedEdges() {
		t.Fatalf("resume watermark %d != engine ingested %d", wm, eng.IngestedEdges())
	}
	for off := int(wm); off < len(ops); {
		n := 30
		if off+n > len(ops) {
			n = len(ops) - off
		}
		if err := c2.SendOps(ops[off : off+n]); err != nil {
			t.Fatalf("resume SendOps: %v", err)
		}
		off += n
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if got := eng.IngestedEdges(); got != int64(len(ops)) {
		t.Fatalf("engine ingested %d ops, want %d (exactly-once violated)", got, len(ops))
	}
	res, err := eng.Query(server.Query{Algo: server.AlgoKCover, K: 4, Refresh: true})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Sets) != 0 || res.SketchCoverage != 0 {
		t.Fatalf("resumed delete stream did not cancel: answered %v (covered %d)", res.Sets, res.SketchCoverage)
	}
}
