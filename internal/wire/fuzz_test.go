package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/bipartite"
)

// wireErrors is the closed set of typed protocol errors: every decode
// failure on arbitrary input must wrap one of these (or be io.EOF on a
// clean empty stream) — never a panic, never an untyped error.
var wireErrors = []error{ErrBadMagic, ErrFrameTooLarge, ErrChecksum, ErrTruncated, ErrBadFrame}

func isTypedWireError(err error) bool {
	for _, want := range wireErrors {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

// FuzzDecodeFrame feeds arbitrary bytes to the frame reader and every
// body decoder: no input may panic, over-allocate past the declared
// cap, or fail with anything but a typed protocol error.
func FuzzDecodeFrame(f *testing.F) {
	// Well-formed seeds for every frame type...
	hello, _ := AppendHello(nil, Hello{Namespace: "default", Stream: "s", Engine: "sketch", CheckWeights: true, WeightSig: 42})
	f.Add(AppendFrame(nil, FrameHello, hello))
	f.Add(AppendFrame(nil, FrameHelloAck, AppendHelloAck(nil, HelloAck{Watermark: 7, NamespaceEdges: 9, Engine: "sieve", WeightSig: 1})))
	batch, _ := AppendBatch(nil, 128, []bipartite.Edge{{Set: 1, Elem: 2}, {Set: 3, Elem: 4}})
	f.Add(AppendFrame(nil, FrameBatch, batch))
	opBatch, _ := AppendOpBatch(nil, 64, []bipartite.Op{
		{Kind: bipartite.OpInsert, Edge: bipartite.Edge{Set: 1, Elem: 2}},
		{Kind: bipartite.OpDelete, Edge: bipartite.Edge{Set: 1, Elem: 2}},
	})
	f.Add(AppendFrame(nil, FrameOpBatch, opBatch))
	f.Add(AppendFrame(nil, FrameAck, AppendAck(nil, 1<<40)))
	f.Add(AppendFrame(nil, FrameFlush, nil))
	f.Add(AppendFrame(nil, FrameError, AppendError(nil, CodeGap, "gap")))
	// ... and structurally hostile ones.
	f.Add([]byte{})
	f.Add([]byte{FrameBatch})
	f.Add([]byte{FrameBatch, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, frameHeader))
	trunc := AppendFrame(nil, FrameBatch, batch)
	f.Add(trunc[:len(trunc)-3])
	corrupt := AppendFrame(nil, FrameHello, hello)
	corrupt[len(corrupt)-1] ^= 0x40
	f.Add(corrupt)

	const maxBody = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		var edges []bipartite.Edge
		var ops []bipartite.Op
		for {
			typ, body, err := ReadFrame(r, buf, maxBody)
			if err != nil {
				if err != io.EOF && !isTypedWireError(err) {
					t.Fatalf("untyped frame error: %v", err)
				}
				return
			}
			if len(body) > maxBody {
				t.Fatalf("body of %d bytes exceeds declared cap %d", len(body), maxBody)
			}
			// Decode the body as every shape it could claim to be: none
			// may panic, and failures must be typed.
			decoders := []func() error{
				func() error { _, err := DecodeHello(body); return err },
				func() error { _, err := DecodeHelloAck(body); return err },
				func() error { _, err := DecodeBatch(body, &edges); return err },
				func() error { _, err := DecodeOpBatch(body, &ops); return err },
				func() error { _, err := DecodeAck(body); return err },
				func() error { _, err := DecodeError(body); return err },
			}
			for i, dec := range decoders {
				if err := dec(); err != nil && !isTypedWireError(err) {
					t.Fatalf("decoder %d: untyped error on frame type %d: %v", i, typ, err)
				}
			}
			if cap(edges) > maxBody/8+1 {
				t.Fatalf("edge buffer grew to %d entries for %d-byte bodies", cap(edges), maxBody)
			}
			if cap(ops) > maxBody/8+1 {
				t.Fatalf("op buffer grew to %d entries for %d-byte bodies", cap(ops), maxBody)
			}
			buf = body[:0]
		}
	})
}

// FuzzFrameRoundTrip encodes arbitrary hello/batch/ack content and
// verifies decode(encode(x)) == x, including through the framed reader.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add("default", "stream-1", "sketch", true, uint64(42), int64(1000), uint16(2), []byte{1, 0, 0, 0, 2, 0, 0, 0})
	f.Add("", "", "", false, uint64(0), int64(0), uint16(0), []byte{})
	f.Add("ns.a-b_c", "loader/7", "weighted", true, ^uint64(0), int64(1)<<62, uint16(7), bytes.Repeat([]byte{0xA5}, 80))
	f.Fuzz(func(t *testing.T, ns, stream, engine string, checkW bool, sig uint64, offset int64, code uint16, raw []byte) {
		// Hello round trip (encode refuses overlong strings; skip those).
		h := Hello{Namespace: ns, Stream: stream, Engine: engine, CheckWeights: checkW, Ops: sig&1 != 0, WeightSig: sig}
		if body, err := AppendHello(nil, h); err == nil {
			got, err := DecodeHello(body)
			if err != nil {
				t.Fatalf("DecodeHello(AppendHello(%+v)): %v", h, err)
			}
			if got != h {
				t.Fatalf("hello round trip: %+v != %+v", got, h)
			}
		} else if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("AppendHello: untyped error %v", err)
		}

		// Hello-ack round trip (negative counters are not encodable
		// distinctly; the decoder rejects the >MaxInt64 patterns).
		if offset >= 0 {
			a := HelloAck{Watermark: offset, NamespaceEdges: offset / 2, Engine: engine, WeightSig: sig}
			if len(engine) <= maxHelloString {
				got, err := DecodeHelloAck(AppendHelloAck(nil, a))
				if err != nil {
					t.Fatalf("hello-ack: %v", err)
				}
				if got != a {
					t.Fatalf("hello-ack round trip: %+v != %+v", got, a)
				}
			}
		}

		// Batch round trip through a full frame: raw bytes become edges
		// (truncated to whole pairs), framed, read back, decoded.
		edges := make([]bipartite.Edge, 0, len(raw)/8)
		for i := 0; i+8 <= len(raw); i += 8 {
			edges = append(edges, bipartite.Edge{
				Set:  uint32(raw[i]) | uint32(raw[i+1])<<8 | uint32(raw[i+2])<<16 | uint32(raw[i+3])<<24,
				Elem: uint32(raw[i+4]) | uint32(raw[i+5])<<8 | uint32(raw[i+6])<<16 | uint32(raw[i+7])<<24,
			})
		}
		body, err := AppendBatch(nil, offset, edges)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("AppendBatch: untyped error %v", err)
			}
			if offset >= 0 && len(edges) <= MaxBatchEdges {
				t.Fatalf("AppendBatch refused valid input: %v", err)
			}
			return
		}
		framed := AppendFrame(nil, FrameBatch, body)
		typ, gotBody, err := ReadFrame(bytes.NewReader(framed), nil, 0)
		if err != nil || typ != FrameBatch {
			t.Fatalf("ReadFrame(framed batch): typ=%d err=%v", typ, err)
		}
		var gotEdges []bipartite.Edge
		gotOffset, err := DecodeBatch(gotBody, &gotEdges)
		if err != nil {
			t.Fatalf("DecodeBatch: %v", err)
		}
		if gotOffset != offset || len(gotEdges) != len(edges) {
			t.Fatalf("batch round trip: offset %d→%d, %d→%d edges", offset, gotOffset, len(edges), len(gotEdges))
		}
		for i := range edges {
			if gotEdges[i] != edges[i] {
				t.Fatalf("edge %d: %v != %v", i, gotEdges[i], edges[i])
			}
		}

		// Op-batch round trip: the same edges with kinds derived from the
		// raw bytes (the delete flag's bit position is reserved, so it is
		// masked out of the set id first).
		if offset >= 0 {
			opsIn := make([]bipartite.Op, len(edges))
			for i, e := range edges {
				kind := bipartite.OpInsert
				if e.Set&(1<<30) != 0 {
					kind = bipartite.OpDelete
				}
				e.Set &^= 1 << 31
				opsIn[i] = bipartite.Op{Kind: kind, Edge: e}
			}
			obody, err := AppendOpBatch(nil, offset, opsIn)
			if err != nil {
				t.Fatalf("AppendOpBatch: %v", err)
			}
			var opsOut []bipartite.Op
			gotOff, err := DecodeOpBatch(obody, &opsOut)
			if err != nil {
				t.Fatalf("DecodeOpBatch: %v", err)
			}
			if gotOff != offset || len(opsOut) != len(opsIn) {
				t.Fatalf("op batch round trip: offset %d→%d, %d→%d ops", offset, gotOff, len(opsIn), len(opsOut))
			}
			for i := range opsIn {
				if opsOut[i] != opsIn[i] {
					t.Fatalf("op %d: %+v != %+v", i, opsOut[i], opsIn[i])
				}
			}
		}

		// Ack and error round trips.
		if offset >= 0 {
			if wm, err := DecodeAck(AppendAck(nil, offset)); err != nil || wm != offset {
				t.Fatalf("ack round trip: %d, %v", wm, err)
			}
		}
		msg := string(raw)
		werr, err := DecodeError(AppendError(nil, code, msg))
		if err != nil {
			t.Fatalf("error round trip: %v", err)
		}
		if werr.Code != code {
			t.Fatalf("error code %d != %d", werr.Code, code)
		}
		wantMsg := msg
		if len(wantMsg) > maxHelloString {
			wantMsg = wantMsg[:maxHelloString]
		}
		if werr.Message != wantMsg {
			t.Fatalf("error message round trip mismatch")
		}
	})
}
