package wire

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/bipartite"
)

// Conn is a client-side wire ingest connection: it streams batch
// frames at monotonically increasing stream offsets and tracks the
// server's acknowledged watermark from a background reader, so sends
// never wait for a round trip (pipelining) while Flush can still await
// durability of everything sent. Conn is safe for one sender goroutine;
// concurrent Send calls are serialized internally.
type Conn struct {
	nc net.Conn

	// wmu guards the writer and the send offset.
	wmu    sync.Mutex
	bw     *bufio.Writer
	offset int64  // next stream offset to send
	body   []byte // reusable batch-body buffer
	frame  []byte // reusable framed-output buffer

	// mu/cond guard the reader-published state.
	mu       sync.Mutex
	cond     *sync.Cond
	acked    int64
	readErr  error
	readDone chan struct{}

	hello HelloAck
}

// Dial connects to a wire listener, performs the handshake and returns
// a ready Conn. The hello's namespace must exist on the server; a
// protocol reject surfaces as *WireError.
func Dial(addr string, hello Hello) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewConn(nc, hello)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// NewConn performs the wire handshake over an existing connection
// (in-process pipes in tests, custom dialers) and returns a ready Conn.
// On error the caller still owns (and should close) nc.
func NewConn(nc net.Conn, hello Hello) (*Conn, error) {
	c := &Conn{
		nc:       nc,
		bw:       bufio.NewWriterSize(nc, 1<<16),
		readDone: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)

	helloBody, err := AppendHello(nil, hello)
	if err != nil {
		return nil, err
	}
	if _, err := c.bw.WriteString(Magic); err != nil {
		return nil, err
	}
	if _, err := c.bw.Write(AppendFrame(nil, FrameHello, helloBody)); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	// The handshake is synchronous: the server's first frame is either
	// the hello-ack or a typed reject.
	br := bufio.NewReaderSize(nc, 1<<12)
	typ, body, err := ReadFrame(br, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("wire: reading hello-ack: %w", err)
	}
	switch typ {
	case FrameHelloAck:
		ack, err := DecodeHelloAck(body)
		if err != nil {
			return nil, err
		}
		c.hello = ack
		c.offset = ack.Watermark
		c.acked = ack.Watermark
	case FrameError:
		werr, err := DecodeError(body)
		if err != nil {
			return nil, err
		}
		return nil, werr
	default:
		return nil, fmt.Errorf("%w: handshake answered with frame type %d", ErrBadFrame, typ)
	}
	go c.readLoop(br)
	return c, nil
}

// readLoop drains server frames (acks, or a terminal error) and
// publishes them; it exits when the connection closes.
func (c *Conn) readLoop(br *bufio.Reader) {
	defer close(c.readDone)
	var buf []byte
	for {
		typ, body, err := ReadFrame(br, buf, 0)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF // server never says EOF first on a healthy session
			}
			c.fail(fmt.Errorf("wire: connection lost: %w", err))
			return
		}
		buf = body[:0]
		switch typ {
		case FrameAck:
			wm, err := DecodeAck(body)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			if wm > c.acked {
				c.acked = wm
			}
			c.cond.Broadcast()
			c.mu.Unlock()
		case FrameError:
			werr, derr := DecodeError(body)
			if derr != nil {
				c.fail(derr)
			} else {
				c.fail(werr)
			}
			return
		default:
			c.fail(fmt.Errorf("%w: server sent frame type %d", ErrBadFrame, typ))
			return
		}
	}
}

func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Err returns the terminal connection error, if any (a *WireError for
// server rejects).
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// Handshake returns the server's hello-ack: the resume watermark, the
// namespace's engine mode and weight signature.
func (c *Conn) Handshake() HelloAck { return c.hello }

// Offset returns the next stream offset Send will use — the total
// number of edges sent (or resumed past) so far.
func (c *Conn) Offset() int64 {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.offset
}

// Watermark returns the server's last acknowledged edge watermark.
func (c *Conn) Watermark() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acked
}

// Send frames one edge batch at the current stream offset and writes it
// (one syscall, no round trip — acks arrive asynchronously). The
// caller's slice is copied into the frame before Send returns.
func (c *Conn) Send(edges []bipartite.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	if err := c.Err(); err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	body, err := AppendBatch(c.body[:0], c.offset, edges)
	if err != nil {
		return err
	}
	c.body = body
	c.frame = AppendFrame(c.frame[:0], FrameBatch, body)
	if _, err := c.bw.Write(c.frame); err != nil {
		return c.sendErr(err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.sendErr(err)
	}
	c.offset += int64(len(edges))
	return nil
}

// SendOps frames one operation batch (inserts and deletes) at the
// current stream offset — the op-plane Send. The session's hello must
// have set Ops (the server rejects unannounced op frames), and offsets
// advance by the op count, so Flush and reconnect-resume semantics are
// identical to the edge plane's.
func (c *Conn) SendOps(ops []bipartite.Op) error {
	if len(ops) == 0 {
		return nil
	}
	if err := c.Err(); err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	body, err := AppendOpBatch(c.body[:0], c.offset, ops)
	if err != nil {
		return err
	}
	c.body = body
	c.frame = AppendFrame(c.frame[:0], FrameOpBatch, body)
	if _, err := c.bw.Write(c.frame); err != nil {
		return c.sendErr(err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.sendErr(err)
	}
	c.offset += int64(len(ops))
	return nil
}

// sendErr prefers the reader's terminal error (a typed server reject)
// over the raw write failure it usually causes.
func (c *Conn) sendErr(err error) error {
	if rerr := c.Err(); rerr != nil {
		return rerr
	}
	return err
}

// Flush asks the server for an immediate ack and blocks until the
// acknowledged watermark covers everything sent so far (or the
// connection fails). On return every previously sent edge is in the
// engine — and in the WAL on a durable engine.
func (c *Conn) Flush() error {
	c.wmu.Lock()
	target := c.offset
	_, werr := c.bw.Write(AppendFrame(nil, FrameFlush, nil))
	ferr := c.bw.Flush()
	c.wmu.Unlock()
	if werr != nil {
		return c.sendErr(werr)
	}
	if ferr != nil {
		return c.sendErr(ferr)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.acked < target && c.readErr == nil {
		c.cond.Wait()
	}
	return c.readErr
}

// Close flushes (awaiting the final ack) and closes the connection.
func (c *Conn) Close() error {
	err := c.Flush()
	c.nc.Close()
	<-c.readDone
	return err
}

// Abort drops the connection without flushing — unacked frames may or
// may not have reached the engine; a reconnect with the same stream id
// resumes exactly from the server's watermark.
func (c *Conn) Abort() error {
	err := c.nc.Close()
	<-c.readDone
	return err
}
