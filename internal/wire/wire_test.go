package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/server"
)

// --- frame-level round trips ---

func randomEdges(rng *rand.Rand, n, numSets int) []bipartite.Edge {
	edges := make([]bipartite.Edge, n)
	for i := range edges {
		edges[i] = bipartite.Edge{Set: uint32(rng.Intn(numSets)), Elem: rng.Uint32()}
	}
	return edges
}

func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, body := range [][]byte{nil, {}, {7}, bytes.Repeat([]byte{0xAB}, 1024)} {
		framed := AppendFrame(nil, FrameBatch, body)
		typ, got, err := ReadFrame(bytes.NewReader(framed), nil, 0)
		if err != nil {
			t.Fatalf("ReadFrame(%d-byte body): %v", len(body), err)
		}
		if typ != FrameBatch || !bytes.Equal(got, body) {
			t.Fatalf("round trip mismatch: typ=%d body %d bytes", typ, len(got))
		}
	}
	// Several frames back to back through one reader, buffer reused.
	var stream []byte
	var bodies [][]byte
	for i := 0; i < 16; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		bodies = append(bodies, b)
		stream = AppendFrame(stream, byte(i%6+1), b)
	}
	r := bytes.NewReader(stream)
	var buf []byte
	for i, want := range bodies {
		typ, body, err := ReadFrame(r, buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != byte(i%6+1) || !bytes.Equal(body, want) {
			t.Fatalf("frame %d mismatch", i)
		}
		buf = body[:0]
	}
	if _, _, err := ReadFrame(r, buf, 0); err != io.EOF {
		t.Fatalf("after last frame: err=%v, want io.EOF", err)
	}
}

func TestReadFrameTypedErrors(t *testing.T) {
	good := AppendFrame(nil, FrameAck, AppendAck(nil, 42))

	// Truncations at every prefix length: mid-header and mid-body are
	// ErrTruncated, zero bytes is a clean io.EOF.
	for cut := 0; cut < len(good); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(good[:cut]), nil, 0)
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut=0: err=%v, want io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: err=%v, want ErrTruncated", cut, err)
		}
	}

	// Oversized claimed length is rejected before allocation.
	big := make([]byte, frameHeader)
	big[0] = FrameBatch
	binary.LittleEndian.PutUint32(big[1:], MaxFrameBody+1)
	if _, _, err := ReadFrame(bytes.NewReader(big), nil, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized: err=%v, want ErrFrameTooLarge", err)
	}
	// ... and against a caller-supplied tighter cap.
	tight := AppendFrame(nil, FrameBatch, make([]byte, 100))
	if _, _, err := ReadFrame(bytes.NewReader(tight), nil, 50); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("over cap: err=%v, want ErrFrameTooLarge", err)
	}

	// A flipped body bit fails the CRC.
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0x01
	if _, _, err := ReadFrame(bytes.NewReader(corrupt), nil, 0); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt body: err=%v, want ErrChecksum", err)
	}
	// A flipped CRC byte too.
	corrupt = append([]byte(nil), good...)
	corrupt[5] ^= 0x80
	if _, _, err := ReadFrame(bytes.NewReader(corrupt), nil, 0); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt crc: err=%v, want ErrChecksum", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, h := range []Hello{
		{},
		{Namespace: "default"},
		{Namespace: "ns-1", Stream: "loader/7", Engine: "sketch"},
		{Namespace: "w", Engine: "weighted", CheckWeights: true, WeightSig: 0xDEADBEEFCAFE},
	} {
		body, err := AppendHello(nil, h)
		if err != nil {
			t.Fatalf("AppendHello(%+v): %v", h, err)
		}
		got, err := DecodeHello(body)
		if err != nil {
			t.Fatalf("DecodeHello(%+v): %v", h, err)
		}
		if got != h {
			t.Fatalf("hello round trip: got %+v, want %+v", got, h)
		}
	}
	// Overlong strings are refused on the encode side...
	long := string(bytes.Repeat([]byte{'x'}, maxHelloString+1))
	if _, err := AppendHello(nil, Hello{Namespace: long}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overlong namespace: err=%v, want ErrBadFrame", err)
	}
	// ... and on the decode side.
	bad := []byte{0}
	bad = binary.LittleEndian.AppendUint16(bad, maxHelloString+1)
	bad = append(bad, bytes.Repeat([]byte{'x'}, maxHelloString+1)...)
	if _, err := DecodeHello(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("decode overlong: err=%v, want ErrBadFrame", err)
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	for _, a := range []HelloAck{
		{},
		{Watermark: 12345, NamespaceEdges: 999999, Engine: "sieve", WeightSig: 7},
	} {
		got, err := DecodeHelloAck(AppendHelloAck(nil, a))
		if err != nil {
			t.Fatalf("DecodeHelloAck(%+v): %v", a, err)
		}
		if got != a {
			t.Fatalf("hello-ack round trip: got %+v, want %+v", got, a)
		}
	}
	if _, err := DecodeHelloAck([]byte{1, 2, 3}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short hello-ack: err=%v, want ErrBadFrame", err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var edges []bipartite.Edge
	for _, n := range []int{0, 1, 7, 1000} {
		want := randomEdges(rng, n, 1000)
		body, err := AppendBatch(nil, int64(n)*31, want)
		if err != nil {
			t.Fatalf("AppendBatch(%d edges): %v", n, err)
		}
		off, err := DecodeBatch(body, &edges)
		if err != nil {
			t.Fatalf("DecodeBatch(%d edges): %v", n, err)
		}
		if off != int64(n)*31 || len(edges) != n {
			t.Fatalf("batch round trip: off=%d len=%d", off, len(edges))
		}
		for i := range want {
			if edges[i] != want[i] {
				t.Fatalf("edge %d mismatch: %v != %v", i, edges[i], want[i])
			}
		}
	}
	if _, err := AppendBatch(nil, -1, nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("negative offset: err=%v, want ErrBadFrame", err)
	}
	if _, err := DecodeBatch([]byte{1, 2, 3}, &edges); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short batch: err=%v, want ErrBadFrame", err)
	}
	if _, err := DecodeBatch(make([]byte, 8+4), &edges); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("ragged batch: err=%v, want ErrBadFrame", err)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	got, err := DecodeError(AppendError(nil, CodeGap, "offset 9 after watermark 3"))
	if err != nil {
		t.Fatalf("DecodeError: %v", err)
	}
	if got.Code != CodeGap || got.Message != "offset 9 after watermark 3" {
		t.Fatalf("error round trip: %+v", got)
	}
	// Overlong messages are truncated, not refused.
	long := string(bytes.Repeat([]byte{'m'}, 2*maxHelloString))
	got, err = DecodeError(AppendError(nil, CodeIngest, long))
	if err != nil {
		t.Fatalf("DecodeError(truncated msg): %v", err)
	}
	if len(got.Message) != maxHelloString {
		t.Fatalf("message not truncated: %d bytes", len(got.Message))
	}
}

// --- session tests over a real listener ---

type testEnv struct {
	multi *server.Multi
	srv   *Server
	addr  string
}

func newTestEnv(t *testing.T, cfgs map[string]server.Config, opt Options) *testEnv {
	t.Helper()
	m := server.NewMulti("")
	for name, cfg := range cfgs {
		if _, err := m.Create(name, cfg); err != nil {
			t.Fatalf("Create(%q): %v", name, err)
		}
	}
	s := NewServer(m, opt)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		s.Close()
		m.Close()
	})
	return &testEnv{multi: m, srv: s, addr: ln.Addr().String()}
}

func baseConfig() server.Config {
	return server.Config{NumSets: 64, K: 4, Eps: 0.5, Seed: 11, Shards: 2}
}

func TestSessionIngest(t *testing.T) {
	env := newTestEnv(t, map[string]server.Config{"default": baseConfig()}, Options{AckEvery: 4})
	eng, _ := env.multi.Get("default")

	conn, err := Dial(env.addr, Hello{Namespace: "default", Engine: "sketch"})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if hs := conn.Handshake(); hs.Watermark != 0 || hs.Engine != "sketch" {
		t.Fatalf("handshake: %+v", hs)
	}

	rng := rand.New(rand.NewSource(3))
	total := 0
	for i := 0; i < 25; i++ {
		batch := randomEdges(rng, 40, 64)
		if err := conn.Send(batch); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
		total += len(batch)
	}
	if err := conn.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if wm := conn.Watermark(); wm != int64(total) {
		t.Fatalf("watermark %d after flush, want %d", wm, total)
	}
	if got := eng.IngestedEdges(); got != int64(total) {
		t.Fatalf("engine ingested %d, want %d", got, total)
	}
	if err := conn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st := env.srv.Stats()
	if st.Frames != 25 || st.Edges != int64(total) || st.Acks == 0 || st.Rejects != 0 {
		t.Fatalf("server stats: %+v", st)
	}
	if st.BytesReceived == 0 {
		t.Fatalf("bytes received not counted")
	}
}

func TestSessionRejects(t *testing.T) {
	cfg := baseConfig()
	sieve := baseConfig()
	sieve.Engine = server.ModeSieve
	sieve.Shards = 1
	env := newTestEnv(t, map[string]server.Config{"default": cfg, "sv": sieve}, Options{})
	eng, _ := env.multi.Get("default")

	cases := []struct {
		name  string
		hello Hello
		code  uint16
	}{
		{"unknown namespace", Hello{Namespace: "nope"}, CodeUnknownNamespace},
		{"engine mismatch", Hello{Namespace: "sv", Engine: "sketch"}, CodeEngineMismatch},
		{"weights mismatch", Hello{Namespace: "default", CheckWeights: true, WeightSig: eng.WeightSig() + 1}, CodeWeightsMismatch},
	}
	for _, tc := range cases {
		_, err := Dial(env.addr, tc.hello)
		var werr *WireError
		if !errors.As(err, &werr) || werr.Code != tc.code {
			t.Fatalf("%s: err=%v, want WireError code %d", tc.name, err, tc.code)
		}
	}

	// A named stream is single-writer: the second connection is refused.
	c1, err := Dial(env.addr, Hello{Namespace: "default", Stream: "s1"})
	if err != nil {
		t.Fatalf("Dial stream: %v", err)
	}
	defer c1.Abort()
	_, err = Dial(env.addr, Hello{Namespace: "default", Stream: "s1"})
	var werr *WireError
	if !errors.As(err, &werr) || werr.Code != CodeStreamBusy {
		t.Fatalf("busy stream: err=%v, want WireError code %d", err, CodeStreamBusy)
	}

	if got := env.srv.Stats().Rejects; got != 4 {
		t.Fatalf("rejects=%d, want 4", got)
	}
}

// rawSession opens a TCP connection and performs the handshake by hand,
// so tests can send frames the well-behaved client never produces.
type rawSession struct {
	t  *testing.T
	nc net.Conn
}

func newRawSession(t *testing.T, addr string, hello Hello) *rawSession {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { nc.Close() })
	body, err := AppendHello(nil, hello)
	if err != nil {
		t.Fatalf("AppendHello: %v", err)
	}
	if _, err := nc.Write(append([]byte(Magic), AppendFrame(nil, FrameHello, body)...)); err != nil {
		t.Fatalf("write hello: %v", err)
	}
	s := &rawSession{t: t, nc: nc}
	typ, ackBody := s.readFrame()
	if typ != FrameHelloAck {
		t.Fatalf("handshake answered with frame type %d", typ)
	}
	if _, err := DecodeHelloAck(ackBody); err != nil {
		t.Fatalf("DecodeHelloAck: %v", err)
	}
	return s
}

func (s *rawSession) send(frame []byte) {
	s.t.Helper()
	if _, err := s.nc.Write(frame); err != nil {
		s.t.Fatalf("write frame: %v", err)
	}
}

func (s *rawSession) readFrame() (byte, []byte) {
	s.t.Helper()
	s.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, body, err := ReadFrame(s.nc, nil, 0)
	if err != nil {
		s.t.Fatalf("read frame: %v", err)
	}
	return typ, body
}

func (s *rawSession) expectError(code uint16) {
	s.t.Helper()
	typ, body := s.readFrame()
	if typ != FrameError {
		s.t.Fatalf("frame type %d, want error", typ)
	}
	werr, err := DecodeError(body)
	if err != nil {
		s.t.Fatalf("DecodeError: %v", err)
	}
	if werr.Code != code {
		s.t.Fatalf("error code %d (%s), want %d", werr.Code, werr.Message, code)
	}
}

func batchFrame(t *testing.T, offset int64, edges []bipartite.Edge) []byte {
	t.Helper()
	body, err := AppendBatch(nil, offset, edges)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	return AppendFrame(nil, FrameBatch, body)
}

func TestServerDedupGapAndTrim(t *testing.T) {
	env := newTestEnv(t, map[string]server.Config{"default": baseConfig()}, Options{AckEvery: 1})
	eng, _ := env.multi.Get("default")
	rng := rand.New(rand.NewSource(4))
	edges := randomEdges(rng, 20, 64)

	s := newRawSession(t, env.addr, Hello{Namespace: "default", Stream: "replay"})

	// Fresh batch [0,10).
	s.send(batchFrame(t, 0, edges[:10]))
	if typ, body := s.readFrame(); typ != FrameAck {
		t.Fatalf("frame type %d, want ack", typ)
	} else if wm, _ := DecodeAck(body); wm != 10 {
		t.Fatalf("ack watermark %d, want 10", wm)
	}

	// Exact duplicate — skipped entirely, watermark unchanged.
	s.send(batchFrame(t, 0, edges[:10]))
	if typ, body := s.readFrame(); typ != FrameAck {
		t.Fatalf("frame type %d, want ack", typ)
	} else if wm, _ := DecodeAck(body); wm != 10 {
		t.Fatalf("dup ack watermark %d, want 10", wm)
	}

	// Partial overlap [5,20): only edges [10,20) are ingested.
	s.send(batchFrame(t, 5, edges[5:]))
	if typ, body := s.readFrame(); typ != FrameAck {
		t.Fatalf("frame type %d, want ack", typ)
	} else if wm, _ := DecodeAck(body); wm != 20 {
		t.Fatalf("trim ack watermark %d, want 20", wm)
	}

	if got := eng.IngestedEdges(); got != 20 {
		t.Fatalf("engine ingested %d, want 20 (dedup failed)", got)
	}
	st := env.srv.Stats()
	if st.DupFrames != 1 {
		t.Fatalf("dup frames %d, want 1", st.DupFrames)
	}

	// A gap beyond the watermark is a reject.
	s.send(batchFrame(t, 25, edges[:5]))
	s.expectError(CodeGap)
}

func TestServerRejectsMalformedFrames(t *testing.T) {
	env := newTestEnv(t, map[string]server.Config{"default": baseConfig()}, Options{})

	// Bad magic closes the session with an error frame.
	nc, err := net.Dial("tcp", env.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	nc.Write([]byte("NOTMAGIC"))
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, body, err := ReadFrame(nc, nil, 0)
	if err != nil {
		t.Fatalf("read reject: %v", err)
	}
	if typ != FrameError {
		t.Fatalf("frame type %d, want error", typ)
	}
	if werr, _ := DecodeError(body); werr == nil || werr.Code != CodeBadFrame {
		t.Fatalf("bad magic answer: %v", werr)
	}
	nc.Close()

	// A corrupt batch body (CRC flip) after a valid handshake.
	s := newRawSession(t, env.addr, Hello{Namespace: "default"})
	frame := batchFrame(t, 0, []bipartite.Edge{{Set: 1, Elem: 2}})
	frame[len(frame)-1] ^= 0x01
	s.send(frame)
	s.expectError(CodeBadFrame)

	// An out-of-range edge is an ingest reject.
	s2 := newRawSession(t, env.addr, Hello{Namespace: "default"})
	s2.send(batchFrame(t, 0, []bipartite.Edge{{Set: 1 << 20, Elem: 0}}))
	s2.expectError(CodeIngest)
	if got := env.srv.Stats().IngestErrors; got != 1 {
		t.Fatalf("ingest errors %d, want 1", got)
	}
}

// dialRetryBusy dials like a reconnecting producer: a named stream is
// released only when the server notices the old connection died, so a
// brief CodeStreamBusy window after an abort is expected and retried.
func dialRetryBusy(addr string, hello Hello) (*Conn, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := Dial(addr, hello)
		var werr *WireError
		if errors.As(err, &werr) && werr.Code == CodeStreamBusy && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		return c, err
	}
}

func TestReconnectResumesFromWatermark(t *testing.T) {
	env := newTestEnv(t, map[string]server.Config{"default": baseConfig()}, Options{AckEvery: 2})
	eng, _ := env.multi.Get("default")
	rng := rand.New(rand.NewSource(5))
	edges := randomEdges(rng, 1000, 64)

	// First connection sends some prefix, then dies without flushing.
	c1, err := Dial(env.addr, Hello{Namespace: "default", Stream: "loader"})
	if err != nil {
		t.Fatalf("Dial 1: %v", err)
	}
	sent := 0
	for sent < 600 {
		if err := c1.Send(edges[sent : sent+50]); err != nil {
			t.Fatalf("Send: %v", err)
		}
		sent += 50
	}
	c1.Abort()

	// The reconnect learns the acknowledged watermark and resumes there;
	// resending everything from the watermark (even already-ingested
	// overlap would be deduped — here the watermark is exact). The stream
	// stays busy until the server notices the dropped connection, so a
	// reconnecting client retries on CodeStreamBusy.
	c2, err := dialRetryBusy(env.addr, Hello{Namespace: "default", Stream: "loader"})
	if err != nil {
		t.Fatalf("Dial 2: %v", err)
	}
	wm := c2.Handshake().Watermark
	if wm < 0 || wm > int64(sent) {
		t.Fatalf("resume watermark %d outside [0,%d]", wm, sent)
	}
	if wm != eng.IngestedEdges() {
		t.Fatalf("resume watermark %d != engine ingested %d", wm, eng.IngestedEdges())
	}
	for off := int(wm); off < len(edges); {
		n := 64
		if off+n > len(edges) {
			n = len(edges) - off
		}
		if err := c2.Send(edges[off : off+n]); err != nil {
			t.Fatalf("resume Send: %v", err)
		}
		off += n
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := eng.IngestedEdges(); got != int64(len(edges)) {
		t.Fatalf("engine ingested %d, want %d (exactly-once violated)", got, len(edges))
	}
}

// TestBackpressureRaceInvariant hammers a 1-slot-mailbox engine over the
// wire while Refresh and Checkpoint run concurrently, and continuously
// asserts the ack-watermark contract: the client's acknowledged
// watermark never exceeds the engine's ingested-edge count (which the
// WAL covers, since Ingest appends before it enqueues). Run with -race.
func TestBackpressureRaceInvariant(t *testing.T) {
	cfg := baseConfig()
	cfg.Shards = 2
	cfg.QueueDepth = 1 // 1-slot mailboxes: every burst stalls
	cfg.WAL = &server.WALConfig{Dir: t.TempDir(), Fsync: "off"}
	env := newTestEnv(t, map[string]server.Config{"default": cfg}, Options{AckEvery: 4})
	eng, _ := env.multi.Get("default")

	conn, err := Dial(env.addr, Hello{Namespace: "default", Stream: "blast"})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}

	const (
		batches   = 400
		batchSize = 256
	)
	rng := rand.New(rand.NewSource(6))
	edges := randomEdges(rng, batchSize, 64)

	var (
		stop     atomic.Bool
		violated atomic.Int64
		wg       sync.WaitGroup
	)
	// Invariant sampler: watermark first, engine count second — the
	// engine count can only have grown in between, so watermark ≤ count
	// must hold at every sample if the ack contract is honored.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			wm := conn.Watermark()
			ingested := eng.IngestedEdges()
			if wm > ingested {
				violated.Store(wm - ingested)
				return
			}
		}
	}()
	// Concurrent merge and checkpoint pressure.
	for _, work := range []func(){
		func() { eng.Refresh() },
		func() { eng.Checkpoint() },
	} {
		wg.Add(1)
		go func(work func()) {
			defer wg.Done()
			for !stop.Load() {
				work()
			}
		}(work)
	}

	for i := 0; i < batches; i++ {
		if err := conn.Send(edges); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if err := conn.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	stop.Store(true)
	wg.Wait()

	if d := violated.Load(); d != 0 {
		t.Fatalf("ack watermark exceeded engine ingested count by %d", d)
	}
	want := int64(batches * batchSize)
	if got := conn.Watermark(); got != want {
		t.Fatalf("final watermark %d, want %d", got, want)
	}
	if got := eng.IngestedEdges(); got != want {
		t.Fatalf("engine ingested %d, want %d", got, want)
	}
	if stalls := env.srv.Stats().IngestStalls; stalls == 0 {
		t.Fatalf("no backpressure stalls observed with 1-slot mailboxes")
	}
	conn.Close()
}

// TestNoOverAllocation feeds a frame claiming a huge body and verifies
// the reader rejects it without growing the buffer.
func TestNoOverAllocation(t *testing.T) {
	header := make([]byte, frameHeader)
	header[0] = FrameBatch
	binary.LittleEndian.PutUint32(header[1:], MaxFrameBody) // max claimed, no body follows
	binary.LittleEndian.PutUint32(header[5:], crc32.Checksum(nil, castagnoli))
	buf := make([]byte, 0, 16)
	_, _, err := ReadFrame(bytes.NewReader(header), buf, 1024)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err=%v, want ErrFrameTooLarge", err)
	}
	// With the cap at default, the claimed length passes the bound check
	// but the body is missing — ErrTruncated, and the allocation is
	// bounded by the (valid) claimed length, which is the protocol's
	// documented maximum.
	_, _, err = ReadFrame(bytes.NewReader(header), buf, 0)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err=%v, want ErrTruncated", err)
	}
}
