// Package wire is the high-throughput binary ingest plane: a
// persistent-connection, length-prefixed, CRC-framed edge-batch
// protocol that feeds the sharded engine directly, bypassing the
// per-request HTTP JSON surface. The core sketch ingests tens of
// millions of edges per second (BENCH_ingest.json); this protocol
// removes the encoding and request overhead between a producer and
// that hot path, with backpressure tied to the engine's bounded shard
// mailboxes: when they are full the server simply stops reading the
// socket, so TCP flow control pushes the stall back to the producer
// instead of buffering unboundedly anywhere.
//
// # Connection lifecycle
//
// A session opens with the 8-byte magic "COVWIRE1" (client → server),
// followed by frames in both directions. The client's first frame must
// be a hello naming the target namespace, an optional resumable stream
// id, and — when configured strictly — the engine mode name and weight
// signature it expects, which the server validates exactly like the
// cluster plane validates peer blobs. The server answers with a
// hello-ack carrying the stream's acknowledged edge watermark (0 for a
// new stream), then the client streams batch frames. The server
// periodically answers with ack frames carrying the watermark — the
// count of the stream's edges handed durably to the engine (after any
// WAL append: Engine.Ingest logs before it enqueues, and the ack is
// written only after Ingest returns, so the watermark can never exceed
// the WAL/engine ingested-edge count). A flush frame forces an
// immediate ack; a protocol violation is answered with an error frame
// before the server closes the connection.
//
// # Frame format
//
// Every frame is
//
//	uint8   type     frame type (hello, helloAck, batch, ack, flush, error)
//	uint32  length   body size in bytes (bounded; see MaxFrameBody)
//	uint32  crc      CRC32C (Castagnoli) of the body
//	body…
//
// All integers are little-endian, matching the sketch and WAL wire
// formats. Batch bodies carry the cumulative edge offset of their first
// edge (exactly like WAL frames), so a reconnecting client resumes from
// the hello-ack watermark and the server deduplicates any overlap — the
// stream is ingested exactly once even across connection failures.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/bipartite"
)

// Magic opens every wire session (client → server, before any frame).
const Magic = "COVWIRE1"

// Frame types.
const (
	// FrameHello is the client's first frame: namespace, stream id and
	// the expected engine configuration.
	FrameHello byte = 1
	// FrameHelloAck is the server's hello answer: the stream's
	// acknowledged watermark and the engine's actual configuration.
	FrameHelloAck byte = 2
	// FrameBatch carries one edge batch at an explicit stream offset.
	FrameBatch byte = 3
	// FrameAck carries the server's acknowledged edge watermark.
	FrameAck byte = 4
	// FrameFlush asks the server for an immediate ack.
	FrameFlush byte = 5
	// FrameError carries a typed protocol reject; the server closes the
	// connection after sending one.
	FrameError byte = 6
	// FrameOpBatch carries one operation batch (inserts and deletes) at
	// an explicit stream offset — the dynamic engine's ingest frame. A
	// client may send it only after a hello with Ops set, which the
	// server accepts only when the target engine supports deletes; a
	// pre-extension server that never saw the flag rejects the unknown
	// frame type, so deletes are never silently dropped or misread.
	FrameOpBatch byte = 7
)

// frameHeader is the fixed frame prefix: type, body length, body CRC.
const frameHeader = 1 + 4 + 4

// MaxFrameBody bounds a frame body: 8 bytes of stream offset plus
// MaxBatchEdges 8-byte edge pairs, with headroom for the non-batch
// frame types. A reader rejects larger claimed lengths before
// allocating anything, so corrupt or hostile length prefixes cannot
// make it over-allocate.
const (
	// MaxBatchEdges is the largest edge count one batch frame may carry
	// (the same bound the HTTP plane's default MaxBatchEdges applies).
	MaxBatchEdges = 1 << 20
	// MaxFrameBody is the largest accepted frame body in bytes.
	MaxFrameBody = 8 + 8*MaxBatchEdges
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed protocol errors. Every malformed input decodes to one of these
// (wrapped with context), never to a panic; the server counts each as a
// protocol reject.
var (
	// ErrBadMagic reports a session that did not open with Magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrFrameTooLarge reports a frame whose claimed body length exceeds
	// MaxFrameBody (rejected before any allocation).
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrChecksum reports a frame body that fails its CRC32C.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
	// ErrTruncated reports a frame cut short by EOF mid-header or
	// mid-body.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrBadFrame reports a structurally invalid frame body (bad batch
	// size, overlong string, unknown type in context).
	ErrBadFrame = errors.New("wire: malformed frame")
)

// AppendFrame appends one framed message (header + body) to dst and
// returns the extended slice.
func AppendFrame(dst []byte, typ byte, body []byte) []byte {
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(body, castagnoli))
	return append(dst, body...)
}

// ReadFrame reads one frame from r, reusing buf for the body when it is
// large enough. It returns the frame type and body (aliasing the
// returned buffer, valid until the next call reuses it). A clean EOF
// before any header byte returns io.EOF; every other failure maps to a
// typed error (ErrTruncated, ErrFrameTooLarge, ErrChecksum) so callers
// can count protocol rejects distinctly from transport errors. maxBody
// caps the accepted body length (0 selects MaxFrameBody); the cap is
// enforced before the body buffer is grown, so a hostile length prefix
// cannot force an over-allocation.
func ReadFrame(r io.Reader, buf []byte, maxBody uint32) (typ byte, body []byte, err error) {
	if maxBody == 0 || maxBody > MaxFrameBody {
		maxBody = MaxFrameBody
	}
	var header [frameHeader]byte
	if _, err := io.ReadFull(r, header[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: reading type: %v", ErrTruncated, err)
	}
	if _, err := io.ReadFull(r, header[1:]); err != nil {
		return 0, nil, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
	}
	typ = header[0]
	length := binary.LittleEndian.Uint32(header[1:5])
	if length > maxBody {
		return typ, nil, fmt.Errorf("%w: claimed body of %d bytes (limit %d)", ErrFrameTooLarge, length, maxBody)
	}
	if uint32(cap(buf)) < length {
		buf = make([]byte, length)
	}
	body = buf[:length]
	if _, err := io.ReadFull(r, body); err != nil {
		return typ, nil, fmt.Errorf("%w: reading %d-byte body: %v", ErrTruncated, length, err)
	}
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(header[5:9]) {
		return typ, nil, fmt.Errorf("%w: %d-byte body of frame type %d", ErrChecksum, length, typ)
	}
	return typ, body, nil
}

// Hello is the client's opening frame: which namespace (and resumable
// stream) it feeds, and what engine configuration it expects.
type Hello struct {
	// Namespace is the target namespace name (required).
	Namespace string
	// Stream is a client-chosen resumable stream id. A named stream's
	// acknowledged watermark survives reconnects (the server remembers
	// it and deduplicates resent frames); the empty stream is anonymous
	// and starts at watermark 0 on every connection.
	Stream string
	// Engine, when non-empty, must equal the target engine's mode name
	// ("sketch", "weighted", "sieve") or the hello is rejected —
	// the same advisory-made-strict validation the cluster plane applies
	// to the X-Cov-Engine header.
	Engine string
	// CheckWeights makes the server compare WeightSig against the
	// engine's weight signature and reject on mismatch.
	CheckWeights bool
	// Ops announces that the session may send op-batch frames (inserts
	// and deletes). The server rejects the hello with CodeOpsUnsupported
	// unless the target engine supports deletes, so a client learns at
	// handshake time — not first-delete time — that it picked the wrong
	// engine. Plain edge-batch sessions leave it unset and their hello
	// bytes are unchanged from the pre-extension protocol.
	Ops bool
	// WeightSig is the expected weight-table signature (0 = unweighted);
	// only compared when CheckWeights is set.
	WeightSig uint64
}

// maxHelloString bounds each hello string field (namespace names are
// already ≤64 bytes; stream ids get the same order of bound).
const maxHelloString = 256

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("%w: short string length", ErrBadFrame)
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if n > maxHelloString {
		return "", nil, fmt.Errorf("%w: %d-byte string exceeds limit %d", ErrBadFrame, n, maxHelloString)
	}
	if len(b) < n {
		return "", nil, fmt.Errorf("%w: string of %d bytes in %d-byte tail", ErrBadFrame, n, len(b))
	}
	return string(b[:n]), b[n:], nil
}

// AppendHello encodes h as a hello frame body.
func AppendHello(dst []byte, h Hello) ([]byte, error) {
	for _, s := range []string{h.Namespace, h.Stream, h.Engine} {
		if len(s) > maxHelloString {
			return dst, fmt.Errorf("%w: hello string of %d bytes exceeds limit %d", ErrBadFrame, len(s), maxHelloString)
		}
	}
	var flags byte
	if h.CheckWeights {
		flags |= 1
	}
	if h.Ops {
		flags |= 2
	}
	dst = append(dst, flags)
	dst = appendString(dst, h.Namespace)
	dst = appendString(dst, h.Stream)
	dst = appendString(dst, h.Engine)
	return binary.LittleEndian.AppendUint64(dst, h.WeightSig), nil
}

// DecodeHello decodes a hello frame body.
func DecodeHello(body []byte) (Hello, error) {
	var h Hello
	if len(body) < 1 {
		return h, fmt.Errorf("%w: empty hello", ErrBadFrame)
	}
	h.CheckWeights = body[0]&1 != 0
	h.Ops = body[0]&2 != 0
	rest := body[1:]
	var err error
	if h.Namespace, rest, err = decodeString(rest); err != nil {
		return h, fmt.Errorf("hello namespace: %w", err)
	}
	if h.Stream, rest, err = decodeString(rest); err != nil {
		return h, fmt.Errorf("hello stream: %w", err)
	}
	if h.Engine, rest, err = decodeString(rest); err != nil {
		return h, fmt.Errorf("hello engine: %w", err)
	}
	if len(rest) != 8 {
		return h, fmt.Errorf("%w: hello tail of %d bytes, want 8", ErrBadFrame, len(rest))
	}
	h.WeightSig = binary.LittleEndian.Uint64(rest)
	return h, nil
}

// HelloAck is the server's hello answer.
type HelloAck struct {
	// Watermark is the stream's acknowledged edge count: a reconnecting
	// client resumes sending at this offset.
	Watermark int64
	// NamespaceEdges is the namespace's total ingested-edge count at
	// accept time (informational).
	NamespaceEdges int64
	// Engine is the engine's actual mode name; WeightSig its actual
	// weight signature — so even non-strict clients can introspect what
	// they connected to.
	Engine    string
	WeightSig uint64
}

// AppendHelloAck encodes a as a hello-ack frame body.
func AppendHelloAck(dst []byte, a HelloAck) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.Watermark))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.NamespaceEdges))
	dst = appendString(dst, a.Engine)
	return binary.LittleEndian.AppendUint64(dst, a.WeightSig)
}

// DecodeHelloAck decodes a hello-ack frame body.
func DecodeHelloAck(body []byte) (HelloAck, error) {
	var a HelloAck
	if len(body) < 16 {
		return a, fmt.Errorf("%w: hello-ack of %d bytes", ErrBadFrame, len(body))
	}
	wm := binary.LittleEndian.Uint64(body)
	ns := binary.LittleEndian.Uint64(body[8:])
	if wm > math.MaxInt64 || ns > math.MaxInt64 {
		return a, fmt.Errorf("%w: negative hello-ack counters", ErrBadFrame)
	}
	a.Watermark, a.NamespaceEdges = int64(wm), int64(ns)
	rest := body[16:]
	var err error
	if a.Engine, rest, err = decodeString(rest); err != nil {
		return a, fmt.Errorf("hello-ack engine: %w", err)
	}
	if len(rest) != 8 {
		return a, fmt.Errorf("%w: hello-ack tail of %d bytes, want 8", ErrBadFrame, len(rest))
	}
	a.WeightSig = binary.LittleEndian.Uint64(rest)
	return a, nil
}

// AppendBatch encodes a batch frame body: the stream offset of the
// first edge, then the edges as (set, elem) uint32 pairs.
func AppendBatch(dst []byte, offset int64, edges []bipartite.Edge) ([]byte, error) {
	if len(edges) > MaxBatchEdges {
		return dst, fmt.Errorf("%w: batch of %d edges exceeds limit %d", ErrBadFrame, len(edges), MaxBatchEdges)
	}
	if offset < 0 {
		return dst, fmt.Errorf("%w: negative batch offset %d", ErrBadFrame, offset)
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(offset))
	for _, e := range edges {
		dst = binary.LittleEndian.AppendUint32(dst, e.Set)
		dst = binary.LittleEndian.AppendUint32(dst, e.Elem)
	}
	return dst, nil
}

// DecodeBatch decodes a batch frame body, appending the edges to
// *edges (reset to length 0 first) so a session reuses one buffer for
// every frame — decode cost is bounded by the frame, not the stream.
func DecodeBatch(body []byte, edges *[]bipartite.Edge) (offset int64, err error) {
	if len(body) < 8 || (len(body)-8)%8 != 0 {
		return 0, fmt.Errorf("%w: batch body of %d bytes", ErrBadFrame, len(body))
	}
	off := binary.LittleEndian.Uint64(body)
	if off > math.MaxInt64 {
		return 0, fmt.Errorf("%w: batch offset overflows int64", ErrBadFrame)
	}
	n := (len(body) - 8) / 8
	out := (*edges)[:0]
	if cap(out) < n {
		out = make([]bipartite.Edge, 0, n)
	}
	for i := 0; i < n; i++ {
		out = append(out, bipartite.Edge{
			Set:  binary.LittleEndian.Uint32(body[8+8*i:]),
			Elem: binary.LittleEndian.Uint32(body[12+8*i:]),
		})
	}
	*edges = out
	return int64(off), nil
}

// opDeleteBit carries a record's op kind in its set word within an
// op-batch body — the same convention as the WAL's op frames, so the
// two planes cannot drift apart.
const opDeleteBit uint32 = 1 << 31

// AppendOpBatch encodes an op-batch frame body: the stream offset of
// the first op, then the ops as (set|kind, elem) uint32 pairs with the
// kind in the set word's top bit (set → delete). Offsets count ops, so
// the watermark arithmetic of the batch plane carries over unchanged.
func AppendOpBatch(dst []byte, offset int64, ops []bipartite.Op) ([]byte, error) {
	if len(ops) > MaxBatchEdges {
		return dst, fmt.Errorf("%w: batch of %d ops exceeds limit %d", ErrBadFrame, len(ops), MaxBatchEdges)
	}
	if offset < 0 {
		return dst, fmt.Errorf("%w: negative batch offset %d", ErrBadFrame, offset)
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(offset))
	for _, op := range ops {
		set := op.Edge.Set
		switch op.Kind {
		case bipartite.OpInsert:
		case bipartite.OpDelete:
			set |= opDeleteBit
		default:
			return dst, fmt.Errorf("%w: unknown op kind %d", ErrBadFrame, op.Kind)
		}
		if op.Edge.Set&opDeleteBit != 0 {
			return dst, fmt.Errorf("%w: set id %d collides with the delete flag", ErrBadFrame, op.Edge.Set)
		}
		dst = binary.LittleEndian.AppendUint32(dst, set)
		dst = binary.LittleEndian.AppendUint32(dst, op.Edge.Elem)
	}
	return dst, nil
}

// DecodeOpBatch decodes an op-batch frame body, appending the ops to
// *ops (reset to length 0 first) with the same buffer-reuse contract as
// DecodeBatch.
func DecodeOpBatch(body []byte, ops *[]bipartite.Op) (offset int64, err error) {
	if len(body) < 8 || (len(body)-8)%8 != 0 {
		return 0, fmt.Errorf("%w: op-batch body of %d bytes", ErrBadFrame, len(body))
	}
	off := binary.LittleEndian.Uint64(body)
	if off > math.MaxInt64 {
		return 0, fmt.Errorf("%w: op-batch offset overflows int64", ErrBadFrame)
	}
	n := (len(body) - 8) / 8
	out := (*ops)[:0]
	if cap(out) < n {
		out = make([]bipartite.Op, 0, n)
	}
	for i := 0; i < n; i++ {
		set := binary.LittleEndian.Uint32(body[8+8*i:])
		kind := bipartite.OpInsert
		if set&opDeleteBit != 0 {
			kind = bipartite.OpDelete
			set &^= opDeleteBit
		}
		out = append(out, bipartite.Op{
			Kind: kind,
			Edge: bipartite.Edge{Set: set, Elem: binary.LittleEndian.Uint32(body[12+8*i:])},
		})
	}
	*ops = out
	return int64(off), nil
}

// AppendAck encodes an ack frame body.
func AppendAck(dst []byte, watermark int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(watermark))
}

// DecodeAck decodes an ack frame body.
func DecodeAck(body []byte) (int64, error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("%w: ack body of %d bytes, want 8", ErrBadFrame, len(body))
	}
	wm := binary.LittleEndian.Uint64(body)
	if wm > math.MaxInt64 {
		return 0, fmt.Errorf("%w: ack watermark overflows int64", ErrBadFrame)
	}
	return int64(wm), nil
}

// Error codes carried by error frames.
const (
	// CodeBadFrame: structurally invalid or oversized frame.
	CodeBadFrame uint16 = 1
	// CodeUnknownNamespace: the hello named a namespace that does not exist.
	CodeUnknownNamespace uint16 = 2
	// CodeEngineMismatch: the hello's engine expectation failed.
	CodeEngineMismatch uint16 = 3
	// CodeWeightsMismatch: the hello's weight-signature expectation failed.
	CodeWeightsMismatch uint16 = 4
	// CodeGap: a batch frame started beyond the acknowledged watermark.
	CodeGap uint16 = 5
	// CodeIngest: the engine rejected the batch (edge out of range,
	// engine closed, WAL failure).
	CodeIngest uint16 = 6
	// CodeStreamBusy: the named stream is owned by another live
	// connection (named streams are single-writer so the resumable
	// watermark stays consistent).
	CodeStreamBusy uint16 = 7
	// CodeOpsUnsupported: the hello requested op batches (Hello.Ops) but
	// the target engine cannot apply deletes, or an op-batch frame
	// arrived on a session that never negotiated ops.
	CodeOpsUnsupported uint16 = 8
)

// WireError is a protocol reject the server sent before closing the
// connection.
type WireError struct {
	Code    uint16
	Message string
}

func (e *WireError) Error() string {
	return fmt.Sprintf("wire: server rejected (code %d): %s", e.Code, e.Message)
}

// AppendError encodes an error frame body.
func AppendError(dst []byte, code uint16, msg string) []byte {
	if len(msg) > maxHelloString {
		msg = msg[:maxHelloString]
	}
	dst = binary.LittleEndian.AppendUint16(dst, code)
	return appendString(dst, msg)
}

// DecodeError decodes an error frame body.
func DecodeError(body []byte) (*WireError, error) {
	if len(body) < 2 {
		return nil, fmt.Errorf("%w: error body of %d bytes", ErrBadFrame, len(body))
	}
	code := binary.LittleEndian.Uint16(body)
	msg, rest, err := decodeString(body[2:])
	if err != nil {
		return nil, fmt.Errorf("error message: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after error message", ErrBadFrame, len(rest))
	}
	return &WireError{Code: code, Message: msg}, nil
}
