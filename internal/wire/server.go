package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/bipartite"
	"repro/internal/server"
)

// Directory resolves namespace names to live engines — satisfied by
// *server.Multi, so one wire listener serves every namespace a
// covserved process hosts.
type Directory interface {
	Get(name string) (*server.Engine, bool)
}

// Options tunes a wire Server.
type Options struct {
	// AckEvery is the number of batch frames between unsolicited acks
	// (default 32). A flush frame always forces an immediate ack.
	AckEvery int
	// MaxBatchEdges caps the edges accepted per batch frame (default
	// MaxBatchEdges); larger frames are rejected before allocation.
	MaxBatchEdges int
	// OnError, when non-nil, receives per-connection failures (protocol
	// rejects, transport errors) for logging. Never called concurrently
	// with itself for one connection.
	OnError func(err error)
}

func (o Options) ackEvery() int {
	if o.AckEvery < 1 {
		return 32
	}
	return o.AckEvery
}

func (o Options) maxBatch() int {
	if o.MaxBatchEdges < 1 || o.MaxBatchEdges > MaxBatchEdges {
		return MaxBatchEdges
	}
	return o.MaxBatchEdges
}

// Server accepts persistent binary ingest connections and feeds their
// edge batches straight into the engines of a namespace directory. One
// goroutine per connection decodes frames into a reusable batch buffer
// and calls Engine.Ingest — which blocks when shard mailboxes are full,
// so the connection simply stops reading and TCP flow control
// backpressures the producer; the server never buffers more than one
// frame per connection. Acks are written from the same goroutine after
// Ingest returns, so an acknowledged watermark is always covered by the
// engine (and, on a durable engine, by the WAL, which Ingest appends to
// before any shard sees the batch).
type Server struct {
	dir Directory
	opt Options

	mu        sync.Mutex
	closed    bool
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup

	// streams maps namespace\x00stream → acknowledged watermark, so a
	// named stream survives reconnects with exactly-once ingest; busy
	// marks streams currently owned by a live connection (a second
	// connection to the same named stream is rejected, keeping the
	// watermark single-writer).
	streams map[string]int64
	busy    map[string]bool

	// Counters, exposed via Stats and the /metrics endpoint.
	connsTotal    atomic.Int64
	connsActive   atomic.Int64
	framesTotal   atomic.Int64
	edgesTotal    atomic.Int64
	acksTotal     atomic.Int64
	dupFrames     atomic.Int64
	rejects       atomic.Int64
	ingestErrors  atomic.Int64
	ingestStalls  atomic.Int64
	bytesReceived atomic.Int64
}

// NewServer returns a wire ingest server over the directory. Call
// Serve with one or more listeners; Close stops them all.
func NewServer(dir Directory, opt Options) *Server {
	return &Server{
		dir:       dir,
		opt:       opt,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		streams:   make(map[string]int64),
		busy:      make(map[string]bool),
	}
}

// Stats is a point-in-time read of the server's counters.
type Stats struct {
	// ConnsTotal counts accepted connections; ConnsActive the ones
	// currently open.
	ConnsTotal  int64 `json:"conns_total"`
	ConnsActive int64 `json:"conns_active"`
	// Frames counts accepted batch frames (duplicates included); Edges
	// the edges actually handed to the engine (after dedup trimming).
	Frames int64 `json:"frames"`
	Edges  int64 `json:"edges"`
	// Acks counts watermark acks written (hello-acks excluded).
	Acks int64 `json:"acks"`
	// DupFrames counts batch frames skipped entirely because a reconnect
	// resent data at or below the acknowledged watermark.
	DupFrames int64 `json:"dup_frames"`
	// Rejects counts protocol rejects: bad magic, malformed/oversized/
	// corrupt frames, unknown namespaces, engine or weight mismatches,
	// offset gaps, stream conflicts.
	Rejects int64 `json:"rejects"`
	// IngestErrors counts batches the engine refused (edge out of range,
	// engine closed, WAL failure).
	IngestErrors int64 `json:"ingest_errors"`
	// IngestStalls counts engine mailbox stalls observed while this
	// server's ingests were in flight — the backpressure events that
	// paused socket reads.
	IngestStalls int64 `json:"ingest_stalls"`
	// BytesReceived counts frame bytes accepted (headers + bodies).
	BytesReceived int64 `json:"bytes_received"`
}

// Stats returns the server's current counters.
func (s *Server) Stats() Stats {
	return Stats{
		ConnsTotal:    s.connsTotal.Load(),
		ConnsActive:   s.connsActive.Load(),
		Frames:        s.framesTotal.Load(),
		Edges:         s.edgesTotal.Load(),
		Acks:          s.acksTotal.Load(),
		DupFrames:     s.dupFrames.Load(),
		Rejects:       s.rejects.Load(),
		IngestErrors:  s.ingestErrors.Load(),
		IngestStalls:  s.ingestStalls.Load(),
		BytesReceived: s.bytesReceived.Load(),
	}
}

// AppendMetrics contributes the server's counters to a /metrics scrape
// (server.MetricsSource).
func (s *Server) AppendMetrics(w *server.MetricsWriter) {
	st := s.Stats()
	w.Gauge("covserved_wire_connections_active", "Open wire ingest connections.", nil, float64(st.ConnsActive))
	w.Counter("covserved_wire_connections_total", "Accepted wire ingest connections.", nil, float64(st.ConnsTotal))
	w.Counter("covserved_wire_frames_total", "Accepted wire batch frames (duplicates included).", nil, float64(st.Frames))
	w.Counter("covserved_wire_edges_total", "Edges ingested over the wire plane.", nil, float64(st.Edges))
	w.Counter("covserved_wire_acks_total", "Watermark acks written.", nil, float64(st.Acks))
	w.Counter("covserved_wire_duplicate_frames_total", "Batch frames skipped as reconnect duplicates.", nil, float64(st.DupFrames))
	w.Counter("covserved_wire_protocol_rejects_total", "Connections rejected for protocol violations.", nil, float64(st.Rejects))
	w.Counter("covserved_wire_ingest_errors_total", "Batches the engine refused.", nil, float64(st.IngestErrors))
	w.Counter("covserved_wire_backpressure_stalls_total", "Engine mailbox stalls observed during wire ingest.", nil, float64(st.IngestStalls))
	w.Counter("covserved_wire_bytes_received_total", "Frame bytes accepted (headers and bodies).", nil, float64(st.BytesReceived))
}

// Serve accepts connections on ln until Close (or a listener error).
// It may be called concurrently with itself on different listeners.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("wire: server closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsTotal.Add(1)
		s.connsActive.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.connsActive.Add(-1)
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				c.Close()
			}()
			if err := s.handleConn(c); err != nil && s.opt.OnError != nil {
				s.opt.OnError(fmt.Errorf("wire: conn %s: %w", c.RemoteAddr(), err))
			}
		}()
	}
}

// Close stops the listeners, closes every open connection and waits
// for the per-connection goroutines to drain. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// streamKey joins a namespace and stream id into a registry key; the
// NUL separator cannot appear in a namespace name (ValidateNamespaceName).
func streamKey(ns, stream string) string { return ns + "\x00" + stream }

// acquireStream looks up (and claims) a named stream's watermark.
func (s *Server) acquireStream(key string) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.busy[key] {
		return 0, false
	}
	s.busy[key] = true
	return s.streams[key], true
}

func (s *Server) releaseStream(key string) {
	s.mu.Lock()
	delete(s.busy, key)
	s.mu.Unlock()
}

func (s *Server) storeWatermark(key string, wm int64) {
	s.mu.Lock()
	s.streams[key] = wm
	s.mu.Unlock()
}

// reject counts a protocol reject and best-effort sends an error frame
// before the caller closes the connection.
func (s *Server) reject(bw *bufio.Writer, code uint16, format string, args ...interface{}) error {
	s.rejects.Add(1)
	msg := fmt.Sprintf(format, args...)
	frame := AppendFrame(nil, FrameError, AppendError(nil, code, msg))
	bw.Write(frame)
	bw.Flush()
	return fmt.Errorf("rejected (code %d): %s", code, msg)
}

// handleConn runs one ingest session: magic, hello handshake, then the
// batch loop. It returns nil on a clean client close and an error
// otherwise (already counted/acked as appropriate).
func (s *Server) handleConn(c net.Conn) error {
	br := bufio.NewReaderSize(c, 1<<16)
	bw := bufio.NewWriterSize(c, 1<<12)

	var magic [len(Magic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		s.rejects.Add(1)
		return fmt.Errorf("%w: reading magic: %v", ErrBadMagic, err)
	}
	if string(magic[:]) != Magic {
		return s.reject(bw, CodeBadFrame, "bad magic %q", magic)
	}

	maxBody := uint32(8 + 8*s.opt.maxBatch())
	buf := make([]byte, 0, 64<<10)
	typ, body, err := ReadFrame(br, buf, maxBody)
	if err != nil {
		s.rejects.Add(1)
		return fmt.Errorf("reading hello: %w", err)
	}
	if typ != FrameHello {
		return s.reject(bw, CodeBadFrame, "first frame type %d, want hello", typ)
	}
	hello, err := DecodeHello(body)
	if err != nil {
		return s.reject(bw, CodeBadFrame, "%v", err)
	}
	eng, ok := s.dir.Get(hello.Namespace)
	if !ok {
		return s.reject(bw, CodeUnknownNamespace, "unknown namespace %q", hello.Namespace)
	}
	// The same config validation the cluster plane applies before
	// merging a peer blob: a strict client states the engine mode (and
	// weight signature) it was built for, and a mismatch is a reject,
	// not a silently different dataset.
	if hello.Engine != "" && hello.Engine != string(eng.ModeName()) {
		return s.reject(bw, CodeEngineMismatch,
			"namespace %q runs engine %q, client expects %q", hello.Namespace, eng.ModeName(), hello.Engine)
	}
	if hello.CheckWeights && hello.WeightSig != eng.WeightSig() {
		return s.reject(bw, CodeWeightsMismatch,
			"namespace %q weight signature %d, client expects %d", hello.Namespace, eng.WeightSig(), hello.WeightSig)
	}
	// Ops negotiation: a session that may delete must say so up front,
	// and is turned away at the handshake — not at its first delete —
	// when the engine cannot honor it. Sessions that do not negotiate
	// ops keep the pre-extension handshake bytes exactly.
	if hello.Ops && !eng.SupportsDeletes() {
		return s.reject(bw, CodeOpsUnsupported,
			"namespace %q runs engine %q, which does not support delete ops", hello.Namespace, eng.ModeName())
	}

	var watermark int64
	key := ""
	if hello.Stream != "" {
		key = streamKey(hello.Namespace, hello.Stream)
		wm, ok := s.acquireStream(key)
		if !ok {
			return s.reject(bw, CodeStreamBusy,
				"stream %q on namespace %q is owned by another connection", hello.Stream, hello.Namespace)
		}
		defer s.releaseStream(key)
		watermark = wm
	}

	ackBody := AppendHelloAck(nil, HelloAck{
		Watermark:      watermark,
		NamespaceEdges: eng.IngestedEdges(),
		Engine:         string(eng.ModeName()),
		WeightSig:      eng.WeightSig(),
	})
	if _, err := bw.Write(AppendFrame(nil, FrameHelloAck, ackBody)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	// The batch loop. One reusable edge buffer per connection: decode
	// cost and memory are bounded by the largest single frame, and
	// Engine.Ingest copies into its own pooled per-shard buffers before
	// returning, so the buffer is immediately reusable.
	var (
		edges      []bipartite.Edge
		ops        []bipartite.Op
		frameSeen  int
		ackEvery   = s.opt.ackEvery()
		ackScratch = make([]byte, 0, frameHeader+8)
	)
	writeAck := func() error {
		ackScratch = AppendFrame(ackScratch[:0], FrameAck, AppendAck(nil, watermark))
		if _, err := bw.Write(ackScratch); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		s.acksTotal.Add(1)
		return nil
	}
	for {
		typ, body, err := ReadFrame(br, buf, maxBody)
		if err != nil {
			if err == io.EOF {
				return nil // clean client close
			}
			s.rejects.Add(1)
			if errors.Is(err, ErrTruncated) {
				return err // peer died mid-frame; nobody is listening for an error frame
			}
			return s.reject(bw, CodeBadFrame, "%v", err)
		}
		if cap(body) > cap(buf) {
			buf = body[:0] // keep the grown buffer for subsequent frames
		}
		s.bytesReceived.Add(int64(frameHeader + len(body)))
		switch typ {
		case FrameBatch:
			offset, err := DecodeBatch(body, &edges)
			if err != nil {
				return s.reject(bw, CodeBadFrame, "%v", err)
			}
			s.framesTotal.Add(1)
			end := offset + int64(len(edges))
			if end <= watermark {
				// A reconnecting client legitimately resends from its last
				// ack; everything at or below the watermark is already in
				// the engine. Skipping (not re-ingesting) keeps the stream
				// exactly-once.
				s.dupFrames.Add(1)
				frameSeen++
				if frameSeen%ackEvery == 0 {
					if err := writeAck(); err != nil {
						return err
					}
				}
				continue
			}
			if offset > watermark {
				return s.reject(bw, CodeGap,
					"batch at offset %d leaves a gap after watermark %d", offset, watermark)
			}
			batch := edges[watermark-offset:]
			// Ingest blocks while shard mailboxes are full — that is the
			// backpressure contract: this goroutine stops reading the
			// socket, the kernel's receive window fills, and the producer
			// stalls. The stall delta attributes engine mailbox waits that
			// overlapped this call to the wire plane.
			stallsBefore := eng.IngestStalls()
			if _, err := eng.Ingest(batch); err != nil {
				s.ingestErrors.Add(1)
				return s.reject(bw, CodeIngest, "ingest: %v", err)
			}
			s.ingestStalls.Add(eng.IngestStalls() - stallsBefore)
			// The watermark advances only after Ingest returned: the edges
			// are in the engine's accepted count — and, on a durable
			// engine, in the WAL, which Ingest appends to before any shard
			// can observe the batch. An acked watermark therefore never
			// exceeds the engine's (or the log's) ingested-edge count.
			watermark = end
			if key != "" {
				s.storeWatermark(key, watermark)
			}
			s.edgesTotal.Add(int64(len(batch)))
			frameSeen++
			if frameSeen%ackEvery == 0 {
				if err := writeAck(); err != nil {
					return err
				}
			}
		case FrameOpBatch:
			if !hello.Ops {
				return s.reject(bw, CodeOpsUnsupported, "op batch on a session that did not negotiate ops")
			}
			offset, err := DecodeOpBatch(body, &ops)
			if err != nil {
				return s.reject(bw, CodeBadFrame, "%v", err)
			}
			s.framesTotal.Add(1)
			end := offset + int64(len(ops))
			if end <= watermark {
				s.dupFrames.Add(1)
				frameSeen++
				if frameSeen%ackEvery == 0 {
					if err := writeAck(); err != nil {
						return err
					}
				}
				continue
			}
			if offset > watermark {
				return s.reject(bw, CodeGap,
					"op batch at offset %d leaves a gap after watermark %d", offset, watermark)
			}
			// Same trim-and-ingest shape as the edge plane; offsets count
			// ops, so a reconnect resumes deletes exactly once too.
			batch := ops[watermark-offset:]
			stallsBefore := eng.IngestStalls()
			if _, err := eng.IngestOps(batch); err != nil {
				s.ingestErrors.Add(1)
				return s.reject(bw, CodeIngest, "ingest: %v", err)
			}
			s.ingestStalls.Add(eng.IngestStalls() - stallsBefore)
			watermark = end
			if key != "" {
				s.storeWatermark(key, watermark)
			}
			s.edgesTotal.Add(int64(len(batch)))
			frameSeen++
			if frameSeen%ackEvery == 0 {
				if err := writeAck(); err != nil {
					return err
				}
			}
		case FrameFlush:
			if err := writeAck(); err != nil {
				return err
			}
		case FrameHello:
			return s.reject(bw, CodeBadFrame, "duplicate hello")
		default:
			return s.reject(bw, CodeBadFrame, "unexpected frame type %d", typ)
		}
	}
}
