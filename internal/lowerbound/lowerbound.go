// Package lowerbound implements the machinery of Theorem 1.2 and
// Appendix E: the reduction from two-party set disjointness to streaming
// k-cover. The hard instance has two elements {a, b} and n sets; set i
// contains a iff i ∈ A (Alice's set) and b iff i ∈ B (Bob's set), with
// all of a's edges arriving before b's. Distinguishing Opt₁ = 2 (some set
// covers both) from Opt₁ = 1 (no set does) solves disjointness, which
// needs Ω(n) bits of communication [29, 43] — hence Ω(n) space for any
// (1/2+ε)-approximate streaming k-cover, even with many passes.
//
// The experiments measure the error probability of s-bit bounded-memory
// distinguishers as s/n shrinks, and confirm that the H≤n sketch (which
// stores Θ(n) edges on this instance) always distinguishes.
package lowerbound

import (
	"repro/internal/bipartite"
	"repro/internal/hashing"
	"repro/internal/stream"
)

// DisjointnessInstance is a hard k-cover instance encoding a
// set-disjointness input (A, B).
type DisjointnessInstance struct {
	N int
	A []bool // Alice's characteristic vector
	B []bool // Bob's characteristic vector
	// Intersecting records whether A ∩ B ≠ ∅ (i.e. Opt₁ = 2).
	Intersecting bool
}

// NewDisjointness draws an instance with |A| = |B| = size. When
// intersecting is true the two sets share exactly one common index
// (the uniquely-intersecting regime of the communication lower bound);
// otherwise they are disjoint.
func NewDisjointness(n, size int, intersecting bool, seed uint64) *DisjointnessInstance {
	if 2*size > n && !intersecting {
		panic("lowerbound: disjoint A and B need 2*size <= n")
	}
	rng := hashing.NewRNG(seed)
	inst := &DisjointnessInstance{N: n, A: make([]bool, n), B: make([]bool, n), Intersecting: intersecting}
	perm := rng.Perm(n)
	for i := 0; i < size; i++ {
		inst.A[perm[i]] = true
	}
	if intersecting {
		// B takes one common element plus size-1 fresh ones.
		inst.B[perm[rng.Intn(size)]] = true
		for i := size; i < size+size-1 && i < n; i++ {
			inst.B[perm[i]] = true
		}
	} else {
		for i := size; i < 2*size; i++ {
			inst.B[perm[i]] = true
		}
	}
	return inst
}

// ElemA and ElemB are the two element ids of the instance graph.
const (
	ElemA uint32 = 0
	ElemB uint32 = 1
)

// Stream returns the edge stream of the instance: all of Alice's edges
// (to element a), then all of Bob's (to element b) — the adversarial
// order of the reduction.
func (d *DisjointnessInstance) Stream() *stream.Slice {
	var edges []bipartite.Edge
	for i, in := range d.A {
		if in {
			edges = append(edges, bipartite.Edge{Set: uint32(i), Elem: ElemA})
		}
	}
	for i, in := range d.B {
		if in {
			edges = append(edges, bipartite.Edge{Set: uint32(i), Elem: ElemB})
		}
	}
	return stream.NewSlice(edges)
}

// Graph returns the instance as a bipartite graph (n sets, 2 elements).
func (d *DisjointnessInstance) Graph() *bipartite.Graph {
	var edges []bipartite.Edge
	st := d.Stream()
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		edges = append(edges, e)
	}
	return bipartite.MustFromEdges(d.N, 2, edges)
}

// Opt1 returns the optimal 1-cover value: 2 iff A ∩ B ≠ ∅.
func (d *DisjointnessInstance) Opt1() int {
	if d.Intersecting {
		return 2
	}
	return 1
}

// BoundedMemoryDistinguisher simulates the natural s-space algorithm on
// the hard stream: it can remember membership bits for only s of the n
// sets (chosen by uniform hashing), so when Bob's edges arrive it detects
// an intersection only if the intersecting set was among the remembered
// ones. Returns the algorithm's answer to "is Opt₁ = 2?".
//
// Any one-pass algorithm restricted to s bits about Alice's set has the
// same structure up to encoding; the experiment's error curve as s/n
// shrinks is the empirical face of the Ω(n) bound.
func BoundedMemoryDistinguisher(d *DisjointnessInstance, s int, seed uint64) bool {
	if s >= d.N {
		s = d.N
	}
	h := hashing.NewHasher(seed)
	// Remember set i iff its hash ranks among the s smallest of [0, n) —
	// realized by threshold s/n on the unit hash to avoid sorting.
	threshold := hashing.FromUnit(float64(s) / float64(d.N))
	remembered := make(map[uint32]struct{}, s)

	st := d.Stream()
	intersect := false
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		if e.Elem == ElemA {
			if h.Hash(e.Set) <= threshold {
				remembered[e.Set] = struct{}{}
			}
			continue
		}
		if _, ok := remembered[e.Set]; ok {
			intersect = true
		}
	}
	return intersect
}

// ErrorRate runs trials independent intersecting instances through the
// s-space distinguisher and returns the fraction it failed to detect
// (false negatives; disjoint instances are never mislabeled by this
// distinguisher).
func ErrorRate(n, size, s, trials int, seed uint64) float64 {
	errs := 0
	for t := 0; t < trials; t++ {
		inst := NewDisjointness(n, size, true, hashing.Mix2(seed, uint64(t)))
		if !BoundedMemoryDistinguisher(inst, s, hashing.Mix2(seed, uint64(t)+1<<32)) {
			errs++
		}
	}
	return float64(errs) / float64(trials)
}
