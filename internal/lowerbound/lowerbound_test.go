package lowerbound

import (
	"testing"

	"repro/internal/stream"
)

func TestInstanceConstruction(t *testing.T) {
	for _, intersecting := range []bool{true, false} {
		inst := NewDisjointness(100, 20, intersecting, 1)
		a, b, common := 0, 0, 0
		for i := 0; i < 100; i++ {
			if inst.A[i] {
				a++
			}
			if inst.B[i] {
				b++
			}
			if inst.A[i] && inst.B[i] {
				common++
			}
		}
		if a != 20 || b != 20 {
			t.Fatalf("sizes |A|=%d |B|=%d, want 20", a, b)
		}
		if intersecting && common != 1 {
			t.Fatalf("intersecting instance has %d common items, want 1", common)
		}
		if !intersecting && common != 0 {
			t.Fatalf("disjoint instance has %d common items", common)
		}
		if inst.Opt1() != map[bool]int{true: 2, false: 1}[intersecting] {
			t.Fatal("Opt1 wrong")
		}
	}
}

func TestStreamOrderAliceFirst(t *testing.T) {
	inst := NewDisjointness(50, 10, true, 2)
	edges := stream.Drain(inst.Stream())
	seenB := false
	for _, e := range edges {
		switch e.Elem {
		case ElemA:
			if seenB {
				t.Fatal("an Alice edge arrived after a Bob edge")
			}
		case ElemB:
			seenB = true
		default:
			t.Fatalf("unexpected element %d", e.Elem)
		}
	}
	if !seenB {
		t.Fatal("no Bob edges in stream")
	}
	if len(edges) != 20 {
		t.Fatalf("stream has %d edges, want 20", len(edges))
	}
}

func TestGraphMatchesStream(t *testing.T) {
	inst := NewDisjointness(60, 15, true, 3)
	g := inst.Graph()
	if g.NumSets() != 60 || g.NumElems() != 2 {
		t.Fatal("graph dims wrong")
	}
	if g.NumEdges() != 30 {
		t.Fatalf("graph has %d edges", g.NumEdges())
	}
	// Opt1 = 2 iff some set covers both elements.
	best := 0
	for s := 0; s < 60; s++ {
		if l := g.SetLen(s); l > best {
			best = l
		}
	}
	if best != inst.Opt1() {
		t.Fatalf("graph Opt1 %d != instance %d", best, inst.Opt1())
	}
}

func TestFullMemoryNeverErrs(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		inst := NewDisjointness(200, 50, true, seed)
		if !BoundedMemoryDistinguisher(inst, 200, seed+999) {
			t.Fatalf("seed=%d: full-memory distinguisher missed the intersection", seed)
		}
	}
}

func TestDisjointNeverFalsePositive(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		inst := NewDisjointness(200, 50, false, seed)
		if BoundedMemoryDistinguisher(inst, 120, seed+999) {
			t.Fatalf("seed=%d: false positive on a disjoint instance", seed)
		}
	}
}

func TestErrorRateDecreasesWithSpace(t *testing.T) {
	n := 1000
	eLow := ErrorRate(n, 250, n/10, 200, 7)
	eHigh := ErrorRate(n, 250, n, 200, 7)
	if eHigh != 0 {
		t.Fatalf("full space error rate %v != 0", eHigh)
	}
	if eLow < 0.5 {
		t.Fatalf("s=n/10 error rate %v; expected ≈ 0.9", eLow)
	}
	eMid := ErrorRate(n, 250, n/2, 200, 7)
	if !(eLow > eMid && eMid > eHigh) {
		t.Fatalf("error not decreasing in space: %v, %v, %v", eLow, eMid, eHigh)
	}
}

func TestErrorRateMatchesPrediction(t *testing.T) {
	// Missing the one intersecting set among n with memory s happens with
	// probability about 1 - s/n.
	n := 2000
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		got := ErrorRate(n, 400, int(frac*float64(n)), 400, 11)
		want := 1 - frac
		if got < want-0.12 || got > want+0.12 {
			t.Fatalf("s/n=%v: error %v, predicted %v", frac, got, want)
		}
	}
}

func TestNewDisjointnessPanicsWhenTooBig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized disjoint instance accepted")
		}
	}()
	NewDisjointness(10, 6, false, 1)
}
