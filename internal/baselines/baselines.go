// Package baselines implements the prior-work algorithms the paper
// compares against in Table 1, plus an unbounded-memory reference. All of
// them require the set-arrival model (whole sets at a time) or Ω(m)
// memory — precisely the shortcomings the H≤n sketch removes — so their
// space accounting is reported alongside their solutions for the Table 1
// experiments.
//
//   - SwapKCover: single-pass swap-based maximum coverage in the spirit
//     of Saha–Getoor [44] (¼-approximation, O~(m) space, set arrival).
//   - SieveKCover: SieveStreaming of Badanidiyuru et al. [9]
//     (½−ε approximation, O~(n+m) space, set arrival).
//   - ThresholdSetCover: the p-pass threshold greedy achieving
//     (p+1)·m^{1/(p+1)} for set cover in O~(m) space (the [13, 44] row of
//     Table 1; Demaine et al. [18] uses the same skeleton).
//   - FullGreedy: buffers the entire input and runs offline greedy — the
//     unbounded-memory upper reference.
//
// The Appendix-D ℓ0 baseline lives in this package too (l0kcover.go).
package baselines

import (
	"fmt"
	"math"

	"repro/internal/bipartite"
	"repro/internal/greedy"
	"repro/internal/stream"
)

// SpaceStats accounts a baseline's memory in stored items (edges or
// element ids) and approximate bytes.
type SpaceStats struct {
	// PeakItems is the peak number of stored element ids / edges.
	PeakItems int
	// Bytes approximates the peak resident bytes.
	Bytes int64
}

// KCoverOutcome is the result of a streaming k-cover baseline.
type KCoverOutcome struct {
	Sets    []int
	Covered int // coverage as known to the algorithm's own state
	Space   SpaceStats
}

// SwapKCover is a single-pass, set-arrival maximum-coverage algorithm in
// the spirit of Saha–Getoor [44]: keep at most k sets with their full
// element lists; an arriving set replaces the currently least-contributing
// kept set when the swap improves total coverage by a (1+beta) factor
// (beta=0 accepts any improvement). It stores whole sets, so its space is
// Θ(sum of kept set sizes) ⊆ O~(m·k) — the O~(m)-type dependence of the
// set-arrival row of Table 1.
func SwapKCover(ss stream.SetStream, numElems, k int, beta float64) KCoverOutcome {
	type kept struct {
		id    uint32
		elems []uint32
	}
	var sol []kept
	counts := make(map[uint32]int, 1024) // multiplicity of covered elements
	covered := 0
	peak := 0

	add := func(id uint32, elems []uint32) {
		cp := make([]uint32, len(elems))
		copy(cp, elems)
		sol = append(sol, kept{id: id, elems: cp})
		for _, e := range cp {
			if counts[e] == 0 {
				covered++
			}
			counts[e]++
		}
	}
	remove := func(i int) {
		for _, e := range sol[i].elems {
			counts[e]--
			if counts[e] == 0 {
				covered--
				delete(counts, e)
			}
		}
		sol[i] = sol[len(sol)-1]
		sol = sol[:len(sol)-1]
	}
	items := func() int {
		t := len(counts)
		for _, s := range sol {
			t += len(s.elems)
		}
		return t
	}

	for {
		id, elems, ok := ss.NextSet()
		if !ok {
			break
		}
		if len(sol) < k {
			add(id, elems)
		} else {
			// Unique contribution of each kept set.
			worst, worstContrib := -1, math.MaxInt
			for i, s := range sol {
				contrib := 0
				for _, e := range s.elems {
					if counts[e] == 1 {
						contrib++
					}
				}
				if contrib < worstContrib {
					worst, worstContrib = i, contrib
				}
			}
			// Gain of the newcomer against coverage without the worst set.
			gain := 0
			for _, e := range elems {
				c := counts[e]
				if c == 0 {
					gain++
				}
			}
			// Swapping replaces worstContrib unique elements with up to
			// gain new ones (elements unique to the worst set that the
			// newcomer also has are retained; we bound conservatively).
			retained := 0
			if worstContrib > 0 {
				uniqueOfWorst := make(map[uint32]struct{}, worstContrib)
				for _, e := range sol[worst].elems {
					if counts[e] == 1 {
						uniqueOfWorst[e] = struct{}{}
					}
				}
				for _, e := range elems {
					if _, ok := uniqueOfWorst[e]; ok {
						retained++
					}
				}
			}
			newCovered := covered - worstContrib + gain + retained
			if float64(newCovered) > (1+beta)*float64(covered) {
				remove(worst)
				add(id, elems)
			}
		}
		if it := items(); it > peak {
			peak = it
		}
	}
	out := KCoverOutcome{Covered: covered}
	for _, s := range sol {
		out.Sets = append(out.Sets, int(s.id))
	}
	out.Space = SpaceStats{PeakItems: peak, Bytes: int64(peak) * 8}
	return out
}

// SieveKCover is SieveStreaming [9]: lazily maintain OPT guesses
// v = (1+eps)^j within [maxSingleton, 2k·maxSingleton]; for each guess
// keep a solution and add an arriving set when its marginal gain is at
// least (v/2 − current)/(k − picked). Returns the best guess's solution —
// a ½−ε approximation in one set-arrival pass using O~((n + m)/eps) space.
func SieveKCover(ss stream.SetStream, numElems, k int, eps float64) KCoverOutcome {
	if eps <= 0 || eps >= 1 {
		eps = 0.1
	}
	type sieve struct {
		v       float64
		sets    []int
		covered map[uint32]struct{}
	}
	sieves := make(map[int]*sieve) // j -> sieve for v=(1+eps)^j
	maxSingleton := 0
	peak := 0

	jFor := func(x float64) int { return int(math.Ceil(math.Log(x) / math.Log(1+eps))) }

	for {
		id, elems, ok := ss.NextSet()
		if !ok {
			break
		}
		if len(elems) > maxSingleton {
			maxSingleton = len(elems)
		}
		// Maintain the lazy guess window [m0, 2k·m0].
		lo := jFor(float64(maxSingleton))
		hi := jFor(2 * float64(k) * float64(maxSingleton))
		for j := range sieves {
			if j < lo || j > hi {
				delete(sieves, j)
			}
		}
		for j := lo; j <= hi; j++ {
			if _, ok := sieves[j]; !ok {
				sieves[j] = &sieve{v: math.Pow(1+eps, float64(j)), covered: make(map[uint32]struct{})}
			}
		}
		items := 0
		for _, sv := range sieves {
			if len(sv.sets) >= k {
				items += len(sv.covered)
				continue
			}
			gain := 0
			for _, e := range elems {
				if _, c := sv.covered[e]; !c {
					gain++
				}
			}
			threshold := (sv.v/2 - float64(len(sv.covered))) / float64(k-len(sv.sets))
			if float64(gain) >= threshold && gain > 0 {
				sv.sets = append(sv.sets, int(id))
				for _, e := range elems {
					sv.covered[e] = struct{}{}
				}
			}
			items += len(sv.covered)
		}
		if items > peak {
			peak = items
		}
	}

	best := KCoverOutcome{}
	for _, sv := range sieves {
		if len(sv.covered) > best.Covered {
			best.Covered = len(sv.covered)
			best.Sets = append(best.Sets[:0], sv.sets...)
		}
	}
	best.Space = SpaceStats{PeakItems: peak, Bytes: int64(peak) * 8}
	return best
}

// SetCoverOutcome is the result of a streaming set-cover baseline.
type SetCoverOutcome struct {
	Sets    []int
	Covered int
	Passes  int
	Space   SpaceStats
}

// ThresholdSetCover is the classical p-pass set-arrival algorithm behind
// the [13, 44] row of Table 1: in pass j it selects any arriving set that
// covers at least m^{1−j/(p+1)} still-uncovered elements; a final pass
// covers each remaining element with an arbitrary containing set. The
// solution size is at most (p+1)·m^{1/(p+1)}·k*, using O~(m) space.
func ThresholdSetCover(ss stream.ResettableSetStream, numElems, passes int) (SetCoverOutcome, error) {
	if passes < 1 {
		return SetCoverOutcome{}, fmt.Errorf("baselines: ThresholdSetCover needs passes >= 1")
	}
	covered := make([]bool, numElems)
	coveredCount := 0
	var sol []int
	chosen := make(map[uint32]struct{})
	m := float64(numElems)

	take := func(id uint32, elems []uint32) {
		if _, dup := chosen[id]; dup {
			return
		}
		chosen[id] = struct{}{}
		sol = append(sol, int(id))
		for _, e := range elems {
			if !covered[e] {
				covered[e] = true
				coveredCount++
			}
		}
	}

	for j := 1; j <= passes; j++ {
		tau := math.Pow(m, 1-float64(j)/float64(passes+1))
		ss.ResetSets()
		for {
			id, elems, ok := ss.NextSet()
			if !ok {
				break
			}
			gain := 0
			for _, e := range elems {
				if !covered[e] {
					gain++
				}
			}
			if float64(gain) >= tau && gain > 0 {
				take(id, elems)
			}
		}
	}
	// Final sweep: any set with positive gain that still helps; taking
	// one per uncovered element realizes the +1 pass of the analysis.
	ss.ResetSets()
	for {
		id, elems, ok := ss.NextSet()
		if !ok {
			break
		}
		gain := 0
		for _, e := range elems {
			if !covered[e] {
				gain++
			}
		}
		if gain > 0 {
			take(id, elems)
		}
	}
	return SetCoverOutcome{
		Sets:    sol,
		Covered: coveredCount,
		Passes:  passes + 1,
		Space:   SpaceStats{PeakItems: numElems, Bytes: int64(numElems)},
	}, nil
}

// FullGreedy buffers the entire edge stream, reconstructs the instance
// and runs the offline greedy — the unbounded-memory reference used to
// normalize ratios when exact optima are out of reach. Space is the full
// input size.
func FullGreedy(st stream.Stream, numSets, numElems, k int) KCoverOutcome {
	var edges []bipartite.Edge
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		edges = append(edges, e)
	}
	g, err := bipartite.FromEdges(numSets, numElems, edges)
	if err != nil {
		panic("baselines: FullGreedy: " + err.Error())
	}
	res := greedy.MaxCover(g, k)
	return KCoverOutcome{
		Sets:    res.Sets,
		Covered: res.Covered,
		Space:   SpaceStats{PeakItems: len(edges), Bytes: int64(len(edges)) * 8},
	}
}
