package baselines

import (
	"testing"

	"repro/internal/greedy"
	"repro/internal/stream"
	"repro/internal/workload"
)

func TestSwapKCoverBasics(t *testing.T) {
	inst := workload.PlantedKCover(40, 2000, 4, 0.8, 15, 1)
	out := SwapKCover(stream.NewGraphSetStream(inst.G, 2), inst.G.NumElems(), 4, 0)
	if len(out.Sets) > 4 {
		t.Fatalf("kept %d > k sets", len(out.Sets))
	}
	// Reported coverage must match recomputation on the graph.
	if got := inst.G.Coverage(out.Sets); got != out.Covered {
		t.Fatalf("reported %d != actual %d", out.Covered, got)
	}
	if out.Space.PeakItems == 0 {
		t.Fatal("no space accounted")
	}
}

func TestSwapKCoverReasonableRatio(t *testing.T) {
	// The ¼-approximation should comfortably beat ratio 0.25 on random
	// instances against the offline greedy reference.
	for seed := uint64(0); seed < 5; seed++ {
		inst := workload.Uniform(30, 800, 0.05, seed)
		k := 5
		ref := greedy.MaxCover(inst.G, k).Covered
		out := SwapKCover(stream.NewGraphSetStream(inst.G, seed+10), inst.G.NumElems(), k, 0)
		if got := inst.G.Coverage(out.Sets); float64(got) < 0.25*float64(ref) {
			t.Fatalf("seed=%d: swap ratio %.3f below 1/4", seed, float64(got)/float64(ref))
		}
	}
}

func TestSwapKCoverFewSets(t *testing.T) {
	// k larger than the number of sets: take everything useful.
	inst := workload.Uniform(3, 50, 0.2, 3)
	out := SwapKCover(stream.NewGraphSetStream(inst.G, 1), inst.G.NumElems(), 10, 0)
	if out.Covered != inst.G.Coverage([]int{0, 1, 2}) {
		t.Fatalf("should keep all sets: covered %d", out.Covered)
	}
}

func TestSieveKCoverRatio(t *testing.T) {
	// SieveStreaming guarantees 1/2 - eps; verify on random and planted
	// instances against offline greedy.
	for seed := uint64(0); seed < 5; seed++ {
		inst := workload.Uniform(30, 800, 0.05, seed)
		k := 5
		ref := greedy.MaxCover(inst.G, k).Covered
		out := SieveKCover(stream.NewGraphSetStream(inst.G, seed+20), inst.G.NumElems(), k, 0.1)
		if got := inst.G.Coverage(out.Sets); float64(got) < 0.45*float64(ref) {
			t.Fatalf("seed=%d: sieve ratio %.3f below guarantee", seed, float64(got)/float64(ref))
		}
		if len(out.Sets) > k {
			t.Fatalf("sieve kept %d > k sets", len(out.Sets))
		}
	}
}

func TestSieveKCoverRejectsBadEps(t *testing.T) {
	inst := workload.Uniform(10, 100, 0.1, 7)
	// eps out of range falls back to default instead of panicking.
	out := SieveKCover(stream.NewGraphSetStream(inst.G, 1), inst.G.NumElems(), 3, -1)
	if len(out.Sets) == 0 {
		t.Fatal("fallback eps produced empty solution on a dense instance")
	}
}

func TestThresholdSetCoverCoversAll(t *testing.T) {
	for _, passes := range []int{1, 2, 4} {
		for seed := uint64(0); seed < 3; seed++ {
			inst := workload.PlantedSetCover(40, 1500, 5, 10, seed)
			out, err := ThresholdSetCover(stream.NewGraphSetStream(inst.G, seed), inst.G.NumElems(), passes)
			if err != nil {
				t.Fatal(err)
			}
			if got := inst.G.Coverage(out.Sets); got != inst.G.NumElems() {
				t.Fatalf("passes=%d seed=%d: covered %d of %d", passes, seed, got, inst.G.NumElems())
			}
			if out.Passes != passes+1 {
				t.Fatalf("reported %d passes, want %d", out.Passes, passes+1)
			}
			// No duplicate picks.
			seen := map[int]bool{}
			for _, s := range out.Sets {
				if seen[s] {
					t.Fatalf("set %d picked twice", s)
				}
				seen[s] = true
			}
		}
	}
}

func TestThresholdSetCoverMorePassesSmaller(t *testing.T) {
	// More passes means finer thresholds, hence (weakly) better covers on
	// average. Averages over seeds to avoid single-run noise.
	totalP1, totalP4 := 0, 0
	for seed := uint64(0); seed < 6; seed++ {
		inst := workload.PlantedSetCover(50, 2000, 6, 25, seed)
		o1, err := ThresholdSetCover(stream.NewGraphSetStream(inst.G, seed), inst.G.NumElems(), 1)
		if err != nil {
			t.Fatal(err)
		}
		o4, err := ThresholdSetCover(stream.NewGraphSetStream(inst.G, seed), inst.G.NumElems(), 4)
		if err != nil {
			t.Fatal(err)
		}
		totalP1 += len(o1.Sets)
		totalP4 += len(o4.Sets)
	}
	if totalP4 > totalP1 {
		t.Fatalf("4 passes used more sets (%d) than 1 pass (%d) on average", totalP4, totalP1)
	}
}

func TestThresholdSetCoverValidation(t *testing.T) {
	inst := workload.Uniform(5, 50, 0.2, 1)
	if _, err := ThresholdSetCover(stream.NewGraphSetStream(inst.G, 1), 50, 0); err == nil {
		t.Fatal("passes=0 accepted")
	}
}

func TestFullGreedyMatchesOffline(t *testing.T) {
	inst := workload.Uniform(20, 400, 0.08, 9)
	k := 5
	out := FullGreedy(stream.Shuffled(inst.G, 3), 20, 400, k)
	ref := greedy.MaxCover(inst.G, k)
	if out.Covered != ref.Covered {
		t.Fatalf("full greedy %d != offline greedy %d", out.Covered, ref.Covered)
	}
	if out.Space.PeakItems != inst.G.NumEdges() {
		t.Fatalf("space %d != input size %d", out.Space.PeakItems, inst.G.NumEdges())
	}
}
