package baselines

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/workload"
)

func TestL0KCoverGreedyFindsGoodSolution(t *testing.T) {
	inst := workload.PlantedKCover(30, 2000, 4, 0.85, 12, 1)
	out := L0KCover(stream.Shuffled(inst.G, 2), 30, 4,
		L0Options{Eps: 0.2, Seed: 3, Reps: 8})
	if len(out.Sets) > 4 {
		t.Fatalf("returned %d sets", len(out.Sets))
	}
	got := inst.G.Coverage(out.Sets)
	if float64(got) < 0.5*float64(inst.PlantedCoverage) {
		t.Fatalf("l0 greedy covered %d, planted %d", got, inst.PlantedCoverage)
	}
	if out.OracleQueries == 0 {
		t.Fatal("no oracle queries recorded")
	}
	if out.SketchValues == 0 || out.Space.PeakItems != out.SketchValues {
		t.Fatal("space accounting inconsistent")
	}
}

func TestL0KCoverEstimateAccuracy(t *testing.T) {
	inst := workload.Uniform(15, 3000, 0.1, 5)
	out := L0KCover(stream.Shuffled(inst.G, 6), 15, 3,
		L0Options{Eps: 0.15, Seed: 7, Reps: 11})
	truth := float64(inst.G.Coverage(out.Sets))
	if out.Estimate < 0.7*truth || out.Estimate > 1.3*truth {
		t.Fatalf("estimate %v vs truth %v", out.Estimate, truth)
	}
}

func TestL0KCoverExhaustiveMatchesExactOnTiny(t *testing.T) {
	inst := workload.Uniform(8, 500, 0.15, 9)
	k := 3
	out := L0KCover(stream.Shuffled(inst.G, 1), 8, k,
		L0Options{Eps: 0.1, Seed: 11, Reps: 9, Exhaustive: true})
	opt := exact.MaxCover(inst.G, k)
	got := inst.G.Coverage(out.Sets)
	// Appendix D promises 1-eps with the right constants; at these sketch
	// sizes the exhaustive search should land within ~15% of optimal.
	if float64(got) < 0.85*float64(opt.Covered) {
		t.Fatalf("exhaustive l0 covered %d, optimum %d", got, opt.Covered)
	}
}

func TestL0KCoverSpaceGrowsWithK(t *testing.T) {
	inst := workload.Uniform(30, 2000, 0.05, 13)
	small := L0KCover(stream.Shuffled(inst.G, 1), 30, 2, L0Options{Eps: 0.25, Seed: 1})
	large := L0KCover(stream.Shuffled(inst.G, 1), 30, 12, L0Options{Eps: 0.25, Seed: 1})
	if large.RepsUsed <= small.RepsUsed {
		t.Fatalf("reps should grow with k: %d vs %d", small.RepsUsed, large.RepsUsed)
	}
	if large.Space.PeakItems <= small.Space.PeakItems {
		t.Fatalf("space should grow with k: %d vs %d", small.Space.PeakItems, large.Space.PeakItems)
	}
}

func TestL0KCoverDefaultsAreSane(t *testing.T) {
	inst := workload.Uniform(10, 200, 0.1, 15)
	out := L0KCover(stream.Shuffled(inst.G, 2), 10, 3, L0Options{})
	if out.RepsUsed < 1 || out.RepsUsed > 64 {
		t.Fatalf("default reps = %d", out.RepsUsed)
	}
	if len(out.Sets) == 0 {
		t.Fatal("default options produced empty solution")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 2, 3}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{nil, 0},
	}
	for _, c := range cases {
		if got := stats.Median(c.in); got != c.want {
			t.Fatalf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
